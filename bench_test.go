package offloadnn

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark regenerates the artifact through its
// experiment driver (the same code `dotbench` runs), so `go test -bench=.`
// doubles as a reproduction smoke test. Substrate micro-benchmarks at the
// bottom characterize the pieces the figures are built from.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/exec"
	"offloadnn/internal/experiments"
	"offloadnn/internal/profile"
	"offloadnn/internal/radio"
	"offloadnn/internal/semoran"
	"offloadnn/internal/serve"
	"offloadnn/internal/tensor"
	"offloadnn/internal/workload"
)

// benchExperiment runs one experiment driver per iteration.
func benchExperiment(b *testing.B, id string, opt experiments.Options) {
	b.Helper()
	e, err := experiments.ByID(id)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tables, err := e.Run(opt)
		if err != nil {
			b.Fatal(err)
		}
		if len(tables) == 0 {
			b.Fatal("no tables")
		}
	}
}

// BenchmarkTable1Configs regenerates Table I (DNN block configurations).
func BenchmarkTable1Configs(b *testing.B) {
	benchExperiment(b, "table1", experiments.Options{})
}

// BenchmarkTable2Dataset regenerates Table II (base dataset description).
func BenchmarkTable2Dataset(b *testing.B) {
	benchExperiment(b, "table2", experiments.Options{})
}

// BenchmarkFig2TrainingConfigs regenerates Fig. 2: calibrated accuracy
// curves and the peak-training-memory comparison across CONFIG A–E.
func BenchmarkFig2TrainingConfigs(b *testing.B) {
	benchExperiment(b, "fig2", experiments.Options{})
}

// BenchmarkFig2RealTraining runs the real scaled-down fine-tuning
// comparison behind Fig. 2 (quick profile).
func BenchmarkFig2RealTraining(b *testing.B) {
	benchExperiment(b, "fig2-real", experiments.Options{Quick: true})
}

// BenchmarkFig3InferenceCompute regenerates Fig. 3: dummy-tensor inference
// timing and class accuracy for the pruned and unpruned configurations.
func BenchmarkFig3InferenceCompute(b *testing.B) {
	benchExperiment(b, "fig3", experiments.Options{})
}

// BenchmarkFig6SolverRuntime regenerates Fig. 6: optimum-vs-OffloaDNN
// runtime over the small scenario (quick caps the optimum at T=3; the
// -quick=false variant is exercised by dotbench).
func BenchmarkFig6SolverRuntime(b *testing.B) {
	benchExperiment(b, "fig6", experiments.Options{Quick: true})
}

// BenchmarkFig7CostMemory regenerates Fig. 7: normalized DOT cost and
// memory against the optimum.
func BenchmarkFig7CostMemory(b *testing.B) {
	benchExperiment(b, "fig7", experiments.Options{Quick: true})
}

// BenchmarkFig8Breakdown regenerates the four Fig. 8 panels.
func BenchmarkFig8Breakdown(b *testing.B) {
	benchExperiment(b, "fig8", experiments.Options{Quick: true})
}

// BenchmarkFig9LargeAdmission regenerates Fig. 9: per-task admission
// ratios for OffloaDNN and SEM-O-RAN over the three loads.
func BenchmarkFig9LargeAdmission(b *testing.B) {
	benchExperiment(b, "fig9", experiments.Options{})
}

// BenchmarkFig10LargeComparison regenerates the four Fig. 10 panels.
func BenchmarkFig10LargeComparison(b *testing.B) {
	benchExperiment(b, "fig10", experiments.Options{})
}

// BenchmarkHeadlineGains regenerates the §V-A aggregate numbers.
func BenchmarkHeadlineGains(b *testing.B) {
	benchExperiment(b, "headline", experiments.Options{})
}

// BenchmarkFig11Emulation regenerates Fig. 11: the 20-second end-to-end
// latency emulation.
func BenchmarkFig11Emulation(b *testing.B) {
	benchExperiment(b, "fig11", experiments.Options{})
}

// --- solver micro-benchmarks (the quantities Fig. 6 plots) ---

// BenchmarkSolveOffloaDNNSmallT5 times the heuristic on the T=5 small
// scenario.
func BenchmarkSolveOffloaDNNSmallT5(b *testing.B) {
	in, err := workload.SmallScenario(5)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveOffloaDNN(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveOptimalSmallT3 times the exhaustive optimum at T=3.
func BenchmarkSolveOptimalSmallT3(b *testing.B) {
	in, err := workload.SmallScenario(3)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SolveOptimal(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveOffloaDNNLarge times the heuristic on the 20-task,
// 1250-path large scenario (the scalability claim).
func BenchmarkSolveOffloaDNNLarge(b *testing.B) {
	in, err := workload.LargeScenario(workload.LoadHigh)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveOffloaDNN(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveSEMORANLarge times the baseline on the same instance.
func BenchmarkSolveSEMORANLarge(b *testing.B) {
	in, err := workload.LargeScenario(workload.LoadHigh)
	if err != nil {
		b.Fatal(err)
	}
	cfg := semoran.DefaultConfig()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := semoran.Solve(in, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkResNet18Forward times one inference of the scaled ResNet-18 —
// the c(s) measurement primitive of the profiler.
func BenchmarkResNet18Forward(b *testing.B) {
	m := dnn.BuildResNet18(dnn.ResNetConfig{
		InChannels: 3, NumClasses: 61, BaseWidth: 16,
		StageBlocks: [4]int{2, 2, 2, 2}, Seed: 1,
	})
	x := tensor.New(1, 3, 16, 16)
	x.Fill(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := m.Forward(x, false)
		if err != nil {
			b.Fatal(err)
		}
		tensor.Release(y)
	}
}

// BenchmarkResNet18PrunedForward times the 80%-pruned variant (the Fig. 3
// left primitive).
func BenchmarkResNet18PrunedForward(b *testing.B) {
	m := dnn.BuildResNet18(dnn.ResNetConfig{
		InChannels: 3, NumClasses: 61, BaseWidth: 16,
		StageBlocks: [4]int{2, 2, 2, 2},
		PruneRatios: [4]float64{0.8, 0.8, 0.8, 0.8}, Seed: 1,
	})
	x := tensor.New(1, 3, 16, 16)
	x.Fill(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := m.Forward(x, false)
		if err != nil {
			b.Fatal(err)
		}
		tensor.Release(y)
	}
}

// BenchmarkProfileModel times a full per-block characterization pass.
func BenchmarkProfileModel(b *testing.B) {
	m := dnn.BuildResNet18(dnn.DefaultResNetConfig())
	p := profile.Profiler{ImageSize: 16, Repeats: 3, Warmup: 1}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ProfileModel(m); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTreeBuildLarge times weighted-tree construction over the
// 20-task × 1250-path large catalog.
func BenchmarkTreeBuildLarge(b *testing.B) {
	in, err := workload.LargeScenario(workload.LoadMedium)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.BuildTree(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConv2D times the convolution kernel that dominates inference.
func BenchmarkConv2D(b *testing.B) {
	p := tensor.Conv2DParams{InChannels: 16, OutChannels: 32, Kernel: 3, Stride: 1, Padding: 1}
	x := tensor.New(1, 16, 16, 16)
	w := tensor.New(32, 16, 3, 3)
	x.Fill(0.5)
	w.Fill(0.1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		y, err := tensor.Conv2D(x, w, nil, p)
		if err != nil {
			b.Fatal(err)
		}
		tensor.Release(y)
	}
}

// BenchmarkMatMul sweeps square GEMM sizes across the small-matrix fast
// path and the blocked kernel, at one worker and at the pool width, and
// across the three kernel precisions (f64 interchange, f32 and i8
// quantized — the speed ratios the solver's precision pricing encodes).
func BenchmarkMatMul(b *testing.B) {
	for _, n := range []int{32, 64, 128, 256} {
		x := tensor.New(n, n)
		y := tensor.New(n, n)
		x.Fill(0.5)
		y.Fill(0.25)
		dst := tensor.New(n, n)
		x32 := make([]float32, n*n)
		y32 := make([]float32, n*n)
		dst32 := make([]float32, n*n)
		x8 := make([]int8, n*n)
		y8 := make([]int8, n*n)
		acc := make([]int32, n*n)
		for i := range x32 {
			x32[i] = float32(x.Data()[i])
			y32[i] = float32(y.Data()[i])
		}
		tensor.QuantizeSymmetric(x8, x.Data(), tensor.SymmetricScale(x.Data()))
		tensor.QuantizeSymmetric(y8, y.Data(), tensor.SymmetricScale(y.Data()))
		for _, workers := range []int{1, 4} {
			tag := fmt.Sprintf("n%d/workers%d", n, workers)
			b.Run(tag+"/f64", func(b *testing.B) {
				prev := tensor.SetParallelism(workers)
				defer tensor.SetParallelism(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if err := tensor.MatMulInto(dst, x, y); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.Run(tag+"/f32", func(b *testing.B) {
				prev := tensor.SetParallelism(workers)
				defer tensor.SetParallelism(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.GemmF32(dst32, x32, y32, n, n, n)
				}
			})
			b.Run(tag+"/i8", func(b *testing.B) {
				prev := tensor.SetParallelism(workers)
				defer tensor.SetParallelism(prev)
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					tensor.GemmI8(acc, x8, y8, n, n, n)
				}
			})
		}
	}
}

// BenchmarkConv2DForward sweeps convolution shapes through the pooled
// im2col + GEMM forward (batch > 1 shards across the worker pool), at
// each kernel precision.
func BenchmarkConv2DForward(b *testing.B) {
	cases := []struct{ n, ch, size int }{
		{1, 16, 16},
		{8, 16, 16},
		{1, 32, 32},
		{8, 32, 32},
	}
	for _, c := range cases {
		p := tensor.Conv2DParams{InChannels: c.ch, OutChannels: 2 * c.ch, Kernel: 3, Stride: 1, Padding: 1}
		x := tensor.New(c.n, c.ch, c.size, c.size)
		w := tensor.New(2*c.ch, c.ch, 3, 3)
		x.Fill(0.5)
		w.Fill(0.1)
		w32, err := tensor.PrepareConvWeightsF32(w, p)
		if err != nil {
			b.Fatal(err)
		}
		w8, err := tensor.PrepareConvWeightsI8(w, p)
		if err != nil {
			b.Fatal(err)
		}
		xScale := tensor.SymmetricScale(x.Data())
		tag := fmt.Sprintf("n%d_c%d_s%d", c.n, c.ch, c.size)
		b.Run(tag+"/f64", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y, err := tensor.Conv2D(x, w, nil, p)
				if err != nil {
					b.Fatal(err)
				}
				tensor.Release(y)
			}
		})
		b.Run(tag+"/f32", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y, err := tensor.Conv2DF32(x, w32, nil, p)
				if err != nil {
					b.Fatal(err)
				}
				tensor.Release(y)
			}
		})
		b.Run(tag+"/i8", func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y, err := tensor.Conv2DI8(x, w8, nil, p, xScale)
				if err != nil {
					b.Fatal(err)
				}
				tensor.Release(y)
			}
		})
	}
}

// BenchmarkResNetForward times a batch-8 inference through
// Model.ForwardBatch at one worker (the serial c(s) baseline) and at four
// (the parallel hot path); the ratio is the multicore speedup.
func BenchmarkResNetForward(b *testing.B) {
	m := dnn.BuildResNet18(dnn.ResNetConfig{
		InChannels: 3, NumClasses: 61, BaseWidth: 16,
		StageBlocks: [4]int{2, 2, 2, 2}, Seed: 1,
	})
	x := tensor.New(8, 3, 16, 16)
	x.Fill(1)
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("batch8/workers%d", workers), func(b *testing.B) {
			prev := tensor.SetParallelism(workers)
			defer tensor.SetParallelism(prev)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				y, err := m.ForwardBatch(x)
				if err != nil {
					b.Fatal(err)
				}
				tensor.Release(y)
			}
		})
	}
}

// BenchmarkEmulation20s times one Fig. 11-style 20-second emulated run.
func BenchmarkEmulation20s(b *testing.B) {
	in, err := SmallScenario(5)
	if err != nil {
		b.Fatal(err)
	}
	res := in.Res
	res.RBs = 100
	controller := NewController(res)
	dep, err := controller.Admit(in.Tasks, in.Blocks, in.Alpha)
	if err != nil {
		b.Fatal(err)
	}
	cfg := DefaultEmulatorConfig()
	cfg.Duration = 20 * time.Second
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		em, err := NewEmulator(in, dep, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := em.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblation runs the design-choice knockout study.
func BenchmarkAblation(b *testing.B) {
	benchExperiment(b, "ablation", experiments.Options{})
}

// BenchmarkExtHeterogeneous runs the two-family catalog extension.
func BenchmarkExtHeterogeneous(b *testing.B) {
	benchExperiment(b, "ext-hetero", experiments.Options{})
}

// BenchmarkExtDynamic runs the incremental-admission extension.
func BenchmarkExtDynamic(b *testing.B) {
	benchExperiment(b, "ext-dynamic", experiments.Options{})
}

// BenchmarkSolveHeterogeneousLarge times the heuristic over the 2500-path
// two-family catalog.
func BenchmarkSolveHeterogeneousLarge(b *testing.B) {
	in, err := workload.HeterogeneousScenario(workload.LoadMedium)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.SolveOffloaDNN(in); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEpochResolve times one serving-path epoch: a full DOT solve
// over the 20-task large scenario plus the atomic deployment swap the
// edgeserve daemon performs on every churn batch. Solve is pinned to the
// plain heuristic so this stays the non-incremental baseline (the default
// config would route through the SolverSession).
func BenchmarkEpochResolve(b *testing.B) {
	in, err := workload.LargeScenario(workload.LoadHigh)
	if err != nil {
		b.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Res:      in.Res,
		Alpha:    in.Alpha,
		Debounce: time.Hour, // keep the background loop out of the measurement
		Solve:    core.SolveOffloaDNN,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	for _, task := range in.Tasks {
		if err := srv.Register(task, in.Blocks); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := srv.ForceResolve(); err != nil {
			b.Fatal(err)
		}
	}
}

// churnBench prepares the single-task churn scenario the incremental
// benchmarks share: the 20-task high-load large instance, with task-20
// alternately withdrawn and re-registered every epoch.
func churnBench(b *testing.B) (*core.Instance, core.Task) {
	b.Helper()
	in, err := workload.LargeScenario(workload.LoadHigh)
	if err != nil {
		b.Fatal(err)
	}
	churn := in.Tasks[len(in.Tasks)-1]
	return in, churn
}

// BenchmarkIncrementalChurn times one epoch of the incremental solver
// under single-task churn over the 20-task large scenario: each iteration
// removes or re-adds task-20 and re-solves through the SolverSession, so
// 19 of 20 cliques come from the cache and surviving tasks warm-start
// their allocations. Compare against BenchmarkFullResolveChurn (same
// churn, from-scratch solves) and BenchmarkEpochResolve (full
// serving-path epoch).
func BenchmarkIncrementalChurn(b *testing.B) {
	in, churn := churnBench(b)
	sess, err := core.NewSolverSession(in)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Resolve(ctx, core.TaskDelta{}); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var delta core.TaskDelta
		if i%2 == 0 {
			delta.Remove = []string{churn.ID}
		} else {
			delta.Add = []core.Task{churn}
		}
		if _, err := sess.Resolve(ctx, delta); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFullResolveChurn is the from-scratch baseline for
// BenchmarkIncrementalChurn: identical single-task churn, but every epoch
// re-solves the whole instance with SolveOffloaDNN.
func BenchmarkFullResolveChurn(b *testing.B) {
	in, _ := churnBench(b)
	with := in.Tasks
	without := append([]core.Task(nil), in.Tasks[:len(in.Tasks)-1]...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%2 == 0 {
			in.Tasks = without
		} else {
			in.Tasks = with
		}
		if _, err := core.SolveOffloaDNN(in); err != nil {
			b.Fatal(err)
		}
	}
	in.Tasks = with
}

// BenchmarkOffloadServe drives POST /v1/offload end to end — gate, route
// lookup, real batched inference, JSON response — on a multi-task
// deployment whose tasks all resolve to one shared path, so every request
// funnels into a single model's batching queue. The batch1 variant
// serializes one single-sample forward per request; batch8 aggregates
// concurrent requests per ForwardBatch call, whose batched convolutions
// shard across the tensor worker pool (conv2DInto parallelizes the batch
// dimension only for n > 1). The ratio is therefore the batching win on
// the serving hot path: ≥2× wherever GOMAXPROCS > 1; on a single-core
// host the two converge, since every forward is strictly serial there.
// The avgbatch metric confirms the batch8 queue actually fills.
func BenchmarkOffloadServe(b *testing.B) {
	const nTasks = 4
	// A two-block catalog every task's only path runs through. Costs are
	// sized so the solver admits all four tasks in full (z=1): rate
	// z·λ·β = 1e5 b/s per task against ~3.5e5 b/s per RB, compute
	// 4 × 1e5·2e-6 = 0.8 s/s against C=2.5.
	blocks := map[string]core.BlockSpec{
		"base/s1": {ID: "base/s1", ComputeSeconds: 1e-6, MemoryGB: 0.001},
		"base/s2": {ID: "base/s2", ComputeSeconds: 1e-6, MemoryGB: 0.001},
	}
	tasks := make([]core.Task, nTasks)
	for i := range tasks {
		tasks[i] = core.Task{
			ID:          fmt.Sprintf("bench-%d", i+1),
			Priority:    1,
			Rate:        1e5, // gate burst = one second of tokens; keeps the bucket out of the measurement
			MinAccuracy: 0.5,
			MaxLatency:  100 * time.Millisecond,
			InputBits:   1,
			SNRdB:       20,
			Paths: []core.PathSpec{{
				ID: "shared", DNN: "base", Blocks: []string{"base/s1", "base/s2"}, Accuracy: 0.9,
			}},
		}
	}
	model := dnn.ResNetConfig{
		InChannels: 3, NumClasses: 8, BaseWidth: 8, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 1,
	}
	input := make([]float64, 3*8*8)
	for i := range input {
		input[i] = float64(i%7) / 7
	}
	bodies := make([][]byte, nTasks)
	for i, task := range tasks {
		// Each request carries the task's plan-time bound as its deadline
		// budget, so the bench reports a deadline-hit-rate column
		// alongside throughput.
		buf, err := json.Marshal(serve.OffloadRequest{Task: task.ID, Input: input, DeadlineMS: 100})
		if err != nil {
			b.Fatal(err)
		}
		bodies[i] = buf
	}

	for _, batch := range []int{1, 8} {
		b.Run(fmt.Sprintf("batch%d", batch), func(b *testing.B) {
			be, err := exec.NewReal(exec.RealConfig{
				Model:       model,
				Input:       [3]int{3, 8, 8},
				BatchSize:   batch,
				BatchWindow: 2 * time.Millisecond,
			})
			if err != nil {
				b.Fatal(err)
			}
			srv, err := serve.New(serve.Config{
				Res: core.Resources{
					RBs: 50, ComputeSeconds: 2.5, MemoryGB: 8,
					TrainBudgetSeconds: 1000, Capacity: radio.PaperRate(),
				},
				Alpha:    0.5,
				Debounce: time.Hour, // keep the background loop out of the measurement
				Backend:  be,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Close()
			for _, task := range tasks {
				if err := srv.Register(task, blocks); err != nil {
					b.Fatal(err)
				}
			}
			if err := srv.ForceResolve(); err != nil {
				b.Fatal(err)
			}
			if st := be.Stats(); st.Models != 1 {
				b.Fatalf("shared path deployed %d models, want 1", st.Models)
			}

			var next atomic.Int64
			// Keep well over BatchSize requests in flight even at
			// GOMAXPROCS=1, so batches fill instead of stalling on the
			// window timer.
			b.SetParallelism(4 * batch)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					i := int(next.Add(1)) % nTasks
					req := httptest.NewRequest(http.MethodPost, "/v1/offload", bytes.NewReader(bodies[i]))
					req.Header.Set("Content-Type", "application/json")
					rec := httptest.NewRecorder()
					srv.ServeHTTP(rec, req)
					// 504/503 are deadline sheds under load, part of what
					// the hitrate column measures — not bench failures.
					if rec.Code != http.StatusOK && rec.Code != http.StatusGatewayTimeout &&
						rec.Code != http.StatusServiceUnavailable {
						b.Errorf("offload %s: %d %s", tasks[i].ID, rec.Code, rec.Body.String())
						return
					}
				}
			})
			b.StopTimer()
			st := be.Stats()
			if st.Batches > 0 {
				b.ReportMetric(float64(st.Requests)/float64(st.Batches), "avgbatch")
			}
			if carried := st.DeadlineHits + st.DeadlineMisses; carried > 0 {
				b.ReportMetric(float64(st.DeadlineHits)/float64(carried), "hitrate")
			}
		})
	}
}

// BenchmarkSolveOptimalParallelT4 times the parallel exhaustive solver at
// T=4 against BenchmarkSolveOptimalSmallT3's sequential baseline scale.
func BenchmarkSolveOptimalParallelT4(b *testing.B) {
	in, err := workload.SmallScenario(4)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := core.SolveOptimalParallel(in, 0); err != nil {
			b.Fatal(err)
		}
	}
}
