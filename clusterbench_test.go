package offloadnn

// Split-serving benchmark harness: TestRecordClusterSplitBench extends
// the checked-in BENCH_cluster.json with split rows — a model whose only
// path exceeds every single node's memory, recorded as a 1-node
// infeasible baseline against 2- and 4-node split-pipeline topologies.
// Gated behind OFFLOADNN_CLUSTER_BENCH_OUT like the other recorders:
//
//	OFFLOADNN_CLUSTER_BENCH_OUT=BENCH_cluster.json go test -run TestRecordClusterSplitBench -count=1 .

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"sort"
	"testing"
	"time"

	"offloadnn/internal/cluster"
	"offloadnn/internal/core"
	"offloadnn/internal/exec"
	"offloadnn/internal/radio"
	"offloadnn/internal/serve"
)

// clusterBenchRun mirrors cmd/edgeload's bench row schema so both
// writers share one BENCH_cluster.json, keyed by (nodes, split).
type clusterBenchRun struct {
	Nodes          int     `json:"nodes"`
	Split          bool    `json:"split"`
	MultiHop       int     `json:"multi_hop,omitempty"`
	ShedHop        int     `json:"shed_hop,omitempty"`
	Tasks          int     `json:"tasks"`
	DurationS      float64 `json:"duration_seconds"`
	Sent           int     `json:"sent"`
	OK             int     `json:"ok"`
	Limited        int     `json:"limited"`
	Failover       int     `json:"failover"`
	Errors         int     `json:"errors"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	AdmissionRatio float64 `json:"admission_ratio"`
}

type clusterBenchFile struct {
	Benchmark string            `json:"benchmark"`
	Runs      []clusterBenchRun `json:"runs"`
}

// splitBenchTask is the acceptance-shape workload: one task whose only
// path carries 1.2 GB of blocks, more than any bench node holds alone.
func splitBenchTask() (core.Task, map[string]core.BlockSpec) {
	ids := []string{"bench/stage1", "bench/stage2", "bench/stage3", "bench/stage4"}
	blocks := make(map[string]core.BlockSpec, len(ids))
	for _, id := range ids {
		blocks[id] = core.BlockSpec{ID: id, ComputeSeconds: 1e-4, MemoryGB: 0.3, TrainSeconds: 1}
	}
	return core.Task{
		ID:          "bench-split",
		Priority:    1,
		Rate:        40,
		MinAccuracy: 0.9,
		MaxLatency:  500 * time.Millisecond,
		InputBits:   350e3,
		SNRdB:       20,
		Paths: []core.PathSpec{{
			ID: "bench/full", DNN: "bench", Blocks: ids, Accuracy: 0.95,
		}},
	}, blocks
}

// splitBenchTopology runs one (nodes × per-node-memory) topology: real
// tensor backends behind live listeners, requests proxied through the
// coordinator, client latencies recorded.
func splitBenchTopology(t *testing.T, nodes int, memGB float64, requests int) clusterBenchRun {
	t.Helper()
	task, blocks := splitBenchTask()
	coord, err := cluster.NewCoordinator(cluster.Config{Debounce: 10 * time.Millisecond, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	defer coord.Close()
	if err := coord.Registry().Register(task, blocks); err != nil {
		t.Fatal(err)
	}
	front := httptest.NewServer(coord)
	defer front.Close()

	res := core.Resources{
		RBs:                50,
		ComputeSeconds:     2.5,
		MemoryGB:           memGB,
		TrainBudgetSeconds: 1000,
		Capacity:           radio.PaperRate(),
	}
	for i := 0; i < nodes; i++ {
		backend, err := exec.NewReal(exec.RealConfig{BatchSize: 1})
		if err != nil {
			t.Fatal(err)
		}
		srv, err := serve.New(serve.Config{
			Res: res, Alpha: 0.5, Node: string(rune('a' + i)),
			Debounce: 10 * time.Millisecond, Backend: backend,
		})
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		ts := httptest.NewServer(cluster.MemberHandler(srv))
		defer ts.Close()
		reg, _ := json.Marshal(cluster.RegisterRequest{
			Node: string(rune('a' + i)), Addr: ts.URL,
			Res: cluster.ToWireResources(res), BandwidthMbps: 100, State: "healthy",
		})
		resp, err := http.Post(front.URL+"/v1/cluster/nodes", "application/json", bytes.NewReader(reg))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	if err := coord.PlaceNow(); err != nil {
		t.Fatal(err)
	}

	frame := make([]float64, 3*8*8)
	for i := range frame {
		frame[i] = float64(i%13)/13 - 0.5
	}
	body, _ := json.Marshal(serve.OffloadRequest{Task: task.ID, Input: frame})
	run := clusterBenchRun{Nodes: nodes, Tasks: 1}
	var lats []float64
	var notified float64
	begun := time.Now()
	for i := 0; i < requests; i++ {
		sentAt := time.Now()
		resp, err := http.Post(front.URL+"/v1/offload", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		var or serve.OffloadResponse
		decErr := json.NewDecoder(resp.Body).Decode(&or)
		resp.Body.Close()
		run.Sent++
		switch {
		case resp.StatusCode == http.StatusOK && decErr == nil:
			run.OK++
			notified = or.AdmittedRate
			lats = append(lats, float64(time.Since(sentAt))/float64(time.Millisecond))
			if len(or.Hops) > 1 {
				run.MultiHop++
			}
		case resp.StatusCode == http.StatusTooManyRequests:
			run.Limited++
		case resp.StatusCode == http.StatusGatewayTimeout:
			run.ShedHop++
		default:
			run.Errors++
		}
	}
	run.DurationS = time.Since(begun).Seconds()
	run.Split = run.MultiHop > 0 || run.OK == 0
	if run.DurationS > 0 {
		run.ThroughputRPS = float64(run.OK) / run.DurationS
	}
	run.AdmissionRatio = notified / task.Rate
	sort.Float64s(lats)
	run.P50MS = benchPercentile(lats, 0.50)
	run.P99MS = benchPercentile(lats, 0.99)
	return run
}

func benchPercentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// TestRecordClusterSplitBench regenerates the split rows of
// BENCH_cluster.json: 1 node (infeasible — the 1.2 GB path fits no
// 0.7 GB node alone), 2 nodes (2-hop 2|2 pipeline), and 4 nodes at
// 0.4 GB each (forced 4-hop pipeline, one stage per node).
func TestRecordClusterSplitBench(t *testing.T) {
	out := os.Getenv("OFFLOADNN_CLUSTER_BENCH_OUT")
	if out == "" {
		t.Skip("set OFFLOADNN_CLUSTER_BENCH_OUT=BENCH_cluster.json to record")
	}
	const requests = 30
	rows := []clusterBenchRun{
		splitBenchTopology(t, 1, 0.7, requests),
		splitBenchTopology(t, 2, 0.7, requests),
		splitBenchTopology(t, 4, 0.4, requests),
	}
	for _, r := range rows {
		if !r.Split {
			t.Fatalf("%d-node topology did not exercise the split path: %+v", r.Nodes, r)
		}
	}
	if rows[0].OK != 0 {
		t.Fatalf("1-node baseline served %d requests, want infeasible", rows[0].OK)
	}
	if rows[1].OK == 0 || rows[2].OK == 0 {
		t.Fatalf("split topologies served nothing: 2-node ok=%d, 4-node ok=%d", rows[1].OK, rows[2].OK)
	}

	doc := clusterBenchFile{Benchmark: "cluster_serving"}
	if raw, err := os.ReadFile(out); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			t.Fatalf("existing %s is not a benchmark file: %v", out, err)
		}
	}
	for _, run := range rows {
		replaced := false
		for i := range doc.Runs {
			if doc.Runs[i].Nodes == run.Nodes && doc.Runs[i].Split == run.Split {
				doc.Runs[i] = run
				replaced = true
			}
		}
		if !replaced {
			doc.Runs = append(doc.Runs, run)
		}
	}
	sort.Slice(doc.Runs, func(i, j int) bool {
		if doc.Runs[i].Nodes != doc.Runs[j].Nodes {
			return doc.Runs[i].Nodes < doc.Runs[j].Nodes
		}
		return !doc.Runs[i].Split && doc.Runs[j].Split
	})
	raw, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(raw, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("recorded %d split rows into %s", len(rows), out)
}
