// Command dnnprofile experimentally characterizes DNN layer-blocks the
// way the DOT problem consumes them: it builds a (scaled) ResNet-18 or
// MobileNetV2 on the real tensor engine, times each block's forward pass
// over a dummy input, and prints the c(s)/µ(s) table.
//
// Usage:
//
//	dnnprofile                     # ResNet-18, width 16, 16x16 input
//	dnnprofile -arch mobilenetv2
//	dnnprofile -prune 0.8          # 80% structured pruning on all stages
//	dnnprofile -width 32 -image 32 -repeats 11
//	dnnprofile -precision i8       # time the quantized kernels
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"offloadnn/internal/dnn"
	"offloadnn/internal/profile"
	"offloadnn/internal/tensor"
)

func main() {
	os.Exit(run())
}

func run() int {
	arch := flag.String("arch", "resnet18", "architecture: resnet18 or mobilenetv2")
	width := flag.Int("width", 16, "base channel width (ResNet-18 full scale: 64)")
	image := flag.Int("image", 16, "square input size (paper: 224)")
	classes := flag.Int("classes", 61, "classifier classes")
	pruneRatio := flag.Float64("prune", 0, "structured prune ratio applied to all stages (0..0.95)")
	repeats := flag.Int("repeats", 9, "timed repetitions per block (median reported)")
	workers := flag.Int("workers", 1, "tensor parallelism during timing (1 = serial c(s) baseline)")
	precision := flag.String("precision", "f64", "inference kernel precision: f64, f32 or i8")
	flag.Parse()

	prec, err := tensor.ParsePrecision(*precision)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnnprofile:", err)
		return 2
	}

	var m *dnn.Model
	switch *arch {
	case "resnet18":
		cfg := dnn.ResNetConfig{
			InChannels: 3, NumClasses: *classes, BaseWidth: *width,
			StageBlocks: [4]int{2, 2, 2, 2}, Seed: 1,
		}
		if *pruneRatio > 0 {
			cfg.PruneRatios = [4]float64{*pruneRatio, *pruneRatio, *pruneRatio, *pruneRatio}
		}
		m = dnn.BuildResNet18(cfg)
	case "mobilenetv2":
		m = dnn.BuildMobileNetV2(dnn.MobileNetConfig{
			InChannels: 3, NumClasses: *classes, BaseWidth: *width,
			Expansion: 2, StageBlocks: [4]int{1, 2, 2, 1}, Seed: 1,
		})
		if *pruneRatio > 0 {
			fmt.Fprintln(os.Stderr, "dnnprofile: -prune applies to resnet18 only")
			return 2
		}
	default:
		fmt.Fprintf(os.Stderr, "dnnprofile: unknown arch %q\n", *arch)
		return 2
	}

	p := profile.Profiler{ImageSize: *image, Repeats: *repeats, Warmup: 2, Workers: *workers, Precision: prec}
	costs, err := p.ProfileModel(m)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dnnprofile:", err)
		return 1
	}

	fmt.Printf("%s  width=%d  input=%dx%d  workers=%d  precision=%s  params=%d\n", *arch, *width, *image, *image, *workers, prec, m.ParamCount())
	fmt.Printf("%-24s %6s %14s %12s %10s\n", "block", "stage", "compute", "memory", "params")
	for _, c := range costs {
		fmt.Printf("%-24s %6d %14v %11.1fKB %10d\n",
			c.ID, c.Stage, c.ComputeTime.Round(time.Microsecond),
			float64(c.MemoryBytes)/1024, c.Params)
	}
	fmt.Printf("%-24s %6s %14v %11.1fKB %10d\n", "TOTAL", "",
		profile.TotalCompute(costs).Round(time.Microsecond),
		float64(profile.TotalMemory(costs))/1024, m.ParamCount())
	return 0
}
