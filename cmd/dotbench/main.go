// Command dotbench regenerates the paper's evaluation artifacts — every
// table and figure of the OffloaDNN paper — from this repository's
// implementations.
//
// Usage:
//
//	dotbench                 # run every experiment
//	dotbench -run fig6       # run one experiment (comma-separated list ok)
//	dotbench -list           # list experiment IDs
//	dotbench -quick          # skip the slowest steps (optimum at T=4..5, long training)
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"offloadnn/internal/experiments"
)

func main() {
	os.Exit(run())
}

func run() int {
	list := flag.Bool("list", false, "list experiment IDs and exit")
	only := flag.String("run", "", "comma-separated experiment IDs (default: all)")
	quick := flag.Bool("quick", false, "skip the slowest steps")
	csvDir := flag.String("csv", "", "also write each table as CSV into this directory")
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-10s %s\n", e.ID, e.Name)
		}
		return 0
	}

	var selected []experiments.Experiment
	if *only == "" {
		selected = experiments.All()
	} else {
		for _, id := range strings.Split(*only, ",") {
			e, err := experiments.ByID(strings.TrimSpace(id))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return 2
			}
			selected = append(selected, e)
		}
	}

	opt := experiments.Options{Quick: *quick}
	for _, e := range selected {
		start := time.Now()
		tables, err := e.Run(opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", e.ID, err)
			return 1
		}
		fmt.Printf("### %s (%s) — %v\n\n", e.Name, e.ID, time.Since(start).Round(time.Millisecond))
		for i := range tables {
			if err := tables[i].Render(os.Stdout); err != nil {
				fmt.Fprintf(os.Stderr, "%s: render: %v\n", e.ID, err)
				return 1
			}
			if *csvDir != "" {
				if err := writeCSV(*csvDir, e.ID, i, &tables[i]); err != nil {
					fmt.Fprintf(os.Stderr, "%s: csv: %v\n", e.ID, err)
					return 1
				}
			}
		}
	}
	return 0
}

// writeCSV stores one table as <dir>/<experiment>-<n>-<slug>.csv.
func writeCSV(dir, id string, n int, t *experiments.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := fmt.Sprintf("%s-%02d-%s.csv", id, n, t.SlugTitle())
	if len(name) > 120 {
		name = name[:116] + ".csv"
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := t.RenderCSV(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
