// Command edgecluster runs the OffloaDNN multi-node coordinator: member
// edgeserve daemons register over HTTP (each with its own M/C/R budgets
// and a measured coordinator↔node link rate), the coordinator places
// every registered task's execution path on one member — greedy
// bin-packing by descending priority over per-node DOT solves, priced at
// the fleet-wide capacity totals — pushes each node its task subset, and
// proxies /v1/offload along the resulting task→node routing table. A
// task whose only viable path fits no single node is split into
// pipelined stage segments across members (activations handed off over
// POST /v1/stage, priced against the measured inter-node link matrix);
// the route then points at the head segment's node.
//
// Membership churn (join, leave, heartbeat timeout, push or proxy
// failure, bandwidth drift beyond -bw-drift) kicks a debounced
// cluster-wide re-placement, so killing a member moves its tasks to the
// survivors within one debounce window.
//
// Endpoints:
//
//	POST   /v1/tasks                      register a task cluster-wide
//	GET    /v1/tasks                      tasks with admission verdict + owning node
//	DELETE /v1/tasks/{id}                 deregister a task
//	POST   /v1/offload                    proxy one offload to the owning node
//	POST   /v1/cluster/nodes              member registration
//	GET    /v1/cluster/nodes              member list
//	POST   /v1/cluster/nodes/{id}/heartbeat
//	DELETE /v1/cluster/nodes/{id}         member leave
//	POST   /v1/cluster/bwprobe            bandwidth probe sink
//	GET    /healthz                       aggregate health (degraded names failing nodes)
//	GET    /metrics                       cluster + per-node {node="..."} families
//
// Usage:
//
//	edgecluster -addr :8080
//	edgeserve -addr :8081 -node-id a -cluster-join http://127.0.0.1:8080 -rbs 25 -compute 1.25
//	edgeserve -addr :8082 -node-id b -cluster-join http://127.0.0.1:8080 -rbs 25 -compute 1.25
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"offloadnn/internal/cluster"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	alpha := flag.Float64("alpha", 0.5, "admission/resource trade-off α for per-node solves")
	approxAfter := flag.Int("approx-after", 0, "fleet-wide task count at which placements switch to the approximate tier (0 = default 512, negative = never)")
	catalog := flag.String("catalog", "small", "DNN catalog for submitted tasks: small|large (must match the members)")
	debounce := flag.Duration("debounce", 100*time.Millisecond, "churn batching window before a cluster-wide re-placement")
	heartbeatTimeout := flag.Duration("heartbeat-timeout", 3*time.Second, "silence before a member is declared stale and re-placed")
	bwDrift := flag.Float64("bw-drift", 0.2, "fractional link-rate change that forces a re-placement")
	bwFloor := flag.Float64("bandwidth-floor", 0, "Mb/s an unmeasured link is priced at (0 = conservative default, negative = free)")
	pushTimeout := flag.Duration("push-timeout", 30*time.Second, "deadline for one plan push including the member's re-solve")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault triggers")
	var faultSpecs []string
	flag.Func("fault", "arm a fault-injection point, e.g. cluster.push.error:p=0.3 (repeatable)", func(v string) error {
		faultSpecs = append(faultSpecs, v)
		return nil
	})
	flag.Parse()

	var faults *faultinject.Injector
	if len(faultSpecs) > 0 {
		faults = faultinject.New(*faultSeed)
		for _, spec := range faultSpecs {
			point, rule, err := faultinject.ParseSpec(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "edgecluster:", err)
				return 2
			}
			faults.Set(point, rule)
			log.Printf("edgecluster: armed fault point %s (%+v)", point, rule)
		}
	}

	var params workload.CatalogParams
	switch *catalog {
	case "small":
		params = workload.SmallCatalogParams()
	case "large":
		params = workload.LargeCatalogParams()
	default:
		fmt.Fprintf(os.Stderr, "edgecluster: unknown catalog %q (want small|large)\n", *catalog)
		return 2
	}

	coord, err := cluster.NewCoordinator(cluster.Config{
		Alpha:              *alpha,
		ApproxAfter:        *approxAfter,
		Catalog:            params,
		Debounce:           *debounce,
		HeartbeatTimeout:   *heartbeatTimeout,
		BandwidthDriftFrac: *bwDrift,
		BandwidthFloorMbps: *bwFloor,
		PushTimeout:        *pushTimeout,
		Faults:             faults,
		Logf:               log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgecluster:", err)
		return 2
	}
	defer coord.Close()

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           coord,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("edgecluster: coordinator listening on %s (α=%g, catalog=%s, debounce=%v, heartbeat-timeout=%v)",
		*addr, *alpha, *catalog, *debounce, *heartbeatTimeout)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "edgecluster:", err)
			return 1
		}
	case s := <-sig:
		log.Printf("edgecluster: %v, shutting down", s)
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "edgecluster: shutdown:", err)
			return 1
		}
	}
	return 0
}
