// Command edgeload drives an edgeserve daemon with live traffic: it
// registers the Table-IV small-scenario tasks over HTTP, fires offload
// requests at each task's request rate λ (optionally scaled above it to
// probe the admission gates), and reports the admitted throughput
// against the daemon's notified rates z·λ. With -churn it follows a
// deterministic arrival/departure timeline instead, forcing the daemon
// through repeated epoch re-solves mid-load.
//
// Usage:
//
//	edgeload                              # 5 tasks, 10 s at λ against :8080
//	edgeload -duration 30s -scale 2       # overdrive at 2λ: expect 429s
//	edgeload -churn -seed 3               # dynamic arrivals and departures
//
// With -payload each offload carries a real input tensor (shape -input,
// channels fixed at 3, matching edgeserve -backend real) and the
// response's logits are validated: an admitted offload that comes back
// without a well-formed logit vector counts as an error.
//
//	edgeload -payload -input 8x8          # drive real inference end to end
//
// With -burst the arrival process spikes periodically — a flash crowd
// at burst× the base rate for -burst-for out of every -burst-every —
// and -deadline attaches an explicit per-request deadline (without it
// the server derives one from the task's latency bound L_τ). 504
// (deadline_exceeded) and 503 (overloaded) answers count as sheds, the
// runtime's deliberate load shedding, and the payload report adds
// client-side p50/p99 and deadline-hit-rate:
//
//	edgeload -payload -burst 10 -burst-every 3s -burst-for 1s -deadline 20ms
//
// With -cluster the loader drives an edgecluster coordinator instead:
// 502/503 answers are counted as failover events rather than errors (a
// member died and the re-placement is moving its tasks), client-side
// request latency quantiles are reported, and -bench-out merges the
// run's throughput / p50 / p99 / admission ratio into a JSON benchmark
// file keyed by cluster size — run it once per topology:
//
//	edgeload -cluster -bench-out BENCH_cluster.json          # 1, 2 or 4 nodes
//
// Cluster responses that traveled a split pipeline carry per-hop
// metadata; the loader reports the hop count and a per-hop latency
// breakdown, and 504s whose budget died mid-pipeline
// (deadline_exceeded@hop) are counted apart from single-node deadline
// misses.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/serve"
	"offloadnn/internal/workload"
)

// counts tallies one task's offload verdicts.
type counts struct {
	sent, ok, limited, missing, other int
	failover                          int     // 502/503 answers in -cluster mode
	badLogits                         int     // 200s with a missing/malformed logit vector
	shedLate                          int     // 504 deadline_exceeded answers
	shedHop                           int     // 504 deadline_exceeded@hop answers (budget died mid-pipeline)
	shedOverload                      int     // 503 overloaded answers (standalone mode)
	multiHop                          int     // 200s whose response traveled ≥2 pipeline hops
	deadlined                         int     // 200s that carried a deadline budget
	deadlineHits                      int     // ...answered within that budget, client-side
	notified                          float64 // last admitted_rate the daemon reported
	inferMS                           float64 // last measured inference latency
}

// loader is the shared HTTP client and result table.
type loader struct {
	base       string
	client     *http.Client
	payload    []float64 // input tensor sent with each offload; nil = probe mode
	cluster    bool      // tolerate failover answers, record client latencies
	deadlineMS float64   // per-request deadline override; 0 sends none (server applies L_τ)
	burst      float64   // flash-crowd rate multiplier during spikes; ≤1 = steady arrivals
	burstEvery time.Duration
	burstFor   time.Duration

	mu     sync.Mutex
	byTask map[string]*counts
	latMS  []float64 // client-side latency of every answered offload
	// hopLatMS collects split-pipeline segment latencies by hop index
	// (from the response's hops metadata); hopNodes the node IDs seen at
	// each index.
	hopLatMS map[int][]float64
	hopNodes map[int]map[string]bool
}

// recordHops folds one multi-hop response's metadata into the per-hop
// breakdown. Caller holds l.mu.
func (l *loader) recordHops(hops []dnn.ActivationHop) {
	for i, h := range hops {
		l.hopLatMS[i] = append(l.hopLatMS[i], h.LatencyMS)
		nodes, ok := l.hopNodes[i]
		if !ok {
			nodes = make(map[string]bool)
			l.hopNodes[i] = nodes
		}
		nodes[h.Node] = true
	}
}

func (l *loader) task(id string) *counts {
	l.mu.Lock()
	defer l.mu.Unlock()
	c, ok := l.byTask[id]
	if !ok {
		c = &counts{}
		l.byTask[id] = c
	}
	return c
}

func (l *loader) postJSON(path string, body, out any) (int, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := l.client.Post(l.base+path, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

func (l *loader) register(task core.Task) error {
	spec := serve.TaskSpec{
		ID:           task.ID,
		Priority:     task.Priority,
		Rate:         task.Rate,
		MinAccuracy:  task.MinAccuracy,
		MaxLatencyMS: float64(task.MaxLatency) / float64(time.Millisecond),
		InputBits:    task.InputBits,
		SNRdB:        task.SNRdB,
	}
	status, err := l.postJSON("/v1/tasks", spec, nil)
	if err != nil {
		return err
	}
	if status != http.StatusAccepted && status != http.StatusConflict {
		return fmt.Errorf("register %s: status %d", task.ID, status)
	}
	return nil
}

func (l *loader) deregister(id string) error {
	req, err := http.NewRequest(http.MethodDelete, l.base+"/v1/tasks/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := l.client.Do(req)
	if err != nil {
		return err
	}
	resp.Body.Close()
	return nil
}

// waitCurrent polls /healthz until the daemon's epoch covers the latest
// registration churn. Against a coordinator it instead waits for the
// cluster-wide placement to reach the registry generation.
func (l *loader) waitCurrent(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		resp, err := l.client.Get(l.base + "/healthz")
		if err != nil {
			return err
		}
		var h struct {
			Epoch      uint64 `json:"epoch"`
			Current    bool   `json:"current"`
			Generation uint64 `json:"generation"`
			Placement  struct {
				Seq        uint64 `json:"seq"`
				Generation uint64 `json:"generation"`
			} `json:"placement"`
		}
		err = json.NewDecoder(resp.Body).Decode(&h)
		resp.Body.Close()
		if err != nil {
			return err
		}
		if l.cluster {
			if h.Placement.Seq > 0 && h.Placement.Generation >= h.Generation {
				return nil
			}
		} else if h.Current && h.Epoch > 0 {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
	return fmt.Errorf("daemon epoch never caught up within %v", timeout)
}

// clusterNodes reads the coordinator's member count for the benchmark
// record.
func (l *loader) clusterNodes() int {
	resp, err := l.client.Get(l.base + "/v1/cluster/nodes")
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var nodes []json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&nodes); err != nil {
		return 0
	}
	return len(nodes)
}

// offloadLoop fires requests for one task at rate λ·scale until the
// context ends. With -burst armed, arrivals spike to λ·scale·burst for
// burstFor out of every burstEvery — a periodic flash crowd over the
// base rate.
func (l *loader) offloadLoop(ctx context.Context, task core.Task, scale float64) {
	begun := time.Now()
	c := l.task(task.ID)
	// Arrivals are open-loop: every tick fires its request concurrently,
	// so a flash crowd lands as offered load instead of collapsing to
	// one in-flight request per task. The in-flight bound caps the
	// pile-up when the server falls far behind.
	inflight := make(chan struct{}, 128)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		mult := scale
		if l.burst > 1 && l.burstEvery > 0 && time.Since(begun)%l.burstEvery < l.burstFor {
			mult *= l.burst
		}
		period := time.Duration(float64(time.Second) / (task.Rate * mult))
		select {
		case <-ctx.Done():
			return
		case <-time.After(period):
		}
		select {
		case <-ctx.Done():
			return
		case inflight <- struct{}{}:
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-inflight }()
			l.offloadOnce(task.ID, c)
		}()
	}
}

// postOffload fires one offload and, on an error status, also reads the
// error envelope's code (so a mid-pipeline deadline_exceeded@hop can be
// told apart from a single-node 504).
func (l *loader) postOffload(req serve.OffloadRequest) (int, string, serve.OffloadResponse, error) {
	var or serve.OffloadResponse
	buf, err := json.Marshal(req)
	if err != nil {
		return 0, "", or, err
	}
	resp, err := l.client.Post(l.base+"/v1/offload", "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, "", or, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		return resp.StatusCode, "", or, json.NewDecoder(resp.Body).Decode(&or)
	}
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	// An unparseable error body leaves the code empty; the status alone
	// still classifies the verdict.
	_ = json.NewDecoder(resp.Body).Decode(&env)
	return resp.StatusCode, env.Error.Code, or, nil
}

// offloadOnce fires one offload request and records its verdict.
func (l *loader) offloadOnce(taskID string, c *counts) {
	req := serve.OffloadRequest{Task: taskID, Input: l.payload, DeadlineMS: l.deadlineMS}
	sentAt := time.Now()
	status, code, or, err := l.postOffload(req)
	elapsedMS := float64(time.Since(sentAt)) / float64(time.Millisecond)
	l.mu.Lock()
	c.sent++
	if err == nil && (l.cluster || l.payload != nil) {
		l.latMS = append(l.latMS, elapsedMS)
	}
	switch {
	case err != nil:
		c.other++
	case l.cluster && (status == http.StatusBadGateway || status == http.StatusServiceUnavailable):
		// A member died (or is draining) and the coordinator is
		// re-placing its tasks; the next request lands on a survivor.
		c.failover++
	case status == http.StatusOK:
		c.ok++
		c.notified = or.AdmittedRate
		if len(or.Hops) > 1 {
			c.multiHop++
			l.recordHops(or.Hops)
		}
		if l.payload != nil {
			c.inferMS = or.MeasuredLatencyMS
			if !or.Simulated && !validLogits(or) {
				c.badLogits++
			}
			if or.DeadlineMS > 0 {
				c.deadlined++
				if elapsedMS <= or.DeadlineMS {
					c.deadlineHits++
				}
			}
		}
	case status == http.StatusGatewayTimeout && code == serve.CodeDeadlineHop:
		// The deadline budget died mid-pipeline: the head segment ran but
		// a later hop (transfer included) had nothing left.
		c.shedHop++
	case status == http.StatusGatewayTimeout:
		// The runtime shed the request as already late: load shedding
		// doing its job under pressure, not a client error.
		c.shedLate++
	case status == http.StatusServiceUnavailable:
		c.shedOverload++
	case status == http.StatusTooManyRequests:
		c.limited++
	case status == http.StatusNotFound:
		c.missing++
	default:
		c.other++
	}
	l.mu.Unlock()
}

// validLogits checks an executed offload's model output: a non-empty,
// finite logit vector whose argmax field indexes into it.
func validLogits(or serve.OffloadResponse) bool {
	if len(or.Logits) == 0 || or.Argmax == nil {
		return false
	}
	if *or.Argmax < 0 || *or.Argmax >= len(or.Logits) {
		return false
	}
	for _, v := range or.Logits {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

// makePayload builds the deterministic 3×h×w input tensor every payload
// offload carries.
func makePayload(h, w int) []float64 {
	in := make([]float64, 3*h*w)
	for i := range in {
		in[i] = float64(i%13) / 13
	}
	return in
}

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", "http://127.0.0.1:8080", "edgeserve base URL")
	tasks := flag.Int("tasks", 5, "number of scenario tasks (small: 1..5, scale: any)")
	scenario := flag.String("scenario", "small", "static task scenario: small (Table-IV) | scale (solver-scale registry; offload traffic driven for the first 64 tasks)")
	duration := flag.Duration("duration", 10*time.Second, "load duration")
	scale := flag.Float64("scale", 1.0, "request-rate multiplier on each task's λ")
	churn := flag.Bool("churn", false, "follow the deterministic churn timeline instead of a static task set")
	seed := flag.Int64("seed", 1, "churn timeline seed")
	payload := flag.Bool("payload", false, "send a real input tensor with each offload and validate the returned logits")
	inputShape := flag.String("input", "8x8", "payload input HxW (channels fixed at 3; match edgeserve -input)")
	deadline := flag.Duration("deadline", 0, "per-request deadline sent as deadline_ms (0 = server derives it from the task's latency bound)")
	burst := flag.Float64("burst", 0, "flash-crowd arrival mode: rate multiplier applied during periodic spikes (<=1 disables)")
	burstEvery := flag.Duration("burst-every", 5*time.Second, "spike period with -burst")
	burstFor := flag.Duration("burst-for", 1*time.Second, "spike length with -burst")
	clusterMode := flag.Bool("cluster", false, "drive an edgecluster coordinator: tolerate 502/503 failover, report client-side latency quantiles")
	benchOut := flag.String("bench-out", "", "cluster mode: merge the run's results into this JSON benchmark file, keyed by cluster size")
	flag.Parse()

	l := &loader{
		base:       *addr,
		client:     &http.Client{Timeout: 5 * time.Second},
		byTask:     make(map[string]*counts),
		hopLatMS:   make(map[int][]float64),
		hopNodes:   make(map[int]map[string]bool),
		cluster:    *clusterMode,
		deadlineMS: float64(*deadline) / float64(time.Millisecond),
		burst:      *burst,
		burstEvery: *burstEvery,
		burstFor:   *burstFor,
	}
	if *payload {
		var h, w int
		if _, err := fmt.Sscanf(*inputShape, "%dx%d", &h, &w); err != nil || h <= 0 || w <= 0 {
			fmt.Fprintf(os.Stderr, "edgeload: bad -input %q (want HxW, e.g. 8x8)\n", *inputShape)
			return 2
		}
		l.payload = makePayload(h, w)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *duration)
	defer cancel()
	var wg sync.WaitGroup
	start := func(task core.Task, stop context.Context) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.offloadLoop(stop, task, *scale)
		}()
	}

	if *churn {
		events, err := workload.ChurnTimeline(workload.ChurnParams{Tasks: *tasks, Duration: *duration, Seed: *seed})
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgeload:", err)
			return 2
		}
		begun := time.Now()
		cancels := make(map[string]context.CancelFunc)
		for _, e := range events {
			if d := e.At - time.Since(begun); d > 0 {
				select {
				case <-ctx.Done():
				case <-time.After(d):
				}
			}
			if ctx.Err() != nil {
				break
			}
			switch e.Kind {
			case workload.ChurnRegister:
				if err := l.register(e.Task); err != nil {
					fmt.Fprintln(os.Stderr, "edgeload:", err)
					return 1
				}
				fmt.Printf("%7.2fs register   %s\n", time.Since(begun).Seconds(), e.Task.ID)
				taskCtx, taskCancel := context.WithCancel(ctx)
				cancels[e.Task.ID] = taskCancel
				start(e.Task, taskCtx)
			case workload.ChurnDeregister:
				if stop, ok := cancels[e.Task.ID]; ok {
					stop()
					delete(cancels, e.Task.ID)
				}
				if err := l.deregister(e.Task.ID); err != nil {
					fmt.Fprintln(os.Stderr, "edgeload:", err)
					return 1
				}
				fmt.Printf("%7.2fs deregister %s\n", time.Since(begun).Seconds(), e.Task.ID)
			}
		}
		<-ctx.Done()
	} else {
		// set is the registered task list; drive holds the subset whose
		// offload traffic the loader generates.
		var set, drive []core.Task
		settle := 5 * time.Second
		switch *scenario {
		case "small":
			if *tasks < 1 || *tasks > 5 {
				fmt.Fprintf(os.Stderr, "edgeload: -tasks %d outside 1..5\n", *tasks)
				return 2
			}
			for i := 1; i <= *tasks; i++ {
				task, err := workload.SmallTask(i)
				if err != nil {
					fmt.Fprintln(os.Stderr, "edgeload:", err)
					return 2
				}
				set = append(set, task)
			}
			drive = set
		case "scale":
			// Solver-scale run: the registry (and with it the resolver's
			// tier selection) is the thing under load, not the offload
			// path, so only the first tasks generate traffic.
			in, err := workload.ScaleScenario(*tasks)
			if err != nil {
				fmt.Fprintln(os.Stderr, "edgeload:", err)
				return 2
			}
			set = in.Tasks
			drive = set
			if len(drive) > 64 {
				drive = drive[:64]
			}
			settle = 60 * time.Second
		default:
			fmt.Fprintf(os.Stderr, "edgeload: unknown scenario %q (want small|scale)\n", *scenario)
			return 2
		}
		for _, task := range set {
			if err := l.register(task); err != nil {
				fmt.Fprintln(os.Stderr, "edgeload:", err)
				return 1
			}
		}
		if err := l.waitCurrent(settle); err != nil {
			fmt.Fprintln(os.Stderr, "edgeload:", err)
			return 1
		}
		for _, task := range drive {
			start(task, ctx)
		}
		<-ctx.Done()
	}
	wg.Wait()

	// Report.
	l.mu.Lock()
	ids := make([]string, 0, len(l.byTask))
	for id := range l.byTask {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	exit := 0
	if l.payload != nil {
		fmt.Printf("\n%-10s %6s %6s %6s %6s %6s %6s %6s %9s %14s %12s\n",
			"task", "sent", "ok", "429", "504", "503", "404", "err", "badlogit", "notified(z·λ)", "infer(ms)")
		var deadlined, hits, shedLate, shedOverload int
		for _, id := range ids {
			c := l.byTask[id]
			fmt.Printf("%-10s %6d %6d %6d %6d %6d %6d %6d %9d %14.2f %12.3f\n",
				id, c.sent, c.ok, c.limited, c.shedLate, c.shedOverload, c.missing, c.other, c.badLogits,
				c.notified, c.inferMS)
			deadlined += c.deadlined
			hits += c.deadlineHits
			shedLate += c.shedLate
			shedOverload += c.shedOverload
			if c.other > 0 || c.badLogits > 0 {
				exit = 1
			}
		}
		// Client-side deadline accounting: served-within-budget over every
		// deadline-carrying outcome (served or shed). Sheds are the
		// runtime's deliberate misses, so they count in the denominator.
		sort.Float64s(l.latMS)
		fmt.Printf("\npayload: p50 %.2f ms, p99 %.2f ms", percentile(l.latMS, 0.50), percentile(l.latMS, 0.99))
		if carried := deadlined + shedLate + shedOverload; carried > 0 {
			fmt.Printf(", deadline-hit-rate %.3f (%d carried), shed late=%d overload=%d",
				float64(hits)/float64(carried), carried, shedLate, shedOverload)
		}
		fmt.Println()
	} else if l.cluster {
		fmt.Printf("\n%-10s %6s %6s %6s %6s %8s %9s %9s %6s %14s %12s\n",
			"task", "sent", "ok", "429", "404", "504", "504@hop", "failover", "err", "notified(z·λ)", "achieved/s")
		for _, id := range ids {
			c := l.byTask[id]
			fmt.Printf("%-10s %6d %6d %6d %6d %8d %9d %9d %6d %14.2f %12.2f\n",
				id, c.sent, c.ok, c.limited, c.missing, c.shedLate, c.shedHop, c.failover, c.other,
				c.notified, float64(c.ok)/duration.Seconds())
			if c.other > 0 {
				exit = 1
			}
		}
	} else {
		fmt.Printf("\n%-10s %6s %6s %6s %6s %6s %14s %12s\n",
			"task", "sent", "ok", "429", "404", "err", "notified(z·λ)", "achieved/s")
		for _, id := range ids {
			c := l.byTask[id]
			fmt.Printf("%-10s %6d %6d %6d %6d %6d %14.2f %12.2f\n",
				id, c.sent, c.ok, c.limited, c.missing, c.other,
				c.notified, float64(c.ok)/duration.Seconds())
			if c.other > 0 {
				exit = 1
			}
		}
	}

	// Split-pipeline accounting applies to payload and cluster reports
	// alike: any mode can ride a multi-hop route.
	var multiHop, shedHop int
	for _, id := range ids {
		multiHop += l.byTask[id].multiHop
		shedHop += l.byTask[id].shedHop
	}
	if multiHop > 0 || shedHop > 0 {
		fmt.Printf("\nsplit: %d multi-hop answers, %d shed as %s\n", multiHop, shedHop, serve.CodeDeadlineHop)
		for hop := 0; hop < len(l.hopLatMS); hop++ {
			lats := append([]float64(nil), l.hopLatMS[hop]...)
			sort.Float64s(lats)
			nodes := make([]string, 0, len(l.hopNodes[hop]))
			for n := range l.hopNodes[hop] {
				nodes = append(nodes, n)
			}
			sort.Strings(nodes)
			fmt.Printf("  hop %d %v: n=%d, p50 %.3f ms, p99 %.3f ms\n",
				hop, nodes, len(lats), percentile(lats, 0.50), percentile(lats, 0.99))
		}
	}

	if l.cluster {
		run := clusterRun(l, *duration)
		run.Nodes = l.clusterNodes()
		fmt.Printf("\ncluster: %d nodes, %.1f req/s served, p50 %.2f ms, p99 %.2f ms, admission ratio %.3f, %d failover answers\n",
			run.Nodes, run.ThroughputRPS, run.P50MS, run.P99MS, run.AdmissionRatio, run.Failover)
		if *benchOut != "" {
			if err := mergeBench(*benchOut, run); err != nil {
				fmt.Fprintln(os.Stderr, "edgeload: bench-out:", err)
				exit = 1
			} else {
				fmt.Printf("cluster: recorded %d-node run in %s\n", run.Nodes, *benchOut)
			}
		}
	}
	l.mu.Unlock()
	return exit
}

// benchRun is one topology's entry in the -bench-out file.
type benchRun struct {
	Nodes int `json:"nodes"`
	// Split marks a run whose responses traveled split pipelines (the
	// model fits no single node); rows are keyed by (nodes, split) so
	// split and whole-path runs at the same size coexist.
	Split          bool    `json:"split"`
	MultiHop       int     `json:"multi_hop,omitempty"`
	ShedHop        int     `json:"shed_hop,omitempty"`
	Tasks          int     `json:"tasks"`
	DurationS      float64 `json:"duration_seconds"`
	Sent           int     `json:"sent"`
	OK             int     `json:"ok"`
	Limited        int     `json:"limited"`
	Failover       int     `json:"failover"`
	Errors         int     `json:"errors"`
	ThroughputRPS  float64 `json:"throughput_rps"`
	P50MS          float64 `json:"p50_ms"`
	P99MS          float64 `json:"p99_ms"`
	AdmissionRatio float64 `json:"admission_ratio"`
}

// clusterRun folds the per-task counters and latency samples into one
// benchmark record. Caller holds l.mu.
func clusterRun(l *loader, duration time.Duration) benchRun {
	r := benchRun{Tasks: len(l.byTask), DurationS: duration.Seconds()}
	var notified, offered float64
	for id, c := range l.byTask {
		r.Sent += c.sent
		r.OK += c.ok
		r.Limited += c.limited
		r.Failover += c.failover
		r.Errors += c.other + c.missing
		r.MultiHop += c.multiHop
		r.ShedHop += c.shedHop
		notified += c.notified
		// Offered rate λ comes from the task's small-scenario index.
		var idx int
		if _, err := fmt.Sscanf(id, "task-%d", &idx); err == nil {
			if t, err := workload.SmallTask(idx); err == nil {
				offered += t.Rate
			}
		}
	}
	r.Split = r.MultiHop > 0
	r.ThroughputRPS = float64(r.OK) / duration.Seconds()
	if offered > 0 {
		r.AdmissionRatio = notified / offered
	}
	sort.Float64s(l.latMS)
	r.P50MS = percentile(l.latMS, 0.50)
	r.P99MS = percentile(l.latMS, 0.99)
	return r
}

// percentile reads quantile q from an ascending-sorted sample set.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// benchFile is the -bench-out document: one entry per cluster size, so
// successive runs at 1, 2 and 4 nodes build the scaling table in place.
type benchFile struct {
	Benchmark string     `json:"benchmark"`
	Runs      []benchRun `json:"runs"`
}

// mergeBench inserts the run into the bench file, replacing any previous
// entry for the same cluster size.
func mergeBench(path string, run benchRun) error {
	doc := benchFile{Benchmark: "cluster_serving"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &doc); err != nil {
			return fmt.Errorf("existing %s is not a benchmark file: %v", path, err)
		}
	}
	replaced := false
	for i := range doc.Runs {
		if doc.Runs[i].Nodes == run.Nodes && doc.Runs[i].Split == run.Split {
			doc.Runs[i] = run
			replaced = true
		}
	}
	if !replaced {
		doc.Runs = append(doc.Runs, run)
	}
	sort.Slice(doc.Runs, func(i, j int) bool {
		if doc.Runs[i].Nodes != doc.Runs[j].Nodes {
			return doc.Runs[i].Nodes < doc.Runs[j].Nodes
		}
		return !doc.Runs[i].Split && doc.Runs[j].Split
	})
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(out, '\n'), 0o644)
}
