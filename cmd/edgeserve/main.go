// Command edgeserve runs the OffloaDNN edge controller as a long-running
// serving daemon: tasks register and deregister over HTTP, each churn
// batch triggers a debounced DOT re-solve (one epoch of the Fig. 4
// loop), and the offload path enforces the solved admission ratios z·λ
// with per-task token buckets — over-rate requests get 429 + Retry-After
// instead of a queue.
//
// Endpoints:
//
//	POST   /v1/tasks        register a task (JSON: id, priority, rate,
//	                        min_accuracy, max_latency_ms, input_bits, snr_db)
//	GET    /v1/tasks        list tasks with their current admission verdicts
//	DELETE /v1/tasks/{id}   deregister a task
//	POST   /v1/offload      offload one request (JSON: {"task": "...",
//	                        "input": [...]}; with an input the response
//	                        carries logits, argmax and measured latency)
//	GET    /healthz         liveness + epoch/generation state
//	GET    /metrics         text metrics (counters, rates, latency quantiles)
//
// Usage:
//
//	edgeserve                          # Table-IV small-scenario resources on :8080
//	edgeserve -addr :9000 -catalog large -rbs 100 -compute 10 -memory 16
//
// By default offloads answer from the planning cost model (simulated
// backend). -backend real assembles tensor-backed models per deployed
// path — shared blocks instantiated once — and batches admitted inputs
// through them:
//
//	edgeserve -backend real -batch-size 8 -batch-window 2ms -model-width 8 -input 8x8
//
// -precision adds quantized ("@f32"/"@i8") block variants to the catalog
// as cheaper solver-priced options; with the real backend the chosen
// kernels serve the path, guarded by an install-time accuracy gate:
//
//	edgeserve -backend real -precision f64,i8 -quant-gate 0.02
//
// The real backend's batching queues are deadline-aware (EDF) by
// default: each executed offload carries a deadline derived from its
// task's plan-time latency bound L_τ (overridable per request with
// "deadline_ms"), already-late requests are shed with 504
// deadline_exceeded, and a full intake queue sheds its latest-deadline
// waiter with 503 overloaded. Sustained shedding degrades /healthz
// until the spike drains. -sched fifo restores the fixed-window
// baseline:
//
//	edgeserve -backend real -sched edf -queue-depth 64 -overload-after 10
//
// Chaos runs arm fault-injection points (repeatable -fault flag):
//
//	edgeserve -fault solver.error:p=0.3                      # random solve failures
//	edgeserve -fault solver.panic:every=5 -fault deploy.error:p=0.1
//	edgeserve -fault solver.hang:every=3 -solve-timeout 2s   # hung solves, bounded
//
// Under injected faults the daemon keeps serving off its last-good
// epoch and /healthz reports degraded until solves recover.
//
// Cluster-member mode joins an edgecluster coordinator: the daemon
// advertises its budgets, heartbeats, and accepts plan pushes (its task
// subset of the cluster-wide placement) on PUT /v1/cluster/plan while the
// standalone API keeps serving:
//
//	edgeserve -addr :8081 -node-id a -cluster-join http://coordinator:8080 \
//	          -advertise http://edge-a:8081 -rbs 25 -compute 1.25
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"offloadnn/internal/cluster"
	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/exec"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/radio"
	"offloadnn/internal/serve"
	"offloadnn/internal/tensor"
	"offloadnn/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	addr := flag.String("addr", ":8080", "HTTP listen address")
	rbs := flag.Int("rbs", 50, "radio resource blocks R")
	compute := flag.Float64("compute", 2.5, "edge compute seconds per second C")
	memory := flag.Float64("memory", 8, "edge memory budget M in GB")
	trainBudget := flag.Float64("train-budget", 1000, "training budget Ct in seconds")
	alpha := flag.Float64("alpha", 0.5, "admission/resource trade-off α")
	debounce := flag.Duration("debounce", 100*time.Millisecond, "churn batching window before a re-solve")
	window := flag.Int("window", 4096, "latency quantile window (samples)")
	catalog := flag.String("catalog", "small", "DNN catalog for submitted tasks: small|large")
	precisionList := flag.String("precision", "f64", "comma-separated kernel-precision tiers the catalog offers: f64, f32, i8 (e.g. f64,i8; plain i8 quantizes every path)")
	backendKind := flag.String("backend", "sim", "execution backend: sim (cost model) | real (tensor models)")
	batchSize := flag.Int("batch-size", 8, "real backend: max requests per inference batch")
	batchWindow := flag.Duration("batch-window", 2*time.Millisecond, "real backend: max wait for a partial batch")
	sched := flag.String("sched", "edf", "real backend: batching queue intake order: edf (deadline-aware) | fifo (fixed-window baseline)")
	queueDepth := flag.Int("queue-depth", 0, "real backend: per-model intake queue bound before backpressure sheds the latest-deadline waiter (0 = 16x batch size, negative = unbounded)")
	overloadWindow := flag.Duration("overload-window", 5*time.Second, "sliding window over backend sheds driving the overload health signal")
	overloadAfter := flag.Int("overload-after", 10, "sheds inside the overload window before /healthz degrades (negative disables)")
	quantGate := flag.Float64("quant-gate", 0, "real backend: max top-1 disagreement vs float64 before a quantized path is demoted a tier (0 = default 0.02, negative disables)")
	modelWidth := flag.Int("model-width", 8, "real backend: base channel width of the model template")
	inputShape := flag.String("input", "8x8", "real backend: input HxW (channels fixed at 3)")
	solveTimeout := flag.Duration("solve-timeout", 0, "deadline for one epoch's solve (0 = default 2s, negative = unbounded)")
	solverTier := flag.String("solver-tier", "auto", "epoch solver tier: auto|heuristic|optimal|approx")
	solverWorkers := flag.Int("solver-workers", 0, "worker bound for parallel solver tiers (0 = all cores)")
	solverShards := flag.Int("solver-shards", 0, "priority-band shards for the heuristic tier (0 = auto, 1 = serial)")
	approxAfter := flag.Int("approx-after", 0, "task count at which the auto tier escalates to the approximate solver (0 = default 512, negative = never)")
	staleAfter := flag.Duration("stale-after", 10*time.Second, "plan staleness before /healthz reports degraded")
	backoff := flag.Duration("backoff", 0, "initial retry delay after a failed re-solve (0 = debounce)")
	backoffMax := flag.Duration("backoff-max", 5*time.Second, "retry delay cap under consecutive failures")
	breaker := flag.Int("breaker", 3, "consecutive failures before falling back to full (non-incremental) solves")
	drainGrace := flag.Duration("drain-grace", 1*time.Second, "window after SIGTERM where the listener stays open in draining mode")
	clusterJoin := flag.String("cluster-join", "", "coordinator base URL to join as a cluster member (empty = standalone)")
	nodeID := flag.String("node-id", "", "cluster member node ID (required with -cluster-join)")
	advertise := flag.String("advertise", "", "base URL the coordinator reaches this member on (default: http://127.0.0.1<addr>)")
	heartbeat := flag.Duration("heartbeat", time.Second, "cluster heartbeat period")
	bandwidthMbps := flag.Float64("bandwidth-mbps", 0, "coordinator link rate to report; 0 measures it with a probe transfer")
	faultSeed := flag.Int64("fault-seed", 1, "seed for probabilistic fault triggers")
	var faultSpecs []string
	flag.Func("fault", "arm a fault-injection point, e.g. solver.error:p=0.3 (repeatable)", func(v string) error {
		faultSpecs = append(faultSpecs, v)
		return nil
	})
	flag.Parse()

	tier, err := core.ParseTier(*solverTier)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve:", err)
		return 2
	}

	var faults *faultinject.Injector
	if len(faultSpecs) > 0 {
		faults = faultinject.New(*faultSeed)
		for _, spec := range faultSpecs {
			point, rule, err := faultinject.ParseSpec(spec)
			if err != nil {
				fmt.Fprintln(os.Stderr, "edgeserve:", err)
				return 2
			}
			faults.Set(point, rule)
			log.Printf("edgeserve: armed fault point %s (%+v)", point, rule)
		}
	}

	var params workload.CatalogParams
	switch *catalog {
	case "small":
		params = workload.SmallCatalogParams()
	case "large":
		params = workload.LargeCatalogParams()
	default:
		fmt.Fprintf(os.Stderr, "edgeserve: unknown catalog %q (want small|large)\n", *catalog)
		return 2
	}
	if *precisionList != "" && *precisionList != "f64" {
		for _, name := range strings.Split(*precisionList, ",") {
			name = strings.TrimSpace(name)
			if _, err := tensor.ParsePrecision(name); err != nil {
				fmt.Fprintln(os.Stderr, "edgeserve:", err)
				return 2
			}
			params.Precisions = append(params.Precisions, workload.DefaultPrecisionSpec(name))
		}
	}

	var backend exec.Backend
	switch *backendKind {
	case "sim":
		// Leave Config.Backend nil: serve.New wires the cost model.
	case "real":
		var h, w int
		if _, err := fmt.Sscanf(*inputShape, "%dx%d", &h, &w); err != nil || h <= 0 || w <= 0 {
			fmt.Fprintf(os.Stderr, "edgeserve: bad -input %q (want HxW, e.g. 8x8)\n", *inputShape)
			return 2
		}
		pol, err := exec.ParseSched(*sched)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgeserve:", err)
			return 2
		}
		model := dnn.DefaultResNetConfig()
		model.BaseWidth = *modelWidth
		be, err := exec.NewReal(exec.RealConfig{
			Model:       model,
			Input:       [3]int{model.InChannels, h, w},
			BatchSize:   *batchSize,
			BatchWindow: *batchWindow,
			QuantGate:   *quantGate,
			Sched:       pol,
			QueueDepth:  *queueDepth,
			Faults:      faults,
			Logf:        log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgeserve:", err)
			return 2
		}
		backend = be
		log.Printf("edgeserve: real backend (width=%d, input=3x%dx%d, batch=%d/%v, sched=%s)",
			*modelWidth, h, w, *batchSize, *batchWindow, pol)
	default:
		fmt.Fprintf(os.Stderr, "edgeserve: unknown backend %q (want sim|real)\n", *backendKind)
		return 2
	}

	srv, err := serve.New(serve.Config{
		Res: core.Resources{
			RBs:                *rbs,
			ComputeSeconds:     *compute,
			MemoryGB:           *memory,
			TrainBudgetSeconds: *trainBudget,
			Capacity:           radio.PaperRate(),
		},
		Alpha:             *alpha,
		Catalog:           params,
		Debounce:          *debounce,
		Window:            *window,
		SolveTimeout:      *solveTimeout,
		Solver:            core.SolverSpec{Tier: tier, Workers: *solverWorkers, Shards: *solverShards},
		ApproxAfter:       *approxAfter,
		StaleAfter:        *staleAfter,
		OverloadWindow:    *overloadWindow,
		OverloadAfter:     *overloadAfter,
		FailureBackoff:    *backoff,
		FailureBackoffMax: *backoffMax,
		BreakerThreshold:  *breaker,
		Faults:            faults,
		Backend:           backend,
		Logf:              log.Printf,
		Node:              *nodeID,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgeserve:", err)
		return 2
	}
	defer srv.Close()

	var handler http.Handler = srv
	if *clusterJoin != "" {
		if *nodeID == "" {
			fmt.Fprintln(os.Stderr, "edgeserve: -cluster-join requires -node-id")
			return 2
		}
		// A member serves the full standalone API plus the plan-push
		// endpoint the coordinator installs placements through.
		handler = cluster.MemberHandler(srv)
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("edgeserve: listening on %s (R=%d RBs, C=%gs, M=%g GB, α=%g, catalog=%s, debounce=%v)",
		*addr, *rbs, *compute, *memory, *alpha, *catalog, *debounce)

	var agent *cluster.Agent
	if *clusterJoin != "" {
		adv := *advertise
		if adv == "" {
			if (*addr)[0] == ':' {
				adv = "http://127.0.0.1" + *addr
			} else {
				adv = "http://" + *addr
			}
		}
		agent, err = cluster.StartAgent(srv, cluster.AgentConfig{
			Coordinator:   *clusterJoin,
			NodeID:        *nodeID,
			Advertise:     adv,
			Heartbeat:     *heartbeat,
			BandwidthMbps: *bandwidthMbps,
			Logf:          log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgeserve:", err)
			return 2
		}
		log.Printf("edgeserve: joining cluster at %s as node %s (advertise %s)", *clusterJoin, *nodeID, adv)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fmt.Fprintln(os.Stderr, "edgeserve:", err)
			return 1
		}
	case s := <-sig:
		// Leave the cluster first so the coordinator re-places our tasks,
		// then drain and hold the listener open for the grace window:
		// registrations 503 while new offloads keep serving off the last
		// epoch. Shutdown closes the listener, so without this window
		// clients would see connection refused instead of "draining".
		if agent != nil {
			agent.Close()
		}
		srv.Drain()
		log.Printf("edgeserve: %v, draining then shutting down", s)
		select {
		case <-time.After(*drainGrace):
		case err := <-errCh:
			if err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "edgeserve:", err)
				return 1
			}
		}
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(ctx); err != nil {
			fmt.Fprintln(os.Stderr, "edgeserve: shutdown:", err)
			return 1
		}
	}
	return 0
}
