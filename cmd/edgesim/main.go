// Command edgesim runs the Colosseum-substitute end-to-end emulation
// (Fig. 11): it admits the Table-IV small-scale tasks through the
// OffloaDNN controller, drives UE traffic over the allocated radio slices
// and the edge compute queue, and reports per-task end-to-end latency
// against the targets.
//
// Usage:
//
//	edgesim                       # 5 tasks, 20 s, 100 RBs (the paper's setup)
//	edgesim -tasks 3 -duration 10s -seed 7
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
	"offloadnn/internal/metrics"
	"offloadnn/internal/workload"
)

func main() {
	os.Exit(run())
}

func run() int {
	tasks := flag.Int("tasks", 5, "number of small-scenario tasks (1..5)")
	load := flag.String("load", "", "emulate the 20-task large scenario instead: low|medium|high")
	duration := flag.Duration("duration", 20*time.Second, "emulated experiment duration")
	rbs := flag.Int("rbs", 100, "radio resource blocks (paper Colosseum cell: 100)")
	seed := flag.Int64("seed", 1, "jitter seed")
	flag.Parse()

	var in *core.Instance
	var err error
	if *load != "" {
		var l workload.Load
		switch *load {
		case "low":
			l = workload.LoadLow
		case "medium":
			l = workload.LoadMedium
		case "high":
			l = workload.LoadHigh
		default:
			fmt.Fprintf(os.Stderr, "edgesim: unknown load %q (want low|medium|high)\n", *load)
			return 2
		}
		in, err = workload.LargeScenario(l)
	} else {
		in, err = workload.SmallScenario(*tasks)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgesim:", err)
		return 2
	}
	res := in.Res
	res.RBs = *rbs

	controller := edge.NewController(res)
	dep, err := controller.Admit(in.Tasks, in.Blocks, in.Alpha)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgesim: admit:", err)
		return 1
	}
	fmt.Printf("controller: %d blocks deployed (%.2f GB), %d/%d RBs sliced\n",
		len(dep.ActiveBlocks), dep.MemoryUsedGB, dep.Slices.Used(), dep.Slices.Total())
	for _, a := range dep.Solution.Assignments {
		if a.Admitted() {
			fmt.Printf("  %-8s admitted z=%.2f rate=%.2f/s slice=%d RBs path=%s/%s\n",
				a.TaskID, a.Z, dep.AdmittedRates[a.TaskID], a.RBs, a.Path.DNN, a.Path.ID)
		} else {
			fmt.Printf("  %-8s rejected\n", a.TaskID)
		}
	}

	cfg := edge.DefaultEmulatorConfig()
	cfg.Duration = *duration
	cfg.Seed = *seed
	em, err := edge.NewEmulator(in, dep, cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgesim:", err)
		return 1
	}
	result, err := em.Run()
	if err != nil {
		fmt.Fprintln(os.Stderr, "edgesim: run:", err)
		return 1
	}

	fmt.Printf("\nemulated %v: %d frames served, %d latency violations\n",
		*duration, result.FramesServed, result.Violations)
	fmt.Printf("%-8s %9s %9s %9s %9s %8s %10s\n",
		"task", "target", "mean", "p95", "max", "samples", "violations")
	for _, tr := range result.Traces {
		if len(tr.Samples) == 0 {
			continue
		}
		lats := make([]float64, len(tr.Samples))
		for i, s := range tr.Samples {
			lats[i] = s.Latency.Seconds()
		}
		summary, err := metrics.Summarize(lats)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgesim:", err)
			return 1
		}
		p95, err := metrics.Percentile(lats, 95)
		if err != nil {
			fmt.Fprintln(os.Stderr, "edgesim:", err)
			return 1
		}
		fmt.Printf("%-8s %8.3fs %8.3fs %8.3fs %8.3fs %8d %10d\n",
			tr.TaskID, tr.Target.Seconds(), summary.Mean, p95, summary.Max,
			len(tr.Samples), tr.Violations)
	}
	if result.Violations > 0 {
		return 1
	}
	return 0
}
