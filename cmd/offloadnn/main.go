// Command offloadnn solves a DOT problem instance described in JSON and
// prints the admission, path-selection and resource-allocation decisions.
//
// Usage:
//
//	offloadnn -example > instance.json    # write a sample instance
//	offloadnn -in instance.json           # solve with the OffloaDNN heuristic
//	offloadnn -in instance.json -optimal  # exhaustive optimum (small instances!)
//	offloadnn -in instance.json -json     # machine-readable output
//	offloadnn -scenario small:5           # solve a built-in Table-IV scenario
//	offloadnn -scenario large:high        # (small:1..5, large:low|medium|high,
//	offloadnn -scenario hetero:medium     #  hetero:low|medium|high)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/radio"
	"offloadnn/internal/workload"
)

// fileInstance is the JSON schema of a DOT instance.
type fileInstance struct {
	Alpha     float64              `json:"alpha"`
	Resources fileResources        `json:"resources"`
	Blocks    map[string]fileBlock `json:"blocks"`
	Tasks     []fileTask           `json:"tasks"`
}

type fileResources struct {
	RBs                int     `json:"rbs"`
	ComputeSeconds     float64 `json:"computeSeconds"`
	MemoryGB           float64 `json:"memoryGB"`
	TrainBudgetSeconds float64 `json:"trainBudgetSeconds"`
	// BitsPerRBPerSecond selects a fixed-rate capacity model; set
	// useCQITable to map SNR through the LTE CQI table instead.
	BitsPerRBPerSecond float64 `json:"bitsPerRBPerSecond"`
	UseCQITable        bool    `json:"useCQITable"`
}

type fileBlock struct {
	ComputeSeconds float64 `json:"computeSeconds"`
	MemoryGB       float64 `json:"memoryGB"`
	TrainSeconds   float64 `json:"trainSeconds"`
}

type fileTask struct {
	ID           string     `json:"id"`
	Priority     float64    `json:"priority"`
	Rate         float64    `json:"rate"`
	MinAccuracy  float64    `json:"minAccuracy"`
	MaxLatencyMS float64    `json:"maxLatencyMs"`
	InputBits    float64    `json:"inputBits"`
	SNRdB        float64    `json:"snrDb"`
	Paths        []filePath `json:"paths"`
}

type filePath struct {
	ID       string   `json:"id"`
	DNN      string   `json:"dnn"`
	Blocks   []string `json:"blocks"`
	Accuracy float64  `json:"accuracy"`
}

type fileAssignment struct {
	Task     string  `json:"task"`
	Admitted bool    `json:"admitted"`
	Z        float64 `json:"z"`
	RBs      int     `json:"rbs"`
	DNN      string  `json:"dnn,omitempty"`
	Path     string  `json:"path,omitempty"`
}

type fileSolution struct {
	Cost          float64          `json:"cost"`
	MemoryGB      float64          `json:"memoryGB"`
	ComputeUsage  float64          `json:"computeUsage"`
	RBsAllocated  float64          `json:"rbsAllocated"`
	TrainSeconds  float64          `json:"trainSeconds"`
	AdmittedTasks int              `json:"admittedTasks"`
	RuntimeMS     float64          `json:"runtimeMs"`
	Assignments   []fileAssignment `json:"assignments"`
}

func main() {
	os.Exit(run())
}

func run() int {
	inPath := flag.String("in", "", "instance JSON file (- for stdin)")
	scenario := flag.String("scenario", "", "built-in scenario: small:N, large:LOAD, hetero:LOAD")
	optimal := flag.Bool("optimal", false, "solve exhaustively instead of with the heuristic")
	jsonOut := flag.Bool("json", false, "print the solution as JSON")
	example := flag.Bool("example", false, "print a sample instance and exit")
	flag.Parse()

	if *example {
		return printExample()
	}
	var in *core.Instance
	switch {
	case *scenario != "":
		var err error
		in, err = builtinScenario(*scenario)
		if err != nil {
			fmt.Fprintln(os.Stderr, "offloadnn:", err)
			return 2
		}
	case *inPath != "":
		var r io.Reader
		if *inPath == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(*inPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "offloadnn:", err)
				return 1
			}
			defer f.Close()
			r = f
		}
		var fi fileInstance
		dec := json.NewDecoder(r)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&fi); err != nil {
			fmt.Fprintln(os.Stderr, "offloadnn: parse:", err)
			return 1
		}
		var err error
		in, err = fi.toInstance()
		if err != nil {
			fmt.Fprintln(os.Stderr, "offloadnn:", err)
			return 1
		}
	default:
		fmt.Fprintln(os.Stderr, "offloadnn: -in or -scenario is required (or -example); see -h")
		return 2
	}

	var sol *core.Solution
	var solveErr error
	if *optimal {
		var stats *core.OptimalStats
		sol, stats, solveErr = core.SolveOptimal(in)
		if solveErr == nil {
			fmt.Fprintf(os.Stderr, "explored %d branches (%d pruned)\n",
				stats.BranchesExplored, stats.BranchesPruned)
		}
	} else {
		sol, solveErr = core.SolveOffloaDNN(in)
	}
	if solveErr != nil {
		fmt.Fprintln(os.Stderr, "offloadnn: solve:", solveErr)
		return 1
	}
	if err := in.Check(sol.Assignments); err != nil {
		fmt.Fprintln(os.Stderr, "offloadnn: solution failed verification:", err)
		return 1
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(toFileSolution(sol)); err != nil {
			fmt.Fprintln(os.Stderr, "offloadnn:", err)
			return 1
		}
		return 0
	}
	printText(sol)
	return 0
}

func (fi fileInstance) toInstance() (*core.Instance, error) {
	var capModel radio.CapacityModel
	if fi.Resources.UseCQITable {
		capModel = radio.NewCQITable()
	} else {
		if fi.Resources.BitsPerRBPerSecond <= 0 {
			return nil, fmt.Errorf("resources.bitsPerRBPerSecond must be positive (or set useCQITable)")
		}
		capModel = radio.FixedRate{Rate: fi.Resources.BitsPerRBPerSecond}
	}
	in := &core.Instance{
		Alpha:  fi.Alpha,
		Blocks: make(map[string]core.BlockSpec, len(fi.Blocks)),
		Res: core.Resources{
			RBs:                fi.Resources.RBs,
			ComputeSeconds:     fi.Resources.ComputeSeconds,
			MemoryGB:           fi.Resources.MemoryGB,
			TrainBudgetSeconds: fi.Resources.TrainBudgetSeconds,
			Capacity:           capModel,
		},
	}
	for id, b := range fi.Blocks {
		in.Blocks[id] = core.BlockSpec{
			ID:             id,
			ComputeSeconds: b.ComputeSeconds,
			MemoryGB:       b.MemoryGB,
			TrainSeconds:   b.TrainSeconds,
		}
	}
	for _, t := range fi.Tasks {
		task := core.Task{
			ID:          t.ID,
			Priority:    t.Priority,
			Rate:        t.Rate,
			MinAccuracy: t.MinAccuracy,
			MaxLatency:  time.Duration(t.MaxLatencyMS * float64(time.Millisecond)),
			InputBits:   t.InputBits,
			SNRdB:       t.SNRdB,
		}
		for _, p := range t.Paths {
			task.Paths = append(task.Paths, core.PathSpec{
				ID: p.ID, DNN: p.DNN, Blocks: p.Blocks, Accuracy: p.Accuracy,
			})
		}
		in.Tasks = append(in.Tasks, task)
	}
	if err := in.Validate(); err != nil {
		return nil, err
	}
	return in, nil
}

func toFileSolution(sol *core.Solution) fileSolution {
	out := fileSolution{
		Cost:          sol.Cost,
		MemoryGB:      sol.Breakdown.MemoryGB,
		ComputeUsage:  sol.Breakdown.ComputeUsage,
		RBsAllocated:  sol.Breakdown.RBsAllocated,
		TrainSeconds:  sol.Breakdown.TrainSeconds,
		AdmittedTasks: sol.Breakdown.AdmittedTasks,
		RuntimeMS:     float64(sol.Runtime) / float64(time.Millisecond),
	}
	for _, a := range sol.Assignments {
		fa := fileAssignment{Task: a.TaskID, Admitted: a.Admitted(), Z: a.Z, RBs: a.RBs}
		if a.Path != nil {
			fa.DNN = a.Path.DNN
			fa.Path = a.Path.ID
		}
		out.Assignments = append(out.Assignments, fa)
	}
	return out
}

func printText(sol *core.Solution) {
	fmt.Printf("DOT cost %.4f (admission %.4f + training %.4f + radio %.4f + inference %.4f)\n",
		sol.Cost, sol.Breakdown.AdmissionTerm, sol.Breakdown.TrainTerm,
		sol.Breakdown.RadioTerm, sol.Breakdown.InferTerm)
	fmt.Printf("memory %.2f GB | compute %.4f s/s | RBs %.1f | training %.0f s | solved in %v\n",
		sol.Breakdown.MemoryGB, sol.Breakdown.ComputeUsage, sol.Breakdown.RBsAllocated,
		sol.Breakdown.TrainSeconds, sol.Runtime.Round(time.Microsecond))
	for _, a := range sol.Assignments {
		if !a.Admitted() {
			fmt.Printf("  %-12s REJECTED\n", a.TaskID)
			continue
		}
		fmt.Printf("  %-12s z=%.3f  r=%d RBs  dnn=%s path=%s\n",
			a.TaskID, a.Z, a.RBs, a.Path.DNN, a.Path.ID)
	}
}

func printExample() int {
	example := fileInstance{
		Alpha: 0.5,
		Resources: fileResources{
			RBs: 50, ComputeSeconds: 2.5, MemoryGB: 8, TrainBudgetSeconds: 1000,
			BitsPerRBPerSecond: 0.35e6,
		},
		Blocks: map[string]fileBlock{
			"base/s1":     {ComputeSeconds: 0.0012, MemoryGB: 0.10},
			"base/s2":     {ComputeSeconds: 0.0017, MemoryGB: 0.16},
			"base/s3":     {ComputeSeconds: 0.0024, MemoryGB: 0.28},
			"ft/cars/s4":  {ComputeSeconds: 0.0032, MemoryGB: 0.52, TrainSeconds: 120},
			"ft/cars/s4p": {ComputeSeconds: 0.0008, MemoryGB: 0.10, TrainSeconds: 120},
		},
		Tasks: []fileTask{{
			ID: "detect-cars", Priority: 0.8, Rate: 5, MinAccuracy: 0.7,
			MaxLatencyMS: 300, InputBits: 350e3, SNRdB: 20,
			Paths: []filePath{
				{ID: "full", DNN: "resnet18", Accuracy: 0.92,
					Blocks: []string{"base/s1", "base/s2", "base/s3", "ft/cars/s4"}},
				{ID: "pruned", DNN: "resnet18-p80", Accuracy: 0.88,
					Blocks: []string{"base/s1", "base/s2", "base/s3", "ft/cars/s4p"}},
			},
		}},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(example); err != nil {
		fmt.Fprintln(os.Stderr, "offloadnn:", err)
		return 1
	}
	return 0
}

// builtinScenario parses "small:N", "large:LOAD" or "hetero:LOAD".
func builtinScenario(spec string) (*core.Instance, error) {
	kind, arg, ok := strings.Cut(spec, ":")
	if !ok {
		return nil, fmt.Errorf("scenario %q: want kind:arg (e.g. small:5)", spec)
	}
	parseLoad := func() (workload.Load, error) {
		switch arg {
		case "low":
			return workload.LoadLow, nil
		case "medium":
			return workload.LoadMedium, nil
		case "high":
			return workload.LoadHigh, nil
		default:
			return 0, fmt.Errorf("scenario %q: load must be low|medium|high", spec)
		}
	}
	switch kind {
	case "small":
		n, err := strconv.Atoi(arg)
		if err != nil {
			return nil, fmt.Errorf("scenario %q: %w", spec, err)
		}
		return workload.SmallScenario(n)
	case "large":
		load, err := parseLoad()
		if err != nil {
			return nil, err
		}
		return workload.LargeScenario(load)
	case "hetero":
		load, err := parseLoad()
		if err != nil {
			return nil, err
		}
		return workload.HeterogeneousScenario(load)
	default:
		return nil, fmt.Errorf("scenario %q: unknown kind %q", spec, kind)
	}
}
