package offloadnn_test

import (
	"context"
	"fmt"
	"time"

	"offloadnn"
)

// ExampleSolve solves a hand-built single-task instance and prints the
// admission decision.
func ExampleSolve() {
	blocks := map[string]offloadnn.BlockSpec{
		"backbone": {ID: "backbone", ComputeSeconds: 0.004, MemoryGB: 0.5},
		"head":     {ID: "head", ComputeSeconds: 0.002, MemoryGB: 0.3, TrainSeconds: 50},
	}
	in := &offloadnn.Instance{
		Blocks: blocks,
		Res: offloadnn.Resources{
			RBs: 20, ComputeSeconds: 1, MemoryGB: 4, TrainBudgetSeconds: 500,
			Capacity: offloadnn.PaperCapacity(),
		},
		Alpha: 0.5,
		Tasks: []offloadnn.Task{{
			ID: "detect-cars", Priority: 0.9, Rate: 4, MinAccuracy: 0.7,
			MaxLatency: 400 * time.Millisecond, InputBits: 350e3, SNRdB: 15,
			Paths: []offloadnn.PathSpec{{
				ID: "full", DNN: "resnet18", Blocks: []string{"backbone", "head"}, Accuracy: 0.85,
			}},
		}},
	}
	sol, err := offloadnn.Solve(context.Background(), in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	a := sol.Assignments[0]
	fmt.Printf("%s: z=%.1f r=%d path=%s\n", a.TaskID, a.Z, a.RBs, a.Path.ID)
	// Output:
	// detect-cars: z=1.0 r=4 path=full
}

// ExampleSmallScenario builds the paper's Table-IV small-scale instance.
func ExampleSmallScenario() {
	in, err := offloadnn.SmallScenario(5)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("tasks=%d paths/task=%d R=%d C=%.1f M=%.0f\n",
		len(in.Tasks), len(in.Tasks[0].Paths),
		in.Res.RBs, in.Res.ComputeSeconds, in.Res.MemoryGB)
	// Output:
	// tasks=5 paths/task=15 R=50 C=2.5 M=8
}

// ExampleSolveSEMORAN contrasts the baseline's binary admission with
// OffloaDNN on the large medium-load scenario.
func ExampleSolveSEMORAN() {
	in, err := offloadnn.LargeScenario(offloadnn.LoadMedium)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	ours, err := offloadnn.Solve(context.Background(), in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	baseline, err := offloadnn.SolveSEMORAN(in, offloadnn.DefaultSEMORANConfig())
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Printf("OffloaDNN admits %d tasks; SEM-O-RAN admits %d\n",
		ours.Breakdown.AdmittedTasks, baseline.AdmittedTasks)
	// Output:
	// OffloaDNN admits 19 tasks; SEM-O-RAN admits 15
}

// ExampleBuildTree inspects the weighted tree of the small scenario.
func ExampleBuildTree() {
	in, err := offloadnn.SmallScenario(2)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	tree, err := offloadnn.BuildTree(in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for i, layer := range tree.Layers {
		fmt.Printf("layer %d: task %s, %d vertices\n",
			i, in.Tasks[layer.TaskIndex].ID, len(layer.Vertices))
	}
	// Output:
	// layer 0: task task-1, 4 vertices
	// layer 1: task task-2, 13 vertices
}

// ExampleCheck demonstrates constraint verification catching a violation.
func ExampleCheck() {
	in, err := offloadnn.SmallScenario(1)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	sol, err := offloadnn.Solve(context.Background(), in)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("solver output feasible:", offloadnn.Check(in, sol.Assignments) == nil)
	sol.Assignments[0].RBs = 0 // starve the slice
	fmt.Println("starved slice feasible:", offloadnn.Check(in, sol.Assignments) == nil)
	// Output:
	// solver output feasible: true
	// starved slice feasible: false
}
