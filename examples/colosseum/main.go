// Colosseum-style end-to-end validation (the Fig. 11 experiment as a
// library example): the Table-IV small-scale tasks are admitted through
// the OffloaDNN controller, radio slices and DNN blocks are deployed, and
// a 20-second discrete-event emulation measures every task's end-to-end
// latency against its target.
//
//	go run ./examples/colosseum
package main

import (
	"fmt"
	"log"
	"time"

	"offloadnn"
)

func main() {
	in, err := offloadnn.SmallScenario(5)
	if err != nil {
		log.Fatalf("scenario: %v", err)
	}
	// The Colosseum cell is 20 MHz FDD: 100 RBs, all for the LTE cell.
	res := in.Res
	res.RBs = 100

	controller := offloadnn.NewController(res)
	dep, err := controller.Admit(in.Tasks, in.Blocks, in.Alpha)
	if err != nil {
		log.Fatalf("admission: %v", err)
	}
	fmt.Printf("controller deployed %d blocks (%.2f GB) and sliced %d/%d RBs\n",
		len(dep.ActiveBlocks), dep.MemoryUsedGB, dep.Slices.Used(), dep.Slices.Total())

	cfg := offloadnn.DefaultEmulatorConfig()
	cfg.Duration = 20 * time.Second
	em, err := offloadnn.NewEmulator(in, dep, cfg)
	if err != nil {
		log.Fatalf("emulator: %v", err)
	}
	result, err := em.Run()
	if err != nil {
		log.Fatalf("run: %v", err)
	}

	fmt.Printf("served %d frames in %v of emulated time\n\n", result.FramesServed, cfg.Duration)
	allGood := true
	for _, tr := range result.Traces {
		if len(tr.Samples) == 0 {
			continue
		}
		var worst time.Duration
		var sum time.Duration
		for _, s := range tr.Samples {
			sum += s.Latency
			if s.Latency > worst {
				worst = s.Latency
			}
		}
		mean := sum / time.Duration(len(tr.Samples))
		status := "OK"
		if tr.Violations > 0 {
			status = fmt.Sprintf("%d VIOLATIONS", tr.Violations)
			allGood = false
		}
		fmt.Printf("%-8s target %v  mean %v  worst %v  %s\n",
			tr.TaskID, tr.Target, mean.Round(time.Millisecond), worst.Round(time.Millisecond), status)
	}
	if allGood {
		fmt.Println("\nall tasks stayed within their latency targets — the Fig. 11 result")
	}
}
