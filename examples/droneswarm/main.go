// Drone swarm: aerial survey tasks offload video frames over a shared
// cell whose radio is the scarce resource. The example exercises the DOT
// formulation's input-quality levels Q_τ: each task may transmit frames
// at full, 720p-class or 480p-class quality, trading bits per frame
// against accuracy. OffloaDNN picks per-task quality jointly with the DNN
// path and slice size — reduced quality where the accuracy floor allows,
// full quality where it does not — and a binary-admission ablation shows
// what fractional admission buys on the same instance.
//
//	go run ./examples/droneswarm
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"offloadnn"
)

func main() {
	catalog := map[string]offloadnn.BlockSpec{}
	tasks := []offloadnn.Task{
		droneTask(catalog, "crop-health", 0.9, 6, 0.82, 400*time.Millisecond),
		droneTask(catalog, "fence-breach", 1.0, 8, 0.70, 250*time.Millisecond),
		droneTask(catalog, "herd-count", 0.6, 4, 0.60, 600*time.Millisecond),
		droneTask(catalog, "fire-watch", 0.8, 5, 0.65, 300*time.Millisecond),
	}
	in := &offloadnn.Instance{
		Tasks:  tasks,
		Blocks: catalog,
		Res: offloadnn.Resources{
			RBs:                30, // tight radio: quality adaptation matters
			ComputeSeconds:     4,
			MemoryGB:           8,
			TrainBudgetSeconds: 1000,
			Capacity:           offloadnn.PaperCapacity(),
		},
		Alpha: 0.5,
	}

	sol, err := offloadnn.Solve(context.Background(), in)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := offloadnn.Check(in, sol.Assignments); err != nil {
		log.Fatalf("verification: %v", err)
	}

	fmt.Println("== OffloaDNN with per-task quality selection ==")
	for i, a := range sol.Assignments {
		task := in.Tasks[i]
		if !a.Admitted() {
			fmt.Printf("  %-13s rejected\n", a.TaskID)
			continue
		}
		quality := "full"
		if a.Quality != nil {
			quality = a.Quality.ID
		}
		fmt.Printf("  %-13s z=%.2f r=%-2d quality=%-5s β=%.0fKb acc=%.2f (floor %.2f) path=%s\n",
			a.TaskID, a.Z, a.RBs, quality, a.Bits(&task)/1e3,
			a.Accuracy(), task.MinAccuracy, a.Path.ID)
	}
	fmt.Printf("  RBs %.0f/%d | memory %.2f GB | weighted admission %.2f\n\n",
		sol.Breakdown.RBsAllocated, in.Res.RBs, sol.Breakdown.MemoryGB,
		sol.Breakdown.WeightedAdmission)

	// Ablation on the same instance: all-or-nothing admission.
	binary, err := offloadnn.SolveConfigured(in, offloadnn.HeuristicConfig{BinaryAdmission: true})
	if err != nil {
		log.Fatalf("binary variant: %v", err)
	}
	fmt.Printf("binary-admission ablation: %d tasks admitted (weighted %.2f) vs %d (weighted %.2f) fractional\n",
		binary.Breakdown.AdmittedTasks, binary.Breakdown.WeightedAdmission,
		sol.Breakdown.AdmittedTasks, sol.Breakdown.WeightedAdmission)
}

func droneTask(catalog map[string]offloadnn.BlockSpec, id string, priority, rate, minAcc float64,
	latency time.Duration) offloadnn.Task {
	stageCompute := []float64{0.0012, 0.0017, 0.0024}
	stageMemory := []float64{0.10, 0.16, 0.28}
	prefix := make([]string, 3)
	for s := 0; s < 3; s++ {
		bid := fmt.Sprintf("aerialnet/s%d", s+1)
		if _, ok := catalog[bid]; !ok {
			catalog[bid] = offloadnn.BlockSpec{ID: bid, ComputeSeconds: stageCompute[s], MemoryGB: stageMemory[s]}
		}
		prefix[s] = bid
	}
	full := "ft/" + id + "/s4"
	pruned := full + "/p80"
	catalog[full] = offloadnn.BlockSpec{ID: full, ComputeSeconds: 0.0032, MemoryGB: 0.52, TrainSeconds: 110}
	catalog[pruned] = offloadnn.BlockSpec{ID: pruned, ComputeSeconds: 0.0008, MemoryGB: 0.10, TrainSeconds: 110}
	return offloadnn.Task{
		ID:          id,
		Priority:    priority,
		Rate:        rate,
		MinAccuracy: minAcc,
		MaxLatency:  latency,
		InputBits:   350e3,
		SNRdB:       17,
		Qualities: []offloadnn.QualityLevel{
			{ID: "q720", Bits: 230e3, AccuracyDelta: 0.015},
			{ID: "q480", Bits: 140e3, AccuracyDelta: 0.05},
		},
		Paths: []offloadnn.PathSpec{
			{ID: "full", DNN: "aerialnet",
				Blocks: append(append([]string{}, prefix...), full), Accuracy: 0.92},
			{ID: "pruned-80", DNN: "aerialnet-p80",
				Blocks: append(append([]string{}, prefix...), pruned), Accuracy: 0.85},
		},
	}
}
