// Quickstart: build a small DOT instance by hand, solve it with the
// OffloaDNN heuristic, and inspect the decisions.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"offloadnn"
)

func main() {
	// Block catalog: a shared pre-trained backbone prefix, plus two
	// task-specific final stages (full and 80%-pruned) per task. Costs are
	// the experimentally characterized c(s), µ(s), ct(s).
	blocks := map[string]offloadnn.BlockSpec{
		"base/s1": {ID: "base/s1", ComputeSeconds: 0.0012, MemoryGB: 0.10},
		"base/s2": {ID: "base/s2", ComputeSeconds: 0.0017, MemoryGB: 0.16},
		"base/s3": {ID: "base/s3", ComputeSeconds: 0.0024, MemoryGB: 0.28},
	}
	tasks := []offloadnn.Task{
		newTask(blocks, "plate-reader", 0.9, 4, 0.85, 250*time.Millisecond),
		newTask(blocks, "pedestrians", 0.8, 6, 0.75, 300*time.Millisecond),
		newTask(blocks, "litter-watch", 0.4, 2, 0.60, 600*time.Millisecond),
	}
	in := &offloadnn.Instance{
		Tasks:  tasks,
		Blocks: blocks,
		Res: offloadnn.Resources{
			RBs:                50,
			ComputeSeconds:     2.5,
			MemoryGB:           8,
			TrainBudgetSeconds: 1000,
			Capacity:           offloadnn.PaperCapacity(), // 0.35 Mb/s per RB
		},
		Alpha: 0.5,
	}

	sol, err := offloadnn.Solve(context.Background(), in)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := offloadnn.Check(in, sol.Assignments); err != nil {
		log.Fatalf("solution failed verification: %v", err)
	}

	fmt.Printf("DOT cost %.4f — solved in %v\n", sol.Cost, sol.Runtime.Round(time.Microsecond))
	fmt.Printf("memory %.2f/%.0f GB | compute %.3f/%.1f s/s | RBs %.0f/%d\n\n",
		sol.Breakdown.MemoryGB, in.Res.MemoryGB,
		sol.Breakdown.ComputeUsage, in.Res.ComputeSeconds,
		sol.Breakdown.RBsAllocated, in.Res.RBs)
	for _, a := range sol.Assignments {
		if !a.Admitted() {
			fmt.Printf("%-14s rejected\n", a.TaskID)
			continue
		}
		fmt.Printf("%-14s admitted z=%.2f  slice=%d RBs  path=%s (accuracy %.2f)\n",
			a.TaskID, a.Z, a.RBs, a.Path.ID, a.Path.Accuracy)
	}
}

// newTask assembles a task with a full and a pruned candidate path,
// registering the task-specific blocks in the shared catalog.
func newTask(blocks map[string]offloadnn.BlockSpec, id string, priority, rate, minAcc float64,
	latency time.Duration) offloadnn.Task {
	full := "ft/" + id + "/s4"
	pruned := full + "/p80"
	blocks[full] = offloadnn.BlockSpec{ID: full, ComputeSeconds: 0.0032, MemoryGB: 0.52, TrainSeconds: 120}
	blocks[pruned] = offloadnn.BlockSpec{ID: pruned, ComputeSeconds: 0.0008, MemoryGB: 0.10, TrainSeconds: 120}
	prefix := []string{"base/s1", "base/s2", "base/s3"}
	return offloadnn.Task{
		ID:          id,
		Priority:    priority,
		Rate:        rate,
		MinAccuracy: minAcc,
		MaxLatency:  latency,
		InputBits:   350e3,
		SNRdB:       20,
		Paths: []offloadnn.PathSpec{
			{ID: "full", DNN: "resnet18", Blocks: append(append([]string{}, prefix...), full), Accuracy: 0.92},
			{ID: "pruned-80", DNN: "resnet18-p80", Blocks: append(append([]string{}, prefix...), pruned), Accuracy: 0.86},
		},
	}
}
