// Smart factory: mixes accuracy-critical quality-assurance inspection
// with latency-critical safety monitoring on one edge server, and shows
// how OffloaDNN shapes the DNNs differently per task: the QA task is
// forced onto the full-accuracy (expensive) path, the safety task onto a
// heavily pruned (fast) one, while both share the pre-trained backbone.
// The example also contrasts the OffloaDNN decision with the SEM-O-RAN
// baseline, which deploys full unshared DNNs and admits binarily.
//
//	go run ./examples/smartfactory
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"offloadnn"
)

func main() {
	catalog := map[string]offloadnn.BlockSpec{}
	tasks := []offloadnn.Task{
		// Defect inspection: misclassifying a defective part is costly —
		// the accuracy bar is high, latency relaxed.
		factoryTask(catalog, "qa-inspect", taskParams{
			priority: 0.95, rate: 3, minAcc: 0.90, latency: 800 * time.Millisecond,
		}),
		// Worker-safety monitoring: latency-critical, accuracy modest.
		factoryTask(catalog, "safety-zone", taskParams{
			priority: 1.0, rate: 10, minAcc: 0.65, latency: 150 * time.Millisecond,
		}),
		// Inventory tracking: best-effort.
		factoryTask(catalog, "pallet-count", taskParams{
			priority: 0.3, rate: 1, minAcc: 0.60, latency: 1000 * time.Millisecond,
		}),
	}

	in := &offloadnn.Instance{
		Tasks:  tasks,
		Blocks: catalog,
		Res: offloadnn.Resources{
			RBs:                80,
			ComputeSeconds:     3,
			MemoryGB:           6,
			TrainBudgetSeconds: 1000,
			Capacity:           offloadnn.PaperCapacity(),
		},
		Alpha: 0.5,
	}

	sol, err := offloadnn.Solve(context.Background(), in)
	if err != nil {
		log.Fatalf("solve: %v", err)
	}
	if err := offloadnn.Check(in, sol.Assignments); err != nil {
		log.Fatalf("verification: %v", err)
	}

	fmt.Println("== OffloaDNN (DNN shaping + sharing + fractional admission) ==")
	for i, a := range sol.Assignments {
		task := in.Tasks[i]
		if !a.Admitted() {
			fmt.Printf("  %-13s rejected\n", a.TaskID)
			continue
		}
		lat := latencyOf(in, &task, a)
		fmt.Printf("  %-13s z=%.2f r=%-3d path=%-10s acc=%.2f (floor %.2f)  latency %v (bound %v)\n",
			a.TaskID, a.Z, a.RBs, a.Path.ID, a.Path.Accuracy, task.MinAccuracy,
			lat.Round(time.Millisecond), task.MaxLatency)
	}
	fmt.Printf("  memory %.2f GB | inference compute %.4f s/s | training %.0f s\n\n",
		sol.Breakdown.MemoryGB, sol.Breakdown.ComputeUsage, sol.Breakdown.TrainSeconds)

	rep, err := offloadnn.SolveSEMORAN(in, offloadnn.DefaultSEMORANConfig())
	if err != nil {
		log.Fatalf("baseline: %v", err)
	}
	fmt.Println("== SEM-O-RAN baseline (full unshared DNNs, binary admission) ==")
	for _, d := range rep.Decisions {
		if d.Admitted {
			fmt.Printf("  %-13s admitted r=%d (private %.2f GB)\n", d.TaskID, d.RBs, d.MemoryGB)
		} else {
			fmt.Printf("  %-13s rejected\n", d.TaskID)
		}
	}
	fmt.Printf("  memory %.2f GB | inference compute %.4f s/s\n\n", rep.MemoryGB, rep.ComputeUsage)

	fmt.Printf("sharing + shaping saves %.0f%% memory and %.0f%% inference compute here\n",
		(1-sol.Breakdown.MemoryGB/rep.MemoryGB)*100,
		(1-sol.Breakdown.ComputeUsage/rep.ComputeUsage)*100)
}

func latencyOf(in *offloadnn.Instance, task *offloadnn.Task, a offloadnn.Assignment) time.Duration {
	lat, err := in.EndToEndLatency(task, a)
	if err != nil {
		return 0
	}
	return lat
}

type taskParams struct {
	priority float64
	rate     float64
	minAcc   float64
	latency  time.Duration
}

func factoryTask(catalog map[string]offloadnn.BlockSpec, id string, p taskParams) offloadnn.Task {
	stageCompute := []float64{0.0012, 0.0017, 0.0024}
	stageMemory := []float64{0.10, 0.16, 0.28}
	prefix := make([]string, 3)
	for s := 0; s < 3; s++ {
		bid := fmt.Sprintf("factorynet/s%d", s+1)
		if _, ok := catalog[bid]; !ok {
			catalog[bid] = offloadnn.BlockSpec{ID: bid, ComputeSeconds: stageCompute[s], MemoryGB: stageMemory[s]}
		}
		prefix[s] = bid
	}
	full := "ft/" + id + "/s4"
	pruned := full + "/p80"
	catalog[full] = offloadnn.BlockSpec{ID: full, ComputeSeconds: 0.0032, MemoryGB: 0.52, TrainSeconds: 120}
	catalog[pruned] = offloadnn.BlockSpec{ID: pruned, ComputeSeconds: 0.0008, MemoryGB: 0.10, TrainSeconds: 120}
	return offloadnn.Task{
		ID:          id,
		Priority:    p.priority,
		Rate:        p.rate,
		MinAccuracy: p.minAcc,
		MaxLatency:  p.latency,
		InputBits:   350e3,
		SNRdB:       22,
		Paths: []offloadnn.PathSpec{
			{ID: "full", DNN: "factorynet",
				Blocks: append(append([]string{}, prefix...), full), Accuracy: 0.93},
			{ID: "pruned-80", DNN: "factorynet-p80",
				Blocks: append(append([]string{}, prefix...), pruned), Accuracy: 0.84},
		},
	}
}
