// Traffic monitor: a smart-intersection deployment that admits CV tasks
// *incrementally* (the dynamic scenario of Sec. III-B): an initial
// admission round deploys DNN blocks; when new tasks arrive later, the
// already-deployed blocks are free (zero memory and training cost) and
// the remaining capacities are discounted, so the controller only pays
// for the increment.
//
//	go run ./examples/trafficmonitor
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"offloadnn"
)

func main() {
	catalog := map[string]offloadnn.BlockSpec{}
	res := offloadnn.Resources{
		RBs:                100,
		ComputeSeconds:     5,
		MemoryGB:           12,
		TrainBudgetSeconds: 1000,
		Capacity:           offloadnn.PaperCapacity(),
	}

	// Morning shift: two permanent monitoring tasks.
	morning := []offloadnn.Task{
		trafficTask(catalog, "count-vehicles", 0.9, 5, 0.75, 300*time.Millisecond),
		trafficTask(catalog, "detect-jams", 0.8, 2.5, 0.70, 500*time.Millisecond),
	}
	in1 := &offloadnn.Instance{Tasks: morning, Blocks: catalog, Res: res, Alpha: 0.5}
	sol1, err := offloadnn.Solve(context.Background(), in1)
	if err != nil {
		log.Fatalf("morning round: %v", err)
	}
	report("morning round", in1, sol1)

	// Rush hour: two urgent tasks arrive. Deployed blocks become free, and
	// the capacities already consumed by the morning tasks are discounted.
	deployed := map[string]bool{}
	for _, id := range sol1.Breakdown.ActiveBlocks {
		deployed[id] = true
	}
	discounted := res
	discounted.MemoryGB -= sol1.Breakdown.MemoryGB
	discounted.ComputeSeconds -= sol1.Breakdown.ComputeUsage
	discounted.RBs -= int(sol1.Breakdown.RBsAllocated + 0.5)

	rush := []offloadnn.Task{
		trafficTask(catalog, "emergency-lane", 1.0, 7.5, 0.80, 250*time.Millisecond),
		trafficTask(catalog, "red-light-cam", 0.6, 5, 0.65, 400*time.Millisecond),
	}
	in2 := &offloadnn.Instance{
		Tasks:       rush,
		Blocks:      catalog,
		Res:         discounted,
		Alpha:       0.5,
		Predeployed: deployed,
	}
	sol2, err := offloadnn.Solve(context.Background(), in2)
	if err != nil {
		log.Fatalf("rush-hour round: %v", err)
	}
	report("rush-hour round (incremental)", in2, sol2)

	// The incremental round reuses the morning deployment: any base block
	// already active costs nothing now.
	freeReuses := 0
	for _, id := range sol2.Breakdown.ActiveBlocks {
		if deployed[id] {
			freeReuses++
		}
	}
	fmt.Printf("blocks reused at zero cost from the morning deployment: %d\n", freeReuses)
}

func report(name string, in *offloadnn.Instance, sol *offloadnn.Solution) {
	if err := offloadnn.Check(in, sol.Assignments); err != nil {
		log.Fatalf("%s: verification: %v", name, err)
	}
	fmt.Printf("== %s ==\n", name)
	fmt.Printf("cost %.4f | +memory %.2f GB | +compute %.3f s/s | +RBs %.0f | +training %.0f s\n",
		sol.Cost, sol.Breakdown.MemoryGB, sol.Breakdown.ComputeUsage,
		sol.Breakdown.RBsAllocated, sol.Breakdown.TrainSeconds)
	for _, a := range sol.Assignments {
		if a.Admitted() {
			fmt.Printf("  %-16s z=%.2f r=%d path=%s\n", a.TaskID, a.Z, a.RBs, a.Path.ID)
		} else {
			fmt.Printf("  %-16s rejected\n", a.TaskID)
		}
	}
	fmt.Println()
}

func trafficTask(catalog map[string]offloadnn.BlockSpec, id string, priority, rate, minAcc float64,
	latency time.Duration) offloadnn.Task {
	// Shared backbone stages (pre-trained on road scenes).
	stageCompute := []float64{0.0012, 0.0017, 0.0024}
	stageMemory := []float64{0.10, 0.16, 0.28}
	prefix := make([]string, 3)
	for s := 0; s < 3; s++ {
		bid := fmt.Sprintf("roadnet/s%d", s+1)
		if _, ok := catalog[bid]; !ok {
			catalog[bid] = offloadnn.BlockSpec{ID: bid, ComputeSeconds: stageCompute[s], MemoryGB: stageMemory[s]}
		}
		prefix[s] = bid
	}
	full := "ft/" + id + "/s4"
	pruned := full + "/p80"
	catalog[full] = offloadnn.BlockSpec{ID: full, ComputeSeconds: 0.0032, MemoryGB: 0.52, TrainSeconds: 110}
	catalog[pruned] = offloadnn.BlockSpec{ID: pruned, ComputeSeconds: 0.0008, MemoryGB: 0.10, TrainSeconds: 110}
	return offloadnn.Task{
		ID:          id,
		Priority:    priority,
		Rate:        rate,
		MinAccuracy: minAcc,
		MaxLatency:  latency,
		InputBits:   350e3,
		SNRdB:       18,
		Paths: []offloadnn.PathSpec{
			{ID: "full", DNN: "roadnet", Blocks: append(append([]string{}, prefix...), full), Accuracy: 0.91},
			{ID: "pruned-80", DNN: "roadnet-p80", Blocks: append(append([]string{}, prefix...), pruned), Accuracy: 0.85},
		},
	}
}
