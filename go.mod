module offloadnn

go 1.22
