package offloadnn

// Public-API tests for the incremental solver session and the
// context-aware solver entry points: a ChurnTimeline-driven equivalence
// check (every epoch of a SolverSession must match a from-scratch Solve
// to 1e-9), and cancellation tests proving the Ctx variants return
// promptly with the context's error.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"offloadnn/internal/workload"
)

// TestSessionMatchesSolveAcrossChurnTimeline drives the full Table-IV
// small-scenario churn timeline (arrivals, departures, returns, and rate
// changes) through a SolverSession, mirroring the serving registry's
// bookkeeping, and checks after every event that the incremental solution
// equals a from-scratch Solve of the equivalent instance.
func TestSessionMatchesSolveAcrossChurnTimeline(t *testing.T) {
	events, err := ChurnTimeline(workload.ChurnParams{
		Tasks:     5,
		Duration:  time.Minute,
		Seed:      11,
		RateChurn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	base, err := SmallScenario(1)
	if err != nil {
		t.Fatal(err)
	}

	// Shadow registry state: the block catalog grows as paths are built,
	// seq drives the catalog's per-registration accuracy jitter, and
	// shadow mirrors the session's task order (removes compact, adds
	// append) for the from-scratch comparison instance.
	catalog := workload.SmallCatalogParams()
	blocks := make(map[string]BlockSpec)
	seq := 0
	var shadow []Task
	var sess *SolverSession
	rateKinds := 0

	for ei, ev := range events {
		var delta TaskDelta
		switch ev.Kind {
		case workload.ChurnRegister:
			task := ev.Task
			task.Paths = catalog.BuildPaths(blocks, task.ID, seq)
			seq++
			delta.Add = []Task{task}
			delta.AddBlocks = blocks
			shadow = append(shadow, task)
		case workload.ChurnDeregister:
			delta.Remove = []string{ev.Task.ID}
			for i := range shadow {
				if shadow[i].ID == ev.Task.ID {
					shadow = append(shadow[:i], shadow[i+1:]...)
					break
				}
			}
		case workload.ChurnRateChange:
			rateKinds++
			delta.Rate = map[string]float64{ev.Task.ID: ev.Task.Rate}
			for i := range shadow {
				if shadow[i].ID == ev.Task.ID {
					shadow[i].Rate = ev.Task.Rate
					break
				}
			}
		default:
			t.Fatalf("event %d: unknown kind %v", ei, ev.Kind)
		}

		if sess == nil {
			first := &Instance{Tasks: []Task{delta.Add[0]}, Blocks: blocks, Res: base.Res, Alpha: base.Alpha}
			if sess, err = NewSolverSession(first); err != nil {
				t.Fatalf("event %d: new session: %v", ei, err)
			}
			delta = TaskDelta{}
		}
		got, err := sess.Resolve(context.Background(), delta)
		if err != nil {
			t.Fatalf("event %d (%v %s): %v", ei, ev.Kind, ev.Task.ID, err)
		}

		scratchIn := &Instance{
			Tasks:  append([]Task(nil), shadow...),
			Blocks: blocks,
			Res:    base.Res,
			Alpha:  base.Alpha,
		}
		want, err := Solve(context.Background(), scratchIn)
		if err != nil {
			t.Fatalf("event %d: scratch solve: %v", ei, err)
		}
		if math.Abs(got.Cost-want.Cost) > 1e-9 {
			t.Fatalf("event %d (%v %s): incremental cost %v differs from scratch %v",
				ei, ev.Kind, ev.Task.ID, got.Cost, want.Cost)
		}
		for i := range want.Assignments {
			g, w := got.Assignments[i], want.Assignments[i]
			if g.TaskID != w.TaskID || math.Abs(g.Z-w.Z) > 1e-9 || g.RBs != w.RBs {
				t.Fatalf("event %d task %s: (z=%v, r=%d) != scratch (z=%v, r=%d)",
					ei, g.TaskID, g.Z, g.RBs, w.Z, w.RBs)
			}
		}
		if err := Check(sess.Instance(), got.Assignments); err != nil {
			t.Fatalf("event %d: incremental solution violates constraints: %v", ei, err)
		}
	}
	if rateKinds == 0 {
		t.Fatal("timeline produced no rate-change events; RateChurn gate broken")
	}
	st := sess.Stats()
	if st.Epochs != uint64(len(events)) {
		t.Fatalf("session saw %d epochs for %d events", st.Epochs, len(events))
	}
	if st.CliqueHits == 0 || st.CliqueMisses == 0 {
		t.Fatalf("expected both cache hits and misses, got %d / %d", st.CliqueHits, st.CliqueMisses)
	}
}

// TestSolveCtxCanceled proves a canceled context aborts the heuristic on
// the 20-task large scenario promptly, with the context's error exposed
// through errors.Is.
func TestSolveCtxCanceled(t *testing.T) {
	in, err := LargeScenario(LoadHigh)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = SolveCtx(ctx, in)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("canceled solve took %v; want prompt return", elapsed)
	}
}

// TestSolveOptimalCtxDeadline proves the exhaustive solver — hours at
// T=5 — honors a millisecond deadline.
func TestSolveOptimalCtxDeadline(t *testing.T) {
	in, err := SmallScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, _, err = SolveOptimalCtx(ctx, in)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("want context.DeadlineExceeded, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bound solve took %v; want prompt return", elapsed)
	}

	// The parallel variant honors the same deadline.
	ctx2, cancel2 := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel2()
	if _, _, err := SolveOptimalParallelCtx(ctx2, in, 2); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("parallel: want context.DeadlineExceeded, got %v", err)
	}
}

// TestSentinelErrors pins the public error hierarchy: both named causes
// wrap ErrInfeasible, and an over-constrained instance surfaces
// ErrNoFeasiblePath through Solve.
func TestSentinelErrors(t *testing.T) {
	if !errors.Is(ErrNoFeasiblePath, ErrInfeasible) {
		t.Fatal("ErrNoFeasiblePath must wrap ErrInfeasible")
	}
	if !errors.Is(ErrOverCapacity, ErrInfeasible) {
		t.Fatal("ErrOverCapacity must wrap ErrInfeasible")
	}

	// A capacity violation found by Check carries both identities.
	in, err := SmallScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(context.Background(), in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Breakdown.AdmittedTasks == 0 {
		t.Fatal("small scenario admitted nothing; capacity test needs deployed blocks")
	}
	in.Res.MemoryGB = 1e-6 // shrink the pool under the deployed footprint
	err = Check(in, sol.Assignments)
	if !errors.Is(err, ErrOverCapacity) {
		t.Fatalf("want error wrapping ErrOverCapacity, got %v", err)
	}
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("capacity violation must also wrap ErrInfeasible, got %v", err)
	}
}
