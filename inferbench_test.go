package offloadnn

// Inference-precision benchmark harness: TestRecordInferBench regenerates
// the checked-in BENCH_infer.json — the model × precision × batch matrix
// (ns/op, allocs/op, top-1 delta vs float64) behind the quantization
// numbers quoted in README.md and DESIGN.md §5j.

import (
	"encoding/json"
	"fmt"
	"os"
	"testing"

	"offloadnn/internal/dnn"
	"offloadnn/internal/tensor"
)

// inferBenchRun is one cell of the recorded model × precision × batch
// matrix.
type inferBenchRun struct {
	Model     string  `json:"model"`
	Precision string  `json:"precision"`
	Batch     int     `json:"batch"`
	NsPerOp   float64 `json:"ns_per_op"`
	AllocsOp  float64 `json:"allocs_per_op"`
	// Top1Delta is the fraction of the probe batch whose argmax differs
	// from the float64 reference model (0 for the f64 rows by
	// construction).
	Top1Delta float64 `json:"top1_delta"`
	// Speedup is ns/op of the f64 row at the same model and batch over
	// this row's ns/op.
	Speedup float64 `json:"speedup,omitempty"`
}

func inferBenchModel(t *testing.T, arch string) *dnn.Model {
	t.Helper()
	switch arch {
	case "resnet18":
		return dnn.BuildResNet18(dnn.ResNetConfig{
			InChannels: 3, NumClasses: 61, BaseWidth: 16,
			StageBlocks: [4]int{2, 2, 2, 2}, Seed: 1,
		})
	case "mobilenetv2":
		return dnn.BuildMobileNetV2(dnn.MobileNetConfig{
			InChannels: 3, NumClasses: 61, BaseWidth: 16,
			Expansion: 2, StageBlocks: [4]int{1, 2, 2, 1}, Seed: 1,
		})
	default:
		t.Fatalf("unknown arch %q", arch)
		return nil
	}
}

// TestRecordInferBench regenerates BENCH_infer.json. Gated behind
// OFFLOADNN_INFER_BENCH_OUT because the full matrix takes ~1 min of
// wall-clock:
//
//	OFFLOADNN_INFER_BENCH_OUT=BENCH_infer.json go test -run TestRecordInferBench -count=1 .
func TestRecordInferBench(t *testing.T) {
	out := os.Getenv("OFFLOADNN_INFER_BENCH_OUT")
	if out == "" {
		t.Skip("set OFFLOADNN_INFER_BENCH_OUT to record the inference precision matrix")
	}
	prev := tensor.SetParallelism(1) // serial kernels: the c(s) baseline
	defer tensor.SetParallelism(prev)

	var runs []inferBenchRun
	f64ns := map[string]float64{}
	for _, arch := range []string{"resnet18", "mobilenetv2"} {
		ref := inferBenchModel(t, arch)
		probe := dnn.CalibrationBatch(32, 3, 16, 16, 17)
		for _, prec := range []tensor.Precision{tensor.F64, tensor.F32, tensor.I8} {
			m := inferBenchModel(t, arch)
			if prec == tensor.I8 {
				if err := dnn.Calibrate(m, probe); err != nil {
					t.Fatal(err)
				}
			}
			if err := m.SetPrecision(prec); err != nil {
				t.Fatal(err)
			}
			delta, err := dnn.Top1Delta(ref, m, probe)
			if err != nil {
				t.Fatal(err)
			}
			for _, batch := range []int{1, 8} {
				x := dnn.CalibrationBatch(batch, 3, 16, 16, 23)
				res := testing.Benchmark(func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						y, err := m.Forward(x, false)
						if err != nil {
							b.Fatal(err)
						}
						tensor.Release(y)
					}
				})
				run := inferBenchRun{
					Model:     arch,
					Precision: prec.String(),
					Batch:     batch,
					NsPerOp:   float64(res.NsPerOp()),
					AllocsOp:  float64(res.AllocsPerOp()),
					Top1Delta: delta,
				}
				key := fmt.Sprintf("%s/%d", arch, batch)
				if prec == tensor.F64 {
					f64ns[key] = run.NsPerOp
				} else if base := f64ns[key]; base > 0 {
					run.Speedup = base / run.NsPerOp
				}
				t.Logf("%-12s %-4s batch=%d: %10.0f ns/op %5.1f allocs/op delta=%.3f speedup=%.2f",
					arch, run.Precision, batch, run.NsPerOp, run.AllocsOp, run.Top1Delta, run.Speedup)
				runs = append(runs, run)
			}
		}
	}

	// Steady-state inference must stay allocation-free at every precision
	// and the quantized paths must actually be faster. The whole-model
	// floors below are deliberately softer than the >=1.8x (f32) / >=3x
	// (i8) kernel targets asserted by BenchmarkMatMul/BenchmarkConv2DForward:
	// batch norm, ReLU, residual adds, pooling and im2col all stay f64, so
	// end-to-end speedup is Amdahl-bounded by the GEMM/conv share of the
	// forward pass (~1.3x for the narrow resnet18, ~1.7x for the 1x1-conv
	// heavy mobilenetv2 at this input size).
	var f32Speedup, i8Speedup float64
	for _, r := range runs {
		if r.Batch == 8 && r.AllocsOp > 0 {
			t.Errorf("%s/%s batch=8: %.1f allocs/op, want 0", r.Model, r.Precision, r.AllocsOp)
		}
		if r.Batch != 8 {
			continue
		}
		switch {
		case r.Model == "resnet18" && r.Precision == "f32":
			f32Speedup = r.Speedup
		case r.Model == "resnet18" && r.Precision == "i8":
			i8Speedup = r.Speedup
		case r.Model == "mobilenetv2" && r.Precision != "f64" && r.Speedup < 1.4:
			t.Errorf("mobilenetv2 %s speedup %.2fx, want >= 1.4x", r.Precision, r.Speedup)
		}
	}
	if f32Speedup < 1.2 {
		t.Errorf("resnet18 f32 speedup %.2fx, want >= 1.2x", f32Speedup)
	}
	if i8Speedup < 1.1 {
		t.Errorf("resnet18 i8 speedup %.2fx, want >= 1.1x", i8Speedup)
	}

	doc := struct {
		Benchmark string          `json:"benchmark"`
		Runs      []inferBenchRun `json:"runs"`
		Summary   map[string]any  `json:"summary"`
	}{
		Benchmark: "infer_precision",
		Runs:      runs,
		Summary: map[string]any{
			"resnet18_f32_speedup_batch8": f32Speedup,
			"resnet18_i8_speedup_batch8":  i8Speedup,
			"workers":                     1,
			"input":                       "3x16x16",
		},
	}
	blob, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d runs)", out, len(runs))
}
