package cluster

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

// driftLog counts the heartbeat path's bandwidth-drift re-placement
// kicks (the only "re-placing" lines that name a link rate).
type driftLog struct {
	mu    sync.Mutex
	kicks int
}

func (l *driftLog) logf(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	if !strings.Contains(line, "re-placing") {
		return
	}
	if strings.Contains(line, "link rate drifted") || strings.Contains(line, "Mb/s (placed at") {
		l.mu.Lock()
		l.kicks++
		l.mu.Unlock()
	}
}

func (l *driftLog) reset() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := l.kicks
	l.kicks = 0
	return n
}

// TestBandwidthProbeJitterDoesNotThrash pins the drift gate's smoothing:
// loopback probes routinely swing between 2 and 11 Gb/s beat to beat,
// and before smoothing every beat crossed the 20% gate and re-placed
// the whole cluster. Jitter around a stable mean must settle; a
// sustained collapse of the link must still kick within a few beats.
func TestBandwidthProbeJitterDoesNotThrash(t *testing.T) {
	lg := &driftLog{}
	ma := startMember(t, "a", fullRes())
	mb := startMember(t, "b", fullRes())
	// An hour-long debounce keeps kicked placements from racing the
	// deterministic PlaceNow calls below.
	c := startCoordinator(t, Config{Debounce: time.Hour, Logf: lg.logf})
	joinMember(t, c, "a", ma, 100)
	joinMember(t, c, "b", mb, 100)

	// First probe seeds the matrix; the placement snapshots it as the
	// rate the routing currently prices with.
	c.heartbeat("a", HeartbeatRequest{State: "healthy", BandwidthMbps: 100, Peers: map[string]float64{"b": 6500}})
	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	lg.reset()

	// 40 beats of 5.5× jitter around the placed rate: the smoothed rate
	// must stay inside the gate and never force a re-placement.
	for i := 0; i < 40; i++ {
		mbps := 2000.0
		if i%2 == 1 {
			mbps = 11000.0
		}
		c.heartbeat("a", HeartbeatRequest{State: "healthy", BandwidthMbps: 100, Peers: map[string]float64{"b": mbps}})
	}
	if n := lg.reset(); n != 0 {
		t.Fatalf("stable-mean jitter kicked %d re-placements, want 0", n)
	}

	// A genuine collapse (6.5 Gb/s placed → 500 Mb/s measured) must
	// cross the gate once the smoothed rate catches up.
	for i := 0; i < 10; i++ {
		c.heartbeat("a", HeartbeatRequest{State: "healthy", BandwidthMbps: 100, Peers: map[string]float64{"b": 500}})
	}
	if n := lg.reset(); n == 0 {
		t.Fatal("sustained link collapse never kicked a re-placement")
	}
}
