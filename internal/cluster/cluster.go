// Package cluster grows the single-daemon OffloaDNN reproduction into a
// multi-node edge cluster: a coordinator that owns the task registry and
// partitions admitted work across a fleet of edgeserve members, each
// running its own DOT epoch loop against its own M/C/R budgets.
//
// The pieces map onto the SEIFER-style split (arXiv 2210.12218):
//
//	membership  → members register/heartbeat/leave over HTTP; the
//	              coordinator tracks each node with the serve health
//	              states and declares a node stale when beats stop
//	bandwidth   → each member measures its node-to-coordinator link
//	              (POSTing a probe payload) and reports it with every
//	              heartbeat; the link rate shrinks the latency budget a
//	              task has left once its frames are forwarded to the node
//	placement   → Place bin-packs tasks by descending priority over
//	              per-node core.SolverSessions, spilling to the next
//	              node when a budget binds (placement.go)
//	deployment  → the coordinator pushes each node's task subset and
//	              budgets (PUT /v1/cluster/plan); the member re-solves
//	              locally and installs through its exec backend as a
//	              standalone daemon would
//	routing     → the coordinator proxies /v1/offload to the owning node
//	              through an atomically swapped task→node table
//
// Join, leave, failure (heartbeat timeout or a failed proxy/push) and
// bandwidth drift all kick a debounced cluster-wide re-placement, so the
// routing table converges onto the surviving fleet the way a single
// daemon's epoch converges onto its registry.
package cluster

import (
	"time"

	"offloadnn/internal/core"
)

// Fault-injection points wired into the coordinator (see
// internal/faultinject; the suffix selects the failure mode).
const (
	// PointPushError fails a plan push to a member node after placement
	// (the node is treated as failed and the placement retried without
	// it).
	PointPushError = "cluster.push.error"
	// PointProxyError fails a proxied offload before it reaches the
	// owning node (answered 502, counted per node).
	PointProxyError = "cluster.proxy.error"
	// PointHeartbeatDrop makes the coordinator silently discard a
	// received heartbeat, simulating beat loss on the path to the
	// heartbeat-timeout failure detector.
	PointHeartbeatDrop = "cluster.heartbeat.drop"
)

// DefaultFloorMbps is the conservative rate an unmeasured link is priced
// at. An unprobed link used to be priced as free, which made placement
// systematically prefer exactly the nodes it knew least about; the floor
// inverts that bias — unknown links look slow until a probe proves
// otherwise.
const DefaultFloorMbps = 1.0

// Node is one cluster member as the placement layer sees it: an identity,
// a serving address, its own capacity pool and the measured bandwidth of
// the coordinator→node link.
type Node struct {
	// ID names the node uniquely within the cluster.
	ID string
	// Addr is the base URL the node's edgeserve API answers on.
	Addr string
	// Res is the node's own M/C/R capacity pool; every task placed on
	// the node is solved against it.
	Res core.Resources
	// BandwidthMbps is the measured coordinator→node link rate in
	// megabits per second. Zero or negative means unmeasured: the link is
	// priced at the conservative floor (see FloorMbps) rather than free.
	BandwidthMbps float64
	// FloorMbps is the rate an unmeasured link is priced at. Zero means
	// DefaultFloorMbps; negative opts the node out of floor pricing
	// entirely (unmeasured forwarding is free — the co-located /
	// loopback case, and the setting single-node parity tests use).
	FloorMbps float64
}

// LinkMbps is the rate placement prices the coordinator→node link at:
// the measured bandwidth when a probe has run, otherwise the node's
// conservative floor (0 when the node opted out with a negative floor).
func (n Node) LinkMbps() float64 {
	if n.BandwidthMbps > 0 {
		return n.BandwidthMbps
	}
	if n.FloorMbps < 0 {
		return 0
	}
	if n.FloorMbps > 0 {
		return n.FloorMbps
	}
	return DefaultFloorMbps
}

// ForwardDelay returns how long one frame of the given size spends on
// the coordinator→node link. An unmeasured link is priced at the node's
// conservative floor so placement never prefers an unprobed link; only
// an explicit negative FloorMbps makes forwarding free.
func (n Node) ForwardDelay(bits float64) time.Duration {
	mbps := n.LinkMbps()
	if mbps <= 0 || bits <= 0 {
		return 0
	}
	return time.Duration(bits / (mbps * 1e6) * float64(time.Second))
}

// TransferDelay prices shipping the given number of bits over the slower
// of the two nodes' coordinator links — the conservative estimate of the
// a→b inter-node path when no direct measurement exists. A measured
// peer rate, when available, overrides this (see the coordinator's
// link matrix).
func TransferDelay(a, b Node, bits float64) time.Duration {
	mbps := a.LinkMbps()
	if mb := b.LinkMbps(); mb < mbps {
		mbps = mb
	}
	if mbps <= 0 || bits <= 0 {
		return 0
	}
	return time.Duration(bits / (mbps * 1e6) * float64(time.Second))
}

// AdjustTask returns the task as node n's DOT instance must see it: the
// latency ceiling L_τ shrunk by the forward delay of one full-quality
// frame over the coordinator→node link, so the node's solver only admits
// the task if the remaining budget still covers slice transmission plus
// path compute. ok is false when the link eats the whole budget — the
// task cannot be placed on this node at all.
func (n Node) AdjustTask(t core.Task) (core.Task, bool) {
	fwd := n.ForwardDelay(t.InputBits)
	if fwd <= 0 {
		return t, true
	}
	if fwd >= t.MaxLatency {
		return core.Task{}, false
	}
	t.MaxLatency -= fwd
	return t, true
}
