package cluster

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/radio"
	"offloadnn/internal/serve"
	"offloadnn/internal/workload"
)

// fullRes mirrors the Table-IV single-edge pool serve's tests solve
// against.
func fullRes() core.Resources {
	return core.Resources{
		RBs:                50,
		ComputeSeconds:     2.5,
		MemoryGB:           8,
		TrainBudgetSeconds: 1000,
		Capacity:           radio.PaperRate(),
	}
}

// liveMember is one edgeserve daemon running in cluster-member mode
// behind a real HTTP listener.
type liveMember struct {
	srv *serve.Server
	ts  *httptest.Server
}

func startMember(t *testing.T, id string, res core.Resources) *liveMember {
	t.Helper()
	srv, err := serve.New(serve.Config{Res: res, Alpha: 0.5, Node: id, Debounce: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(MemberHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &liveMember{srv: srv, ts: ts}
}

func startCoordinator(t *testing.T, cfg Config) *Coordinator {
	t.Helper()
	if cfg.Debounce == 0 {
		cfg.Debounce = 10 * time.Millisecond
	}
	if cfg.BandwidthFloorMbps == 0 {
		// In-process members talk over loopback, not a radio link: opt out
		// of the unmeasured-link floor so these tests keep pinning the
		// placement math. The floor has its own test (TestBandwidthFloor).
		cfg.BandwidthFloorMbps = -1
	}
	c, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Close)
	return c
}

func joinMember(t *testing.T, c *Coordinator, id string, m *liveMember, mbps float64) {
	t.Helper()
	err := c.register(RegisterRequest{
		Node:          id,
		Addr:          m.ts.URL,
		Res:           ToWireResources(m.srv.Resources()),
		BandwidthMbps: mbps,
		State:         "healthy",
	})
	if err != nil {
		t.Fatal(err)
	}
}

// specTask rebuilds a Table-IV small task the way the HTTP route does:
// scalar spec only, candidate paths come from the registry's catalog.
func specTask(t *testing.T, i int) core.Task {
	t.Helper()
	task, err := workload.SmallTask(i)
	if err != nil {
		t.Fatal(err)
	}
	return serve.TaskSpec{
		ID:           task.ID,
		Priority:     task.Priority,
		Rate:         task.Rate,
		MinAccuracy:  task.MinAccuracy,
		MaxLatencyMS: float64(task.MaxLatency) / float64(time.Millisecond),
		InputBits:    task.InputBits,
		SNRdB:        task.SNRdB,
	}.Task()
}

func postOffload(t *testing.T, baseURL, taskID string) *http.Response {
	t.Helper()
	body, _ := json.Marshal(map[string]string{"task": taskID})
	resp, err := http.Post(baseURL+"/v1/offload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func getHealth(t *testing.T, baseURL string) map[string]any {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

// TestClusterOneNodeMatchesStandalone: a 1-node cluster must reproduce
// the standalone edgeserve daemon exactly — same admitted set, same
// paths, same rates (satellite 3's equivalence check).
func TestClusterOneNodeMatchesStandalone(t *testing.T) {
	res := fullRes()

	standalone, err := serve.New(serve.Config{Res: res, Alpha: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	defer standalone.Close()
	for i := 1; i <= 5; i++ {
		if err := standalone.Register(specTask(t, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := standalone.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	want := standalone.Current()
	if want == nil {
		t.Fatal("standalone published no epoch")
	}

	m := startMember(t, "a", res)
	c := startCoordinator(t, Config{})
	joinMember(t, c, "a", m, 0)
	for i := 1; i <= 5; i++ {
		if err := c.Registry().Register(specTask(t, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	got := m.srv.Current()
	if got == nil {
		t.Fatal("member published no epoch after plan push")
	}

	routes := c.routes.Load()
	for i := 1; i <= 5; i++ {
		id := fmt.Sprintf("task-%d", i)
		wa, wok := want.Assignment(id)
		ga, gok := got.Assignment(id)
		if wok != gok {
			t.Fatalf("%s: standalone admitted=%v, cluster member admitted=%v", id, wok, gok)
		}
		if !wok {
			continue
		}
		if wa.Path.ID != ga.Path.ID {
			t.Errorf("%s: path %q standalone vs %q cluster", id, wa.Path.ID, ga.Path.ID)
		}
		if math.Abs(wa.Z-ga.Z) > 1e-9 || wa.RBs != ga.RBs {
			t.Errorf("%s: z/RBs (%v, %d) standalone vs (%v, %d) cluster", id, wa.Z, wa.RBs, ga.Z, ga.RBs)
		}
		if wr, gr := want.AdmittedRate(id), got.AdmittedRate(id); math.Abs(wr-gr) > 1e-9 {
			t.Errorf("%s: admitted rate %v standalone vs %v cluster", id, wr, gr)
		}
		e, ok := routes.entries[id]
		if !ok || e.NodeID != "a" {
			t.Errorf("%s: route = %+v, want node a", id, e)
		}
	}
}

// TestClusterFailoverToSurvivor kills one of two members mid-run and
// asserts the proxy fails the node, the re-placement moves every route to
// the survivor, traffic flows again, and the aggregate /healthz names the
// failed node (satellites 2 and 3).
func TestClusterFailoverToSurvivor(t *testing.T) {
	halves := edge.PartitionResources(fullRes(), 2)
	ma := startMember(t, "a", halves[0])
	mb := startMember(t, "b", halves[1])
	c := startCoordinator(t, Config{})
	front := httptest.NewServer(c)
	defer front.Close()
	joinMember(t, c, "a", ma, 0)
	joinMember(t, c, "b", mb, 0)
	for i := 1; i <= 5; i++ {
		if err := c.Registry().Register(specTask(t, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	routes := c.routes.Load().entries
	var onB string
	for id, e := range routes {
		if e.NodeID == "b" {
			onB = id
			break
		}
	}
	if onB == "" {
		t.Fatal("placement left node b empty; cannot exercise failover")
	}

	resp := postOffload(t, front.URL, onB)
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offload for %s before failure: %d, want 200", onB, resp.StatusCode)
	}

	mb.ts.Close() // node b dies without deregistering

	resp = postOffload(t, front.URL, onB)
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	json.NewDecoder(resp.Body).Decode(&envelope)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadGateway || envelope.Error.Code != CodeNodeUnreachable {
		t.Fatalf("offload to dead node: status %d code %q, want 502 %s",
			resp.StatusCode, envelope.Error.Code, CodeNodeUnreachable)
	}

	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	routes = c.routes.Load().entries
	if len(routes) == 0 {
		t.Fatal("re-placement routed nothing to the survivor")
	}
	for id, e := range routes {
		if e.NodeID != "a" {
			t.Fatalf("after failover %s still routed to %s", id, e.NodeID)
		}
	}
	for id := range routes {
		resp = postOffload(t, front.URL, id)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("offload for %s after failover: %d, want 200", id, resp.StatusCode)
		}
		break
	}

	health := getHealth(t, front.URL)
	if health["status"] != "degraded" {
		t.Fatalf("aggregate health %v after node death, want degraded", health["status"])
	}
	failing, _ := health["failing"].([]any)
	found := false
	for _, f := range failing {
		if f == "b" {
			found = true
		}
	}
	if !found {
		t.Fatalf("failing list %v does not name node b", failing)
	}
}

// fakeClock is a mutex-guarded manual clock for deterministic
// heartbeat-timeout tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1700000000, 0)} }

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}

func postHeartbeat(t *testing.T, baseURL, node string, req HeartbeatRequest) *http.Response {
	t.Helper()
	body, _ := json.Marshal(req)
	resp, err := http.Post(baseURL+"/v1/cluster/nodes/"+node+"/heartbeat", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp
}

// TestClusterHeartbeatTimeout drives the failure detector with an
// injected clock: a member that stops beating turns stale, its tasks move
// to the survivor, /healthz degrades naming it, and its next beat revives
// it.
func TestClusterHeartbeatTimeout(t *testing.T) {
	clock := newFakeClock()
	halves := edge.PartitionResources(fullRes(), 2)
	ma := startMember(t, "a", halves[0])
	mb := startMember(t, "b", halves[1])
	c := startCoordinator(t, Config{Now: clock.Now, HeartbeatTimeout: 100 * time.Millisecond})
	front := httptest.NewServer(c)
	defer front.Close()
	joinMember(t, c, "a", ma, 0)
	joinMember(t, c, "b", mb, 0)
	for i := 1; i <= 3; i++ {
		if err := c.Registry().Register(specTask(t, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}

	// b beats inside the window; only a keeps beating afterwards.
	clock.Advance(90 * time.Millisecond)
	if resp := postHeartbeat(t, front.URL, "a", HeartbeatRequest{State: "healthy"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("heartbeat answered %d", resp.StatusCode)
	}
	clock.Advance(30 * time.Millisecond) // b is now 120 ms silent, a only 30 ms
	c.Sweep()

	c.mu.Lock()
	aStale, bStale := c.members["a"].stale, c.members["b"].stale
	c.mu.Unlock()
	if aStale || !bStale {
		t.Fatalf("after sweep: a stale=%v b stale=%v, want only b stale", aStale, bStale)
	}
	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	for id, e := range c.routes.Load().entries {
		if e.NodeID != "a" {
			t.Fatalf("%s routed to stale node %s", id, e.NodeID)
		}
	}
	health := getHealth(t, front.URL)
	if health["status"] != "degraded" {
		t.Fatalf("health %v with a stale member, want degraded", health["status"])
	}

	// The member resumes beating: revived, cluster healthy again.
	if resp := postHeartbeat(t, front.URL, "b", HeartbeatRequest{State: "healthy"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("revival heartbeat answered %d", resp.StatusCode)
	}
	c.Sweep()
	c.mu.Lock()
	bStale = c.members["b"].stale
	c.mu.Unlock()
	if bStale {
		t.Fatal("node b still stale after resuming heartbeats")
	}
	if health := getHealth(t, front.URL); health["status"] != "healthy" {
		t.Fatalf("health %v after revival, want healthy", health["status"])
	}
}

// TestClusterHeartbeatDropFault arms the cluster.heartbeat.drop chaos
// point: dropped beats answer 204 like recorded ones, so the member
// cannot tell, and the failure detector sees only silence.
func TestClusterHeartbeatDropFault(t *testing.T) {
	clock := newFakeClock()
	inj := faultinject.New(1)
	inj.Set(PointHeartbeatDrop, faultinject.Rule{EveryN: 1})
	ma := startMember(t, "a", fullRes())
	c := startCoordinator(t, Config{Now: clock.Now, HeartbeatTimeout: 100 * time.Millisecond, Faults: inj})
	front := httptest.NewServer(c)
	defer front.Close()
	joinMember(t, c, "a", ma, 0)

	clock.Advance(150 * time.Millisecond)
	if resp := postHeartbeat(t, front.URL, "a", HeartbeatRequest{State: "healthy"}); resp.StatusCode != http.StatusNoContent {
		t.Fatalf("dropped heartbeat answered %d, want 204 (indistinguishable)", resp.StatusCode)
	}
	if inj.Fires(PointHeartbeatDrop) == 0 {
		t.Fatal("drop point never fired")
	}
	c.Sweep()
	c.mu.Lock()
	stale := c.members["a"].stale
	c.mu.Unlock()
	if !stale {
		t.Fatal("member stayed fresh although every beat was dropped")
	}
}

// TestClusterPushErrorFault arms cluster.push.error for a single fire:
// the failed push marks the node failed and the placement retries without
// it, landing every route on the survivor.
func TestClusterPushErrorFault(t *testing.T) {
	inj := faultinject.New(1)
	inj.Set(PointPushError, faultinject.Rule{EveryN: 1, Count: 1})
	halves := edge.PartitionResources(fullRes(), 2)
	ma := startMember(t, "a", halves[0])
	mb := startMember(t, "b", halves[1])
	c := startCoordinator(t, Config{Faults: inj})
	joinMember(t, c, "a", ma, 0)
	joinMember(t, c, "b", mb, 0)
	for i := 1; i <= 3; i++ {
		if err := c.Registry().Register(specTask(t, i), nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	if inj.Fires(PointPushError) != 1 {
		t.Fatalf("push fault fired %d times, want 1", inj.Fires(PointPushError))
	}

	c.mu.Lock()
	var failed, alive []string
	for id, m := range c.members {
		if m.failed {
			failed = append(failed, id)
		} else {
			alive = append(alive, id)
		}
	}
	c.mu.Unlock()
	if len(failed) != 1 || len(alive) != 1 {
		t.Fatalf("after one push failure: failed=%v alive=%v, want one of each", failed, alive)
	}
	routes := c.routes.Load().entries
	if len(routes) == 0 {
		t.Fatal("retry placement routed nothing")
	}
	for id, e := range routes {
		if e.NodeID != alive[0] {
			t.Fatalf("%s routed to %s, want survivor %s", id, e.NodeID, alive[0])
		}
	}
	if got := c.placeErrs.Load(); got != 1 {
		t.Fatalf("placement error counter %d, want 1", got)
	}

	// The failed node's next heartbeat revives it for future placements.
	if !c.heartbeat(failed[0], HeartbeatRequest{State: "healthy"}) {
		t.Fatal("heartbeat for failed node not accepted")
	}
	c.mu.Lock()
	revived := !c.members[failed[0]].failed
	c.mu.Unlock()
	if !revived {
		t.Fatal("heartbeat did not clear the failure mark")
	}
}

// TestClusterAgentLifecycle runs the real membership agent end to end:
// register (with bandwidth probe), placement of an HTTP-registered task,
// offload through the proxy, and deregistration on Close.
func TestClusterAgentLifecycle(t *testing.T) {
	m := startMember(t, "a", fullRes())
	c := startCoordinator(t, Config{})
	front := httptest.NewServer(c)
	defer front.Close()

	agent, err := StartAgent(m.srv, AgentConfig{
		Coordinator: front.URL,
		NodeID:      "a",
		Advertise:   m.ts.URL,
		Heartbeat:   20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}

	waitFor(t, 5*time.Second, "agent registration", func() bool {
		var nodes []memberInfo
		getJSON(t, front.URL+"/v1/cluster/nodes", &nodes)
		return len(nodes) == 1 && nodes[0].Node == "a" && nodes[0].BandwidthMbps > 0
	})

	task := specTask(t, 1)
	body, _ := json.Marshal(serve.TaskSpec{
		ID: task.ID, Priority: task.Priority, Rate: task.Rate,
		MinAccuracy: task.MinAccuracy, MaxLatencyMS: float64(task.MaxLatency) / float64(time.Millisecond),
		InputBits: task.InputBits, SNRdB: task.SNRdB,
	})
	resp, err := http.Post(front.URL+"/v1/tasks", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("task registration answered %d", resp.StatusCode)
	}

	waitFor(t, 5*time.Second, "debounced placement and admission", func() bool {
		resp := postOffload(t, front.URL, task.ID)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode == http.StatusOK
	})

	agent.Close()
	waitFor(t, 5*time.Second, "deregistration on agent close", func() bool {
		var nodes []memberInfo
		getJSON(t, front.URL+"/v1/cluster/nodes", &nodes)
		return len(nodes) == 0
	})
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestClusterMetricsLabels checks satellite 6: per-node families carry
// {node="..."} labels with HELP/TYPE metadata.
func TestClusterMetricsLabels(t *testing.T) {
	m := startMember(t, "a", fullRes())
	c := startCoordinator(t, Config{})
	front := httptest.NewServer(c)
	defer front.Close()
	joinMember(t, c, "a", m, 12.5)

	resp, err := http.Get(front.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(raw)
	for _, want := range []string{
		"# HELP offloadnn_cluster_nodes ",
		"# TYPE offloadnn_cluster_nodes gauge",
		"offloadnn_cluster_nodes 1",
		"# HELP offloadnn_node_up ",
		"# TYPE offloadnn_node_up gauge",
		`offloadnn_node_up{node="a"} 1`,
		`offloadnn_node_bandwidth_mbps{node="a"} 12.5`,
		"# TYPE offloadnn_node_proxied_total counter",
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("metrics output missing %q\n%s", want, text)
		}
	}
}
