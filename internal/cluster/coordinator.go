package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/radio"
	"offloadnn/internal/serve"
	"offloadnn/internal/workload"
)

// Config parameterizes a cluster coordinator.
type Config struct {
	// Alpha weights admission against resource cost in every per-node
	// solve (default 0.5).
	Alpha float64
	// ApproxAfter is the fleet-wide task count at which placements switch
	// from the exact per-node session bin-pack to the approximate
	// partition-and-pack tier. 0 applies DefaultPlaceApproxAfter;
	// negative pins the exact bin-pack at every scale.
	ApproxAfter int
	// Catalog builds candidate paths for tasks submitted over HTTP; it
	// must match the members' catalogs so a 1-node cluster reproduces the
	// standalone daemon exactly. Zero value: the Table-IV small catalog.
	Catalog workload.CatalogParams
	// Blocks optionally pre-seeds the shared block catalog.
	Blocks map[string]core.BlockSpec
	// Capacity is the B(σ) model per-node solves use (default the paper
	// rate; members are started with the same).
	Capacity radio.CapacityModel
	// Debounce batches membership and task churn before a cluster-wide
	// re-placement (default 100 ms) — the cluster-level counterpart of
	// the serve resolver's debounce.
	Debounce time.Duration
	// HeartbeatTimeout is how long a member may go without a heartbeat
	// before the failure detector declares it stale and re-places its
	// tasks (default 3 s).
	HeartbeatTimeout time.Duration
	// SweepEvery is the failure detector's check period (default
	// HeartbeatTimeout/4).
	SweepEvery time.Duration
	// BandwidthDriftFrac is the fractional change in a member's smoothed
	// link rate — relative to the rate the latest placement priced with —
	// that triggers a re-placement; smaller drift is recorded for the
	// next placement without forcing one (default 0.2). Raw probes are
	// EMA-smoothed first so per-beat measurement jitter does not thrash
	// the placement loop.
	BandwidthDriftFrac float64
	// BandwidthFloorMbps is the rate unmeasured links are priced at
	// (Node.FloorMbps for every member). 0 applies DefaultFloorMbps;
	// negative prices unmeasured links as free — the co-located setting
	// single-node parity comparisons use.
	BandwidthFloorMbps float64
	// Split parameterizes the cross-node split-placement pass over tasks
	// whole-path placement spills; nil enables it with defaults. The
	// coordinator always wires its measured inter-node bandwidth matrix
	// into the search.
	Split *SplitConfig
	// PushTimeout bounds one plan push — including the member's
	// synchronous re-solve (default 30 s).
	PushTimeout time.Duration
	// Now is the injectable clock (default time.Now).
	Now func() time.Time
	// Logf receives background diagnostics; nil discards them.
	Logf func(string, ...any)
	// Faults optionally arms the coordinator's fault-injection points.
	Faults *faultinject.Injector
	// Client performs plan pushes and offload proxying (default: a
	// client with PushTimeout).
	Client *http.Client
}

// routeEntry is one admitted task's serving location. A split task
// routes to its head node; Hops > 1 marks the pipeline length.
type routeEntry struct {
	NodeID string
	Addr   string
	Rate   float64 // admitted rate z·λ
	Path   string
	DNN    string
	Hops   int
}

// routeTable is the immutable task→node map the proxy reads; re-placements
// publish a fresh one atomically.
type routeTable struct {
	entries map[string]routeEntry
}

// memberState tracks one registered node. All fields except the atomic
// counters are guarded by Coordinator.mu.
type memberState struct {
	node     Node
	state    serve.HealthState
	lastBeat time.Time
	epoch    uint64
	reported int  // task count from the last heartbeat
	stale    bool // heartbeat timeout fired
	failed   bool // a push or proxy to the node failed; cleared on contact
	// peerMbps is the member's measured node→peer link rates (peer node
	// ID → Mbps), reported piecewise over heartbeats and EMA-smoothed —
	// loopback and wireless probes jitter by integer factors beat to
	// beat. The coordinator's half of the inter-node bandwidth matrix.
	peerMbps map[string]float64
	// placedMbps / peerPlacedMbps snapshot the link rates the latest
	// placement actually priced with; drift is judged against them, so a
	// sustained shift forces one re-placement instead of one per noisy
	// probe.
	placedMbps     float64
	peerPlacedMbps map[string]float64
	// Last placement outcome for this node.
	placedTasks int
	weighted    float64
	admittedSum float64
	proxied     atomic.Uint64
	proxyErrs   atomic.Uint64
}

func (m *memberState) alive() bool { return !m.stale && !m.failed }

// placeSummary is the immutable outcome of the latest re-placement.
type placeSummary struct {
	seq      uint64
	gen      uint64
	at       time.Time
	weighted float64
	unplaced []string
	errors   []string
	nodes    int
	splits   []SplitPath
}

// Coordinator owns the cluster's task registry and places admitted work
// across registered member nodes: every join, leave, failure, bandwidth
// drift or task churn kicks a debounced cluster-wide re-placement whose
// per-node plans are pushed to the members and whose routing table the
// offload proxy serves from.
type Coordinator struct {
	cfg    Config
	reg    *serve.Registry
	client *http.Client
	mux    *http.ServeMux
	start  time.Time

	mu      sync.Mutex
	members map[string]*memberState

	routes  atomic.Pointer[routeTable]
	summary atomic.Pointer[placeSummary]

	placeMu    sync.Mutex // serializes re-placements
	placeSeq   atomic.Uint64
	placeErrs  atomic.Uint64
	placements atomic.Uint64

	kick   chan struct{}
	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// NewCoordinator validates the configuration and starts the placement
// loop and the heartbeat failure detector.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("cluster: alpha %v outside [0,1]", cfg.Alpha)
	}
	if cfg.Catalog.NumDNNs == 0 {
		cfg.Catalog = workload.SmallCatalogParams()
	}
	if cfg.Capacity == nil {
		cfg.Capacity = radio.PaperRate()
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 100 * time.Millisecond
	}
	if cfg.HeartbeatTimeout <= 0 {
		cfg.HeartbeatTimeout = 3 * time.Second
	}
	if cfg.SweepEvery <= 0 {
		cfg.SweepEvery = cfg.HeartbeatTimeout / 4
	}
	if cfg.BandwidthDriftFrac <= 0 {
		cfg.BandwidthDriftFrac = 0.2
	}
	if cfg.PushTimeout <= 0 {
		cfg.PushTimeout = 30 * time.Second
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: cfg.PushTimeout}
	}
	if cfg.Split == nil {
		cfg.Split = &SplitConfig{}
	}
	c := &Coordinator{
		cfg:     cfg,
		reg:     serve.NewRegistry(cfg.Catalog, cfg.Blocks),
		client:  cfg.Client,
		members: make(map[string]*memberState),
		kick:    make(chan struct{}, 1),
		start:   cfg.Now(),
	}
	c.routes.Store(&routeTable{entries: map[string]routeEntry{}})
	c.summary.Store(&placeSummary{})
	c.ctx, c.cancel = context.WithCancel(context.Background())
	c.mux = c.routesMux()
	c.wg.Add(2)
	go c.placeLoop()
	go c.sweepLoop()
	return c, nil
}

// Close stops the placement loop and failure detector.
func (c *Coordinator) Close() {
	c.cancel()
	c.wg.Wait()
}

// ServeHTTP serves the coordinator API.
func (c *Coordinator) ServeHTTP(w http.ResponseWriter, r *http.Request) { c.mux.ServeHTTP(w, r) }

// Registry exposes the coordinator's task registry.
func (c *Coordinator) Registry() *serve.Registry { return c.reg }

// Kick schedules a debounced re-placement (non-blocking; kicks coalesce).
func (c *Coordinator) Kick() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// placeLoop debounces kicks into re-placements, mirroring the serve
// resolver's churn batching: the first kick starts the window, kicks
// inside it coalesce, and the placement runs when it closes.
func (c *Coordinator) placeLoop() {
	defer c.wg.Done()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-c.kick:
		}
		timer := time.NewTimer(c.cfg.Debounce)
		select {
		case <-c.ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		if err := c.placeOnce(c.ctx); err != nil && c.cfg.Logf != nil {
			c.cfg.Logf("cluster: placement: %v", err)
		}
	}
}

// sweepLoop runs the heartbeat failure detector.
func (c *Coordinator) sweepLoop() {
	defer c.wg.Done()
	t := time.NewTicker(c.cfg.SweepEvery)
	defer t.Stop()
	for {
		select {
		case <-c.ctx.Done():
			return
		case <-t.C:
			c.Sweep()
		}
	}
}

// Sweep evaluates every member against the heartbeat timeout and kicks a
// re-placement when any crossed into or out of staleness. Exported for
// deterministic tests (with an injected clock the ticker never has to
// fire).
func (c *Coordinator) Sweep() {
	now := c.cfg.Now()
	changed := false
	c.mu.Lock()
	for id, m := range c.members {
		stale := now.Sub(m.lastBeat) > c.cfg.HeartbeatTimeout
		if stale != m.stale {
			m.stale = stale
			changed = true
			if c.cfg.Logf != nil {
				if stale {
					c.cfg.Logf("cluster: node %s missed heartbeats for %v, marking stale", id, now.Sub(m.lastBeat))
				} else {
					c.cfg.Logf("cluster: node %s heartbeats resumed", id)
				}
			}
		}
	}
	c.mu.Unlock()
	if changed {
		c.Kick()
	}
}

// PlaceNow runs one re-placement synchronously, bypassing the debounce
// (tests and the daemon's startup path).
func (c *Coordinator) PlaceNow() error { return c.placeOnce(c.ctx) }

// aliveNodes snapshots the placeable membership, sorted by node ID so
// placements are deterministic.
func (c *Coordinator) aliveNodes() []Node {
	c.mu.Lock()
	defer c.mu.Unlock()
	nodes := make([]Node, 0, len(c.members))
	for _, m := range c.members {
		if m.alive() {
			nodes = append(nodes, m.node)
		}
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i].ID < nodes[j].ID })
	return nodes
}

// placeOnce computes one cluster-wide placement over the alive members,
// pushes every node's plan, and publishes the routing table. A failed
// push marks the node failed and the placement is retried without it, so
// one dead member cannot wedge the cluster.
func (c *Coordinator) placeOnce(ctx context.Context) error {
	c.placeMu.Lock()
	defer c.placeMu.Unlock()
	tasks, blocks, gen := c.reg.Snapshot()
	for attempt := 0; ; attempt++ {
		nodes := c.aliveNodes()
		split := *c.cfg.Split
		split.Link = c.linkFunc()
		p := PlaceWith(ctx, tasks, blocks, nodes, PlaceConfig{Alpha: c.cfg.Alpha, ApproxAfter: c.cfg.ApproxAfter, Split: &split})
		failed := c.pushPlans(ctx, p)
		if len(failed) == 0 {
			c.publish(p, gen, len(nodes))
			return nil
		}
		c.mu.Lock()
		for _, id := range failed {
			if m, ok := c.members[id]; ok {
				m.failed = true
			}
		}
		c.mu.Unlock()
		c.placeErrs.Add(uint64(len(failed)))
		if c.cfg.Logf != nil {
			c.cfg.Logf("cluster: plan push failed for %v, re-placing without them", failed)
		}
		if attempt >= len(c.members)+1 {
			return fmt.Errorf("cluster: placement aborted after %d push-failure retries", attempt)
		}
	}
}

// linkFunc snapshots the measured inter-node bandwidth matrix into the
// split search's link oracle: a measured a→b (or, failing that, b→a)
// probe wins; with no measurement the a↔b path is priced at the slower
// of the two coordinator links, floors applied (TransferDelay's rule).
func (c *Coordinator) linkFunc() func(a, b Node) float64 {
	c.mu.Lock()
	matrix := make(map[string]map[string]float64, len(c.members))
	for id, m := range c.members {
		m.placedMbps = m.node.BandwidthMbps
		if len(m.peerMbps) == 0 {
			continue
		}
		row := make(map[string]float64, len(m.peerMbps))
		placed := make(map[string]float64, len(m.peerMbps))
		for peer, mbps := range m.peerMbps {
			row[peer] = mbps
			placed[peer] = mbps
		}
		matrix[id] = row
		m.peerPlacedMbps = placed
	}
	c.mu.Unlock()
	return func(a, b Node) float64 {
		if mbps, ok := matrix[a.ID][b.ID]; ok && mbps > 0 {
			return mbps
		}
		if mbps, ok := matrix[b.ID][a.ID]; ok && mbps > 0 {
			return mbps
		}
		mbps := a.LinkMbps()
		if mb := b.LinkMbps(); mb < mbps {
			mbps = mb
		}
		return mbps
	}
}

// peerAddrs lists every other alive member's serving address — the
// address book a heartbeat response hands the member's agent for its
// inter-node bandwidth probes.
func (c *Coordinator) peerAddrs(self string) map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]string)
	for id, m := range c.members {
		if id != self && m.alive() {
			out[id] = m.node.Addr
		}
	}
	return out
}

// pushPlans sends every alive member its slice of the placement — an
// empty slice clears a node that lost all its tasks — and returns the IDs
// whose push failed.
func (c *Coordinator) pushPlans(ctx context.Context, p *Placement) []string {
	plans := make(map[string]*NodePlan, len(p.Plans))
	for i := range p.Plans {
		plans[p.Plans[i].Node.ID] = &p.Plans[i]
	}
	segs := wireSegments(p.Splits)
	c.mu.Lock()
	targets := make([]*memberState, 0, len(c.members))
	for _, m := range c.members {
		if m.alive() {
			targets = append(targets, m)
		}
	}
	c.mu.Unlock()

	var mu sync.Mutex
	var failed []string
	var wg sync.WaitGroup
	for _, m := range targets {
		wg.Add(1)
		go func(m *memberState) {
			defer wg.Done()
			if err := c.pushPlan(ctx, m, plans[m.node.ID], segs[m.node.ID], p.Norm); err != nil {
				if c.cfg.Logf != nil {
					c.cfg.Logf("cluster: push to %s (%s): %v", m.node.ID, m.node.Addr, err)
				}
				mu.Lock()
				failed = append(failed, m.node.ID)
				mu.Unlock()
			}
		}(m)
	}
	wg.Wait()
	sort.Strings(failed)
	return failed
}

// wireSegments converts a placement's split plans into each node's wire
// segments, threading the relay coordinates (next hop, pipeline length,
// head budget) through.
func wireSegments(splits []SplitPath) map[string][]WireSegment {
	if len(splits) == 0 {
		return nil
	}
	out := make(map[string][]WireSegment)
	for i := range splits {
		sp := &splits[i]
		for si, seg := range sp.Segments {
			w := WireSegment{
				Task:   sp.TaskID,
				Path:   sp.Path.ID,
				DNN:    sp.Path.DNN,
				Blocks: sp.Path.Blocks,
				From:   seg.From,
				To:     seg.To,
				Rate:   sp.Rate,
				Hop:    si,
				Hops:   len(sp.Segments),
			}
			if si == 0 {
				w.BudgetMS = sp.BudgetMS
			}
			if si+1 < len(sp.Segments) {
				w.Next = sp.Segments[si+1].Addr
				w.NextNode = sp.Segments[si+1].NodeID
			}
			out[seg.NodeID] = append(out[seg.NodeID], w)
		}
	}
	return out
}

// pushPlan PUTs one node's task subset to the member and waits for its
// re-solve to acknowledge.
func (c *Coordinator) pushPlan(ctx context.Context, m *memberState, plan *NodePlan, segs []WireSegment, norm *core.Resources) error {
	if err := c.cfg.Faults.Hit(ctx, PointPushError); err != nil {
		return err
	}
	res := m.node.Res
	res.Norm = norm
	push := PlanPush{
		Node:      m.node.ID,
		Placement: c.placeSeq.Load() + 1,
		Alpha:     c.cfg.Alpha,
		Res:       ToWireResources(res),
		Segments:  segs,
	}
	if plan != nil {
		for _, t := range plan.Tasks {
			push.Tasks = append(push.Tasks, ToWireTask(t))
		}
		push.Blocks = ToWireBlocks(plan.Blocks)
	}
	body, err := json.Marshal(push)
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(ctx, c.cfg.PushTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPut, m.node.Addr+"/v1/cluster/plan", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("cluster: member %s answered %d to plan push: %s", m.node.ID, resp.StatusCode, msg)
	}
	var ack PlanAck
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		return fmt.Errorf("cluster: member %s plan ack: %v", m.node.ID, err)
	}
	c.mu.Lock()
	if cur, ok := c.members[m.node.ID]; ok {
		cur.epoch = ack.Epoch
		cur.reported = ack.Tasks
	}
	c.mu.Unlock()
	return nil
}

// publish installs the placement's routing table and per-member stats.
func (c *Coordinator) publish(p *Placement, gen uint64, nodes int) {
	entries := make(map[string]routeEntry, len(p.Route))
	byNode := make(map[string]*NodePlan, len(p.Plans))
	for i := range p.Plans {
		byNode[p.Plans[i].Node.ID] = &p.Plans[i]
	}
	splitBy := make(map[string]*SplitPath, len(p.Splits))
	for i := range p.Splits {
		splitBy[p.Splits[i].TaskID] = &p.Splits[i]
	}
	for taskID, nodeID := range p.Route {
		e := routeEntry{NodeID: nodeID, Hops: 1}
		if plan := byNode[nodeID]; plan != nil {
			e.Addr = plan.Node.Addr
			e.Rate = plan.Admitted[taskID]
			if plan.Solution != nil {
				for _, a := range plan.Solution.Assignments {
					if a.TaskID == taskID && a.Path != nil {
						e.Path = a.Path.ID
						e.DNN = a.Path.DNN
					}
				}
			}
		}
		if sp := splitBy[taskID]; sp != nil {
			e.Rate = sp.Rate
			e.Path = sp.Path.ID
			e.DNN = sp.Path.DNN
			e.Hops = len(sp.Segments)
		}
		entries[taskID] = e
	}
	seq := c.placeSeq.Add(1)
	c.placements.Add(1)
	c.routes.Store(&routeTable{entries: entries})
	c.summary.Store(&placeSummary{
		seq:      seq,
		gen:      gen,
		at:       c.cfg.Now(),
		weighted: p.WeightedAdmission,
		unplaced: p.Unplaced,
		errors:   p.Errors,
		nodes:    nodes,
		splits:   p.Splits,
	})
	c.mu.Lock()
	for _, m := range c.members {
		m.placedTasks, m.weighted, m.admittedSum = 0, 0, 0
		if plan := byNode[m.node.ID]; plan != nil {
			m.placedTasks = len(plan.Tasks)
			if plan.Solution != nil {
				m.weighted = plan.Solution.Breakdown.WeightedAdmission
			}
			for _, rate := range plan.Admitted {
				m.admittedSum += rate
			}
		}
	}
	c.mu.Unlock()
	if c.cfg.Logf != nil {
		c.cfg.Logf("cluster: placement %d over %d nodes: %d routed (%d split), %d unplaced, weighted admission %.3f",
			seq, nodes, len(entries), len(p.Splits), len(p.Unplaced), p.WeightedAdmission)
	}
}

// register adds or refreshes a member; re-registration updates its
// address, budgets and link rate and clears failure marks.
func (c *Coordinator) register(req RegisterRequest) error {
	if req.Node == "" || req.Addr == "" {
		return fmt.Errorf("cluster: registration needs node and addr")
	}
	res := core.Resources{
		RBs:                req.Res.RBs,
		ComputeSeconds:     req.Res.ComputeSeconds,
		MemoryGB:           req.Res.MemoryGB,
		TrainBudgetSeconds: req.Res.TrainBudgetSeconds,
		Capacity:           c.cfg.Capacity,
	}
	if res.RBs <= 0 || res.ComputeSeconds <= 0 || res.TrainBudgetSeconds <= 0 {
		return fmt.Errorf("cluster: node %s registered unusable budgets %+v", req.Node, req.Res)
	}
	now := c.cfg.Now()
	c.mu.Lock()
	m, ok := c.members[req.Node]
	if !ok {
		m = &memberState{}
		c.members[req.Node] = m
	}
	m.node = Node{ID: req.Node, Addr: req.Addr, Res: res, BandwidthMbps: req.BandwidthMbps, FloorMbps: c.cfg.BandwidthFloorMbps}
	m.state = parseHealthState(req.State)
	m.lastBeat = now
	m.epoch = req.Epoch
	m.stale = false
	m.failed = false
	c.mu.Unlock()
	if c.cfg.Logf != nil {
		c.cfg.Logf("cluster: node %s registered at %s (R=%d, C=%gs, M=%g GB, link=%g Mb/s)",
			req.Node, req.Addr, res.RBs, res.ComputeSeconds, res.MemoryGB, req.BandwidthMbps)
	}
	c.Kick()
	return nil
}

// heartbeat records a member's beat, reviving stale/failed nodes and
// kicking a re-placement on revival or bandwidth drift. Reported link
// probes (coordinator link and node→peer rates) are EMA-smoothed and
// drift is judged against the rates the latest placement priced with,
// so noisy probes settle instead of re-placing every beat.
func (c *Coordinator) heartbeat(id string, req HeartbeatRequest) (ok bool) {
	now := c.cfg.Now()
	kick := false
	c.mu.Lock()
	m, found := c.members[id]
	if found {
		m.lastBeat = now
		m.state = parseHealthState(req.State)
		m.epoch = req.Epoch
		m.reported = req.Tasks
		if m.stale || m.failed {
			m.stale, m.failed = false, false
			kick = true
		}
		if req.BandwidthMbps > 0 {
			old := m.node.BandwidthMbps
			m.node.BandwidthMbps = smoothRate(old, req.BandwidthMbps)
			ref := m.placedMbps
			if ref <= 0 {
				ref = old // no placement has priced this link yet
			}
			if ref <= 0 || absFrac(m.node.BandwidthMbps, ref) > c.cfg.BandwidthDriftFrac {
				kick = true
				if c.cfg.Logf != nil {
					c.cfg.Logf("cluster: node %s link rate drifted to %.1f Mb/s (placed at %.1f), re-placing", id, m.node.BandwidthMbps, ref)
				}
			}
		}
		for peer, mbps := range req.Peers {
			if mbps <= 0 {
				continue
			}
			if m.peerMbps == nil {
				m.peerMbps = make(map[string]float64)
			}
			old := m.peerMbps[peer]
			m.peerMbps[peer] = smoothRate(old, mbps)
			ref := m.peerPlacedMbps[peer]
			if ref <= 0 {
				ref = old
			}
			if ref <= 0 || absFrac(m.peerMbps[peer], ref) > c.cfg.BandwidthDriftFrac {
				kick = true
				if c.cfg.Logf != nil {
					c.cfg.Logf("cluster: link %s→%s now %.1f Mb/s (placed at %.1f), re-placing", id, peer, m.peerMbps[peer], ref)
				}
			}
		}
	}
	c.mu.Unlock()
	if kick {
		c.Kick()
	}
	return found
}

// leave removes a member and re-places its tasks.
func (c *Coordinator) leave(id string) bool {
	c.mu.Lock()
	_, ok := c.members[id]
	delete(c.members, id)
	c.mu.Unlock()
	if ok {
		if c.cfg.Logf != nil {
			c.cfg.Logf("cluster: node %s left", id)
		}
		c.Kick()
	}
	return ok
}

// markFailed flags a node after a proxy transport failure and kicks a
// re-placement without it; the node rejoins on its next heartbeat.
func (c *Coordinator) markFailed(id string) {
	c.mu.Lock()
	m, ok := c.members[id]
	if ok && !m.failed {
		m.failed = true
	} else {
		ok = false
	}
	c.mu.Unlock()
	if ok {
		if c.cfg.Logf != nil {
			c.cfg.Logf("cluster: node %s unreachable, re-placing without it", id)
		}
		c.Kick()
	}
}

// parseHealthState maps the wire health string onto serve's states.
func parseHealthState(s string) serve.HealthState {
	switch s {
	case "degraded":
		return serve.Degraded
	case "draining":
		return serve.Draining
	}
	return serve.Healthy
}

// absFrac is |a−b| / b.
func absFrac(a, b float64) float64 {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d / b
}

// bwSmoothing is the weight one fresh probe carries in the smoothed
// link rate. 0.1 keeps a steady 5× probe jitter (loopback links
// routinely measure anywhere from 2 to 11 Gb/s beat to beat) inside
// the default 20% drift gate, while a sustained order-of-magnitude
// shift still crosses it within a few beats.
const bwSmoothing = 0.1

// smoothRate folds a fresh probe into the smoothed link rate.
func smoothRate(old, sample float64) float64 {
	if old <= 0 {
		return sample
	}
	return old + bwSmoothing*(sample-old)
}
