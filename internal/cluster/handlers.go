package cluster

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"offloadnn/internal/serve"
)

// CodeNodeUnreachable is the coordinator-specific error code for an
// offload whose owning node could not be reached; the task is re-placed
// and the client retries. The other codes mirror the serve envelope.
const CodeNodeUnreachable = "node_unreachable"

// errorBody mirrors serve's unified error envelope
// {"error":{"code":...,"message":...}} so cluster clients parse one
// shape against either daemon.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

func retryAfter(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (c *Coordinator) routesMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tasks", c.handleRegisterTask)
	mux.HandleFunc("GET /v1/tasks", c.handleListTasks)
	mux.HandleFunc("DELETE /v1/tasks/{id}", c.handleDeregisterTask)
	mux.HandleFunc("POST /v1/offload", c.handleOffload)
	mux.HandleFunc("POST /v1/cluster/nodes", c.handleNodeRegister)
	mux.HandleFunc("GET /v1/cluster/nodes", c.handleNodeList)
	mux.HandleFunc("POST /v1/cluster/nodes/{id}/heartbeat", c.handleHeartbeat)
	mux.HandleFunc("DELETE /v1/cluster/nodes/{id}", c.handleNodeLeave)
	mux.HandleFunc("POST /v1/cluster/bwprobe", c.handleBandwidthProbe)
	mux.HandleFunc("GET /healthz", c.handleHealth)
	mux.HandleFunc("GET /metrics", c.handleMetrics)
	return mux
}

// handleRegisterTask mirrors edgeserve's POST /v1/tasks: the coordinator
// owns the cluster-wide registry and the next placement assigns the task
// a node.
func (c *Coordinator) handleRegisterTask(w http.ResponseWriter, r *http.Request) {
	var spec serve.TaskSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "invalid task spec: %v", err)
		return
	}
	if err := c.reg.Register(spec.Task(), nil); err != nil {
		if errors.Is(err, serve.ErrExists) {
			writeError(w, http.StatusConflict, serve.CodeTaskExists, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "%v", err)
		return
	}
	c.Kick()
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         spec.ID,
		"status":     "pending",
		"generation": c.reg.Generation(),
	})
}

func (c *Coordinator) handleDeregisterTask(w http.ResponseWriter, r *http.Request) {
	if err := c.reg.Deregister(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, serve.CodeUnknownTask, "%v", err)
		return
	}
	c.Kick()
	w.WriteHeader(http.StatusNoContent)
}

// clusterTaskStatus is one entry of the coordinator's GET /v1/tasks: the
// serve TaskStatus fields plus the owning node.
type clusterTaskStatus struct {
	ID           string  `json:"id"`
	Priority     float64 `json:"priority"`
	Rate         float64 `json:"rate"`
	Admitted     bool    `json:"admitted"`
	AdmittedRate float64 `json:"admitted_rate"`
	Node         string  `json:"node,omitempty"`
	Path         string  `json:"path,omitempty"`
	DNN          string  `json:"dnn,omitempty"`
	// Hops is the serving pipeline length: 1 for a whole-path placement,
	// >1 when the task runs as a split path across nodes.
	Hops int `json:"hops,omitempty"`
}

func (c *Coordinator) handleListTasks(w http.ResponseWriter, r *http.Request) {
	tasks, _, _ := c.reg.Snapshot()
	rt := c.routes.Load()
	out := make([]clusterTaskStatus, 0, len(tasks))
	for _, t := range tasks {
		st := clusterTaskStatus{ID: t.ID, Priority: t.Priority, Rate: t.Rate}
		if e, ok := rt.entries[t.ID]; ok {
			st.Admitted = true
			st.AdmittedRate = e.Rate
			st.Node = e.NodeID
			st.Path = e.Path
			st.DNN = e.DNN
			st.Hops = e.Hops
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleOffload proxies the request to the node the routing table maps
// its task to, streaming the member's verdict — admission parameters,
// logits, 429s — back unchanged.
func (c *Coordinator) handleOffload(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "reading offload request: %v", err)
		return
	}
	var req struct {
		Task string `json:"task"`
	}
	if err := json.Unmarshal(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "invalid offload request: %v", err)
		return
	}
	entry, ok := c.routes.Load().entries[req.Task]
	if !ok {
		if c.reg.Has(req.Task) {
			// Registered but unrouted: no node admits it under the current
			// placement (or the re-placement is still pending).
			w.Header().Set("Retry-After", retryAfter(c.cfg.Debounce))
			writeError(w, http.StatusTooManyRequests, serve.CodeNotAdmitted,
				"task %q not admitted by current placement", req.Task)
			return
		}
		writeError(w, http.StatusNotFound, serve.CodeUnknownTask, "task %q not registered", req.Task)
		return
	}
	c.mu.Lock()
	m := c.members[entry.NodeID]
	c.mu.Unlock()
	if err := c.cfg.Faults.Hit(r.Context(), PointProxyError); err != nil {
		if m != nil {
			m.proxyErrs.Add(1)
		}
		writeError(w, http.StatusBadGateway, CodeNodeUnreachable, "node %s: %v", entry.NodeID, err)
		return
	}
	preq, err := http.NewRequestWithContext(r.Context(), http.MethodPost, entry.Addr+"/v1/offload", bytes.NewReader(body))
	if err != nil {
		writeError(w, http.StatusInternalServerError, CodeNodeUnreachable, "%v", err)
		return
	}
	preq.Header.Set("Content-Type", "application/json")
	resp, err := c.client.Do(preq)
	if err != nil {
		if m != nil {
			m.proxyErrs.Add(1)
		}
		// Transport failure: the node is gone or wedged. Fail the node so
		// the debounced re-placement moves its tasks to survivors; the
		// client retries and lands on the new route.
		c.markFailed(entry.NodeID)
		w.Header().Set("Retry-After", retryAfter(c.cfg.Debounce))
		writeError(w, http.StatusBadGateway, CodeNodeUnreachable, "node %s: %v", entry.NodeID, err)
		return
	}
	defer resp.Body.Close()
	if m != nil {
		m.proxied.Add(1)
	}
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.WriteHeader(resp.StatusCode)
	io.Copy(w, resp.Body)
}

// memberInfo is one entry of GET /v1/cluster/nodes.
type memberInfo struct {
	Node          string        `json:"node"`
	Addr          string        `json:"addr"`
	State         string        `json:"state"`
	Res           WireResources `json:"res"`
	BandwidthMbps float64       `json:"bandwidth_mbps,omitempty"`
	Epoch         uint64        `json:"epoch"`
	PlacedTasks   int           `json:"placed_tasks"`
	Stale         bool          `json:"stale,omitempty"`
	Failed        bool          `json:"failed,omitempty"`
}

func (c *Coordinator) handleNodeList(w http.ResponseWriter, r *http.Request) {
	c.mu.Lock()
	out := make([]memberInfo, 0, len(c.members))
	for id, m := range c.members {
		out = append(out, memberInfo{
			Node:          id,
			Addr:          m.node.Addr,
			State:         m.state.String(),
			Res:           ToWireResources(m.node.Res),
			BandwidthMbps: m.node.BandwidthMbps,
			Epoch:         m.epoch,
			PlacedTasks:   m.placedTasks,
			Stale:         m.stale,
			Failed:        m.failed,
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	writeJSON(w, http.StatusOK, out)
}

func (c *Coordinator) handleNodeRegister(w http.ResponseWriter, r *http.Request) {
	var req RegisterRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "invalid registration: %v", err)
		return
	}
	if err := c.register(req); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node":              req.Node,
		"heartbeat_timeout": c.cfg.HeartbeatTimeout.Seconds(),
	})
}

func (c *Coordinator) handleHeartbeat(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	var req HeartbeatRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "invalid heartbeat: %v", err)
		return
	}
	// A dropped beat answers 204 like a recorded one: the member cannot
	// tell, and the failure detector sees only silence (chaos tests).
	if err := c.cfg.Faults.Hit(r.Context(), PointHeartbeatDrop); err != nil {
		w.WriteHeader(http.StatusNoContent)
		return
	}
	if !c.heartbeat(id, req) {
		writeError(w, http.StatusNotFound, serve.CodeUnknownTask, "node %q not registered", id)
		return
	}
	// The response hands back the peer address book so the member's agent
	// can round-robin inter-node bandwidth probes (the measurements come
	// back in later heartbeats' Peers field).
	writeJSON(w, http.StatusOK, HeartbeatResponse{Peers: c.peerAddrs(id)})
}

func (c *Coordinator) handleNodeLeave(w http.ResponseWriter, r *http.Request) {
	if !c.leave(r.PathValue("id")) {
		writeError(w, http.StatusNotFound, serve.CodeUnknownTask, "node %q not registered", r.PathValue("id"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleBandwidthProbe sinks a member's bandwidth probe: the member
// streams a payload and measures the wall-clock transfer rate (the
// coordinator↔node link is assumed symmetric).
func (c *Coordinator) handleBandwidthProbe(w http.ResponseWriter, r *http.Request) {
	n, err := io.Copy(io.Discard, http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "probe: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"bytes": n})
}

// nodeHealth is one member's entry in the aggregate /healthz payload.
type nodeHealth struct {
	State         string  `json:"state"`
	Addr          string  `json:"addr"`
	Epoch         uint64  `json:"epoch"`
	Tasks         int     `json:"tasks"`
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
	HeartbeatAgeS float64 `json:"heartbeat_age_seconds"`
	Stale         bool    `json:"stale,omitempty"`
	Failed        bool    `json:"failed,omitempty"`
}

// handleHealth aggregates member health: the cluster is degraded — never
// silently healthy — when any member is degraded, stale, failed or
// draining, and the failing nodes are named in the payload.
func (c *Coordinator) handleHealth(w http.ResponseWriter, r *http.Request) {
	now := c.cfg.Now()
	nodes := make(map[string]nodeHealth)
	var failing []string
	c.mu.Lock()
	for id, m := range c.members {
		nh := nodeHealth{
			State:         m.state.String(),
			Addr:          m.node.Addr,
			Epoch:         m.epoch,
			Tasks:         m.placedTasks,
			BandwidthMbps: m.node.BandwidthMbps,
			HeartbeatAgeS: now.Sub(m.lastBeat).Seconds(),
			Stale:         m.stale,
			Failed:        m.failed,
		}
		if m.stale || m.failed || m.state != serve.Healthy {
			failing = append(failing, id)
		}
		nodes[id] = nh
	}
	c.mu.Unlock()
	sort.Strings(failing)
	status := "healthy"
	if len(failing) > 0 || len(nodes) == 0 {
		status = "degraded"
	}
	sum := c.summary.Load()
	body := map[string]any{
		"status":           status,
		"nodes":            nodes,
		"tasks_registered": c.reg.Len(),
		"generation":       c.reg.Generation(),
		"placement": map[string]any{
			"seq":                sum.seq,
			"generation":         sum.gen,
			"nodes":              sum.nodes,
			"weighted_admission": sum.weighted,
			"unplaced":           len(sum.unplaced),
			"splits":             len(sum.splits),
			"age_seconds":        now.Sub(sum.at).Seconds(),
		},
		"uptime_seconds": now.Sub(c.start).Seconds(),
	}
	if len(failing) > 0 {
		body["failing"] = failing
	}
	writeJSON(w, http.StatusOK, body)
}

// handleMetrics exposes cluster-level families plus per-node families
// labelled {node="..."} in the same text exposition format (with HELP and
// TYPE metadata) as the members' own /metrics.
func (c *Coordinator) handleMetrics(w http.ResponseWriter, r *http.Request) {
	now := c.cfg.Now()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	family := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	sum := c.summary.Load()
	family("offloadnn_cluster_uptime_seconds", "gauge", "Seconds since the coordinator started.")
	fmt.Fprintf(w, "offloadnn_cluster_uptime_seconds %g\n", now.Sub(c.start).Seconds())
	family("offloadnn_cluster_nodes", "gauge", "Members currently registered.")
	c.mu.Lock()
	nNodes := len(c.members)
	type nodeRow struct {
		id    string
		m     *memberState
		beat  float64
		state serve.HealthState
		peers map[string]float64
	}
	rows := make([]nodeRow, 0, nNodes)
	for id, m := range c.members {
		row := nodeRow{id: id, m: m, beat: now.Sub(m.lastBeat).Seconds(), state: m.state}
		if len(m.peerMbps) > 0 {
			row.peers = make(map[string]float64, len(m.peerMbps))
			for peer, mbps := range m.peerMbps {
				row.peers[peer] = mbps
			}
		}
		rows = append(rows, row)
	}
	c.mu.Unlock()
	sort.Slice(rows, func(i, j int) bool { return rows[i].id < rows[j].id })
	fmt.Fprintf(w, "offloadnn_cluster_nodes %d\n", nNodes)
	family("offloadnn_cluster_tasks_registered", "gauge", "Tasks currently registered with the coordinator.")
	fmt.Fprintf(w, "offloadnn_cluster_tasks_registered %d\n", c.reg.Len())
	family("offloadnn_cluster_tasks_unplaced", "gauge", "Registered tasks no node admits under the current placement.")
	fmt.Fprintf(w, "offloadnn_cluster_tasks_unplaced %d\n", len(sum.unplaced))
	family("offloadnn_cluster_placements_total", "counter", "Cluster-wide re-placements published.")
	fmt.Fprintf(w, "offloadnn_cluster_placements_total %d\n", c.placements.Load())
	family("offloadnn_cluster_placement_errors_total", "counter", "Plan pushes that failed and caused a retry without the node.")
	fmt.Fprintf(w, "offloadnn_cluster_placement_errors_total %d\n", c.placeErrs.Load())
	family("offloadnn_cluster_placement_seq", "counter", "Sequence number of the active placement.")
	fmt.Fprintf(w, "offloadnn_cluster_placement_seq %d\n", sum.seq)
	family("offloadnn_cluster_placement_age_seconds", "gauge", "Age of the active placement.")
	fmt.Fprintf(w, "offloadnn_cluster_placement_age_seconds %g\n", now.Sub(sum.at).Seconds())
	family("offloadnn_cluster_weighted_admission", "gauge", "Cluster-wide admitted weighted priority Σ z·p.")
	fmt.Fprintf(w, "offloadnn_cluster_weighted_admission %g\n", sum.weighted)
	family("offloadnn_split_paths", "gauge", "Tasks served as pipelined split paths under the current placement.")
	fmt.Fprintf(w, "offloadnn_split_paths %d\n", len(sum.splits))
	if len(sum.splits) > 0 {
		family("offloadnn_split_hops", "gauge", "Pipeline length of each split-path task.")
		for i := range sum.splits {
			fmt.Fprintf(w, "offloadnn_split_hops{task=%q} %d\n", sum.splits[i].TaskID, len(sum.splits[i].Segments))
		}
	}

	family("offloadnn_node_up", "gauge", "Member liveness: 1 when the node is neither stale nor failed.")
	for _, row := range rows {
		up := 0
		if row.m.alive() {
			up = 1
		}
		fmt.Fprintf(w, "offloadnn_node_up{node=%q} %d\n", row.id, up)
	}
	family("offloadnn_node_health_state", "gauge", "Member-reported serving condition: 0 healthy, 1 degraded, 2 draining.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_health_state{node=%q} %d\n", row.id, int(row.state))
	}
	family("offloadnn_node_heartbeat_age_seconds", "gauge", "Seconds since the member's last heartbeat.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_heartbeat_age_seconds{node=%q} %g\n", row.id, row.beat)
	}
	family("offloadnn_node_bandwidth_mbps", "gauge", "Measured coordinator-node link rate; 0 when unmeasured.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_bandwidth_mbps{node=%q} %g\n", row.id, row.m.node.BandwidthMbps)
	}
	family("offloadnn_link_mbps", "gauge", "Measured inter-node link rate from heartbeat-reported peer probes.")
	for _, row := range rows {
		peers := make([]string, 0, len(row.peers))
		for peer := range row.peers {
			peers = append(peers, peer)
		}
		sort.Strings(peers)
		for _, peer := range peers {
			fmt.Fprintf(w, "offloadnn_link_mbps{from=%q,to=%q} %g\n", row.id, peer, row.peers[peer])
		}
	}
	family("offloadnn_node_epoch", "counter", "Member's active deployment epoch as of its last contact.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_epoch{node=%q} %d\n", row.id, row.m.epoch)
	}
	family("offloadnn_node_tasks", "gauge", "Tasks the current placement assigns to the node.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_tasks{node=%q} %d\n", row.id, row.m.placedTasks)
	}
	family("offloadnn_node_admitted_rate", "gauge", "Sum of admitted frame rates z*lambda on the node, frames/s.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_admitted_rate{node=%q} %g\n", row.id, row.m.admittedSum)
	}
	family("offloadnn_node_weighted_admission", "gauge", "Admitted weighted priority on the node.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_weighted_admission{node=%q} %g\n", row.id, row.m.weighted)
	}
	family("offloadnn_node_proxied_total", "counter", "Offload requests proxied to the node.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_proxied_total{node=%q} %d\n", row.id, row.m.proxied.Load())
	}
	family("offloadnn_node_proxy_errors_total", "counter", "Proxied offloads that failed in transport to the node.")
	for _, row := range rows {
		fmt.Fprintf(w, "offloadnn_node_proxy_errors_total{node=%q} %d\n", row.id, row.m.proxyErrs.Load())
	}
}
