package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/serve"
)

// MemberHandler wraps an edgeserve server with the cluster-member
// endpoints: the full standalone API stays served (a member is a normal
// edgeserve daemon), plus
//
//	PUT /v1/cluster/plan      install the coordinator's task subset
//	GET /v1/cluster/info      node identity, budgets and epoch state
//	POST /v1/cluster/bwprobe  sink for peers' inter-node bandwidth probes
func MemberHandler(srv *serve.Server) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", srv)
	mux.HandleFunc("PUT /v1/cluster/plan", func(w http.ResponseWriter, r *http.Request) {
		handlePlanPush(srv, w, r)
	})
	mux.HandleFunc("POST /v1/cluster/bwprobe", func(w http.ResponseWriter, r *http.Request) {
		// Peer agents time a payload transfer against this sink to
		// measure the node→node link the split placement prices.
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/cluster/info", func(w http.ResponseWriter, r *http.Request) {
		h := srv.Health()
		writeJSON(w, http.StatusOK, map[string]any{
			"node":  srv.Node(),
			"state": h.State.String(),
			"epoch": h.Epoch,
			"tasks": srv.Registry().Len(),
			"res":   ToWireResources(srv.Resources()),
			"alpha": srv.Alpha(),
		})
	})
	return mux
}

// handlePlanPush installs one placement slice: the pushed tasks arrive
// fully built (paths and blocks included), the member re-solves them
// against its own budgets — priced at the pushed fleet-wide norm, so its
// epoch reaches the coordinator's per-node solution — and installs the
// result through its execution backend.
func handlePlanPush(srv *serve.Server, w http.ResponseWriter, r *http.Request) {
	var push PlanPush
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 8<<20))
	if err := dec.Decode(&push); err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "invalid plan push: %v", err)
		return
	}
	if push.Node != "" && srv.Node() != "" && push.Node != srv.Node() {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest,
			"plan for node %q pushed to node %q", push.Node, srv.Node())
		return
	}
	if err := push.Res.Matches(srv.Resources()); err != nil {
		writeError(w, http.StatusConflict, serve.CodeInvalidRequest, "%v", err)
		return
	}
	tasks := make([]core.Task, 0, len(push.Tasks))
	for _, wt := range push.Tasks {
		tasks = append(tasks, wt.Task())
	}
	changed, err := srv.ReplaceTasks(tasks, FromWireBlocks(push.Blocks), push.Res.NormResources())
	if err != nil {
		if errors.Is(err, serve.ErrDraining) {
			writeError(w, http.StatusServiceUnavailable, serve.CodeDraining, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "%v", err)
		return
	}
	specs := make([]serve.SegmentSpec, 0, len(push.Segments))
	for _, ws := range push.Segments {
		specs = append(specs, serve.SegmentSpec{
			Task:     ws.Task,
			Path:     ws.Path,
			DNN:      ws.DNN,
			Blocks:   ws.Blocks,
			From:     ws.From,
			To:       ws.To,
			Rate:     ws.Rate,
			BudgetMS: ws.BudgetMS,
			Hop:      ws.Hop,
			Hops:     ws.Hops,
			Next:     ws.Next,
			NextNode: ws.NextNode,
		})
	}
	segChanged, err := srv.ReplaceSegments(specs)
	if err != nil {
		writeError(w, http.StatusBadRequest, serve.CodeInvalidRequest, "%v", err)
		return
	}
	changed = changed || segChanged
	var epoch uint64
	if ep := srv.Current(); ep != nil {
		epoch = ep.N
	}
	writeJSON(w, http.StatusOK, PlanAck{
		Node:    srv.Node(),
		Epoch:   epoch,
		Tasks:   len(tasks),
		Changed: changed,
	})
}

// AgentConfig parameterizes a member's membership agent.
type AgentConfig struct {
	// Coordinator is the coordinator's base URL.
	Coordinator string
	// NodeID names this member (must match the server's Config.Node).
	NodeID string
	// Advertise is the base URL the coordinator reaches this member's
	// API on.
	Advertise string
	// Heartbeat is the beat period (default 1 s).
	Heartbeat time.Duration
	// BandwidthMbps fixes the link rate reported to the coordinator;
	// zero or negative measures it with a probe transfer at registration.
	BandwidthMbps float64
	// ProbeBytes sizes the bandwidth probe (default 1 MiB).
	ProbeBytes int
	// Client performs the membership calls (default: 10 s timeout).
	Client *http.Client
	// Logf receives agent diagnostics; nil discards them.
	Logf func(string, ...any)
}

// Agent is a member's side of the membership protocol: it registers the
// node with the coordinator, reports health/epoch/bandwidth with every
// heartbeat, re-registers when the coordinator forgot it (coordinator
// restart, heartbeat-timeout eviction), and deregisters on Close.
type Agent struct {
	cfg    AgentConfig
	srv    *serve.Server
	client *http.Client
	mbps   float64

	// Peer state for the inter-node bandwidth matrix: the coordinator's
	// heartbeat response carries the live peer address book, the agent
	// round-robins one probe per beat over it, and the next heartbeat
	// reports every measured node→peer rate.
	mu       sync.Mutex
	peerBook map[string]string  // peer node ID → base URL
	peerMbps map[string]float64 // peer node ID → measured Mb/s
	probeSeq int

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
}

// StartAgent launches the membership loop for the given member server.
func StartAgent(srv *serve.Server, cfg AgentConfig) (*Agent, error) {
	if cfg.Coordinator == "" || cfg.NodeID == "" || cfg.Advertise == "" {
		return nil, fmt.Errorf("cluster: agent needs coordinator, node ID and advertise address")
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = time.Second
	}
	if cfg.ProbeBytes <= 0 {
		cfg.ProbeBytes = 1 << 20
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 10 * time.Second}
	}
	a := &Agent{cfg: cfg, srv: srv, client: cfg.Client, mbps: cfg.BandwidthMbps}
	a.ctx, a.cancel = context.WithCancel(context.Background())
	a.wg.Add(1)
	go a.loop()
	return a, nil
}

// Close deregisters from the coordinator (best effort) and stops the
// agent.
func (a *Agent) Close() {
	a.cancel()
	a.wg.Wait()
	req, err := http.NewRequest(http.MethodDelete, a.cfg.Coordinator+"/v1/cluster/nodes/"+a.cfg.NodeID, nil)
	if err != nil {
		return
	}
	if resp, err := a.client.Do(req); err == nil {
		resp.Body.Close()
	}
}

// loop registers (retrying until it lands) and then heartbeats.
func (a *Agent) loop() {
	defer a.wg.Done()
	backoff := a.cfg.Heartbeat
	for {
		if err := a.register(); err == nil {
			break
		} else if a.cfg.Logf != nil {
			a.cfg.Logf("cluster: agent %s: register: %v", a.cfg.NodeID, err)
		}
		select {
		case <-a.ctx.Done():
			return
		case <-time.After(backoff):
		}
		if backoff < 10*time.Second {
			backoff *= 2
		}
	}
	t := time.NewTicker(a.cfg.Heartbeat)
	defer t.Stop()
	for {
		select {
		case <-a.ctx.Done():
			return
		case <-t.C:
		}
		if err := a.beat(); err != nil {
			if a.cfg.Logf != nil {
				a.cfg.Logf("cluster: agent %s: heartbeat: %v", a.cfg.NodeID, err)
			}
		}
	}
}

// register measures the link (unless a rate was configured) and announces
// the node.
func (a *Agent) register() error {
	if a.mbps <= 0 {
		if mbps, err := a.probeBandwidth(); err == nil {
			a.mbps = mbps
			if a.cfg.Logf != nil {
				a.cfg.Logf("cluster: agent %s: measured link %.1f Mb/s", a.cfg.NodeID, mbps)
			}
		} else if a.cfg.Logf != nil {
			a.cfg.Logf("cluster: agent %s: bandwidth probe: %v (link left unmeasured)", a.cfg.NodeID, err)
		}
	}
	h := a.srv.Health()
	body, err := json.Marshal(RegisterRequest{
		Node:          a.cfg.NodeID,
		Addr:          a.cfg.Advertise,
		Res:           ToWireResources(a.srv.Resources()),
		BandwidthMbps: a.mbps,
		State:         h.State.String(),
		Epoch:         h.Epoch,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(a.ctx, http.MethodPost, a.cfg.Coordinator+"/v1/cluster/nodes", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, msg)
	}
	return nil
}

// beat posts one heartbeat; a 404 means the coordinator no longer knows
// the node (restart or eviction) and triggers re-registration. A 200
// carries the coordinator's peer address book, which the agent probes
// one peer per beat over to fill the inter-node bandwidth matrix.
func (a *Agent) beat() error {
	a.mu.Lock()
	peers := make(map[string]float64, len(a.peerMbps))
	for id, mbps := range a.peerMbps {
		peers[id] = mbps
	}
	a.mu.Unlock()
	h := a.srv.Health()
	body, err := json.Marshal(HeartbeatRequest{
		State:         h.State.String(),
		Epoch:         h.Epoch,
		Tasks:         a.srv.Registry().Len(),
		BandwidthMbps: a.mbps,
		Peers:         peers,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(a.ctx, http.MethodPost,
		a.cfg.Coordinator+"/v1/cluster/nodes/"+a.cfg.NodeID+"/heartbeat", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		var hb HeartbeatResponse
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&hb); err == nil {
			a.mu.Lock()
			a.peerBook = hb.Peers
			a.mu.Unlock()
		}
		a.probeNextPeer()
		return nil
	case http.StatusNoContent:
		// Older coordinators (and the fault-injected heartbeat-drop path)
		// answer an empty 204; the beat still counts.
		return nil
	case http.StatusNotFound:
		if a.cfg.Logf != nil {
			a.cfg.Logf("cluster: agent %s: coordinator forgot us, re-registering", a.cfg.NodeID)
		}
		return a.register()
	default:
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("coordinator answered %d: %s", resp.StatusCode, msg)
	}
}

// probeNextPeer round-robins one inter-node bandwidth probe over the
// current peer address book, streaming ProbeBytes to the peer's probe
// sink and timing the transfer.
func (a *Agent) probeNextPeer() {
	a.mu.Lock()
	if len(a.peerBook) == 0 {
		a.mu.Unlock()
		return
	}
	ids := make([]string, 0, len(a.peerBook))
	for id := range a.peerBook {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	id := ids[a.probeSeq%len(ids)]
	addr := a.peerBook[id]
	a.probeSeq++
	a.mu.Unlock()

	payload := make([]byte, a.cfg.ProbeBytes)
	start := time.Now()
	req, err := http.NewRequestWithContext(a.ctx, http.MethodPost, addr+"/v1/cluster/bwprobe", bytes.NewReader(payload))
	if err != nil {
		return
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := a.client.Do(req)
	if err != nil {
		if a.cfg.Logf != nil {
			a.cfg.Logf("cluster: agent %s: peer probe %s: %v", a.cfg.NodeID, id, err)
		}
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	elapsed := time.Since(start).Seconds()
	if resp.StatusCode != http.StatusOK || elapsed <= 0 {
		return
	}
	mbps := float64(a.cfg.ProbeBytes) * 8 / elapsed / 1e6
	a.mu.Lock()
	if a.peerMbps == nil {
		a.peerMbps = make(map[string]float64)
	}
	a.peerMbps[id] = mbps
	a.mu.Unlock()
}

// probeBandwidth measures the node↔coordinator link by streaming
// ProbeBytes to the coordinator's probe sink and timing the transfer.
func (a *Agent) probeBandwidth() (float64, error) {
	payload := make([]byte, a.cfg.ProbeBytes)
	start := time.Now()
	req, err := http.NewRequestWithContext(a.ctx, http.MethodPost,
		a.cfg.Coordinator+"/v1/cluster/bwprobe", bytes.NewReader(payload))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/octet-stream")
	resp, err := a.client.Do(req)
	if err != nil {
		return 0, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("probe sink answered %d", resp.StatusCode)
	}
	elapsed := time.Since(start).Seconds()
	if elapsed <= 0 {
		return 0, fmt.Errorf("probe transfer too fast to time")
	}
	return float64(a.cfg.ProbeBytes) * 8 / elapsed / 1e6, nil
}
