package cluster

import (
	"context"
	"fmt"
	"sort"

	"offloadnn/internal/core"
)

// zFull is the admission ratio above which a task counts as fully
// admitted for placement purposes (matching the solver's own z≈1
// threshold).
const zFull = 1 - 1e-6

// NodePlan is one node's slice of a cluster placement: the (bandwidth-
// adjusted) tasks assigned to it, the blocks their paths reference, and
// the per-node DOT solution the assignment was derived from.
type NodePlan struct {
	// Node the subset is destined for.
	Node Node
	// Tasks assigned to the node, in the per-node session's order. A
	// task may appear here with z = 0 (it was tried on the node and the
	// node's solver rejected it without a better node existing); the
	// member's own epoch reaches the same verdict.
	Tasks []core.Task
	// Blocks is the catalog subset the tasks' paths reference.
	Blocks map[string]core.BlockSpec
	// Solution is the node's DOT solution, nil when no task landed here.
	Solution *core.Solution
	// Admitted maps each admitted task to its admitted rate z·λ.
	Admitted map[string]float64
}

// Placement is one cluster-wide assignment of tasks to nodes.
type Placement struct {
	// Plans is parallel to the node list Place was given.
	Plans []NodePlan
	// Route maps each admitted task to the ID of the node serving it.
	Route map[string]string
	// Unplaced lists tasks no node admits (sorted) — whole or split.
	Unplaced []string
	// Splits lists the pipelined multi-node plans the split-placement
	// pass found for tasks whole-path placement spilled (splitplace.go);
	// their tasks appear in Route keyed to the head node.
	Splits []SplitPath
	// WeightedAdmission is Σ over nodes of Σ z·p — the cluster-wide
	// counterpart of the single-server Breakdown.WeightedAdmission.
	WeightedAdmission float64
	// Errors records per-node solver failures survived by falling back
	// to other nodes (diagnostics; a placement with errors is still
	// valid).
	Errors []string
	// Norm holds the fleet-wide capacity totals every per-node solve was
	// priced against (core.Resources.Norm); pushes carry it so members
	// reprice identically.
	Norm *core.Resources
}

// fleetNorm sums the nodes' budgets into the objective normalizer shared
// by every per-node solve: R and C add up across the fleet, while Ct —
// which each node keeps in full — takes the largest value so the train
// term matches the single-server pricing.
func fleetNorm(nodes []Node) *core.Resources {
	norm := &core.Resources{}
	for _, n := range nodes {
		norm.RBs += n.Res.RBs
		norm.ComputeSeconds += n.Res.ComputeSeconds
		norm.MemoryGB += n.Res.MemoryGB
		if n.Res.TrainBudgetSeconds > norm.TrainBudgetSeconds {
			norm.TrainBudgetSeconds = n.Res.TrainBudgetSeconds
		}
	}
	return norm
}

// nodeState is one node's evolving solver state during a placement run.
type nodeState struct {
	node  Node
	alpha float64
	// sess is the node's incremental DOT session, nil while no task has
	// landed on the node (an empty instance is unsolvable by design).
	sess *core.SolverSession
	sol  *core.Solution
	// placed are the adjusted tasks currently applied to the session,
	// kept for rebuild-from-scratch recovery.
	placed []core.Task
	// catalog is the full block catalog tasks draw on (shared, read-only).
	catalog map[string]core.BlockSpec
	// dead marks a node whose session failed unrecoverably this run; no
	// further task is tried on it.
	dead bool
}

// DefaultPlaceApproxAfter is the fleet-wide task count at which
// PlaceWith abandons the exact per-node session bin-pack — quadratic in
// the task count — for the approximate partition-and-pack placement.
const DefaultPlaceApproxAfter = 512

// PlaceConfig parameterizes a placement run.
type PlaceConfig struct {
	// Alpha weights admission against resource cost in every per-node
	// solve.
	Alpha float64
	// ApproxAfter is the task count at which the placement switches from
	// the exact per-node session bin-pack to the approximate tier:
	// capacity-proportional task partitioning followed by one per-node
	// approximate admission solve. 0 applies DefaultPlaceApproxAfter;
	// negative pins the exact bin-pack at every scale.
	ApproxAfter int
	// Split, when non-nil, enables the cross-node split-placement pass:
	// tasks whole-path placement leaves unplaced are offered pipelined
	// multi-node plans (splitplace.go).
	Split *SplitConfig
}

// Place assigns every task to at most one node: greedy bin-pack by
// descending priority (ties keep registration order) over per-node
// incremental solver sessions. Each task is offered to the nodes in
// order — its latency budget shrunk by that node's link forward delay —
// and sticks to the first node whose DOT solve fully admits it; when no
// node does (a budget binds everywhere), it spills to the node that
// admitted the largest fraction z, and a task no node admits at all is
// left unplaced. Adding a spilled task never evicts an earlier, higher-
// priority placement: the per-node objective prefers shedding the
// cheaper newcomer, which is exactly the spill signal.
//
// Past DefaultPlaceApproxAfter tasks the run switches to the approximate
// placement (see PlaceWith); Place is PlaceWith with the default
// configuration at the given alpha.
//
// The returned placement carries each node's final solution; members
// re-solve the same per-node instance locally after the push and reach
// the same assignments.
func Place(ctx context.Context, tasks []core.Task, blocks map[string]core.BlockSpec, nodes []Node, alpha float64) *Placement {
	return PlaceWith(ctx, tasks, blocks, nodes, PlaceConfig{Alpha: alpha})
}

// PlaceWith computes one cluster-wide placement under the given
// configuration: the exact per-node session bin-pack below the
// ApproxAfter threshold, the approximate partition-and-pack placement at
// or above it.
func PlaceWith(ctx context.Context, tasks []core.Task, blocks map[string]core.BlockSpec, nodes []Node, cfg PlaceConfig) *Placement {
	after := cfg.ApproxAfter
	if after == 0 {
		after = DefaultPlaceApproxAfter
	}
	var p *Placement
	if after > 0 && len(tasks) >= after && len(nodes) > 0 {
		p = placeApprox(ctx, tasks, blocks, nodes, cfg.Alpha)
	} else {
		p = placeExact(ctx, tasks, blocks, nodes, cfg.Alpha)
	}
	splitPlace(p, tasks, blocks, cfg.Split)
	return p
}

// placeExact is the exact greedy bin-pack over per-node incremental
// solver sessions (see Place).
func placeExact(ctx context.Context, tasks []core.Task, blocks map[string]core.BlockSpec, nodes []Node, alpha float64) *Placement {
	norm := fleetNorm(nodes)
	states := make([]*nodeState, len(nodes))
	for i, n := range nodes {
		n.Res.Norm = norm // price at fleet-wide rates, constrain at node budgets
		states[i] = &nodeState{node: n, alpha: alpha, catalog: blocks}
	}
	p := &Placement{Route: make(map[string]string), Norm: norm}

	// Descending priority, stable so equal priorities keep registration
	// order (the same tie-break the single-server solver applies).
	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Priority > tasks[order[b]].Priority
	})

	for _, ti := range order {
		t := tasks[ti]
		bestNode, bestZ := -1, 0.0
		placedFull := false
		for ni, ns := range states {
			if ns.dead {
				continue
			}
			adj, ok := ns.node.AdjustTask(t)
			if !ok {
				continue // the link alone eats the latency budget
			}
			z, err := ns.tryAdd(ctx, adj, blocks)
			if err != nil {
				p.Errors = append(p.Errors, fmt.Sprintf("node %s: task %s: %v", ns.node.ID, t.ID, err))
				continue
			}
			if z >= zFull {
				p.Route[t.ID] = ns.node.ID
				placedFull = true
				break
			}
			// Budget binds here: roll back and keep looking, remembering
			// the best partial admission as the spill fallback.
			if rerr := ns.remove(ctx, adj.ID); rerr != nil {
				p.Errors = append(p.Errors, fmt.Sprintf("node %s: rollback %s: %v", ns.node.ID, t.ID, rerr))
			}
			if z > bestZ {
				bestZ, bestNode = z, ni
			}
		}
		if placedFull || bestNode < 0 {
			continue
		}
		// Spill: re-apply on the node that admitted the largest fraction.
		ns := states[bestNode]
		adj, _ := ns.node.AdjustTask(t)
		if _, err := ns.tryAdd(ctx, adj, blocks); err != nil {
			p.Errors = append(p.Errors, fmt.Sprintf("node %s: spill %s: %v", ns.node.ID, t.ID, err))
			continue
		}
		p.Route[t.ID] = ns.node.ID
	}

	improve(ctx, states, tasks, order, blocks)

	p.Plans = make([]NodePlan, len(states))
	routed := make(map[string]bool, len(tasks))
	for i, ns := range states {
		plan := NodePlan{Node: ns.node, Admitted: make(map[string]float64)}
		if ns.sess != nil && ns.sol != nil {
			plan.Tasks = ns.sess.Tasks()
			plan.Blocks = referencedBlocks(plan.Tasks, blocks)
			plan.Solution = ns.sol
			for ai, a := range ns.sol.Assignments {
				if !a.Admitted() || ai >= len(plan.Tasks) {
					continue
				}
				plan.Admitted[a.TaskID] = a.Z * plan.Tasks[ai].Rate
				routed[a.TaskID] = true
				p.Route[a.TaskID] = ns.node.ID
			}
			p.WeightedAdmission += ns.sol.Breakdown.WeightedAdmission
		}
		p.Plans[i] = plan
	}
	// The route is rebuilt from the final per-node solutions above: a
	// task placed early but demoted to z=0 by later spills onto its node
	// must not be routed.
	for id := range p.Route {
		if !routed[id] {
			delete(p.Route, id)
		}
	}
	for i := range tasks {
		if !routed[tasks[i].ID] {
			p.Unplaced = append(p.Unplaced, tasks[i].ID)
		}
	}
	sort.Strings(p.Unplaced)
	return p
}

// improveRounds bounds the local-search sweeps over not-fully-admitted
// tasks; in practice the search converges in one or two.
const improveRounds = 4

// improve runs a local search over the greedy placement: every task the
// greedy pass left below full admission (including unplaced ones) is
// tentatively moved to each other node, and the move is kept when it
// raises the cluster-wide weighted admission. The greedy pass is blind to
// tasks it has not seen yet — a high-priority, radio-hungry task placed
// early can end up partially admitted on a node whose LP later prefers a
// clutch of cheaper tasks, while the other node has the headroom to carry
// it whole — and this pass is what lets the spilled shape recover the
// single-server packing.
func improve(ctx context.Context, states []*nodeState, tasks []core.Task, order []int, blocks map[string]core.BlockSpec) {
	total := func() float64 {
		sum := 0.0
		for _, ns := range states {
			if ns.sol != nil {
				sum += ns.sol.Breakdown.WeightedAdmission
			}
		}
		return sum
	}
	for round := 0; round < improveRounds; round++ {
		improved := false
		for _, ti := range order {
			t := tasks[ti]
			cur := -1
			for i, ns := range states {
				if ns.holds(t.ID) {
					cur = i
					break
				}
			}
			if cur >= 0 && zOf(states[cur].sol, t.ID) >= zFull {
				continue
			}
			before := total()
			bestJ, bestGain := -1, 1e-9
			for j, ns := range states {
				if j == cur || ns.dead {
					continue
				}
				adj, ok := ns.node.AdjustTask(t)
				if !ok {
					continue
				}
				// Tentative move: off the current node, onto candidate j.
				if cur >= 0 {
					if err := states[cur].remove(ctx, t.ID); err != nil {
						break
					}
				}
				_, addErr := ns.tryAdd(ctx, adj, blocks)
				gain := total() - before
				// Revert; the commit below replays the winning move.
				if addErr == nil {
					if err := ns.remove(ctx, t.ID); err != nil {
						return
					}
				}
				if cur >= 0 {
					curAdj, _ := states[cur].node.AdjustTask(t)
					if _, err := states[cur].tryAdd(ctx, curAdj, blocks); err != nil {
						return
					}
				}
				if addErr == nil && gain > bestGain {
					bestJ, bestGain = j, gain
				}
			}
			if bestJ < 0 {
				continue
			}
			if cur >= 0 {
				if err := states[cur].remove(ctx, t.ID); err != nil {
					continue
				}
			}
			adj, _ := states[bestJ].node.AdjustTask(t)
			if _, err := states[bestJ].tryAdd(ctx, adj, blocks); err == nil {
				improved = true
			}
		}
		if !improved {
			break
		}
	}
}

// holds reports whether the task is currently applied to the node.
func (ns *nodeState) holds(id string) bool {
	for _, t := range ns.placed {
		if t.ID == id {
			return true
		}
	}
	return false
}

// tryAdd offers the (already bandwidth-adjusted) task to the node and
// returns the admission ratio z its solver granted. On a solver error
// the node's state is restored (rebuilding the session from scratch if
// the incremental rollback also fails) and the error returned.
func (ns *nodeState) tryAdd(ctx context.Context, adj core.Task, blocks map[string]core.BlockSpec) (float64, error) {
	if ns.sess == nil {
		sess, err := core.NewSolverSession(&core.Instance{
			Tasks:  []core.Task{adj},
			Blocks: referencedBlocks([]core.Task{adj}, blocks),
			Res:    ns.node.Res,
			Alpha:  ns.alpha,
		})
		if err != nil {
			return 0, err
		}
		sol, err := sess.Resolve(ctx, core.TaskDelta{})
		if err != nil {
			return 0, err
		}
		ns.sess, ns.sol = sess, sol
		ns.placed = append(ns.placed, adj)
		return zOf(sol, adj.ID), nil
	}
	delta := core.TaskDelta{Add: []core.Task{adj}}
	have := ns.sess.Instance().Blocks
	for id, b := range referencedBlocks([]core.Task{adj}, blocks) {
		if _, ok := have[id]; !ok {
			if delta.AddBlocks == nil {
				delta.AddBlocks = make(map[string]core.BlockSpec)
			}
			delta.AddBlocks[id] = b
		}
	}
	sol, err := ns.sess.Resolve(ctx, delta)
	if err != nil {
		// The delta may or may not have been applied; rebuild from the
		// last known-good placement.
		ns.rebuild(ctx)
		return 0, err
	}
	ns.sol = sol
	ns.placed = append(ns.placed, adj)
	return zOf(sol, adj.ID), nil
}

// remove rolls one task back off the node.
func (ns *nodeState) remove(ctx context.Context, id string) error {
	if ns.sess == nil {
		return nil
	}
	keep := ns.placed[:0]
	for _, t := range ns.placed {
		if t.ID != id {
			keep = append(keep, t)
		}
	}
	ns.placed = keep
	if len(ns.placed) == 0 {
		// Removing the last task would leave an unsolvable empty
		// instance; reset instead.
		ns.sess, ns.sol = nil, nil
		return nil
	}
	sol, err := ns.sess.Resolve(ctx, core.TaskDelta{Remove: []string{id}})
	if err != nil {
		ns.rebuild(ctx)
		return err
	}
	ns.sol = sol
	return nil
}

// rebuild reconstructs the node's session from its placed task list
// after an incremental failure; a node whose rebuild also fails is dead
// for the rest of the run.
func (ns *nodeState) rebuild(ctx context.Context) {
	ns.sess, ns.sol = nil, nil
	if len(ns.placed) == 0 {
		return
	}
	sess, err := core.NewSolverSession(&core.Instance{
		Tasks:  append([]core.Task(nil), ns.placed...),
		Blocks: referencedBlocks(ns.placed, ns.catalog),
		Res:    ns.node.Res,
		Alpha:  ns.alpha,
	})
	if err != nil {
		ns.dead = true
		return
	}
	sol, err := sess.Resolve(ctx, core.TaskDelta{})
	if err != nil {
		ns.dead = true
		return
	}
	ns.sess, ns.sol = sess, sol
}

// zOf returns the admitted fraction the solution grants a task.
func zOf(sol *core.Solution, id string) float64 {
	for _, a := range sol.Assignments {
		if a.TaskID == id {
			if !a.Admitted() {
				return 0
			}
			return a.Z
		}
	}
	return 0
}

// placeApprox is the approximate placement tier for fleet-wide task
// counts the exact session bin-pack cannot handle: every task costs the
// exact pass at least one incremental solve per node, so its total work
// is quadratic-plus in the task count, while this pass is two linear
// sweeps. Tasks are partitioned across the eligible nodes (link delay
// must leave latency slack) in descending priority, each to the node
// with the most remaining compute headroom per unit of assigned demand
// (λ as the demand proxy), and each node's subset is then packed by one
// approximate admission solve (core.TierApprox) priced at the
// fleet-wide normalizers — the same pricing the exact pass uses, so the
// two tiers' plans are comparable and members reprice identically.
func placeApprox(ctx context.Context, tasks []core.Task, blocks map[string]core.BlockSpec, nodes []Node, alpha float64) *Placement {
	norm := fleetNorm(nodes)
	p := &Placement{Route: make(map[string]string), Norm: norm}

	order := make([]int, len(tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Priority > tasks[order[b]].Priority
	})

	// Partition sweep: capacity-proportional balancing over the nodes
	// whose link leaves the task latency slack.
	perNode := make([][]core.Task, len(nodes))
	load := make([]float64, len(nodes)) // Σλ assigned so far
	for _, ti := range order {
		t := tasks[ti]
		best, bestScore := -1, -1.0
		var bestAdj core.Task
		for ni := range nodes {
			adj, ok := nodes[ni].AdjustTask(t)
			if !ok {
				continue
			}
			score := nodes[ni].Res.ComputeSeconds / (load[ni] + t.Rate)
			if score > bestScore {
				best, bestScore, bestAdj = ni, score, adj
			}
		}
		if best < 0 {
			continue // no node's link leaves latency slack: unplaced
		}
		perNode[best] = append(perNode[best], bestAdj)
		load[best] += t.Rate
	}

	// Packing sweep: one approximate admission solve per node.
	p.Plans = make([]NodePlan, len(nodes))
	routed := make(map[string]bool, len(tasks))
	for i := range nodes {
		node := nodes[i]
		node.Res.Norm = norm // price at fleet-wide rates, constrain at node budgets
		plan := NodePlan{Node: node, Admitted: make(map[string]float64)}
		if len(perNode[i]) > 0 {
			in := &core.Instance{
				Tasks:  perNode[i],
				Blocks: referencedBlocks(perNode[i], blocks),
				Res:    node.Res,
				Alpha:  alpha,
			}
			sol, err := core.SolveSpec(ctx, in, core.SolverSpec{Tier: core.TierApprox})
			if err != nil {
				p.Errors = append(p.Errors, fmt.Sprintf("node %s: approx solve: %v", node.ID, err))
			} else {
				plan.Tasks = perNode[i]
				plan.Blocks = in.Blocks
				plan.Solution = sol
				for ai, a := range sol.Assignments {
					if !a.Admitted() || ai >= len(plan.Tasks) {
						continue
					}
					plan.Admitted[a.TaskID] = a.Z * plan.Tasks[ai].Rate
					routed[a.TaskID] = true
					p.Route[a.TaskID] = node.ID
				}
				p.WeightedAdmission += sol.Breakdown.WeightedAdmission
			}
		}
		p.Plans[i] = plan
	}
	for i := range tasks {
		if !routed[tasks[i].ID] {
			p.Unplaced = append(p.Unplaced, tasks[i].ID)
		}
	}
	sort.Strings(p.Unplaced)
	return p
}

// referencedBlocks gathers the catalog subset the tasks' paths (and
// their quality ladders) reference.
func referencedBlocks(tasks []core.Task, blocks map[string]core.BlockSpec) map[string]core.BlockSpec {
	out := make(map[string]core.BlockSpec)
	for i := range tasks {
		for _, p := range tasks[i].Paths {
			for _, id := range p.Blocks {
				if b, ok := blocks[id]; ok {
					out[id] = b
				}
			}
		}
	}
	return out
}
