package cluster

import (
	"context"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
	"offloadnn/internal/workload"
)

// singleSolve runs the single-server OffloaDNN heuristic on the scenario.
func singleSolve(t *testing.T, in *core.Instance) *core.Solution {
	t.Helper()
	sol, err := core.SolveOffloaDNN(in)
	if err != nil {
		t.Fatalf("single-server solve: %v", err)
	}
	return sol
}

func clusterNodes(res []core.Resources) []Node {
	nodes := make([]Node, len(res))
	for i, r := range res {
		nodes[i] = Node{ID: string(rune('a' + i)), Res: r}
	}
	return nodes
}

// TestPlaceOneNodeMatchesSingleServer: a 1-node cluster with the full
// budget must reproduce the single-server solution exactly — same
// admitted set, paths and admission ratios.
func TestPlaceOneNodeMatchesSingleServer(t *testing.T) {
	in, err := workload.LargeScenario(workload.LoadMedium)
	if err != nil {
		t.Fatal(err)
	}
	want := singleSolve(t, in)
	p := Place(context.Background(), in.Tasks, in.Blocks, []Node{{ID: "solo", Res: in.Res}}, in.Alpha)
	if len(p.Errors) != 0 {
		t.Fatalf("placement errors: %v", p.Errors)
	}
	got := p.Plans[0].Solution
	if got == nil {
		t.Fatal("no solution on the only node")
	}
	// A task the solver rejects outright (z=0) stays out of the cluster
	// session — the coordinator answers not_admitted for unrouted tasks —
	// so the comparison is over admitted assignments.
	wantBy := make(map[string]core.Assignment)
	for _, a := range want.Assignments {
		if a.Admitted() {
			wantBy[a.TaskID] = a
		}
	}
	gotAdmitted := 0
	for _, a := range got.Assignments {
		if !a.Admitted() {
			continue
		}
		gotAdmitted++
		w, ok := wantBy[a.TaskID]
		if !ok {
			t.Errorf("task %s admitted by the cluster, rejected standalone", a.TaskID)
			continue
		}
		if a.Path.ID != w.Path.ID {
			t.Errorf("task %s: path %s want %s", a.TaskID, a.Path.ID, w.Path.ID)
		}
		if diff := a.Z - w.Z; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("task %s: z %v want %v", a.TaskID, a.Z, w.Z)
		}
		if a.RBs != w.RBs {
			t.Errorf("task %s: rbs %d want %d", a.TaskID, a.RBs, w.RBs)
		}
	}
	if gotAdmitted != len(wantBy) {
		t.Errorf("admitted count: got %d want %d", gotAdmitted, len(wantBy))
	}
	if diff := p.WeightedAdmission - want.Breakdown.WeightedAdmission; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("weighted admission %v want %v", p.WeightedAdmission, want.Breakdown.WeightedAdmission)
	}
}

// TestPlaceTwoHalfNodesAdmitNoLess is the PR's acceptance criterion: a
// 2-node cluster whose nodes each get half the single server's M/C/R
// budgets must admit at least as much total weighted priority as the one
// full-budget server on the 20-task scenario.
func TestPlaceTwoHalfNodesAdmitNoLess(t *testing.T) {
	for _, load := range []workload.Load{workload.LoadLow, workload.LoadMedium, workload.LoadHigh} {
		in, shares, err := workload.ClusterScenario(load, 2)
		if err != nil {
			t.Fatal(err)
		}
		single := singleSolve(t, in).Breakdown.WeightedAdmission
		nodes := clusterNodes(shares)
		p := Place(context.Background(), in.Tasks, in.Blocks, nodes, in.Alpha)
		if len(p.Errors) != 0 {
			t.Fatalf("load %v: placement errors: %v", load, p.Errors)
		}
		if p.WeightedAdmission < single-1e-9 {
			t.Errorf("load %v: 2x half-budget cluster admits %.4f weighted priority, single full-budget server %.4f",
				load, p.WeightedAdmission, single)
		}
		t.Logf("load %v: cluster=%.4f single=%.4f unplaced=%d", load, p.WeightedAdmission, single, len(p.Unplaced))
	}
}

// TestPlaceSpillsAcrossNodes checks the bin-packing shape: with per-node
// budgets sized so one node cannot hold everything, tasks spill onto the
// second node instead of being rejected.
func TestPlaceSpillsAcrossNodes(t *testing.T) {
	in, err := workload.LargeScenario(workload.LoadHigh)
	if err != nil {
		t.Fatal(err)
	}
	nodes := clusterNodes(edge.PartitionResources(in.Res, 2))
	p := Place(context.Background(), in.Tasks, in.Blocks, nodes, in.Alpha)
	perNode := map[string]int{}
	for _, nid := range p.Route {
		perNode[nid]++
	}
	if len(perNode) < 2 {
		t.Fatalf("expected tasks on both nodes, got %v (unplaced %v)", perNode, p.Unplaced)
	}
	for id, nid := range p.Route {
		found := false
		for _, plan := range p.Plans {
			if plan.Node.ID != nid {
				continue
			}
			if _, ok := plan.Admitted[id]; ok {
				found = true
			}
		}
		if !found {
			t.Errorf("routed task %s missing from node %s admitted set", id, nid)
		}
	}
}

// TestPlaceBandwidthShrinksLatencyBudget: a node behind a slow link must
// lose tight-latency tasks to a well-connected peer, and a link that
// eats the whole budget excludes the node entirely.
func TestPlaceBandwidthShrinksLatencyBudget(t *testing.T) {
	in, err := workload.SmallScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	// task-1 has L=200ms, β=350Kb. A 2 Mb/s link forwards a frame in
	// 175ms, leaving 25ms — too tight for slice tx + compute — while a
	// 1000 Mb/s link costs 0.35ms.
	slow := Node{ID: "slow", Res: in.Res, BandwidthMbps: 2}
	fast := Node{ID: "fast", Res: in.Res, BandwidthMbps: 1000}
	p := Place(context.Background(), in.Tasks, in.Blocks, []Node{slow, fast}, in.Alpha)
	if nid, ok := p.Route["task-1"]; !ok || nid != "fast" {
		t.Errorf("task-1 (L=200ms) routed to %q, want the fast node (route %v, unplaced %v)", nid, p.Route, p.Unplaced)
	}

	// A link slower than the frame rate of any budget excludes the node.
	dead := Node{ID: "dead", Res: in.Res, BandwidthMbps: 0.1}
	p = Place(context.Background(), in.Tasks, in.Blocks, []Node{dead}, in.Alpha)
	if len(p.Route) != 0 {
		t.Errorf("0.1 Mb/s node admitted %v, want nothing", p.Route)
	}
	if len(p.Unplaced) != len(in.Tasks) {
		t.Errorf("unplaced %d want %d", len(p.Unplaced), len(in.Tasks))
	}
}

// TestAdjustTask pins the bandwidth model arithmetic.
func TestAdjustTask(t *testing.T) {
	task := core.Task{ID: "t", MaxLatency: 200 * time.Millisecond, InputBits: 1e6}
	n := Node{BandwidthMbps: 10} // 1e6 bits / 10 Mb/s = 100 ms
	adj, ok := n.AdjustTask(task)
	if !ok {
		t.Fatal("expected adjustable")
	}
	if adj.MaxLatency != 100*time.Millisecond {
		t.Errorf("adjusted latency %v want 100ms", adj.MaxLatency)
	}
	if _, ok := (Node{BandwidthMbps: 4}).AdjustTask(task); ok {
		t.Error("250ms forward delay must exhaust a 200ms budget")
	}
	if adj, _ := (Node{}).AdjustTask(task); adj.MaxLatency != task.MaxLatency {
		t.Error("unmeasured link must not charge the budget")
	}
}
