package cluster

import (
	"context"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
	"offloadnn/internal/workload"
)

// singleSolve runs the single-server OffloaDNN heuristic on the scenario.
func singleSolve(t *testing.T, in *core.Instance) *core.Solution {
	t.Helper()
	sol, err := core.SolveOffloaDNN(in)
	if err != nil {
		t.Fatalf("single-server solve: %v", err)
	}
	return sol
}

func clusterNodes(res []core.Resources) []Node {
	nodes := make([]Node, len(res))
	for i, r := range res {
		// FloorMbps -1: these tests compare cluster placement against the
		// standalone solver, which models no coordinator→node link at all,
		// so the unmeasured-link floor must not charge the budget here.
		nodes[i] = Node{ID: string(rune('a' + i)), Res: r, FloorMbps: -1}
	}
	return nodes
}

// TestPlaceOneNodeMatchesSingleServer: a 1-node cluster with the full
// budget must reproduce the single-server solution exactly — same
// admitted set, paths and admission ratios.
func TestPlaceOneNodeMatchesSingleServer(t *testing.T) {
	in, err := workload.LargeScenario(workload.LoadMedium)
	if err != nil {
		t.Fatal(err)
	}
	want := singleSolve(t, in)
	p := Place(context.Background(), in.Tasks, in.Blocks, []Node{{ID: "solo", Res: in.Res, FloorMbps: -1}}, in.Alpha)
	if len(p.Errors) != 0 {
		t.Fatalf("placement errors: %v", p.Errors)
	}
	got := p.Plans[0].Solution
	if got == nil {
		t.Fatal("no solution on the only node")
	}
	// A task the solver rejects outright (z=0) stays out of the cluster
	// session — the coordinator answers not_admitted for unrouted tasks —
	// so the comparison is over admitted assignments.
	wantBy := make(map[string]core.Assignment)
	for _, a := range want.Assignments {
		if a.Admitted() {
			wantBy[a.TaskID] = a
		}
	}
	gotAdmitted := 0
	for _, a := range got.Assignments {
		if !a.Admitted() {
			continue
		}
		gotAdmitted++
		w, ok := wantBy[a.TaskID]
		if !ok {
			t.Errorf("task %s admitted by the cluster, rejected standalone", a.TaskID)
			continue
		}
		if a.Path.ID != w.Path.ID {
			t.Errorf("task %s: path %s want %s", a.TaskID, a.Path.ID, w.Path.ID)
		}
		if diff := a.Z - w.Z; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("task %s: z %v want %v", a.TaskID, a.Z, w.Z)
		}
		if a.RBs != w.RBs {
			t.Errorf("task %s: rbs %d want %d", a.TaskID, a.RBs, w.RBs)
		}
	}
	if gotAdmitted != len(wantBy) {
		t.Errorf("admitted count: got %d want %d", gotAdmitted, len(wantBy))
	}
	if diff := p.WeightedAdmission - want.Breakdown.WeightedAdmission; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("weighted admission %v want %v", p.WeightedAdmission, want.Breakdown.WeightedAdmission)
	}
}

// TestPlaceTwoHalfNodesAdmitNoLess is the PR's acceptance criterion: a
// 2-node cluster whose nodes each get half the single server's M/C/R
// budgets must admit at least as much total weighted priority as the one
// full-budget server on the 20-task scenario.
func TestPlaceTwoHalfNodesAdmitNoLess(t *testing.T) {
	for _, load := range []workload.Load{workload.LoadLow, workload.LoadMedium, workload.LoadHigh} {
		in, shares, err := workload.ClusterScenario(load, 2)
		if err != nil {
			t.Fatal(err)
		}
		single := singleSolve(t, in).Breakdown.WeightedAdmission
		nodes := clusterNodes(shares)
		p := Place(context.Background(), in.Tasks, in.Blocks, nodes, in.Alpha)
		if len(p.Errors) != 0 {
			t.Fatalf("load %v: placement errors: %v", load, p.Errors)
		}
		if p.WeightedAdmission < single-1e-9 {
			t.Errorf("load %v: 2x half-budget cluster admits %.4f weighted priority, single full-budget server %.4f",
				load, p.WeightedAdmission, single)
		}
		t.Logf("load %v: cluster=%.4f single=%.4f unplaced=%d", load, p.WeightedAdmission, single, len(p.Unplaced))
	}
}

// TestPlaceSpillsAcrossNodes checks the bin-packing shape: with per-node
// budgets sized so one node cannot hold everything, tasks spill onto the
// second node instead of being rejected.
func TestPlaceSpillsAcrossNodes(t *testing.T) {
	in, err := workload.LargeScenario(workload.LoadHigh)
	if err != nil {
		t.Fatal(err)
	}
	nodes := clusterNodes(edge.PartitionResources(in.Res, 2))
	p := Place(context.Background(), in.Tasks, in.Blocks, nodes, in.Alpha)
	perNode := map[string]int{}
	for _, nid := range p.Route {
		perNode[nid]++
	}
	if len(perNode) < 2 {
		t.Fatalf("expected tasks on both nodes, got %v (unplaced %v)", perNode, p.Unplaced)
	}
	for id, nid := range p.Route {
		found := false
		for _, plan := range p.Plans {
			if plan.Node.ID != nid {
				continue
			}
			if _, ok := plan.Admitted[id]; ok {
				found = true
			}
		}
		if !found {
			t.Errorf("routed task %s missing from node %s admitted set", id, nid)
		}
	}
}

// TestPlaceBandwidthShrinksLatencyBudget: a node behind a slow link must
// lose tight-latency tasks to a well-connected peer, and a link that
// eats the whole budget excludes the node entirely.
func TestPlaceBandwidthShrinksLatencyBudget(t *testing.T) {
	in, err := workload.SmallScenario(5)
	if err != nil {
		t.Fatal(err)
	}
	// task-1 has L=200ms, β=350Kb. A 2 Mb/s link forwards a frame in
	// 175ms, leaving 25ms — too tight for slice tx + compute — while a
	// 1000 Mb/s link costs 0.35ms.
	slow := Node{ID: "slow", Res: in.Res, BandwidthMbps: 2}
	fast := Node{ID: "fast", Res: in.Res, BandwidthMbps: 1000}
	p := Place(context.Background(), in.Tasks, in.Blocks, []Node{slow, fast}, in.Alpha)
	if nid, ok := p.Route["task-1"]; !ok || nid != "fast" {
		t.Errorf("task-1 (L=200ms) routed to %q, want the fast node (route %v, unplaced %v)", nid, p.Route, p.Unplaced)
	}

	// A link slower than the frame rate of any budget excludes the node.
	dead := Node{ID: "dead", Res: in.Res, BandwidthMbps: 0.1}
	p = Place(context.Background(), in.Tasks, in.Blocks, []Node{dead}, in.Alpha)
	if len(p.Route) != 0 {
		t.Errorf("0.1 Mb/s node admitted %v, want nothing", p.Route)
	}
	if len(p.Unplaced) != len(in.Tasks) {
		t.Errorf("unplaced %d want %d", len(p.Unplaced), len(in.Tasks))
	}
}

// TestAdjustTask pins the bandwidth model arithmetic, including the
// unmeasured-link floor.
func TestAdjustTask(t *testing.T) {
	task := core.Task{ID: "t", MaxLatency: 200 * time.Millisecond, InputBits: 1e6}
	n := Node{BandwidthMbps: 10} // 1e6 bits / 10 Mb/s = 100 ms
	adj, ok := n.AdjustTask(task)
	if !ok {
		t.Fatal("expected adjustable")
	}
	if adj.MaxLatency != 100*time.Millisecond {
		t.Errorf("adjusted latency %v want 100ms", adj.MaxLatency)
	}
	if _, ok := (Node{BandwidthMbps: 4}).AdjustTask(task); ok {
		t.Error("250ms forward delay must exhaust a 200ms budget")
	}
	// An unmeasured link is priced at the conservative DefaultFloorMbps
	// (1 Mb/s): a 1 Mb frame costs the whole 200 ms budget and more.
	if _, ok := (Node{}).AdjustTask(task); ok {
		t.Error("unmeasured link must be priced at the floor, exhausting a 200ms budget")
	}
	if adj, ok := (Node{}).AdjustTask(core.Task{ID: "t", MaxLatency: 1200 * time.Millisecond, InputBits: 1e6}); !ok || adj.MaxLatency != 200*time.Millisecond {
		t.Errorf("floor-priced link: adjusted latency %v (ok=%v), want 200ms", adj.MaxLatency, ok)
	}
	// A negative floor opts the node out of floor pricing entirely.
	if adj, ok := (Node{FloorMbps: -1}).AdjustTask(task); !ok || adj.MaxLatency != task.MaxLatency {
		t.Errorf("floor opt-out must not charge the budget, got %v (ok=%v)", adj.MaxLatency, ok)
	}
	// A custom floor replaces the default.
	if adj, ok := (Node{FloorMbps: 10}).AdjustTask(task); !ok || adj.MaxLatency != 100*time.Millisecond {
		t.Errorf("custom 10 Mb/s floor: adjusted latency %v (ok=%v), want 100ms", adj.MaxLatency, ok)
	}
}

// TestBandwidthFloor pins LinkMbps and the pairwise TransferDelay.
func TestBandwidthFloor(t *testing.T) {
	if got := (Node{}).LinkMbps(); got != DefaultFloorMbps {
		t.Errorf("unmeasured link rate %v, want default floor %v", got, DefaultFloorMbps)
	}
	if got := (Node{BandwidthMbps: 25}).LinkMbps(); got != 25 {
		t.Errorf("measured link rate %v, want 25", got)
	}
	if got := (Node{FloorMbps: 4}).LinkMbps(); got != 4 {
		t.Errorf("configured floor rate %v, want 4", got)
	}
	if got := (Node{FloorMbps: -1}).LinkMbps(); got != 0 {
		t.Errorf("opted-out link rate %v, want 0 (free)", got)
	}
	// Pairwise transfer is priced at the slower of the two links.
	a := Node{BandwidthMbps: 10}
	b := Node{BandwidthMbps: 2}
	if got := TransferDelay(a, b, 1e6); got != 500*time.Millisecond {
		t.Errorf("transfer over 10/2 Mb/s pair took %v, want 500ms", got)
	}
	if got := TransferDelay(a, Node{FloorMbps: -1}, 1e6); got != 0 {
		t.Errorf("transfer to an opted-out node took %v, want 0", got)
	}
	if got := (Node{}).ForwardDelay(1e6); got != time.Second {
		t.Errorf("floor-priced forward of 1 Mb took %v, want 1s", got)
	}
	if got := (Node{}).ForwardDelay(0); got != 0 {
		t.Errorf("zero-bit forward took %v, want 0", got)
	}
}
