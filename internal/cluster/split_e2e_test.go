package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/exec"
	"offloadnn/internal/radio"
	"offloadnn/internal/serve"
)

// startRealMember is startMember with a tensor-backed execution layer:
// split-path acceptance needs real logits to compare bit-for-bit.
func startRealMember(t *testing.T, id string, memGB float64) *liveMember {
	t.Helper()
	backend, err := exec.NewReal(exec.RealConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Res: core.Resources{
			RBs:                50,
			ComputeSeconds:     2.5,
			MemoryGB:           memGB,
			TrainBudgetSeconds: 1000,
			Capacity:           radio.PaperRate(),
		},
		Alpha:    0.5,
		Node:     id,
		Debounce: 10 * time.Millisecond,
		Backend:  backend,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(MemberHandler(srv))
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return &liveMember{srv: srv, ts: ts}
}

// e2eFrame mirrors the exec split tests' deterministic input.
func e2eFrame() []float64 {
	frame := make([]float64, 3*8*8)
	for i := range frame {
		frame[i] = float64((i*7+13)%29)/29 - 0.5
	}
	return frame
}

func postOffloadJSON(t *testing.T, baseURL string, req serve.OffloadRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(baseURL+"/v1/offload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

func errorCode(t *testing.T, body []byte) string {
	t.Helper()
	var env struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatalf("error envelope: %v (%s)", err, body)
	}
	return env.Error.Code
}

// TestClusterSplitEndToEnd is the PR's acceptance scenario over live
// HTTP: a model whose only path exceeds every node's memory is
// inadmissible on a 1-node cluster, but a 2-node cluster serves it
// end-to-end through a split pipeline, with logits bit-identical to a
// single full-memory server and the deadline budget enforced across
// hops.
func TestClusterSplitEndToEnd(t *testing.T) {
	tasks, blocks := splitScenario()
	frame := e2eFrame()

	// Reference: one standalone server with memory for the whole path.
	refBackend, err := exec.NewReal(exec.RealConfig{BatchSize: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := serve.New(serve.Config{
		Res: core.Resources{
			RBs:                50,
			ComputeSeconds:     2.5,
			MemoryGB:           2,
			TrainBudgetSeconds: 1000,
			Capacity:           radio.PaperRate(),
		},
		Alpha:    0.5,
		Node:     "ref",
		Debounce: 10 * time.Millisecond,
		Backend:  refBackend,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	if err := ref.Registry().Register(tasks[0], blocks); err != nil {
		t.Fatal(err)
	}
	if err := ref.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	refTS := httptest.NewServer(ref)
	defer refTS.Close()
	status, body := postOffloadJSON(t, refTS.URL, serve.OffloadRequest{Task: "big", Input: frame})
	if status != http.StatusOK {
		t.Fatalf("standalone reference offload: %d %s", status, body)
	}
	var refResp serve.OffloadResponse
	if err := json.Unmarshal(body, &refResp); err != nil {
		t.Fatal(err)
	}
	if len(refResp.Logits) == 0 || refResp.Simulated {
		t.Fatalf("standalone reference produced no real logits: %+v", refResp)
	}

	// 1-node cluster: 0.7 GB cannot hold the 1.2 GB path and there is no
	// peer to split onto — the task must be refused, not served.
	soloMember := startRealMember(t, "solo", 0.7)
	solo := startCoordinator(t, Config{})
	if err := solo.Registry().Register(tasks[0], blocks); err != nil {
		t.Fatal(err)
	}
	joinMember(t, solo, "solo", soloMember, 100)
	if err := solo.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	soloFront := httptest.NewServer(solo)
	defer soloFront.Close()
	status, body = postOffloadJSON(t, soloFront.URL, serve.OffloadRequest{Task: "big", Input: frame})
	if status != http.StatusTooManyRequests {
		t.Fatalf("1-node cluster answered %d (%s), want 429 not_admitted", status, body)
	}
	if code := errorCode(t, body); code != serve.CodeNotAdmitted {
		t.Fatalf("1-node cluster error code %q, want %q", code, serve.CodeNotAdmitted)
	}

	// 2-node cluster: the same task must split 2|2 across the members and
	// serve end-to-end through the coordinator proxy.
	ma := startRealMember(t, "a", 0.7)
	mb := startRealMember(t, "b", 0.7)
	c := startCoordinator(t, Config{})
	if err := c.Registry().Register(tasks[0], blocks); err != nil {
		t.Fatal(err)
	}
	joinMember(t, c, "a", ma, 100)
	joinMember(t, c, "b", mb, 100)
	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	members := map[string]*liveMember{"a": ma, "b": mb}
	var head, tail *liveMember
	for _, m := range members {
		for _, sp := range m.srv.Segments() {
			switch {
			case sp.Task == "big" && sp.From == 0:
				head = m
			case sp.Task == "big" && sp.From == 2:
				tail = m
			}
		}
	}
	if head == nil || tail == nil || head == tail {
		t.Fatalf("segments not installed across both members (head %p tail %p)", head, tail)
	}

	front := httptest.NewServer(c)
	defer front.Close()
	status, body = postOffloadJSON(t, front.URL, serve.OffloadRequest{Task: "big", Input: frame})
	if status != http.StatusOK {
		t.Fatalf("2-node split offload: %d %s", status, body)
	}
	var split serve.OffloadResponse
	if err := json.Unmarshal(body, &split); err != nil {
		t.Fatal(err)
	}
	if split.Simulated {
		t.Fatal("split response claims a simulated backend")
	}
	if len(split.Hops) != 2 {
		t.Fatalf("hops %+v, want 2 entries", split.Hops)
	}
	if split.Hops[0].Node == split.Hops[1].Node {
		t.Fatalf("both hops on node %q", split.Hops[0].Node)
	}
	if split.Hops[0].ActivationBytes <= 0 {
		t.Errorf("head hop shipped %d activation bytes, want positive", split.Hops[0].ActivationBytes)
	}
	if len(split.Logits) != len(refResp.Logits) {
		t.Fatalf("split logits len %d, reference %d", len(split.Logits), len(refResp.Logits))
	}
	for i := range split.Logits {
		if split.Logits[i] != refResp.Logits[i] {
			t.Fatalf("logit %d: split %v != standalone %v (bit-identical required)", i, split.Logits[i], refResp.Logits[i])
		}
	}
	if split.Argmax == nil || refResp.Argmax == nil || *split.Argmax != *refResp.Argmax {
		t.Fatalf("argmax: split %v, standalone %v", split.Argmax, refResp.Argmax)
	}
	if split.DeadlineMS <= 0 || split.DeadlineMS > 500 {
		t.Errorf("pipeline deadline budget %.1fms outside (0, 500]", split.DeadlineMS)
	}
	if split.MeasuredLatencyMS <= 0 {
		t.Errorf("measured pipeline latency %.3fms, want positive", split.MeasuredLatencyMS)
	}

	// Deadline enforcement at the head: a budget no real inference can
	// meet sheds at the first segment with the single-node 504 code.
	status, body = postOffloadJSON(t, front.URL, serve.OffloadRequest{Task: "big", Input: frame, DeadlineMS: 1e-6})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("1ns-deadline offload answered %d (%s), want 504", status, body)
	}
	if code := errorCode(t, body); code != serve.CodeDeadline && code != serve.CodeDeadlineHop {
		t.Fatalf("1ns-deadline error code %q, want a deadline code", code)
	}

	// Deadline enforcement across hops: an envelope that arrives at the
	// tail with its budget already spent is shed with the @hop code.
	shape := dnn.SegmentBoundaryShape(dnn.DefaultResNetConfig(), [3]int{3, 8, 8}, 2)
	man := dnn.ActivationManifest{
		Task:        "big",
		Path:        "split/full",
		From:        2,
		Shape:       shape,
		RemainingMS: -5,
		BudgetMS:    500,
		Hops:        []dnn.ActivationHop{{Node: "a", LatencyMS: 501}},
	}
	var buf bytes.Buffer
	if err := dnn.EncodeActivation(&buf, man, make([]float64, shape[0]*shape[1]*shape[2])); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(tail.ts.URL+"/v1/stage", "application/octet-stream", &buf)
	if err != nil {
		t.Fatal(err)
	}
	stageBody, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("spent-budget stage handoff answered %d (%s), want 504", resp.StatusCode, stageBody)
	}
	if code := errorCode(t, stageBody); code != serve.CodeDeadlineHop {
		t.Fatalf("spent-budget stage error code %q, want %q", code, serve.CodeDeadlineHop)
	}

	// Killing the tail forces a re-placement; with one surviving 0.7 GB
	// node the split is no longer feasible and the route must be dropped
	// rather than left pointing into a dead pipeline.
	tail.ts.Close()
	if err := c.PlaceNow(); err != nil {
		t.Fatal(err)
	}
	status, body = postOffloadJSON(t, front.URL, serve.OffloadRequest{Task: "big", Input: frame})
	if status != http.StatusTooManyRequests {
		t.Fatalf("post-failure offload answered %d (%s), want 429 not_admitted", status, body)
	}
	if code := errorCode(t, body); code != serve.CodeNotAdmitted {
		t.Fatalf("post-failure error code %q, want %q", code, serve.CodeNotAdmitted)
	}
}
