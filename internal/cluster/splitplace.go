package cluster

import (
	"fmt"
	"sort"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/radio"
)

// Split placement: when whole-path placement spills — a task no single
// node admits, typically because every candidate path's memory footprint
// exceeds every node's budget — the coordinator searches the paths' cut
// points for a pipelined multi-node plan: an ordered list of (node,
// stage-range) segments, the boundary activation shipped between
// consecutive nodes over the measured inter-node link. The search prices
// end-to-end latency analytically (coordinator→head forward + radio
// slice transmission + per-segment compute + per-cut activation
// transfer) against the task's L_τ, and fits each segment into the
// node's residual capacity left over by the whole-path plans.
//
// Split admission rides outside the per-node DOT solve: a stage-range is
// not a catalog path, so members install segments directly through the
// serving layer rather than re-deriving them from a local solve. The
// coordinator deducts the residuals itself and re-runs the search every
// placement epoch, so node failure or drift re-plans splits exactly as
// it re-places whole paths.

// SplitSegment is one node's slice of a split path plan.
type SplitSegment struct {
	// NodeID and Addr identify the member serving this stage range.
	NodeID string
	Addr   string
	// From and To bound the stage range [From, To) into the path's
	// block list.
	From, To int
	// ComputeSeconds is the per-frame compute of the range.
	ComputeSeconds float64
	// TransferBits is the boundary activation size shipped to the next
	// hop (zero for the tail).
	TransferBits float64
	// TransferMS prices that shipment over the planned inter-node link.
	TransferMS float64
}

// SplitPath is one task's pipelined multi-node plan.
type SplitPath struct {
	// TaskID names the task the plan serves.
	TaskID string
	// Path is the catalog path being split.
	Path core.PathSpec
	// Z is the admitted fraction; Rate is z·λ, the admitted request rate
	// the head gates at.
	Z    float64
	Rate float64
	// RBs is the head node's radio slice for frame intake.
	RBs int
	// Segments is the ordered pipeline; Segments[0] is the head.
	Segments []SplitSegment
	// LatencyMS is the predicted end-to-end latency of one frame:
	// coordinator→head forward, radio transmission, every segment's
	// compute and every activation transfer.
	LatencyMS float64
	// BudgetMS is the task's latency bound minus the coordinator→head
	// forward delay — the budget the head starts the pipeline with.
	BudgetMS float64
}

// SplitConfig parameterizes the split-placement search.
type SplitConfig struct {
	// Model is the geometry cut points are enumerated against; the zero
	// value applies dnn.DefaultResNetConfig.
	Model dnn.ResNetConfig
	// Input is the frame shape (C, H, W); zero applies (3, 8, 8).
	Input [3]int
	// MaxSegments caps the pipeline length; 0 means 4.
	MaxSegments int
	// CandidateNodes caps how many nodes (by residual memory) the node-
	// tuple enumeration draws from; 0 means 6.
	CandidateNodes int
	// Link returns the planned a→b inter-node rate in Mbps; nil prices
	// conservatively at the slower of the two coordinator links (see
	// TransferDelay). The coordinator wires its measured peer matrix in
	// here.
	Link func(a, b Node) float64
}

// nodeResidual is a node's capacity left over after the whole-path plans
// (and previously accepted splits) are charged against it.
type nodeResidual struct {
	node     Node
	rbs      int
	compute  float64
	memory   float64
	train    float64
	deployed map[string]bool // block IDs already resident (memory/train charged)
}

// residuals computes each node's leftover capacity from its NodePlan.
func residuals(p *Placement) []*nodeResidual {
	out := make([]*nodeResidual, len(p.Plans))
	for i := range p.Plans {
		plan := &p.Plans[i]
		r := &nodeResidual{
			node:     plan.Node,
			rbs:      plan.Node.Res.RBs,
			compute:  plan.Node.Res.ComputeSeconds,
			memory:   plan.Node.Res.MemoryGB,
			train:    plan.Node.Res.TrainBudgetSeconds,
			deployed: make(map[string]bool),
		}
		if plan.Solution != nil {
			for ai, a := range plan.Solution.Assignments {
				if !a.Admitted() || a.Path == nil || ai >= len(plan.Tasks) {
					continue
				}
				r.rbs -= a.RBs
				rate := a.Z * plan.Tasks[ai].Rate
				for _, id := range a.Path.Blocks {
					b := plan.Blocks[id]
					r.compute -= rate * b.ComputeSeconds
					if !r.deployed[id] {
						r.deployed[id] = true
						r.memory -= b.MemoryGB
						r.train -= b.TrainSeconds
					}
				}
			}
		}
		out[i] = r
	}
	return out
}

// memoryNeeded is the additional footprint of deploying the given block
// range on the node (blocks already resident are free — the constraint
// (1b) sharing applies to segments too).
func (r *nodeResidual) memoryNeeded(blocks []string, catalog map[string]core.BlockSpec) (mem, train float64) {
	for _, id := range blocks {
		if r.deployed[id] {
			continue
		}
		b := catalog[id]
		mem += b.MemoryGB
		train += b.TrainSeconds
	}
	return mem, train
}

// charge deducts an accepted segment from the node's residuals.
func (r *nodeResidual) charge(blocks []string, catalog map[string]core.BlockSpec, rate float64, rbs int) {
	r.rbs -= rbs
	for _, id := range blocks {
		r.compute -= rate * catalog[id].ComputeSeconds
		if !r.deployed[id] {
			r.deployed[id] = true
			r.memory -= catalog[id].MemoryGB
			r.train -= catalog[id].TrainSeconds
		}
	}
}

// splitPlace searches cut points and node tuples for every task the
// whole-path placement left unplaced, in descending priority, appending
// accepted plans to p.Splits and rerouting the tasks to their head
// nodes. Residual capacity is deducted as plans are accepted, so later
// tasks see what earlier splits consumed.
func splitPlace(p *Placement, tasks []core.Task, blocks map[string]core.BlockSpec, cfg *SplitConfig) {
	if cfg == nil || len(p.Unplaced) == 0 || len(p.Plans) < 2 {
		return
	}
	model := cfg.Model
	if model.BaseWidth == 0 {
		model = dnn.DefaultResNetConfig()
	}
	input := cfg.Input
	if input == [3]int{} {
		input = [3]int{3, 8, 8}
	}
	maxSeg := cfg.MaxSegments
	if maxSeg <= 0 {
		maxSeg = 4
	}
	cand := cfg.CandidateNodes
	if cand <= 0 {
		cand = 6
	}
	link := cfg.Link
	if link == nil {
		link = func(a, b Node) float64 {
			mbps := a.LinkMbps()
			if mb := b.LinkMbps(); mb < mbps {
				mbps = mb
			}
			return mbps
		}
	}

	res := residuals(p)
	unplaced := make(map[string]bool, len(p.Unplaced))
	for _, id := range p.Unplaced {
		unplaced[id] = true
	}
	order := make([]int, 0, len(p.Unplaced))
	for i := range tasks {
		if unplaced[tasks[i].ID] {
			order = append(order, i)
		}
	}
	sort.SliceStable(order, func(a, b int) bool {
		return tasks[order[a]].Priority > tasks[order[b]].Priority
	})

	for _, ti := range order {
		t := tasks[ti]
		best := bestSplit(&t, blocks, res, model, input, maxSeg, cand, link)
		if best == nil {
			continue
		}
		for _, seg := range best.Segments {
			for _, r := range res {
				if r.node.ID != seg.NodeID {
					continue
				}
				rbs := 0
				if seg.From == 0 {
					rbs = best.RBs
				}
				r.charge(best.Path.Blocks[seg.From:seg.To], blocks, best.Rate, rbs)
			}
			// The member's catalog must carry the specs of the blocks its
			// segment deploys (pushed inside its NodePlan).
			for pi := range p.Plans {
				if p.Plans[pi].Node.ID != seg.NodeID {
					continue
				}
				if p.Plans[pi].Blocks == nil {
					p.Plans[pi].Blocks = make(map[string]core.BlockSpec)
				}
				for _, id := range best.Path.Blocks[seg.From:seg.To] {
					if b, ok := blocks[id]; ok {
						p.Plans[pi].Blocks[id] = b
					}
				}
			}
		}
		p.Splits = append(p.Splits, *best)
		p.Route[t.ID] = best.Segments[0].NodeID
		// A split admission carries the same z·p weight a whole-path
		// admission would have contributed through its node's solution.
		p.WeightedAdmission += best.Z * t.Priority
		keep := p.Unplaced[:0]
		for _, id := range p.Unplaced {
			if id != t.ID {
				keep = append(keep, id)
			}
		}
		p.Unplaced = keep
	}
}

// bestSplit searches one task's candidate paths, cut combinations and
// node tuples for the feasible plan with the highest admitted fraction,
// latency breaking ties.
func bestSplit(t *core.Task, blocks map[string]core.BlockSpec, res []*nodeResidual,
	model dnn.ResNetConfig, input [3]int, maxSeg, cand int, link func(a, b Node) float64) *SplitPath {

	// Candidate nodes: the most memory-headroom first, capped. The
	// enumeration below draws ordered tuples from this pool.
	pool := make([]*nodeResidual, 0, len(res))
	for _, r := range res {
		pool = append(pool, r)
	}
	sort.SliceStable(pool, func(a, b int) bool { return pool[a].memory > pool[b].memory })
	if len(pool) > cand {
		pool = pool[:cand]
	}

	var best *SplitPath
	better := func(c *SplitPath) bool {
		if best == nil {
			return true
		}
		if c.Z != best.Z {
			return c.Z > best.Z
		}
		return c.LatencyMS < best.LatencyMS
	}

	for pi := range t.Paths {
		path := &t.Paths[pi]
		if path.Accuracy < t.MinAccuracy {
			continue
		}
		n := len(path.Blocks)
		if n < 2 {
			continue
		}
		cuts := dnn.EnumerateCutPoints(model, n, input)
		segMax := maxSeg
		if n < segMax {
			segMax = n
		}
		if len(pool) < segMax {
			segMax = len(pool)
		}
		for m := 2; m <= segMax; m++ {
			forEachCutCombo(len(cuts), m-1, func(combo []int) {
				bounds := make([]int, 0, m+1)
				bounds = append(bounds, 0)
				for _, ci := range combo {
					bounds = append(bounds, cuts[ci].After)
				}
				bounds = append(bounds, n)
				forEachTuple(len(pool), m, func(tuple []int) {
					nodes := make([]*nodeResidual, m)
					for i, idx := range tuple {
						nodes[i] = pool[idx]
					}
					if c := evalSplit(t, path, blocks, cuts, bounds, nodes, link); c != nil && better(c) {
						best = c
					}
				})
			})
		}
	}
	return best
}

// evalSplit prices one concrete (path, bounds, node tuple) plan and
// returns it when feasible, nil otherwise.
func evalSplit(t *core.Task, path *core.PathSpec, blocks map[string]core.BlockSpec,
	cuts []dnn.CutPoint, bounds []int, nodes []*nodeResidual, link func(a, b Node) float64) *SplitPath {

	m := len(nodes)
	segs := make([]SplitSegment, m)
	fixed := 0.0 // seconds of everything except radio transmission
	z := 1.0

	head := nodes[0]
	fixed += head.node.ForwardDelay(t.InputBits).Seconds()

	for i := 0; i < m; i++ {
		r := nodes[i]
		from, to := bounds[i], bounds[i+1]
		ids := path.Blocks[from:to]
		mem, train := r.memoryNeeded(ids, blocks)
		if mem > r.memory+1e-12 || train > r.train+1e-12 {
			return nil
		}
		comp := 0.0
		for _, id := range ids {
			comp += blocks[id].ComputeSeconds
		}
		// Compute residual caps the admitted fraction on this node.
		if comp > 0 {
			if cap := r.compute / (t.Rate * comp); cap < z {
				z = cap
			}
		}
		fixed += comp
		segs[i] = SplitSegment{NodeID: r.node.ID, Addr: r.node.Addr, From: from, To: to, ComputeSeconds: comp}
		if i+1 < m {
			// The cut after stage `to` ships its boundary activation to
			// the next hop; transfers are always raw f64 on the wire.
			bits := float64(cuts[cutIndex(cuts, to)].WireBytes) * 8
			mbps := link(r.node, nodes[i+1].node)
			tr := 0.0
			if mbps > 0 {
				tr = bits / (mbps * 1e6)
			}
			fixed += tr
			segs[i].TransferBits = bits
			segs[i].TransferMS = tr * 1e3
		}
	}
	if z <= 1e-9 {
		return nil
	}
	if z > 1 {
		z = 1
	}

	// Radio: the head needs a slice big enough for both the admitted
	// throughput and the per-frame latency left after compute and
	// transfers.
	budget := t.MaxLatency.Seconds() - fixed
	if budget <= 0 {
		return nil
	}
	cm := head.node.Res.Capacity
	rbsTP, err := radio.MinRBsForThroughput(z*t.Rate, t.InputBits, cm, t.SNRdB)
	if err != nil {
		return nil
	}
	rbsLat, err := radio.MinRBsForLatency(t.InputBits, time.Duration(budget*float64(time.Second)), cm, t.SNRdB)
	if err != nil {
		return nil
	}
	rbs := rbsTP
	if rbsLat > rbs {
		rbs = rbsLat
	}
	if rbs > head.rbs {
		// Not enough radio for full z; shrink to what the throughput
		// constraint allows at the node's residual slice, as long as the
		// latency-minimal slice itself fits.
		if rbsLat > head.rbs {
			return nil
		}
		rbs = head.rbs
		b := cm.BitsPerRBPerSecond(t.SNRdB)
		if b <= 0 || t.Rate <= 0 {
			return nil
		}
		if cap := float64(rbs) * b / (t.Rate * t.InputBits); cap < z {
			z = cap
		}
		if z <= 1e-9 {
			return nil
		}
	}
	tx, err := radio.TransmissionTime(t.InputBits, rbs, cm, t.SNRdB)
	if err != nil {
		return nil
	}
	total := fixed + tx.Seconds()
	if total > t.MaxLatency.Seconds()+1e-12 {
		return nil
	}

	return &SplitPath{
		TaskID:    t.ID,
		Path:      *path,
		Z:         z,
		Rate:      z * t.Rate,
		RBs:       rbs,
		Segments:  segs,
		LatencyMS: total * 1e3,
		BudgetMS:  (t.MaxLatency - nodes[0].node.ForwardDelay(t.InputBits)).Seconds() * 1e3,
	}
}

// cutIndex finds the cut point after the given stage count.
func cutIndex(cuts []dnn.CutPoint, after int) int {
	for i := range cuts {
		if cuts[i].After == after {
			return i
		}
	}
	panic(fmt.Sprintf("cluster: no cut point after stage %d", after))
}

// forEachCutCombo enumerates the k-subsets of {0..n-1} in increasing
// order (the cut indices of one pipeline, ordered along the path).
func forEachCutCombo(n, k int, fn func([]int)) {
	if k > n || k <= 0 {
		return
	}
	combo := make([]int, k)
	var rec func(start, depth int)
	rec = func(start, depth int) {
		if depth == k {
			fn(combo)
			return
		}
		for i := start; i < n; i++ {
			combo[depth] = i
			rec(i+1, depth+1)
		}
	}
	rec(0, 0)
}

// forEachTuple enumerates ordered m-tuples of distinct indices from
// {0..n-1} (which node serves which segment matters: the head needs
// radio headroom, interior hops need link bandwidth).
func forEachTuple(n, m int, fn func([]int)) {
	if m > n || m <= 0 {
		return
	}
	tuple := make([]int, m)
	used := make([]bool, n)
	var rec func(depth int)
	rec = func(depth int) {
		if depth == m {
			fn(tuple)
			return
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			used[i] = true
			tuple[depth] = i
			rec(depth + 1)
			used[i] = false
		}
	}
	rec(0)
}
