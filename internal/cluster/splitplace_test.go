package cluster

import (
	"context"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/radio"
)

// splitScenario is the acceptance shape: one task whose only
// accuracy-satisfying path needs 1.2 GB of blocks — more memory than any
// single test node has, but within reach of two nodes together.
func splitScenario() ([]core.Task, map[string]core.BlockSpec) {
	ids := []string{"split/stage1", "split/stage2", "split/stage3", "split/stage4"}
	blocks := make(map[string]core.BlockSpec, len(ids))
	for _, id := range ids {
		blocks[id] = core.BlockSpec{ID: id, ComputeSeconds: 1e-4, MemoryGB: 0.3, TrainSeconds: 1}
	}
	task := core.Task{
		ID:          "big",
		Priority:    1,
		Rate:        2,
		MinAccuracy: 0.9,
		MaxLatency:  500 * time.Millisecond,
		InputBits:   350e3,
		SNRdB:       20,
		Paths: []core.PathSpec{{
			ID: "split/full", DNN: "split", Blocks: ids, Accuracy: 0.95,
		}},
	}
	return []core.Task{task}, blocks
}

// splitNode is a member with 0.7 GB of memory: any two path stages fit,
// three don't.
func splitNode(id string) Node {
	return Node{ID: id, Addr: "http://" + id, BandwidthMbps: 100, Res: core.Resources{
		RBs:                50,
		ComputeSeconds:     2.5,
		MemoryGB:           0.7,
		TrainBudgetSeconds: 1000,
		Capacity:           radio.PaperRate(),
	}}
}

// TestSplitPlaceSingleNodeInfeasible: with one node the path cannot be
// admitted whole and there is no peer to split onto.
func TestSplitPlaceSingleNodeInfeasible(t *testing.T) {
	tasks, blocks := splitScenario()
	p := PlaceWith(context.Background(), tasks, blocks, []Node{splitNode("a")}, PlaceConfig{Alpha: 0.5, Split: &SplitConfig{}})
	if len(p.Splits) != 0 {
		t.Fatalf("single node produced a split plan: %+v", p.Splits)
	}
	if len(p.Unplaced) != 1 || p.Unplaced[0] != "big" {
		t.Fatalf("unplaced %v, want [big]", p.Unplaced)
	}
	if _, ok := p.Route["big"]; ok {
		t.Fatal("infeasible task was routed")
	}
}

// TestSplitPlaceTwoNodes: the same task splits across two nodes at the
// only memory-feasible cut (2|2 stages) and is routed to the head.
func TestSplitPlaceTwoNodes(t *testing.T) {
	tasks, blocks := splitScenario()
	nodes := []Node{splitNode("a"), splitNode("b")}
	p := PlaceWith(context.Background(), tasks, blocks, nodes, PlaceConfig{Alpha: 0.5, Split: &SplitConfig{}})
	if len(p.Unplaced) != 0 {
		t.Fatalf("unplaced %v, want none", p.Unplaced)
	}
	if len(p.Splits) != 1 {
		t.Fatalf("splits %d, want 1", len(p.Splits))
	}
	sp := p.Splits[0]
	if sp.TaskID != "big" || sp.Path.ID != "split/full" {
		t.Fatalf("split plan for %s/%s, want big/split/full", sp.TaskID, sp.Path.ID)
	}
	if len(sp.Segments) != 2 {
		t.Fatalf("segments %d, want 2", len(sp.Segments))
	}
	// 0.3 GB/stage against 0.7 GB nodes: cut after 1 or 3 leaves a 0.9 GB
	// segment, so only the 2|2 cut is feasible.
	if sp.Segments[0].From != 0 || sp.Segments[0].To != 2 || sp.Segments[1].From != 2 || sp.Segments[1].To != 4 {
		t.Fatalf("cut [%d,%d)|[%d,%d), want [0,2)|[2,4)",
			sp.Segments[0].From, sp.Segments[0].To, sp.Segments[1].From, sp.Segments[1].To)
	}
	if sp.Segments[0].NodeID == sp.Segments[1].NodeID {
		t.Fatalf("both segments on %s", sp.Segments[0].NodeID)
	}
	if sp.Z != 1 {
		t.Errorf("admitted fraction %v, want 1 (nothing else competes)", sp.Z)
	}
	if sp.RBs <= 0 {
		t.Errorf("head slice %d RBs, want positive", sp.RBs)
	}
	if sp.Segments[0].TransferBits <= 0 {
		t.Error("head segment ships no boundary activation")
	}
	if sp.Segments[1].TransferBits != 0 {
		t.Error("tail segment has a transfer")
	}
	if sp.LatencyMS <= 0 || sp.LatencyMS > 500 {
		t.Errorf("predicted latency %.1fms outside (0, 500]", sp.LatencyMS)
	}
	if sp.BudgetMS <= 0 || sp.BudgetMS > 500 {
		t.Errorf("pipeline budget %.1fms outside (0, 500]", sp.BudgetMS)
	}
	head := sp.Segments[0]
	if got, ok := p.Route["big"]; !ok || got != head.NodeID {
		t.Fatalf("routed to %q, want head %q", got, head.NodeID)
	}
	// Each node's plan must carry the block specs its segment deploys, so
	// the member-side catalog can price them.
	for _, seg := range sp.Segments {
		for pi := range p.Plans {
			if p.Plans[pi].Node.ID != seg.NodeID {
				continue
			}
			for _, id := range sp.Path.Blocks[seg.From:seg.To] {
				if _, ok := p.Plans[pi].Blocks[id]; !ok {
					t.Errorf("node %s plan missing segment block %s", seg.NodeID, id)
				}
			}
		}
	}
}

// TestSplitPlaceRespectsLatency: a deadline tighter than the radio
// transmission floor leaves the task unplaced rather than admitting an
// unmeetable pipeline.
func TestSplitPlaceRespectsLatency(t *testing.T) {
	tasks, blocks := splitScenario()
	tasks[0].MaxLatency = 5 * time.Millisecond // one 350 Kb frame needs ≥ 20ms at 50 RBs
	p := PlaceWith(context.Background(), tasks, blocks, []Node{splitNode("a"), splitNode("b")},
		PlaceConfig{Alpha: 0.5, Split: &SplitConfig{}})
	if len(p.Splits) != 0 {
		t.Fatalf("unmeetable deadline still split: %+v", p.Splits)
	}
	if len(p.Unplaced) != 1 {
		t.Fatalf("unplaced %v, want the task back", p.Unplaced)
	}
}
