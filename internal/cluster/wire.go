package cluster

import (
	"fmt"
	"time"

	"offloadnn/internal/core"
)

// The wire types serialize the core model over the cluster-internal HTTP
// protocol. Unlike serve.TaskSpec (the request-side fields a UE submits,
// paths built server-side), a cluster push carries fully built tasks —
// candidate paths, quality ladders and the blocks they reference — so
// the member's DOT instance is byte-for-byte the per-node instance the
// coordinator placed with, whatever catalog the member was started with.

// WireBlock is core.BlockSpec on the wire.
type WireBlock struct {
	ID             string  `json:"id"`
	ComputeSeconds float64 `json:"compute_seconds"`
	MemoryGB       float64 `json:"memory_gb"`
	TrainSeconds   float64 `json:"train_seconds,omitempty"`
}

// WirePath is core.PathSpec on the wire.
type WirePath struct {
	ID       string   `json:"id"`
	DNN      string   `json:"dnn"`
	Blocks   []string `json:"blocks"`
	Accuracy float64  `json:"accuracy"`
}

// WireQuality is core.QualityLevel on the wire.
type WireQuality struct {
	ID            string  `json:"id"`
	Bits          float64 `json:"bits"`
	AccuracyDelta float64 `json:"accuracy_delta,omitempty"`
}

// WireTask is a fully built core.Task on the wire.
type WireTask struct {
	ID           string        `json:"id"`
	Priority     float64       `json:"priority"`
	Rate         float64       `json:"rate"`
	MinAccuracy  float64       `json:"min_accuracy"`
	MaxLatencyMS float64       `json:"max_latency_ms"`
	InputBits    float64       `json:"input_bits"`
	SNRdB        float64       `json:"snr_db"`
	Qualities    []WireQuality `json:"qualities,omitempty"`
	Paths        []WirePath    `json:"paths"`
}

// WireResources is core.Resources on the wire (the capacity model is
// configuration, not state: both sides must be started with the same
// B(σ) model, which every daemon here is — the Table-IV paper rate).
type WireResources struct {
	RBs                int     `json:"rbs"`
	ComputeSeconds     float64 `json:"compute_seconds"`
	MemoryGB           float64 `json:"memory_gb"`
	TrainBudgetSeconds float64 `json:"train_budget_seconds"`
	// Norm carries the fleet-wide objective normalizer of a pushed plan
	// (core.Resources.Norm): the member must price its solve against the
	// same fleet totals the coordinator placed with, or the two reach
	// different admission sets. Never nested.
	Norm *WireResources `json:"norm,omitempty"`
}

// RegisterRequest is the body of POST /v1/cluster/nodes: a member
// announcing itself with its serving address, budgets and link rate.
type RegisterRequest struct {
	Node          string        `json:"node"`
	Addr          string        `json:"addr"`
	Res           WireResources `json:"res"`
	BandwidthMbps float64       `json:"bandwidth_mbps,omitempty"`
	State         string        `json:"state,omitempty"`
	Epoch         uint64        `json:"epoch,omitempty"`
}

// HeartbeatRequest is the body of POST /v1/cluster/nodes/{id}/heartbeat.
type HeartbeatRequest struct {
	State         string  `json:"state"`
	Epoch         uint64  `json:"epoch"`
	Tasks         int     `json:"tasks"`
	BandwidthMbps float64 `json:"bandwidth_mbps,omitempty"`
	// Peers carries the member's measured node→peer link rates in Mbps
	// (peer node ID → rate), filling the coordinator's inter-node
	// bandwidth matrix one probe at a time.
	Peers map[string]float64 `json:"peers,omitempty"`
}

// HeartbeatResponse is the coordinator's answer to a heartbeat: the
// current peer address book, which the member's agent round-robins its
// inter-node bandwidth probes over.
type HeartbeatResponse struct {
	// Peers maps every other live node's ID to its base URL.
	Peers map[string]string `json:"peers,omitempty"`
}

// WireSegment is one node's slice of a split path on the wire: the full
// path block list with this node's [From, To) range, plus the relay
// coordinates — where the boundary activation goes next and what deadline
// budget the pipeline starts with. Pushed inside PlanPush alongside the
// whole-path task subset.
type WireSegment struct {
	Task   string   `json:"task"`
	Path   string   `json:"path"`
	DNN    string   `json:"dnn"`
	Blocks []string `json:"blocks"`
	From   int      `json:"from"`
	To     int      `json:"to"`
	// Rate is the admitted request rate z·λ the head gates intake at.
	Rate float64 `json:"rate"`
	// BudgetMS is the end-to-end deadline budget the head opens the
	// pipeline with (the task's L_τ minus the coordinator→head forward
	// delay); zero on non-head segments, which trust the envelope's
	// remaining budget instead.
	BudgetMS float64 `json:"budget_ms,omitempty"`
	// Hop and Hops are this segment's position and the pipeline length.
	Hop  int `json:"hop"`
	Hops int `json:"hops"`
	// Next and NextNode are the next hop's base URL and node ID; empty
	// on the tail.
	Next     string `json:"next,omitempty"`
	NextNode string `json:"next_node,omitempty"`
}

// PlanPush is the body of PUT /v1/cluster/plan: one node's slice of a
// cluster placement. Placement is the coordinator's monotone placement
// sequence number; Res echoes the budgets the subset was solved against
// so the member can refuse a plan solved for capacities it doesn't have.
type PlanPush struct {
	Node      string              `json:"node"`
	Placement uint64              `json:"placement"`
	Alpha     float64             `json:"alpha"`
	Res       WireResources       `json:"res"`
	Tasks     []WireTask          `json:"tasks"`
	Blocks    map[string]WireBlock `json:"blocks,omitempty"`
	// Segments are the split-path stage ranges this node serves in
	// addition to its whole-path task subset.
	Segments []WireSegment `json:"segments,omitempty"`
}

// PlanAck is the member's response to a plan push.
type PlanAck struct {
	Node    string `json:"node"`
	Epoch   uint64 `json:"epoch"`
	Tasks   int    `json:"tasks"`
	Changed bool   `json:"changed"`
}

// ToWireTask converts a built core.Task for the wire.
func ToWireTask(t core.Task) WireTask {
	w := WireTask{
		ID:           t.ID,
		Priority:     t.Priority,
		Rate:         t.Rate,
		MinAccuracy:  t.MinAccuracy,
		MaxLatencyMS: float64(t.MaxLatency) / float64(time.Millisecond),
		InputBits:    t.InputBits,
		SNRdB:        t.SNRdB,
	}
	for _, q := range t.Qualities {
		w.Qualities = append(w.Qualities, WireQuality{ID: q.ID, Bits: q.Bits, AccuracyDelta: q.AccuracyDelta})
	}
	for _, p := range t.Paths {
		w.Paths = append(w.Paths, WirePath{ID: p.ID, DNN: p.DNN, Blocks: p.Blocks, Accuracy: p.Accuracy})
	}
	return w
}

// Task converts the wire form back into a core.Task.
func (w WireTask) Task() core.Task {
	t := core.Task{
		ID:          w.ID,
		Priority:    w.Priority,
		Rate:        w.Rate,
		MinAccuracy: w.MinAccuracy,
		MaxLatency:  time.Duration(w.MaxLatencyMS * float64(time.Millisecond)),
		InputBits:   w.InputBits,
		SNRdB:       w.SNRdB,
	}
	for _, q := range w.Qualities {
		t.Qualities = append(t.Qualities, core.QualityLevel{ID: q.ID, Bits: q.Bits, AccuracyDelta: q.AccuracyDelta})
	}
	for _, p := range w.Paths {
		t.Paths = append(t.Paths, core.PathSpec{ID: p.ID, DNN: p.DNN, Blocks: p.Blocks, Accuracy: p.Accuracy})
	}
	return t
}

// ToWireBlocks converts a block catalog for the wire.
func ToWireBlocks(blocks map[string]core.BlockSpec) map[string]WireBlock {
	if len(blocks) == 0 {
		return nil
	}
	out := make(map[string]WireBlock, len(blocks))
	for id, b := range blocks {
		out[id] = WireBlock{ID: b.ID, ComputeSeconds: b.ComputeSeconds, MemoryGB: b.MemoryGB, TrainSeconds: b.TrainSeconds}
	}
	return out
}

// FromWireBlocks converts a wire catalog back into core blocks.
func FromWireBlocks(blocks map[string]WireBlock) map[string]core.BlockSpec {
	out := make(map[string]core.BlockSpec, len(blocks))
	for id, b := range blocks {
		if b.ID == "" {
			b.ID = id
		}
		out[id] = core.BlockSpec{ID: b.ID, ComputeSeconds: b.ComputeSeconds, MemoryGB: b.MemoryGB, TrainSeconds: b.TrainSeconds}
	}
	return out
}

// ToWireResources converts a capacity pool for the wire.
func ToWireResources(r core.Resources) WireResources {
	w := WireResources{
		RBs:                r.RBs,
		ComputeSeconds:     r.ComputeSeconds,
		MemoryGB:           r.MemoryGB,
		TrainBudgetSeconds: r.TrainBudgetSeconds,
	}
	if r.Norm != nil {
		n := ToWireResources(core.Resources{
			RBs:                r.Norm.RBs,
			ComputeSeconds:     r.Norm.ComputeSeconds,
			MemoryGB:           r.Norm.MemoryGB,
			TrainBudgetSeconds: r.Norm.TrainBudgetSeconds,
		})
		w.Norm = &n
	}
	return w
}

// NormResources converts the wire norm into the pricing override a member
// applies to its own pool, nil when the push carries none.
func (w WireResources) NormResources() *core.Resources {
	if w.Norm == nil {
		return nil
	}
	return &core.Resources{
		RBs:                w.Norm.RBs,
		ComputeSeconds:     w.Norm.ComputeSeconds,
		MemoryGB:           w.Norm.MemoryGB,
		TrainBudgetSeconds: w.Norm.TrainBudgetSeconds,
	}
}

// Matches reports whether the wire budgets equal the given pool (the
// member-side check that a pushed plan was solved for its capacities).
func (w WireResources) Matches(r core.Resources) error {
	const eps = 1e-9
	if w.RBs != r.RBs {
		return fmt.Errorf("cluster: plan solved for %d RBs, node has %d", w.RBs, r.RBs)
	}
	if diff := w.ComputeSeconds - r.ComputeSeconds; diff > eps || diff < -eps {
		return fmt.Errorf("cluster: plan solved for C=%gs, node has %gs", w.ComputeSeconds, r.ComputeSeconds)
	}
	if diff := w.MemoryGB - r.MemoryGB; diff > eps || diff < -eps {
		return fmt.Errorf("cluster: plan solved for M=%g GB, node has %g GB", w.MemoryGB, r.MemoryGB)
	}
	if diff := w.TrainBudgetSeconds - r.TrainBudgetSeconds; diff > eps || diff < -eps {
		return fmt.Errorf("cluster: plan solved for Ct=%gs, node has %gs", w.TrainBudgetSeconds, r.TrainBudgetSeconds)
	}
	return nil
}
