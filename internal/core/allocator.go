package core

import (
	"context"
	"fmt"
	"math"

	"offloadnn/internal/lp"
)

// allocMaxIters bounds the r/z alternation of the per-branch allocator.
const allocMaxIters = 8

// allocState is the per-task working state of the allocator.
type allocState struct {
	idx   int     // index into assignments / in.Tasks
	bits  float64 // β(q) of the selected quality level
	cPath float64 // Σ c(s)
	bRate float64 // B(σ)
	rLat  int     // minimal RBs satisfying latency
	r     int     // current RB allocation
	z     float64 // current admission
}

// OptimizeAllocation solves the per-branch convex problem of Sec. IV-B:
// with the paths fixed (xd, yπ given), choose the admission ratios z and
// RB allocations r minimizing the DOT objective under constraints
// (1c)–(1e) and (1g). Memory (1b) and accuracy (1f) were honored during
// tree construction/traversal.
//
// The method alternates two exact steps and keeps the best feasible pair:
// given z, the optimal r is the smallest integer satisfying the rate (1e)
// and latency (1g) constraints (the objective strictly increases in r);
// given r, the problem is a linear program in z solved by simplex. Every
// iterate is feasible, so the best-of-iterates is feasible; the loop stops
// when r reaches a fixed point or after allocMaxIters rounds.
//
// Assignments must carry the chosen Path per task (nil = rejected); Z and
// RBs are filled in place.
func (in *Instance) OptimizeAllocation(assignments []Assignment) error {
	return in.optimizeAllocation(context.Background(), assignments, nil)
}

// optimizeAllocation is OptimizeAllocation with cancellation checked
// between alternation rounds and an optional warm start. warmR maps a
// task index to the converged RB allocation of a previous epoch; a warm
// entry replaces the analytic initial point max(rLat, rFull) of the
// alternation, clamped into [rLat, max(rLat, rFull)]. Because every
// iterate of the alternation is feasible and the result is the best
// feasible iterate, warm starting never yields an infeasible allocation —
// it only changes where the (convergent) alternation begins. When the
// previous epoch admitted the task fully (z = 1), the warm point equals
// the analytic point exactly, so the iterate sequence — and hence the
// solution — is identical to a cold start.
func (in *Instance) optimizeAllocation(ctx context.Context, assignments []Assignment, warmR map[int]int) error {
	var active []*allocState
	for i := range assignments {
		a := &assignments[i]
		a.Z = 0
		a.RBs = 0
		if a.Path == nil {
			continue
		}
		task := &in.Tasks[i]
		st := &allocState{idx: i, bits: a.Bits(task), cPath: in.PathCompute(a.Path)}
		st.bRate = in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
		if st.bRate <= 0 {
			continue // no link capacity: task cannot be admitted
		}
		slack := task.MaxLatency.Seconds() - st.cPath
		if slack <= 0 {
			continue // processing alone exceeds the latency bound
		}
		st.rLat = int(math.Ceil(a.Bits(task)/(st.bRate*slack) - 1e-12))
		if st.rLat < 1 {
			st.rLat = 1
		}
		if st.rLat > in.Res.RBs {
			continue // even the full pool cannot meet the latency bound
		}
		rFull := int(math.Ceil(task.Rate*a.Bits(task)/st.bRate - 1e-12))
		st.r = st.rLat
		if rFull > st.r {
			st.r = rFull
		}
		if w, ok := warmR[i]; ok {
			if w < st.rLat {
				w = st.rLat
			}
			if w < st.r {
				st.r = w
			}
		}
		st.z = 1
		active = append(active, st)
	}
	if len(active) == 0 {
		return nil
	}

	bestCost := math.Inf(1)
	bestZ := make([]float64, len(active))
	bestR := make([]int, len(active))

	evalCurrent := func() error {
		for _, st := range active {
			assignments[st.idx].Z = st.z
			assignments[st.idx].RBs = st.r
		}
		bd, err := in.Evaluate(assignments)
		if err != nil {
			return err
		}
		if c := bd.CostValue(); c < bestCost {
			bestCost = c
			for i, st := range active {
				bestZ[i] = st.z
				bestR[i] = st.r
			}
		}
		return nil
	}

	for iter := 0; iter < allocMaxIters; iter++ {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if err := in.solveZLP(ctx, active); err != nil {
			return fmt.Errorf("core: allocator LP: %w", err)
		}
		if err := evalCurrent(); err != nil {
			return err
		}
		changed := false
		for _, st := range active {
			task := &in.Tasks[st.idx]
			r := st.rLat
			if need := int(math.Ceil(st.z*task.Rate*st.bits/st.bRate - 1e-12)); need > r {
				r = need
			}
			if r != st.r {
				st.r = r
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	if math.IsInf(bestCost, 1) {
		return fmt.Errorf("%w: allocator found no feasible allocation", ErrInfeasible)
	}
	for i, st := range active {
		z := bestZ[i]
		switch {
		case z < zEps:
			assignments[st.idx].Z = 0
			assignments[st.idx].RBs = 0
		case z > 1-1e-9:
			assignments[st.idx].Z = 1
			assignments[st.idx].RBs = bestR[i]
		default:
			assignments[st.idx].Z = z
			assignments[st.idx].RBs = bestR[i]
		}
	}
	return nil
}

// solveZLP solves the z-subproblem with RBs fixed:
//
//	min Σ k_i z_i,  k_i = (1−α)λ_i(r_i/R + c_i/C) − α p_i
//	s.t. Σ z λ c ≤ C, Σ z r ≤ R, 0 ≤ z_i ≤ min(1, B r_i/(λ_i β_i)).
//
// It writes the solution into the states' z fields. The context bounds
// the simplex run itself — at thousands of active tasks one LP call can
// outlast any deadline by orders of magnitude, so cancellation between
// alternation rounds alone would come far too late.
func (in *Instance) solveZLP(ctx context.Context, active []*allocState) error {
	n := len(active)
	p := lp.Problem{C: make([]float64, n)}
	computeRow := make([]float64, n)
	rbRow := make([]float64, n)
	for i, st := range active {
		task := &in.Tasks[st.idx]
		// Prices come from the (possibly fleet-wide) normalizers, the
		// capacity rows below from the pool's own budgets.
		k := -in.Alpha * task.Priority
		if rNorm := in.Res.PriceRBs(); rNorm > 0 {
			k += (1 - in.Alpha) * float64(st.r) / float64(rNorm)
		}
		if cNorm := in.Res.PriceComputeSeconds(); cNorm > 0 {
			k += (1 - in.Alpha) * task.Rate * st.cPath / cNorm
		}
		p.C[i] = k
		computeRow[i] = task.Rate * st.cPath
		rbRow[i] = float64(st.r)
	}
	p.A = append(p.A, computeRow)
	p.B = append(p.B, in.Res.ComputeSeconds)
	p.A = append(p.A, rbRow)
	p.B = append(p.B, float64(in.Res.RBs))
	for i, st := range active {
		task := &in.Tasks[st.idx]
		ub := 1.0
		if lim := st.bRate * float64(st.r) / (task.Rate * st.bits); lim < ub {
			ub = lim
		}
		row := make([]float64, n)
		row[i] = 1
		p.A = append(p.A, row)
		p.B = append(p.B, ub)
	}
	sol, err := lp.SolveCtx(ctx, p)
	if err != nil {
		return err
	}
	for i, st := range active {
		z := sol.X[i]
		if z < 0 {
			z = 0
		}
		if z > 1 {
			z = 1
		}
		st.z = z
	}
	return nil
}
