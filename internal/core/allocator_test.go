package core

import (
	"math"
	"testing"
	"time"

	"offloadnn/internal/radio"
)

// bruteForceAllocation grids z over [0,1] in steps and searches r over a
// small integer range per task, returning the best feasible cost. It is
// deliberately exponential — a reference for the allocator on tiny
// instances.
func bruteForceAllocation(in *Instance, assignments []Assignment, zSteps, rMax int) float64 {
	n := len(assignments)
	best := math.Inf(1)
	zs := make([]float64, n)
	rs := make([]int, n)

	work := make([]Assignment, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			copy(work, assignments)
			for j := range work {
				if work[j].Path == nil {
					continue
				}
				work[j].Z = zs[j]
				work[j].RBs = rs[j]
			}
			if err := in.Check(work); err != nil {
				return
			}
			bd, err := in.Evaluate(work)
			if err != nil {
				return
			}
			if c := bd.CostValue(); c < best {
				best = c
			}
			return
		}
		if assignments[i].Path == nil {
			zs[i], rs[i] = 0, 0
			rec(i + 1)
			return
		}
		for zi := 0; zi <= zSteps; zi++ {
			zs[i] = float64(zi) / float64(zSteps)
			if zs[i] == 0 {
				rs[i] = 0
				rec(i + 1)
				continue
			}
			for r := 1; r <= rMax; r++ {
				rs[i] = r
				rec(i + 1)
			}
		}
	}
	rec(0)
	return best
}

// tinyAllocInstance builds a 2-task instance with one fixed path each so
// the allocation problem is isolated from path selection.
func tinyAllocInstance(rbs int, compute float64) *Instance {
	in := &Instance{
		Blocks: map[string]BlockSpec{
			"a": {ID: "a", ComputeSeconds: 0.01, MemoryGB: 0.5, TrainSeconds: 100},
			"b": {ID: "b", ComputeSeconds: 0.02, MemoryGB: 0.8, TrainSeconds: 50},
		},
		Res: Resources{
			RBs: rbs, ComputeSeconds: compute, MemoryGB: 10, TrainBudgetSeconds: 1000,
			Capacity: radio.FixedRate{Rate: 1e6},
		},
		Alpha: 0.5,
		Tasks: []Task{
			{ID: "t1", Priority: 0.9, Rate: 3, MaxLatency: 400 * time.Millisecond,
				InputBits: 2e5, MinAccuracy: 0.5,
				Paths: []PathSpec{{ID: "p", DNN: "d", Blocks: []string{"a"}, Accuracy: 0.9}}},
			{ID: "t2", Priority: 0.4, Rate: 4, MaxLatency: 500 * time.Millisecond,
				InputBits: 2e5, MinAccuracy: 0.5,
				Paths: []PathSpec{{ID: "p", DNN: "d", Blocks: []string{"b"}, Accuracy: 0.9}}},
		},
	}
	return in
}

func TestAllocatorMatchesBruteForce(t *testing.T) {
	cases := []struct {
		name    string
		rbs     int
		compute float64
	}{
		{"ample", 20, 1},
		{"rb-constrained", 3, 1},
		{"compute-constrained", 20, 0.05},
		{"both-tight", 4, 0.08},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := tinyAllocInstance(tc.rbs, tc.compute)
			assignments := []Assignment{
				{TaskID: "t1", Path: &in.Tasks[0].Paths[0]},
				{TaskID: "t2", Path: &in.Tasks[1].Paths[0]},
			}
			if err := in.OptimizeAllocation(assignments); err != nil {
				t.Fatal(err)
			}
			if err := in.Check(assignments); err != nil {
				t.Fatalf("allocator output infeasible: %v", err)
			}
			bd, err := in.Evaluate(assignments)
			if err != nil {
				t.Fatal(err)
			}
			got := bd.CostValue()
			// Brute force over a 25-step z grid and r up to 8; the grid is a
			// relaxation of neither problem, so allow a small slack in both
			// directions (the allocator's LP can beat the grid between steps).
			want := bruteForceAllocation(in, assignments, 25, 8)
			if got > want+0.02 {
				t.Fatalf("allocator cost %v worse than brute force %v", got, want)
			}
		})
	}
}

func TestAllocatorZeroBudgetsRejectAll(t *testing.T) {
	in := tinyAllocInstance(0, 0)
	assignments := []Assignment{
		{TaskID: "t1", Path: &in.Tasks[0].Paths[0]},
		{TaskID: "t2", Path: &in.Tasks[1].Paths[0]},
	}
	if err := in.OptimizeAllocation(assignments); err != nil {
		t.Fatal(err)
	}
	for _, a := range assignments {
		if a.Z != 0 || a.RBs != 0 {
			t.Fatalf("zero budgets admitted %+v", a)
		}
	}
}

func TestAllocatorRBsAreMinimalForChosenZ(t *testing.T) {
	in := tinyAllocInstance(20, 1)
	assignments := []Assignment{
		{TaskID: "t1", Path: &in.Tasks[0].Paths[0]},
		{TaskID: "t2", Path: &in.Tasks[1].Paths[0]},
	}
	if err := in.OptimizeAllocation(assignments); err != nil {
		t.Fatal(err)
	}
	for i, a := range assignments {
		if !a.Admitted() {
			continue
		}
		// Removing one RB must violate a constraint (rate or latency).
		task := &in.Tasks[i]
		b := in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
		smaller := a
		smaller.RBs--
		if smaller.RBs < 1 {
			continue
		}
		lat, err := in.EndToEndLatency(task, smaller)
		rateOK := a.Z*task.Rate*a.Bits(task) <= b*float64(smaller.RBs)+1e-9
		latOK := err == nil && lat <= task.MaxLatency
		if rateOK && latOK {
			t.Fatalf("task %s slice %d not minimal (r-1 still feasible)", a.TaskID, a.RBs)
		}
	}
}
