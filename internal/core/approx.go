package core

import (
	"context"
	"math"
	"time"

	"offloadnn/internal/tensor"
)

// approxShortlistK bounds the per-task candidate shortlist of the
// approximate tier: only the K best-ranked (path × quality) decisions
// survive to the packing pass.
const approxShortlistK = 6

// approxCand is one shortlisted decision with its precomputed minimal
// latency-feasible slice.
type approxCand struct {
	v    Vertex
	rLat int
}

// solveApproxCtx is the approximate admission tier: score-based path
// ranking followed by greedy budget packing. It replaces the per-branch
// (z, r) LP alternation with two linear passes —
//
//  1. Shortlist (parallel over tasks on the tensor pool): each task's
//     feasible (path × quality) decisions are ranked by the same
//     multi-key resource score that orders the exact tier's cliques —
//     inference compute first, then training cost, memory and input
//     bits (buildCliqueVertices) — with latency-infeasible decisions
//     (no slack, or a minimal slice beyond the whole pool) dropped, and
//     the K best kept.
//  2. Packing (sequential, descending priority): each task takes its
//     best-ranked shortlisted decision that fits the remaining memory
//     and admits a positive ratio, with z clamped by the same
//     constraints the exact allocator's LP rows encode: z ≤ remC/(λc),
//     z ≤ B·r/(λβ) and z·r ≤ remRB. A decision is rejected when its
//     marginal objective change is non-negative —
//     (1−α)·(z·r/R + z·λc/C + Δct/Ct) − α·p·z ≥ 0, where Δct counts
//     only blocks not already activated by higher-priority tasks — the
//     greedy, sharing-aware mirror of the LP pricing a z_i out of the
//     basis.
//
// Every admitted assignment satisfies (1b)–(1g) by construction, so the
// result always passes Instance.Check. Complexity is O(T·paths) — no
// LP, no alternation — which is why this tier holds an epoch deadline
// at task counts where even the sharded heuristic cannot.
func solveApproxCtx(ctx context.Context, in *Instance, spec SolverSpec) (*Solution, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	order := priorityOrder(in)
	rPrice := float64(in.Res.PriceRBs())
	cPrice := in.Res.PriceComputeSeconds()
	ctPrice := in.Res.PriceTrainBudgetSeconds()

	// Pass 1: per-task shortlists, fanned over the tensor pool. Each
	// slot is written by exactly one goroutine and depends only on that
	// task and the read-only catalog, so the result is deterministic at
	// any worker count.
	cands := make([][]approxCand, len(order))
	tensor.ParallelFor(len(order), 16, spec.Workers, func(lo, hi int) {
		for oi := lo; oi < hi; oi++ {
			ti := order[oi]
			task := &in.Tasks[ti]
			bRate := in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
			if bRate <= 0 {
				continue
			}
			list := make([]approxCand, 0, approxShortlistK)
			for _, v := range buildCliqueVertices(in, ti) {
				if v.Reject() {
					continue
				}
				slack := task.MaxLatency.Seconds() - v.Compute
				if slack <= 0 {
					continue
				}
				rLat := int(math.Ceil(v.Bits/(bRate*slack) - 1e-12))
				if rLat < 1 {
					rLat = 1
				}
				if rLat > in.Res.RBs {
					continue
				}
				list = append(list, approxCand{v: v, rLat: rLat})
				if len(list) == approxShortlistK {
					break
				}
			}
			cands[oi] = list
		}
	})
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}

	// Pass 2: greedy packing in descending priority with shared-block
	// memory and training accounting.
	state := newBranchState(in)
	assignments := make([]Assignment, len(in.Tasks))
	for i := range assignments {
		assignments[i] = Assignment{TaskID: in.Tasks[i].ID}
	}
	remC := in.Res.ComputeSeconds
	remRB := float64(in.Res.RBs)
	for oi, ti := range order {
		if oi&1023 == 0 {
			if err := ctxErr(ctx); err != nil {
				return nil, err
			}
		}
		task := &in.Tasks[ti]
		bRate := in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
		for _, c := range cands[oi] {
			// Marginal deployment cost: only blocks no higher-ranked
			// task has already activated.
			var addMem, addCt float64
			if c.v.Path != nil {
				for _, id := range c.v.Path.Blocks {
					if !state.active[id] {
						addMem += in.BlockMemoryGB(id)
						addCt += in.BlockTrainSeconds(id)
					}
				}
			}
			if state.memoryGB+addMem > in.Res.MemoryGB+1e-12 {
				continue
			}
			r := c.rLat
			if rFull := int(math.Ceil(task.Rate*c.v.Bits/bRate - 1e-12)); rFull > r {
				r = rFull
			}
			z := 1.0
			if demand := task.Rate * c.v.Compute; demand > 0 && remC < demand {
				z = remC / demand
			}
			if lim := bRate * float64(r) / (task.Rate * c.v.Bits); lim < z {
				z = lim
			}
			if remRB < z*float64(r) {
				z = remRB / float64(r)
			}
			if z < zEps {
				continue
			}
			if z > 1-1e-9 {
				z = 1
			}
			net := -in.Alpha * task.Priority * z
			if rPrice > 0 {
				net += (1 - in.Alpha) * z * float64(r) / rPrice
			}
			if cPrice > 0 {
				net += (1 - in.Alpha) * z * task.Rate * c.v.Compute / cPrice
			}
			if ctPrice > 0 {
				net += (1 - in.Alpha) * addCt / ctPrice
			}
			if net >= 0 {
				continue
			}
			state.push(c.v) // blocks stay active for later tasks
			assignments[ti].Path = c.v.Path
			assignments[ti].Quality = c.v.Quality
			assignments[ti].Z = z
			assignments[ti].RBs = r
			remC -= z * task.Rate * c.v.Compute
			remRB -= z * float64(r)
			if remC < 0 {
				remC = 0
			}
			if remRB < 0 {
				remRB = 0
			}
			break
		}
	}
	sol, err := in.newSolution(assignments, time.Since(start))
	if err != nil {
		return nil, err
	}
	sol.Tier = TierApprox
	return sol, nil
}
