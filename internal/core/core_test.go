package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"offloadnn/internal/radio"
)

// testInstance builds a deterministic DOT instance with nTasks tasks and
// nPaths candidate paths each. Paths share a pool of base blocks and add
// task-specific variants, exercising the sharing machinery.
func testInstance(nTasks, nPaths int, seed int64) *Instance {
	rng := rand.New(rand.NewSource(seed))
	in := &Instance{
		Blocks: make(map[string]BlockSpec),
		Res: Resources{
			RBs:                50,
			ComputeSeconds:     2.5,
			MemoryGB:           8,
			TrainBudgetSeconds: 1000,
			Capacity:           radio.PaperRate(),
		},
		Alpha: 0.5,
	}
	// Shared base blocks (pre-trained: no training cost).
	for s := 1; s <= 4; s++ {
		id := fmt.Sprintf("base/stage%d", s)
		in.Blocks[id] = BlockSpec{
			ID:             id,
			ComputeSeconds: 0.002 * float64(s),
			MemoryGB:       0.15 * float64(s),
		}
	}
	for t := 0; t < nTasks; t++ {
		task := Task{
			ID:          fmt.Sprintf("task-%d", t),
			Priority:    0.8 - 0.1*float64(t%5),
			Rate:        5,
			MinAccuracy: 0.5 + 0.08*float64(t%5),
			MaxLatency:  time.Duration(200+100*(t%5)) * time.Millisecond,
			InputBits:   350e3,
			SNRdB:       10,
		}
		for p := 0; p < nPaths; p++ {
			// Every path reuses the shared base stages 1–3 and ends in a
			// task-specific (fine-tuned) stage-4 variant at increasing
			// prune level: later paths are cheaper but less accurate —
			// the structure of the paper's catalog.
			pruneLevel := float64(p) / float64(nPaths)
			blocks := []string{"base/stage1", "base/stage2", "base/stage3"}
			id := fmt.Sprintf("task%d/stage4/v%d", t, p)
			if _, ok := in.Blocks[id]; !ok {
				in.Blocks[id] = BlockSpec{
					ID:             id,
					ComputeSeconds: 0.008 * (1 - 0.8*pruneLevel),
					MemoryGB:       0.6 * (1 - 0.8*pruneLevel),
					TrainSeconds:   70 * (1 - 0.3*pruneLevel),
				}
			}
			blocks = append(blocks, id)
			task.Paths = append(task.Paths, PathSpec{
				ID:       fmt.Sprintf("π%d", p),
				DNN:      fmt.Sprintf("dnn-%d", p%3),
				Blocks:   blocks,
				Accuracy: 0.95 - 0.3*pruneLevel - 0.02*rng.Float64(),
			})
		}
		in.Tasks = append(in.Tasks, task)
	}
	return in
}

func TestValidateCatchesModelErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Instance)
	}{
		{"no tasks", func(in *Instance) { in.Tasks = nil }},
		{"bad alpha", func(in *Instance) { in.Alpha = 1.5 }},
		{"nil capacity", func(in *Instance) { in.Res.Capacity = nil }},
		{"zero train budget", func(in *Instance) { in.Res.TrainBudgetSeconds = 0 }},
		{"duplicate IDs", func(in *Instance) { in.Tasks[1].ID = in.Tasks[0].ID }},
		{"bad priority", func(in *Instance) { in.Tasks[0].Priority = 2 }},
		{"zero rate", func(in *Instance) { in.Tasks[0].Rate = 0 }},
		{"zero latency", func(in *Instance) { in.Tasks[0].MaxLatency = 0 }},
		{"zero bits", func(in *Instance) { in.Tasks[0].InputBits = 0 }},
		{"unknown block", func(in *Instance) { in.Tasks[0].Paths[0].Blocks = []string{"ghost"} }},
		{"empty path", func(in *Instance) { in.Tasks[0].Paths[0].Blocks = nil }},
		{"negative capacity", func(in *Instance) { in.Res.MemoryGB = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			in := testInstance(3, 3, 1)
			tc.mutate(in)
			if err := in.Validate(); !errors.Is(err, ErrModel) {
				t.Fatalf("Validate = %v, want ErrModel", err)
			}
		})
	}
	if err := testInstance(3, 3, 1).Validate(); err != nil {
		t.Fatalf("valid instance rejected: %v", err)
	}
}

func TestEvaluateHandComputed(t *testing.T) {
	in := &Instance{
		Blocks: map[string]BlockSpec{
			"b1": {ID: "b1", ComputeSeconds: 0.01, MemoryGB: 1, TrainSeconds: 100},
			"b2": {ID: "b2", ComputeSeconds: 0.02, MemoryGB: 2, TrainSeconds: 0},
		},
		Res: Resources{
			RBs: 10, ComputeSeconds: 1, MemoryGB: 10, TrainBudgetSeconds: 1000,
			Capacity: radio.FixedRate{Rate: 1e6},
		},
		Alpha: 0.5,
		Tasks: []Task{
			{ID: "t1", Priority: 0.8, Rate: 4, MaxLatency: time.Second, InputBits: 1e5,
				Paths: []PathSpec{{ID: "p", DNN: "d", Blocks: []string{"b1", "b2"}, Accuracy: 0.9}}},
			{ID: "t2", Priority: 0.5, Rate: 2, MaxLatency: time.Second, InputBits: 1e5,
				Paths: []PathSpec{{ID: "p", DNN: "d", Blocks: []string{"b2"}, Accuracy: 0.9}}},
		},
	}
	asg := []Assignment{
		{TaskID: "t1", Path: &in.Tasks[0].Paths[0], Z: 1, RBs: 2},
		{TaskID: "t2", Path: nil, Z: 0},
	}
	bd, err := in.Evaluate(asg)
	if err != nil {
		t.Fatal(err)
	}
	// Admission: 0.5·(0·0.8 + 1·0.5) = 0.25.
	if math.Abs(bd.AdmissionTerm-0.25) > 1e-12 {
		t.Fatalf("admission term %v, want 0.25", bd.AdmissionTerm)
	}
	// Train: 0.5·100/1000 = 0.05 (only b1 carries cost; b2 is base).
	if math.Abs(bd.TrainTerm-0.05) > 1e-12 {
		t.Fatalf("train term %v, want 0.05", bd.TrainTerm)
	}
	// Radio: 0.5·1·2/10 = 0.1 (allocated-RB fraction, not rate-scaled).
	if math.Abs(bd.RadioTerm-0.1) > 1e-12 {
		t.Fatalf("radio term %v, want 0.1", bd.RadioTerm)
	}
	// Inference: 0.5·1·4·0.03/1 = 0.06.
	if math.Abs(bd.InferTerm-0.06) > 1e-12 {
		t.Fatalf("infer term %v, want 0.06", bd.InferTerm)
	}
	if math.Abs(bd.MemoryGB-3) > 1e-12 {
		t.Fatalf("memory %v, want 3 (b1+b2 once)", bd.MemoryGB)
	}
	if bd.AdmittedTasks != 1 || bd.FullyAdmittedTasks != 1 {
		t.Fatalf("admitted counts %d/%d, want 1/1", bd.AdmittedTasks, bd.FullyAdmittedTasks)
	}
	if math.Abs(bd.CostValue()-(0.25+0.05+0.1+0.06)) > 1e-12 {
		t.Fatalf("cost %v", bd.CostValue())
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	in := testInstance(2, 2, 3)
	sol, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check(sol.Assignments); err != nil {
		t.Fatalf("solver produced infeasible solution: %v", err)
	}
	// Violate (1e): shrink the slice below the admitted rate need.
	bad := append([]Assignment(nil), sol.Assignments...)
	for i := range bad {
		if bad[i].Admitted() {
			bad[i].RBs = 0
			break
		}
	}
	if err := in.Check(bad); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Check = %v, want ErrInfeasible for starved slice", err)
	}
	// Violate (1f): lower the path accuracy below the requirement.
	bad2 := append([]Assignment(nil), sol.Assignments...)
	for i := range bad2 {
		if bad2[i].Admitted() {
			p := *bad2[i].Path
			p.Accuracy = 0
			bad2[i].Path = &p
			break
		}
	}
	if err := in.Check(bad2); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Check = %v, want ErrInfeasible for bad accuracy", err)
	}
	// Violate z range.
	bad3 := append([]Assignment(nil), sol.Assignments...)
	bad3[0].Z = 1.5
	if err := in.Check(bad3); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("Check = %v, want ErrInfeasible for z out of range", err)
	}
}

func TestBuildTreeOrdersAndFilters(t *testing.T) {
	in := testInstance(5, 4, 4)
	tree, err := BuildTree(in)
	if err != nil {
		t.Fatal(err)
	}
	if len(tree.Layers) != 5 {
		t.Fatalf("%d layers, want 5", len(tree.Layers))
	}
	// Layers in descending priority.
	prev := 2.0
	for _, l := range tree.Layers {
		p := in.Tasks[l.TaskIndex].Priority
		if p > prev {
			t.Fatalf("layers not in descending priority: %v after %v", p, prev)
		}
		prev = p
	}
	for li, l := range tree.Layers {
		task := &in.Tasks[l.TaskIndex]
		if !l.Vertices[len(l.Vertices)-1].Reject() {
			t.Fatalf("layer %d missing trailing reject vertex", li)
		}
		prevC := -1.0
		for _, v := range l.Vertices[:len(l.Vertices)-1] {
			if v.Path.Accuracy < task.MinAccuracy {
				t.Fatalf("layer %d kept accuracy-infeasible vertex", li)
			}
			if time.Duration(v.Compute*float64(time.Second)) > task.MaxLatency {
				t.Fatalf("layer %d kept latency-infeasible vertex", li)
			}
			if v.Compute < prevC {
				t.Fatalf("layer %d vertices not sorted by compute", li)
			}
			prevC = v.Compute
		}
	}
	if tree.NumBranches() <= 1 {
		t.Fatalf("NumBranches = %v", tree.NumBranches())
	}
}

func TestTreeFiltersAllPathsWhenAccuracyImpossible(t *testing.T) {
	in := testInstance(2, 3, 5)
	in.Tasks[0].MinAccuracy = 0.999 // nothing attains this
	tree, err := BuildTree(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range tree.Layers {
		if in.Tasks[l.TaskIndex].ID == "task-0" {
			if len(l.Vertices) != 1 || !l.Vertices[0].Reject() {
				t.Fatalf("expected only the reject vertex, got %d vertices", len(l.Vertices))
			}
		}
	}
	// The heuristic must still solve, rejecting task-0.
	sol, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range sol.Assignments {
		if in.Tasks[i].ID == "task-0" && a.Admitted() {
			t.Fatal("accuracy-impossible task was admitted")
		}
	}
}

func TestAllocatorAdmitsAllUnderAmpleResources(t *testing.T) {
	in := testInstance(3, 3, 6)
	sol, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range sol.Assignments {
		if !a.Admitted() || a.Z < 0.999 {
			t.Fatalf("task %s admitted z=%v, want 1 under ample resources", in.Tasks[i].ID, a.Z)
		}
		if a.RBs <= 0 {
			t.Fatalf("admitted task %s has no RBs", in.Tasks[i].ID)
		}
	}
}

func TestAllocatorShedsLoadUnderRBPressure(t *testing.T) {
	in := testInstance(5, 3, 7)
	in.Res.RBs = 12 // five tasks at 5 req/s need ~5 RBs each
	sol, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check(sol.Assignments); err != nil {
		t.Fatalf("infeasible under pressure: %v", err)
	}
	full := 0
	for _, a := range sol.Assignments {
		if a.Z > 0.999 {
			full++
		}
	}
	if full == len(sol.Assignments) {
		t.Fatal("RB pressure did not reduce any admission")
	}
	// Higher-priority tasks should not be starved while lower-priority
	// ones are fully admitted (priority-guided shedding).
	if sol.Breakdown.WeightedAdmission <= 0 {
		t.Fatal("everything was rejected")
	}
}

func TestAllocatorRejectsLatencyImpossibleTask(t *testing.T) {
	in := testInstance(2, 2, 8)
	in.Tasks[0].MaxLatency = 25 * time.Millisecond // c_path ~20ms leaves ~5ms for 350Kb: needs 200 RBs > R
	sol, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	for i, a := range sol.Assignments {
		if in.Tasks[i].ID == "task-0" && a.Admitted() {
			lat, _ := in.EndToEndLatency(&in.Tasks[i], a)
			t.Fatalf("latency-impossible task admitted (lat=%v)", lat)
		}
	}
}

func TestOptimalNeverWorseThanHeuristic(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := testInstance(3, 3, seed)
		h, err := SolveOffloaDNN(in)
		if err != nil {
			t.Fatal(err)
		}
		o, stats, err := SolveOptimal(in)
		if err != nil {
			t.Fatal(err)
		}
		if o.Cost > h.Cost+1e-9 {
			t.Fatalf("seed %d: optimal cost %v > heuristic %v", seed, o.Cost, h.Cost)
		}
		if err := in.Check(o.Assignments); err != nil {
			t.Fatalf("optimal solution infeasible: %v", err)
		}
		if stats.BranchesExplored < 1 {
			t.Fatal("optimal explored no branches")
		}
	}
}

func TestHeuristicCloseToOptimalOnSmallInstances(t *testing.T) {
	// Fig. 7: OffloaDNN matches the optimum very closely.
	worst := 0.0
	for seed := int64(1); seed <= 8; seed++ {
		in := testInstance(3, 4, seed+100)
		h, err := SolveOffloaDNN(in)
		if err != nil {
			t.Fatal(err)
		}
		o, _, err := SolveOptimal(in)
		if err != nil {
			t.Fatal(err)
		}
		if o.Cost <= 0 {
			continue
		}
		gap := (h.Cost - o.Cost) / o.Cost
		if gap > worst {
			worst = gap
		}
	}
	if worst > 0.25 {
		t.Fatalf("worst heuristic/optimal gap %.1f%% exceeds 25%%", worst*100)
	}
}

func TestMemoryPressureForcesSharing(t *testing.T) {
	in := testInstance(4, 3, 9)
	// Tight memory: only heavily shared/pruned paths can coexist.
	in.Res.MemoryGB = 2.2
	sol, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Breakdown.MemoryGB > in.Res.MemoryGB {
		t.Fatalf("memory %v exceeds budget %v", sol.Breakdown.MemoryGB, in.Res.MemoryGB)
	}
	if sol.Breakdown.AdmittedTasks == 0 {
		t.Fatal("tight memory rejected everything; expected sharing to save some tasks")
	}
}

func TestPredeployedBlocksAreFree(t *testing.T) {
	in := testInstance(2, 2, 10)
	sol, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	// Mark every active block as predeployed and re-solve: memory and
	// training terms must vanish.
	in2 := testInstance(2, 2, 10)
	in2.Predeployed = make(map[string]bool)
	for _, id := range sol.Breakdown.ActiveBlocks {
		in2.Predeployed[id] = true
	}
	sol2, err := SolveOffloaDNN(in2)
	if err != nil {
		t.Fatal(err)
	}
	if sol2.Breakdown.MemoryGB > sol.Breakdown.MemoryGB {
		t.Fatal("predeployment did not reduce memory")
	}
	if sol2.Breakdown.TrainTerm > sol.Breakdown.TrainTerm {
		t.Fatal("predeployment did not reduce training cost")
	}
}

func TestHeuristicRuntimeFarBelowOptimal(t *testing.T) {
	in := testInstance(4, 4, 11)
	h, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	o, _, err := SolveOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if h.Runtime*2 > o.Runtime {
		t.Fatalf("heuristic %v not clearly faster than optimal %v", h.Runtime, o.Runtime)
	}
}

// Property: both solvers always produce feasible solutions and the optimum
// never costs more than the heuristic.
func TestQuickSolversFeasibleAndOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nTasks := 1 + rng.Intn(3)
		nPaths := 1 + rng.Intn(3)
		in := testInstance(nTasks, nPaths, seed)
		// Random resource pressure.
		in.Res.RBs = 5 + rng.Intn(50)
		in.Res.ComputeSeconds = 0.2 + rng.Float64()*3
		in.Res.MemoryGB = 0.5 + rng.Float64()*8
		h, err := SolveOffloaDNN(in)
		if err != nil {
			return false
		}
		if err := in.Check(h.Assignments); err != nil {
			return false
		}
		o, _, err := SolveOptimal(in)
		if err != nil {
			return false
		}
		if err := in.Check(o.Assignments); err != nil {
			return false
		}
		return o.Cost <= h.Cost+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestReductionKnapsackToDOT(t *testing.T) {
	items := []KnapsackItem{
		{Value: 0.6, Weight: 3},
		{Value: 0.5, Weight: 2},
		{Value: 0.4, Weight: 2},
		{Value: 0.3, Weight: 1},
	}
	const capacity = 4.0
	in, err := FromKnapsack(items, capacity)
	if err != nil {
		t.Fatal(err)
	}
	sol, _, err := SolveOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	got := KnapsackValue(items, sol)
	want := SolveKnapsackDP(items, capacity, 1) // weights already integral
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("DOT knapsack value %v, want DP optimum %v", got, want)
	}
	if err := in.Check(sol.Assignments); err != nil {
		t.Fatalf("reduced solution infeasible: %v", err)
	}
}

// Property: the reduction preserves optima on random knapsack instances.
func TestQuickReductionMatchesDP(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(5)
		items := make([]KnapsackItem, n)
		total := 0.0
		for i := range items {
			items[i] = KnapsackItem{
				Value:  0.1 + 0.9*rng.Float64(),
				Weight: float64(1 + rng.Intn(5)),
			}
			total += items[i].Weight
		}
		capacity := math.Floor(total * (0.3 + 0.4*rng.Float64()))
		if capacity < 1 {
			capacity = 1
		}
		in, err := FromKnapsack(items, capacity)
		if err != nil {
			return false
		}
		sol, _, err := SolveOptimal(in)
		if err != nil {
			return false
		}
		got := KnapsackValue(items, sol)
		want := SolveKnapsackDP(items, capacity, 1)
		return math.Abs(got-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFromKnapsackValidation(t *testing.T) {
	if _, err := FromKnapsack(nil, 1); !errors.Is(err, ErrModel) {
		t.Fatalf("empty items err = %v", err)
	}
	if _, err := FromKnapsack([]KnapsackItem{{Value: 2, Weight: 1}}, 1); !errors.Is(err, ErrModel) {
		t.Fatalf("value > 1 err = %v", err)
	}
	if _, err := FromKnapsack([]KnapsackItem{{Value: 0.5, Weight: -1}}, 1); !errors.Is(err, ErrModel) {
		t.Fatalf("negative weight err = %v", err)
	}
}
