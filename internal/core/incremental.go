package core

import (
	"context"
	"fmt"
	"time"
)

// TaskDelta describes the churn applied to a SolverSession between two
// epochs: tasks to add, tasks to remove, request-rate updates, and any
// new blocks the added tasks' paths reference. The zero value re-solves
// the unchanged task set.
type TaskDelta struct {
	// Add are tasks to register, appended to the session's task list in
	// order. Their paths may only reference blocks already in the session
	// catalog or carried in AddBlocks.
	Add []Task
	// AddBlocks merges block specs into the session catalog. Re-supplying
	// an existing block with an identical spec is a no-op; supplying a
	// different spec updates the catalog and invalidates exactly the
	// cached cliques that reference the block.
	AddBlocks map[string]BlockSpec
	// Remove lists task IDs to withdraw. Removing an unknown ID is an
	// error, so callers catch registry/session drift immediately.
	Remove []string
	// Rate maps task ID → new request rate λ. The rate enters only the
	// allocation subproblem, so a rate-only delta invalidates no cached
	// cliques at all.
	Rate map[string]float64
}

// Empty reports whether the delta carries no changes.
func (d *TaskDelta) Empty() bool {
	return len(d.Add) == 0 && len(d.AddBlocks) == 0 && len(d.Remove) == 0 && len(d.Rate) == 0
}

// SessionStats reports the incremental machinery's work, cumulatively
// over the session's lifetime.
type SessionStats struct {
	// Epochs counts successful Resolve calls.
	Epochs uint64
	// CliqueHits counts cliques served from the cache across epochs.
	CliqueHits uint64
	// CliqueMisses counts cliques (re)built.
	CliqueMisses uint64
	// WarmStarts counts tasks whose allocation was warm-started from a
	// previous epoch's converged (z, r).
	WarmStarts uint64
}

// allocHint is the per-task warm-start state retained between epochs: the
// converged allocation of the last epoch, keyed to the decision (path ×
// quality) it was solved for. The hint applies only when the new epoch's
// first-branch walk picks the same decision again.
type allocHint struct {
	dnn     string
	pathID  string
	quality string
	z       float64
	r       int
}

// qualityKey identifies a vertex's quality level for hint matching.
func qualityKey(q *QualityLevel) string {
	if q == nil {
		return ""
	}
	return q.ID
}

// SolverSession is an incremental OffloaDNN solver for the serving loop's
// hot path: it caches the layered weighted tree across epochs, feeds on
// task deltas instead of whole instances, invalidates only the cliques a
// delta touches, tracks block-sharing deployment memory by refcount, and
// warm-starts the per-branch convex allocation from the previous epoch's
// converged (z, r).
//
// A session is not safe for concurrent use; serialize Resolve calls (the
// serve resolver does so under its solve mutex).
type SolverSession struct {
	inst  *Instance
	index map[string]int // task ID → position in inst.Tasks
	cache *treeCache
	hints map[string]allocHint
	// refcount counts, per deployed block, the admitted tasks whose
	// selected path uses it — the block-sharing accounting of the last
	// epoch. deployedGB is maintained incrementally: it changes only when
	// a block's refcount crosses zero.
	refcount   map[string]int
	deployedGB float64
	stats      SessionStats
}

// NewSolverSession validates the instance and prepares an incremental
// session over a private copy of its task list and block catalog. The
// task structs are copied; their Paths/Qualities backing arrays are
// shared and must not be mutated by the caller afterwards. No solve
// happens until the first Resolve.
func NewSolverSession(in *Instance) (*SolverSession, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	inst := &Instance{
		Tasks:  append([]Task(nil), in.Tasks...),
		Blocks: make(map[string]BlockSpec, len(in.Blocks)),
		Res:    in.Res,
		Alpha:  in.Alpha,
	}
	for id, b := range in.Blocks {
		inst.Blocks[id] = b
	}
	if in.Predeployed != nil {
		inst.Predeployed = make(map[string]bool, len(in.Predeployed))
		for id, v := range in.Predeployed {
			inst.Predeployed[id] = v
		}
	}
	s := &SolverSession{
		inst:     inst,
		index:    make(map[string]int, len(inst.Tasks)),
		cache:    newTreeCache(),
		hints:    make(map[string]allocHint),
		refcount: make(map[string]int),
	}
	s.reindex()
	return s, nil
}

// reindex rebuilds the ID → position map after a membership change.
func (s *SolverSession) reindex() {
	clear(s.index)
	for i := range s.inst.Tasks {
		s.index[s.inst.Tasks[i].ID] = i
	}
}

// Tasks returns a copy of the session's live task list, in the order the
// solver sees it (registration order; ties in priority break by it).
func (s *SolverSession) Tasks() []Task {
	return append([]Task(nil), s.inst.Tasks...)
}

// Instance returns the session's live instance for read-only use (e.g.,
// checking a solution or building a deployment). Mutating it corrupts
// the clique cache.
func (s *SolverSession) Instance() *Instance { return s.inst }

// Stats returns the cumulative incremental-machinery counters.
func (s *SolverSession) Stats() SessionStats {
	st := s.stats
	st.CliqueHits = s.cache.hits
	st.CliqueMisses = s.cache.misses
	return st
}

// DeployedMemoryGB returns the refcount-tracked memory of the blocks
// deployed by the last epoch's admitted tasks. It equals the last
// solution's Breakdown.MemoryGB, maintained incrementally: only blocks
// whose refcount crossed zero were re-accounted.
func (s *SolverSession) DeployedMemoryGB() float64 { return s.deployedGB }

// apply folds a delta into the session state, invalidating exactly the
// cached cliques the delta touches. It validates before mutating, so a
// rejected delta leaves the session unchanged.
func (s *SolverSession) apply(delta TaskDelta) error {
	// Validate removals and rate updates against the live set.
	removed := make(map[string]bool, len(delta.Remove))
	for _, id := range delta.Remove {
		if _, ok := s.index[id]; !ok {
			return fmt.Errorf("%w: remove of unknown task %q", ErrModel, id)
		}
		if removed[id] {
			return fmt.Errorf("%w: task %q removed twice in one delta", ErrModel, id)
		}
		removed[id] = true
	}
	addIDs := make(map[string]bool, len(delta.Add))
	for i := range delta.Add {
		t := &delta.Add[i]
		if t.ID == "" {
			return fmt.Errorf("%w: added task has empty ID", ErrModel)
		}
		if _, live := s.index[t.ID]; live && !removed[t.ID] {
			return fmt.Errorf("%w: added task %q already registered", ErrModel, t.ID)
		}
		if addIDs[t.ID] {
			return fmt.Errorf("%w: task %q added twice in one delta", ErrModel, t.ID)
		}
		addIDs[t.ID] = true
	}
	for id, rate := range delta.Rate {
		if _, ok := s.index[id]; (!ok || removed[id]) && !addIDs[id] {
			return fmt.Errorf("%w: rate update for unknown task %q", ErrModel, id)
		}
		if rate <= 0 {
			return fmt.Errorf("%w: task %s rate %v must be positive", ErrModel, id, rate)
		}
	}

	// Merge blocks, invalidating cliques referencing re-specified ones.
	for id, spec := range delta.AddBlocks {
		if spec.ID != id {
			return fmt.Errorf("%w: block map key %q does not match ID %q", ErrModel, id, spec.ID)
		}
		if spec.ComputeSeconds < 0 || spec.MemoryGB < 0 || spec.TrainSeconds < 0 {
			return fmt.Errorf("%w: block %s has negative cost", ErrModel, id)
		}
		if prev, ok := s.inst.Blocks[id]; ok {
			if prev == spec {
				continue
			}
			s.cache.invalidateBlock(id)
		}
		s.inst.Blocks[id] = spec
	}

	// Validate added tasks against the merged catalog (field ranges and
	// block references) before touching the task list.
	for i := range delta.Add {
		if err := s.inst.validateTask(&delta.Add[i]); err != nil {
			return err
		}
	}

	if len(removed) > 0 {
		kept := s.inst.Tasks[:0]
		for i := range s.inst.Tasks {
			if removed[s.inst.Tasks[i].ID] {
				continue
			}
			kept = append(kept, s.inst.Tasks[i])
		}
		s.inst.Tasks = kept
		for id := range removed {
			s.cache.invalidateTask(id)
			delete(s.hints, id)
		}
	}
	for i := range delta.Add {
		t := delta.Add[i]
		s.inst.Tasks = append(s.inst.Tasks, t)
		// A re-added ID must not inherit stale cache or hints from its
		// previous life.
		s.cache.invalidateTask(t.ID)
		delete(s.hints, t.ID)
	}
	if len(removed) > 0 || len(delta.Add) > 0 {
		s.reindex()
	}
	for id, rate := range delta.Rate {
		s.inst.Tasks[s.index[id]].Rate = rate
		// The cached clique survives (λ does not enter the tree), but the
		// warm-start hint does not: the alternation's analytic initial
		// point moves with the rate, so resuming at the old converged r
		// would no longer retrace the from-scratch iterate sequence.
		delete(s.hints, id)
	}
	return nil
}

// Resolve folds the delta into the session and re-solves the OffloaDNN
// heuristic incrementally: layers are assembled from cached cliques
// (rebuilding only invalidated ones), the first-branch walk re-runs over
// them, and the per-branch convex allocation is warm-started from the
// previous epoch's converged (z, r) for every task whose selected
// decision is unchanged. The result is the same solution
// SolveOffloaDNN computes from scratch on the equivalent instance.
//
// On a delta validation error the session is unchanged; on a solver
// error the delta remains applied (the session tracks the registry, the
// caller keeps serving its previous epoch).
func (s *SolverSession) Resolve(ctx context.Context, delta TaskDelta) (*Solution, error) {
	start := time.Now()
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if err := s.apply(delta); err != nil {
		return nil, err
	}
	if len(s.inst.Tasks) == 0 {
		return nil, fmt.Errorf("%w: no tasks", ErrModel)
	}

	// First-branch walk over cached cliques, in priority-layer order.
	order := priorityOrder(s.inst)
	state := newBranchState(s.inst)
	assignments := make([]Assignment, len(s.inst.Tasks))
	for i := range assignments {
		assignments[i] = Assignment{TaskID: s.inst.Tasks[i].ID}
	}
	for _, ti := range order {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		picked := false
		for _, v := range s.cache.cliqueFor(s.inst, ti) {
			mem := state.push(v)
			if mem <= s.inst.Res.MemoryGB+1e-12 {
				assignments[ti].Path = v.Path
				assignments[ti].Quality = v.Quality
				picked = true
				break
			}
			state.pop()
		}
		if !picked {
			return nil, fmt.Errorf("%w: no vertex fits the memory budget", ErrNoFeasiblePath)
		}
	}

	// Warm starts: tasks whose (path × quality) decision survived the
	// walk and were fully admitted last epoch resume the allocation
	// alternation at their previous converged slice size. The z = 1 gate
	// is what keeps incremental solutions bit-identical to from-scratch
	// ones: a fully-admitted task's converged r provably equals the
	// alternation's analytic initial point max(rLat, ceil(λβ/B)), so the
	// iterate sequence is unchanged, whereas a fractional-z fixed point
	// can sit below it and would steer the alternation elsewhere.
	warmR := make(map[int]int)
	for i := range assignments {
		a := &assignments[i]
		if a.Path == nil {
			continue
		}
		h, ok := s.hints[a.TaskID]
		if !ok || h.z < 1 || h.dnn != a.Path.DNN || h.pathID != a.Path.ID || h.quality != qualityKey(a.Quality) {
			continue
		}
		warmR[i] = h.r
	}
	s.stats.WarmStarts += uint64(len(warmR))
	if err := s.inst.optimizeAllocation(ctx, assignments, warmR); err != nil {
		return nil, err
	}
	sol, err := s.inst.newSolution(assignments, time.Since(start))
	if err != nil {
		return nil, err
	}
	sol.Tier = TierHeuristic
	s.commit(sol)
	return sol, nil
}

// commit retains the epoch's converged allocation as warm-start hints and
// refreshes the refcounted block-sharing memory accounting.
func (s *SolverSession) commit(sol *Solution) {
	s.stats.Epochs++
	next := make(map[string]int, len(s.refcount))
	for i := range sol.Assignments {
		a := &sol.Assignments[i]
		if a.Path == nil {
			delete(s.hints, a.TaskID)
			continue
		}
		s.hints[a.TaskID] = allocHint{
			dnn:     a.Path.DNN,
			pathID:  a.Path.ID,
			quality: qualityKey(a.Quality),
			z:       a.Z,
			r:       a.RBs,
		}
		if !a.Admitted() {
			continue
		}
		for _, b := range a.Path.Blocks {
			next[b]++
		}
	}
	// Re-account memory only for blocks whose refcount crossed zero.
	for id := range next {
		if s.refcount[id] == 0 {
			s.deployedGB += s.inst.BlockMemoryGB(id)
		}
	}
	for id := range s.refcount {
		if next[id] == 0 {
			s.deployedGB -= s.inst.BlockMemoryGB(id)
		}
	}
	s.refcount = next
}
