package core

import (
	"context"
	"errors"
	"math"
	"testing"
)

// scratchEquivalent re-solves the session's current task set from scratch
// and verifies the session's last solution matches it exactly: same cost
// (within 1e-9), same per-task decisions.
func scratchEquivalent(t *testing.T, sess *SolverSession, got *Solution) {
	t.Helper()
	in := &Instance{
		Tasks:  sess.Tasks(),
		Blocks: sess.Instance().Blocks,
		Res:    sess.Instance().Res,
		Alpha:  sess.Instance().Alpha,
	}
	want, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatalf("scratch solve: %v", err)
	}
	if math.Abs(got.Cost-want.Cost) > 1e-9 {
		t.Fatalf("incremental cost %v differs from scratch %v by %g",
			got.Cost, want.Cost, math.Abs(got.Cost-want.Cost))
	}
	if len(got.Assignments) != len(want.Assignments) {
		t.Fatalf("assignment count %d != %d", len(got.Assignments), len(want.Assignments))
	}
	for i := range want.Assignments {
		g, w := got.Assignments[i], want.Assignments[i]
		if g.TaskID != w.TaskID {
			t.Fatalf("assignment %d: task %q != %q", i, g.TaskID, w.TaskID)
		}
		gPath, wPath := "", ""
		if g.Path != nil {
			gPath = g.Path.DNN + "/" + g.Path.ID
		}
		if w.Path != nil {
			wPath = w.Path.DNN + "/" + w.Path.ID
		}
		if gPath != wPath {
			t.Fatalf("task %s: path %q != %q", g.TaskID, gPath, wPath)
		}
		if math.Abs(g.Z-w.Z) > 1e-9 || g.RBs != w.RBs {
			t.Fatalf("task %s: allocation (z=%v, r=%d) != (z=%v, r=%d)",
				g.TaskID, g.Z, g.RBs, w.Z, w.RBs)
		}
	}
	if mem := sess.DeployedMemoryGB(); math.Abs(mem-got.Breakdown.MemoryGB) > 1e-9 {
		t.Fatalf("refcounted memory %v differs from breakdown %v", mem, got.Breakdown.MemoryGB)
	}
}

func TestSessionMatchesScratchAcrossDeltas(t *testing.T) {
	in := testInstance(6, 8, 42)
	sess, err := NewSolverSession(in)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	sol, err := sess.Resolve(ctx, TaskDelta{})
	if err != nil {
		t.Fatal(err)
	}
	scratchEquivalent(t, sess, sol)

	removed := in.Tasks[3] // keep a copy for the re-add
	steps := []TaskDelta{
		{Remove: []string{"task-3"}},
		{Add: []Task{removed}},
		{Rate: map[string]float64{"task-0": 9, "task-5": 2}},
		{Remove: []string{"task-0", "task-5"}},
		{}, // no-op epoch
	}
	for si, delta := range steps {
		sol, err := sess.Resolve(ctx, delta)
		if err != nil {
			t.Fatalf("step %d: %v", si, err)
		}
		scratchEquivalent(t, sess, sol)
	}
}

func TestSessionCliqueInvalidation(t *testing.T) {
	in := testInstance(6, 8, 7)
	sess, err := NewSolverSession(in)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := sess.Resolve(ctx, TaskDelta{}); err != nil {
		t.Fatal(err)
	}
	st := sess.Stats()
	if st.CliqueMisses != 6 || st.CliqueHits != 0 {
		t.Fatalf("first epoch: want 6 misses / 0 hits, got %d / %d", st.CliqueMisses, st.CliqueHits)
	}

	// Removing one task rebuilds nothing: the other five cliques hit.
	removed := in.Tasks[2]
	if _, err := sess.Resolve(ctx, TaskDelta{Remove: []string{"task-2"}}); err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.CliqueMisses != 6 || st.CliqueHits != 5 {
		t.Fatalf("after remove: want 6 misses / 5 hits, got %d / %d", st.CliqueMisses, st.CliqueHits)
	}

	// Re-adding it rebuilds exactly one clique.
	if _, err := sess.Resolve(ctx, TaskDelta{Add: []Task{removed}}); err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.CliqueMisses != 7 || st.CliqueHits != 10 {
		t.Fatalf("after re-add: want 7 misses / 10 hits, got %d / %d", st.CliqueMisses, st.CliqueHits)
	}

	// A rate change invalidates nothing: all six cliques hit.
	if _, err := sess.Resolve(ctx, TaskDelta{Rate: map[string]float64{"task-1": 3}}); err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.CliqueMisses != 7 || st.CliqueHits != 16 {
		t.Fatalf("after rate change: want 7 misses / 16 hits, got %d / %d", st.CliqueMisses, st.CliqueHits)
	}

	// Re-specifying a block shared by every task invalidates all cliques.
	spec := sess.Instance().Blocks["base/stage1"]
	spec.ComputeSeconds *= 1.5
	sol, err := sess.Resolve(ctx, TaskDelta{AddBlocks: map[string]BlockSpec{"base/stage1": spec}})
	if err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.CliqueMisses != 13 || st.CliqueHits != 16 {
		t.Fatalf("after block re-spec: want 13 misses / 16 hits, got %d / %d", st.CliqueMisses, st.CliqueHits)
	}
	scratchEquivalent(t, sess, sol)

	// Re-supplying an identical spec is a no-op: all hits.
	if _, err := sess.Resolve(ctx, TaskDelta{AddBlocks: map[string]BlockSpec{"base/stage1": spec}}); err != nil {
		t.Fatal(err)
	}
	st = sess.Stats()
	if st.CliqueMisses != 13 || st.CliqueHits != 22 {
		t.Fatalf("after identical re-spec: want 13 misses / 22 hits, got %d / %d", st.CliqueMisses, st.CliqueHits)
	}
	if st.WarmStarts == 0 {
		t.Fatal("expected some warm-started allocations across epochs")
	}
}

func TestSessionDeltaValidation(t *testing.T) {
	in := testInstance(3, 4, 1)
	sess, err := NewSolverSession(in)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	base, err := sess.Resolve(ctx, TaskDelta{})
	if err != nil {
		t.Fatal(err)
	}

	bad := []TaskDelta{
		{Remove: []string{"nope"}},
		{Remove: []string{"task-1", "task-1"}},
		{Add: []Task{in.Tasks[0]}}, // duplicate live ID
		{Add: []Task{{}}},          // empty ID
		{Rate: map[string]float64{"nope": 4}},
		{Rate: map[string]float64{"task-0": -1}},
		{AddBlocks: map[string]BlockSpec{"x": {ID: "y"}}},
	}
	for i, delta := range bad {
		if _, err := sess.Resolve(ctx, delta); !errors.Is(err, ErrModel) {
			t.Fatalf("delta %d: want ErrModel, got %v", i, err)
		}
	}

	// A rejected delta leaves the session state untouched.
	sol, err := sess.Resolve(ctx, TaskDelta{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol.Cost-base.Cost) > 1e-12 {
		t.Fatalf("cost drifted after rejected deltas: %v != %v", sol.Cost, base.Cost)
	}

	// Removing the last task makes the epoch unsolvable.
	if _, err := sess.Resolve(ctx, TaskDelta{Remove: []string{"task-0", "task-1", "task-2"}}); err == nil {
		t.Fatal("want error resolving an empty task set")
	}
}

func TestSessionResolveCanceled(t *testing.T) {
	in := testInstance(5, 6, 3)
	sess, err := NewSolverSession(in)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := sess.Resolve(ctx, TaskDelta{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
}
