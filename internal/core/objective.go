package core

import (
	"fmt"
	"sort"
	"time"
)

// zEps is the threshold below which an admission ratio counts as zero,
// matching the indicator 1_{z>0} of constraints (1f)–(1i).
const zEps = 1e-9

// Evaluate computes the DOT objective (1a) and its breakdown for a
// candidate solution. It does not check feasibility; use Check for that.
func (in *Instance) Evaluate(assignments []Assignment) (Breakdown, error) {
	if len(assignments) != len(in.Tasks) {
		return Breakdown{}, fmt.Errorf("%w: %d assignments for %d tasks", ErrModel, len(assignments), len(in.Tasks))
	}
	var bd Breakdown
	active := make(map[string]bool)
	for i, a := range assignments {
		task := &in.Tasks[i]
		if a.TaskID != task.ID {
			return Breakdown{}, fmt.Errorf("%w: assignment %d is for %q, want %q", ErrModel, i, a.TaskID, task.ID)
		}
		z := a.Z
		if z < zEps || a.Path == nil {
			z = 0
		}
		bd.AdmissionTerm += in.Alpha * (1 - z) * task.Priority
		bd.WeightedAdmission += z * task.Priority
		if z == 0 {
			continue
		}
		bd.AdmittedTasks++
		if z > 1-1e-6 {
			bd.FullyAdmittedTasks++
		}
		cPath := in.PathCompute(a.Path)
		bd.ComputeUsage += z * task.Rate * cPath
		bd.RBsAllocated += z * float64(a.RBs)
		// Radio term: the fraction of total radio resources allocated to
		// admitted tasks (Sec. III-B item (ii)) — z·r/R, not scaled by the
		// request rate (a slice of r RBs is allocated once per task).
		if rNorm := in.Res.PriceRBs(); rNorm > 0 {
			bd.RadioTerm += (1 - in.Alpha) * z * float64(a.RBs) / float64(rNorm)
		}
		if cNorm := in.Res.PriceComputeSeconds(); cNorm > 0 {
			bd.InferTerm += (1 - in.Alpha) * z * task.Rate * cPath / cNorm
		}
		for _, bID := range a.Path.Blocks {
			active[bID] = true
		}
	}
	ids := make([]string, 0, len(active))
	for id := range active {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	bd.ActiveBlocks = ids
	for _, id := range ids {
		bd.MemoryGB += in.BlockMemoryGB(id)
		bd.TrainSeconds += in.BlockTrainSeconds(id)
	}
	bd.TrainTerm = (1 - in.Alpha) * bd.TrainSeconds / in.Res.PriceTrainBudgetSeconds()
	return bd, nil
}

// Cost returns the scalar objective from a breakdown.
func (bd Breakdown) CostValue() float64 {
	return bd.AdmissionTerm + bd.TrainTerm + bd.RadioTerm + bd.InferTerm
}

// Check verifies every DOT constraint (1b)–(1g) for the assignments and
// returns a descriptive error for the first violation found.
func (in *Instance) Check(assignments []Assignment) error {
	bd, err := in.Evaluate(assignments)
	if err != nil {
		return err
	}
	const tol = 1e-6
	if bd.MemoryGB > in.Res.MemoryGB+tol {
		return fmt.Errorf("%w: memory %v GB exceeds M=%v (1b)", ErrOverCapacity, bd.MemoryGB, in.Res.MemoryGB)
	}
	if bd.ComputeUsage > in.Res.ComputeSeconds+tol {
		return fmt.Errorf("%w: compute %v s/s exceeds C=%v (1c)", ErrOverCapacity, bd.ComputeUsage, in.Res.ComputeSeconds)
	}
	if bd.RBsAllocated > float64(in.Res.RBs)+tol {
		return fmt.Errorf("%w: RB usage %v exceeds R=%d (1d)", ErrOverCapacity, bd.RBsAllocated, in.Res.RBs)
	}
	for i, a := range assignments {
		task := &in.Tasks[i]
		if a.Z < -tol || a.Z > 1+tol {
			return fmt.Errorf("%w: task %s admission ratio %v outside [0,1]", ErrInfeasible, task.ID, a.Z)
		}
		if a.Z < zEps || a.Path == nil {
			continue
		}
		b := in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
		bits := a.Bits(task)
		if a.Z*task.Rate*bits > b*float64(a.RBs)+tol {
			return fmt.Errorf("%w: task %s rate %v×%v bits exceeds slice capacity %v×%d (1e)",
				ErrOverCapacity, task.ID, a.Z*task.Rate, bits, b, a.RBs)
		}
		if a.Accuracy() < task.MinAccuracy-tol {
			return fmt.Errorf("%w: task %s accuracy %v below A=%v (1f)",
				ErrInfeasible, task.ID, a.Accuracy(), task.MinAccuracy)
		}
		lat, err := in.EndToEndLatency(task, a)
		if err != nil {
			return fmt.Errorf("%w: task %s latency: %v", ErrInfeasible, task.ID, err)
		}
		if lat > task.MaxLatency+time.Millisecond/10 {
			return fmt.Errorf("%w: task %s latency %v exceeds L=%v (1g)",
				ErrInfeasible, task.ID, lat, task.MaxLatency)
		}
	}
	return nil
}

// EndToEndLatency computes l_τ = β(q)/(B(σ)·r) + Σ c(s) for a task under
// an assignment's path, quality level and RB slice.
func (in *Instance) EndToEndLatency(task *Task, a Assignment) (time.Duration, error) {
	if a.Path == nil {
		return 0, fmt.Errorf("%w: task %s has no path", ErrInfeasible, task.ID)
	}
	if a.RBs <= 0 {
		return 0, fmt.Errorf("%w: task %s has no RBs", ErrInfeasible, task.ID)
	}
	b := in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
	if b <= 0 {
		return 0, fmt.Errorf("%w: task %s has zero link capacity", ErrInfeasible, task.ID)
	}
	network := a.Bits(task) / (b * float64(a.RBs))
	processing := in.PathCompute(a.Path)
	return time.Duration((network + processing) * float64(time.Second)), nil
}

// newSolution packages assignments into a Solution with cost and runtime.
func (in *Instance) newSolution(assignments []Assignment, runtime time.Duration) (*Solution, error) {
	bd, err := in.Evaluate(assignments)
	if err != nil {
		return nil, err
	}
	return &Solution{
		Assignments: assignments,
		Cost:        bd.CostValue(),
		Breakdown:   bd,
		Runtime:     runtime,
	}, nil
}
