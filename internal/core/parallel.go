package core

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"
)

// SolveOptimalParallel is SolveOptimal with the first tree layer fanned
// out across a bounded worker pool: each worker exhausts the subtree
// under one first-layer vertex with its own branch state, and the
// least-cost leaf wins. Results are identical to the sequential solver
// (the search is exhaustive either way); wall-clock improves roughly with
// min(workers, first-clique size).
//
// workers ≤ 0 selects runtime.NumCPU().
func SolveOptimalParallel(in *Instance, workers int) (*Solution, *OptimalStats, error) {
	return SolveOptimalParallelCtx(context.Background(), in, workers)
}

// SolveOptimalParallelCtx is SolveOptimalParallel with cancellation
// checked between first-layer branches (each worker stops picking up new
// subtrees once ctx is done) and between layers within each subtree.
func SolveOptimalParallelCtx(ctx context.Context, in *Instance, workers int) (*Solution, *OptimalStats, error) {
	start := time.Now()
	tree, err := buildTreeCtx(ctx, in)
	if err != nil {
		return nil, nil, err
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	first := tree.Layers[0].Vertices

	type result struct {
		best     *Solution
		explored int
		pruned   int
		err      error
	}
	jobs := make(chan Vertex)
	results := make([]result, 0, len(first))

	var (
		mu sync.Mutex
		wg sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for v := range jobs {
				if err := ctxErr(ctx); err != nil {
					mu.Lock()
					results = append(results, result{err: err})
					mu.Unlock()
					continue // drain remaining jobs without exploring
				}
				r := exploreSubtree(ctx, in, tree, v)
				mu.Lock()
				results = append(results, r)
				mu.Unlock()
			}
		}()
	}
	for _, v := range first {
		jobs <- v
	}
	close(jobs)
	wg.Wait()

	stats := &OptimalStats{}
	var best *Solution
	bestCost := math.Inf(1)
	for _, r := range results {
		if r.err != nil {
			return nil, nil, r.err
		}
		stats.BranchesExplored += r.explored
		stats.BranchesPruned += r.pruned
		if r.best != nil && r.best.Cost < bestCost {
			bestCost = r.best.Cost
			best = r.best
		}
	}
	if best == nil {
		return nil, nil, fmt.Errorf("%w: no feasible branch", ErrNoFeasiblePath)
	}
	best.Runtime = time.Since(start)
	best.Tier = TierOptimal
	best.Stats = stats
	return best, stats, nil
}

// exploreSubtree exhausts the subtree rooted at first-layer vertex v with
// a private branch state.
func exploreSubtree(ctx context.Context, in *Instance, tree *Tree, v Vertex) (out struct {
	best     *Solution
	explored int
	pruned   int
	err      error
}) {
	state := newBranchState(in)
	if mem := state.push(v); mem > in.Res.MemoryGB+1e-12 {
		out.pruned++
		return out
	}
	chosen := make([]Vertex, len(tree.Layers))
	chosen[0] = v
	bestCost := math.Inf(1)

	var dfs func(layer int) error
	dfs = func(layer int) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if layer == len(tree.Layers) {
			out.explored++
			assignments, err := tree.assignmentsFor(chosen)
			if err != nil {
				return err
			}
			if err := in.OptimizeAllocation(assignments); err != nil {
				return err
			}
			bd, err := in.Evaluate(assignments)
			if err != nil {
				return err
			}
			if c := bd.CostValue(); c < bestCost {
				bestCost = c
				out.best = &Solution{Assignments: assignments, Cost: c, Breakdown: bd}
			}
			return nil
		}
		for _, u := range tree.Layers[layer].Vertices {
			mem := state.push(u)
			if mem > in.Res.MemoryGB+1e-12 {
				out.pruned++
				state.pop()
				continue
			}
			chosen[layer] = u
			if err := dfs(layer + 1); err != nil {
				return err
			}
			state.pop()
		}
		return nil
	}
	out.err = dfs(1)
	return out
}
