package core

import (
	"math"
	"testing"
)

func TestParallelOptimalMatchesSequential(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		in := testInstance(3, 3, seed+200)
		seq, seqStats, err := SolveOptimal(in)
		if err != nil {
			t.Fatal(err)
		}
		par, parStats, err := SolveOptimalParallel(in, 4)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(seq.Cost-par.Cost) > 1e-9 {
			t.Fatalf("seed %d: parallel cost %v != sequential %v", seed, par.Cost, seq.Cost)
		}
		if seqStats.BranchesExplored != parStats.BranchesExplored {
			t.Fatalf("seed %d: explored %d vs %d branches",
				seed, parStats.BranchesExplored, seqStats.BranchesExplored)
		}
		if err := in.Check(par.Assignments); err != nil {
			t.Fatalf("parallel solution infeasible: %v", err)
		}
	}
}

func TestParallelOptimalDefaultWorkers(t *testing.T) {
	in := testInstance(2, 2, 210)
	sol, stats, err := SolveOptimalParallel(in, 0) // auto worker count
	if err != nil {
		t.Fatal(err)
	}
	if stats.BranchesExplored == 0 {
		t.Fatal("no branches explored")
	}
	if sol.Runtime <= 0 {
		t.Fatal("runtime not recorded")
	}
}

func TestParallelOptimalSingleWorkerDegenerates(t *testing.T) {
	in := testInstance(3, 2, 211)
	seq, _, err := SolveOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	par, _, err := SolveOptimalParallel(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Cost-par.Cost) > 1e-9 {
		t.Fatalf("1-worker parallel cost %v != sequential %v", par.Cost, seq.Cost)
	}
}

func TestParallelOptimalMemoryPruning(t *testing.T) {
	in := testInstance(3, 3, 212)
	in.Res.MemoryGB = 1.2 // forces pruning of heavy subtrees
	seq, seqStats, err := SolveOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	par, parStats, err := SolveOptimalParallel(in, 3)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(seq.Cost-par.Cost) > 1e-9 {
		t.Fatalf("pruned search: parallel %v != sequential %v", par.Cost, seq.Cost)
	}
	if seqStats.BranchesPruned != parStats.BranchesPruned {
		t.Fatalf("pruned %d vs %d subtrees", parStats.BranchesPruned, seqStats.BranchesPruned)
	}
}
