package core

import (
	"fmt"
	"time"

	"offloadnn/internal/radio"
)

// KnapsackItem is one item of a 0/1 knapsack instance.
type KnapsackItem struct {
	// Value gained by selecting the item (must be in (0,1] so it can map
	// onto a task priority).
	Value float64
	// Weight consumed from the capacity.
	Weight float64
}

// FromKnapsack encodes a 0/1 knapsack instance as a DOT instance,
// following the polynomial reduction behind Proposition 1 (the paper
// reduces from the binary *multi-dimensional* knapsack; the
// single-dimension case exercised here is already NP-hard).
//
// Item i becomes task τ_i with priority v_i, a single path using one
// exclusive block of memory w_i and zero compute/training cost. Because
// memory is charged per *activated* block — any admission ratio z > 0
// activates it (constraints (1h)/(1i)) — the continuous relaxation of z
// collapses to a binary choice: the optimal solution admits (z = 1) the
// value-maximal subset of items whose weights fit the memory budget M.
// Minimizing Σ α(1−z)v is then exactly maximizing Σ v over that subset.
func FromKnapsack(items []KnapsackItem, capacity float64) (*Instance, error) {
	if len(items) == 0 {
		return nil, fmt.Errorf("%w: no knapsack items", ErrModel)
	}
	in := &Instance{
		Blocks: make(map[string]BlockSpec, len(items)),
		Res: Resources{
			RBs:                len(items), // one RB per task suffices (zero latency pressure)
			ComputeSeconds:     1,
			MemoryGB:           capacity,
			TrainBudgetSeconds: 1,
			Capacity:           radio.FixedRate{Rate: 1e12},
		},
		Alpha: 1, // pure admission objective: resource cost terms vanish
	}
	for i, it := range items {
		if it.Value <= 0 || it.Value > 1 {
			return nil, fmt.Errorf("%w: item %d value %v outside (0,1]", ErrModel, i, it.Value)
		}
		if it.Weight < 0 {
			return nil, fmt.Errorf("%w: item %d has negative weight", ErrModel, i)
		}
		blockID := fmt.Sprintf("item-%d", i)
		in.Blocks[blockID] = BlockSpec{ID: blockID, MemoryGB: it.Weight}
		in.Tasks = append(in.Tasks, Task{
			ID:          fmt.Sprintf("task-%d", i),
			Priority:    it.Value,
			Rate:        1,
			MinAccuracy: 0,
			MaxLatency:  time.Second,
			InputBits:   1,
			Paths: []PathSpec{{
				ID:       "only",
				DNN:      blockID,
				Blocks:   []string{blockID},
				Accuracy: 1,
			}},
		})
	}
	return in, nil
}

// KnapsackValue extracts Σ v_i over admitted tasks from a DOT solution of
// a FromKnapsack instance.
func KnapsackValue(items []KnapsackItem, sol *Solution) float64 {
	v := 0.0
	for i, a := range sol.Assignments {
		if a.Admitted() {
			v += items[i].Value * a.Z
		}
	}
	return v
}

// SolveKnapsackDP solves 0/1 knapsack exactly by dynamic programming over
// integer-scaled weights (weights are multiplied by scale and truncated;
// use a scale that makes them integral). It is the reference the
// reduction tests compare against.
func SolveKnapsackDP(items []KnapsackItem, capacity float64, scale float64) float64 {
	cw := int(capacity * scale)
	best := make([]float64, cw+1)
	for _, it := range items {
		w := int(it.Weight * scale)
		for c := cw; c >= w; c-- {
			if cand := best[c-w] + it.Value; cand > best[c] {
				best[c] = cand
			}
		}
	}
	return best[cw]
}
