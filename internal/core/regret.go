package core

import (
	"context"
	"fmt"
	"time"
)

// TierRegret quantifies how much of the reference tier's solution
// quality a candidate tier gives up on one instance — the
// equivalence/regret harness behind the approximate tier's acceptance
// bound (candidate weighted admission ≥ 0.95× the exact heuristic's on
// the paper scenarios).
type TierRegret struct {
	// RefTier / CandTier are the tiers that actually produced the two
	// solutions.
	RefTier  Tier
	CandTier Tier
	// RefWeightedAdmission / CandWeightedAdmission are the Σ z·p of each
	// solution (Fig. 8's left metric).
	RefWeightedAdmission  float64
	CandWeightedAdmission float64
	// AdmissionRatio is candidate/reference weighted admission; 1 means
	// parity, values above 1 mean the candidate admitted more weighted
	// priority. Defined as 1 when the reference admits nothing.
	AdmissionRatio float64
	// RefCost / CandCost are the DOT objective values (lower is better).
	RefCost  float64
	CandCost float64
	// CostRegret is CandCost − RefCost: the candidate's objective excess.
	CostRegret float64
	// RefRuntime / CandRuntime are the measured solve times.
	RefRuntime  time.Duration
	CandRuntime time.Duration
	// Speedup is RefRuntime/CandRuntime; 0 when the candidate runtime
	// was below the clock resolution.
	Speedup float64
}

// CompareTiers solves the instance with a reference spec and a candidate
// spec, verifies both solutions against every DOT constraint, and
// reports the candidate's regret. Both solves see the same context (and
// each spec's own Timeout, if set).
func CompareTiers(ctx context.Context, in *Instance, ref, cand SolverSpec) (*TierRegret, error) {
	refSol, err := SolveSpec(ctx, in, ref)
	if err != nil {
		return nil, fmt.Errorf("core: regret reference solve: %w", err)
	}
	if err := in.Check(refSol.Assignments); err != nil {
		return nil, fmt.Errorf("core: regret reference solution infeasible: %w", err)
	}
	candSol, err := SolveSpec(ctx, in, cand)
	if err != nil {
		return nil, fmt.Errorf("core: regret candidate solve: %w", err)
	}
	if err := in.Check(candSol.Assignments); err != nil {
		return nil, fmt.Errorf("core: regret candidate solution infeasible: %w", err)
	}
	r := &TierRegret{
		RefTier:               refSol.Tier,
		CandTier:              candSol.Tier,
		RefWeightedAdmission:  refSol.Breakdown.WeightedAdmission,
		CandWeightedAdmission: candSol.Breakdown.WeightedAdmission,
		RefCost:               refSol.Cost,
		CandCost:              candSol.Cost,
		CostRegret:            candSol.Cost - refSol.Cost,
		RefRuntime:            refSol.Runtime,
		CandRuntime:           candSol.Runtime,
	}
	if r.RefWeightedAdmission > 0 {
		r.AdmissionRatio = r.CandWeightedAdmission / r.RefWeightedAdmission
	} else {
		r.AdmissionRatio = 1
	}
	if candSol.Runtime > 0 {
		r.Speedup = float64(refSol.Runtime) / float64(candSol.Runtime)
	}
	return r, nil
}
