package core

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"offloadnn/internal/tensor"
)

// bandSpan is one contiguous priority band of the sharded solve: task
// order positions [lo, hi) of the descending-priority order.
type bandSpan struct{ lo, hi int }

// shardBands splits n priority-ordered tasks into at most shards
// contiguous bands of equal width (the last band may be short). The
// split depends only on (n, shards), so a sharded solve is a pure
// function of the instance and the shard count — never of scheduling.
func shardBands(n, shards int) []bandSpan {
	if shards > n {
		shards = n
	}
	if shards < 1 {
		shards = 1
	}
	chunk := (n + shards - 1) / shards
	bands := make([]bandSpan, 0, shards)
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		bands = append(bands, bandSpan{lo, hi})
	}
	return bands
}

// shardResources is one band's slice of the pool: radio blocks are
// integer-split with the remainder spread over the first (highest
// priority) bands, compute and memory are divided evenly, the training
// budget Ct is kept whole (it normalizes the objective, it is not a
// partitionable capacity), and Norm pins every band's objective to the
// full pool's prices — the PartitionResources idiom of the cluster
// layer, so a band solving 1/S of the pool still prices an RB or a
// compute-second exactly as the unsharded objective would. An existing
// Norm (a cluster node solving a fleet share) is preserved: prices
// already reference the widest pool.
func shardResources(res Resources, shards int) []Resources {
	norm := &Resources{
		RBs:                res.PriceRBs(),
		ComputeSeconds:     res.PriceComputeSeconds(),
		TrainBudgetSeconds: res.PriceTrainBudgetSeconds(),
	}
	out := make([]Resources, shards)
	base, extra := res.RBs/shards, res.RBs%shards
	for i := range out {
		out[i] = res
		out[i].RBs = base
		if i < extra {
			out[i].RBs++
		}
		out[i].ComputeSeconds = res.ComputeSeconds / float64(shards)
		out[i].MemoryGB = res.MemoryGB / float64(shards)
		out[i].Norm = norm
	}
	return out
}

// solveShardedCtx runs the OffloaDNN heuristic sharded by priority band:
// tasks are split (in descending priority order) into contiguous bands,
// each band becomes an independent DOT instance over its slice of the
// resource pool (shardResources), and the bands are solved concurrently.
// The per-band solve is the unmodified first-branch heuristic — same
// tree construction, same per-branch (z, r) allocator — so the whole
// win is asymptotic: the allocator's LP is ~cubic in the instance size,
// and S bands of n/S tasks cost ~n·(n/S)² instead of n³.
//
// The merged solution is feasible on the full instance by construction:
// band budgets sum to the pool (memory conservatively — a block shared
// across bands is charged in each, but counted once globally), and
// per-task constraints are local. It is also bitwise-deterministic in
// the worker count: every band's sub-instance depends only on
// (instance, shard count), bands are solved independently, and the
// merge is by band order.
func solveShardedCtx(ctx context.Context, in *Instance, shards, workers int, cfg HeuristicConfig) (*Solution, error) {
	start := time.Now()
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order := priorityOrder(in)
	bands := shardBands(len(order), shards)
	if len(bands) <= 1 {
		return SolveOffloaDNNConfiguredCtx(ctx, in, cfg)
	}
	res := shardResources(in.Res, len(bands))

	shardIns := make([]*Instance, len(bands))
	for s, b := range bands {
		tasks := make([]Task, 0, b.hi-b.lo)
		for _, ti := range order[b.lo:b.hi] {
			// Task values are copied but their Paths backing arrays are
			// shared, so the band solution's *PathSpec pointers remain
			// valid on the full instance after the merge.
			tasks = append(tasks, in.Tasks[ti])
		}
		shardIns[s] = &Instance{
			Tasks:       tasks,
			Blocks:      in.Blocks,
			Res:         res[s],
			Alpha:       in.Alpha,
			Predeployed: in.Predeployed,
		}
	}

	sols := make([]*Solution, len(bands))
	errs := make([]error, len(bands))
	solveBand := func(s int) {
		sols[s], errs[s] = SolveOffloaDNNConfiguredCtx(ctx, shardIns[s], cfg)
	}
	w := workers
	if w <= 0 {
		w = tensor.Parallelism()
	}
	if w > len(bands) {
		w = len(bands)
	}
	if w <= 1 {
		for s := range bands {
			solveBand(s)
		}
	} else {
		// Plain goroutines, not the tensor pool: a band solve is not a
		// leaf (its own tree construction may fan out over the pool).
		var next atomic.Int64
		var wg sync.WaitGroup
		for g := 0; g < w; g++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					s := int(next.Add(1)) - 1
					if s >= len(bands) {
						return
					}
					solveBand(s)
				}
			}()
		}
		wg.Wait()
	}
	for s, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: priority band %d/%d: %w", s, len(bands), err)
		}
	}

	merged := make([]Assignment, len(in.Tasks))
	for i := range merged {
		merged[i] = Assignment{TaskID: in.Tasks[i].ID}
	}
	for s, b := range bands {
		for j, ti := range order[b.lo:b.hi] {
			merged[ti] = sols[s].Assignments[j]
		}
	}
	sol, err := in.newSolution(merged, time.Since(start))
	if err != nil {
		return nil, err
	}
	sol.Tier = TierHeuristic
	sol.Shards = len(bands)
	return sol, nil
}
