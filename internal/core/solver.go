package core

import (
	"context"
	"fmt"
	"math"
	"time"
)

// ctxErr surfaces a context cancellation as a wrapped error, so callers
// can test it with errors.Is(err, context.Canceled/DeadlineExceeded).
func ctxErr(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return fmt.Errorf("core: solve canceled: %w", err)
	}
	return nil
}

// SolveOffloaDNN runs the polynomial-time OffloaDNN heuristic (Sec. IV):
// build the weighted tree (cliques sorted by ascending inference compute
// time), take the first branch — at every layer, the left-most vertex
// whose blocks fit the remaining memory budget, falling back to rejection
// when none does — and solve the per-branch convex allocation in (z, r).
func SolveOffloaDNN(in *Instance) (*Solution, error) {
	return SolveOffloaDNNConfiguredCtx(context.Background(), in, HeuristicConfig{})
}

// SolveOffloaDNNCtx is SolveOffloaDNN with cancellation checked between
// tree layers; it returns promptly with the context's error once ctx is
// done.
func SolveOffloaDNNCtx(ctx context.Context, in *Instance) (*Solution, error) {
	return SolveOffloaDNNConfiguredCtx(ctx, in, HeuristicConfig{})
}

// OptimalStats reports the work done by the exhaustive solver.
type OptimalStats struct {
	// BranchesExplored counts complete branches whose allocation problem
	// was solved.
	BranchesExplored int
	// BranchesPruned counts subtrees cut by the memory bound.
	BranchesPruned int
}

// SolveOptimal exhaustively traverses every branch of the weighted tree
// (depth-first, pruning subtrees that exceed the memory budget), solves
// the per-branch allocation for each leaf, and returns the least-cost
// solution. Complexity is exponential in the number of tasks — it is the
// benchmark OffloaDNN is compared against in the small-scale scenario.
func SolveOptimal(in *Instance) (*Solution, *OptimalStats, error) {
	return SolveOptimalCtx(context.Background(), in)
}

// SolveOptimalCtx is SolveOptimal with cancellation checked between tree
// layers of the depth-first traversal — essential for bounding the
// exponential search from a caller's deadline.
func SolveOptimalCtx(ctx context.Context, in *Instance) (*Solution, *OptimalStats, error) {
	start := time.Now()
	tree, err := buildTreeCtx(ctx, in)
	if err != nil {
		return nil, nil, err
	}
	stats := &OptimalStats{}
	state := newBranchState(in)
	chosen := make([]Vertex, len(tree.Layers))
	var best *Solution
	bestCost := math.Inf(1)

	var dfs func(layer int) error
	dfs = func(layer int) error {
		if err := ctxErr(ctx); err != nil {
			return err
		}
		if layer == len(tree.Layers) {
			stats.BranchesExplored++
			assignments, err := tree.assignmentsFor(chosen)
			if err != nil {
				return err
			}
			if err := in.OptimizeAllocation(assignments); err != nil {
				return err
			}
			bd, err := in.Evaluate(assignments)
			if err != nil {
				return err
			}
			if c := bd.CostValue(); c < bestCost {
				bestCost = c
				best = &Solution{Assignments: assignments, Cost: c, Breakdown: bd}
			}
			return nil
		}
		for _, v := range tree.Layers[layer].Vertices {
			mem := state.push(v)
			if mem > in.Res.MemoryGB+1e-12 {
				stats.BranchesPruned++
				state.pop()
				continue
			}
			chosen[layer] = v
			if err := dfs(layer + 1); err != nil {
				return err
			}
			state.pop()
		}
		return nil
	}
	if err := dfs(0); err != nil {
		return nil, nil, err
	}
	if best == nil {
		return nil, nil, fmt.Errorf("%w: no feasible branch", ErrNoFeasiblePath)
	}
	best.Runtime = time.Since(start)
	best.Tier = TierOptimal
	best.Stats = stats
	return best, stats, nil
}
