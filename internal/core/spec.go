package core

import (
	"context"
	"fmt"
	"strings"
	"time"
)

// Tier identifies one of the solver tiers behind the unified Solve API.
type Tier int

// Solver tiers.
const (
	// TierAuto lets the dispatcher pick: the exact OffloaDNN heuristic,
	// sharded across priority bands once the task count warrants it.
	TierAuto Tier = iota
	// TierHeuristic is the polynomial-time OffloaDNN first-branch
	// heuristic (Sec. IV), optionally sharded by priority band.
	TierHeuristic
	// TierOptimal is the exhaustive weighted-tree search — exponential in
	// the task count, the paper's small-scale benchmark.
	TierOptimal
	// TierApprox is the approximate admission tier: score-based path
	// ranking with greedy budget packing. One shortlist scoring pass and
	// one greedy pass — no per-branch LP — so it holds the epoch deadline
	// at task counts where even the sharded heuristic cannot.
	TierApprox
)

// String implements fmt.Stringer.
func (t Tier) String() string {
	switch t {
	case TierAuto:
		return "auto"
	case TierHeuristic:
		return "heuristic"
	case TierOptimal:
		return "optimal"
	case TierApprox:
		return "approx"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// ParseTier converts a tier name ("auto", "heuristic", "optimal",
// "approx") to its Tier value.
func ParseTier(s string) (Tier, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "auto":
		return TierAuto, nil
	case "heuristic", "exact":
		return TierHeuristic, nil
	case "optimal":
		return TierOptimal, nil
	case "approx", "approximate":
		return TierApprox, nil
	default:
		return TierAuto, fmt.Errorf("%w: unknown solver tier %q (want auto|heuristic|optimal|approx)", ErrModel, s)
	}
}

// SolverSpec selects a solver tier and its execution knobs. The zero
// value is TierAuto with automatic sharding and the pool's parallelism —
// the right default for callers that just want the instance solved.
type SolverSpec struct {
	// Tier picks the solver; TierAuto defers to the dispatcher.
	Tier Tier
	// Workers bounds the goroutines a parallel tier may use (the
	// caller's included). <= 0 uses the tensor pool's Parallelism().
	Workers int
	// Shards is the number of priority-band shards for the heuristic
	// tier: 1 forces a serial (unsharded) solve, 0 picks automatically
	// from the task count, >= 2 forces that many bands. Ignored by the
	// optimal and approx tiers.
	Shards int
	// Timeout bounds the solve; 0 means no deadline beyond the caller's
	// context.
	Timeout time.Duration
	// Heuristic carries the ablation knobs of the heuristic tier.
	Heuristic HeuristicConfig
}

const (
	// shardBandTasks is the target priority-band width of an
	// automatically sharded solve. The per-branch allocator's LP is
	// cubic in the band size, so O(n/S) bands of S tasks cost
	// ~n·S² instead of n³ — the entire asymptotic win of sharding.
	shardBandTasks = 128
	// autoShardMin is the task count at which TierAuto starts sharding
	// the heuristic. Below it the serial solve is fast enough that
	// partitioning the budgets would cost admission quality for nothing.
	autoShardMin = 256
)

// EffectiveShards resolves a requested shard count against the task
// count: 1 (or a single task) stays serial, an explicit count is clamped
// to the task count, and 0 picks ceil(n/shardBandTasks) bands once n
// reaches autoShardMin.
func EffectiveShards(n, requested int) int {
	if n <= 1 || requested == 1 {
		return 1
	}
	if requested > 1 {
		if requested > n {
			requested = n
		}
		return requested
	}
	if n < autoShardMin {
		return 1
	}
	return (n + shardBandTasks - 1) / shardBandTasks
}

// SolveSpec solves the instance with the tier and knobs the spec
// selects. It is the single dispatch point behind the facade's
// Solve(ctx, in, ...SolveOption) API: the heuristic tier (serial or
// sharded by priority band), the exhaustive optimal tier (serial or
// first-layer-parallel), and the approximate admission tier all route
// through here, and the returned Solution records which tier produced it.
func SolveSpec(ctx context.Context, in *Instance, spec SolverSpec) (*Solution, error) {
	if spec.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, spec.Timeout)
		defer cancel()
	}
	switch spec.Tier {
	case TierOptimal:
		var (
			sol   *Solution
			stats *OptimalStats
			err   error
		)
		if spec.Workers == 1 {
			sol, stats, err = SolveOptimalCtx(ctx, in)
		} else {
			sol, stats, err = SolveOptimalParallelCtx(ctx, in, spec.Workers)
		}
		if err != nil {
			return nil, err
		}
		sol.Stats = stats
		return sol, nil
	case TierApprox:
		return solveApproxCtx(ctx, in, spec)
	case TierAuto, TierHeuristic:
		if shards := EffectiveShards(len(in.Tasks), spec.Shards); shards > 1 {
			return solveShardedCtx(ctx, in, shards, spec.Workers, spec.Heuristic)
		}
		return SolveOffloaDNNConfiguredCtx(ctx, in, spec.Heuristic)
	default:
		return nil, fmt.Errorf("%w: unknown solver tier %d", ErrModel, int(spec.Tier))
	}
}
