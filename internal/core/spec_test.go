package core

import (
	"context"
	"strings"
	"testing"
)

func TestParseTierRoundTrip(t *testing.T) {
	for _, tier := range []Tier{TierAuto, TierHeuristic, TierOptimal, TierApprox} {
		got, err := ParseTier(tier.String())
		if err != nil {
			t.Fatalf("ParseTier(%q): %v", tier.String(), err)
		}
		if got != tier {
			t.Fatalf("ParseTier(%q) = %v, want %v", tier.String(), got, tier)
		}
	}
	for name, want := range map[string]Tier{
		"":            TierAuto,
		"  Exact ":    TierHeuristic,
		"APPROXIMATE": TierApprox,
		"Optimal":     TierOptimal,
	} {
		got, err := ParseTier(name)
		if err != nil {
			t.Fatalf("ParseTier(%q): %v", name, err)
		}
		if got != want {
			t.Fatalf("ParseTier(%q) = %v, want %v", name, got, want)
		}
	}
	if _, err := ParseTier("bogus"); err == nil {
		t.Fatal("ParseTier(bogus) succeeded")
	}
	if s := Tier(99).String(); !strings.Contains(s, "99") {
		t.Fatalf("Tier(99).String() = %q", s)
	}
}

func TestEffectiveShards(t *testing.T) {
	cases := []struct {
		n, requested, want int
	}{
		{1, 0, 1},              // single task stays serial
		{100, 1, 1},            // explicit serial
		{100, 4, 4},            // explicit count
		{3, 8, 3},              // clamped to task count
		{100, 0, 1},            // below autoShardMin: auto stays serial
		{autoShardMin, 0, 2},   // 256/128
		{10000, 0, 79},         // ceil(10000/128)
		{10000, 10001, 10000},  // clamp
	}
	for _, c := range cases {
		if got := EffectiveShards(c.n, c.requested); got != c.want {
			t.Errorf("EffectiveShards(%d, %d) = %d, want %d", c.n, c.requested, got, c.want)
		}
	}
}

// TestSolveSpecTierTagging checks that every tier routes through the
// dispatcher, produces a feasible solution, and tags it with its tier.
func TestSolveSpecTierTagging(t *testing.T) {
	ctx := context.Background()
	in := testInstance(6, 3, 1)
	cases := []struct {
		name string
		spec SolverSpec
		want Tier
	}{
		{"auto", SolverSpec{}, TierHeuristic},
		{"heuristic-serial", SolverSpec{Tier: TierHeuristic, Shards: 1}, TierHeuristic},
		{"heuristic-sharded", SolverSpec{Tier: TierHeuristic, Shards: 3}, TierHeuristic},
		{"approx", SolverSpec{Tier: TierApprox}, TierApprox},
	}
	for _, c := range cases {
		sol, err := SolveSpec(ctx, in, c.spec)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if sol.Tier != c.want {
			t.Fatalf("%s: tier %v, want %v", c.name, sol.Tier, c.want)
		}
		if err := in.Check(sol.Assignments); err != nil {
			t.Fatalf("%s: infeasible: %v", c.name, err)
		}
		if c.spec.Shards > 1 && sol.Shards != c.spec.Shards {
			t.Fatalf("%s: recorded %d shards, want %d", c.name, sol.Shards, c.spec.Shards)
		}
	}

	small := testInstance(3, 2, 1)
	sol, err := SolveSpec(ctx, small, SolverSpec{Tier: TierOptimal, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Tier != TierOptimal || sol.Stats == nil {
		t.Fatalf("optimal tier = %v, stats %v", sol.Tier, sol.Stats)
	}

	if _, err := SolveSpec(ctx, in, SolverSpec{Tier: Tier(99)}); err == nil {
		t.Fatal("unknown tier accepted")
	}
}

// TestShardedDeterministicAcrossWorkers proves the sharded heuristic is
// bitwise-identical in the worker count: bands merge in band order, so
// scheduling cannot leak into the solution.
func TestShardedDeterministicAcrossWorkers(t *testing.T) {
	ctx := context.Background()
	in := testInstance(40, 3, 2)
	base, err := SolveSpec(ctx, in, SolverSpec{Tier: TierHeuristic, Shards: 5, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got, err := SolveSpec(ctx, in, SolverSpec{Tier: TierHeuristic, Shards: 5, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Cost != base.Cost {
			t.Fatalf("workers=%d: objective %v != %v", workers, got.Cost, base.Cost)
		}
		for i := range got.Assignments {
			a, b := got.Assignments[i], base.Assignments[i]
			if a.Path != b.Path || a.Z != b.Z || a.RBs != b.RBs || a.Quality != b.Quality {
				t.Fatalf("workers=%d: assignment %d differs: %+v vs %+v", workers, i, a, b)
			}
		}
	}
}

// TestCompareTiersReport checks the regret harness solves both tiers,
// verifies feasibility, and fills the ratio fields.
func TestCompareTiersReport(t *testing.T) {
	in := testInstance(10, 3, 3)
	r, err := CompareTiers(context.Background(), in,
		SolverSpec{Tier: TierHeuristic, Shards: 1},
		SolverSpec{Tier: TierApprox})
	if err != nil {
		t.Fatal(err)
	}
	if r.RefTier != TierHeuristic || r.CandTier != TierApprox {
		t.Fatalf("tiers: %v vs %v", r.RefTier, r.CandTier)
	}
	if r.RefWeightedAdmission <= 0 {
		t.Fatalf("reference admitted nothing: %+v", r)
	}
	if r.AdmissionRatio <= 0 || r.AdmissionRatio > 1.5 {
		t.Fatalf("implausible admission ratio %v", r.AdmissionRatio)
	}
}
