package core

import (
	"context"
	"fmt"
	"sort"
	"time"

	"offloadnn/internal/tensor"
)

// Vertex is one decision for a task: a feasible DNN path, or the implicit
// rejection decision (Path == nil, used when no path fits the remaining
// memory — the task then gets z = 0).
type Vertex struct {
	// Path is the candidate execution; nil marks the reject vertex.
	Path *PathSpec
	// Quality is the input-quality level paired with the path (nil =
	// full quality). Vertices enumerate (path × quality) combinations.
	Quality *QualityLevel
	// Compute caches Σ c(s) over the path (0 for reject).
	Compute float64
	// Train caches Σ ct(s) over the path's blocks (upper bound — sharing
	// may reduce the charged cost). Used only to break compute ties.
	Train float64
	// Memory caches Σ µ(s) over the path's blocks (upper bound).
	Memory float64
	// Bits caches β(q) of the vertex's quality level.
	Bits float64
}

// Reject reports whether this is the rejection decision.
func (v Vertex) Reject() bool { return v.Path == nil }

// Clique is the layer-t sibling group: all feasible decisions for one
// task, ordered by ascending inference compute time (the ordering that
// makes OffloaDNN's first-branch rule effective). The reject vertex is
// always last.
type Clique struct {
	// TaskIndex is the index of the task in Instance.Tasks.
	TaskIndex int
	// Vertices in left-to-right (ascending compute) order.
	Vertices []Vertex
}

// Tree is the weighted-tree model of the DOT solution space: one layer per
// task in descending priority order. The tree is represented implicitly —
// a layer's clique is replicated under every parent during traversal, with
// the branch state carrying the memory/training correlation.
type Tree struct {
	inst *Instance
	// Layers hold one clique per task, in traversal (priority) order.
	Layers []Clique
}

// BuildTree constructs the layered cliques: tasks sorted by descending
// priority (ties broken by instance order); per task, the vertices are the
// paths honoring the accuracy constraint (1f) and whose processing time
// alone does not already exceed the latency bound (1g), sorted by
// ascending compute time.
func BuildTree(in *Instance) (*Tree, error) {
	return buildTreeCtx(context.Background(), in)
}

// parallelTreeMin is the task count at which clique construction fans
// out over the tensor worker pool. Below it the per-task work does not
// amortize the pool handoff.
const parallelTreeMin = 256

// buildTreeCtx is BuildTree with cancellation checked between layers.
// At parallelTreeMin tasks and beyond the per-task cliques are built
// concurrently on the tensor worker pool: each layer's vertices depend
// only on that task's fields and the shared (read-only) block catalog,
// and every goroutine writes a distinct layer slot, so the result is
// identical to the serial build at any pool size.
func buildTreeCtx(ctx context.Context, in *Instance) (*Tree, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	order := priorityOrder(in)
	if len(order) >= parallelTreeMin {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		layers := make([]Clique, len(order))
		tensor.ParallelFor(len(order), 16, 0, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				layers[i] = Clique{TaskIndex: order[i], Vertices: buildCliqueVertices(in, order[i])}
			}
		})
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		return &Tree{inst: in, Layers: layers}, nil
	}
	t := &Tree{inst: in, Layers: make([]Clique, 0, len(order))}
	for _, ti := range order {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		t.Layers = append(t.Layers, Clique{TaskIndex: ti, Vertices: buildCliqueVertices(in, ti)})
	}
	return t, nil
}

// priorityOrder returns task indices in tree-layer order: descending
// priority, ties broken by instance order.
func priorityOrder(in *Instance) []int {
	order := make([]int, len(in.Tasks))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].Priority > in.Tasks[order[b]].Priority
	})
	return order
}

// buildCliqueVertices constructs the sibling group of one task: every
// feasible (path × quality) combination sorted by the clique ordering,
// with the reject vertex last. The result depends only on the task's own
// fields and the specs of the blocks its paths reference — the property
// the incremental solver's clique cache relies on for invalidation.
func buildCliqueVertices(in *Instance, ti int) []Vertex {
	task := &in.Tasks[ti]
	qualities := task.QualityOptions()
	var vertices []Vertex
	for pi := range task.Paths {
		p := &task.Paths[pi]
		c := in.PathCompute(p)
		if time.Duration(c*float64(time.Second)) > task.MaxLatency {
			continue
		}
		var train, mem float64
		for _, id := range p.Blocks {
			train += in.BlockTrainSeconds(id)
			mem += in.BlockMemoryGB(id)
		}
		for qi := range qualities {
			q := qualities[qi]
			if p.Accuracy-q.AccuracyDelta < task.MinAccuracy {
				continue
			}
			v := Vertex{Path: p, Compute: c, Train: train, Memory: mem, Bits: q.Bits}
			if qi > 0 { // level 0 is the implicit full quality
				quality := q
				v.Quality = &quality
			}
			vertices = append(vertices, v)
		}
	}
	// Primary order is ascending inference compute time (the paper's
	// clique ordering); compute ties — frequent among pruned variants
	// and quality twins — break toward lower training cost, then lower
	// memory, then fewer input bits, so the first-branch rule does not
	// pick a gratuitously expensive twin.
	sort.SliceStable(vertices, func(a, b int) bool {
		va, vb := vertices[a], vertices[b]
		if va.Compute != vb.Compute {
			return va.Compute < vb.Compute
		}
		if va.Train != vb.Train {
			return va.Train < vb.Train
		}
		if va.Memory != vb.Memory {
			return va.Memory < vb.Memory
		}
		return va.Bits < vb.Bits
	})
	return append(vertices, Vertex{}) // reject vertex
}

// NumBranches returns the total number of root-to-leaf branches of the
// full tree (the Π_τ N_τ size the paper's complexity analysis cites).
func (t *Tree) NumBranches() float64 {
	n := 1.0
	for _, c := range t.Layers {
		n *= float64(len(c.Vertices))
	}
	return n
}

// branchState tracks the memory/training correlation along a branch: the
// set of blocks activated by the vertices chosen so far.
type branchState struct {
	inst   *Instance
	active map[string]bool
	// newBlocks[d] lists blocks first activated at depth d, enabling O(1)
	// backtracking.
	newBlocks [][]string
	memoryGB  float64
	trainSec  float64
}

func newBranchState(in *Instance) *branchState {
	return &branchState{inst: in, active: make(map[string]bool)}
}

// push activates the vertex's blocks; it returns the memory after the
// push. Pop must be called to backtrack.
func (s *branchState) push(v Vertex) float64 {
	var added []string
	if v.Path != nil {
		for _, id := range v.Path.Blocks {
			if !s.active[id] {
				s.active[id] = true
				added = append(added, id)
				s.memoryGB += s.inst.BlockMemoryGB(id)
				s.trainSec += s.inst.BlockTrainSeconds(id)
			}
		}
	}
	s.newBlocks = append(s.newBlocks, added)
	return s.memoryGB
}

// pop undoes the most recent push.
func (s *branchState) pop() {
	last := s.newBlocks[len(s.newBlocks)-1]
	s.newBlocks = s.newBlocks[:len(s.newBlocks)-1]
	for _, id := range last {
		delete(s.active, id)
		s.memoryGB -= s.inst.BlockMemoryGB(id)
		s.trainSec -= s.inst.BlockTrainSeconds(id)
	}
}

// assignmentsFor converts chosen vertices (parallel to t.Layers) into an
// assignment slice parallel to Instance.Tasks, with z and r left for the
// allocator.
func (t *Tree) assignmentsFor(chosen []Vertex) ([]Assignment, error) {
	if len(chosen) != len(t.Layers) {
		return nil, fmt.Errorf("%w: %d chosen vertices for %d layers", ErrModel, len(chosen), len(t.Layers))
	}
	out := make([]Assignment, len(t.inst.Tasks))
	for i := range t.inst.Tasks {
		out[i] = Assignment{TaskID: t.inst.Tasks[i].ID}
	}
	for li, v := range chosen {
		ti := t.Layers[li].TaskIndex
		out[ti].Path = v.Path
		out[ti].Quality = v.Quality
	}
	return out, nil
}
