package core

// treeCache memoizes the per-task cliques of the weighted tree across the
// epochs of a SolverSession. A clique's vertices depend only on the
// owning task's fields and on the specs of the blocks its paths reference
// (buildCliqueVertices), never on the other tasks — so churn invalidates
// cliques at task granularity: removing or re-adding a task drops exactly
// its clique, re-specifying a block drops exactly the cliques that
// reference it, and a rate-only change drops nothing (the request rate
// enters the allocation, not the tree).
type treeCache struct {
	// vertices holds the cached clique per task ID.
	vertices map[string][]Vertex
	// taskBlocks maps task ID → the block IDs its cached clique
	// references (the reverse index for blockTasks maintenance).
	taskBlocks map[string][]string
	// blockTasks maps block ID → the task IDs whose cached cliques
	// reference it, so a block re-specification invalidates only those.
	blockTasks map[string]map[string]bool

	hits, misses uint64
}

func newTreeCache() *treeCache {
	return &treeCache{
		vertices:   make(map[string][]Vertex),
		taskBlocks: make(map[string][]string),
		blockTasks: make(map[string]map[string]bool),
	}
}

// cliqueFor returns the clique vertices for task ti, building and caching
// them on a miss.
func (c *treeCache) cliqueFor(in *Instance, ti int) []Vertex {
	id := in.Tasks[ti].ID
	if vs, ok := c.vertices[id]; ok {
		c.hits++
		return vs
	}
	c.misses++
	vs := buildCliqueVertices(in, ti)
	c.vertices[id] = vs
	refs := make(map[string]bool)
	for _, p := range in.Tasks[ti].Paths {
		for _, b := range p.Blocks {
			refs[b] = true
		}
	}
	blocks := make([]string, 0, len(refs))
	for b := range refs {
		blocks = append(blocks, b)
		set, ok := c.blockTasks[b]
		if !ok {
			set = make(map[string]bool)
			c.blockTasks[b] = set
		}
		set[id] = true
	}
	c.taskBlocks[id] = blocks
	return vs
}

// invalidateTask drops one task's cached clique (a no-op when absent).
func (c *treeCache) invalidateTask(id string) {
	if _, ok := c.vertices[id]; !ok {
		return
	}
	delete(c.vertices, id)
	for _, b := range c.taskBlocks[id] {
		if set := c.blockTasks[b]; set != nil {
			delete(set, id)
			if len(set) == 0 {
				delete(c.blockTasks, b)
			}
		}
	}
	delete(c.taskBlocks, id)
}

// invalidateBlock drops every cached clique referencing the block.
func (c *treeCache) invalidateBlock(id string) {
	for task := range c.blockTasks[id] {
		c.invalidateTask(task)
	}
}
