// Package core implements the paper's contribution: the DOT (DNNs for
// scalable Offloading of Tasks) problem model, the weighted-tree search
// space, the per-branch convex allocator in (z, r), the exhaustive optimal
// solver, and the OffloaDNN first-branch heuristic.
//
// The model follows Sec. III of the paper. A task τ carries priority p_τ,
// request rate λ_τ, accuracy floor A_τ, latency ceiling L_τ, input size
// β(q_τ) and channel quality σ_τ. Candidate executions are paths π —
// sequences of layer-blocks s with experimentally characterized inference
// compute time c(s), memory µ(s) and training cost ct(s). Decision
// variables are the admission ratios z_τ ∈ [0,1], the path selection
// (x, y), and the RB allocations r_τ.
package core

import (
	"errors"
	"fmt"
	"time"

	"offloadnn/internal/radio"
)

// ErrModel reports an invalid instance.
var ErrModel = errors.New("core: invalid DOT instance")

// ErrInfeasible reports that no feasible solution exists (e.g., the memory
// budget cannot hold any path of an admission-mandatory configuration).
var ErrInfeasible = errors.New("core: infeasible DOT instance")

// ErrNoFeasiblePath reports that the weighted-tree search exhausted every
// branch without finding one whose blocks fit the memory budget. It wraps
// ErrInfeasible, so errors.Is(err, ErrInfeasible) also holds.
var ErrNoFeasiblePath = fmt.Errorf("core: no feasible path [%w]", ErrInfeasible)

// ErrOverCapacity reports a violation of a resource-capacity constraint —
// memory (1b), compute (1c), radio (1d) or slice throughput (1e). It
// wraps ErrInfeasible, so errors.Is(err, ErrInfeasible) also holds.
var ErrOverCapacity = fmt.Errorf("core: resource capacity exceeded [%w]", ErrInfeasible)

// BlockSpec is the experimentally characterized layer-block s^d.
type BlockSpec struct {
	// ID uniquely identifies the block; paths referencing the same ID
	// share one deployment (memory and training charged once).
	ID string
	// ComputeSeconds is the per-inference compute time c(s).
	ComputeSeconds float64
	// MemoryGB is the deployed footprint µ(s).
	MemoryGB float64
	// TrainSeconds is the (fine-)training cost ct(s); zero for
	// pre-trained base blocks and for blocks already deployed at the edge
	// (the incremental scenario of Sec. III-B).
	TrainSeconds float64
}

// PathSpec is π^d_τ: one way to execute a task on DNN structure d.
type PathSpec struct {
	// ID identifies the path within its task's candidate set.
	ID string
	// DNN names the dynamic DNN structure d the path belongs to.
	DNN string
	// Blocks are the IDs of the blocks [s^d] composing the path, in
	// execution order.
	Blocks []string
	// Accuracy is the attained accuracy a_τ(q_τ, π) for the owning task's
	// quality level, characterized offline.
	Accuracy float64
}

// QualityLevel is one input-quality option q ∈ Q_τ: transmitting the task
// input at reduced quality shrinks β(q) at an accuracy cost.
type QualityLevel struct {
	// ID names the level (e.g., "q1080", "q720").
	ID string
	// Bits is β(q), the bits per offloaded image at this quality.
	Bits float64
	// AccuracyDelta is subtracted from the path accuracy a_τ(q, π).
	AccuracyDelta float64
}

// Task is an inference task τ requested for offloading.
type Task struct {
	// ID names the task.
	ID string
	// Priority p_τ ∈ [0,1].
	Priority float64
	// Rate λ_τ in requests per second.
	Rate float64
	// MinAccuracy is A_τ.
	MinAccuracy float64
	// MaxLatency is L_τ (end-to-end: network + processing).
	MaxLatency time.Duration
	// InputBits is β at full quality, the bits per offloaded image.
	InputBits float64
	// SNRdB is σ_τ, the average SNR of the devices issuing the task.
	SNRdB float64
	// Qualities are the optional reduced-quality levels Q_τ. The full
	// quality (InputBits, zero accuracy delta) is always available; an
	// empty slice means it is the only level, which is the Table-IV
	// evaluation setting.
	Qualities []QualityLevel
	// Paths are the candidate executions Π_τ = ∪_d Π^d_τ.
	Paths []PathSpec
}

// QualityOptions returns the task's quality ladder including the implicit
// full-quality level (first).
func (t *Task) QualityOptions() []QualityLevel {
	out := make([]QualityLevel, 0, len(t.Qualities)+1)
	out = append(out, QualityLevel{ID: "full", Bits: t.InputBits})
	out = append(out, t.Qualities...)
	return out
}

// Resources is the edge/radio capacity pool.
type Resources struct {
	// RBs is R, the radio resource blocks available.
	RBs int
	// ComputeSeconds is C: edge compute seconds available per second.
	ComputeSeconds float64
	// MemoryGB is M.
	MemoryGB float64
	// TrainBudgetSeconds is Ct, the normalizer of the training-cost term.
	TrainBudgetSeconds float64
	// Capacity maps SNR to per-RB throughput B(σ).
	Capacity radio.CapacityModel
	// Norm optionally overrides the capacities the objective's resource
	// terms are priced against, leaving the constraints (1b)–(1e) at the
	// pool's own budgets. A cluster node solving 1/n of a fleet's pool
	// sets Norm to the fleet-wide totals so each node prices an RB or a
	// compute-second exactly as the single-server objective would —
	// otherwise a half-capacity node sees doubled resource prices and
	// sheds low-priority tasks the fleet has room for. Nil (the default)
	// prices by the pool itself. Only RBs, ComputeSeconds and
	// TrainBudgetSeconds are read; a nested Norm is ignored.
	Norm *Resources
}

// PriceRBs returns the R the radio term is normalized by.
func (r Resources) PriceRBs() int {
	if r.Norm != nil && r.Norm.RBs > 0 {
		return r.Norm.RBs
	}
	return r.RBs
}

// PriceComputeSeconds returns the C the inference term is normalized by.
func (r Resources) PriceComputeSeconds() float64 {
	if r.Norm != nil && r.Norm.ComputeSeconds > 0 {
		return r.Norm.ComputeSeconds
	}
	return r.ComputeSeconds
}

// PriceTrainBudgetSeconds returns the Ct the training term is normalized by.
func (r Resources) PriceTrainBudgetSeconds() float64 {
	if r.Norm != nil && r.Norm.TrainBudgetSeconds > 0 {
		return r.Norm.TrainBudgetSeconds
	}
	return r.TrainBudgetSeconds
}

// Instance is a complete DOT problem.
type Instance struct {
	// Tasks requested for admission, in any order (solvers process them
	// by descending priority).
	Tasks []Task
	// Blocks is the catalog of all blocks referenced by any path.
	Blocks map[string]BlockSpec
	// Res is the resource pool.
	Res Resources
	// Alpha weights admission against resource cost in the objective.
	Alpha float64
	// Predeployed marks blocks already active at the edge from earlier
	// admission rounds: their memory and training costs are zero for
	// this instance (incremental mode, Sec. III-B remark).
	Predeployed map[string]bool
}

// Validate checks structural consistency of the instance.
func (in *Instance) Validate() error {
	if len(in.Tasks) == 0 {
		return fmt.Errorf("%w: no tasks", ErrModel)
	}
	if in.Alpha < 0 || in.Alpha > 1 {
		return fmt.Errorf("%w: alpha %v outside [0,1]", ErrModel, in.Alpha)
	}
	if in.Res.Capacity == nil {
		return fmt.Errorf("%w: nil capacity model", ErrModel)
	}
	if in.Res.RBs < 0 || in.Res.ComputeSeconds < 0 || in.Res.MemoryGB < 0 {
		return fmt.Errorf("%w: negative resource capacity", ErrModel)
	}
	if in.Res.TrainBudgetSeconds <= 0 {
		return fmt.Errorf("%w: train budget must be positive (it normalizes the objective)", ErrModel)
	}
	seen := make(map[string]bool, len(in.Tasks))
	for i, t := range in.Tasks {
		if t.ID == "" {
			return fmt.Errorf("%w: task %d has empty ID", ErrModel, i)
		}
		if seen[t.ID] {
			return fmt.Errorf("%w: duplicate task ID %q", ErrModel, t.ID)
		}
		seen[t.ID] = true
		if err := in.validateTask(&t); err != nil {
			return err
		}
	}
	for id, b := range in.Blocks {
		if b.ID != id {
			return fmt.Errorf("%w: block map key %q does not match ID %q", ErrModel, id, b.ID)
		}
		if b.ComputeSeconds < 0 || b.MemoryGB < 0 || b.TrainSeconds < 0 {
			return fmt.Errorf("%w: block %s has negative cost", ErrModel, id)
		}
	}
	return nil
}

// validateTask checks one task's fields and path/block references against
// the instance catalog (the per-task half of Validate, also applied to
// tasks added to a SolverSession through a delta).
func (in *Instance) validateTask(t *Task) error {
	if t.Priority < 0 || t.Priority > 1 {
		return fmt.Errorf("%w: task %s priority %v outside [0,1]", ErrModel, t.ID, t.Priority)
	}
	if t.Rate <= 0 {
		return fmt.Errorf("%w: task %s rate %v must be positive", ErrModel, t.ID, t.Rate)
	}
	if t.MaxLatency <= 0 {
		return fmt.Errorf("%w: task %s latency bound %v must be positive", ErrModel, t.ID, t.MaxLatency)
	}
	if t.InputBits <= 0 {
		return fmt.Errorf("%w: task %s input bits %v must be positive", ErrModel, t.ID, t.InputBits)
	}
	for _, p := range t.Paths {
		if len(p.Blocks) == 0 {
			return fmt.Errorf("%w: task %s path %s has no blocks", ErrModel, t.ID, p.ID)
		}
		for _, b := range p.Blocks {
			if _, ok := in.Blocks[b]; !ok {
				return fmt.Errorf("%w: task %s path %s references unknown block %q", ErrModel, t.ID, p.ID, b)
			}
		}
	}
	return nil
}

// PathCompute returns the processing component Σ c(s) of a path.
func (in *Instance) PathCompute(p *PathSpec) float64 {
	t := 0.0
	for _, id := range p.Blocks {
		t += in.Blocks[id].ComputeSeconds
	}
	return t
}

// BlockMemoryGB returns µ(s), honoring predeployment.
func (in *Instance) BlockMemoryGB(id string) float64 {
	if in.Predeployed[id] {
		return 0
	}
	return in.Blocks[id].MemoryGB
}

// BlockTrainSeconds returns ct(s), honoring predeployment.
func (in *Instance) BlockTrainSeconds(id string) float64 {
	if in.Predeployed[id] {
		return 0
	}
	return in.Blocks[id].TrainSeconds
}

// Assignment is the per-task part of a solution.
type Assignment struct {
	// TaskID names the task.
	TaskID string
	// Path is the selected execution (nil when the task is rejected).
	Path *PathSpec
	// Quality is the selected input-quality level; nil means full
	// quality (the task's InputBits).
	Quality *QualityLevel
	// Z is the admitted fraction of the request rate.
	Z float64
	// RBs is r_τ, the slice size allocated to the task.
	RBs int
}

// Bits returns β(q) for the assignment's quality level, defaulting to the
// task's full-quality input size.
func (a Assignment) Bits(task *Task) float64 {
	if a.Quality != nil {
		return a.Quality.Bits
	}
	return task.InputBits
}

// Accuracy returns a_τ(q, π): the path accuracy minus the quality
// penalty. It returns 0 when no path is selected.
func (a Assignment) Accuracy() float64 {
	if a.Path == nil {
		return 0
	}
	acc := a.Path.Accuracy
	if a.Quality != nil {
		acc -= a.Quality.AccuracyDelta
	}
	return acc
}

// Admitted reports whether any fraction of the task was admitted.
func (a Assignment) Admitted() bool { return a.Z > 0 && a.Path != nil }

// Solution is a complete DOT assignment with its cost breakdown.
type Solution struct {
	// Assignments are parallel to Instance.Tasks.
	Assignments []Assignment
	// Cost is the DOT objective (1a).
	Cost float64
	// Breakdown of the objective and resource usage.
	Breakdown Breakdown
	// Runtime of the solver call.
	Runtime time.Duration
	// Tier records which solver produced the solution (heuristic,
	// optimal, approx). Zero (TierAuto) on solutions from custom solver
	// callbacks that predate the tiered API.
	Tier Tier
	// Shards is the number of priority-band shards the weighted tree was
	// split into; 0 or 1 means the solve was unsharded.
	Shards int
	// Stats carries search statistics for the optimal tier, nil
	// otherwise.
	Stats *OptimalStats
}

// Breakdown decomposes the objective value and records resource usage —
// the quantities Figs. 7, 8 and 10 plot.
type Breakdown struct {
	// AdmissionTerm is Σ α(1−z)p.
	AdmissionTerm float64
	// TrainTerm is (1−α)·Σ_{active s} ct(s)/Ct.
	TrainTerm float64
	// RadioTerm is (1−α)·Σ zλ r/R.
	RadioTerm float64
	// InferTerm is (1−α)·Σ zλ c(π)/C.
	InferTerm float64
	// WeightedAdmission is Σ z·p (Fig. 8 left metric).
	WeightedAdmission float64
	// MemoryGB is the total deployed memory of active blocks.
	MemoryGB float64
	// RBsAllocated is Σ z·r (constraint (1d) usage).
	RBsAllocated float64
	// ComputeUsage is Σ zλ c(π) in seconds per second (constraint (1c)).
	ComputeUsage float64
	// TrainSeconds is Σ_{active s} ct(s).
	TrainSeconds float64
	// ActiveBlocks are the distinct blocks used by admitted tasks.
	ActiveBlocks []string
	// AdmittedTasks counts tasks with z > 0.
	AdmittedTasks int
	// FullyAdmittedTasks counts tasks with z ≈ 1.
	FullyAdmittedTasks int
}
