package core

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"
)

// CliqueOrder selects how vertices are ordered within each clique — the
// design choice behind OffloaDNN's first-branch rule. OrderCompute is the
// paper's design; the others exist for the ablation study.
type CliqueOrder int

// Clique orderings.
const (
	// OrderCompute sorts by ascending inference compute time (paper
	// design), with train/memory/bits tie-breaks.
	OrderCompute CliqueOrder = iota + 1
	// OrderMemory sorts by ascending path memory footprint.
	OrderMemory
	// OrderAccuracy sorts by descending attained accuracy (a
	// quality-first strawman).
	OrderAccuracy
	// OrderNone keeps catalog order (no sorting).
	OrderNone
)

// String implements fmt.Stringer.
func (o CliqueOrder) String() string {
	switch o {
	case OrderCompute:
		return "compute"
	case OrderMemory:
		return "memory"
	case OrderAccuracy:
		return "accuracy"
	case OrderNone:
		return "none"
	default:
		return fmt.Sprintf("order(%d)", int(o))
	}
}

// HeuristicConfig parameterizes OffloaDNN variants for ablation.
type HeuristicConfig struct {
	// Order is the clique ordering (default OrderCompute).
	Order CliqueOrder
	// BinaryAdmission restricts z to {0,1}: greedy full admission in
	// priority order, skipping tasks that do not fit — an OffloaDNN
	// variant with SEM-O-RAN-style all-or-nothing admission.
	BinaryAdmission bool
}

// SolveOffloaDNNConfigured runs the OffloaDNN heuristic under an ablation
// configuration. SolveOffloaDNN is equivalent to the zero-value default
// (compute ordering, fractional admission).
func SolveOffloaDNNConfigured(in *Instance, cfg HeuristicConfig) (*Solution, error) {
	return SolveOffloaDNNConfiguredCtx(context.Background(), in, cfg)
}

// SolveOffloaDNNConfiguredCtx is SolveOffloaDNNConfigured with
// cancellation checked between tree layers of the first-branch walk.
func SolveOffloaDNNConfiguredCtx(ctx context.Context, in *Instance, cfg HeuristicConfig) (*Solution, error) {
	start := time.Now()
	if cfg.Order == 0 {
		cfg.Order = OrderCompute
	}
	tree, err := buildTreeCtx(ctx, in)
	if err != nil {
		return nil, err
	}
	reorderCliques(tree, cfg.Order)

	state := newBranchState(in)
	chosen := make([]Vertex, 0, len(tree.Layers))
	for _, clique := range tree.Layers {
		if err := ctxErr(ctx); err != nil {
			return nil, err
		}
		picked := false
		for _, v := range clique.Vertices {
			mem := state.push(v)
			if mem <= in.Res.MemoryGB+1e-12 {
				chosen = append(chosen, v)
				picked = true
				break
			}
			state.pop()
		}
		if !picked {
			return nil, fmt.Errorf("%w: no vertex fits the memory budget", ErrNoFeasiblePath)
		}
	}
	assignments, err := tree.assignmentsFor(chosen)
	if err != nil {
		return nil, err
	}
	if cfg.BinaryAdmission {
		err = in.optimizeBinaryAllocation(assignments)
	} else {
		err = in.optimizeAllocation(ctx, assignments, nil)
	}
	if err != nil {
		return nil, err
	}
	sol, err := in.newSolution(assignments, time.Since(start))
	if err != nil {
		return nil, err
	}
	sol.Tier = TierHeuristic
	return sol, nil
}

// reorderCliques re-sorts each clique per the requested order, keeping
// the reject vertex last.
func reorderCliques(t *Tree, order CliqueOrder) {
	if order == OrderCompute {
		return // BuildTree's default
	}
	for li := range t.Layers {
		vs := t.Layers[li].Vertices
		real := vs[:len(vs)-1] // trailing reject vertex stays last
		switch order {
		case OrderMemory:
			sort.SliceStable(real, func(a, b int) bool {
				if real[a].Memory != real[b].Memory {
					return real[a].Memory < real[b].Memory
				}
				return real[a].Compute < real[b].Compute
			})
		case OrderAccuracy:
			sort.SliceStable(real, func(a, b int) bool {
				accA := real[a].Path.Accuracy
				accB := real[b].Path.Accuracy
				if real[a].Quality != nil {
					accA -= real[a].Quality.AccuracyDelta
				}
				if real[b].Quality != nil {
					accB -= real[b].Quality.AccuracyDelta
				}
				return accA > accB
			})
		case OrderNone:
			// Undo BuildTree's sort: restore catalog order (path index,
			// then quality index). Paths are compared by pointer position
			// within the task's slice.
			ti := t.Layers[li].TaskIndex
			task := &t.inst.Tasks[ti]
			pos := make(map[*PathSpec]int, len(task.Paths))
			for pi := range task.Paths {
				pos[&task.Paths[pi]] = pi
			}
			sort.SliceStable(real, func(a, b int) bool {
				return pos[real[a].Path] < pos[real[b].Path]
			})
		}
	}
}

// optimizeBinaryAllocation is the all-or-nothing allocator: tasks are
// considered in descending priority; each is admitted at z = 1 with its
// minimal feasible slice if the remaining compute and RB budgets allow,
// else rejected outright.
func (in *Instance) optimizeBinaryAllocation(assignments []Assignment) error {
	order := make([]int, len(assignments))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return in.Tasks[order[a]].Priority > in.Tasks[order[b]].Priority
	})
	remainingCompute := in.Res.ComputeSeconds
	remainingRBs := in.Res.RBs
	for _, i := range order {
		a := &assignments[i]
		a.Z = 0
		a.RBs = 0
		if a.Path == nil {
			continue
		}
		task := &in.Tasks[i]
		b := in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
		if b <= 0 {
			continue
		}
		cPath := in.PathCompute(a.Path)
		slack := task.MaxLatency.Seconds() - cPath
		if slack <= 0 {
			continue
		}
		bits := a.Bits(task)
		r := int(math.Ceil(bits / (b * slack)))
		if need := int(math.Ceil(task.Rate * bits / b)); need > r {
			r = need
		}
		if r < 1 {
			r = 1
		}
		demand := task.Rate * cPath
		if r > remainingRBs || demand > remainingCompute {
			continue
		}
		remainingRBs -= r
		remainingCompute -= demand
		a.Z = 1
		a.RBs = r
	}
	return nil
}

// PrivatizeBlocks returns a copy of the instance in which every task's
// paths reference task-private copies of their blocks, disabling all
// cross-task sharing — the ablation quantifying what block sharing buys.
// Costs are unchanged; only the sharing structure differs.
func PrivatizeBlocks(in *Instance) *Instance {
	out := &Instance{
		Res:   in.Res,
		Alpha: in.Alpha,
		Tasks: make([]Task, len(in.Tasks)),
	}
	out.Blocks = make(map[string]BlockSpec, len(in.Blocks)*len(in.Tasks))
	if in.Predeployed != nil {
		out.Predeployed = make(map[string]bool, len(in.Predeployed))
	}
	for ti, task := range in.Tasks {
		t := task
		t.Paths = make([]PathSpec, len(task.Paths))
		for pi, p := range task.Paths {
			np := p
			np.Blocks = make([]string, len(p.Blocks))
			for bi, id := range p.Blocks {
				priv := fmt.Sprintf("%s::%s", id, task.ID)
				if _, ok := out.Blocks[priv]; !ok {
					spec := in.Blocks[id]
					spec.ID = priv
					out.Blocks[priv] = spec
					if in.Predeployed[id] {
						out.Predeployed[priv] = true
					}
				}
				np.Blocks[bi] = priv
			}
			t.Paths[pi] = np
		}
		out.Tasks[ti] = t
	}
	return out
}
