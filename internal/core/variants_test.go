package core

import (
	"testing"
	"time"
)

// qualityInstance is testInstance plus a two-level quality ladder on
// every task.
func qualityInstance(nTasks, nPaths int, seed int64) *Instance {
	in := testInstance(nTasks, nPaths, seed)
	for i := range in.Tasks {
		in.Tasks[i].Qualities = []QualityLevel{
			{ID: "q720", Bits: 220e3, AccuracyDelta: 0.015},
			{ID: "q480", Bits: 140e3, AccuracyDelta: 0.05},
		}
	}
	return in
}

func TestQualityLevelsExpandTree(t *testing.T) {
	plain := testInstance(2, 2, 30)
	quality := qualityInstance(2, 2, 30)
	tp, err := BuildTree(plain)
	if err != nil {
		t.Fatal(err)
	}
	tq, err := BuildTree(quality)
	if err != nil {
		t.Fatal(err)
	}
	for li := range tp.Layers {
		np, nq := len(tp.Layers[li].Vertices), len(tq.Layers[li].Vertices)
		if nq <= np {
			t.Fatalf("layer %d: quality ladder did not add vertices (%d vs %d)", li, nq, np)
		}
	}
}

func TestQualityFilteredByAccuracy(t *testing.T) {
	in := qualityInstance(1, 2, 31)
	in.Tasks[0].MinAccuracy = 0.92 // only near-full paths at full quality survive
	tree, err := BuildTree(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range tree.Layers[0].Vertices {
		if v.Reject() {
			continue
		}
		acc := v.Path.Accuracy
		if v.Quality != nil {
			acc -= v.Quality.AccuracyDelta
		}
		if acc < in.Tasks[0].MinAccuracy {
			t.Fatalf("vertex with accuracy %v kept despite floor %v", acc, in.Tasks[0].MinAccuracy)
		}
	}
}

func TestQualityAdaptationSavesRBs(t *testing.T) {
	plain := testInstance(4, 2, 32)
	quality := qualityInstance(4, 2, 32)
	sp, err := SolveOffloaDNN(plain)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := SolveOffloaDNN(quality)
	if err != nil {
		t.Fatal(err)
	}
	if err := quality.Check(sq.Assignments); err != nil {
		t.Fatalf("quality solution infeasible: %v", err)
	}
	if sq.Breakdown.RBsAllocated >= sp.Breakdown.RBsAllocated {
		t.Fatalf("quality ladder did not reduce RBs: %v vs %v",
			sq.Breakdown.RBsAllocated, sp.Breakdown.RBsAllocated)
	}
	// Every accuracy floor is still honored (Check covers it; assert a
	// reduced-quality assignment actually exists).
	reduced := 0
	for _, a := range sq.Assignments {
		if a.Quality != nil {
			reduced++
		}
	}
	if reduced == 0 {
		t.Fatal("no task selected a reduced quality level")
	}
}

func TestQualityLatencyUsesSelectedBits(t *testing.T) {
	in := qualityInstance(1, 1, 33)
	sol, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	a := sol.Assignments[0]
	if !a.Admitted() {
		t.Fatal("task rejected")
	}
	lat, err := in.EndToEndLatency(&in.Tasks[0], a)
	if err != nil {
		t.Fatal(err)
	}
	// Recompute by hand from the assignment's bits.
	b := in.Res.Capacity.BitsPerRBPerSecond(in.Tasks[0].SNRdB)
	want := a.Bits(&in.Tasks[0])/(b*float64(a.RBs)) + in.PathCompute(a.Path)
	got := lat.Seconds()
	if diff := got - want; diff < -1e-9 || diff > 1e-9 {
		t.Fatalf("latency %v, want %v", got, want)
	}
}

func TestOptimalWithQualityNoWorse(t *testing.T) {
	in := qualityInstance(2, 2, 34)
	h, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	o, _, err := SolveOptimal(in)
	if err != nil {
		t.Fatal(err)
	}
	if o.Cost > h.Cost+1e-9 {
		t.Fatalf("optimal %v worse than heuristic %v with quality levels", o.Cost, h.Cost)
	}
	if err := in.Check(o.Assignments); err != nil {
		t.Fatal(err)
	}
}

func TestCliqueOrderVariantsAllFeasible(t *testing.T) {
	in := testInstance(4, 3, 35)
	for _, order := range []CliqueOrder{OrderCompute, OrderMemory, OrderAccuracy, OrderNone} {
		sol, err := SolveOffloaDNNConfigured(in, HeuristicConfig{Order: order})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if err := in.Check(sol.Assignments); err != nil {
			t.Fatalf("order %v: infeasible: %v", order, err)
		}
	}
}

func TestComputeOrderMinimizesInferenceUsage(t *testing.T) {
	// The design claim behind Fig. 8 (right): compute-sorted cliques give
	// the lowest inference compute usage among the orderings.
	in := testInstance(5, 4, 36)
	base, err := SolveOffloaDNNConfigured(in, HeuristicConfig{Order: OrderCompute})
	if err != nil {
		t.Fatal(err)
	}
	for _, order := range []CliqueOrder{OrderMemory, OrderAccuracy, OrderNone} {
		sol, err := SolveOffloaDNNConfigured(in, HeuristicConfig{Order: order})
		if err != nil {
			t.Fatalf("order %v: %v", order, err)
		}
		if base.Breakdown.ComputeUsage > sol.Breakdown.ComputeUsage+1e-9 {
			t.Fatalf("compute ordering used more inference compute (%v) than %v ordering (%v)",
				base.Breakdown.ComputeUsage, order, sol.Breakdown.ComputeUsage)
		}
	}
}

func TestBinaryAdmissionNeverFractional(t *testing.T) {
	in := testInstance(5, 3, 37)
	in.Res.RBs = 20 // pressure forces shedding
	sol, err := SolveOffloaDNNConfigured(in, HeuristicConfig{BinaryAdmission: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := in.Check(sol.Assignments); err != nil {
		t.Fatalf("binary solution infeasible: %v", err)
	}
	for _, a := range sol.Assignments {
		if a.Z != 0 && a.Z != 1 {
			t.Fatalf("binary admission produced fractional z=%v", a.Z)
		}
	}
	// Fractional admission is at least as good on weighted admission.
	frac, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	if frac.Breakdown.WeightedAdmission < sol.Breakdown.WeightedAdmission-1e-9 {
		t.Fatalf("fractional admission %v below binary %v",
			frac.Breakdown.WeightedAdmission, sol.Breakdown.WeightedAdmission)
	}
}

func TestPrivatizeBlocksDisablesSharing(t *testing.T) {
	in := testInstance(4, 2, 38)
	priv := PrivatizeBlocks(in)
	if err := priv.Validate(); err != nil {
		t.Fatalf("privatized instance invalid: %v", err)
	}
	shared, err := SolveOffloaDNN(in)
	if err != nil {
		t.Fatal(err)
	}
	unshared, err := SolveOffloaDNN(priv)
	if err != nil {
		t.Fatal(err)
	}
	if err := priv.Check(unshared.Assignments); err != nil {
		t.Fatalf("unshared solution infeasible: %v", err)
	}
	if unshared.Breakdown.MemoryGB <= shared.Breakdown.MemoryGB {
		t.Fatalf("privatizing blocks did not increase memory: %v vs %v",
			unshared.Breakdown.MemoryGB, shared.Breakdown.MemoryGB)
	}
	// No block ID is used by two tasks.
	owner := map[string]string{}
	for _, task := range priv.Tasks {
		for _, p := range task.Paths {
			for _, id := range p.Blocks {
				if prev, ok := owner[id]; ok && prev != task.ID {
					t.Fatalf("privatized block %s used by %s and %s", id, prev, task.ID)
				}
				owner[id] = task.ID
			}
		}
	}
}

func TestPrivatizePreservesPredeployment(t *testing.T) {
	in := testInstance(2, 2, 39)
	in.Predeployed = map[string]bool{"base/stage1": true}
	priv := PrivatizeBlocks(in)
	found := false
	for id := range priv.Predeployed {
		if priv.Blocks[id].ID != id {
			t.Fatalf("predeployed block %s not in catalog", id)
		}
		found = true
	}
	if !found {
		t.Fatal("predeployment did not carry over")
	}
}

func TestVariantsRuntimeComparable(t *testing.T) {
	in := testInstance(3, 3, 40)
	sol, err := SolveOffloaDNNConfigured(in, HeuristicConfig{Order: OrderMemory})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Runtime <= 0 || sol.Runtime > time.Second {
		t.Fatalf("variant runtime %v implausible", sol.Runtime)
	}
}
