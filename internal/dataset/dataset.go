// Package dataset generates the synthetic structured image data standing
// in for the paper's ImageNet subset (Table II: 60 base categories in 5
// groups) and the novel-task classes of the motivation experiments
// ("mushroom" for groceries, "electric guitar" for musical instruments).
//
// Images are built from two feature levels mirroring the transfer-learning
// property the paper exploits: a *group-level* low-frequency texture
// shared by all categories in a group (the "low-level features" early DNN
// layers learn) and a *category-level* arrangement of high-frequency
// shapes (the "high-level features" of late layers), plus Gaussian pixel
// noise. Networks pre-trained on the base categories therefore transfer
// their early layers to novel categories, which is exactly what CONFIG
// B–E rely on.
package dataset

import (
	"fmt"
	"math"
	"math/rand"

	"offloadnn/internal/tensor"
)

// Category is one object class.
type Category struct {
	// ID is the class index used as the training label.
	ID int
	// Name is a human-readable class name.
	Name string
	// Group is the Table-II object group the class belongs to.
	Group string
}

// Table II group sizes: 12 vehicles, 18 wild animals, 10 snakes, 6 cats,
// 14 household objects — 60 categories total.
var tableIIGroups = []struct {
	group string
	count int
}{
	{"vehicle", 12},
	{"wild-animal", 18},
	{"snake", 10},
	{"cat", 6},
	{"household", 14},
}

// BaseCategories returns the 60 base categories of Table II.
func BaseCategories() []Category {
	var out []Category
	id := 0
	for _, g := range tableIIGroups {
		for i := 0; i < g.count; i++ {
			out = append(out, Category{
				ID:    id,
				Name:  fmt.Sprintf("%s-%02d", g.group, i+1),
				Group: g.group,
			})
			id++
		}
	}
	return out
}

// NovelCategory appends a new class (e.g., the paper's grocery "mushroom"
// or musical-instrument "electric guitar") after the given existing set.
func NovelCategory(existing []Category, name, group string) Category {
	return Category{ID: len(existing), Name: name, Group: group}
}

// groupSeed hashes a group name to a deterministic texture seed.
func groupSeed(group string) int64 {
	var h int64 = 1469598103934665603
	for _, c := range group {
		h ^= int64(c)
		h *= 1099511628211
	}
	if h < 0 {
		h = -h
	}
	return h
}

// Generator synthesizes images for categories.
type Generator struct {
	// ImageSize is the square image side (pixels).
	ImageSize int
	// Noise is the Gaussian pixel-noise standard deviation.
	Noise float64
}

// DefaultGenerator returns the test-scale generator (16×16 RGB, moderate
// noise).
func DefaultGenerator() Generator {
	return Generator{ImageSize: 16, Noise: 0.25}
}

// Sample draws one image of the category as a (3, S, S) tensor.
func (g Generator) Sample(cat Category, rng *rand.Rand) *tensor.Tensor {
	s := g.ImageSize
	img := tensor.New(3, s, s)
	grng := rand.New(rand.NewSource(groupSeed(cat.Group)))
	// Group texture: fixed orientation/frequency grating per channel.
	var theta, freq [3]float64
	var tint [3]float64
	for c := 0; c < 3; c++ {
		theta[c] = grng.Float64() * math.Pi
		freq[c] = 0.5 + grng.Float64()*1.5
		tint[c] = 0.3 + grng.Float64()*0.4
	}
	// Category blobs: deterministic layout from the category identity.
	crng := rand.New(rand.NewSource(groupSeed(cat.Group)*31 + int64(cat.ID)*977 + 7))
	const nBlobs = 3
	var bx, by, br, bv [nBlobs]float64
	var bc [nBlobs]int
	for i := 0; i < nBlobs; i++ {
		bx[i] = crng.Float64() * float64(s)
		by[i] = crng.Float64() * float64(s)
		br[i] = 1.5 + crng.Float64()*float64(s)/5
		bv[i] = 0.8 + crng.Float64()*0.8
		bc[i] = crng.Intn(3)
	}
	// Per-sample jitter: small random translation of the blob layout.
	jx := (rng.Float64() - 0.5) * 2
	jy := (rng.Float64() - 0.5) * 2

	for c := 0; c < 3; c++ {
		st, ct := math.Sincos(theta[c])
		for y := 0; y < s; y++ {
			for x := 0; x < s; x++ {
				u := (float64(x)*ct + float64(y)*st) * freq[c] * 2 * math.Pi / float64(s)
				v := tint[c] * math.Sin(u)
				for i := 0; i < nBlobs; i++ {
					if bc[i] != c {
						continue
					}
					dx := float64(x) - bx[i] - jx
					dy := float64(y) - by[i] - jy
					v += bv[i] * math.Exp(-(dx*dx+dy*dy)/(2*br[i]*br[i]))
				}
				v += rng.NormFloat64() * g.Noise
				img.Set(v, c, y, x)
			}
		}
	}
	return img
}

// Split holds a labeled train/test partition over a category set.
type Split struct {
	Categories []Category
	TrainX     []*tensor.Tensor
	TrainY     []int
	TestX      []*tensor.Tensor
	TestY      []int
}

// NumClasses returns the number of categories in the split.
func (s *Split) NumClasses() int { return len(s.Categories) }

// Generate builds a split with perClassTrain training and perClassTest
// test images per category, deterministically from the seed.
func Generate(g Generator, cats []Category, perClassTrain, perClassTest int, seed int64) *Split {
	rng := rand.New(rand.NewSource(seed))
	sp := &Split{Categories: append([]Category(nil), cats...)}
	for _, cat := range cats {
		for i := 0; i < perClassTrain; i++ {
			sp.TrainX = append(sp.TrainX, g.Sample(cat, rng))
			sp.TrainY = append(sp.TrainY, cat.ID)
		}
		for i := 0; i < perClassTest; i++ {
			sp.TestX = append(sp.TestX, g.Sample(cat, rng))
			sp.TestY = append(sp.TestY, cat.ID)
		}
	}
	return sp
}

// Batch stacks the given example indices of the training set into an
// (N, 3, S, S) tensor and a label slice.
func (s *Split) Batch(indices []int) (*tensor.Tensor, []int, error) {
	return stack(s.TrainX, s.TrainY, indices)
}

// TestBatch stacks test-set examples.
func (s *Split) TestBatch(indices []int) (*tensor.Tensor, []int, error) {
	return stack(s.TestX, s.TestY, indices)
}

func stack(xs []*tensor.Tensor, ys []int, indices []int) (*tensor.Tensor, []int, error) {
	if len(indices) == 0 {
		return nil, nil, fmt.Errorf("dataset: empty batch")
	}
	for _, idx := range indices {
		if idx < 0 || idx >= len(xs) {
			return nil, nil, fmt.Errorf("dataset: index %d out of range [0,%d)", idx, len(xs))
		}
	}
	shape := xs[indices[0]].Shape()
	out := tensor.New(append([]int{len(indices)}, shape...)...)
	labels := make([]int, len(indices))
	per := xs[indices[0]].Len()
	for i, idx := range indices {
		if idx < 0 || idx >= len(xs) {
			return nil, nil, fmt.Errorf("dataset: index %d out of range [0,%d)", idx, len(xs))
		}
		copy(out.Data()[i*per:(i+1)*per], xs[idx].Data())
		labels[i] = ys[idx]
	}
	return out, labels, nil
}

// Shuffle returns a permutation of [0,n) drawn from rng.
func Shuffle(n int, rng *rand.Rand) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	rng.Shuffle(n, func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	return idx
}
