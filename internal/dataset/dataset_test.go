package dataset

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBaseCategoriesMatchTableII(t *testing.T) {
	cats := BaseCategories()
	if len(cats) != 60 {
		t.Fatalf("got %d base categories, want 60", len(cats))
	}
	counts := map[string]int{}
	for i, c := range cats {
		if c.ID != i {
			t.Fatalf("category %d has ID %d", i, c.ID)
		}
		counts[c.Group]++
	}
	want := map[string]int{
		"vehicle": 12, "wild-animal": 18, "snake": 10, "cat": 6, "household": 14,
	}
	for g, n := range want {
		if counts[g] != n {
			t.Fatalf("group %s has %d categories, want %d", g, counts[g], n)
		}
	}
}

func TestNovelCategoryGetsNextID(t *testing.T) {
	cats := BaseCategories()
	novel := NovelCategory(cats, "mushroom", "grocery")
	if novel.ID != 60 {
		t.Fatalf("novel ID %d, want 60", novel.ID)
	}
	if novel.Name != "mushroom" || novel.Group != "grocery" {
		t.Fatalf("novel = %+v", novel)
	}
}

func TestSampleShapeAndDeterminism(t *testing.T) {
	g := DefaultGenerator()
	cat := BaseCategories()[0]
	x1 := g.Sample(cat, rand.New(rand.NewSource(1)))
	x2 := g.Sample(cat, rand.New(rand.NewSource(1)))
	if x1.Rank() != 3 || x1.Dim(0) != 3 || x1.Dim(1) != 16 || x1.Dim(2) != 16 {
		t.Fatalf("sample shape %v, want [3 16 16]", x1.Shape())
	}
	for i := range x1.Data() {
		if x1.Data()[i] != x2.Data()[i] {
			t.Fatal("same seed produced different images")
		}
	}
	x3 := g.Sample(cat, rand.New(rand.NewSource(2)))
	same := true
	for i := range x1.Data() {
		if x1.Data()[i] != x3.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical images (no jitter/noise)")
	}
}

func TestSameGroupSharesTexture(t *testing.T) {
	// Two categories of the same group must be more similar (in expectation)
	// than two categories of different groups: the shared low-level grating
	// dominates the pixel correlation.
	g := Generator{ImageSize: 16, Noise: 0.0}
	cats := BaseCategories()
	veh1, veh2 := cats[0], cats[1] // both vehicles
	var snake Category
	for _, c := range cats {
		if c.Group == "snake" {
			snake = c
			break
		}
	}
	rng := rand.New(rand.NewSource(3))
	a := g.Sample(veh1, rng)
	b := g.Sample(veh2, rng)
	c := g.Sample(snake, rng)
	distSame := 0.0
	distDiff := 0.0
	for i := range a.Data() {
		distSame += math.Abs(a.Data()[i] - b.Data()[i])
		distDiff += math.Abs(a.Data()[i] - c.Data()[i])
	}
	if distSame >= distDiff {
		t.Fatalf("same-group distance %v >= cross-group %v", distSame, distDiff)
	}
}

func TestGenerateSplitSizes(t *testing.T) {
	cats := BaseCategories()[:5]
	sp := Generate(DefaultGenerator(), cats, 4, 2, 7)
	if len(sp.TrainX) != 20 || len(sp.TrainY) != 20 {
		t.Fatalf("train size %d, want 20", len(sp.TrainX))
	}
	if len(sp.TestX) != 10 {
		t.Fatalf("test size %d, want 10", len(sp.TestX))
	}
	if sp.NumClasses() != 5 {
		t.Fatalf("NumClasses = %d, want 5", sp.NumClasses())
	}
	counts := map[int]int{}
	for _, y := range sp.TrainY {
		counts[y]++
	}
	for _, c := range cats {
		if counts[c.ID] != 4 {
			t.Fatalf("class %d has %d train examples, want 4", c.ID, counts[c.ID])
		}
	}
}

func TestBatchStacksImages(t *testing.T) {
	cats := BaseCategories()[:2]
	sp := Generate(DefaultGenerator(), cats, 3, 1, 8)
	x, y, err := sp.Batch([]int{0, 4})
	if err != nil {
		t.Fatal(err)
	}
	if x.Dim(0) != 2 || x.Dim(1) != 3 {
		t.Fatalf("batch shape %v", x.Shape())
	}
	if y[0] != sp.TrainY[0] || y[1] != sp.TrainY[4] {
		t.Fatalf("labels %v", y)
	}
	per := sp.TrainX[0].Len()
	for i := 0; i < per; i++ {
		if x.Data()[i] != sp.TrainX[0].Data()[i] {
			t.Fatal("batch data mismatch")
		}
	}
}

func TestBatchErrors(t *testing.T) {
	cats := BaseCategories()[:1]
	sp := Generate(DefaultGenerator(), cats, 2, 1, 9)
	if _, _, err := sp.Batch(nil); err == nil {
		t.Fatal("empty batch should error")
	}
	if _, _, err := sp.Batch([]int{99}); err == nil {
		t.Fatal("out-of-range index should error")
	}
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(50)
		p := Shuffle(n, rng)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
