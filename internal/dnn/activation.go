package dnn

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
)

// Activation envelope: the wire format of a mid-path boundary
// activation handed from one segment's node to the next. It mirrors the
// .dnnw weight artifact's layout —
//
//	[8]  magic "ODNNACT1"
//	[4]  uint32 LE manifest length
//	[M]  manifest JSON (routing, shape, deadline budget, hop trail)
//	[W]  raw activation: little-endian float64, one frame
//
// — so both sides reuse the same primitive codec. The payload is always
// float64, the inter-block interchange format, which is what makes a
// split path bit-identical to the whole one: the receiver resumes from
// exactly the values the sender's last block produced.

const activationMagic = "ODNNACT1"

// maxActivationManifest bounds the manifest a receiver will parse.
const maxActivationManifest = 1 << 20

// ActivationHop is one completed hop's accounting, accumulated in the
// envelope as the activation travels so the tail node can report the
// full per-hop breakdown to the client.
type ActivationHop struct {
	Node            string  `json:"node"`
	LatencyMS       float64 `json:"latency_ms"`
	ActivationBytes int     `json:"activation_bytes,omitempty"`
}

// ActivationManifest routes a boundary activation to the segment that
// consumes it and carries the remaining deadline budget across the hop.
type ActivationManifest struct {
	// Task and Path identify the split plan the activation belongs to.
	Task string `json:"task"`
	Path string `json:"path"`
	// From is the stage index (0-based into the path's block list) the
	// receiving segment resumes at; it must match the receiver's
	// installed stage range.
	From int `json:"from"`
	// Shape is the activation's (C, H, W).
	Shape [3]int `json:"shape"`
	// RemainingMS is the deadline budget left when the sender emitted
	// the envelope; zero means the request carries no deadline, and the
	// receiver rejects negative budgets instead of doing work the client
	// will never accept.
	RemainingMS float64 `json:"remaining_ms"`
	// BudgetMS is the original end-to-end budget, for reporting.
	BudgetMS float64 `json:"budget_ms,omitempty"`
	// Hops is the trail of completed hops, oldest first.
	Hops []ActivationHop `json:"hops,omitempty"`
}

// EncodeActivation writes one frame's boundary activation as an
// envelope.
func EncodeActivation(w io.Writer, man ActivationManifest, data []float64) error {
	if n := man.Shape[0] * man.Shape[1] * man.Shape[2]; n != len(data) {
		return fmt.Errorf("dnn: activation encode: shape %v wants %d elems, have %d", man.Shape, n, len(data))
	}
	manJSON, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("dnn: activation encode: %w", err)
	}
	if _, err := io.WriteString(w, activationMagic); err != nil {
		return fmt.Errorf("dnn: activation encode: %w", err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(manJSON)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("dnn: activation encode: %w", err)
	}
	if _, err := w.Write(manJSON); err != nil {
		return fmt.Errorf("dnn: activation encode: %w", err)
	}
	if _, err := w.Write(f64Bytes(data)); err != nil {
		return fmt.Errorf("dnn: activation encode: %w", err)
	}
	return nil
}

// DecodeActivation reads one envelope, validating the magic and that
// the payload matches the manifest's shape.
func DecodeActivation(r io.Reader) (ActivationManifest, []float64, error) {
	var man ActivationManifest
	header := make([]byte, len(activationMagic)+4)
	if _, err := io.ReadFull(r, header); err != nil {
		return man, nil, fmt.Errorf("dnn: activation decode: header: %w", err)
	}
	if string(header[:len(activationMagic)]) != activationMagic {
		return man, nil, fmt.Errorf("dnn: activation decode: bad magic %q", header[:len(activationMagic)])
	}
	manLen := binary.LittleEndian.Uint32(header[len(activationMagic):])
	if manLen > maxActivationManifest {
		return man, nil, fmt.Errorf("dnn: activation decode: manifest of %d bytes exceeds cap", manLen)
	}
	manJSON := make([]byte, manLen)
	if _, err := io.ReadFull(r, manJSON); err != nil {
		return man, nil, fmt.Errorf("dnn: activation decode: manifest: %w", err)
	}
	if err := json.Unmarshal(manJSON, &man); err != nil {
		return man, nil, fmt.Errorf("dnn: activation decode: manifest: %w", err)
	}
	elems := man.Shape[0] * man.Shape[1] * man.Shape[2]
	if elems <= 0 {
		return man, nil, fmt.Errorf("dnn: activation decode: degenerate shape %v", man.Shape)
	}
	raw := make([]byte, elems*8)
	if _, err := io.ReadFull(r, raw); err != nil {
		return man, nil, fmt.Errorf("dnn: activation decode: payload: %w", err)
	}
	return man, bytesF64(raw), nil
}
