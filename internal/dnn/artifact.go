package dnn

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"offloadnn/internal/tensor"
)

// Binary weight artifact: the zero-copy counterpart of the gob codec in
// this file's sibling Save/Load. The layout is
//
//	[8]  magic "ODNNWA1\x00"
//	[4]  uint32 LE manifest length
//	[M]  manifest JSON (structure, tensor refs, per-block SHA-256)
//	[W]  raw weights: little-endian float64, tensors back to back
//
// Every tensor in the manifest is a {off,len} reference into the single
// weights section. LoadArtifact decodes that section into ONE []float64
// buffer and aliases every parameter tensor into it via tensor.FromSlice,
// so installing an epoch's models copies no weight data: blocks shared
// within the artifact alias the same *Block, and all their tensors are
// windows over the one buffer. Per-block SHA-256 checksums over the
// block's weight region reject torn or corrupted artifacts before any
// tensor is built.

const artifactMagic = "ODNNWA1\x00"

type artifactManifest struct {
	Arch        string          `json:"arch"`
	BlockIDs    []string        `json:"block_ids"`
	Blocks      []artifactBlock `json:"blocks"`
	WeightElems int             `json:"weight_elems"`
}

type artifactBlock struct {
	ID         string          `json:"id"`
	Stage      int             `json:"stage"`
	Variant    int             `json:"variant"`
	PruneRatio float64         `json:"prune_ratio,omitempty"`
	Frozen     bool            `json:"frozen,omitempty"`
	Precision  string          `json:"precision,omitempty"`
	WOff       int             `json:"woff"` // block weight region, in f64 elements
	WLen       int             `json:"wlen"`
	SHA256     string          `json:"sha256"` // hex digest of the region's bytes
	Layers     []artifactLayer `json:"layers"`
}

type artifactLayer struct {
	Kind   string          `json:"kind"`
	Name   string          `json:"name"`
	Conv   *artifactConv   `json:"conv,omitempty"`
	BN     *artifactBN     `json:"bn,omitempty"`
	Pool   *artifactPool   `json:"pool,omitempty"`
	Linear *artifactLinear `json:"linear,omitempty"`
	Basic  *artifactBasic  `json:"basic,omitempty"`
}

// artifactRef locates one tensor inside the weights section.
type artifactRef struct {
	Off int `json:"off"`
	Len int `json:"len"`
}

type artifactConv struct {
	In       int          `json:"in"`
	Out      int          `json:"out"`
	Kernel   int          `json:"kernel"`
	Stride   int          `json:"stride"`
	Padding  int          `json:"padding"`
	W        artifactRef  `json:"w"`
	B        *artifactRef `json:"b,omitempty"`
	ActScale float64      `json:"act_scale,omitempty"`
}

type artifactBN struct {
	Channels int         `json:"channels"`
	Gamma    artifactRef `json:"gamma"`
	Beta     artifactRef `json:"beta"`
	Mean     artifactRef `json:"mean"`
	Var      artifactRef `json:"var"`
	Momentum float64     `json:"momentum"`
	Eps      float64     `json:"eps"`
}

type artifactPool struct {
	Kernel  int `json:"kernel"`
	Stride  int `json:"stride"`
	Padding int `json:"padding"`
}

type artifactLinear struct {
	In       int         `json:"in"`
	Out      int         `json:"out"`
	W        artifactRef `json:"w"`
	B        artifactRef `json:"b"`
	ActScale float64     `json:"act_scale,omitempty"`
}

type artifactBasic struct {
	Conv1  *artifactConv `json:"conv1"`
	Conv2  *artifactConv `json:"conv2"`
	Down   *artifactConv `json:"down,omitempty"`
	BN1    *artifactBN   `json:"bn1"`
	BN2    *artifactBN   `json:"bn2"`
	DownBN *artifactBN   `json:"downbn,omitempty"`
}

// artifactWriter accumulates the weights section while the structure walk
// emits refs.
type artifactWriter struct {
	weights []float64
}

func (aw *artifactWriter) add(t *tensor.Tensor) artifactRef {
	off := len(aw.weights)
	aw.weights = append(aw.weights, t.Data()...)
	return artifactRef{Off: off, Len: t.Len()}
}

// SaveArtifact writes the model as a binary weight artifact.
func SaveArtifact(w io.Writer, m *Model) error {
	var aw artifactWriter
	man := artifactManifest{Arch: m.Arch}
	seen := make(map[string]bool, len(m.Blocks))
	for _, b := range m.Blocks {
		man.BlockIDs = append(man.BlockIDs, b.ID)
		if seen[b.ID] {
			continue
		}
		seen[b.ID] = true
		ab, err := encodeArtifactBlock(b, &aw)
		if err != nil {
			return fmt.Errorf("dnn: artifact save block %s: %w", b.ID, err)
		}
		man.Blocks = append(man.Blocks, ab)
	}
	man.WeightElems = len(aw.weights)

	raw := f64Bytes(aw.weights)
	for i := range man.Blocks {
		ab := &man.Blocks[i]
		sum := sha256.Sum256(raw[ab.WOff*8 : (ab.WOff+ab.WLen)*8])
		ab.SHA256 = hex.EncodeToString(sum[:])
	}
	manJSON, err := json.Marshal(man)
	if err != nil {
		return fmt.Errorf("dnn: artifact save %s: %w", m.Arch, err)
	}
	if _, err := io.WriteString(w, artifactMagic); err != nil {
		return fmt.Errorf("dnn: artifact save %s: %w", m.Arch, err)
	}
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(manJSON)))
	if _, err := w.Write(lenBuf[:]); err != nil {
		return fmt.Errorf("dnn: artifact save %s: %w", m.Arch, err)
	}
	if _, err := w.Write(manJSON); err != nil {
		return fmt.Errorf("dnn: artifact save %s: %w", m.Arch, err)
	}
	if _, err := w.Write(raw); err != nil {
		return fmt.Errorf("dnn: artifact save %s: %w", m.Arch, err)
	}
	return nil
}

// LoadArtifact reconstructs a model from a binary weight artifact. All
// parameter tensors alias one shared []float64 buffer (zero weight
// copies); the returned size is the weight section's bytes, which is the
// model's resident weight footprint. Blocks that were aliased in the
// saved model are aliased again.
func LoadArtifact(r io.Reader) (*Model, int64, error) {
	header := make([]byte, len(artifactMagic)+4)
	if _, err := io.ReadFull(r, header); err != nil {
		return nil, 0, fmt.Errorf("dnn: artifact load: header: %w", err)
	}
	if string(header[:len(artifactMagic)]) != artifactMagic {
		return nil, 0, fmt.Errorf("dnn: artifact load: bad magic %q", header[:len(artifactMagic)])
	}
	manLen := binary.LittleEndian.Uint32(header[len(artifactMagic):])
	manJSON := make([]byte, manLen)
	if _, err := io.ReadFull(r, manJSON); err != nil {
		return nil, 0, fmt.Errorf("dnn: artifact load: manifest: %w", err)
	}
	var man artifactManifest
	if err := json.Unmarshal(manJSON, &man); err != nil {
		return nil, 0, fmt.Errorf("dnn: artifact load: manifest: %w", err)
	}
	if man.WeightElems < 0 {
		return nil, 0, fmt.Errorf("dnn: artifact load: negative weight count %d", man.WeightElems)
	}
	raw := make([]byte, man.WeightElems*8)
	if _, err := io.ReadFull(r, raw); err != nil {
		return nil, 0, fmt.Errorf("dnn: artifact load: weights: %w", err)
	}

	// Verify every block's checksum before building anything.
	for _, ab := range man.Blocks {
		if ab.WOff < 0 || ab.WLen < 0 || ab.WOff+ab.WLen > man.WeightElems {
			return nil, 0, fmt.Errorf("dnn: artifact load: block %s region [%d,%d) outside weights",
				ab.ID, ab.WOff, ab.WOff+ab.WLen)
		}
		sum := sha256.Sum256(raw[ab.WOff*8 : (ab.WOff+ab.WLen)*8])
		if hex.EncodeToString(sum[:]) != ab.SHA256 {
			return nil, 0, fmt.Errorf("dnn: artifact load: block %s checksum mismatch", ab.ID)
		}
	}

	// The one shared buffer every tensor below aliases into.
	buf := bytesF64(raw)
	ar := &artifactReader{buf: buf}
	cache := make(map[string]*Block, len(man.Blocks))
	for _, ab := range man.Blocks {
		b, err := decodeArtifactBlock(ab, ar)
		if err != nil {
			return nil, 0, fmt.Errorf("dnn: artifact load block %s: %w", ab.ID, err)
		}
		cache[ab.ID] = b
	}
	m := &Model{Arch: man.Arch}
	for _, id := range man.BlockIDs {
		b, ok := cache[id]
		if !ok {
			return nil, 0, fmt.Errorf("dnn: artifact load: block %q missing from manifest", id)
		}
		m.Blocks = append(m.Blocks, b)
	}
	return m, int64(len(raw)), nil
}

type artifactReader struct {
	buf []float64
}

// alias builds a tensor over the shared buffer without copying.
func (ar *artifactReader) alias(ref artifactRef, shape ...int) (*tensor.Tensor, error) {
	if ref.Off < 0 || ref.Len < 0 || ref.Off+ref.Len > len(ar.buf) {
		return nil, fmt.Errorf("weight ref [%d,%d) outside buffer of %d", ref.Off, ref.Off+ref.Len, len(ar.buf))
	}
	return tensor.FromSlice(ar.buf[ref.Off:ref.Off+ref.Len], shape...)
}

func encodeArtifactBlock(b *Block, aw *artifactWriter) (artifactBlock, error) {
	ab := artifactBlock{
		ID:         b.ID,
		Stage:      b.Stage,
		Variant:    int(b.Variant),
		PruneRatio: b.PruneRatio,
		Frozen:     b.Frozen,
		Precision:  b.precision.String(),
		WOff:       len(aw.weights),
	}
	for _, l := range b.layers {
		al, err := encodeArtifactLayer(l, aw)
		if err != nil {
			return artifactBlock{}, err
		}
		ab.Layers = append(ab.Layers, al)
	}
	ab.WLen = len(aw.weights) - ab.WOff
	return ab, nil
}

func encodeArtifactLayer(l Layer, aw *artifactWriter) (artifactLayer, error) {
	switch v := l.(type) {
	case *ConvLayer:
		return artifactLayer{Kind: "conv", Name: v.name, Conv: encodeArtifactConv(v, aw)}, nil
	case *BatchNormLayer:
		return artifactLayer{Kind: "bn", Name: v.name, BN: encodeArtifactBN(v, aw)}, nil
	case *ReLULayer:
		return artifactLayer{Kind: "relu", Name: v.name}, nil
	case *MaxPoolLayer:
		return artifactLayer{Kind: "maxpool", Name: v.name,
			Pool: &artifactPool{Kernel: v.P.Kernel, Stride: v.P.Stride, Padding: v.P.Padding}}, nil
	case *GlobalAvgPoolLayer:
		return artifactLayer{Kind: "gap", Name: v.name}, nil
	case *LinearLayer:
		return artifactLayer{Kind: "linear", Name: v.name, Linear: &artifactLinear{
			In: v.W.Dim(1), Out: v.W.Dim(0),
			W: aw.add(v.W), B: aw.add(v.B), ActScale: v.actScale,
		}}, nil
	case *BasicBlock:
		ab := &artifactBasic{
			Conv1: encodeArtifactConv(v.Conv1, aw), BN1: encodeArtifactBN(v.BN1, aw),
			Conv2: encodeArtifactConv(v.Conv2, aw), BN2: encodeArtifactBN(v.BN2, aw),
		}
		if v.DownConv != nil {
			ab.Down = encodeArtifactConv(v.DownConv, aw)
			ab.DownBN = encodeArtifactBN(v.DownBN, aw)
		}
		return artifactLayer{Kind: "basic", Name: v.name, Basic: ab}, nil
	default:
		return artifactLayer{}, fmt.Errorf("unsupported layer type %T", l)
	}
}

func encodeArtifactConv(c *ConvLayer, aw *artifactWriter) *artifactConv {
	ac := &artifactConv{
		In: c.P.InChannels, Out: c.P.OutChannels,
		Kernel: c.P.Kernel, Stride: c.P.Stride, Padding: c.P.Padding,
		W: aw.add(c.W), ActScale: c.actScale,
	}
	if c.B != nil {
		ref := aw.add(c.B)
		ac.B = &ref
	}
	return ac
}

func encodeArtifactBN(b *BatchNormLayer, aw *artifactWriter) *artifactBN {
	s := b.State
	return &artifactBN{
		Channels: s.Channels(),
		Gamma:    aw.add(s.Gamma), Beta: aw.add(s.Beta),
		Mean: aw.add(s.RunningMean), Var: aw.add(s.RunningVar),
		Momentum: s.Momentum, Eps: s.Eps,
	}
}

func decodeArtifactBlock(ab artifactBlock, ar *artifactReader) (*Block, error) {
	layers := make([]Layer, 0, len(ab.Layers))
	for _, al := range ab.Layers {
		l, err := decodeArtifactLayer(al, ar)
		if err != nil {
			return nil, err
		}
		layers = append(layers, l)
	}
	b := NewBlock(ab.ID, ab.Stage, Variant(ab.Variant), layers...)
	b.PruneRatio = ab.PruneRatio
	b.Frozen = ab.Frozen
	p, err := tensor.ParsePrecision(ab.Precision)
	if err != nil {
		return nil, err
	}
	if p != tensor.F64 {
		if err := b.SetPrecision(p); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func decodeArtifactLayer(al artifactLayer, ar *artifactReader) (Layer, error) {
	switch al.Kind {
	case "conv":
		return decodeArtifactConv(al.Name, al.Conv, ar)
	case "bn":
		return decodeArtifactBN(al.Name, al.BN, ar)
	case "relu":
		return NewReLULayer(al.Name), nil
	case "maxpool":
		if al.Pool == nil {
			return nil, fmt.Errorf("missing pool payload for %s", al.Name)
		}
		return NewMaxPoolLayer(al.Name, tensor.PoolParams{
			Kernel: al.Pool.Kernel, Stride: al.Pool.Stride, Padding: al.Pool.Padding,
		}), nil
	case "gap":
		return NewGlobalAvgPoolLayer(al.Name), nil
	case "linear":
		if al.Linear == nil {
			return nil, fmt.Errorf("missing linear payload for %s", al.Name)
		}
		w, err := ar.alias(al.Linear.W, al.Linear.Out, al.Linear.In)
		if err != nil {
			return nil, fmt.Errorf("linear %s weights: %w", al.Name, err)
		}
		bt, err := ar.alias(al.Linear.B, al.Linear.Out)
		if err != nil {
			return nil, fmt.Errorf("linear %s bias: %w", al.Name, err)
		}
		return &LinearLayer{
			name: al.Name, W: w, B: bt,
			dW:       tensor.New(al.Linear.Out, al.Linear.In),
			dB:       tensor.New(al.Linear.Out),
			actScale: al.Linear.ActScale,
		}, nil
	case "basic":
		if al.Basic == nil {
			return nil, fmt.Errorf("missing basic-block payload for %s", al.Name)
		}
		conv1, err := decodeArtifactConv(al.Name+".conv1", al.Basic.Conv1, ar)
		if err != nil {
			return nil, err
		}
		conv2, err := decodeArtifactConv(al.Name+".conv2", al.Basic.Conv2, ar)
		if err != nil {
			return nil, err
		}
		bn1, err := decodeArtifactBN(al.Name+".bn1", al.Basic.BN1, ar)
		if err != nil {
			return nil, err
		}
		bn2, err := decodeArtifactBN(al.Name+".bn2", al.Basic.BN2, ar)
		if err != nil {
			return nil, err
		}
		b := &BasicBlock{
			name:  al.Name,
			Conv1: conv1, BN1: bn1, Relu1: NewReLULayer(al.Name + ".relu1"),
			Conv2: conv2, BN2: bn2,
		}
		if al.Basic.Down != nil {
			if b.DownConv, err = decodeArtifactConv(al.Name+".down", al.Basic.Down, ar); err != nil {
				return nil, err
			}
			if b.DownBN, err = decodeArtifactBN(al.Name+".downbn", al.Basic.DownBN, ar); err != nil {
				return nil, err
			}
		}
		return b, nil
	default:
		return nil, fmt.Errorf("unknown layer kind %q", al.Kind)
	}
}

func decodeArtifactConv(name string, ac *artifactConv, ar *artifactReader) (*ConvLayer, error) {
	if ac == nil {
		return nil, fmt.Errorf("missing conv payload for %s", name)
	}
	p := tensor.Conv2DParams{
		InChannels: ac.In, OutChannels: ac.Out,
		Kernel: ac.Kernel, Stride: ac.Stride, Padding: ac.Padding,
	}
	w, err := ar.alias(ac.W, ac.Out, ac.In, ac.Kernel, ac.Kernel)
	if err != nil {
		return nil, fmt.Errorf("conv %s weights: %w", name, err)
	}
	l := &ConvLayer{name: name, P: p, W: w, actScale: ac.ActScale}
	l.dW = tensor.New(ac.Out, ac.In, ac.Kernel, ac.Kernel)
	if ac.B != nil {
		bt, err := ar.alias(*ac.B, ac.Out)
		if err != nil {
			return nil, fmt.Errorf("conv %s bias: %w", name, err)
		}
		l.B = bt
		l.dB = tensor.New(ac.Out)
	}
	return l, nil
}

func decodeArtifactBN(name string, ab *artifactBN, ar *artifactReader) (*BatchNormLayer, error) {
	if ab == nil {
		return nil, fmt.Errorf("missing batchnorm payload for %s", name)
	}
	gamma, err := ar.alias(ab.Gamma, ab.Channels)
	if err != nil {
		return nil, fmt.Errorf("bn %s gamma: %w", name, err)
	}
	beta, err := ar.alias(ab.Beta, ab.Channels)
	if err != nil {
		return nil, fmt.Errorf("bn %s beta: %w", name, err)
	}
	mean, err := ar.alias(ab.Mean, ab.Channels)
	if err != nil {
		return nil, fmt.Errorf("bn %s mean: %w", name, err)
	}
	vr, err := ar.alias(ab.Var, ab.Channels)
	if err != nil {
		return nil, fmt.Errorf("bn %s var: %w", name, err)
	}
	return &BatchNormLayer{
		name: name,
		State: &tensor.BatchNormState{
			Gamma: gamma, Beta: beta, RunningMean: mean, RunningVar: vr,
			Momentum: ab.Momentum, Eps: ab.Eps,
		},
		dGamma: tensor.New(ab.Channels),
		dBeta:  tensor.New(ab.Channels),
	}, nil
}

// f64Bytes serializes float64s to little-endian bytes.
func f64Bytes(src []float64) []byte {
	out := make([]byte, len(src)*8)
	for i, v := range src {
		binary.LittleEndian.PutUint64(out[i*8:], math.Float64bits(v))
	}
	return out
}

// bytesF64 decodes little-endian bytes into one float64 buffer — the
// single allocation every artifact tensor aliases.
func bytesF64(raw []byte) []float64 {
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[i*8:]))
	}
	return out
}
