package dnn

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"offloadnn/internal/tensor"
)

func artifactRoundTrip(t *testing.T, m *Model) (*Model, int64) {
	t.Helper()
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, m); err != nil {
		t.Fatalf("save artifact: %v", err)
	}
	loaded, n, err := LoadArtifact(&buf)
	if err != nil {
		t.Fatalf("load artifact: %v", err)
	}
	return loaded, n
}

func TestArtifactRoundTripIdenticalForward(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	loaded, n := artifactRoundTrip(t, m)
	if loaded.Arch != m.Arch {
		t.Fatalf("arch %q, want %q", loaded.Arch, m.Arch)
	}
	if want := int64(m.ParamCount()) * 8; n < want {
		t.Fatalf("weight bytes %d < param bytes %d", n, want)
	}
	x := testInput(2, 3, 16, 99)
	y1, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatalf("forward differs at %d: %v vs %v", i, y1.Data()[i], y2.Data()[i])
		}
	}
}

// All tensors of a loaded artifact alias one decoded buffer: the very
// first parameter's backing slice must extend (in capacity) to the end
// of the whole weight section.
func TestArtifactTensorsAliasOneBuffer(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	loaded, n := artifactRoundTrip(t, m)
	first := loaded.Blocks[0].Params()[0].Data()
	if got, want := cap(first), int(n/8); got != want {
		t.Fatalf("first tensor backing capacity %d, want full weight section %d", got, want)
	}
}

// Blocks aliased in the saved model are aliased again after loading —
// the artifact is the zero-copy shared-block deployment format.
func TestArtifactPreservesBlockSharing(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	dup := &Model{Arch: m.Arch, Blocks: append(append([]*Block{}, m.Blocks...), m.Blocks[1])}
	loaded, _ := artifactRoundTrip(t, dup)
	if len(loaded.Blocks) != len(dup.Blocks) {
		t.Fatalf("%d blocks, want %d", len(loaded.Blocks), len(dup.Blocks))
	}
	if loaded.Blocks[1] != loaded.Blocks[len(loaded.Blocks)-1] {
		t.Fatal("repeated block ID decoded into two instances, want one alias")
	}
}

func TestArtifactPreservesPrecisionAndScales(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	x := CalibrationBatch(4, 3, 16, 16, 11)
	if err := Calibrate(m, x); err != nil {
		t.Fatal(err)
	}
	if err := m.SetPrecision(tensor.I8); err != nil {
		t.Fatal(err)
	}
	loaded, _ := artifactRoundTrip(t, m)
	for i, b := range loaded.Blocks {
		if b.Precision() != tensor.I8 {
			t.Fatalf("block %d precision %v, want i8", i, b.Precision())
		}
	}
	y1, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatalf("quantized forward differs at %d: %v vs %v", i, y1.Data()[i], y2.Data()[i])
		}
	}
}

func TestArtifactChecksumCorruptionRejected(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	var buf bytes.Buffer
	if err := SaveArtifact(&buf, m); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	raw[len(raw)-5] ^= 0x40 // flip a bit inside the weights section
	if _, _, err := LoadArtifact(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted artifact loaded without error")
	} else if !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("corruption rejected with %v, want a checksum error", err)
	}
}

func TestArtifactRejectsGarbage(t *testing.T) {
	if _, _, err := LoadArtifact(bytes.NewReader([]byte("definitely not an artifact"))); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestArtifactLoadedModelMatchesGob(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	gob := roundTrip(t, m)
	art, _ := artifactRoundTrip(t, m)
	gp, ap := gob.Blocks[1].Params(), art.Blocks[1].Params()
	if len(gp) != len(ap) {
		t.Fatalf("param count %d vs %d", len(gp), len(ap))
	}
	for i := range gp {
		for j := range gp[i].Data() {
			if math.Abs(gp[i].Data()[j]-ap[i].Data()[j]) > 0 {
				t.Fatalf("param %d[%d] differs between codecs", i, j)
			}
		}
	}
}
