package dnn

import (
	"fmt"
	"math/rand"

	"offloadnn/internal/tensor"
)

// Path→model assembly: the execution backend deploys a solver path — an
// ordered list of catalog block IDs — as a runnable model. Each catalog
// block maps to one residual stage of the scaled ResNet-18 template; the
// stem and the classifier are implicit (they bound every path) and are
// shared across all assembled models. The per-stage builders below are
// the factored-out pieces of BuildResNet18, so a template block built in
// isolation is structurally identical to the corresponding block of the
// monolithic builder.

// StageWidth returns the output channel count of a template stage
// (1..4); stages beyond 4 saturate at the stage-4 width, so over-long
// paths still chain.
func StageWidth(cfg ResNetConfig, stage int) int {
	if stage < 1 {
		return cfg.BaseWidth
	}
	if stage > 4 {
		stage = 4
	}
	return cfg.BaseWidth << (stage - 1)
}

// BuildStemBlock constructs the shared input stem of the template.
func BuildStemBlock(cfg ResNetConfig) *Block {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := cfg.BaseWidth
	return NewBlock("stem", 0, VariantBase,
		NewConvLayer("stem.conv", tensor.Conv2DParams{
			InChannels: cfg.InChannels, OutChannels: w, Kernel: 3, Stride: 1, Padding: 1,
		}, false, rng),
		NewBatchNormLayer("stem.bn", w),
		NewReLULayer("stem.relu"),
		NewMaxPoolLayer("stem.pool", tensor.PoolParams{Kernel: 2, Stride: 2}),
	)
}

// BuildStageBlock constructs one residual stage of the template as a
// standalone block named id. stage is 1-based; pruneRatio shrinks the
// internal width of the stage's units (structured pruning, interface
// unchanged). seed decorrelates the initialization of distinct blocks
// occupying the same stage (e.g. per-task fine-tuned variants).
func BuildStageBlock(cfg ResNetConfig, id string, stage int, pruneRatio float64, seed int64) (*Block, error) {
	if stage < 1 {
		return nil, fmt.Errorf("dnn: stage %d outside 1..n", stage)
	}
	rng := rand.New(rand.NewSource(cfg.Seed ^ seed))
	in := StageWidth(cfg, stage-1)
	out := StageWidth(cfg, stage)
	mid := prunedWidth(out, pruneRatio)
	stride := 1
	if stage > 1 {
		stride = 2
	}
	units := cfg.StageBlocks[min(stage, 4)-1]
	var layers []Layer
	for unit := 0; unit < units; unit++ {
		s := 1
		if unit == 0 {
			s = stride
		}
		name := fmt.Sprintf("%s.unit%d", id, unit+1)
		layers = append(layers, NewBasicBlock(name, in, mid, out, s, rng))
		in = out
	}
	variant := VariantBase
	if pruneRatio > 0 {
		variant = VariantPruned
	}
	blk := NewBlock(id, min(stage, 4), variant, layers...)
	blk.PruneRatio = pruneRatio
	return blk, nil
}

// BuildClassifierBlock constructs a classifier head over featureDim
// channels — the output width of a path's final stage.
func BuildClassifierBlock(cfg ResNetConfig, featureDim int) *Block {
	rng := rand.New(rand.NewSource(cfg.Seed + int64(featureDim)))
	return NewBlock(fmt.Sprintf("classifier/%d", featureDim), 5, VariantBase,
		NewGlobalAvgPoolLayer("head.gap"),
		NewLinearLayer("head.fc", featureDim, cfg.NumClasses, rng),
	)
}

// AssemblePathModel composes a runnable model from pre-instantiated
// blocks: the shared stem, the path's stage blocks in execution order,
// and the shared classifier. The blocks are aliased, not copied — models
// assembled for different paths that name the same block share one
// in-memory instance, which is the memory sharing constraint (1b)
// charges for once.
func AssemblePathModel(arch string, stem *Block, stages []*Block, classifier *Block) (*Model, error) {
	if stem == nil || classifier == nil {
		return nil, fmt.Errorf("dnn: assemble %s: nil stem or classifier", arch)
	}
	if len(stages) == 0 {
		return nil, fmt.Errorf("dnn: assemble %s: empty path", arch)
	}
	blocks := make([]*Block, 0, len(stages)+2)
	blocks = append(blocks, stem)
	blocks = append(blocks, stages...)
	blocks = append(blocks, classifier)
	return &Model{Arch: arch, Blocks: blocks}, nil
}
