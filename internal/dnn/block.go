package dnn

import (
	"fmt"

	"offloadnn/internal/tensor"
)

// Variant distinguishes the provenance of a layer-block, which determines
// whether the block carries a training cost (fine-tuned/pruned variants do,
// pre-trained base blocks do not) and whether it can be shared.
type Variant int

// Block variants. A pruned block is always derived from a fine-tuned one
// (or from the base when the whole DNN is pruned, as in CONFIG A-pruned).
const (
	VariantBase Variant = iota + 1
	VariantFineTuned
	VariantPruned
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case VariantBase:
		return "base"
	case VariantFineTuned:
		return "fine-tuned"
	case VariantPruned:
		return "pruned"
	default:
		return fmt.Sprintf("variant(%d)", int(v))
	}
}

// Block is the paper's s^d: a named group of layers that is the unit of
// sharing, freezing, fine-tuning and pruning.
type Block struct {
	// ID uniquely identifies the block across DNN structures; two paths
	// naming the same ID share one in-memory copy of the block.
	ID string
	// Stage is the position of the block in its architecture (1-based).
	Stage int
	// Variant records base / fine-tuned / pruned provenance.
	Variant Variant
	// PruneRatio is the fraction of internal channels removed (0 when the
	// block is unpruned).
	PruneRatio float64
	// Frozen blocks skip parameter updates and gradient accumulation at
	// the optimizer level; shared base blocks are frozen during
	// fine-tuning of task-specific blocks.
	Frozen bool

	// precision is the inference kernel precision the block is deployed
	// at (zero value F64). Managed by SetPrecision in precision.go.
	precision tensor.Precision

	layers []Layer
}

// NewBlock groups the given layers under an identifier.
func NewBlock(id string, stage int, variant Variant, layers ...Layer) *Block {
	return &Block{ID: id, Stage: stage, Variant: variant, layers: layers}
}

// Layers returns the block's layers in forward order.
func (b *Block) Layers() []Layer {
	out := make([]Layer, len(b.layers))
	copy(out, b.layers)
	return out
}

// Forward runs all layers in order. At inference the pooled intermediate
// activations are released as soon as the next layer has consumed them, so
// a steady-state forward pass recycles a fixed set of buffers.
func (b *Block) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	in := x
	for _, l := range b.layers {
		y, err := l.Forward(x, training)
		if err != nil {
			return nil, fmt.Errorf("block %s: %w", b.ID, err)
		}
		if !training {
			releaseChain(x, in, y)
		}
		x = y
	}
	return x, nil
}

// Backward runs all layers in reverse order.
func (b *Block) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i := len(b.layers) - 1; i >= 0; i-- {
		dy, err = b.layers[i].Backward(dy)
		if err != nil {
			return nil, fmt.Errorf("block %s: %w", b.ID, err)
		}
	}
	return dy, nil
}

// Params returns all trainable parameters of the block.
func (b *Block) Params() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range b.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// Grads returns all parameter gradients of the block.
func (b *Block) Grads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, l := range b.layers {
		out = append(out, l.Grads()...)
	}
	return out
}

// ZeroGrads clears accumulated gradients in every layer.
func (b *Block) ZeroGrads() {
	for _, l := range b.layers {
		l.ZeroGrads()
	}
}

// ParamCount returns the number of scalar parameters in the block.
func (b *Block) ParamCount() int {
	n := 0
	for _, l := range b.layers {
		n += ParamCount(l)
	}
	return n
}

// MemoryBytes estimates the deployed (inference) memory footprint of the
// block: parameters at the block's deployed precision (float32-equivalent
// for f64/f32, one byte per parameter for int8) plus a small per-layer
// bookkeeping overhead, matching how the paper charges µ(s^d) per active
// block.
func (b *Block) MemoryBytes() int64 {
	const perLayerOverhead = 256 // descriptors, shapes, buffers
	return int64(b.ParamCount())*b.precision.DeployedBytesPerParam() +
		int64(len(b.layers))*perLayerOverhead
}
