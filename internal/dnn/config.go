package dnn

import (
	"fmt"
	"math/rand"

	"offloadnn/internal/tensor"
)

// TableIConfig is one row of the paper's Table I: a DNN block-training
// configuration for adapting a pre-trained ResNet-18 to a new task.
type TableIConfig struct {
	// Name is the paper's identifier: "A".."E" or "A-pruned".."E-pruned".
	Name string
	// SharedStages is how many leading residual stages are shared (and
	// frozen) from the base DNN: 4 for CONFIG B, 3 for C, 2 for D, 1 for
	// E, 0 for A (trained from scratch).
	SharedStages int
	// FromScratch marks CONFIG A: no weights inherited from the base.
	FromScratch bool
	// PruneRatio prunes the fine-tuned (non-shared) stages after
	// fine-tuning; 0 means unpruned.
	PruneRatio float64
	// Description is the paper's Table-I text.
	Description string
}

// TableI returns the ten configurations of the paper's Table I in order
// (A–E, then A-pruned–E-pruned). The pruned variants use the paper's 80%
// ratio.
func TableI() []TableIConfig {
	base := []TableIConfig{
		{Name: "A", SharedStages: 0, FromScratch: true,
			Description: "Entire DNN structure trained from scratch"},
		{Name: "B", SharedStages: 4,
			Description: "First 4 layer-blocks shared from the base DNN"},
		{Name: "C", SharedStages: 3,
			Description: "First 3 layer-blocks shared. Last layer-block + classifier layers fine-tuned"},
		{Name: "D", SharedStages: 2,
			Description: "First 2 layer-blocks shared. Last 2 layer-blocks + classifier layers fine-tuned"},
		{Name: "E", SharedStages: 1,
			Description: "First 1 layer-blocks shared. Last 3 layer-blocks + classifier layers fine-tuned"},
	}
	out := make([]TableIConfig, 0, 2*len(base))
	out = append(out, base...)
	for _, c := range base {
		p := c
		p.Name = c.Name + "-pruned"
		p.PruneRatio = 0.8
		if c.FromScratch {
			p.Description = "CONFIG A DNN architecture with pruning ratio 80%"
		} else {
			p.Description = fmt.Sprintf("CONFIG %s + Fine-tuned layer-blocks are pruned with ratio of 80%%", c.Name)
		}
		out = append(out, p)
	}
	return out
}

// ConfigByName looks up a Table-I configuration.
func ConfigByName(name string) (TableIConfig, error) {
	for _, c := range TableI() {
		if c.Name == name {
			return c, nil
		}
	}
	return TableIConfig{}, fmt.Errorf("dnn: unknown Table-I config %q", name)
}

// BuildConfigModel assembles a task model for the given configuration from
// a pre-trained base model:
//
//   - shared stages reuse the base *Block pointers and are frozen, so they
//     consume no additional deployed memory and no optimizer state;
//   - fine-tuned stages are deep clones of the base blocks (they start at
//     base weights and evolve independently);
//   - CONFIG A instead initializes every stage from scratch;
//   - the classifier is always fresh, sized for numClasses.
//
// taskTag distinguishes the fine-tuned block identities across tasks.
// Pruning is applied separately (after fine-tuning) via ApplyConfigPruning,
// matching the paper's fine-tune-then-prune pipeline.
func BuildConfigModel(base *Model, cfg TableIConfig, taskTag string, numClasses int, seed int64) (*Model, error) {
	rng := rand.New(rand.NewSource(seed))
	stem := base.BlockByStage(0)
	classifierTmpl := base.BlockByStage(5)
	if stem == nil || classifierTmpl == nil {
		return nil, fmt.Errorf("dnn: base model lacks stem or classifier")
	}

	var blocks []*Block
	if cfg.FromScratch {
		fresh, err := freshLike(stem, fmt.Sprintf("%s/stem+scratch-%s", base.Arch, taskTag), rng)
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, fresh)
	} else {
		stem.Frozen = true
		blocks = append(blocks, stem)
	}

	for stage := 1; stage <= 4; stage++ {
		src := base.BlockByStage(stage)
		if src == nil {
			return nil, fmt.Errorf("dnn: base model lacks stage %d", stage)
		}
		switch {
		case cfg.FromScratch:
			fresh, err := freshLike(src, fmt.Sprintf("%s+scratch-%s", src.ID, taskTag), rng)
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, fresh)
		case stage <= cfg.SharedStages:
			src.Frozen = true
			blocks = append(blocks, src)
		default:
			clone, err := CloneBlock(src, fmt.Sprintf("%s+ft-%s", src.ID, taskTag), rng)
			if err != nil {
				return nil, err
			}
			blocks = append(blocks, clone)
		}
	}

	head, err := classifierHeadLike(classifierTmpl, taskTag, numClasses, rng)
	if err != nil {
		return nil, err
	}
	blocks = append(blocks, head)
	return &Model{Arch: base.Arch, Blocks: blocks}, nil
}

// ApplyConfigPruning prunes the non-shared residual stages of a config
// model by cfg.PruneRatio, returning a new model that aliases the shared
// (unpruned) blocks. It is a no-op returning the input when the config is
// unpruned.
func ApplyConfigPruning(m *Model, cfg TableIConfig, seed int64) (*Model, error) {
	if cfg.PruneRatio <= 0 {
		return m, nil
	}
	rng := rand.New(rand.NewSource(seed))
	blocks := make([]*Block, 0, len(m.Blocks))
	for _, b := range m.Blocks {
		prune := b.Stage >= 1 && b.Stage <= 4 &&
			(cfg.FromScratch || b.Stage > cfg.SharedStages)
		if !prune {
			blocks = append(blocks, b)
			continue
		}
		p, err := PruneBlock(b, cfg.PruneRatio, rng)
		if err != nil {
			return nil, fmt.Errorf("dnn: apply config %s pruning: %w", cfg.Name, err)
		}
		p.Frozen = b.Frozen
		blocks = append(blocks, p)
	}
	return &Model{Arch: m.Arch, Blocks: blocks}, nil
}

// freshLike builds a newly initialized block with src's structure.
func freshLike(src *Block, newID string, rng *rand.Rand) (*Block, error) {
	c, err := CloneBlock(src, newID, rng)
	if err != nil {
		return nil, err
	}
	// Re-randomize: CloneBlock copies weights, scratch training must not
	// inherit them.
	reinitBlock(c, rng)
	c.Variant = VariantFineTuned
	return c, nil
}

func reinitBlock(b *Block, rng *rand.Rand) {
	for _, l := range b.layers {
		reinitLayer(l, rng)
	}
}

func reinitLayer(l Layer, rng *rand.Rand) {
	switch v := l.(type) {
	case *ConvLayer:
		tensor.KaimingInit(v.W, v.P.InChannels*v.P.Kernel*v.P.Kernel, rng)
		if v.B != nil {
			v.B.Zero()
		}
	case *LinearLayer:
		tensor.XavierInit(v.W, v.W.Dim(1), v.W.Dim(0), rng)
		v.B.Zero()
	case *BatchNormLayer:
		v.State.Gamma.Fill(1)
		v.State.Beta.Zero()
		v.State.RunningMean.Zero()
		v.State.RunningVar.Fill(1)
	case *BasicBlock:
		reinitLayer(v.Conv1, rng)
		reinitLayer(v.Conv2, rng)
		reinitLayer(v.BN1, rng)
		reinitLayer(v.BN2, rng)
		if v.DownConv != nil {
			reinitLayer(v.DownConv, rng)
			reinitLayer(v.DownBN, rng)
		}
	}
}

// classifierHeadLike builds a fresh classifier block with the template's
// feature width but a new class count.
func classifierHeadLike(tmpl *Block, taskTag string, numClasses int, rng *rand.Rand) (*Block, error) {
	var featureDim int
	for _, l := range tmpl.layers {
		if lin, ok := l.(*LinearLayer); ok {
			featureDim = lin.W.Dim(1)
		}
	}
	if featureDim == 0 {
		return nil, fmt.Errorf("dnn: classifier template %s has no linear layer", tmpl.ID)
	}
	return NewBlock(fmt.Sprintf("%s+head-%s", tmpl.ID, taskTag), 5, VariantFineTuned,
		NewGlobalAvgPoolLayer("head.gap"),
		NewLinearLayer("head.fc", featureDim, numClasses, rng),
	), nil
}
