package dnn

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"offloadnn/internal/tensor"
)

func testInput(n, c, hw int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	x := tensor.New(n, c, hw, hw)
	for i := range x.Data() {
		x.Data()[i] = rng.NormFloat64()
	}
	return x
}

func TestResNet18ForwardShape(t *testing.T) {
	cfg := DefaultResNetConfig()
	m := BuildResNet18(cfg)
	x := testInput(2, 3, 16, 1)
	y, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Rank() != 2 || y.Dim(0) != 2 || y.Dim(1) != cfg.NumClasses {
		t.Fatalf("output shape %v, want [2 %d]", y.Shape(), cfg.NumClasses)
	}
}

func TestResNet18HasSixBlocks(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	if len(m.Blocks) != 6 {
		t.Fatalf("got %d blocks, want 6 (stem + 4 stages + classifier)", len(m.Blocks))
	}
	wantStages := []int{0, 1, 2, 3, 4, 5}
	for i, b := range m.Blocks {
		if b.Stage != wantStages[i] {
			t.Fatalf("block %d stage %d, want %d", i, b.Stage, wantStages[i])
		}
	}
}

func TestResNet18BackwardReducesLoss(t *testing.T) {
	// One SGD step on a fixed batch must reduce the training loss — a
	// smoke test that gradients flow end to end with the right sign.
	m := BuildResNet18(ResNetConfig{
		InChannels: 3, NumClasses: 4, BaseWidth: 4, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 3,
	})
	x := testInput(4, 3, 8, 4)
	labels := []int{0, 1, 2, 3}

	loss := func() float64 {
		y, err := m.Forward(x, true)
		if err != nil {
			t.Fatal(err)
		}
		ce, err := tensor.CrossEntropy(y, labels)
		if err != nil {
			t.Fatal(err)
		}
		return ce.Loss
	}

	before := loss()
	y, err := m.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := tensor.CrossEntropy(y, labels)
	if err != nil {
		t.Fatal(err)
	}
	m.ZeroGrads()
	if _, err := m.Backward(ce.Backward()); err != nil {
		t.Fatal(err)
	}
	params := m.TrainableParams()
	grads := m.TrainableGrads()
	const lr = 0.005
	for i := range params {
		if err := params[i].AXPYInPlace(-lr, grads[i]); err != nil {
			t.Fatal(err)
		}
	}
	after := loss()
	if after >= before {
		t.Fatalf("loss did not decrease: before %v, after %v", before, after)
	}
}

func TestFreezeStagesExcludesParams(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	total := m.ParamCount()
	m.FreezeStages(0, 1, 2, 3, 4)
	trainable := m.TrainableParamCount()
	classifier := m.BlockByStage(5).ParamCount()
	if trainable != classifier {
		t.Fatalf("trainable %d, want classifier-only %d", trainable, classifier)
	}
	if trainable >= total {
		t.Fatalf("freezing did not reduce trainable params (%d vs %d)", trainable, total)
	}
}

func TestBackwardStopsAtFrozenBackbone(t *testing.T) {
	// With all stages up to 4 frozen, Backward should stop early and the
	// frozen blocks must accumulate zero gradients.
	m := BuildResNet18(ResNetConfig{
		InChannels: 3, NumClasses: 4, BaseWidth: 4, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 5,
	})
	m.FreezeStages(0, 1, 2, 3, 4)
	x := testInput(2, 3, 8, 6)
	y, err := m.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := tensor.CrossEntropy(y, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m.ZeroGrads()
	if _, err := m.Backward(ce.Backward()); err != nil {
		t.Fatal(err)
	}
	for stage := 0; stage <= 4; stage++ {
		for _, g := range m.BlockByStage(stage).Grads() {
			if g.MaxAbs() != 0 {
				t.Fatalf("frozen stage %d accumulated gradient %v", stage, g.MaxAbs())
			}
		}
	}
	// The classifier must have received gradient.
	got := 0.0
	for _, g := range m.BlockByStage(5).Grads() {
		got += g.MaxAbs()
	}
	if got == 0 {
		t.Fatal("classifier received no gradient")
	}
}

func TestParamCountScalesWithWidth(t *testing.T) {
	small := BuildResNet18(ResNetConfig{InChannels: 3, NumClasses: 4, BaseWidth: 4, StageBlocks: [4]int{2, 2, 2, 2}, Seed: 1})
	big := BuildResNet18(ResNetConfig{InChannels: 3, NumClasses: 4, BaseWidth: 8, StageBlocks: [4]int{2, 2, 2, 2}, Seed: 1})
	if big.ParamCount() <= 3*small.ParamCount() {
		t.Fatalf("doubling width should ~quadruple params: %d vs %d", big.ParamCount(), small.ParamCount())
	}
}

func TestFullScaleResNet18ParamCount(t *testing.T) {
	// At full width the builder should land in the ~11M-parameter range
	// of the real ResNet-18 (exact value differs: 3×3 stem, no 7×7).
	m := BuildResNet18(ResNetConfig{
		InChannels: 3, NumClasses: 1000, BaseWidth: 64, StageBlocks: [4]int{2, 2, 2, 2}, Seed: 1,
	})
	pc := m.ParamCount()
	if pc < 10_000_000 || pc > 13_000_000 {
		t.Fatalf("full-scale param count %d outside ResNet-18 range [10M,13M]", pc)
	}
}

func TestPruneBasicBlockPreservesInterface(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	src := NewBasicBlock("b", 4, 8, 8, 2, rng)
	p, err := PruneBasicBlock(src, 0.75, rng)
	if err != nil {
		t.Fatal(err)
	}
	if p.MidChannels() != 2 {
		t.Fatalf("pruned mid = %d, want 2", p.MidChannels())
	}
	x := testInput(1, 4, 8, 8)
	ySrc, err := src.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	yP, err := p.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if !ySrc.SameShape(yP) {
		t.Fatalf("pruned output shape %v differs from original %v", yP.Shape(), ySrc.Shape())
	}
}

func TestPruneBasicBlockKeepsLargestChannels(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	src := NewBasicBlock("b", 2, 4, 4, 1, rng)
	// Make channel 2's filter dominant and channel 0 second.
	w := src.Conv1.W.Data()
	per := 2 * 3 * 3
	for i := range w {
		w[i] = 0.001
	}
	for i := 2 * per; i < 3*per; i++ {
		w[i] = 10
	}
	for i := 0; i < per; i++ {
		w[i] = 5
	}
	p, err := PruneBasicBlock(src, 0.5, rng)
	if err != nil {
		t.Fatal(err)
	}
	// Kept channels are 0 and 2, laid out in ascending order.
	got := p.Conv1.W.Data()
	if got[0] != 5 {
		t.Fatalf("first kept filter value %v, want 5 (channel 0)", got[0])
	}
	if got[per] != 10 {
		t.Fatalf("second kept filter value %v, want 10 (channel 2)", got[per])
	}
}

func TestPruneBlockReducesParamsAndMemory(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	stage := m.BlockByStage(3)
	rng := rand.New(rand.NewSource(9))
	pruned, err := PruneBlock(stage, 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	if pruned.ParamCount() >= stage.ParamCount() {
		t.Fatalf("pruned params %d >= original %d", pruned.ParamCount(), stage.ParamCount())
	}
	if pruned.MemoryBytes() >= stage.MemoryBytes() {
		t.Fatalf("pruned memory %d >= original %d", pruned.MemoryBytes(), stage.MemoryBytes())
	}
	if pruned.Variant != VariantPruned {
		t.Fatalf("pruned variant = %v, want VariantPruned", pruned.Variant)
	}
	if pruned.PruneRatio != 0.8 {
		t.Fatalf("pruned ratio = %v, want 0.8", pruned.PruneRatio)
	}
}

func TestPruneBlockRejectsNonResidual(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	rng := rand.New(rand.NewSource(10))
	if _, err := PruneBlock(m.BlockByStage(0), 0.5, rng); err == nil {
		t.Fatal("pruning the stem should fail (not a residual stage)")
	}
}

func TestPruneRatioValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	src := NewBasicBlock("b", 2, 4, 4, 1, rng)
	if _, err := PruneBasicBlock(src, 1.0, rng); err == nil {
		t.Fatal("ratio 1.0 should be rejected")
	}
	if _, err := PruneBasicBlock(src, -0.1, rng); err == nil {
		t.Fatal("negative ratio should be rejected")
	}
}

func TestCloneBlockIndependentWeights(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	src := m.BlockByStage(4)
	rng := rand.New(rand.NewSource(12))
	clone, err := CloneBlock(src, "clone", rng)
	if err != nil {
		t.Fatal(err)
	}
	sp, cp := src.Params(), clone.Params()
	if len(sp) != len(cp) {
		t.Fatalf("clone has %d params, src %d", len(cp), len(sp))
	}
	for i := range sp {
		if sp[i].Data()[0] != cp[i].Data()[0] {
			t.Fatalf("clone param %d differs at construction", i)
		}
	}
	cp[0].Data()[0] += 42
	if sp[0].Data()[0] == cp[0].Data()[0] {
		t.Fatal("clone shares storage with source")
	}
	if clone.Variant != VariantFineTuned {
		t.Fatalf("clone variant = %v, want VariantFineTuned", clone.Variant)
	}
}

func TestCloneProducesIdenticalForward(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	src := m.BlockByStage(1)
	rng := rand.New(rand.NewSource(13))
	clone, err := CloneBlock(src, "clone", rng)
	if err != nil {
		t.Fatal(err)
	}
	x := testInput(1, 8, 8, 14)
	y1, err := src.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := clone.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if math.Abs(y1.Data()[i]-y2.Data()[i]) > 1e-12 {
			t.Fatalf("clone forward differs at %d: %v vs %v", i, y1.Data()[i], y2.Data()[i])
		}
	}
}

func TestTableIHasTenConfigs(t *testing.T) {
	cfgs := TableI()
	if len(cfgs) != 10 {
		t.Fatalf("Table I has %d configs, want 10", len(cfgs))
	}
	shared := map[string]int{"A": 0, "B": 4, "C": 3, "D": 2, "E": 1}
	for name, want := range shared {
		c, err := ConfigByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if c.SharedStages != want {
			t.Fatalf("CONFIG %s shares %d stages, want %d", name, c.SharedStages, want)
		}
		p, err := ConfigByName(name + "-pruned")
		if err != nil {
			t.Fatal(err)
		}
		if p.PruneRatio != 0.8 {
			t.Fatalf("CONFIG %s-pruned ratio %v, want 0.8", name, p.PruneRatio)
		}
	}
	if _, err := ConfigByName("Z"); err == nil {
		t.Fatal("unknown config should error")
	}
}

func TestBuildConfigModelSharing(t *testing.T) {
	base := BuildResNet18(DefaultResNetConfig())
	cfgC, err := ConfigByName("C")
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildConfigModel(base, cfgC, "task1", 9, 21)
	if err != nil {
		t.Fatal(err)
	}
	// Stages 1–3 alias base blocks; stage 4 and classifier are new.
	for stage := 1; stage <= 3; stage++ {
		if m.BlockByStage(stage) != base.BlockByStage(stage) {
			t.Fatalf("stage %d not shared in CONFIG C", stage)
		}
		if !m.BlockByStage(stage).Frozen {
			t.Fatalf("shared stage %d not frozen", stage)
		}
	}
	if m.BlockByStage(4) == base.BlockByStage(4) {
		t.Fatal("stage 4 should be a fine-tuned clone in CONFIG C")
	}
	if m.BlockByStage(5) == base.BlockByStage(5) {
		t.Fatal("classifier should always be fresh")
	}
	// Output dimensionality follows the new class count.
	x := testInput(1, 3, 16, 22)
	y, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(1) != 9 {
		t.Fatalf("config model classes = %d, want 9", y.Dim(1))
	}
}

func TestBuildConfigModelScratchSharesNothing(t *testing.T) {
	base := BuildResNet18(DefaultResNetConfig())
	cfgA, err := ConfigByName("A")
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildConfigModel(base, cfgA, "task1", 9, 23)
	if err != nil {
		t.Fatal(err)
	}
	for stage := 0; stage <= 5; stage++ {
		if m.BlockByStage(stage) == base.BlockByStage(stage) {
			t.Fatalf("CONFIG A stage %d aliases the base model", stage)
		}
	}
}

func TestApplyConfigPruningPrunesOnlyFineTuned(t *testing.T) {
	base := BuildResNet18(DefaultResNetConfig())
	cfg, err := ConfigByName("C-pruned")
	if err != nil {
		t.Fatal(err)
	}
	m, err := BuildConfigModel(base, cfg, "task1", 9, 24)
	if err != nil {
		t.Fatal(err)
	}
	pm, err := ApplyConfigPruning(m, cfg, 25)
	if err != nil {
		t.Fatal(err)
	}
	for stage := 1; stage <= 3; stage++ {
		if pm.BlockByStage(stage) != base.BlockByStage(stage) {
			t.Fatalf("pruning CONFIG C-pruned must keep shared stage %d aliased", stage)
		}
	}
	if pm.BlockByStage(4).Variant != VariantPruned {
		t.Fatal("stage 4 should be pruned in CONFIG C-pruned")
	}
	if pm.BlockByStage(4).ParamCount() >= m.BlockByStage(4).ParamCount() {
		t.Fatal("pruned stage 4 did not shrink")
	}
	// Forward still works.
	x := testInput(1, 3, 16, 26)
	if _, err := pm.Forward(x, false); err != nil {
		t.Fatal(err)
	}
}

func TestDeployedMemoryCountsSharedOnce(t *testing.T) {
	base := BuildResNet18(DefaultResNetConfig())
	cfgB, err := ConfigByName("B")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := BuildConfigModel(base, cfgB, "t1", 9, 27)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := BuildConfigModel(base, cfgB, "t2", 9, 28)
	if err != nil {
		t.Fatal(err)
	}
	shared := DeployedMemoryBytes([]*Model{m1, m2})
	separate := m1.MemoryBytes() + m2.MemoryBytes()
	if shared >= separate {
		t.Fatalf("shared deployment %d not cheaper than separate %d", shared, separate)
	}
	// Two CONFIG B models differ only by classifier, so the shared total
	// should be close to one model plus one classifier.
	oneModel := m1.MemoryBytes() + m2.BlockByStage(5).MemoryBytes()
	if shared != oneModel {
		t.Fatalf("shared deployment %d, want %d (one model + extra classifier)", shared, oneModel)
	}
}

func TestMobileNetForwardShape(t *testing.T) {
	cfg := DefaultMobileNetConfig()
	m := BuildMobileNetV2(cfg)
	x := testInput(2, 3, 16, 30)
	y, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	if y.Dim(0) != 2 || y.Dim(1) != cfg.NumClasses {
		t.Fatalf("mobilenet output %v, want [2 %d]", y.Shape(), cfg.NumClasses)
	}
}

func TestMobileNetSmallerThanResNet(t *testing.T) {
	r := BuildResNet18(DefaultResNetConfig())
	mb := BuildMobileNetV2(DefaultMobileNetConfig())
	if mb.ParamCount() >= r.ParamCount() {
		t.Fatalf("mobilenet params %d >= resnet %d", mb.ParamCount(), r.ParamCount())
	}
}

func TestMobileNetTrainingStep(t *testing.T) {
	m := BuildMobileNetV2(MobileNetConfig{
		InChannels: 3, NumClasses: 4, BaseWidth: 4, Expansion: 2, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 31,
	})
	x := testInput(2, 3, 8, 32)
	y, err := m.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := tensor.CrossEntropy(y, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	m.ZeroGrads()
	if _, err := m.Backward(ce.Backward()); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, g := range m.TrainableGrads() {
		total += g.MaxAbs()
	}
	if total == 0 {
		t.Fatal("mobilenet accumulated no gradient")
	}
}

func TestBackwardBeforeForwardErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	b := NewBasicBlock("b", 2, 2, 2, 1, rng)
	dy := tensor.New(1, 2, 4, 4)
	if _, err := b.Backward(dy); !errors.Is(err, ErrState) {
		t.Fatalf("backward-before-forward err = %v, want ErrState", err)
	}
}

// Property: pruning never increases parameter count and is monotone in the
// ratio.
func TestQuickPruneMonotone(t *testing.T) {
	f := func(seed int64, r1, r2 float64) bool {
		r1 = math.Mod(math.Abs(r1), 0.95)
		r2 = math.Mod(math.Abs(r2), 0.95)
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		rng := rand.New(rand.NewSource(seed))
		src := NewBasicBlock("b", 4, 8, 8, 1, rng)
		p1, err := PruneBasicBlock(src, r1, rng)
		if err != nil {
			return false
		}
		p2, err := PruneBasicBlock(src, r2, rng)
		if err != nil {
			return false
		}
		c1 := 0
		for _, p := range p1.Params() {
			c1 += p.Len()
		}
		c2 := 0
		for _, p := range p2.Params() {
			c2 += p.Len()
		}
		cSrc := 0
		for _, p := range src.Params() {
			cSrc += p.Len()
		}
		return c2 <= c1 && c1 <= cSrc
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
