// Package dnn builds dynamic DNN structures out of layer-blocks, the unit
// of sharing, fine-tuning and pruning in OffloaDNN. It provides trainable
// layers on top of the tensor engine, ResNet-18 and MobileNetV2-style
// builders, structured channel pruning, and the Table-I configuration
// catalog (CONFIG A–E and their pruned variants).
//
// The package follows the paper's terminology: a *block* s^d groups one or
// more layers (e.g., a ResNet residual stage); a *path* π is the sequence
// of blocks selected to serve a task; blocks may be shared across paths.
package dnn

import (
	"errors"
	"fmt"
	"math/rand"

	"offloadnn/internal/tensor"
)

// ErrState reports a layer used out of order (e.g., Backward before
// Forward).
var ErrState = errors.New("dnn: invalid layer state")

// Layer is a differentiable network stage. Layers cache whatever forward
// intermediates they need, so Backward must follow the matching Forward.
// Layers are not safe for concurrent use.
type Layer interface {
	// Name returns a short human-readable identifier.
	Name() string
	// Forward computes the layer output. When training is false the layer
	// may skip caching and use inference statistics (e.g., batch norm).
	Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error)
	// Backward consumes the upstream gradient and returns the gradient
	// with respect to the layer input, accumulating parameter gradients.
	Backward(dy *tensor.Tensor) (*tensor.Tensor, error)
	// Params returns the trainable parameter tensors (possibly empty).
	Params() []*tensor.Tensor
	// Grads returns gradient tensors parallel to Params.
	Grads() []*tensor.Tensor
	// ZeroGrads clears accumulated parameter gradients.
	ZeroGrads()
}

// ParamCount sums the number of scalar parameters of a layer.
func ParamCount(l Layer) int {
	n := 0
	for _, p := range l.Params() {
		n += p.Len()
	}
	return n
}

// ConvLayer is a 2-D convolution with optional bias.
type ConvLayer struct {
	name   string
	P      tensor.Conv2DParams
	W      *tensor.Tensor
	B      *tensor.Tensor // nil means no bias (ResNet convs are biasless)
	dW     *tensor.Tensor
	dB     *tensor.Tensor
	lastX  *tensor.Tensor
	hasFwd bool

	// prec selects the inference kernel; training always runs on the f64
	// master weights. w32/w8 cache the prepared narrow weights and are
	// rebuilt by SetPrecision whenever the precision or weights change.
	prec     tensor.Precision
	w32      *tensor.ConvWeightsF32
	w8       *tensor.ConvWeightsI8
	actScale float64 // calibrated activation scale; 0 = dynamic per image
	calib    bool    // calibration pass: record ranges, run f64
}

// NewConvLayer constructs a Kaiming-initialized convolution.
func NewConvLayer(name string, p tensor.Conv2DParams, bias bool, rng *rand.Rand) *ConvLayer {
	l := &ConvLayer{
		name: name,
		P:    p,
		W:    tensor.New(p.OutChannels, p.InChannels, p.Kernel, p.Kernel),
		dW:   tensor.New(p.OutChannels, p.InChannels, p.Kernel, p.Kernel),
	}
	tensor.KaimingInit(l.W, p.InChannels*p.Kernel*p.Kernel, rng)
	if bias {
		l.B = tensor.New(p.OutChannels)
		l.dB = tensor.New(p.OutChannels)
	}
	return l
}

// Name implements Layer.
func (l *ConvLayer) Name() string { return l.name }

// Forward implements Layer. At inference the layer dispatches to the
// kernel of its configured precision; training (and calibration) always
// runs the float64 master path.
func (l *ConvLayer) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	if !training && !l.calib {
		switch l.prec {
		case tensor.F32:
			y, err := tensor.Conv2DF32(x, l.w32, l.B, l.P)
			if err != nil {
				return nil, fmt.Errorf("conv %s: %w", l.name, err)
			}
			return y, nil
		case tensor.I8:
			y, err := tensor.Conv2DI8(x, l.w8, l.B, l.P, l.actScale)
			if err != nil {
				return nil, fmt.Errorf("conv %s: %w", l.name, err)
			}
			return y, nil
		}
	}
	if l.calib {
		l.observe(x)
	}
	y, err := tensor.Conv2D(x, l.W, l.B, l.P)
	if err != nil {
		return nil, fmt.Errorf("conv %s: %w", l.name, err)
	}
	if training {
		l.lastX = x
		l.hasFwd = true
	}
	return y, nil
}

// releaseChain frees a pooled intermediate activation of an inference
// forward chain. It refuses to release the chain input (caller-owned)
// and the value being carried forward.
func releaseChain(t, in, out *tensor.Tensor) {
	if t != in && t != out {
		tensor.Release(t)
	}
}

// Backward implements Layer.
func (l *ConvLayer) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	if !l.hasFwd {
		return nil, fmt.Errorf("%w: conv %s backward before forward", ErrState, l.name)
	}
	grads, err := tensor.Conv2DBackward(dy, l.lastX, l.W, l.P, l.B != nil)
	if err != nil {
		return nil, fmt.Errorf("conv %s backward: %w", l.name, err)
	}
	if err := l.dW.AddInPlace(grads.DW); err != nil {
		return nil, err
	}
	if l.dB != nil {
		if err := l.dB.AddInPlace(grads.DB); err != nil {
			return nil, err
		}
	}
	// The weight gradients were folded into the layer accumulators;
	// recycle their pooled storage. DX travels up the chain.
	tensor.Release(grads.DW)
	tensor.Release(grads.DB)
	return grads.DX, nil
}

// Params implements Layer.
func (l *ConvLayer) Params() []*tensor.Tensor {
	if l.B != nil {
		return []*tensor.Tensor{l.W, l.B}
	}
	return []*tensor.Tensor{l.W}
}

// Grads implements Layer.
func (l *ConvLayer) Grads() []*tensor.Tensor {
	if l.dB != nil {
		return []*tensor.Tensor{l.dW, l.dB}
	}
	return []*tensor.Tensor{l.dW}
}

// ZeroGrads implements Layer.
func (l *ConvLayer) ZeroGrads() {
	l.dW.Zero()
	if l.dB != nil {
		l.dB.Zero()
	}
}

// BatchNormLayer wraps tensor.BatchNorm2D as a trainable layer.
type BatchNormLayer struct {
	name    string
	State   *tensor.BatchNormState
	dGamma  *tensor.Tensor
	dBeta   *tensor.Tensor
	lastRes *tensor.BatchNormResult
}

// NewBatchNormLayer constructs a batch-norm layer over the given channels.
func NewBatchNormLayer(name string, channels int) *BatchNormLayer {
	return &BatchNormLayer{
		name:   name,
		State:  tensor.NewBatchNormState(channels),
		dGamma: tensor.New(channels),
		dBeta:  tensor.New(channels),
	}
}

// Name implements Layer.
func (l *BatchNormLayer) Name() string { return l.name }

// Forward implements Layer.
func (l *BatchNormLayer) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	if !training && x.Rank() == 4 {
		// Inference fast path: running statistics into a pooled output,
		// no xhat cache, no result struct.
		y := tensor.RentLike(x)
		if err := tensor.BatchNorm2DInto(y, x, l.State); err != nil {
			tensor.Release(y)
			return nil, fmt.Errorf("bn %s: %w", l.name, err)
		}
		return y, nil
	}
	res, err := tensor.BatchNorm2D(x, l.State, training)
	if err != nil {
		return nil, fmt.Errorf("bn %s: %w", l.name, err)
	}
	if training {
		l.lastRes = res
	}
	return res.Out, nil
}

// Backward implements Layer.
func (l *BatchNormLayer) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	if l.lastRes == nil {
		return nil, fmt.Errorf("%w: bn %s backward before forward", ErrState, l.name)
	}
	grads, err := l.lastRes.Backward(dy)
	if err != nil {
		return nil, fmt.Errorf("bn %s backward: %w", l.name, err)
	}
	if err := l.dGamma.AddInPlace(grads.DGamma); err != nil {
		return nil, err
	}
	if err := l.dBeta.AddInPlace(grads.DBeta); err != nil {
		return nil, err
	}
	return grads.DX, nil
}

// Params implements Layer.
func (l *BatchNormLayer) Params() []*tensor.Tensor {
	return []*tensor.Tensor{l.State.Gamma, l.State.Beta}
}

// Grads implements Layer.
func (l *BatchNormLayer) Grads() []*tensor.Tensor {
	return []*tensor.Tensor{l.dGamma, l.dBeta}
}

// ZeroGrads implements Layer.
func (l *BatchNormLayer) ZeroGrads() {
	l.dGamma.Zero()
	l.dBeta.Zero()
}

// ReLULayer is a parameter-free rectifier.
type ReLULayer struct {
	name string
	mask []bool
}

// NewReLULayer constructs a named ReLU.
func NewReLULayer(name string) *ReLULayer { return &ReLULayer{name: name} }

// Name implements Layer.
func (l *ReLULayer) Name() string { return l.name }

// Forward implements Layer.
func (l *ReLULayer) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	if !training {
		y := tensor.RentLike(x)
		if err := tensor.ReLUInto(y, x); err != nil {
			tensor.Release(y)
			return nil, fmt.Errorf("relu %s: %w", l.name, err)
		}
		return y, nil
	}
	y, mask := tensor.ReLU(x)
	l.mask = mask
	return y, nil
}

// Backward implements Layer.
func (l *ReLULayer) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	if l.mask == nil {
		return nil, fmt.Errorf("%w: relu %s backward before forward", ErrState, l.name)
	}
	dx, err := tensor.ReLUBackward(dy, l.mask)
	if err != nil {
		return nil, fmt.Errorf("relu %s backward: %w", l.name, err)
	}
	return dx, nil
}

// Params implements Layer.
func (l *ReLULayer) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *ReLULayer) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (l *ReLULayer) ZeroGrads() {}

// MaxPoolLayer wraps tensor.MaxPool2D.
type MaxPoolLayer struct {
	name string
	P    tensor.PoolParams
	last *tensor.MaxPool2DResult
}

// NewMaxPoolLayer constructs a max-pooling layer.
func NewMaxPoolLayer(name string, p tensor.PoolParams) *MaxPoolLayer {
	return &MaxPoolLayer{name: name, P: p}
}

// Name implements Layer.
func (l *MaxPoolLayer) Name() string { return l.name }

// Forward implements Layer.
func (l *MaxPoolLayer) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	if !training && x.Rank() == 4 {
		oh, ow := l.P.OutSize(x.Dim(2), x.Dim(3))
		if oh > 0 && ow > 0 {
			y := tensor.Rent(x.Dim(0), x.Dim(1), oh, ow)
			if err := tensor.MaxPool2DInto(y, x, l.P); err != nil {
				tensor.Release(y)
				return nil, fmt.Errorf("maxpool %s: %w", l.name, err)
			}
			return y, nil
		}
	}
	res, err := tensor.MaxPool2D(x, l.P)
	if err != nil {
		return nil, fmt.Errorf("maxpool %s: %w", l.name, err)
	}
	if training {
		l.last = res
	}
	return res.Out, nil
}

// Backward implements Layer.
func (l *MaxPoolLayer) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	if l.last == nil {
		return nil, fmt.Errorf("%w: maxpool %s backward before forward", ErrState, l.name)
	}
	dx, err := l.last.Backward(dy)
	if err != nil {
		return nil, fmt.Errorf("maxpool %s backward: %w", l.name, err)
	}
	return dx, nil
}

// Params implements Layer.
func (l *MaxPoolLayer) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *MaxPoolLayer) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (l *MaxPoolLayer) ZeroGrads() {}

// GlobalAvgPoolLayer reduces (N,C,H,W) to (N,C).
type GlobalAvgPoolLayer struct {
	name    string
	inShape []int
}

// NewGlobalAvgPoolLayer constructs a global average pooling layer.
func NewGlobalAvgPoolLayer(name string) *GlobalAvgPoolLayer {
	return &GlobalAvgPoolLayer{name: name}
}

// Name implements Layer.
func (l *GlobalAvgPoolLayer) Name() string { return l.name }

// Forward implements Layer.
func (l *GlobalAvgPoolLayer) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	if !training && x.Rank() == 4 {
		y := tensor.Rent(x.Dim(0), x.Dim(1))
		if err := tensor.GlobalAvgPool2DInto(y, x); err != nil {
			tensor.Release(y)
			return nil, fmt.Errorf("gap %s: %w", l.name, err)
		}
		return y, nil
	}
	y, err := tensor.GlobalAvgPool2D(x)
	if err != nil {
		return nil, fmt.Errorf("gap %s: %w", l.name, err)
	}
	if training {
		l.inShape = x.Shape()
	}
	return y, nil
}

// Backward implements Layer.
func (l *GlobalAvgPoolLayer) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	if l.inShape == nil {
		return nil, fmt.Errorf("%w: gap %s backward before forward", ErrState, l.name)
	}
	dx, err := tensor.GlobalAvgPool2DBackward(dy, l.inShape)
	if err != nil {
		return nil, fmt.Errorf("gap %s backward: %w", l.name, err)
	}
	return dx, nil
}

// Params implements Layer.
func (l *GlobalAvgPoolLayer) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (l *GlobalAvgPoolLayer) Grads() []*tensor.Tensor { return nil }

// ZeroGrads implements Layer.
func (l *GlobalAvgPoolLayer) ZeroGrads() {}

// LinearLayer is a fully connected layer with bias.
type LinearLayer struct {
	name  string
	W     *tensor.Tensor
	B     *tensor.Tensor
	dW    *tensor.Tensor
	dB    *tensor.Tensor
	lastX *tensor.Tensor

	// Reduced-precision inference state; see the ConvLayer fields.
	prec     tensor.Precision
	w32      *tensor.LinearWeightsF32
	w8       *tensor.LinearWeightsI8
	actScale float64
	calib    bool
}

// NewLinearLayer constructs a Xavier-initialized fully connected layer.
func NewLinearLayer(name string, in, out int, rng *rand.Rand) *LinearLayer {
	l := &LinearLayer{
		name: name,
		W:    tensor.New(out, in),
		B:    tensor.New(out),
		dW:   tensor.New(out, in),
		dB:   tensor.New(out),
	}
	tensor.XavierInit(l.W, in, out, rng)
	return l
}

// Name implements Layer.
func (l *LinearLayer) Name() string { return l.name }

// Forward implements Layer. Inference dispatches on the configured
// precision like ConvLayer.Forward.
func (l *LinearLayer) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	if !training && !l.calib {
		switch l.prec {
		case tensor.F32:
			y, err := tensor.LinearF32(x, l.w32, l.B)
			if err != nil {
				return nil, fmt.Errorf("linear %s: %w", l.name, err)
			}
			return y, nil
		case tensor.I8:
			y, err := tensor.LinearI8(x, l.w8, l.B, l.actScale)
			if err != nil {
				return nil, fmt.Errorf("linear %s: %w", l.name, err)
			}
			return y, nil
		}
	}
	if l.calib {
		l.observe(x)
	}
	y, err := tensor.Linear(x, l.W, l.B)
	if err != nil {
		return nil, fmt.Errorf("linear %s: %w", l.name, err)
	}
	if training {
		l.lastX = x
	}
	return y, nil
}

// Backward implements Layer.
func (l *LinearLayer) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	if l.lastX == nil {
		return nil, fmt.Errorf("%w: linear %s backward before forward", ErrState, l.name)
	}
	grads, err := tensor.LinearBackward(dy, l.lastX, l.W, true)
	if err != nil {
		return nil, fmt.Errorf("linear %s backward: %w", l.name, err)
	}
	if err := l.dW.AddInPlace(grads.DW); err != nil {
		return nil, err
	}
	if err := l.dB.AddInPlace(grads.DB); err != nil {
		return nil, err
	}
	return grads.DX, nil
}

// Params implements Layer.
func (l *LinearLayer) Params() []*tensor.Tensor { return []*tensor.Tensor{l.W, l.B} }

// Grads implements Layer.
func (l *LinearLayer) Grads() []*tensor.Tensor { return []*tensor.Tensor{l.dW, l.dB} }

// ZeroGrads implements Layer.
func (l *LinearLayer) ZeroGrads() {
	l.dW.Zero()
	l.dB.Zero()
}
