package dnn

import (
	"fmt"
	"math/rand"

	"offloadnn/internal/tensor"
)

// MobileNetConfig parameterizes the MobileNetV2-style builder. As with
// ResNet, the reproduction uses scaled-down widths; the block/stage
// decomposition (stem + 4 stages + classifier) matches the sharing
// granularity used throughout.
type MobileNetConfig struct {
	InChannels  int
	NumClasses  int
	BaseWidth   int // first-stage width (e.g., 8 at test scale)
	Expansion   int // inverted-residual expansion factor (6 in the paper's MobileNetV2)
	StageBlocks [4]int
	Seed        int64
}

// DefaultMobileNetConfig returns a test-scale MobileNetV2-style network.
func DefaultMobileNetConfig() MobileNetConfig {
	return MobileNetConfig{
		InChannels:  3,
		NumClasses:  8,
		BaseWidth:   8,
		Expansion:   2,
		StageBlocks: [4]int{1, 2, 2, 1},
		Seed:        1,
	}
}

// invertedResidual approximates the MobileNetV2 unit with the layers the
// engine supports: a 1×1 expansion conv, a 3×3 conv at the expanded width
// (standing in for the depthwise conv), and a 1×1 projection, with a
// residual connection when the shapes allow it. Structurally it exposes
// the same pruning axis (the expanded width) as the real block.
type invertedResidual struct {
	name   string
	Expand *ConvLayer
	BNe    *BatchNormLayer
	ReluE  *ReLULayer
	Mid    *ConvLayer
	BNm    *BatchNormLayer
	ReluM  *ReLULayer
	Proj   *ConvLayer
	BNp    *BatchNormLayer

	residual bool
	lastX    *tensor.Tensor
}

func newInvertedResidual(name string, in, expanded, out, stride int, rng *rand.Rand) *invertedResidual {
	return &invertedResidual{
		name: name,
		Expand: NewConvLayer(name+".expand", tensor.Conv2DParams{
			InChannels: in, OutChannels: expanded, Kernel: 1, Stride: 1,
		}, false, rng),
		BNe:   NewBatchNormLayer(name+".bne", expanded),
		ReluE: NewReLULayer(name + ".relue"),
		Mid: NewConvLayer(name+".mid", tensor.Conv2DParams{
			InChannels: expanded, OutChannels: expanded, Kernel: 3, Stride: stride, Padding: 1,
		}, false, rng),
		BNm:   NewBatchNormLayer(name+".bnm", expanded),
		ReluM: NewReLULayer(name + ".relum"),
		Proj: NewConvLayer(name+".proj", tensor.Conv2DParams{
			InChannels: expanded, OutChannels: out, Kernel: 1, Stride: 1,
		}, false, rng),
		BNp:      NewBatchNormLayer(name+".bnp", out),
		residual: stride == 1 && in == out,
	}
}

// Name implements Layer.
func (b *invertedResidual) Name() string { return b.name }

// Forward implements Layer.
func (b *invertedResidual) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	// At inference each consumed pooled intermediate is released right
	// after the next layer produces its output.
	step := func(l Layer, in *tensor.Tensor) (*tensor.Tensor, error) {
		out, err := l.Forward(in, training)
		if err != nil {
			return nil, err
		}
		if !training {
			releaseChain(in, x, out)
		}
		return out, nil
	}
	h, err := b.Expand.Forward(x, training)
	if err != nil {
		return nil, err
	}
	if h, err = step(b.BNe, h); err != nil {
		return nil, err
	}
	if h, err = step(b.ReluE, h); err != nil {
		return nil, err
	}
	if h, err = step(b.Mid, h); err != nil {
		return nil, err
	}
	if h, err = step(b.BNm, h); err != nil {
		return nil, err
	}
	if h, err = step(b.ReluM, h); err != nil {
		return nil, err
	}
	if h, err = step(b.Proj, h); err != nil {
		return nil, err
	}
	if h, err = step(b.BNp, h); err != nil {
		return nil, err
	}
	if b.residual {
		if err = h.AddInPlace(x); err != nil {
			return nil, fmt.Errorf("block %s residual add: %w", b.name, err)
		}
		if training {
			b.lastX = x
		}
	}
	return h, nil
}

// Backward implements Layer.
func (b *invertedResidual) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	d, err := b.BNp.Backward(dy)
	if err != nil {
		return nil, err
	}
	if d, err = b.Proj.Backward(d); err != nil {
		return nil, err
	}
	if d, err = b.ReluM.Backward(d); err != nil {
		return nil, err
	}
	if d, err = b.BNm.Backward(d); err != nil {
		return nil, err
	}
	if d, err = b.Mid.Backward(d); err != nil {
		return nil, err
	}
	if d, err = b.ReluE.Backward(d); err != nil {
		return nil, err
	}
	if d, err = b.BNe.Backward(d); err != nil {
		return nil, err
	}
	dx, err := b.Expand.Backward(d)
	if err != nil {
		return nil, err
	}
	if b.residual {
		if err = dx.AddInPlace(dy); err != nil {
			return nil, fmt.Errorf("block %s skip-grad add: %w", b.name, err)
		}
	}
	return dx, nil
}

// Params implements Layer.
func (b *invertedResidual) Params() []*tensor.Tensor {
	out := append([]*tensor.Tensor{}, b.Expand.Params()...)
	out = append(out, b.BNe.Params()...)
	out = append(out, b.Mid.Params()...)
	out = append(out, b.BNm.Params()...)
	out = append(out, b.Proj.Params()...)
	out = append(out, b.BNp.Params()...)
	return out
}

// Grads implements Layer.
func (b *invertedResidual) Grads() []*tensor.Tensor {
	out := append([]*tensor.Tensor{}, b.Expand.Grads()...)
	out = append(out, b.BNe.Grads()...)
	out = append(out, b.Mid.Grads()...)
	out = append(out, b.BNm.Grads()...)
	out = append(out, b.Proj.Grads()...)
	out = append(out, b.BNp.Grads()...)
	return out
}

// ZeroGrads implements Layer.
func (b *invertedResidual) ZeroGrads() {
	b.Expand.ZeroGrads()
	b.BNe.ZeroGrads()
	b.Mid.ZeroGrads()
	b.BNm.ZeroGrads()
	b.Proj.ZeroGrads()
	b.BNp.ZeroGrads()
}

// BuildMobileNetV2 constructs a stem + 4 stages + classifier model with
// inverted-residual units, giving the block catalog a second architecture
// family with a markedly lower parameter count than ResNet-18 (the
// MobileNetV2-vs-ResNet trade-off the paper's introduction cites).
func BuildMobileNetV2(cfg MobileNetConfig) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := cfg.BaseWidth
	widths := [4]int{w, 2 * w, 4 * w, 8 * w}

	stem := NewBlock("mobilenetv2/stem", 0, VariantBase,
		NewConvLayer("stem.conv", tensor.Conv2DParams{
			InChannels: cfg.InChannels, OutChannels: w, Kernel: 3, Stride: 1, Padding: 1,
		}, false, rng),
		NewBatchNormLayer("stem.bn", w),
		NewReLULayer("stem.relu"),
		NewMaxPoolLayer("stem.pool", tensor.PoolParams{Kernel: 2, Stride: 2}),
	)

	blocks := []*Block{stem}
	in := w
	for stage := 0; stage < 4; stage++ {
		out := widths[stage]
		stride := 1
		if stage > 0 {
			stride = 2
		}
		var layers []Layer
		for unit := 0; unit < cfg.StageBlocks[stage]; unit++ {
			s := 1
			if unit == 0 {
				s = stride
			}
			name := fmt.Sprintf("mbstage%d.unit%d", stage+1, unit+1)
			layers = append(layers, newInvertedResidual(name, in, in*cfg.Expansion, out, s, rng))
			in = out
		}
		blocks = append(blocks, NewBlock(fmt.Sprintf("mobilenetv2/stage%d", stage+1), stage+1, VariantBase, layers...))
	}

	classifier := NewBlock("mobilenetv2/classifier", 5, VariantBase,
		NewGlobalAvgPoolLayer("head.gap"),
		NewLinearLayer("head.fc", widths[3], cfg.NumClasses, rng),
	)
	blocks = append(blocks, classifier)
	return &Model{Arch: "mobilenetv2", Blocks: blocks}
}
