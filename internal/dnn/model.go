package dnn

import (
	"fmt"
	"sync"

	"offloadnn/internal/tensor"
)

// Model is a sequence of layer-blocks ending in a classifier. Models built
// for different tasks may alias the same *Block values; the aliased blocks
// are then deployed (and their memory charged) once, which is the memory
// sharing the DOT formulation exploits.
type Model struct {
	// Arch names the architecture family (e.g., "resnet18").
	Arch string
	// Blocks in forward order: stem, stages, classifier.
	Blocks []*Block
}

// Forward runs the full model. At inference the pooled activation passed
// between blocks is released once the next block has consumed it.
func (m *Model) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	in := x
	for _, b := range m.Blocks {
		y, err := b.Forward(x, training)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", m.Arch, err)
		}
		if !training {
			releaseChain(x, in, y)
		}
		x = y
	}
	return x, nil
}

// ForwardBatch runs an inference-only forward pass, sharding the batch
// across up to tensor.Parallelism() goroutines. Each shard is a contiguous
// view of the input's NCHW storage run through Forward independently; since
// every layer is per-sample at inference (batch norm uses running
// statistics), the assembled output matches Forward(x, false) bit for bit.
// The shards use plain goroutines rather than the tensor worker pool, so
// the kernels inside each shard remain free to use the pool.
func (m *Model) ForwardBatch(x *tensor.Tensor) (*tensor.Tensor, error) {
	workers := tensor.Parallelism()
	if x.Rank() != 4 || workers <= 1 || x.Dim(0) <= 1 {
		return m.Forward(x, false)
	}
	n := x.Dim(0)
	if workers > n {
		workers = n
	}
	per := x.Len() / n
	bounds := make([][2]int, workers)
	for i, lo := 0, 0; i < workers; i++ {
		sz := n / workers
		if i < n%workers {
			sz++
		}
		bounds[i] = [2]int{lo, lo + sz}
		lo += sz
	}
	outs := make([]*tensor.Tensor, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			lo, hi := bounds[i][0], bounds[i][1]
			shape := x.Shape()
			shape[0] = hi - lo
			chunk, err := tensor.FromSlice(x.Data()[lo*per:hi*per], shape...)
			if err != nil {
				errs[i] = err
				return
			}
			outs[i], errs[i] = m.Forward(chunk, false)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			for _, o := range outs {
				tensor.Release(o)
			}
			return nil, fmt.Errorf("model %s: batch shard %d: %w", m.Arch, i, err)
		}
	}
	outPer := outs[0].Len() / (bounds[0][1] - bounds[0][0])
	shape := outs[0].Shape()
	shape[0] = n
	y := tensor.Rent(shape...)
	for i, o := range outs {
		copy(y.Data()[bounds[i][0]*outPer:], o.Data())
		tensor.Release(o)
	}
	return y, nil
}

// Backward propagates the loss gradient through all blocks (frozen blocks
// still propagate input gradients but their parameter updates are skipped
// by the optimizer, mirroring requires_grad=False fine-tuning).
func (m *Model) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	var err error
	for i := len(m.Blocks) - 1; i >= 0; i-- {
		// Gradients below the deepest trainable block are never consumed,
		// so stop early: this is what makes frozen-backbone fine-tuning
		// cheaper, the effect Fig. 2(right) measures.
		dy, err = m.Blocks[i].Backward(dy)
		if err != nil {
			return nil, fmt.Errorf("model %s: %w", m.Arch, err)
		}
		if i > 0 && m.lowestTrainable() == i {
			return dy, nil
		}
	}
	return dy, nil
}

// lowestTrainable returns the index of the first non-frozen block, or
// len(Blocks) when everything is frozen.
func (m *Model) lowestTrainable() int {
	for i, b := range m.Blocks {
		if !b.Frozen {
			return i
		}
	}
	return len(m.Blocks)
}

// ZeroGrads clears accumulated gradients in all blocks.
func (m *Model) ZeroGrads() {
	for _, b := range m.Blocks {
		b.ZeroGrads()
	}
}

// TrainableParams returns the parameters of non-frozen blocks only.
func (m *Model) TrainableParams() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, b := range m.Blocks {
		if !b.Frozen {
			out = append(out, b.Params()...)
		}
	}
	return out
}

// TrainableGrads returns gradients parallel to TrainableParams.
func (m *Model) TrainableGrads() []*tensor.Tensor {
	var out []*tensor.Tensor
	for _, b := range m.Blocks {
		if !b.Frozen {
			out = append(out, b.Grads()...)
		}
	}
	return out
}

// ParamCount returns the total number of scalar parameters.
func (m *Model) ParamCount() int {
	n := 0
	for _, b := range m.Blocks {
		n += b.ParamCount()
	}
	return n
}

// TrainableParamCount returns the number of parameters in non-frozen
// blocks.
func (m *Model) TrainableParamCount() int {
	n := 0
	for _, b := range m.Blocks {
		if !b.Frozen {
			n += b.ParamCount()
		}
	}
	return n
}

// MemoryBytes sums the deployment footprint of all blocks. When several
// models alias blocks, use DeployedMemoryBytes over the model set instead.
func (m *Model) MemoryBytes() int64 {
	var n int64
	for _, b := range m.Blocks {
		n += b.MemoryBytes()
	}
	return n
}

// FreezeStages freezes the blocks whose Stage number appears in stages
// (stage 0 is the stem, 1–4 the residual stages, 5 the classifier).
func (m *Model) FreezeStages(stages ...int) {
	set := make(map[int]bool, len(stages))
	for _, s := range stages {
		set[s] = true
	}
	for _, b := range m.Blocks {
		if set[b.Stage] {
			b.Frozen = true
		}
	}
}

// BlockByStage returns the block with the given stage number, or nil.
func (m *Model) BlockByStage(stage int) *Block {
	for _, b := range m.Blocks {
		if b.Stage == stage {
			return b
		}
	}
	return nil
}

// DeployedMemoryBytes computes the total memory of a set of models counting
// each distinct block (by pointer identity) once — the m(s^d) semantics of
// constraint (1b).
func DeployedMemoryBytes(models []*Model) int64 {
	seen := make(map[*Block]bool)
	var total int64
	for _, m := range models {
		for _, b := range m.Blocks {
			if !seen[b] {
				seen[b] = true
				total += b.MemoryBytes()
			}
		}
	}
	return total
}

// ParamsCompatible reports whether two blocks have identical parameter
// tensor shapes — the CopyWeights precondition, and the adoption check
// for zero-copy artifact blocks.
func ParamsCompatible(a, b *Block) bool {
	ap, bp := a.Params(), b.Params()
	if len(ap) != len(bp) {
		return false
	}
	for i := range ap {
		if !ap[i].SameShape(bp[i]) {
			return false
		}
	}
	return true
}

// CopyWeights copies parameter values from src into dst. The two blocks
// must have identical parameter shapes (i.e., same structure and widths).
func CopyWeights(dst, src *Block) error {
	dp, sp := dst.Params(), src.Params()
	if len(dp) != len(sp) {
		return fmt.Errorf("dnn: copy weights %s<-%s: %d vs %d params", dst.ID, src.ID, len(dp), len(sp))
	}
	for i := range dp {
		if !dp[i].SameShape(sp[i]) {
			return fmt.Errorf("dnn: copy weights %s<-%s: param %d shape %v vs %v",
				dst.ID, src.ID, i, dp[i].Shape(), sp[i].Shape())
		}
		copy(dp[i].Data(), sp[i].Data())
	}
	// Batch-norm running statistics are state, not parameters; copy them
	// too so an evaluation-mode clone behaves identically.
	copyRunningStats(dst, src)
	// New master weights invalidate any prepared narrow-kernel caches.
	if err := dst.refreshPrecision(); err != nil {
		return fmt.Errorf("dnn: copy weights %s<-%s: %w", dst.ID, src.ID, err)
	}
	return nil
}

func copyRunningStats(dst, src *Block) {
	db := collectBN(dst)
	sb := collectBN(src)
	if len(db) != len(sb) {
		return
	}
	for i := range db {
		if db[i].State.Channels() == sb[i].State.Channels() {
			copy(db[i].State.RunningMean.Data(), sb[i].State.RunningMean.Data())
			copy(db[i].State.RunningVar.Data(), sb[i].State.RunningVar.Data())
		}
	}
}

func collectBN(b *Block) []*BatchNormLayer {
	var out []*BatchNormLayer
	for _, l := range b.layers {
		switch v := l.(type) {
		case *BatchNormLayer:
			out = append(out, v)
		case *BasicBlock:
			out = append(out, v.BN1, v.BN2)
			if v.DownBN != nil {
				out = append(out, v.DownBN)
			}
		}
	}
	return out
}
