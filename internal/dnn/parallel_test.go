package dnn

import (
	"math/rand"
	"sync"
	"testing"

	"offloadnn/internal/tensor"
)

func randInput(rng *rand.Rand, shape ...int) *tensor.Tensor {
	x := tensor.New(shape...)
	d := x.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return x
}

// TestForwardBatchMatchesForward pins the chunking invariant ForwardBatch
// relies on: every layer is per-sample at inference, so sharding the batch
// must reproduce the whole-batch forward bit for bit.
func TestForwardBatchMatchesForward(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	rng := rand.New(rand.NewSource(3))
	x := randInput(rng, 9, 3, 16, 16) // odd batch: uneven shards

	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	want, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 3, 4} {
		tensor.SetParallelism(workers)
		got, err := m.ForwardBatch(x)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !got.SameShape(want) {
			t.Fatalf("workers=%d: shape %v, want %v", workers, got.Shape(), want.Shape())
		}
		g, w := got.Data(), want.Data()
		for i := range g {
			if g[i] != w[i] {
				t.Fatalf("workers=%d: elem %d differs bitwise: %g vs %g", workers, i, g[i], w[i])
			}
		}
		tensor.Release(got)
	}
}

// TestConcurrentInferenceShareModel drives many concurrent inference
// forwards through one shared model. Run under -race this proves the
// inference path touches no shared mutable layer state.
func TestConcurrentInferenceShareModel(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	prev := tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)

	rng := rand.New(rand.NewSource(4))
	inputs := make([]*tensor.Tensor, 8)
	for i := range inputs {
		inputs[i] = randInput(rng, 2, 3, 16, 16)
	}

	var wg sync.WaitGroup
	errs := make([]error, len(inputs))
	for i, x := range inputs {
		wg.Add(1)
		go func(i int, x *tensor.Tensor) {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				y, err := m.Forward(x, false)
				if err != nil {
					errs[i] = err
					return
				}
				tensor.Release(y)
			}
		}(i, x)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", i, err)
		}
	}
}

// TestForwardBatchFallbacks covers the serial fallbacks: rank-2 input and
// batch size 1 both route through plain Forward.
func TestForwardBatchFallbacks(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	prev := tensor.SetParallelism(4)
	defer tensor.SetParallelism(prev)
	rng := rand.New(rand.NewSource(5))
	single := randInput(rng, 1, 3, 16, 16)
	got, err := m.ForwardBatch(single)
	if err != nil {
		t.Fatal(err)
	}
	want, err := m.Forward(single, false)
	if err != nil {
		t.Fatal(err)
	}
	g, w := got.Data(), want.Data()
	for i := range g {
		if g[i] != w[i] {
			t.Fatalf("batch-1 elem %d differs: %g vs %g", i, g[i], w[i])
		}
	}
}

// TestTrainingStillWorksAfterInference guards the training path against
// regressions from the pooled inference fast paths: a forward/backward
// cycle must still run and produce gradients after inference passes.
func TestTrainingStillWorksAfterInference(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	rng := rand.New(rand.NewSource(6))
	x := randInput(rng, 4, 3, 16, 16)
	if _, err := m.Forward(x, false); err != nil {
		t.Fatal(err)
	}
	logits, err := m.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := tensor.CrossEntropy(logits, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	m.ZeroGrads()
	if _, err := m.Backward(ce.Backward()); err != nil {
		t.Fatal(err)
	}
	nonZero := false
	for _, g := range m.TrainableGrads() {
		if g.MaxAbs() > 0 {
			nonZero = true
			break
		}
	}
	if !nonZero {
		t.Fatal("backward produced all-zero gradients")
	}
}
