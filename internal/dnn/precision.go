package dnn

import (
	"fmt"
	"strings"

	"offloadnn/internal/tensor"
)

// Precision threading: a block instantiated at f32 or i8 keeps its float64
// master weights (training, serialization and weight sharing are untouched)
// and additionally caches prepared narrow weights for the reduced-precision
// inference kernels. SetPrecision builds those caches eagerly so the
// steady-state Forward path allocates nothing; CopyWeights refreshes them
// whenever master weights change.

// BlockIDPrecision splits a catalog block ID into its base ID and the
// precision variant named by an "@f32"/"@i8" suffix ("@f64" is accepted
// and redundant). The suffix is how quantization is surfaced to the
// solver: "base/s3@i8" is a distinct priced block variant of "base/s3",
// but shares its trained weights — callers strip the suffix before
// resolving seeds, prune ratios and repository weights.
func BlockIDPrecision(id string) (string, tensor.Precision, error) {
	i := strings.LastIndex(id, "@")
	if i < 0 {
		return id, tensor.F64, nil
	}
	p, err := tensor.ParsePrecision(id[i+1:])
	if err != nil {
		return "", tensor.F64, fmt.Errorf("dnn: block id %q: %w", id, err)
	}
	return id[:i], p, nil
}

// precisioned is implemented by layers that own weight tensors and can
// instantiate narrow kernel caches for them.
type precisioned interface {
	SetPrecision(tensor.Precision) error
	Precision() tensor.Precision
}

// calibratable is implemented by layers that record activation ranges
// during a calibration pass.
type calibratable interface {
	setCalibrating(bool)
}

// SetPrecision selects the inference kernel precision of the convolution
// and (re)builds the prepared weight cache from the current master
// weights. The calibrated activation scale survives precision changes.
func (l *ConvLayer) SetPrecision(p tensor.Precision) error {
	switch p {
	case tensor.F64:
		l.w32, l.w8 = nil, nil
	case tensor.F32:
		w32, err := tensor.PrepareConvWeightsF32(l.W, l.P)
		if err != nil {
			return fmt.Errorf("conv %s: %w", l.name, err)
		}
		l.w32, l.w8 = w32, nil
	case tensor.I8:
		w8, err := tensor.PrepareConvWeightsI8(l.W, l.P)
		if err != nil {
			return fmt.Errorf("conv %s: %w", l.name, err)
		}
		l.w32, l.w8 = nil, w8
	default:
		return fmt.Errorf("conv %s: invalid precision %v", l.name, p)
	}
	l.prec = p
	return nil
}

// Precision returns the configured inference precision.
func (l *ConvLayer) Precision() tensor.Precision { return l.prec }

func (l *ConvLayer) setCalibrating(on bool) { l.calib = on }

// observe widens the recorded activation range with the current input.
func (l *ConvLayer) observe(x *tensor.Tensor) {
	if s := tensor.SymmetricScale(x.Data()); s > l.actScale {
		l.actScale = s
	}
}

// SetPrecision selects the inference kernel precision of the linear layer;
// see ConvLayer.SetPrecision.
func (l *LinearLayer) SetPrecision(p tensor.Precision) error {
	switch p {
	case tensor.F64:
		l.w32, l.w8 = nil, nil
	case tensor.F32:
		w32, err := tensor.PrepareLinearWeightsF32(l.W)
		if err != nil {
			return fmt.Errorf("linear %s: %w", l.name, err)
		}
		l.w32, l.w8 = w32, nil
	case tensor.I8:
		w8, err := tensor.PrepareLinearWeightsI8(l.W)
		if err != nil {
			return fmt.Errorf("linear %s: %w", l.name, err)
		}
		l.w32, l.w8 = nil, w8
	default:
		return fmt.Errorf("linear %s: invalid precision %v", l.name, p)
	}
	l.prec = p
	return nil
}

// Precision returns the configured inference precision.
func (l *LinearLayer) Precision() tensor.Precision { return l.prec }

func (l *LinearLayer) setCalibrating(on bool) { l.calib = on }

func (l *LinearLayer) observe(x *tensor.Tensor) {
	if s := tensor.SymmetricScale(x.Data()); s > l.actScale {
		l.actScale = s
	}
}

// SetPrecision propagates the precision to every convolution of the
// residual unit. Batch norm, the ReLUs and the residual add stay in
// float64 — they are cheap elementwise passes over the f64 interchange
// tensors.
func (b *BasicBlock) SetPrecision(p tensor.Precision) error {
	if err := b.Conv1.SetPrecision(p); err != nil {
		return fmt.Errorf("block %s: %w", b.name, err)
	}
	if err := b.Conv2.SetPrecision(p); err != nil {
		return fmt.Errorf("block %s: %w", b.name, err)
	}
	if b.DownConv != nil {
		if err := b.DownConv.SetPrecision(p); err != nil {
			return fmt.Errorf("block %s: %w", b.name, err)
		}
	}
	return nil
}

// Precision returns the configured inference precision.
func (b *BasicBlock) Precision() tensor.Precision { return b.Conv1.Precision() }

func (b *BasicBlock) setCalibrating(on bool) {
	b.Conv1.calib = on
	b.Conv2.calib = on
	if b.DownConv != nil {
		b.DownConv.calib = on
	}
}

// SetPrecision propagates the precision to every convolution of the
// inverted-residual unit; see BasicBlock.SetPrecision.
func (b *invertedResidual) SetPrecision(p tensor.Precision) error {
	for _, l := range []*ConvLayer{b.Expand, b.Mid, b.Proj} {
		if err := l.SetPrecision(p); err != nil {
			return fmt.Errorf("block %s: %w", b.name, err)
		}
	}
	return nil
}

// Precision returns the configured inference precision.
func (b *invertedResidual) Precision() tensor.Precision { return b.Expand.Precision() }

func (b *invertedResidual) setCalibrating(on bool) {
	b.Expand.calib = on
	b.Mid.calib = on
	b.Proj.calib = on
}

// SetPrecision instantiates the block's inference kernels at the given
// precision, eagerly building the narrow weight caches. The precision is
// a property of the deployed block (the paper's s^d): the solver prices
// "@f32"/"@i8" block variants separately, and MemoryBytes charges i8
// blocks one byte per parameter.
func (b *Block) SetPrecision(p tensor.Precision) error {
	if !p.Valid() {
		return fmt.Errorf("dnn: block %s: invalid precision %d", b.ID, p)
	}
	for _, l := range b.layers {
		if pl, ok := l.(precisioned); ok {
			if err := pl.SetPrecision(p); err != nil {
				return fmt.Errorf("dnn: block %s: %w", b.ID, err)
			}
		}
	}
	b.precision = p
	return nil
}

// Precision returns the precision the block is instantiated at (F64 for
// blocks that never saw SetPrecision).
func (b *Block) Precision() tensor.Precision { return b.precision }

// refreshPrecision rebuilds the narrow weight caches from the current
// master weights, keeping the configured precision and any calibrated
// activation scales.
func (b *Block) refreshPrecision() error {
	if b.precision == tensor.F64 {
		return nil
	}
	return b.SetPrecision(b.precision)
}

func (b *Block) setCalibrating(on bool) {
	for _, l := range b.layers {
		if cl, ok := l.(calibratable); ok {
			cl.setCalibrating(on)
		}
	}
}

// SetPrecision instantiates every block of the model at the given
// precision. Models sharing blocks see the change too — precision is
// per-block state, exactly like weights.
func (m *Model) SetPrecision(p tensor.Precision) error {
	for _, b := range m.Blocks {
		if err := b.SetPrecision(p); err != nil {
			return fmt.Errorf("model %s: %w", m.Arch, err)
		}
	}
	return nil
}
