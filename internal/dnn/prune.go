package dnn

import (
	"fmt"
	"math/rand"
	"sort"

	"offloadnn/internal/tensor"
)

// channelNorms computes the squared L2 norm of each output-channel filter
// of a conv weight tensor (Cout, Cin, K, K).
func channelNorms(w *tensor.Tensor) []float64 {
	cout := w.Dim(0)
	data := w.Data()
	per := len(data) / cout
	norms := make([]float64, cout)
	for c := 0; c < cout; c++ {
		s := 0.0
		for _, v := range data[c*per : (c+1)*per] {
			s += v * v
		}
		norms[c] = s
	}
	return norms
}

// topChannels returns the indices of the keep largest-norm channels, in
// ascending index order for deterministic weight layout.
func topChannels(norms []float64, keep int) []int {
	idx := make([]int, len(norms))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return norms[idx[a]] > norms[idx[b]] })
	kept := append([]int(nil), idx[:keep]...)
	sort.Ints(kept)
	return kept
}

// PruneBasicBlock returns a structurally pruned copy of src in which the
// internal width (conv1 output / conv2 input channels) is reduced by
// ratio, keeping the channels with the largest conv1 filter L2 norms —
// magnitude-based structured pruning at DepGraph granularity. The block
// interface (input/output channels, stride) is unchanged, so the pruned
// block drops into any path the original served.
func PruneBasicBlock(src *BasicBlock, ratio float64, rng *rand.Rand) (*BasicBlock, error) {
	if ratio < 0 || ratio >= 1 {
		return nil, fmt.Errorf("dnn: prune ratio %v outside [0,1)", ratio)
	}
	mid := src.MidChannels()
	keep := prunedWidth(mid, ratio)
	kept := topChannels(channelNorms(src.Conv1.W), keep)

	in := src.Conv1.P.InChannels
	out := src.Conv2.P.OutChannels
	stride := src.Conv1.P.Stride
	dst := NewBasicBlock(src.name+"-pruned", in, keep, out, stride, rng)

	// conv1: copy surviving filters wholesale.
	k := src.Conv1.P.Kernel
	per := in * k * k
	for ni, oi := range kept {
		copy(dst.Conv1.W.Data()[ni*per:(ni+1)*per], src.Conv1.W.Data()[oi*per:(oi+1)*per])
	}
	// bn1: copy surviving channel statistics and affine parameters.
	for ni, oi := range kept {
		dst.BN1.State.Gamma.Data()[ni] = src.BN1.State.Gamma.Data()[oi]
		dst.BN1.State.Beta.Data()[ni] = src.BN1.State.Beta.Data()[oi]
		dst.BN1.State.RunningMean.Data()[ni] = src.BN1.State.RunningMean.Data()[oi]
		dst.BN1.State.RunningVar.Data()[ni] = src.BN1.State.RunningVar.Data()[oi]
	}
	// conv2: slice the input-channel dimension down to the kept channels.
	k2 := src.Conv2.P.Kernel
	kk := k2 * k2
	for oc := 0; oc < out; oc++ {
		srcBase := oc * mid * kk
		dstBase := oc * keep * kk
		for ni, oi := range kept {
			copy(dst.Conv2.W.Data()[dstBase+ni*kk:dstBase+(ni+1)*kk],
				src.Conv2.W.Data()[srcBase+oi*kk:srcBase+(oi+1)*kk])
		}
	}
	// bn2 and the projection shortcut keep their full width.
	copy(dst.BN2.State.Gamma.Data(), src.BN2.State.Gamma.Data())
	copy(dst.BN2.State.Beta.Data(), src.BN2.State.Beta.Data())
	copy(dst.BN2.State.RunningMean.Data(), src.BN2.State.RunningMean.Data())
	copy(dst.BN2.State.RunningVar.Data(), src.BN2.State.RunningVar.Data())
	if src.DownConv != nil {
		copy(dst.DownConv.W.Data(), src.DownConv.W.Data())
		copy(dst.DownBN.State.Gamma.Data(), src.DownBN.State.Gamma.Data())
		copy(dst.DownBN.State.Beta.Data(), src.DownBN.State.Beta.Data())
		copy(dst.DownBN.State.RunningMean.Data(), src.DownBN.State.RunningMean.Data())
		copy(dst.DownBN.State.RunningVar.Data(), src.DownBN.State.RunningVar.Data())
	}
	return dst, nil
}

// PruneBlock returns a pruned copy of a residual-stage block (all layers
// must be *BasicBlock). The new block carries VariantPruned, the prune
// ratio, and the ID suffix "+pruned<ratio%>".
func PruneBlock(src *Block, ratio float64, rng *rand.Rand) (*Block, error) {
	layers := make([]Layer, 0, len(src.layers))
	for _, l := range src.layers {
		bb, ok := l.(*BasicBlock)
		if !ok {
			return nil, fmt.Errorf("dnn: prune block %s: layer %s is %T, not *BasicBlock", src.ID, l.Name(), l)
		}
		p, err := PruneBasicBlock(bb, ratio, rng)
		if err != nil {
			return nil, fmt.Errorf("dnn: prune block %s: %w", src.ID, err)
		}
		layers = append(layers, p)
	}
	out := NewBlock(fmt.Sprintf("%s+pruned%d", src.ID, int(ratio*100)), src.Stage, VariantPruned, layers...)
	out.PruneRatio = ratio
	return out, nil
}

// CloneBlock returns a deep copy of src (fresh layers, copied weights and
// statistics) under a new identifier. Cloned blocks are the starting point
// of fine-tuning: they begin at the base weights but evolve independently.
func CloneBlock(src *Block, newID string, rng *rand.Rand) (*Block, error) {
	layers := make([]Layer, 0, len(src.layers))
	for _, l := range src.layers {
		c, err := cloneLayer(l, rng)
		if err != nil {
			return nil, fmt.Errorf("dnn: clone block %s: %w", src.ID, err)
		}
		layers = append(layers, c)
	}
	out := NewBlock(newID, src.Stage, VariantFineTuned, layers...)
	out.PruneRatio = src.PruneRatio
	return out, nil
}

func cloneLayer(l Layer, rng *rand.Rand) (Layer, error) {
	switch v := l.(type) {
	case *ConvLayer:
		c := NewConvLayer(v.name, v.P, v.B != nil, rng)
		copy(c.W.Data(), v.W.Data())
		if v.B != nil {
			copy(c.B.Data(), v.B.Data())
		}
		return c, nil
	case *BatchNormLayer:
		c := NewBatchNormLayer(v.name, v.State.Channels())
		copy(c.State.Gamma.Data(), v.State.Gamma.Data())
		copy(c.State.Beta.Data(), v.State.Beta.Data())
		copy(c.State.RunningMean.Data(), v.State.RunningMean.Data())
		copy(c.State.RunningVar.Data(), v.State.RunningVar.Data())
		return c, nil
	case *ReLULayer:
		return NewReLULayer(v.name), nil
	case *MaxPoolLayer:
		return NewMaxPoolLayer(v.name, v.P), nil
	case *GlobalAvgPoolLayer:
		return NewGlobalAvgPoolLayer(v.name), nil
	case *LinearLayer:
		in := v.W.Dim(1)
		out := v.W.Dim(0)
		c := NewLinearLayer(v.name, in, out, rng)
		copy(c.W.Data(), v.W.Data())
		copy(c.B.Data(), v.B.Data())
		return c, nil
	case *BasicBlock:
		in := v.Conv1.P.InChannels
		mid := v.MidChannels()
		out := v.Conv2.P.OutChannels
		c := NewBasicBlock(v.name, in, mid, out, v.Conv1.P.Stride, rng)
		pairs := [][2]Layer{
			{c.Conv1, v.Conv1}, {c.BN1, v.BN1}, {c.Conv2, v.Conv2}, {c.BN2, v.BN2},
		}
		if v.DownConv != nil {
			pairs = append(pairs, [2]Layer{c.DownConv, v.DownConv}, [2]Layer{c.DownBN, v.DownBN})
		}
		for _, pr := range pairs {
			dp, sp := pr[0].Params(), pr[1].Params()
			for i := range dp {
				copy(dp[i].Data(), sp[i].Data())
			}
			if dbn, ok := pr[0].(*BatchNormLayer); ok {
				sbn := pr[1].(*BatchNormLayer)
				copy(dbn.State.RunningMean.Data(), sbn.State.RunningMean.Data())
				copy(dbn.State.RunningVar.Data(), sbn.State.RunningVar.Data())
			}
		}
		return c, nil
	default:
		return nil, fmt.Errorf("unsupported layer type %T", l)
	}
}
