package dnn

import (
	"fmt"
	"math/rand"

	"offloadnn/internal/tensor"
)

// Post-training quantization support: a calibration pass pins static
// activation scales for the int8 kernels, and an accuracy gate compares a
// quantized path against its float64 twin on a held-out batch. Deployment
// (internal/exec) runs Calibrate + Top1Delta at install time and falls
// back to a wider precision when the gate trips.

// Calibrate runs one float64 forward pass over x and records, for every
// convolution and linear layer, the maximum absolute input activation
// seen; the resulting symmetric scale becomes the static activation scale
// of the int8 kernels. Repeated calls widen the recorded ranges
// (max-merge), so calibration may stream several batches. The pass itself
// always runs the f64 master path regardless of the configured precision,
// so the observed ranges are exact.
func Calibrate(m *Model, x *tensor.Tensor) error {
	for _, b := range m.Blocks {
		b.setCalibrating(true)
	}
	defer func() {
		for _, b := range m.Blocks {
			b.setCalibrating(false)
		}
	}()
	y, err := m.Forward(x, false)
	if err != nil {
		return fmt.Errorf("dnn: calibrate %s: %w", m.Arch, err)
	}
	tensor.Release(y)
	return nil
}

// Top1Delta runs both models on x and returns the fraction of samples
// whose top-1 class differs — the accuracy-delta proxy the quantization
// gate thresholds. Neither model is mutated. The models must produce
// rank-2 (N, classes) logits of the same shape.
func Top1Delta(a, b *Model, x *tensor.Tensor) (float64, error) {
	ya, err := a.Forward(x, false)
	if err != nil {
		return 0, fmt.Errorf("dnn: top1 delta: model %s: %w", a.Arch, err)
	}
	yb, err := b.Forward(x, false)
	if err != nil {
		tensor.Release(ya)
		return 0, fmt.Errorf("dnn: top1 delta: model %s: %w", b.Arch, err)
	}
	defer tensor.Release(ya)
	defer tensor.Release(yb)
	if ya.Rank() != 2 || !ya.SameShape(yb) {
		return 0, fmt.Errorf("dnn: top1 delta: logit shapes %v vs %v", ya.Shape(), yb.Shape())
	}
	n, k := ya.Dim(0), ya.Dim(1)
	if n == 0 {
		return 0, nil
	}
	diff := 0
	for i := 0; i < n; i++ {
		if argmaxRow(ya.Data()[i*k:(i+1)*k]) != argmaxRow(yb.Data()[i*k:(i+1)*k]) {
			diff++
		}
	}
	return float64(diff) / float64(n), nil
}

func argmaxRow(row []float64) int {
	best := 0
	for i, v := range row {
		if v > row[best] {
			best = i
		}
	}
	return best
}

// CalibrationBatch builds a deterministic held-out batch (standard-normal
// pixels from a fixed seed) for calibration and gating. Determinism
// matters twice: every worker derives identical activation scales for a
// shared block, and the gate's verdict is reproducible across restarts.
func CalibrationBatch(n, c, h, w int, seed int64) *tensor.Tensor {
	rng := rand.New(rand.NewSource(seed))
	t := tensor.New(n, c, h, w)
	d := t.Data()
	for i := range d {
		d[i] = rng.NormFloat64()
	}
	return t
}
