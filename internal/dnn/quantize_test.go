package dnn

import (
	"testing"

	"offloadnn/internal/tensor"
)

// firstConv digs the stem convolution out of a model for white-box
// assertions about calibration state.
func firstConv(t *testing.T, m *Model) *ConvLayer {
	t.Helper()
	for _, l := range m.Blocks[0].layers {
		if c, ok := l.(*ConvLayer); ok {
			return c
		}
	}
	t.Fatal("no conv layer in stem block")
	return nil
}

func TestCalibrateRecordsActivationScales(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	c := firstConv(t, m)
	if c.actScale != 0 {
		t.Fatalf("fresh model actScale %v, want 0 (dynamic)", c.actScale)
	}
	x := CalibrationBatch(4, 3, 16, 16, 5)
	if err := Calibrate(m, x); err != nil {
		t.Fatal(err)
	}
	if c.actScale <= 0 {
		t.Fatalf("calibrated actScale %v, want > 0", c.actScale)
	}
	if c.calib {
		t.Fatal("calibration flag left set after Calibrate")
	}
	// A second pass over a smaller-range batch must not shrink the scale
	// (ranges max-merge).
	prev := c.actScale
	small := CalibrationBatch(1, 3, 16, 16, 5)
	for i, v := range small.Data() {
		small.Data()[i] = v * 1e-3
	}
	if err := Calibrate(m, small); err != nil {
		t.Fatal(err)
	}
	if c.actScale < prev {
		t.Fatalf("actScale shrank %v -> %v", prev, c.actScale)
	}
}

func TestTop1DeltaIdenticalModelsIsZero(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	clone := roundTrip(t, m)
	x := CalibrationBatch(6, 3, 16, 16, 9)
	d, err := Top1Delta(m, clone, x)
	if err != nil {
		t.Fatal(err)
	}
	if d != 0 {
		t.Fatalf("top-1 delta of identical models %v, want 0", d)
	}
}

func TestTop1DeltaDetectsDisagreement(t *testing.T) {
	cfg := DefaultResNetConfig()
	m := BuildResNet18(cfg)
	cfg.Seed = 99
	other := BuildResNet18(cfg)
	x := CalibrationBatch(8, 3, 16, 16, 9)
	d, err := Top1Delta(m, other, x)
	if err != nil {
		t.Fatal(err)
	}
	if d <= 0 || d > 1 {
		t.Fatalf("independent models top-1 delta %v, want in (0,1]", d)
	}
}

// The calibration batch is a pure function of its arguments — gate
// verdicts must be reproducible across processes.
func TestCalibrationBatchDeterministic(t *testing.T) {
	a := CalibrationBatch(3, 3, 8, 8, 42)
	b := CalibrationBatch(3, 3, 8, 8, 42)
	for i := range a.Data() {
		if a.Data()[i] != b.Data()[i] {
			t.Fatalf("batch differs at %d", i)
		}
	}
	c := CalibrationBatch(3, 3, 8, 8, 43)
	same := true
	for i := range a.Data() {
		if a.Data()[i] != c.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced the same batch")
	}
}

// Sharding the batch across workers must not change quantized outputs:
// calibrated scales are static, and uncalibrated i8 falls back to
// per-image dynamic scales, so per-sample results are shard-invariant.
func TestForwardBatchDeterministicPerPrecision(t *testing.T) {
	x := CalibrationBatch(9, 3, 16, 16, 3) // odd batch: uneven shards
	for _, tc := range []struct {
		prec      tensor.Precision
		calibrate bool
	}{
		{tensor.F64, false},
		{tensor.F32, false},
		{tensor.I8, false},
		{tensor.I8, true},
	} {
		m := BuildResNet18(DefaultResNetConfig())
		if tc.calibrate {
			if err := Calibrate(m, x); err != nil {
				t.Fatal(err)
			}
		}
		if err := m.SetPrecision(tc.prec); err != nil {
			t.Fatal(err)
		}
		prev := tensor.SetParallelism(1)
		want, err := m.Forward(x, false)
		if err != nil {
			tensor.SetParallelism(prev)
			t.Fatal(err)
		}
		for _, workers := range []int{1, 3, 4} {
			tensor.SetParallelism(workers)
			got, err := m.ForwardBatch(x)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", tc.prec, workers, err)
			}
			for i := range want.Data() {
				if want.Data()[i] != got.Data()[i] {
					t.Fatalf("%v (calibrated=%v) workers=%d: output %d differs",
						tc.prec, tc.calibrate, workers, i)
				}
			}
			tensor.Release(got)
		}
		tensor.SetParallelism(prev)
	}
}

// Steady-state inference must not allocate at any precision: all scratch
// comes from the freelists, prepared weights are cached, and the output
// is rented.
func TestForwardZeroAllocsPerPrecision(t *testing.T) {
	prev := tensor.SetParallelism(1)
	defer tensor.SetParallelism(prev)
	x := CalibrationBatch(1, 3, 16, 16, 7)
	for _, prec := range []tensor.Precision{tensor.F64, tensor.F32, tensor.I8} {
		m := BuildResNet18(DefaultResNetConfig())
		if err := m.SetPrecision(prec); err != nil {
			t.Fatal(err)
		}
		// Warm the freelists before measuring.
		for i := 0; i < 3; i++ {
			y, err := m.Forward(x, false)
			if err != nil {
				t.Fatal(err)
			}
			tensor.Release(y)
		}
		allocs := testing.AllocsPerRun(10, func() {
			y, err := m.Forward(x, false)
			if err != nil {
				t.Fatal(err)
			}
			tensor.Release(y)
		})
		if allocs > 0 {
			t.Errorf("%v: %v allocs/op in steady-state Forward, want 0", prec, allocs)
		}
	}
}

func TestBlockIDPrecision(t *testing.T) {
	for _, tc := range []struct {
		id   string
		base string
		prec tensor.Precision
		err  bool
	}{
		{"base/s1", "base/s1", tensor.F64, false},
		{"base/s1@f32", "base/s1", tensor.F32, false},
		{"ft/t3/s2/p50@i8", "ft/t3/s2/p50", tensor.I8, false},
		{"base/s1@f64", "base/s1", tensor.F64, false},
		{"base/s1@f16", "", tensor.F64, true},
	} {
		base, prec, err := BlockIDPrecision(tc.id)
		if tc.err {
			if err == nil {
				t.Fatalf("%q: want error", tc.id)
			}
			continue
		}
		if err != nil {
			t.Fatalf("%q: %v", tc.id, err)
		}
		if base != tc.base || prec != tc.prec {
			t.Fatalf("%q -> (%q,%v), want (%q,%v)", tc.id, base, prec, tc.base, tc.prec)
		}
	}
}

// Quantized-path memory accounting: an i8 block must report one byte per
// parameter against the f64 baseline's four (satellite fix: MemoryBytes
// derives from block precision).
func TestMemoryBytesFollowsPrecision(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	b := m.Blocks[1]
	f64Bytes := b.MemoryBytes()
	if err := b.SetPrecision(tensor.I8); err != nil {
		t.Fatal(err)
	}
	i8Bytes := b.MemoryBytes()
	if diff := f64Bytes - i8Bytes; diff != int64(b.ParamCount())*3 {
		t.Fatalf("i8 saves %d bytes, want 3 per param (%d)", diff, b.ParamCount()*3)
	}
	if err := b.SetPrecision(tensor.F32); err != nil {
		t.Fatal(err)
	}
	if b.MemoryBytes() != f64Bytes {
		t.Fatalf("f32 deployed bytes %d, want f64-equal %d (interchange stays f64)", b.MemoryBytes(), f64Bytes)
	}
}

// CopyWeights must rebuild the prepared narrow-weight caches so a weight
// refresh is immediately visible to the quantized kernels.
func TestCopyWeightsRefreshesPreparedKernels(t *testing.T) {
	cfg := DefaultResNetConfig()
	dst := BuildResNet18(cfg)
	cfg.Seed = 77
	src := BuildResNet18(cfg)
	if err := dst.SetPrecision(tensor.F32); err != nil {
		t.Fatal(err)
	}
	x := CalibrationBatch(2, 3, 16, 16, 1)
	before, err := dst.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dst.Blocks {
		if err := CopyWeights(dst.Blocks[i], src.Blocks[i]); err != nil {
			t.Fatal(err)
		}
	}
	after, err := dst.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range before.Data() {
		if before.Data()[i] != after.Data()[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("f32 outputs unchanged after CopyWeights — stale prepared kernels")
	}
	// And the refreshed caches must match the new master weights exactly:
	// a fresh instantiation at f32 gives bit-identical outputs.
	fresh := roundTrip(t, src)
	if err := fresh.SetPrecision(tensor.F32); err != nil {
		t.Fatal(err)
	}
	want, err := fresh.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data() {
		if want.Data()[i] != after.Data()[i] {
			t.Fatalf("refreshed kernels differ from fresh instantiation at %d", i)
		}
	}
}
