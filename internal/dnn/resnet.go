package dnn

import (
	"fmt"
	"math/rand"

	"offloadnn/internal/tensor"
)

// BasicBlock is the ResNet-18 residual unit:
//
//	y = relu( bn2(conv2( relu(bn1(conv1 x)) )) + skip(x) )
//
// where skip is the identity, or a 1×1 strided conv + bn when the spatial
// size or channel count changes. The internal width (conv1 output
// channels) is independently configurable, which is where structured
// pruning removes channels without changing the block interface.
type BasicBlock struct {
	name string

	Conv1 *ConvLayer
	BN1   *BatchNormLayer
	Relu1 *ReLULayer
	Conv2 *ConvLayer
	BN2   *BatchNormLayer

	// DownConv/DownBN implement the projection shortcut; nil for identity.
	DownConv *ConvLayer
	DownBN   *BatchNormLayer

	relu2Mask []bool
	lastX     *tensor.Tensor
}

// NewBasicBlock constructs a residual unit mapping in→out channels with the
// given stride and internal width mid (the pruning axis).
func NewBasicBlock(name string, in, mid, out, stride int, rng *rand.Rand) *BasicBlock {
	b := &BasicBlock{
		name: name,
		Conv1: NewConvLayer(name+".conv1", tensor.Conv2DParams{
			InChannels: in, OutChannels: mid, Kernel: 3, Stride: stride, Padding: 1,
		}, false, rng),
		BN1:   NewBatchNormLayer(name+".bn1", mid),
		Relu1: NewReLULayer(name + ".relu1"),
		Conv2: NewConvLayer(name+".conv2", tensor.Conv2DParams{
			InChannels: mid, OutChannels: out, Kernel: 3, Stride: 1, Padding: 1,
		}, false, rng),
		BN2: NewBatchNormLayer(name+".bn2", out),
	}
	if stride != 1 || in != out {
		b.DownConv = NewConvLayer(name+".down", tensor.Conv2DParams{
			InChannels: in, OutChannels: out, Kernel: 1, Stride: stride,
		}, false, rng)
		b.DownBN = NewBatchNormLayer(name+".downbn", out)
	}
	return b
}

// MidChannels returns the internal width of the block.
func (b *BasicBlock) MidChannels() int { return b.Conv1.P.OutChannels }

// Name implements Layer.
func (b *BasicBlock) Name() string { return b.name }

// Forward implements Layer.
func (b *BasicBlock) Forward(x *tensor.Tensor, training bool) (*tensor.Tensor, error) {
	h, err := b.Conv1.Forward(x, training)
	if err != nil {
		return nil, err
	}
	prev := h
	if h, err = b.BN1.Forward(h, training); err != nil {
		return nil, err
	}
	if !training {
		releaseChain(prev, x, h)
	}
	prev = h
	if h, err = b.Relu1.Forward(h, training); err != nil {
		return nil, err
	}
	if !training {
		releaseChain(prev, x, h)
	}
	prev = h
	if h, err = b.Conv2.Forward(h, training); err != nil {
		return nil, err
	}
	if !training {
		releaseChain(prev, x, h)
	}
	prev = h
	if h, err = b.BN2.Forward(h, training); err != nil {
		return nil, err
	}
	if !training {
		releaseChain(prev, x, h)
	}
	skip := x
	if b.DownConv != nil {
		if skip, err = b.DownConv.Forward(x, training); err != nil {
			return nil, err
		}
		prev = skip
		if skip, err = b.DownBN.Forward(skip, training); err != nil {
			return nil, err
		}
		if !training {
			releaseChain(prev, x, skip)
		}
	}
	if err = h.AddInPlace(skip); err != nil {
		return nil, fmt.Errorf("block %s residual add: %w", b.name, err)
	}
	if !training {
		releaseChain(skip, x, h)
		tensor.ReLUInPlaceInfer(h)
		return h, nil
	}
	b.relu2Mask = tensor.ReLUInPlace(h)
	b.lastX = x
	return h, nil
}

// Backward implements Layer.
func (b *BasicBlock) Backward(dy *tensor.Tensor) (*tensor.Tensor, error) {
	if b.relu2Mask == nil {
		return nil, fmt.Errorf("%w: block %s backward before forward", ErrState, b.name)
	}
	dSum, err := tensor.ReLUBackward(dy, b.relu2Mask)
	if err != nil {
		return nil, fmt.Errorf("block %s: %w", b.name, err)
	}
	// Main path.
	d, err := b.BN2.Backward(dSum)
	if err != nil {
		return nil, err
	}
	if d, err = b.Conv2.Backward(d); err != nil {
		return nil, err
	}
	if d, err = b.Relu1.Backward(d); err != nil {
		return nil, err
	}
	if d, err = b.BN1.Backward(d); err != nil {
		return nil, err
	}
	dxMain, err := b.Conv1.Backward(d)
	if err != nil {
		return nil, err
	}
	// Skip path.
	dxSkip := dSum
	if b.DownConv != nil {
		if dxSkip, err = b.DownBN.Backward(dSum); err != nil {
			return nil, err
		}
		if dxSkip, err = b.DownConv.Backward(dxSkip); err != nil {
			return nil, err
		}
	}
	if err = dxMain.AddInPlace(dxSkip); err != nil {
		return nil, fmt.Errorf("block %s skip-grad add: %w", b.name, err)
	}
	return dxMain, nil
}

// Params implements Layer.
func (b *BasicBlock) Params() []*tensor.Tensor {
	out := append([]*tensor.Tensor{}, b.Conv1.Params()...)
	out = append(out, b.BN1.Params()...)
	out = append(out, b.Conv2.Params()...)
	out = append(out, b.BN2.Params()...)
	if b.DownConv != nil {
		out = append(out, b.DownConv.Params()...)
		out = append(out, b.DownBN.Params()...)
	}
	return out
}

// Grads implements Layer.
func (b *BasicBlock) Grads() []*tensor.Tensor {
	out := append([]*tensor.Tensor{}, b.Conv1.Grads()...)
	out = append(out, b.BN1.Grads()...)
	out = append(out, b.Conv2.Grads()...)
	out = append(out, b.BN2.Grads()...)
	if b.DownConv != nil {
		out = append(out, b.DownConv.Grads()...)
		out = append(out, b.DownBN.Grads()...)
	}
	return out
}

// ZeroGrads implements Layer.
func (b *BasicBlock) ZeroGrads() {
	b.Conv1.ZeroGrads()
	b.BN1.ZeroGrads()
	b.Conv2.ZeroGrads()
	b.BN2.ZeroGrads()
	if b.DownConv != nil {
		b.DownConv.ZeroGrads()
		b.DownBN.ZeroGrads()
	}
}

// ResNetConfig parameterizes the scaled ResNet-18 builder. The paper uses
// the full ResNet-18 (BaseWidth 64, 224×224 inputs); tests and the
// profiler use reduced widths and image sizes, which preserve the relative
// per-stage cost shape.
type ResNetConfig struct {
	// InChannels of the input images (3 for RGB).
	InChannels int
	// NumClasses of the classifier head.
	NumClasses int
	// BaseWidth is the channel count of the first stage (64 in ResNet-18).
	BaseWidth int
	// StageBlocks is the number of residual units per stage ({2,2,2,2}
	// for ResNet-18).
	StageBlocks [4]int
	// PruneRatios optionally shrinks the internal width of each stage's
	// blocks by the given fraction (0 = unpruned).
	PruneRatios [4]float64
	// Seed drives weight initialization.
	Seed int64
}

// DefaultResNetConfig returns a test-scale ResNet-18: width 8, 2 units per
// stage, 8 classes.
func DefaultResNetConfig() ResNetConfig {
	return ResNetConfig{
		InChannels:  3,
		NumClasses:  8,
		BaseWidth:   8,
		StageBlocks: [4]int{2, 2, 2, 2},
		Seed:        1,
	}
}

// prunedWidth applies a prune ratio to a width, keeping at least one
// channel.
func prunedWidth(w int, ratio float64) int {
	if ratio <= 0 {
		return w
	}
	if ratio >= 1 {
		return 1
	}
	p := int(float64(w) * (1 - ratio))
	if p < 1 {
		p = 1
	}
	return p
}

// BuildResNet18 constructs the six-block model used throughout the
// reproduction: a stem block, four residual stages (the paper's four
// "layer-blocks") and a classifier block.
func BuildResNet18(cfg ResNetConfig) *Model {
	rng := rand.New(rand.NewSource(cfg.Seed))
	w := cfg.BaseWidth
	widths := [4]int{w, 2 * w, 4 * w, 8 * w}

	stem := NewBlock("resnet18/stem", 0, VariantBase,
		NewConvLayer("stem.conv", tensor.Conv2DParams{
			InChannels: cfg.InChannels, OutChannels: w, Kernel: 3, Stride: 1, Padding: 1,
		}, false, rng),
		NewBatchNormLayer("stem.bn", w),
		NewReLULayer("stem.relu"),
		NewMaxPoolLayer("stem.pool", tensor.PoolParams{Kernel: 2, Stride: 2}),
	)

	blocks := []*Block{stem}
	in := w
	for stage := 0; stage < 4; stage++ {
		out := widths[stage]
		mid := prunedWidth(out, cfg.PruneRatios[stage])
		stride := 1
		if stage > 0 {
			stride = 2
		}
		var layers []Layer
		for unit := 0; unit < cfg.StageBlocks[stage]; unit++ {
			s := 1
			if unit == 0 {
				s = stride
			}
			name := fmt.Sprintf("stage%d.unit%d", stage+1, unit+1)
			layers = append(layers, NewBasicBlock(name, in, mid, out, s, rng))
			in = out
		}
		variant := VariantBase
		if cfg.PruneRatios[stage] > 0 {
			variant = VariantPruned
		}
		blk := NewBlock(fmt.Sprintf("resnet18/stage%d", stage+1), stage+1, variant, layers...)
		blk.PruneRatio = cfg.PruneRatios[stage]
		blocks = append(blocks, blk)
	}

	classifier := NewBlock("resnet18/classifier", 5, VariantBase,
		NewGlobalAvgPoolLayer("head.gap"),
		NewLinearLayer("head.fc", widths[3], cfg.NumClasses, rng),
	)
	blocks = append(blocks, classifier)

	return &Model{Arch: "resnet18", Blocks: blocks}
}
