package dnn

import (
	"encoding/gob"
	"fmt"
	"io"

	"offloadnn/internal/tensor"
)

// Serialization implements the paper's "DNN repository" (Fig. 4): trained
// block weights are stored at the edge and activated on demand when the
// controller deploys a configuration. Models round-trip through a
// gob-encoded DTO; shared blocks are stored once and re-aliased on load.

// fileModel is the on-disk representation of a Model. Aliased blocks are
// stored once; BlockIDs records the model's block sequence by ID.
type fileModel struct {
	Arch     string
	BlockIDs []string
	Blocks   map[string]fileBlock
}

type fileBlock struct {
	ID         string
	Stage      int
	Variant    int
	PruneRatio float64
	Frozen     bool
	Precision  uint8 // deployed kernel precision; 0 = f64 (older files)
	Layers     []fileLayer
}

type fileLayer struct {
	Kind string // conv | bn | relu | maxpool | gap | linear | basic
	Name string

	// conv
	Conv *fileConv
	// bn
	BN *fileBN
	// maxpool
	Pool *filePool
	// linear
	Linear *fileLinear
	// basic residual unit
	Basic *fileBasic
}

type fileConv struct {
	In, Out, Kernel, Stride, Padding int
	W                                []float64
	B                                []float64 // nil = no bias
	ActScale                         float64   // calibrated activation scale; 0 = uncalibrated
}

type fileBN struct {
	Channels               int
	Gamma, Beta, Mean, Var []float64
	MomentumMilli, EpsNano int64 // fixed-point to avoid float drift concerns in metadata
}

type filePool struct {
	Kernel, Stride, Padding int
}

type fileLinear struct {
	In, Out  int
	W, B     []float64
	ActScale float64
}

type fileBasic struct {
	Conv1, Conv2, Down *fileConv
	BN1, BN2, DownBN   *fileBN
}

// Save writes the model (weights, statistics, structure) to w.
func Save(w io.Writer, m *Model) error {
	fm := fileModel{Arch: m.Arch, Blocks: make(map[string]fileBlock, len(m.Blocks))}
	for _, b := range m.Blocks {
		fm.BlockIDs = append(fm.BlockIDs, b.ID)
		if _, ok := fm.Blocks[b.ID]; ok {
			continue // aliased block already captured
		}
		fb, err := encodeBlock(b)
		if err != nil {
			return fmt.Errorf("dnn: save block %s: %w", b.ID, err)
		}
		fm.Blocks[b.ID] = fb
	}
	if err := gob.NewEncoder(w).Encode(fm); err != nil {
		return fmt.Errorf("dnn: save model %s: %w", m.Arch, err)
	}
	return nil
}

// Load reconstructs a model written by Save. Blocks that appeared aliased
// in the original model are aliased again in the result.
func Load(r io.Reader) (*Model, error) {
	var fm fileModel
	if err := gob.NewDecoder(r).Decode(&fm); err != nil {
		return nil, fmt.Errorf("dnn: load model: %w", err)
	}
	cache := make(map[string]*Block, len(fm.Blocks))
	m := &Model{Arch: fm.Arch}
	for _, id := range fm.BlockIDs {
		if b, ok := cache[id]; ok {
			m.Blocks = append(m.Blocks, b)
			continue
		}
		fb, ok := fm.Blocks[id]
		if !ok {
			return nil, fmt.Errorf("dnn: load model: block %q missing from file", id)
		}
		b, err := decodeBlock(fb)
		if err != nil {
			return nil, fmt.Errorf("dnn: load block %s: %w", id, err)
		}
		cache[id] = b
		m.Blocks = append(m.Blocks, b)
	}
	return m, nil
}

func encodeBlock(b *Block) (fileBlock, error) {
	fb := fileBlock{
		ID:         b.ID,
		Stage:      b.Stage,
		Variant:    int(b.Variant),
		PruneRatio: b.PruneRatio,
		Frozen:     b.Frozen,
		Precision:  uint8(b.precision),
	}
	for _, l := range b.layers {
		fl, err := encodeLayer(l)
		if err != nil {
			return fileBlock{}, err
		}
		fb.Layers = append(fb.Layers, fl)
	}
	return fb, nil
}

func decodeBlock(fb fileBlock) (*Block, error) {
	layers := make([]Layer, 0, len(fb.Layers))
	for _, fl := range fb.Layers {
		l, err := decodeLayer(fl)
		if err != nil {
			return nil, err
		}
		layers = append(layers, l)
	}
	b := NewBlock(fb.ID, fb.Stage, Variant(fb.Variant), layers...)
	b.PruneRatio = fb.PruneRatio
	b.Frozen = fb.Frozen
	if fb.Precision != 0 {
		// Rebuild the narrow weight caches the precision implies.
		if err := b.SetPrecision(tensor.Precision(fb.Precision)); err != nil {
			return nil, err
		}
	}
	return b, nil
}

func encodeConv(c *ConvLayer) *fileConv {
	fc := &fileConv{
		In: c.P.InChannels, Out: c.P.OutChannels,
		Kernel: c.P.Kernel, Stride: c.P.Stride, Padding: c.P.Padding,
		W:        append([]float64(nil), c.W.Data()...),
		ActScale: c.actScale,
	}
	if c.B != nil {
		fc.B = append([]float64(nil), c.B.Data()...)
	}
	return fc
}

func decodeConv(name string, fc *fileConv) (*ConvLayer, error) {
	if fc == nil {
		return nil, fmt.Errorf("missing conv payload for %s", name)
	}
	p := tensor.Conv2DParams{
		InChannels: fc.In, OutChannels: fc.Out,
		Kernel: fc.Kernel, Stride: fc.Stride, Padding: fc.Padding,
	}
	l := &ConvLayer{name: name, P: p, actScale: fc.ActScale}
	w, err := tensor.FromSlice(append([]float64(nil), fc.W...), fc.Out, fc.In, fc.Kernel, fc.Kernel)
	if err != nil {
		return nil, fmt.Errorf("conv %s weights: %w", name, err)
	}
	l.W = w
	l.dW = tensor.New(fc.Out, fc.In, fc.Kernel, fc.Kernel)
	if fc.B != nil {
		bt, err := tensor.FromSlice(append([]float64(nil), fc.B...), fc.Out)
		if err != nil {
			return nil, fmt.Errorf("conv %s bias: %w", name, err)
		}
		l.B = bt
		l.dB = tensor.New(fc.Out)
	}
	return l, nil
}

func encodeBN(b *BatchNormLayer) *fileBN {
	s := b.State
	return &fileBN{
		Channels:      s.Channels(),
		Gamma:         append([]float64(nil), s.Gamma.Data()...),
		Beta:          append([]float64(nil), s.Beta.Data()...),
		Mean:          append([]float64(nil), s.RunningMean.Data()...),
		Var:           append([]float64(nil), s.RunningVar.Data()...),
		MomentumMilli: int64(s.Momentum * 1000),
		EpsNano:       int64(s.Eps * 1e9),
	}
}

func decodeBN(name string, fb *fileBN) (*BatchNormLayer, error) {
	if fb == nil {
		return nil, fmt.Errorf("missing batchnorm payload for %s", name)
	}
	l := NewBatchNormLayer(name, fb.Channels)
	copy(l.State.Gamma.Data(), fb.Gamma)
	copy(l.State.Beta.Data(), fb.Beta)
	copy(l.State.RunningMean.Data(), fb.Mean)
	copy(l.State.RunningVar.Data(), fb.Var)
	l.State.Momentum = float64(fb.MomentumMilli) / 1000
	l.State.Eps = float64(fb.EpsNano) / 1e9
	return l, nil
}

func encodeLayer(l Layer) (fileLayer, error) {
	switch v := l.(type) {
	case *ConvLayer:
		return fileLayer{Kind: "conv", Name: v.name, Conv: encodeConv(v)}, nil
	case *BatchNormLayer:
		return fileLayer{Kind: "bn", Name: v.name, BN: encodeBN(v)}, nil
	case *ReLULayer:
		return fileLayer{Kind: "relu", Name: v.name}, nil
	case *MaxPoolLayer:
		return fileLayer{Kind: "maxpool", Name: v.name,
			Pool: &filePool{Kernel: v.P.Kernel, Stride: v.P.Stride, Padding: v.P.Padding}}, nil
	case *GlobalAvgPoolLayer:
		return fileLayer{Kind: "gap", Name: v.name}, nil
	case *LinearLayer:
		return fileLayer{Kind: "linear", Name: v.name, Linear: &fileLinear{
			In: v.W.Dim(1), Out: v.W.Dim(0),
			W:        append([]float64(nil), v.W.Data()...),
			B:        append([]float64(nil), v.B.Data()...),
			ActScale: v.actScale,
		}}, nil
	case *BasicBlock:
		fb := &fileBasic{
			Conv1: encodeConv(v.Conv1), Conv2: encodeConv(v.Conv2),
			BN1: encodeBN(v.BN1), BN2: encodeBN(v.BN2),
		}
		if v.DownConv != nil {
			fb.Down = encodeConv(v.DownConv)
			fb.DownBN = encodeBN(v.DownBN)
		}
		return fileLayer{Kind: "basic", Name: v.name, Basic: fb}, nil
	default:
		return fileLayer{}, fmt.Errorf("unsupported layer type %T", l)
	}
}

func decodeLayer(fl fileLayer) (Layer, error) {
	switch fl.Kind {
	case "conv":
		return decodeConv(fl.Name, fl.Conv)
	case "bn":
		return decodeBN(fl.Name, fl.BN)
	case "relu":
		return NewReLULayer(fl.Name), nil
	case "maxpool":
		if fl.Pool == nil {
			return nil, fmt.Errorf("missing pool payload for %s", fl.Name)
		}
		return NewMaxPoolLayer(fl.Name, tensor.PoolParams{
			Kernel: fl.Pool.Kernel, Stride: fl.Pool.Stride, Padding: fl.Pool.Padding,
		}), nil
	case "gap":
		return NewGlobalAvgPoolLayer(fl.Name), nil
	case "linear":
		if fl.Linear == nil {
			return nil, fmt.Errorf("missing linear payload for %s", fl.Name)
		}
		w, err := tensor.FromSlice(append([]float64(nil), fl.Linear.W...), fl.Linear.Out, fl.Linear.In)
		if err != nil {
			return nil, fmt.Errorf("linear %s weights: %w", fl.Name, err)
		}
		bt, err := tensor.FromSlice(append([]float64(nil), fl.Linear.B...), fl.Linear.Out)
		if err != nil {
			return nil, fmt.Errorf("linear %s bias: %w", fl.Name, err)
		}
		l := &LinearLayer{
			name: fl.Name, W: w, B: bt,
			dW:       tensor.New(fl.Linear.Out, fl.Linear.In),
			dB:       tensor.New(fl.Linear.Out),
			actScale: fl.Linear.ActScale,
		}
		return l, nil
	case "basic":
		if fl.Basic == nil {
			return nil, fmt.Errorf("missing basic-block payload for %s", fl.Name)
		}
		conv1, err := decodeConv(fl.Name+".conv1", fl.Basic.Conv1)
		if err != nil {
			return nil, err
		}
		conv2, err := decodeConv(fl.Name+".conv2", fl.Basic.Conv2)
		if err != nil {
			return nil, err
		}
		bn1, err := decodeBN(fl.Name+".bn1", fl.Basic.BN1)
		if err != nil {
			return nil, err
		}
		bn2, err := decodeBN(fl.Name+".bn2", fl.Basic.BN2)
		if err != nil {
			return nil, err
		}
		b := &BasicBlock{
			name:  fl.Name,
			Conv1: conv1, BN1: bn1, Relu1: NewReLULayer(fl.Name + ".relu1"),
			Conv2: conv2, BN2: bn2,
		}
		if fl.Basic.Down != nil {
			down, err := decodeConv(fl.Name+".down", fl.Basic.Down)
			if err != nil {
				return nil, err
			}
			downBN, err := decodeBN(fl.Name+".downbn", fl.Basic.DownBN)
			if err != nil {
				return nil, err
			}
			b.DownConv = down
			b.DownBN = downBN
		}
		return b, nil
	default:
		return nil, fmt.Errorf("unknown layer kind %q", fl.Kind)
	}
}
