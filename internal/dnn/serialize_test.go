package dnn

import (
	"bytes"
	"math"
	"math/rand"
	"testing"

	"offloadnn/internal/tensor"
)

func roundTrip(t *testing.T, m *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := Save(&buf, m); err != nil {
		t.Fatalf("save: %v", err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return loaded
}

func TestSaveLoadResNetIdenticalForward(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	loaded := roundTrip(t, m)
	if loaded.Arch != m.Arch {
		t.Fatalf("arch %q, want %q", loaded.Arch, m.Arch)
	}
	if loaded.ParamCount() != m.ParamCount() {
		t.Fatalf("params %d, want %d", loaded.ParamCount(), m.ParamCount())
	}
	x := testInput(2, 3, 16, 99)
	y1, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if math.Abs(y1.Data()[i]-y2.Data()[i]) > 1e-12 {
			t.Fatalf("forward differs at %d: %v vs %v", i, y1.Data()[i], y2.Data()[i])
		}
	}
}

func TestSaveLoadPreservesSharing(t *testing.T) {
	base := BuildResNet18(DefaultResNetConfig())
	cfgB, err := ConfigByName("B")
	if err != nil {
		t.Fatal(err)
	}
	m1, err := BuildConfigModel(base, cfgB, "t1", 9, 7)
	if err != nil {
		t.Fatal(err)
	}
	// m1 aliases the base stem internally? No — it aliases base stages
	// across *models*; within one model every block is distinct. Build an
	// artificial alias: a model reusing one block twice.
	m := &Model{Arch: "aliased", Blocks: []*Block{
		m1.BlockByStage(0), m1.BlockByStage(1), m1.BlockByStage(1),
	}}
	loaded := roundTrip(t, m)
	if len(loaded.Blocks) != 3 {
		t.Fatalf("loaded %d blocks, want 3", len(loaded.Blocks))
	}
	if loaded.Blocks[1] != loaded.Blocks[2] {
		t.Fatal("aliased blocks were duplicated on load")
	}
	if loaded.Blocks[0] == loaded.Blocks[1] {
		t.Fatal("distinct blocks were merged")
	}
}

func TestSaveLoadPreservesMetadata(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	rng := rand.New(rand.NewSource(3))
	pruned, err := PruneBlock(m.BlockByStage(2), 0.8, rng)
	if err != nil {
		t.Fatal(err)
	}
	pruned.Frozen = true
	m.Blocks[2] = pruned
	loaded := roundTrip(t, m)
	lb := loaded.Blocks[2]
	if lb.Variant != VariantPruned {
		t.Fatalf("variant %v, want pruned", lb.Variant)
	}
	if lb.PruneRatio != 0.8 {
		t.Fatalf("prune ratio %v, want 0.8", lb.PruneRatio)
	}
	if !lb.Frozen {
		t.Fatal("frozen flag lost")
	}
	if lb.ID != pruned.ID {
		t.Fatalf("ID %q, want %q", lb.ID, pruned.ID)
	}
}

func TestLoadedModelIsTrainable(t *testing.T) {
	m := BuildResNet18(ResNetConfig{
		InChannels: 3, NumClasses: 4, BaseWidth: 4, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 5,
	})
	loaded := roundTrip(t, m)
	x := testInput(2, 3, 8, 100)
	y, err := loaded.Forward(x, true)
	if err != nil {
		t.Fatal(err)
	}
	ce, err := tensor.CrossEntropy(y, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	loaded.ZeroGrads()
	if _, err := loaded.Backward(ce.Backward()); err != nil {
		t.Fatalf("loaded model backward: %v", err)
	}
	total := 0.0
	for _, g := range loaded.TrainableGrads() {
		total += g.MaxAbs()
	}
	if total == 0 {
		t.Fatal("loaded model accumulated no gradient")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage input should fail to load")
	}
}

func TestSaveLoadBatchNormStats(t *testing.T) {
	m := BuildResNet18(DefaultResNetConfig())
	// Push the running statistics away from defaults with a training pass.
	x := testInput(4, 3, 16, 101)
	if _, err := m.Forward(x, true); err != nil {
		t.Fatal(err)
	}
	loaded := roundTrip(t, m)
	// Evaluation-mode outputs depend on running stats; they must agree.
	y1, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if math.Abs(y1.Data()[i]-y2.Data()[i]) > 1e-12 {
			t.Fatal("running statistics not preserved")
		}
	}
}
