package dnn

import "fmt"

// Path splitting: a path's stage blocks may be partitioned into
// contiguous segments pipelined across nodes, the boundary activation
// shipped between them. The legal cut points are the stage boundaries —
// a block is never split internally — and the tensor crossing each
// boundary is fully determined by the template geometry, so the
// placement layer can price activation transfers analytically, without
// assembling (let alone running) a model.

// CutPoint describes one legal split boundary of a path: the activation
// tensor leaving stage position After (1-based), which the next segment
// consumes as its input.
type CutPoint struct {
	// After is how many stage blocks run before the cut (1..nStages-1).
	After int
	// Shape is the boundary activation's (C, H, W).
	Shape [3]int
	// Elems is the activation element count per frame.
	Elems int
	// WireBytes is the payload size of one frame's boundary activation
	// on the wire. Transfers always ship raw float64 (the inter-block
	// interchange format), whatever precision the segments compute in —
	// quantized blocks still exchange f64 tensors — so the wire price is
	// precision-independent.
	WireBytes int
}

// ActivationBytes prices the boundary activation's in-memory footprint
// at a precision tier ("f64", "f32", "i8"); unknown tiers price
// conservatively as f64. This is a planning figure for co-locating
// segments, not the wire size (see WireBytes).
func (c CutPoint) ActivationBytes(precision string) int {
	switch precision {
	case "f32":
		return c.Elems * 4
	case "i8":
		return c.Elems
	default:
		return c.Elems * 8
	}
}

// StemOutputShape returns the stem's output (C, H, W) for the given
// input shape: a same-padded 3x3 conv to BaseWidth channels followed by
// a 2x2/2 max-pool (see BuildStemBlock).
func StemOutputShape(cfg ResNetConfig, input [3]int) [3]int {
	return [3]int{cfg.BaseWidth, poolOut(input[1], 2, 2, 0), poolOut(input[2], 2, 2, 0)}
}

// SegmentBoundaryShape returns the activation shape after stage
// position `after` (1-based) of a path, for the given frame shape.
// after=0 returns the stem output — the input of stage position 1.
func SegmentBoundaryShape(cfg ResNetConfig, input [3]int, after int) [3]int {
	s := StemOutputShape(cfg, input)
	for p := 1; p <= after; p++ {
		t := min(p, 4)
		s[0] = StageWidth(cfg, t)
		if t > 1 {
			// The stage's first unit downsamples: 3x3 conv, stride 2, pad 1.
			s[1] = convOut(s[1], 3, 2, 1)
			s[2] = convOut(s[2], 3, 2, 1)
		}
	}
	return s
}

// EnumerateCutPoints returns every legal cut point of a path with
// nStages stage blocks on the given input shape, in order. A path with
// fewer than two stages has none.
func EnumerateCutPoints(cfg ResNetConfig, nStages int, input [3]int) []CutPoint {
	if nStages < 2 {
		return nil
	}
	cuts := make([]CutPoint, 0, nStages-1)
	s := StemOutputShape(cfg, input)
	for p := 1; p < nStages; p++ {
		t := min(p, 4)
		s[0] = StageWidth(cfg, t)
		if t > 1 {
			s[1] = convOut(s[1], 3, 2, 1)
			s[2] = convOut(s[2], 3, 2, 1)
		}
		elems := s[0] * s[1] * s[2]
		cuts = append(cuts, CutPoint{After: p, Shape: s, Elems: elems, WireBytes: elems * 8})
	}
	return cuts
}

// AssembleSegmentModel composes a runnable model for one contiguous
// slice of a path. Unlike AssemblePathModel, stem and classifier may be
// absent: a mid-path segment consumes a boundary activation instead of
// a frame and emits one instead of logits. Blocks are aliased, not
// copied, exactly as in whole-path assembly.
func AssembleSegmentModel(arch string, stem *Block, stages []*Block, classifier *Block) (*Model, error) {
	if len(stages) == 0 {
		return nil, fmt.Errorf("dnn: assemble segment %s: empty stage range", arch)
	}
	blocks := make([]*Block, 0, len(stages)+2)
	if stem != nil {
		blocks = append(blocks, stem)
	}
	blocks = append(blocks, stages...)
	if classifier != nil {
		blocks = append(blocks, classifier)
	}
	return &Model{Arch: arch, Blocks: blocks}, nil
}

// convOut is the spatial output size of a convolution.
func convOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}

// poolOut is the spatial output size of a pooling layer.
func poolOut(in, kernel, stride, pad int) int {
	return (in+2*pad-kernel)/stride + 1
}
