package dnn

import (
	"bytes"
	"fmt"
	"testing"

	"offloadnn/internal/tensor"
)

// buildSplitFixture instantiates a 4-stage path's blocks once so the
// whole-path and segment models alias the same weights, exactly as the
// execution backend's shared block library does.
func buildSplitFixture(t *testing.T) (ResNetConfig, *Block, []*Block, *Block) {
	t.Helper()
	cfg := DefaultResNetConfig()
	stem := BuildStemBlock(cfg)
	stages := make([]*Block, 0, 4)
	for p := 1; p <= 4; p++ {
		blk, err := BuildStageBlock(cfg, fmt.Sprintf("split/s%d", p), p, 0, int64(100+p))
		if err != nil {
			t.Fatal(err)
		}
		stages = append(stages, blk)
	}
	classifier := BuildClassifierBlock(cfg, StageWidth(cfg, 4))
	return cfg, stem, stages, classifier
}

// TestSegmentBoundaryShapesMatchForward pins the analytic cut-point
// geometry against the real thing: the shape EnumerateCutPoints prices
// a transfer with must be the shape the assembled prefix actually
// emits, for both the default 8x8 frames and a larger input.
func TestSegmentBoundaryShapesMatchForward(t *testing.T) {
	cfg, stem, stages, _ := buildSplitFixture(t)
	for _, hw := range []int{8, 16} {
		input := [3]int{3, hw, hw}
		cuts := EnumerateCutPoints(cfg, len(stages), input)
		if len(cuts) != len(stages)-1 {
			t.Fatalf("hw=%d: %d cut points, want %d", hw, len(cuts), len(stages)-1)
		}
		for _, cut := range cuts {
			head, err := AssembleSegmentModel("head", stem, stages[:cut.After], nil)
			if err != nil {
				t.Fatal(err)
			}
			x := testInput(1, input[0], hw, int64(hw))
			y, err := head.Forward(x, false)
			if err != nil {
				t.Fatal(err)
			}
			got := [3]int{y.Dim(1), y.Dim(2), y.Dim(3)}
			if got != cut.Shape {
				t.Fatalf("hw=%d cut after %d: forward shape %v, enumerated %v", hw, cut.After, got, cut.Shape)
			}
			if cut.Elems != got[0]*got[1]*got[2] || cut.WireBytes != cut.Elems*8 {
				t.Fatalf("cut after %d: elems %d wire %d inconsistent with shape %v",
					cut.After, cut.Elems, cut.WireBytes, got)
			}
		}
	}
}

// TestSplitEqualsWholeEveryCutDNN pins bit-identical logits between a
// whole path and the same path split at each legal boundary, with the
// activation passed through the wire envelope in between (so the test
// covers the serialization too, not just the segment models).
func TestSplitEqualsWholeEveryCutDNN(t *testing.T) {
	cfg, stem, stages, classifier := buildSplitFixture(t)
	whole, err := AssemblePathModel("whole", stem, stages, classifier)
	if err != nil {
		t.Fatal(err)
	}
	x := testInput(1, 3, 8, 7)
	want, err := whole.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for _, cut := range EnumerateCutPoints(cfg, len(stages), [3]int{3, 8, 8}) {
		head, err := AssembleSegmentModel("head", stem, stages[:cut.After], nil)
		if err != nil {
			t.Fatal(err)
		}
		tail, err := AssembleSegmentModel("tail", nil, stages[cut.After:], classifier)
		if err != nil {
			t.Fatal(err)
		}
		mid, err := head.Forward(x, false)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		man := ActivationManifest{Task: "t", Path: "p", From: cut.After, Shape: cut.Shape, RemainingMS: 100}
		if err := EncodeActivation(&buf, man, mid.Data()); err != nil {
			t.Fatal(err)
		}
		got2, data, err := DecodeActivation(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if got2.From != cut.After || got2.Shape != cut.Shape {
			t.Fatalf("envelope round-trip mangled manifest: %+v", got2)
		}
		act, err := tensor.FromSlice(data, 1, cut.Shape[0], cut.Shape[1], cut.Shape[2])
		if err != nil {
			t.Fatal(err)
		}
		y, err := tail.Forward(act, false)
		if err != nil {
			t.Fatal(err)
		}
		if y.Len() != want.Len() {
			t.Fatalf("cut after %d: logit count %d, want %d", cut.After, y.Len(), want.Len())
		}
		for i, v := range y.Data() {
			if v != want.Data()[i] {
				t.Fatalf("cut after %d: logit %d = %v, whole path %v (not bit-identical)", cut.After, i, v, want.Data()[i])
			}
		}
	}
}

// TestActivationEnvelopeRejectsGarbage covers the decode guards.
func TestActivationEnvelopeRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeActivation(bytes.NewReader([]byte("NOTANENVELOPE....."))); err == nil {
		t.Fatal("bad magic accepted")
	}
	var buf bytes.Buffer
	man := ActivationManifest{Task: "t", Path: "p", Shape: [3]int{2, 2, 2}, RemainingMS: 1}
	if err := EncodeActivation(&buf, man, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	truncated := buf.Bytes()[:buf.Len()-9]
	if _, _, err := DecodeActivation(bytes.NewReader(truncated)); err == nil {
		t.Fatal("truncated payload accepted")
	}
	if err := EncodeActivation(&buf, man, make([]float64, 3)); err == nil {
		t.Fatal("shape/payload mismatch accepted")
	}
}
