package dnn

// StageStats describes one block of a ResNet-18 analytically — parameter
// count and per-image activation volume — without allocating any weights.
// The training-memory model (Fig. 2 right) needs these at full ResNet-18
// scale (64 base width, 224×224 inputs), where actually instantiating ten
// configuration models would be wasteful.
type StageStats struct {
	// Params is the number of scalar parameters in the block.
	Params int
	// ActivationElems is the number of activation scalars one input image
	// produces inside the block (all intermediate feature maps that the
	// backward pass would need cached).
	ActivationElems int
	// OutputElems is the block's output feature-map size per image.
	OutputElems int
}

// ModelStats aggregates the six blocks of the canonical ResNet-18
// decomposition used throughout: stem, stages 1–4, classifier.
type ModelStats struct {
	Stem       StageStats
	Stages     [4]StageStats
	Classifier StageStats
}

// TotalParams sums parameters over all blocks.
func (m ModelStats) TotalParams() int {
	n := m.Stem.Params + m.Classifier.Params
	for _, s := range m.Stages {
		n += s.Params
	}
	return n
}

// Block returns the stats for stage number 0 (stem) through 5
// (classifier).
func (m ModelStats) Block(stage int) StageStats {
	switch {
	case stage == 0:
		return m.Stem
	case stage >= 1 && stage <= 4:
		return m.Stages[stage-1]
	default:
		return m.Classifier
	}
}

func basicBlockParams(in, mid, out int, projection bool) int {
	n := in*mid*9 + 2*mid + mid*out*9 + 2*out
	if projection {
		n += in*out + 2*out
	}
	return n
}

// ResNet18Stats computes analytic statistics for the real ResNet-18
// topology: 7×7/2 stem conv + 3×3/2 max pool, four stages of two basic
// blocks with widths {w, 2w, 4w, 8w} (stages 2–4 downsample by 2 with a
// projection shortcut), global average pool and a fully connected head.
//
// imageSize is the square input side (224 for the paper's setting);
// numClasses sizes the head; pruneRatios optionally shrink each stage's
// internal width (0 = unpruned).
func ResNet18Stats(baseWidth, imageSize, numClasses int, pruneRatios [4]float64) ModelStats {
	w := baseWidth
	widths := [4]int{w, 2 * w, 4 * w, 8 * w}

	var ms ModelStats
	// Stem: conv7×7/2 (3→w) + bn + relu + maxpool3×3/2.
	convOut := imageSize / 2
	poolOut := convOut / 2
	ms.Stem = StageStats{
		Params:          3*w*49 + 2*w,
		ActivationElems: 2*w*convOut*convOut + w*poolOut*poolOut, // conv out, relu out, pool out
		OutputElems:     w * poolOut * poolOut,
	}

	in := w
	size := poolOut
	for stage := 0; stage < 4; stage++ {
		out := widths[stage]
		mid := prunedWidth(out, pruneRatios[stage])
		stride := 1
		if stage > 0 {
			stride = 2
		}
		outSize := size / stride
		// Two basic blocks; the first may downsample/project.
		p := basicBlockParams(in, mid, out, stride != 1 || in != out) +
			basicBlockParams(out, mid, out, false)
		// Activations per basic block ≈ mid feature map (conv1 out, relu)
		// ×2 + out feature map (conv2 out + residual sum) ×2.
		act := 2*(2*mid*outSize*outSize+2*out*outSize*outSize) + out*outSize*outSize
		ms.Stages[stage] = StageStats{
			Params:          p,
			ActivationElems: act,
			OutputElems:     out * outSize * outSize,
		}
		in = out
		size = outSize
	}

	ms.Classifier = StageStats{
		Params:          widths[3]*numClasses + numClasses,
		ActivationElems: widths[3] + numClasses,
		OutputElems:     numClasses,
	}
	return ms
}
