// Package edge is the Colosseum-substitute emulation environment: an
// OffloaDNN controller implementing the Fig. 4 workflow (task admission →
// DOT solving → slice and compute allocation → DNN-block deployment →
// rate notification) and a discrete-event emulator that drives UE traffic
// through radio slices and the edge compute queue to measure end-to-end
// task latency over time (Fig. 11).
package edge

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/radio"
)

// ErrDeploy reports a deployment failure.
var ErrDeploy = errors.New("edge: deployment failed")

// Deployment is the outcome of one admission round: the DOT solution plus
// the configured radio slices and deployed DNN blocks.
type Deployment struct {
	// Solution is the solver output the controller acted on.
	Solution *core.Solution
	// Slices is the vRAN slice allocation, one slice per admitted task.
	Slices *radio.SliceAllocator
	// ActiveBlocks are the deployed DNN blocks, sorted by ID.
	ActiveBlocks []string
	// MemoryUsedGB is the VRAM consumed by the deployed blocks.
	MemoryUsedGB float64
	// AdmittedRates maps task ID to its notified admission rate z·λ.
	AdmittedRates map[string]float64
	// LatencyBounds maps each admitted task ID to its plan-time latency
	// bound L_τ (core.Task.MaxLatency) — the budget the deadline-aware
	// serving runtime derives per-request deadlines from. Zero entries
	// (tasks registered without a bound) mean no deadline.
	LatencyBounds map[string]time.Duration
}

// Controller is the OffloaDNN controller of Fig. 4. It owns the resource
// pools and runs the DOT solver on admission requests.
//
// Concurrency contract: Admit is safe for concurrent use — admission
// rounds serialize on an internal mutex, so two rounds can never
// interleave their solve/slice/deploy steps. The exported Solve field is
// read under that mutex but is NOT itself synchronized for writers:
// configure it once, before the controller is shared across goroutines
// (the small-scale validation swaps it for the optimum at setup time).
type Controller struct {
	res core.Resources
	// mu serializes admission rounds.
	mu sync.Mutex
	// Solve is the solver strategy; defaults to OffloaDNN. Swappable for
	// the optimum in small-scale validation. Set before sharing the
	// controller across goroutines.
	Solve func(*core.Instance) (*core.Solution, error)
	// Faults optionally arms the controller's failure points
	// (faultinject.PointDeployError). Nil (the default) disarms them.
	// Like Solve, set before sharing the controller across goroutines.
	Faults *faultinject.Injector
}

// NewController constructs a controller over the given resource pools.
func NewController(res core.Resources) *Controller {
	return &Controller{
		res:   res,
		Solve: core.SolveOffloaDNN,
	}
}

// Admit runs one admission round (steps 1–6 of the Fig. 4 workflow): it
// assembles the DOT instance from the requests and block catalog, solves
// it, allocates the radio slices, deploys the selected blocks and returns
// the admitted rates for notification to the UEs. Rounds serialize: a
// concurrent Admit blocks until the in-flight round finishes.
func (c *Controller) Admit(tasks []core.Task, blocks map[string]core.BlockSpec, alpha float64) (*Deployment, error) {
	return c.AdmitCtx(context.Background(), tasks, blocks, alpha)
}

// AdmitCtx is Admit with a context bounding the solve step. When ctx is
// cancelable (carries a deadline or cancel), the solve runs in a
// goroutine and AdmitCtx returns ctx.Err() as soon as the context is
// done; the abandoned solve runs to completion with its result dropped
// — the bounded-goroutine price of imposing deadlines on solver
// strategies that are not context-aware. A panic inside the strategy is
// recovered into an error either way, so a broken Solve can never kill
// the caller's goroutine.
func (c *Controller) AdmitCtx(ctx context.Context, tasks []core.Task, blocks map[string]core.BlockSpec, alpha float64) (*Deployment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	in := &core.Instance{Tasks: tasks, Blocks: blocks, Res: c.res, Alpha: alpha}
	sol, err := c.solveCtx(ctx, in)
	if err != nil {
		return nil, fmt.Errorf("%w: solver: %w", ErrDeploy, err)
	}
	return c.deployLocked(in, sol)
}

// errSolverPanic tags a recovered strategy panic.
var errSolverPanic = errors.New("solver panic")

// solveCtx runs the configured strategy under ctx; c.mu must be held.
// The strategy only reads the instance (controller state is untouched
// until deployLocked), so abandoning a timed-out solve is safe.
func (c *Controller) solveCtx(ctx context.Context, in *core.Instance) (sol *core.Solution, err error) {
	if ctx == nil || ctx.Done() == nil {
		defer func() {
			if p := recover(); p != nil {
				sol, err = nil, fmt.Errorf("%w: %v", errSolverPanic, p)
			}
		}()
		return c.Solve(in)
	}
	type result struct {
		sol *core.Solution
		err error
	}
	ch := make(chan result, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- result{nil, fmt.Errorf("%w: %v", errSolverPanic, p)}
			}
		}()
		sol, err := c.Solve(in)
		ch <- result{sol, err}
	}()
	select {
	case <-ctx.Done():
		return nil, ctx.Err()
	case r := <-ch:
		return r.sol, r.err
	}
}

// Deploy runs steps 3–6 of the workflow for a solution produced outside
// the controller (the serving daemon's incremental SolverSession): it
// checks the solution against the instance, allocates the radio slices,
// and assembles the deployment. Rounds serialize with Admit.
func (c *Controller) Deploy(in *core.Instance, sol *core.Solution) (*Deployment, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.deployLocked(in, sol)
}

// deployLocked checks, slices, and packages a solution; c.mu must be held.
func (c *Controller) deployLocked(in *core.Instance, sol *core.Solution) (*Deployment, error) {
	if err := c.Faults.Hit(context.Background(), faultinject.PointDeployError); err != nil {
		return nil, fmt.Errorf("%w: %w", ErrDeploy, err)
	}
	if err := in.Check(sol.Assignments); err != nil {
		return nil, fmt.Errorf("%w: solution check: %w", ErrDeploy, err)
	}

	slices := radio.NewSliceAllocator(c.res.RBs)
	rates := make(map[string]float64)
	bounds := make(map[string]time.Duration)
	active := make(map[string]bool)
	for i, a := range sol.Assignments {
		if !a.Admitted() {
			continue
		}
		if err := slices.AllocateShared(a.TaskID, a.RBs, a.Z); err != nil {
			return nil, fmt.Errorf("%w: slice for %s: %v", ErrDeploy, a.TaskID, err)
		}
		rates[a.TaskID] = a.Z * in.Tasks[i].Rate
		bounds[a.TaskID] = in.Tasks[i].MaxLatency
		for _, b := range a.Path.Blocks {
			active[b] = true
		}
	}
	ids := make([]string, 0, len(active))
	mem := 0.0
	for id := range active {
		ids = append(ids, id)
		mem += in.BlockMemoryGB(id)
	}
	sort.Strings(ids)
	return &Deployment{
		Solution:      sol,
		Slices:        slices,
		ActiveBlocks:  ids,
		MemoryUsedGB:  mem,
		AdmittedRates: rates,
		LatencyBounds: bounds,
	}, nil
}
