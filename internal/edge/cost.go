package edge

import (
	"time"

	"offloadnn/internal/core"
)

// TaskCost is the planned per-frame cost of one admitted task under a
// deployment: slice transmission at B(σ)·r plus path compute Σ c(s).
// It is the single cost model behind the resolver's predicted latency,
// the Fig. 11 emulator and the simulated execution backend — refactored
// out so those three can never drift apart.
type TaskCost struct {
	// Tx is the slice transmission time of one frame.
	Tx time.Duration
	// Proc is the path compute time Σ c(s).
	Proc time.Duration
}

// Total is the end-to-end per-frame cost Tx + Proc.
func (c TaskCost) Total() time.Duration { return c.Tx + c.Proc }

// PlanCosts evaluates the deployment's per-task cost model. tasks must be
// the task order dep.Solution.Assignments is parallel to. linkRateFactor
// scales the delivered per-RB rate against the conservative planning
// value B(σ) (≤ 0 means 1.0: the link delivers exactly the planning
// rate); computeScale scales every path compute time (≤ 0 means 1.0).
// Non-admitted tasks are absent from the result.
func PlanCosts(tasks []core.Task, blocks map[string]core.BlockSpec, res core.Resources,
	dep *Deployment, linkRateFactor, computeScale float64) map[string]TaskCost {
	out := make(map[string]TaskCost)
	if dep == nil || dep.Solution == nil {
		return out
	}
	for i, a := range dep.Solution.Assignments {
		if !a.Admitted() || i >= len(tasks) {
			continue
		}
		task := &tasks[i]
		perRB := res.Capacity.BitsPerRBPerSecond(task.SNRdB)
		if linkRateFactor > 0 {
			perRB *= linkRateFactor
		}
		tx := 0.0
		if perRB > 0 && a.RBs > 0 {
			tx = a.Bits(task) / (perRB * float64(a.RBs))
		}
		proc := 0.0
		for _, id := range a.Path.Blocks {
			proc += blocks[id].ComputeSeconds
		}
		if computeScale > 0 {
			proc *= computeScale
		}
		out[a.TaskID] = TaskCost{
			Tx:   time.Duration(tx * float64(time.Second)),
			Proc: time.Duration(proc * float64(time.Second)),
		}
	}
	return out
}
