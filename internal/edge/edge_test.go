package edge

import (
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/workload"
)

func smallDeployment(t *testing.T, tasks int) (*core.Instance, *Deployment) {
	t.Helper()
	in, err := workload.SmallScenario(tasks)
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(in.Res)
	dep, err := c.Admit(in.Tasks, in.Blocks, in.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	return in, dep
}

func TestControllerWorkflow(t *testing.T) {
	in, dep := smallDeployment(t, 5)
	// Every admitted task got a slice matching the solver's r.
	for i, a := range dep.Solution.Assignments {
		task := in.Tasks[i]
		if a.Admitted() {
			if dep.Slices.Allocation(task.ID) != a.RBs {
				t.Fatalf("task %s slice %d, want %d", task.ID, dep.Slices.Allocation(task.ID), a.RBs)
			}
			if dep.AdmittedRates[task.ID] <= 0 {
				t.Fatalf("task %s has no notified rate", task.ID)
			}
		} else if dep.Slices.Allocation(task.ID) != 0 {
			t.Fatalf("rejected task %s holds a slice", task.ID)
		}
	}
	if dep.MemoryUsedGB <= 0 || dep.MemoryUsedGB > in.Res.MemoryGB {
		t.Fatalf("deployed memory %v outside (0, %v]", dep.MemoryUsedGB, in.Res.MemoryGB)
	}
	if len(dep.ActiveBlocks) == 0 {
		t.Fatal("no blocks deployed")
	}
}

func TestControllerSolverSwap(t *testing.T) {
	in, err := workload.SmallScenario(2)
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(in.Res)
	called := false
	c.Solve = func(inst *core.Instance) (*core.Solution, error) {
		called = true
		return core.SolveOffloaDNN(inst)
	}
	if _, err := c.Admit(in.Tasks, in.Blocks, in.Alpha); err != nil {
		t.Fatal(err)
	}
	if !called {
		t.Fatal("custom solver not used")
	}
}

func TestEmulatorMeetsLatencyTargets(t *testing.T) {
	// Fig. 11: the emulated end-to-end latencies of all admitted tasks
	// stay within their targets.
	in, dep := smallDeployment(t, 5)
	em, err := NewEmulator(in, dep, DefaultEmulatorConfig())
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.FramesServed == 0 {
		t.Fatal("no frames served")
	}
	for _, tr := range res.Traces {
		if len(tr.Samples) == 0 {
			continue // rejected task
		}
		// Allow a small violation tail from jitter; the paper's moving
		// average stays below target, so the violation fraction must be
		// tiny.
		frac := float64(tr.Violations) / float64(len(tr.Samples))
		if frac > 0.02 {
			t.Fatalf("task %s violates latency in %.1f%% of samples", tr.TaskID, frac*100)
		}
	}
}

func TestEmulatorServesExpectedFrameCounts(t *testing.T) {
	in, dep := smallDeployment(t, 3)
	cfg := DefaultEmulatorConfig()
	cfg.Duration = 10 * time.Second
	cfg.ArrivalJitter = 0
	em, err := NewEmulator(in, dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Three tasks at 5 req/s for 10 s ≈ 150 frames (±startup offsets).
	if res.FramesServed < 120 || res.FramesServed > 160 {
		t.Fatalf("frames served %d, want ≈150", res.FramesServed)
	}
	for _, tr := range res.Traces {
		if tr.Dropped != 0 {
			t.Fatalf("task %s dropped %d frames (drain horizon too short?)", tr.TaskID, tr.Dropped)
		}
	}
}

func TestEmulatorLatencyDominatedByDesignValues(t *testing.T) {
	// Without jitter the steady-state latency equals tx + proc exactly.
	in, dep := smallDeployment(t, 1)
	cfg := EmulatorConfig{Duration: 5 * time.Second, Seed: 7}
	em, err := NewEmulator(in, dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run()
	if err != nil {
		t.Fatal(err)
	}
	a := dep.Solution.Assignments[0]
	if !a.Admitted() {
		t.Fatal("task not admitted")
	}
	want, err := in.EndToEndLatency(&in.Tasks[0], a)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Traces[0].Samples {
		if d := s.Latency - want; d < -time.Microsecond || d > time.Millisecond {
			t.Fatalf("sample latency %v, want ≈%v", s.Latency, want)
		}
	}
}

func TestEmulatorValidation(t *testing.T) {
	in, dep := smallDeployment(t, 1)
	if _, err := NewEmulator(nil, dep, DefaultEmulatorConfig()); err == nil {
		t.Fatal("nil instance should be rejected")
	}
	if _, err := NewEmulator(in, dep, EmulatorConfig{}); err == nil {
		t.Fatal("zero duration should be rejected")
	}
}

func TestEmulatorFractionalAdmissionRates(t *testing.T) {
	// High-load large scenario: some tasks get fractional z. The emulator
	// must pace those UEs at z·λ, and every served frame must still meet
	// its latency target.
	in, err := workload.LargeScenario(workload.LoadHigh)
	if err != nil {
		t.Fatal(err)
	}
	c := NewController(in.Res)
	dep, err := c.Admit(in.Tasks, in.Blocks, in.Alpha)
	if err != nil {
		t.Fatal(err)
	}
	fractional := ""
	for i, a := range dep.Solution.Assignments {
		if a.Z > 0.01 && a.Z < 0.99 {
			fractional = in.Tasks[i].ID
			break
		}
	}
	if fractional == "" {
		t.Fatal("high load produced no fractional admission (scenario drift?)")
	}
	cfg := DefaultEmulatorConfig()
	cfg.Duration = 10 * time.Second
	cfg.ArrivalJitter = 0
	em, err := NewEmulator(in, dep, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := em.Run()
	if err != nil {
		t.Fatal(err)
	}
	// The fractional task's served frames ≈ z·λ·duration, far below λ·duration.
	for i, tr := range res.Traces {
		if tr.TaskID != fractional {
			continue
		}
		a := dep.Solution.Assignments[i]
		want := a.Z * in.Tasks[i].Rate * cfg.Duration.Seconds()
		got := float64(len(tr.Samples))
		if got < want*0.7 || got > want*1.3 {
			t.Fatalf("fractional task served %v frames, want ≈%.0f (z=%.2f)", got, want, a.Z)
		}
		full := in.Tasks[i].Rate * cfg.Duration.Seconds()
		if got > 0.8*full {
			t.Fatalf("fractional task not throttled: %v of %v frames", got, full)
		}
	}
	total := 0
	violations := 0
	for _, tr := range res.Traces {
		total += len(tr.Samples)
		violations += tr.Violations
	}
	if total == 0 {
		t.Fatal("nothing served")
	}
	if frac := float64(violations) / float64(total); frac > 0.02 {
		t.Fatalf("latency violations in %.1f%% of frames", frac*100)
	}
}
