package edge

import (
	"fmt"
	"math/rand"
	"sort"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/sim"
)

// EmulatorConfig parameterizes a Fig. 11-style run.
type EmulatorConfig struct {
	// Duration of the emulated experiment (paper: ~20 s).
	Duration time.Duration
	// Workers is the number of parallel inference executors at the edge
	// (0 derives it from the compute budget: max(1, round(C))).
	Workers int
	// ArrivalJitter adds ±jitter·period uniform noise to frame arrivals,
	// emulating source timing variability (0 = strictly periodic).
	ArrivalJitter float64
	// ComputeJitter multiplies each inference time by 1 ± U(0,jitter),
	// emulating GPU timing variability.
	ComputeJitter float64
	// TxJitter multiplies each frame's transmission time by 1 ± U(0,j),
	// emulating per-frame channel-quality variation (fading, HARQ
	// retransmissions) around the average delivered rate.
	TxJitter float64
	// LinkRateFactor is the ratio of the *delivered* per-RB rate to the
	// conservative planning value B(σ) the solver used. The paper's
	// Colosseum setup (0 dB path loss) delivers well above the 0.35 Mb/s
	// planning rate, which is why the measured latencies sit below the
	// targets with headroom; 1.0 means the link delivers exactly the
	// planning rate (slices sized at ρ = 1 then oscillate).
	LinkRateFactor float64
	// ComputeScale multiplies every path compute time (0 = 1.0, unscaled).
	// The c(s^d) tables are characterized at a single worker; when an edge
	// node runs the parallel kernels, profile the path at that worker count
	// and set ComputeScale to the measured ratio c_parallel/c_serial to
	// emulate the faster executor without re-deriving the tables.
	ComputeScale float64
	// Seed drives the jitter.
	Seed int64
}

// DefaultEmulatorConfig returns a 20-second run with mild jitter.
func DefaultEmulatorConfig() EmulatorConfig {
	return EmulatorConfig{
		Duration:       20 * time.Second,
		ArrivalJitter:  0.1,
		ComputeJitter:  0.15,
		TxJitter:       0.3,
		LinkRateFactor: 1.5,
		Seed:           1,
	}
}

// LatencySample is one completed frame's end-to-end measurement.
type LatencySample struct {
	// At is the frame completion time.
	At time.Duration
	// Latency is generation-to-result end-to-end latency.
	Latency time.Duration
}

// TaskTrace is the per-task outcome of a run.
type TaskTrace struct {
	TaskID string
	// Target is the task's latency bound L_τ.
	Target time.Duration
	// Samples in completion order.
	Samples []LatencySample
	// Violations counts samples exceeding Target.
	Violations int
	// Dropped counts frames still unfinished at the end of the run.
	Dropped int
}

// Result aggregates an emulation run.
type Result struct {
	Traces []TaskTrace
	// FramesServed across all tasks.
	FramesServed int
	// Violations across all tasks.
	Violations int
}

// frame is one offloaded image in flight.
type frame struct {
	taskIdx   int
	createdAt time.Duration
}

// Emulator drives admitted tasks through their radio slices and the edge
// compute queue.
type Emulator struct {
	inst   *core.Instance
	deploy *Deployment
	cfg    EmulatorConfig
}

// NewEmulator binds a deployment to an emulation configuration.
func NewEmulator(inst *core.Instance, deploy *Deployment, cfg EmulatorConfig) (*Emulator, error) {
	if inst == nil || deploy == nil {
		return nil, fmt.Errorf("%w: nil instance or deployment", ErrDeploy)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("%w: non-positive duration %v", ErrDeploy, cfg.Duration)
	}
	return &Emulator{inst: inst, deploy: deploy, cfg: cfg}, nil
}

// Run executes the emulation and returns per-task latency traces.
//
// Model: each admitted task's UE emits frames at its notified rate z·λ
// (periodic with optional jitter). A frame is transmitted over the task's
// dedicated slice — r_τ RBs at B(σ_τ) bit/s each, FIFO within the slice —
// then queued at the edge and served by one of the workers for the path's
// compute time. The completion timestamp ends the end-to-end measurement.
// Result return (a few hundred bytes) is folded into the compute-jitter
// margin, as in the paper's single-downlink-slot regime.
func (e *Emulator) Run() (*Result, error) {
	rng := rand.New(rand.NewSource(e.cfg.Seed))
	engine := sim.NewEngine()

	workers := e.cfg.Workers
	if workers == 0 {
		workers = int(e.inst.Res.ComputeSeconds + 0.5)
		if workers < 1 {
			workers = 1
		}
	}

	type taskState struct {
		idx       int
		rate      float64 // admitted frames/s
		txTime    time.Duration
		procTime  float64 // seconds
		sliceFree time.Duration
		inFlight  int
		trace     *TaskTrace
	}

	res := &Result{}
	// The emulator draws its per-task design values from the same cost
	// model the resolver and the simulated execution backend use.
	costs := PlanCosts(e.inst.Tasks, e.inst.Blocks, e.inst.Res, e.deploy,
		e.cfg.LinkRateFactor, e.cfg.ComputeScale)
	var states []*taskState
	for i, a := range e.deploy.Solution.Assignments {
		task := &e.inst.Tasks[i]
		trace := &TaskTrace{TaskID: task.ID, Target: task.MaxLatency}
		res.Traces = append(res.Traces, *trace)
		if !a.Admitted() {
			continue
		}
		cost := costs[task.ID]
		states = append(states, &taskState{
			idx:      i,
			rate:     e.deploy.AdmittedRates[task.ID],
			txTime:   cost.Tx,
			procTime: cost.Proc.Seconds(),
		})
	}
	// Traces live in res.Traces; point states at them.
	byIdx := make(map[int]*taskState, len(states))
	for _, st := range states {
		st.trace = &res.Traces[st.idx]
		byIdx[st.idx] = st
	}

	// Edge compute: FIFO queue over `workers` executors.
	var queue []*frame
	busyWorkers := 0
	var serveNext func()
	complete := func(f *frame, started time.Duration) {
		st := byIdx[f.taskIdx]
		procJitter := 1 + e.cfg.ComputeJitter*rng.Float64()
		d := time.Duration(st.procTime * procJitter * float64(time.Second))
		if err := engine.Schedule(d, func() {
			busyWorkers--
			lat := engine.Now() - f.createdAt
			st.trace.Samples = append(st.trace.Samples, LatencySample{At: engine.Now(), Latency: lat})
			if lat > st.trace.Target {
				st.trace.Violations++
			}
			st.inFlight--
			res.FramesServed++
			serveNext()
		}); err != nil {
			panic(err) // delays are non-negative by construction
		}
		_ = started
	}
	serveNext = func() {
		for busyWorkers < workers && len(queue) > 0 {
			f := queue[0]
			queue = queue[1:]
			busyWorkers++
			complete(f, engine.Now())
		}
	}

	// Radio: per-slice FIFO — frames serialize on their task's slice.
	arriveAtEdge := func(f *frame) {
		queue = append(queue, f)
		serveNext()
	}
	transmit := func(st *taskState, f *frame) {
		start := engine.Now()
		if st.sliceFree > start {
			start = st.sliceFree
		}
		tx := st.txTime
		if e.cfg.TxJitter > 0 {
			tx = time.Duration(float64(tx) * (1 + e.cfg.TxJitter*(2*rng.Float64()-1)))
		}
		end := start + tx
		st.sliceFree = end
		if err := engine.ScheduleAt(end, func() { arriveAtEdge(f) }); err != nil {
			panic(err)
		}
	}

	// UE sources: periodic generation with jitter.
	var generate func(st *taskState)
	generate = func(st *taskState) {
		f := &frame{taskIdx: st.idx, createdAt: engine.Now()}
		st.inFlight++
		transmit(st, f)
		period := time.Duration(float64(time.Second) / st.rate)
		jitter := time.Duration((rng.Float64() - 0.5) * 2 * e.cfg.ArrivalJitter * float64(period))
		next := period + jitter
		if next < time.Millisecond {
			next = time.Millisecond
		}
		if engine.Now()+next <= e.cfg.Duration {
			if err := engine.Schedule(next, func() { generate(st) }); err != nil {
				panic(err)
			}
		}
	}
	for _, st := range states {
		if st.rate <= 0 {
			continue
		}
		offset := time.Duration(rng.Float64() * float64(time.Second) / st.rate)
		stLocal := st
		if err := engine.ScheduleAt(offset, func() { generate(stLocal) }); err != nil {
			return nil, err
		}
	}

	// Run past the horizon to let in-flight frames finish.
	engine.Run(e.cfg.Duration + 5*time.Second)
	for _, st := range states {
		st.trace.Dropped = st.inFlight
		res.Violations += st.trace.Violations
	}
	for i := range res.Traces {
		sort.Slice(res.Traces[i].Samples, func(a, b int) bool {
			return res.Traces[i].Samples[a].At < res.Traces[i].Samples[b].At
		})
	}
	return res, nil
}
