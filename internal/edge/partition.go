package edge

import "offloadnn/internal/core"

// PartitionResources splits one edge server's capacity pool into n
// per-node budgets for a cluster of edge nodes: compute C and memory M
// divide evenly, the R radio resource blocks split integrally with the
// remainder spread over the first nodes, and every node keeps the full
// training budget Ct (it normalizes the DOT objective's training term —
// shrinking it would inflate each node's train cost relative to the
// single-server objective) and the shared capacity model B(σ).
func PartitionResources(res core.Resources, n int) []core.Resources {
	if n <= 0 {
		return nil
	}
	out := make([]core.Resources, n)
	base, extra := res.RBs/n, res.RBs%n
	for i := range out {
		out[i] = core.Resources{
			RBs:                base,
			ComputeSeconds:     res.ComputeSeconds / float64(n),
			MemoryGB:           res.MemoryGB / float64(n),
			TrainBudgetSeconds: res.TrainBudgetSeconds,
			Capacity:           res.Capacity,
		}
		if i < extra {
			out[i].RBs++
		}
	}
	return out
}
