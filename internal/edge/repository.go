package edge

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"offloadnn/internal/dnn"
)

// ErrNotFound reports a model absent from the repository.
var ErrNotFound = errors.New("edge: model not found")

// Repository is the edge's DNN repository (Fig. 4): trained models —
// compositions of shareable blocks — stored by name, optionally persisted
// to a directory, and loaded when the controller activates the blocks of
// an admitted configuration. It is safe for concurrent use.
type Repository struct {
	dir string

	mu     sync.RWMutex
	models map[string]*dnn.Model
}

// NewRepository creates a repository. dir may be empty for a memory-only
// store; otherwise persisted models live under dir as <name>.dnn files.
func NewRepository(dir string) *Repository {
	return &Repository{dir: dir, models: make(map[string]*dnn.Model)}
}

// validName rejects names that would escape the repository directory.
func validName(name string) error {
	if name == "" {
		return fmt.Errorf("edge: empty model name")
	}
	if strings.ContainsAny(name, "/\\") || name == "." || name == ".." {
		return fmt.Errorf("edge: invalid model name %q", name)
	}
	return nil
}

func (r *Repository) path(name string) string {
	return filepath.Join(r.dir, name+".dnn")
}

// Store registers a model under the name, persisting it when the
// repository is directory-backed. An existing model of the same name is
// replaced.
func (r *Repository) Store(name string, m *dnn.Model) error {
	if err := validName(name); err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("edge: nil model for %q", name)
	}
	if r.dir != "" {
		f, err := os.CreateTemp(r.dir, name+".tmp*")
		if err != nil {
			return fmt.Errorf("edge: store %q: %w", name, err)
		}
		tmp := f.Name()
		if err := dnn.Save(f, m); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("edge: store %q: %w", name, err)
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("edge: store %q: %w", name, err)
		}
		if err := os.Rename(tmp, r.path(name)); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("edge: store %q: %w", name, err)
		}
	}
	r.mu.Lock()
	r.models[name] = m
	r.mu.Unlock()
	return nil
}

// Load fetches a model by name: from memory when cached, else from the
// backing directory.
func (r *Repository) Load(name string) (*dnn.Model, error) {
	if err := validName(name); err != nil {
		return nil, err
	}
	r.mu.RLock()
	m, ok := r.models[name]
	r.mu.RUnlock()
	if ok {
		return m, nil
	}
	if r.dir == "" {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	f, err := os.Open(r.path(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, fmt.Errorf("edge: load %q: %w", name, err)
	}
	defer f.Close()
	m, err = dnn.Load(f)
	if err != nil {
		return nil, fmt.Errorf("edge: load %q: %w", name, err)
	}
	r.mu.Lock()
	r.models[name] = m
	r.mu.Unlock()
	return m, nil
}

// artifactPath is the on-disk location of a binary weight artifact.
func (r *Repository) artifactPath(name string) string {
	return filepath.Join(r.dir, name+".dnnw")
}

// StoreArtifact persists a model as a binary weight artifact (<name>.dnnw)
// next to the gob store. Artifacts are the zero-copy deployment format:
// LoadArtifact aliases all weights into one buffer. The in-memory cache is
// updated like Store.
func (r *Repository) StoreArtifact(name string, m *dnn.Model) error {
	if err := validName(name); err != nil {
		return err
	}
	if m == nil {
		return fmt.Errorf("edge: nil model for %q", name)
	}
	if r.dir != "" {
		f, err := os.CreateTemp(r.dir, name+".tmp*")
		if err != nil {
			return fmt.Errorf("edge: store artifact %q: %w", name, err)
		}
		tmp := f.Name()
		if err := dnn.SaveArtifact(f, m); err != nil {
			f.Close()
			os.Remove(tmp)
			return fmt.Errorf("edge: store artifact %q: %w", name, err)
		}
		if err := f.Close(); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("edge: store artifact %q: %w", name, err)
		}
		if err := os.Rename(tmp, r.artifactPath(name)); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("edge: store artifact %q: %w", name, err)
		}
	}
	r.mu.Lock()
	r.models[name] = m
	r.mu.Unlock()
	return nil
}

// LoadArtifact loads a binary weight artifact by name, bypassing the
// in-memory cache (each call builds a fresh single-buffer aliasing) and
// reporting the weight section's resident bytes. Corrupted artifacts are
// rejected by their per-block checksums.
func (r *Repository) LoadArtifact(name string) (*dnn.Model, int64, error) {
	if err := validName(name); err != nil {
		return nil, 0, err
	}
	if r.dir == "" {
		return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	f, err := os.Open(r.artifactPath(name))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, 0, fmt.Errorf("%w: %q", ErrNotFound, name)
		}
		return nil, 0, fmt.Errorf("edge: load artifact %q: %w", name, err)
	}
	defer f.Close()
	m, bytes, err := dnn.LoadArtifact(f)
	if err != nil {
		return nil, 0, fmt.Errorf("edge: load artifact %q: %w", name, err)
	}
	return m, bytes, nil
}

// Delete removes a model from memory and disk. Deleting an absent model
// is a no-op.
func (r *Repository) Delete(name string) error {
	if err := validName(name); err != nil {
		return err
	}
	r.mu.Lock()
	delete(r.models, name)
	r.mu.Unlock()
	if r.dir != "" {
		if err := os.Remove(r.path(name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("edge: delete %q: %w", name, err)
		}
		if err := os.Remove(r.artifactPath(name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("edge: delete %q: %w", name, err)
		}
	}
	return nil
}

// List returns the sorted names available (memory plus directory).
func (r *Repository) List() ([]string, error) {
	seen := make(map[string]bool)
	r.mu.RLock()
	for name := range r.models {
		seen[name] = true
	}
	r.mu.RUnlock()
	if r.dir != "" {
		entries, err := os.ReadDir(r.dir)
		if err != nil {
			return nil, fmt.Errorf("edge: list: %w", err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			if n, ok := strings.CutSuffix(e.Name(), ".dnn"); ok {
				seen[n] = true
			}
		}
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	return names, nil
}
