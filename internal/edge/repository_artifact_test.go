package edge

import (
	"errors"
	"os"
	"testing"

	"offloadnn/internal/tensor"
)

func TestRepositoryArtifactRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository(dir)
	m := testModel(3)
	if err := r.StoreArtifact("resnet", m); err != nil {
		t.Fatal(err)
	}
	loaded, bytes, err := r.LoadArtifact("resnet")
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(m.ParamCount()) * 8; bytes < want {
		t.Fatalf("weight bytes %d < param bytes %d", bytes, want)
	}
	x := tensor.New(1, 3, 8, 8)
	x.Fill(0.5)
	y1, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatalf("artifact forward differs at %d", i)
		}
	}
	if _, _, err := r.LoadArtifact("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing artifact err = %v, want ErrNotFound", err)
	}
}

func TestRepositoryArtifactCorruptionRejected(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository(dir)
	if err := r.StoreArtifact("resnet", testModel(3)); err != nil {
		t.Fatal(err)
	}
	path := r.artifactPath("resnet")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-3] ^= 0x10
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.LoadArtifact("resnet"); err == nil {
		t.Fatal("corrupted artifact loaded without error")
	}
}

func TestRepositoryDeleteRemovesArtifact(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository(dir)
	if err := r.StoreArtifact("resnet", testModel(3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("resnet"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(r.artifactPath("resnet")); !os.IsNotExist(err) {
		t.Fatalf("artifact file survives delete: %v", err)
	}
}

func TestRepositoryMemoryOnlyArtifact(t *testing.T) {
	r := NewRepository("")
	if err := r.StoreArtifact("resnet", testModel(3)); err != nil {
		t.Fatal(err)
	}
	// Memory-only repositories cannot alias a file, but the model is
	// cached for Load.
	if _, err := r.Load("resnet"); err != nil {
		t.Fatal(err)
	}
	if _, _, err := r.LoadArtifact("resnet"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("memory-only LoadArtifact err = %v, want ErrNotFound", err)
	}
}
