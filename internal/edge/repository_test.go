package edge

import (
	"errors"
	"testing"

	"offloadnn/internal/dnn"
	"offloadnn/internal/tensor"
)

func testModel(seed int64) *dnn.Model {
	return dnn.BuildResNet18(dnn.ResNetConfig{
		InChannels: 3, NumClasses: 4, BaseWidth: 4,
		StageBlocks: [4]int{1, 1, 1, 1}, Seed: seed,
	})
}

func TestRepositoryMemoryOnly(t *testing.T) {
	r := NewRepository("")
	m := testModel(1)
	if err := r.Store("resnet", m); err != nil {
		t.Fatal(err)
	}
	got, err := r.Load("resnet")
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Fatal("memory repository should return the stored instance")
	}
	if _, err := r.Load("ghost"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing model err = %v, want ErrNotFound", err)
	}
	names, err := r.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "resnet" {
		t.Fatalf("List = %v", names)
	}
}

func TestRepositoryPersistsToDisk(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository(dir)
	m := testModel(2)
	if err := r.Store("traffic-v1", m); err != nil {
		t.Fatal(err)
	}

	// A fresh repository over the same directory sees and reloads it.
	r2 := NewRepository(dir)
	names, err := r2.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 1 || names[0] != "traffic-v1" {
		t.Fatalf("List = %v", names)
	}
	loaded, err := r2.Load("traffic-v1")
	if err != nil {
		t.Fatal(err)
	}
	// Loaded weights behave identically.
	x := tensor.New(1, 3, 8, 8)
	x.Fill(0.3)
	y1, err := m.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	y2, err := loaded.Forward(x, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := range y1.Data() {
		if y1.Data()[i] != y2.Data()[i] {
			t.Fatal("persisted model behaves differently")
		}
	}
}

func TestRepositoryDelete(t *testing.T) {
	dir := t.TempDir()
	r := NewRepository(dir)
	if err := r.Store("m", testModel(3)); err != nil {
		t.Fatal(err)
	}
	if err := r.Delete("m"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Load("m"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted model err = %v, want ErrNotFound", err)
	}
	// Idempotent.
	if err := r.Delete("m"); err != nil {
		t.Fatal(err)
	}
}

func TestRepositoryRejectsBadNames(t *testing.T) {
	r := NewRepository(t.TempDir())
	for _, name := range []string{"", "../escape", "a/b", "."} {
		if err := r.Store(name, testModel(4)); err == nil {
			t.Fatalf("name %q should be rejected", name)
		}
		if _, err := r.Load(name); err == nil {
			t.Fatalf("load of %q should be rejected", name)
		}
	}
	if err := r.Store("nilmodel", nil); err == nil {
		t.Fatal("nil model should be rejected")
	}
}

func TestRepositoryReplace(t *testing.T) {
	r := NewRepository(t.TempDir())
	m1, m2 := testModel(5), testModel(6)
	if err := r.Store("m", m1); err != nil {
		t.Fatal(err)
	}
	if err := r.Store("m", m2); err != nil {
		t.Fatal(err)
	}
	got, err := r.Load("m")
	if err != nil {
		t.Fatal(err)
	}
	if got != m2 {
		t.Fatal("replacement did not take effect")
	}
}
