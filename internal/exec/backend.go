// Package exec is the serving daemon's execution layer: the piece that
// turns a solved deployment (which paths are admitted, which blocks are
// active) into something that can actually answer an offloaded request.
//
// The layer is a single pluggable interface with two implementations:
//
//   - Real assembles tensor-backed models per deployed path from the
//     block catalog, instantiating each shared block exactly once
//     (refcounted across paths and epochs — the operational form of the
//     paper's constraint (1b) memory sharing) and running admitted
//     requests through per-model batching queues that feed
//     dnn.Model.ForwardBatch. The queues are deadline-aware: intake is
//     earliest-deadline-first, the batch window adapts to the tightest
//     pending slack, already-late requests are shed before they enter a
//     batch, and a bounded queue depth sheds the latest-deadline waiter
//     under overload.
//
//   - Simulated answers with the deployment's planned cost model
//     (edge.PlanCosts — the same arithmetic the Fig. 11 emulator and
//     the resolver's predicted latency use), so the predict-only serving
//     mode stops being a parallel code path.
//
// The resolver installs every published epoch into the backend
// atomically with the deployment swap: blocks shared between consecutive
// epochs are retained (warm swap), blocks no surviving path references
// are released.
package exec

import (
	"context"
	"errors"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
)

// ErrNoModel reports an Infer for a task the installed plan does not
// admit (or before any plan was installed).
var ErrNoModel = errors.New("exec: no model deployed for task")

// ErrBadInput reports an input tensor whose length does not match the
// backend's expected input shape.
var ErrBadInput = errors.New("exec: input does not match model input shape")

// ErrReleased reports an Infer that raced an epoch swap which released
// the task's model; the caller should retry against the new epoch.
var ErrReleased = errors.New("exec: model released by epoch swap")

// ErrClosed reports use of a closed backend.
var ErrClosed = errors.New("exec: backend closed")

// ErrLate reports a request shed because its deadline had already passed
// before it entered a batch: serving it would burn compute on a result
// the caller's latency bound L_τ makes worthless, and drag every
// co-batched request later. The serving layer maps it to a 504-style
// envelope.
var ErrLate = errors.New("exec: request past deadline, shed")

// ErrQueueFull reports a request shed by overload backpressure: the
// model's bounded intake queue was full and this request held the latest
// deadline among the waiters (the least worth serving), so it was shed
// rather than growing an unbounded backlog.
var ErrQueueFull = errors.New("exec: batching queue full, shed")

// Segment is one stage-range of a split path assigned to this node: a
// cluster placement may pipeline a path across nodes, and each node
// installs only its contiguous slice. Blocks is always the FULL path's
// block-ID list — the range indexes into it, and keeping the whole list
// lets a quantized segment rebuild the complete path locally for
// calibration, so every node derives identical activation scales.
type Segment struct {
	// TaskID is the task the split plan serves.
	TaskID string
	// PathID and DNN identify the catalog path being split.
	PathID string
	DNN    string
	// Blocks is the full path's ordered block-ID list.
	Blocks []string
	// From and To bound this node's stage range [From, To) into Blocks.
	// From == 0 makes this the head segment (it includes the stem and
	// consumes raw frames); To == len(Blocks) makes it the tail (it
	// includes the classifier and emits logits).
	From, To int
}

// Head reports whether the segment consumes raw frames.
func (s Segment) Head() bool { return s.From == 0 }

// Tail reports whether the segment emits logits.
func (s Segment) Tail() bool { return s.To == len(s.Blocks) }

// Plan is one epoch's deployment handed to the backend: the task
// snapshot the assignments are parallel to, the block catalog, the
// resource pool and the controller's deployment. A nil Deployment (empty
// registry) releases every model.
type Plan struct {
	// Epoch is the sequence number of the epoch being installed.
	Epoch uint64
	// Node optionally names the cluster member installing the plan;
	// empty for a standalone daemon. Labels backend diagnostics.
	Node string
	// Tasks is the task order Deployment.Solution.Assignments is
	// parallel to.
	Tasks []core.Task
	// Blocks is the catalog every path's block IDs resolve against.
	Blocks map[string]core.BlockSpec
	// Res is the capacity pool the plan was solved against.
	Res core.Resources
	// Deployment is the admission outcome; nil for an empty registry.
	Deployment *edge.Deployment
	// Segments lists the stage-range slices of split paths this node
	// serves in addition to (and independent of) the whole-path
	// assignments in Deployment.
	Segments []Segment
}

// Request is one admitted offload handed to the backend: the task whose
// deployed model should answer, the flattened input tensor, and the
// caller's completion deadline.
type Request struct {
	// TaskID selects the deployed model (via the installed plan's
	// task → path routing).
	TaskID string
	// Input is the flattened input tensor: a raw frame in the backend's
	// InputShape order when FromStage is 0, otherwise the boundary
	// activation entering stage index FromStage of the task's split
	// path.
	Input []float64
	// FromStage selects which installed range serves the request: 0 (a
	// raw frame, the head or a whole path) or the From of an installed
	// mid-path segment.
	FromStage int
	// Deadline is the wall-clock instant after which the result is
	// worthless — the serving layer derives it from the task's plan-time
	// latency bound L_τ (optionally overridden per request). The zero
	// time means no deadline: the request is never shed for lateness and
	// sorts after every deadline-carrying request in EDF intake order.
	Deadline time.Time
}

// Output is the result of one executed offload.
type Output struct {
	// Logits is the model output row for the request's input; nil when
	// the backend does not run a real model (Simulated) or when the
	// serving range is a non-tail segment (see Activation).
	Logits []float64
	// Argmax is the index of the largest logit (class prediction);
	// -1 when Logits is nil.
	Argmax int
	// Activation is the boundary activation a non-tail segment emits
	// instead of logits, flattened in ActShape order; the serving layer
	// forwards it to the next hop.
	Activation []float64
	// ActShape is Activation's (C, H, W).
	ActShape [3]int
	// BatchSize is the size of the batch the request was served in.
	BatchSize int
	// Latency is the measured (Real) or modeled (Simulated) end-to-end
	// execution time of the request.
	Latency time.Duration
	// Simulated marks outputs produced by the cost model rather than a
	// real forward pass.
	Simulated bool
}

// Stats is a point-in-time snapshot of the backend's execution state,
// exported on /metrics.
type Stats struct {
	// Models is the number of live assembled models.
	Models int
	// Blocks is the number of live shared block instances.
	Blocks int
	// QueueDepth is the number of requests waiting in batching queues.
	QueueDepth int
	// LastBatchSize is the size of the most recently executed batch.
	LastBatchSize int
	// Batches and Requests count executed batches and the requests they
	// carried since the backend was constructed; Requests/Batches is the
	// achieved average batch size.
	Batches  int64
	Requests int64
	// ShedLate counts requests shed because their deadline had already
	// passed before they entered a batch (ErrLate).
	ShedLate int64
	// ShedQueueFull counts requests shed by bounded-queue backpressure
	// (ErrQueueFull) — the latest-deadline waiter when a queue overflows.
	ShedQueueFull int64
	// ShedCanceled counts requests whose caller disconnected (context
	// canceled) after enqueue: their compute is skipped when the
	// cancellation is seen before batch assembly, and their result copy
	// is skipped when it is seen after execution.
	ShedCanceled int64
	// DeadlineHits and DeadlineMisses count deadline-carrying requests by
	// outcome: a request served at or before its deadline is a hit; one
	// served late, or shed for lateness or backpressure, is a miss.
	// DeadlineHits/(DeadlineHits+DeadlineMisses) is the deadline hit
	// ratio exported on /metrics.
	DeadlineHits   int64
	DeadlineMisses int64
	// QueueSlack maps each deployed path signature to the tightest
	// remaining slack (earliest waiter deadline minus now) in its intake
	// queue; negative when an already-late request is waiting. Paths with
	// no deadline-carrying waiters are absent. Nil for backends without
	// batching queues.
	QueueSlack map[string]time.Duration
	// LastWindow is the batch window most recently applied by an
	// adaptive-window executor: BatchWindow when slack is plentiful,
	// shrunk toward zero under deadline pressure.
	LastWindow time.Duration
	// QuantFallbacks counts reduced-precision paths the install-time
	// accuracy gate demoted a tier (i8→f32 or f32→f64). Each demotion
	// step of each gated path counts once.
	QuantFallbacks int64
	// WeightBytes is the total resident size of weight buffers that live
	// block instances alias zero-copy from binary artifacts; 0 when every
	// block was built from seeds or gob weights.
	WeightBytes int64
	// PathPrecisions maps each deployed path signature to the kernel
	// precision it currently runs at ("f64", "f32" or "i8") after any
	// gate demotions; nil for backends without real models.
	PathPrecisions map[string]string
}

// Backend executes admitted offloads under the currently installed plan.
// Install and Close serialize with each other (the resolver calls them
// under its solve lock); Infer is safe for concurrent use and may
// overlap an Install (requests racing a swap that releases their model
// get ErrReleased).
type Backend interface {
	// Install swaps the backend onto a new epoch's deployment, building
	// models for newly admitted paths, retaining those shared with the
	// previous epoch and releasing the rest. An error leaves the
	// previous plan in place.
	Install(plan *Plan) error
	// Infer runs one request's input through the model deployed for its
	// task, honoring the request deadline: a deadline-aware backend
	// orders intake earliest-deadline-first and sheds requests that are
	// already late (ErrLate) or squeezed out by backpressure
	// (ErrQueueFull) instead of serving stale results.
	Infer(ctx context.Context, req Request) (Output, error)
	// InputShape returns the expected per-request input shape (C, H, W),
	// or nil when the backend accepts any input (Simulated).
	InputShape() []int
	// Stats snapshots the execution counters.
	Stats() Stats
	// Close releases every model and stops the batching executors.
	Close()
}
