// Package exec is the serving daemon's execution layer: the piece that
// turns a solved deployment (which paths are admitted, which blocks are
// active) into something that can actually answer an offloaded request.
//
// The layer is a single pluggable interface with two implementations:
//
//   - Real assembles tensor-backed models per deployed path from the
//     block catalog, instantiating each shared block exactly once
//     (refcounted across paths and epochs — the operational form of the
//     paper's constraint (1b) memory sharing) and running admitted
//     requests through size- and deadline-bounded per-model batching
//     queues that feed dnn.Model.ForwardBatch.
//
//   - Simulated answers with the deployment's planned cost model
//     (edge.PlanCosts — the same arithmetic the Fig. 11 emulator and
//     the resolver's predicted latency use), so the predict-only serving
//     mode stops being a parallel code path.
//
// The resolver installs every published epoch into the backend
// atomically with the deployment swap: blocks shared between consecutive
// epochs are retained (warm swap), blocks no surviving path references
// are released.
package exec

import (
	"context"
	"errors"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
)

// ErrNoModel reports an Infer for a task the installed plan does not
// admit (or before any plan was installed).
var ErrNoModel = errors.New("exec: no model deployed for task")

// ErrBadInput reports an input tensor whose length does not match the
// backend's expected input shape.
var ErrBadInput = errors.New("exec: input does not match model input shape")

// ErrReleased reports an Infer that raced an epoch swap which released
// the task's model; the caller should retry against the new epoch.
var ErrReleased = errors.New("exec: model released by epoch swap")

// ErrClosed reports use of a closed backend.
var ErrClosed = errors.New("exec: backend closed")

// Plan is one epoch's deployment handed to the backend: the task
// snapshot the assignments are parallel to, the block catalog, the
// resource pool and the controller's deployment. A nil Deployment (empty
// registry) releases every model.
type Plan struct {
	// Epoch is the sequence number of the epoch being installed.
	Epoch uint64
	// Node optionally names the cluster member installing the plan;
	// empty for a standalone daemon. Labels backend diagnostics.
	Node string
	// Tasks is the task order Deployment.Solution.Assignments is
	// parallel to.
	Tasks []core.Task
	// Blocks is the catalog every path's block IDs resolve against.
	Blocks map[string]core.BlockSpec
	// Res is the capacity pool the plan was solved against.
	Res core.Resources
	// Deployment is the admission outcome; nil for an empty registry.
	Deployment *edge.Deployment
}

// Output is the result of one executed offload.
type Output struct {
	// Logits is the model output row for the request's input; nil when
	// the backend does not run a real model (Simulated).
	Logits []float64
	// Argmax is the index of the largest logit (class prediction);
	// -1 when Logits is nil.
	Argmax int
	// BatchSize is the size of the batch the request was served in.
	BatchSize int
	// Latency is the measured (Real) or modeled (Simulated) end-to-end
	// execution time of the request.
	Latency time.Duration
	// Simulated marks outputs produced by the cost model rather than a
	// real forward pass.
	Simulated bool
}

// Stats is a point-in-time snapshot of the backend's execution state,
// exported on /metrics.
type Stats struct {
	// Models is the number of live assembled models.
	Models int
	// Blocks is the number of live shared block instances.
	Blocks int
	// QueueDepth is the number of requests waiting in batching queues.
	QueueDepth int
	// LastBatchSize is the size of the most recently executed batch.
	LastBatchSize int
	// Batches and Requests count executed batches and the requests they
	// carried since the backend was constructed; Requests/Batches is the
	// achieved average batch size.
	Batches  int64
	Requests int64
	// QuantFallbacks counts reduced-precision paths the install-time
	// accuracy gate demoted a tier (i8→f32 or f32→f64). Each demotion
	// step of each gated path counts once.
	QuantFallbacks int64
	// WeightBytes is the total resident size of weight buffers that live
	// block instances alias zero-copy from binary artifacts; 0 when every
	// block was built from seeds or gob weights.
	WeightBytes int64
	// PathPrecisions maps each deployed path signature to the kernel
	// precision it currently runs at ("f64", "f32" or "i8") after any
	// gate demotions; nil for backends without real models.
	PathPrecisions map[string]string
}

// Backend executes admitted offloads under the currently installed plan.
// Install and Close serialize with each other (the resolver calls them
// under its solve lock); Infer is safe for concurrent use and may
// overlap an Install (requests racing a swap that releases their model
// get ErrReleased).
type Backend interface {
	// Install swaps the backend onto a new epoch's deployment, building
	// models for newly admitted paths, retaining those shared with the
	// previous epoch and releasing the rest. An error leaves the
	// previous plan in place.
	Install(plan *Plan) error
	// Infer runs one input through the model deployed for the task.
	Infer(ctx context.Context, taskID string, input []float64) (Output, error)
	// InputShape returns the expected per-request input shape (C, H, W),
	// or nil when the backend accepts any input (Simulated).
	InputShape() []int
	// Stats snapshots the execution counters.
	Stats() Stats
	// Close releases every model and stops the batching executors.
	Close()
}
