package exec

// White-box tests for the deadline-aware runtime: EDF intake ordering,
// pre-batch lateness shedding, bounded-queue backpressure and canceled
// request accounting. They live inside the package to reach the intake
// heap and the batchHook, which make the batching executor deterministic
// without wall-clock races.

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/edge"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/radio"
)

func dlModel() dnn.ResNetConfig {
	return dnn.ResNetConfig{
		InChannels: 3, NumClasses: 4, BaseWidth: 4, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 7,
	}
}

// dlPlan is the single-path plan the deadline tests run against: one
// task, one block, batching queue keyed by "base/s1".
func dlPlan(epoch uint64) *Plan {
	task := core.Task{ID: "t1", Rate: 10, MaxLatency: time.Second, InputBits: 1e5, Priority: 0.5}
	p := &core.PathSpec{ID: "p-t1", DNN: "d", Blocks: []string{"base/s1"}, Accuracy: 0.9}
	return &Plan{
		Epoch:  epoch,
		Tasks:  []core.Task{task},
		Blocks: map[string]core.BlockSpec{"base/s1": {ID: "base/s1", ComputeSeconds: 0.01}},
		Res: core.Resources{
			RBs: 10, ComputeSeconds: 1, MemoryGB: 10, TrainBudgetSeconds: 1000,
			Capacity: radio.FixedRate{Rate: 1e6},
		},
		Deployment: &edge.Deployment{
			Solution: &core.Solution{Assignments: []core.Assignment{
				{TaskID: "t1", Path: p, Z: 1, RBs: 2},
			}},
			AdmittedRates: map[string]float64{"t1": 10},
		},
	}
}

func dlReal(t *testing.T, cfg RealConfig) *Real {
	t.Helper()
	if cfg.Model.BaseWidth == 0 {
		cfg.Model = dlModel()
	}
	r, err := NewReal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

func dlInput(r *Real) []float64 {
	shape := r.InputShape()
	in := make([]float64, shape[0]*shape[1]*shape[2])
	for i := range in {
		in[i] = float64(i%7) / 7
	}
	return in
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(200 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestIntakeOrderingProperty drives the intake heap with concurrent
// enqueuers across worker counts and asserts the pop order is exactly
// the intake order lessReq defines: under EDF, deadlines non-decreasing
// with deadline-free requests last; under FIFO — and under EDF with no
// deadlines set, the bit-identical-to-FIFO guarantee — strict arrival
// order.
func TestIntakeOrderingProperty(t *testing.T) {
	const perWorker = 64
	for _, workers := range []int{1, 2, 4, 8} {
		for _, mode := range []struct {
			name      string
			sched     SchedPolicy
			deadlines bool
		}{
			{"edf", SchedEDF, true},
			{"edf-no-deadlines", SchedEDF, false},
			{"fifo", SchedFIFO, true},
		} {
			r := &Real{cfg: RealConfig{QueueDepth: -1, Sched: mode.sched}}
			e := &modelEntry{
				queue: reqQueue{edf: mode.sched == SchedEDF},
				avail: make(chan struct{}, 1),
				done:  make(chan struct{}),
			}
			// Deadlines are drawn per worker up front (the shared rng is
			// not goroutine-safe) and kept far in the future so tryPop
			// never sheds.
			rng := rand.New(rand.NewSource(int64(workers)*31 + 7))
			base := time.Now().Add(time.Hour).UnixNano()
			dls := make([][]int64, workers)
			for w := range dls {
				dls[w] = make([]int64, perWorker)
				for i := range dls[w] {
					if mode.deadlines && rng.Intn(4) > 0 { // ~1/4 deadline-free
						dls[w][i] = base + int64(rng.Intn(1000))*int64(time.Millisecond)
					}
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(ds []int64) {
					defer wg.Done()
					for _, d := range ds {
						q := &inferReq{deadline: d, resp: make(chan inferResp, 1)}
						if err := r.enqueue(e, q); err != nil {
							t.Errorf("enqueue: %v", err)
						}
					}
				}(dls[w])
			}
			wg.Wait()
			var popped []*inferReq
			for q := r.tryPop(e); q != nil; q = r.tryPop(e) {
				popped = append(popped, q)
			}
			if len(popped) != workers*perWorker {
				t.Fatalf("%s/%d workers: popped %d of %d", mode.name, workers, len(popped), workers*perWorker)
			}
			edf := mode.sched == SchedEDF
			for i := 1; i < len(popped); i++ {
				if lessReq(popped[i], popped[i-1], edf) {
					t.Fatalf("%s/%d workers: pop %d (deadline %d, seq %d) out of order after (deadline %d, seq %d)",
						mode.name, workers, i, popped[i].deadline, popped[i].seq, popped[i-1].deadline, popped[i-1].seq)
				}
				// No deadlines anywhere: EDF must be exact arrival order.
				if !mode.deadlines && popped[i].seq != popped[i-1].seq+1 {
					t.Fatalf("%s/%d workers: seq %d follows %d, want arrival order",
						mode.name, workers, popped[i].seq, popped[i-1].seq)
				}
			}
		}
	}
}

// TestLateRequestShedBeforeBatch pins the shed point: a request whose
// deadline expires while the executor stalls (exec.slow) is answered
// ErrLate from the intake queue and never enters a batch.
func TestLateRequestShedBeforeBatch(t *testing.T) {
	fi := faultinject.New(1)
	fi.Set(faultinject.PointExecSlow, faultinject.Rule{EveryN: 1, HangFor: 150 * time.Millisecond})
	r := dlReal(t, RealConfig{BatchSize: 1, QueueDepth: -1, Faults: fi})
	var batches atomic.Int64
	r.batchHook = func(int) { batches.Add(1) }
	if err := r.Install(dlPlan(1)); err != nil {
		t.Fatal(err)
	}
	in := dlInput(r)

	aErr := make(chan error, 1)
	go func() {
		_, err := r.Infer(context.Background(), Request{TaskID: "t1", Input: in})
		aErr <- err
	}()
	// The slow point is hit at the head of the blocker's batch: once it
	// registers, the executor is mid-stall and the queue is empty.
	waitUntil(t, "exec.slow hit", func() bool { return fi.Hits(faultinject.PointExecSlow) >= 1 })

	// This deadline expires during the stall — well before the executor
	// frees up.
	_, err := r.Infer(context.Background(), Request{
		TaskID: "t1", Input: in, Deadline: time.Now().Add(40 * time.Millisecond),
	})
	if !errors.Is(err, ErrLate) {
		t.Fatalf("stalled-past-deadline request: err = %v, want ErrLate", err)
	}
	if err := <-aErr; err != nil {
		t.Fatalf("blocker request failed: %v", err)
	}
	st := r.Stats()
	if st.ShedLate != 1 || st.DeadlineMisses != 1 || st.DeadlineHits != 0 {
		t.Fatalf("shed accounting: late=%d misses=%d hits=%d, want 1/1/0",
			st.ShedLate, st.DeadlineMisses, st.DeadlineHits)
	}
	if n := batches.Load(); n != 1 {
		t.Fatalf("%d batches ran, want 1: the late request must not enter a batch", n)
	}
}

// TestBoundedQueueShedsLatestDeadline pins the backpressure policy: a
// full queue sheds the waiter that sorts last — an urgent arrival
// displaces the most leisurely waiter, while an arrival less urgent than
// everything queued is shed itself.
func TestBoundedQueueShedsLatestDeadline(t *testing.T) {
	r := dlReal(t, RealConfig{BatchSize: 1, QueueDepth: 2})
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	r.batchHook = func(int) {
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
	}
	if err := r.Install(dlPlan(1)); err != nil {
		t.Fatal(err)
	}
	in := dlInput(r)
	now := time.Now()
	infer := func(dl time.Time) chan error {
		ch := make(chan error, 1)
		go func() {
			_, err := r.Infer(context.Background(), Request{TaskID: "t1", Input: in, Deadline: dl})
			ch <- err
		}()
		return ch
	}
	depth := func(n int) func() bool {
		return func() bool { return r.Stats().QueueDepth == n }
	}

	// The blocker occupies the executor: once its batch signals entry it
	// is parked on the gate and everything after it piles into the queue.
	blocker := infer(time.Time{})
	<-entered

	w1 := infer(now.Add(time.Hour))
	waitUntil(t, "w1 queued", depth(1))
	w2 := infer(now.Add(2 * time.Hour))
	waitUntil(t, "queue full", depth(2))

	// w3 is more urgent than w2: w2 — the latest-deadline waiter, not the
	// newest arrival — is evicted.
	w3 := infer(now.Add(30 * time.Minute))
	if err := <-w2; !errors.Is(err, ErrQueueFull) {
		t.Fatalf("evicted waiter: err = %v, want ErrQueueFull", err)
	}
	// w4 is the least urgent request in sight: it is shed on arrival.
	if _, err := r.Infer(context.Background(), Request{
		TaskID: "t1", Input: in, Deadline: now.Add(3 * time.Hour),
	}); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("least-urgent arrival: err = %v, want ErrQueueFull", err)
	}

	close(gate)
	for name, ch := range map[string]chan error{"blocker": blocker, "w1": w1, "w3": w3} {
		if err := <-ch; err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	st := r.Stats()
	if st.ShedQueueFull != 2 {
		t.Fatalf("ShedQueueFull = %d, want 2", st.ShedQueueFull)
	}
	if st.DeadlineMisses != 2 || st.DeadlineHits != 2 {
		t.Fatalf("deadline accounting: misses=%d hits=%d, want 2/2", st.DeadlineMisses, st.DeadlineHits)
	}
}

// TestCanceledRequestsCounted pins satellite accounting: a caller that
// disconnects mid-batch has its result copy skipped, a canceled waiter
// never enters a batch, and both count under ShedCanceled.
func TestCanceledRequestsCounted(t *testing.T) {
	r := dlReal(t, RealConfig{BatchSize: 1, QueueDepth: -1})
	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var batches atomic.Int64
	r.batchHook = func(int) {
		batches.Add(1)
		select {
		case entered <- struct{}{}:
		default:
		}
		<-gate
	}
	if err := r.Install(dlPlan(1)); err != nil {
		t.Fatal(err)
	}
	in := dlInput(r)

	actx, acancel := context.WithCancel(context.Background())
	aErr := make(chan error, 1)
	go func() {
		_, err := r.Infer(actx, Request{TaskID: "t1", Input: in})
		aErr <- err
	}()
	<-entered // A is mid-batch, parked on the gate

	bctx, bcancel := context.WithCancel(context.Background())
	bErr := make(chan error, 1)
	go func() {
		_, err := r.Infer(bctx, Request{TaskID: "t1", Input: in})
		bErr <- err
	}()
	waitUntil(t, "B queued", func() bool { return r.Stats().QueueDepth == 1 })

	acancel()
	bcancel()
	close(gate)
	for name, ch := range map[string]chan error{"A": aErr, "B": bErr} {
		if err := <-ch; !errors.Is(err, context.Canceled) {
			t.Fatalf("%s: err = %v, want context.Canceled", name, err)
		}
	}
	waitUntil(t, "canceled sheds counted", func() bool { return r.Stats().ShedCanceled == 2 })
	if n := batches.Load(); n != 1 {
		t.Fatalf("%d batches ran, want 1: the canceled waiter must not enter a batch", n)
	}
	if st := r.Stats(); st.Requests != 1 {
		t.Fatalf("Requests = %d, want 1 (only the mid-batch request executed)", st.Requests)
	}
}

// TestEDFBeatsFIFOOnSameSeededBurst is the acceptance pin: on one
// adversarial burst — arrivals in reverse deadline order, served by a
// single executor with a fixed per-batch cost — EDF intake achieves a
// strictly higher deadline-hit-rate than the FIFO/fixed-window baseline
// at the same offered load.
func TestEDFBeatsFIFOOnSameSeededBurst(t *testing.T) {
	const (
		n    = 7
		cost = 40 * time.Millisecond
	)
	run := func(policy SchedPolicy) (hits, misses int64) {
		r := dlReal(t, RealConfig{BatchSize: 1, QueueDepth: -1, Sched: policy})
		start := make(chan struct{})
		var popped atomic.Int64
		r.batchHook = func(int) {
			if popped.Add(1) == 1 {
				<-start // hold the burst window open until arrivals queue up
			}
			time.Sleep(cost) // the injected, policy-independent batch cost
		}
		if err := r.Install(dlPlan(1)); err != nil {
			t.Fatal(err)
		}
		in := dlInput(r)

		errs := make(chan error, n+1)
		infer := func(dl time.Time) {
			go func() {
				_, err := r.Infer(context.Background(), Request{TaskID: "t1", Input: in, Deadline: dl})
				errs <- err
			}()
		}
		// The deadline-free blocker pins the executor so the whole burst
		// queues behind one busy model — the overload moment.
		infer(time.Time{})
		waitUntil(t, "blocker popped", func() bool { return popped.Load() == 1 })

		// Request k can afford to be served k-th (completion ≈ (k+1)·cost
		// counting the blocker) with 1.5·cost of slack. Arrivals run in
		// reverse: the most relaxed request first, the most urgent last.
		base := time.Now()
		for i, k := 0, n; k >= 1; i, k = i+1, k-1 {
			infer(base.Add(time.Duration(k+1)*cost + 3*cost/2))
			waitUntil(t, "burst queued", func() bool { return r.Stats().QueueDepth == i+1 })
		}
		close(start)
		for i := 0; i < n+1; i++ {
			if err := <-errs; err != nil && !errors.Is(err, ErrLate) {
				t.Fatalf("%v: burst request failed: %v", policy, err)
			}
		}
		st := r.Stats()
		return st.DeadlineHits, st.DeadlineMisses
	}

	edfHits, edfMisses := run(SchedEDF)
	fifoHits, fifoMisses := run(SchedFIFO)
	if edfHits+edfMisses != n || fifoHits+fifoMisses != n {
		t.Fatalf("accounting drift: edf %d+%d, fifo %d+%d, want %d carried each",
			edfHits, edfMisses, fifoHits, fifoMisses, n)
	}
	edfRate := float64(edfHits) / float64(n)
	fifoRate := float64(fifoHits) / float64(n)
	t.Logf("deadline-hit-rate: edf %.3f (%d/%d), fifo %.3f (%d/%d)", edfRate, edfHits, n, fifoRate, fifoHits, n)
	if edfRate <= fifoRate {
		t.Fatalf("EDF hit rate %.3f not above FIFO %.3f on the same burst", edfRate, fifoRate)
	}
}
