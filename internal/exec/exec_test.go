package exec_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/edge"
	"offloadnn/internal/exec"
	"offloadnn/internal/radio"
)

// tinyModel keeps the forward passes fast enough for -race.
func tinyModel() dnn.ResNetConfig {
	return dnn.ResNetConfig{
		InChannels: 3, NumClasses: 4, BaseWidth: 4, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 7,
	}
}

func newReal(t *testing.T, cfg exec.RealConfig) *exec.Real {
	t.Helper()
	if cfg.Model.BaseWidth == 0 {
		cfg.Model = tinyModel()
	}
	r, err := exec.NewReal(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r
}

// planFor assembles a Plan whose i-th task is admitted on the i-th path
// (nil path = rejected).
func planFor(epoch uint64, paths map[string][]string) *exec.Plan {
	var tasks []core.Task
	var assigns []core.Assignment
	rates := map[string]float64{}
	blocks := map[string]core.BlockSpec{}
	for id, blockIDs := range paths {
		tasks = append(tasks, core.Task{
			ID: id, Rate: 10, MaxLatency: time.Second, InputBits: 1e5, Priority: 0.5,
		})
		if blockIDs == nil {
			assigns = append(assigns, core.Assignment{TaskID: id})
			continue
		}
		for _, b := range blockIDs {
			blocks[b] = core.BlockSpec{ID: b, ComputeSeconds: 0.01}
		}
		p := &core.PathSpec{ID: "p-" + id, DNN: "d", Blocks: blockIDs, Accuracy: 0.9}
		assigns = append(assigns, core.Assignment{TaskID: id, Path: p, Z: 1, RBs: 2})
		rates[id] = 10
	}
	return &exec.Plan{
		Epoch:  epoch,
		Tasks:  tasks,
		Blocks: blocks,
		Res: core.Resources{
			RBs: 10, ComputeSeconds: 1, MemoryGB: 10, TrainBudgetSeconds: 1000,
			Capacity: radio.FixedRate{Rate: 1e6},
		},
		Deployment: &edge.Deployment{
			Solution:      &core.Solution{Assignments: assigns},
			AdmittedRates: rates,
		},
	}
}

func input(r *exec.Real) []float64 {
	shape := r.InputShape()
	in := make([]float64, shape[0]*shape[1]*shape[2])
	for i := range in {
		in[i] = float64(i%7) / 7
	}
	return in
}

// Two tasks whose paths differ but share a block must alias exactly one
// live instance of it — the runtime form of constraint (1b).
func TestSharedBlockSingleInstance(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	plan := planFor(1, map[string][]string{
		"t1": {"base/s1", "ft/t1/s2"},
		"t2": {"base/s1", "ft/t2/s2"},
	})
	if err := r.Install(plan); err != nil {
		t.Fatal(err)
	}
	refs := r.BlockRefs()
	if refs["base/s1"] != 2 {
		t.Fatalf("shared block refs = %d, want 2 (one per model): %v", refs["base/s1"], refs)
	}
	if refs["ft/t1/s2"] != 1 || refs["ft/t2/s2"] != 1 {
		t.Fatalf("task-specific block refs = %v, want 1 each", refs)
	}
	// stem + base/s1 + two fine-tuned stage-2 blocks + shared classifier.
	if st := r.Stats(); st.Blocks != 5 || st.Models != 2 {
		t.Fatalf("stats = %+v, want 5 blocks / 2 models", st)
	}
	if r.SharedBlock("base/s1") == nil {
		t.Fatal("shared block has no live instance")
	}
	// Both tasks answer through their (distinct) models.
	for _, id := range []string{"t1", "t2"} {
		out, err := r.Infer(context.Background(), exec.Request{TaskID: id, Input: input(r)})
		if err != nil {
			t.Fatalf("infer %s: %v", id, err)
		}
		if len(out.Logits) != 4 || out.Argmax < 0 || out.Argmax > 3 {
			t.Fatalf("infer %s: bad output %+v", id, out)
		}
	}
}

// Tasks assigned the same path share one model entry (and one batch
// queue), so each shared block is referenced once.
func TestSamePathSharesModel(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	plan := planFor(1, map[string][]string{
		"t1": {"base/s1", "base/s2"},
		"t2": {"base/s1", "base/s2"},
	})
	if err := r.Install(plan); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Models != 1 {
		t.Fatalf("models = %d, want 1 (shared path)", st.Models)
	}
	if refs := r.BlockRefs(); refs["base/s1"] != 1 {
		t.Fatalf("shared block refs = %v, want 1 (one model)", refs)
	}
}

// A swap must retain block instances surviving into the next epoch (warm
// swap: same pointer) and release only the ones no path references.
func TestEpochSwapReleasesUnreferencedBlocks(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	if err := r.Install(planFor(1, map[string][]string{
		"t1": {"base/s1", "ft/t1/s2"},
		"t2": {"base/s1", "ft/t2/s2"},
	})); err != nil {
		t.Fatal(err)
	}
	shared := r.SharedBlock("base/s1")
	if err := r.Install(planFor(2, map[string][]string{
		"t1": {"base/s1", "ft/t1/s2"},
		"t2": nil, // rejected this epoch
	})); err != nil {
		t.Fatal(err)
	}
	if got := r.SharedBlock("base/s1"); got != shared {
		t.Fatalf("warm swap rebuilt the shared block (%p != %p)", got, shared)
	}
	if r.SharedBlock("ft/t2/s2") != nil {
		t.Fatal("dropped task's block still live after swap")
	}
	refs := r.BlockRefs()
	if refs["base/s1"] != 1 {
		t.Fatalf("shared block refs after swap = %d, want 1", refs["base/s1"])
	}
	if _, err := r.Infer(context.Background(), exec.Request{TaskID: "t2", Input: input(r)}); !errors.Is(err, exec.ErrNoModel) {
		t.Fatalf("infer for dropped task: %v, want ErrNoModel", err)
	}
	if _, err := r.Infer(context.Background(), exec.Request{TaskID: "t1", Input: input(r)}); err != nil {
		t.Fatalf("surviving task broken by swap: %v", err)
	}
}

// Installing a nil deployment (empty registry) releases every model.
func TestEmptyPlanReleasesEverything(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	if err := r.Install(planFor(1, map[string][]string{"t1": {"base/s1"}})); err != nil {
		t.Fatal(err)
	}
	if err := r.Install(&exec.Plan{Epoch: 2}); err != nil {
		t.Fatal(err)
	}
	if st := r.Stats(); st.Models != 0 || st.Blocks != 0 {
		t.Fatalf("stats after empty plan = %+v, want all zero", st)
	}
}

// Batched execution must be observable and deterministic: concurrent
// requests with one input land in shared batches and every copy of the
// input produces identical logits.
func TestBatchingDeterministic(t *testing.T) {
	r := newReal(t, exec.RealConfig{BatchSize: 4, BatchWindow: 20 * time.Millisecond})
	if err := r.Install(planFor(1, map[string][]string{"t1": {"base/s1", "base/s2"}})); err != nil {
		t.Fatal(err)
	}
	in := input(r)
	const n = 8
	outs := make([]exec.Output, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out, err := r.Infer(context.Background(), exec.Request{TaskID: "t1", Input: in})
			if err != nil {
				t.Errorf("infer %d: %v", i, err)
				return
			}
			outs[i] = out
		}(i)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	maxBatch := 0
	for i, out := range outs {
		if out.BatchSize > maxBatch {
			maxBatch = out.BatchSize
		}
		for j, v := range out.Logits {
			if math.IsNaN(v) {
				t.Fatalf("output %d logit %d is NaN", i, j)
			}
			if v != outs[0].Logits[j] {
				t.Fatalf("same input diverged: out[%d]=%v out[0]=%v", i, out.Logits, outs[0].Logits)
			}
		}
		if out.Latency <= 0 {
			t.Fatalf("output %d has non-positive measured latency", i)
		}
		if out.Simulated {
			t.Fatalf("real backend marked output %d simulated", i)
		}
	}
	if maxBatch < 2 {
		t.Fatalf("8 concurrent requests never batched (max batch %d)", maxBatch)
	}
}

func TestInferErrors(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	if _, err := r.Infer(context.Background(), exec.Request{TaskID: "t1", Input: input(r)}); !errors.Is(err, exec.ErrNoModel) {
		t.Fatalf("infer before install: %v, want ErrNoModel", err)
	}
	if err := r.Install(planFor(1, map[string][]string{"t1": {"base/s1"}})); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Infer(context.Background(), exec.Request{TaskID: "t1", Input: []float64{1, 2, 3}}); !errors.Is(err, exec.ErrBadInput) {
		t.Fatalf("short input: %v, want ErrBadInput", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := r.Infer(ctx, exec.Request{TaskID: "t1", Input: input(r)}); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: %v, want context.Canceled", err)
	}
}

// A block ID names one catalog artifact; a plan placing it at two
// different depths cannot share one instance and must be refused,
// leaving the previous plan installed.
func TestConflictingStageRejected(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	if err := r.Install(planFor(1, map[string][]string{"t1": {"base/s1", "base/s2"}})); err != nil {
		t.Fatal(err)
	}
	bad := planFor(2, map[string][]string{
		"t1": {"base/s1", "base/s2"},
		"t2": {"base/s2", "base/s1"}, // base/s2 at stage 1 and stage 2
	})
	if err := r.Install(bad); err == nil {
		t.Fatal("conflicting-stage plan accepted")
	}
	// The previous plan keeps serving.
	if _, err := r.Infer(context.Background(), exec.Request{TaskID: "t1", Input: input(r)}); err != nil {
		t.Fatalf("previous plan broken by failed install: %v", err)
	}
}

// The pruned-variant suffix must shrink the block it decorates.
func TestPrunedVariantSmaller(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	if err := r.Install(planFor(1, map[string][]string{
		"t1": {"base/s1", "base/s2"},
		"t2": {"base/s1", "base/s2/p80"},
	})); err != nil {
		t.Fatal(err)
	}
	full := r.SharedBlock("base/s2")
	pruned := r.SharedBlock("base/s2/p80")
	if full == nil || pruned == nil {
		t.Fatal("expected both the full and the pruned stage to be live")
	}
	if pruned.ParamCount() >= full.ParamCount() {
		t.Fatalf("pruned block has %d params, full %d — pruning did nothing",
			pruned.ParamCount(), full.ParamCount())
	}
}

func TestSimulatedBackend(t *testing.T) {
	s := exec.NewSimulated(exec.SimulatedConfig{})
	t.Cleanup(s.Close)
	plan := planFor(1, map[string][]string{"t1": {"base/s1", "base/s2"}})
	if err := s.Install(plan); err != nil {
		t.Fatal(err)
	}
	out, err := s.Infer(context.Background(), exec.Request{TaskID: "t1"})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Simulated || out.Logits != nil || out.Argmax != -1 {
		t.Fatalf("simulated output %+v, want simulated / no logits", out)
	}
	// The modeled latency is exactly the plan's cost-model prediction.
	want := edge.PlanCosts(plan.Tasks, plan.Blocks, plan.Res, plan.Deployment, 0, 0)["t1"].Total()
	if out.Latency != want {
		t.Fatalf("simulated latency %v, want planned %v", out.Latency, want)
	}
	if _, err := s.Infer(context.Background(), exec.Request{TaskID: "nope"}); !errors.Is(err, exec.ErrNoModel) {
		t.Fatalf("unknown task: %v, want ErrNoModel", err)
	}
}

// Both backends satisfy the interface.
var (
	_ exec.Backend = (*exec.Real)(nil)
	_ exec.Backend = (*exec.Simulated)(nil)
)
