package exec_test

import (
	"bytes"
	"context"
	"testing"
	"time"

	"offloadnn/internal/dnn"
	"offloadnn/internal/edge"
	"offloadnn/internal/exec"
	"offloadnn/internal/tensor"
)

// A "@i8" path variant must instantiate its own block (keyed by the
// suffixed ID) sharing the base block's master weights, and report its
// precision through Stats.
func TestQuantizedVariantSharesBaseWeights(t *testing.T) {
	r := newReal(t, exec.RealConfig{QuantGate: -1}) // gate off: isolate weight sharing
	plan := planFor(1, map[string][]string{
		"t1": {"base/s1"},
		"t2": {"base/s1@i8"},
	})
	if err := r.Install(plan); err != nil {
		t.Fatal(err)
	}
	f64 := r.SharedBlock("base/s1")
	i8 := r.SharedBlock("base/s1@i8")
	if f64 == nil || i8 == nil {
		t.Fatalf("missing instances: f64=%v i8=%v", f64 != nil, i8 != nil)
	}
	if f64 == i8 {
		t.Fatal("precision variants must be distinct instances")
	}
	if got := i8.Precision(); got != tensor.I8 {
		t.Fatalf("variant precision %v, want i8", got)
	}
	if got := f64.Precision(); got != tensor.F64 {
		t.Fatalf("base precision %v, want f64", got)
	}
	// Same base ID → same seed → identical float64 master weights.
	fp, ip := f64.Params(), i8.Params()
	if len(fp) != len(ip) {
		t.Fatalf("param lists differ: %d vs %d", len(fp), len(ip))
	}
	for i := range fp {
		for j := range fp[i].Data() {
			if fp[i].Data()[j] != ip[i].Data()[j] {
				t.Fatalf("master weights differ at param %d[%d]", i, j)
			}
		}
	}
	st := r.Stats()
	if got := st.PathPrecisions["base/s1@i8"]; got != "i8" {
		t.Fatalf("path precision %q, want i8 (fallbacks=%d)", got, st.QuantFallbacks)
	}
	if got := st.PathPrecisions["base/s1"]; got != "f64" {
		t.Fatalf("base path precision %q, want f64", got)
	}
}

// With the gate enabled the deployed precision and the fallback counter
// must stay consistent: a path reported at i8 was never demoted, one at
// f32 was demoted once, one at f64 twice.
func TestQuantGateConsistentWithFallbackCounter(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	plan := planFor(1, map[string][]string{
		"t1": {"base/s1@i8", "base/s2@i8"},
	})
	if err := r.Install(plan); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	prec := st.PathPrecisions["base/s1@i8|base/s2@i8"]
	wantFallbacks := map[string]int64{"i8": 0, "f32": 1, "f64": 2}[prec]
	if st.QuantFallbacks != wantFallbacks {
		t.Fatalf("precision %q with %d fallbacks, want %d", prec, st.QuantFallbacks, wantFallbacks)
	}
	// The gate's f64 twin instances must not leak into the library: only
	// the deployed path's blocks (plus its stem and classifier) survive.
	for key, refs := range r.BlockRefs() {
		if refs <= 0 {
			t.Fatalf("unreferenced library instance %q survived install", key)
		}
	}
	// Serving still works at whatever precision the gate settled on.
	out, err := r.Infer(context.Background(), exec.Request{TaskID: "t1", Input: input(r)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Argmax < 0 || len(out.Logits) == 0 {
		t.Fatalf("bad output %+v", out)
	}
}

// An i8 path that passes the gate must agree with the f64 path built
// from the same base blocks on the class prediction — the parity the
// gate certifies on its calibration batch, checked here on a real
// offload input.
func TestQuantizedArgmaxParityWithF64(t *testing.T) {
	r := newReal(t, exec.RealConfig{})
	plan := planFor(1, map[string][]string{
		"tq": {"base/s1@i8"},
		"tf": {"base/s1"},
	})
	if err := r.Install(plan); err != nil {
		t.Fatal(err)
	}
	if r.Stats().PathPrecisions["base/s1@i8"] != "i8" {
		t.Skip("gate demoted the quantized path on this weight draw")
	}
	in := input(r)
	qo, err := r.Infer(context.Background(), exec.Request{TaskID: "tq", Input: in})
	if err != nil {
		t.Fatal(err)
	}
	fo, err := r.Infer(context.Background(), exec.Request{TaskID: "tf", Input: in})
	if err != nil {
		t.Fatal(err)
	}
	if qo.Argmax != fo.Argmax {
		t.Fatalf("argmax disagrees: i8=%d f64=%d (logits %v vs %v)", qo.Argmax, fo.Argmax, qo.Logits, fo.Logits)
	}
}

// A stored binary artifact is adopted zero-copy: the installed block IS
// the artifact's block graph (weights bit-identical to what was stored,
// WeightBytes reports the aliased buffer) rather than a seeded rebuild.
func TestArtifactAdoptedZeroCopy(t *testing.T) {
	dir := t.TempDir()
	repo := edge.NewRepository(dir)
	cfg := tinyModel()
	trained, err := dnn.BuildStageBlock(cfg, "base/s1", 1, 0, 12345)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range trained.Params() {
		for i := range p.Data() {
			p.Data()[i] *= 1.5 // distinguishable from any seeded init
		}
	}
	if err := repo.StoreArtifact("base_s1", &dnn.Model{Arch: "resnet18", Blocks: []*dnn.Block{trained}}); err != nil {
		t.Fatal(err)
	}

	r := newReal(t, exec.RealConfig{Model: cfg, Repo: repo})
	plan := planFor(1, map[string][]string{"t1": {"base/s1"}})
	if err := r.Install(plan); err != nil {
		t.Fatal(err)
	}
	got := r.SharedBlock("base/s1")
	if got == nil {
		t.Fatal("block not installed")
	}
	gp, wp := got.Params(), trained.Params()
	for i := range wp {
		for j := range wp[i].Data() {
			if gp[i].Data()[j] != wp[i].Data()[j] {
				t.Fatalf("installed weights differ from artifact at param %d[%d]", i, j)
			}
		}
	}
	var buf bytes.Buffer
	if err := dnn.SaveArtifact(&buf, &dnn.Model{Arch: "resnet18", Blocks: []*dnn.Block{trained}}); err != nil {
		t.Fatal(err)
	}
	st := r.Stats()
	if st.WeightBytes <= 0 {
		t.Fatalf("WeightBytes %d, want > 0 for an adopted artifact", st.WeightBytes)
	}
	// The aliased buffer holds exactly the artifact's weight section.
	if want := int64(trained.ParamCount()) * 8; st.WeightBytes < want {
		t.Fatalf("WeightBytes %d < artifact weight section %d", st.WeightBytes, want)
	}

	// A quantized variant of the same base ID starts from the same stored
	// weights.
	plan2 := planFor(2, map[string][]string{
		"t1": {"base/s1"},
		"t2": {"base/s1@i8"},
	})
	if err := r.Install(plan2); err != nil {
		t.Fatal(err)
	}
	q := r.SharedBlock("base/s1@i8")
	if q == nil {
		t.Fatal("quantized variant not installed")
	}
	qp := q.Params()
	for i := range wp {
		for j := range wp[i].Data() {
			if qp[i].Data()[j] != wp[i].Data()[j] {
				t.Fatalf("quantized variant master weights differ from artifact at param %d[%d]", i, j)
			}
		}
	}
}

// Warm swaps must preserve quantized instances like any other block: the
// same pointer serves consecutive epochs, with no weight copying in
// between.
func TestQuantizedWarmSwapKeepsInstance(t *testing.T) {
	r := newReal(t, exec.RealConfig{QuantGate: -1})
	if err := r.Install(planFor(1, map[string][]string{"t1": {"base/s1@i8"}})); err != nil {
		t.Fatal(err)
	}
	first := r.SharedBlock("base/s1@i8")
	if err := r.Install(planFor(2, map[string][]string{
		"t1": {"base/s1@i8"},
		"t2": {"base/s1@i8", "ft/t2/s2@i8"},
	})); err != nil {
		t.Fatal(err)
	}
	if r.SharedBlock("base/s1@i8") != first {
		t.Fatal("epoch swap rebuilt a retained quantized block")
	}
	// Both paths share the one instance.
	if refs := r.BlockRefs()["base/s1@i8"]; refs != 2 {
		t.Fatalf("refs %d, want 2", refs)
	}
}

func TestQuantizedBatchingDeterministic(t *testing.T) {
	r := newReal(t, exec.RealConfig{BatchSize: 4, BatchWindow: 20 * time.Millisecond, QuantGate: -1})
	if err := r.Install(planFor(1, map[string][]string{"t1": {"base/s1@i8"}})); err != nil {
		t.Fatal(err)
	}
	in := input(r)
	solo, err := r.Infer(context.Background(), exec.Request{TaskID: "t1", Input: in})
	if err != nil {
		t.Fatal(err)
	}
	// A batched run of the same input must produce identical logits for
	// every member (per-image dynamic quantization is batch-invariant).
	type res struct {
		out exec.Output
		err error
	}
	results := make(chan res, 4)
	for i := 0; i < 4; i++ {
		go func() {
			out, err := r.Infer(context.Background(), exec.Request{TaskID: "t1", Input: in})
			results <- res{out, err}
		}()
	}
	for i := 0; i < 4; i++ {
		got := <-results
		if got.err != nil {
			t.Fatal(got.err)
		}
		for j := range solo.Logits {
			if got.out.Logits[j] != solo.Logits[j] {
				t.Fatalf("batched logit %d differs from solo run", j)
			}
		}
	}
}
