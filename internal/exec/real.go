package exec

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"offloadnn/internal/dnn"
	"offloadnn/internal/edge"
	"offloadnn/internal/tensor"
)

// RealConfig parameterizes the tensor-backed execution backend.
type RealConfig struct {
	// Model is the scaled architecture template every catalog block is
	// instantiated from (zero value: dnn.DefaultResNetConfig).
	Model dnn.ResNetConfig
	// Input is the per-request input shape (C, H, W); zero value:
	// (Model.InChannels, 8, 8).
	Input [3]int
	// BatchSize bounds how many admitted requests one ForwardBatch call
	// serves (default 8; 1 disables batching).
	BatchSize int
	// BatchWindow bounds how long a partially filled batch waits for
	// more requests before executing (default 2 ms).
	BatchWindow time.Duration
	// Repo optionally supplies trained weights: a block whose mangled ID
	// ('/' → '_') names a stored one-block model starts from those
	// weights instead of the seeded initialization.
	Repo *edge.Repository
	// Logf, when set, receives weight-loading diagnostics. Nil discards.
	Logf func(string, ...any)
}

// blockInstance is one live shared block: the unit of the refcount that
// operationalizes constraint (1b) — however many deployed paths (and
// tasks, and epochs) reference a block ID, exactly one instance exists.
type blockInstance struct {
	block *dnn.Block
	stage int // 0 stem, 1..4 stages, 5 classifier
	refs  int // models currently aliasing the instance
}

// inferReq is one admitted request waiting in a model's batching queue.
type inferReq struct {
	input []float64
	resp  chan inferResp
}

type inferResp struct {
	logits []float64
	batch  int
	err    error
}

// modelEntry is one assembled path model plus its batching executor. An
// entry is keyed by the path's block-ID signature, so tasks assigned the
// same path share one entry — and their requests batch together.
type modelEntry struct {
	sig   string
	model *dnn.Model
	keys  []string // library keys the model aliases (stem, stages, classifier)
	refs  int      // tasks routed to the entry by the installed plan
	reqs  chan *inferReq
	done  chan struct{} // closed when the entry is released
}

// Real is the tensor-backed execution backend. Install assembles one
// dnn.Model per distinct admitted path, aliasing refcounted shared block
// instances; Infer funnels requests into per-model batching queues that
// execute dnn.Model.ForwardBatch.
type Real struct {
	cfg RealConfig

	// mu guards lib/models/closed across Install/Close/Stats; the Infer
	// hot path reads only the atomic routes pointer.
	mu     sync.Mutex
	lib    map[string]*blockInstance
	models map[string]*modelEntry
	closed bool

	// routes maps task ID → model entry for the installed plan; swapped
	// atomically so Infer never takes mu.
	routes atomic.Pointer[map[string]*modelEntry]

	lastBatch atomic.Int64
	batches   atomic.Int64
	requests  atomic.Int64
	wg        sync.WaitGroup
}

// NewReal constructs a tensor-backed backend; every Infer fails with
// ErrNoModel until the first Install.
func NewReal(cfg RealConfig) (*Real, error) {
	if cfg.Model.BaseWidth == 0 {
		cfg.Model = dnn.DefaultResNetConfig()
	}
	if cfg.Input == [3]int{} {
		cfg.Input = [3]int{cfg.Model.InChannels, 8, 8}
	}
	if cfg.Input[0] != cfg.Model.InChannels {
		return nil, fmt.Errorf("exec: input channels %d != model channels %d", cfg.Input[0], cfg.Model.InChannels)
	}
	if cfg.Input[1] <= 0 || cfg.Input[2] <= 0 {
		return nil, fmt.Errorf("exec: non-positive input shape %v", cfg.Input)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	r := &Real{
		cfg:    cfg,
		lib:    make(map[string]*blockInstance),
		models: make(map[string]*modelEntry),
	}
	empty := map[string]*modelEntry{}
	r.routes.Store(&empty)
	return r, nil
}

// pathSignature keys a model entry: two assignments with the same block
// sequence share one model (and one batch queue).
func pathSignature(blocks []string) string { return strings.Join(blocks, "|") }

// pruneRatioOf parses the structured-pruning convention of catalog block
// IDs: a "/pNN" suffix means NN% of internal channels removed.
func pruneRatioOf(id string) float64 {
	i := strings.LastIndex(id, "/p")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+2:])
	if err != nil || n <= 0 || n >= 100 {
		return 0
	}
	return float64(n) / 100
}

// mangleRepoName maps a catalog block ID onto a repository model name
// (the repository forbids path separators).
func mangleRepoName(id string) string { return strings.ReplaceAll(id, "/", "_") }

// seedOf decorrelates the initialization of distinct block IDs sharing a
// stage (FNV-1a over the ID).
func seedOf(id string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int64(h)
}

// instantiate returns the live instance for a library key, building it
// on first reference. build runs with mu held (instantiation is part of
// the epoch swap, not the request path). The returned instance has its
// refcount untouched — retain/release manage it.
func (r *Real) instantiate(key string, stage int, build func() (*dnn.Block, error)) (*blockInstance, error) {
	if inst, ok := r.lib[key]; ok {
		if inst.stage != stage {
			return nil, fmt.Errorf("exec: block %q used at stage %d and %d", key, inst.stage, stage)
		}
		return inst, nil
	}
	b, err := build()
	if err != nil {
		return nil, err
	}
	inst := &blockInstance{block: b, stage: stage}
	r.lib[key] = inst
	return inst, nil
}

// stageBlock builds one catalog block as a template stage, loading
// stored weights from the repository when available.
func (r *Real) stageBlock(id string, stage int) (*dnn.Block, error) {
	b, err := dnn.BuildStageBlock(r.cfg.Model, id, stage, pruneRatioOf(id), seedOf(id))
	if err != nil {
		return nil, fmt.Errorf("exec: block %q: %w", id, err)
	}
	if r.cfg.Repo != nil {
		if m, err := r.cfg.Repo.Load(mangleRepoName(id)); err == nil && len(m.Blocks) > 0 {
			if err := dnn.CopyWeights(b, m.Blocks[0]); err != nil && r.cfg.Logf != nil {
				r.cfg.Logf("exec: weights for %q ignored: %v", id, err)
			}
		}
	}
	return b, nil
}

// buildEntry assembles the model for a path, resolving (and creating on
// demand) its shared block instances. mu held.
func (r *Real) buildEntry(sig string, blockIDs []string) (*modelEntry, error) {
	keys := make([]string, 0, len(blockIDs)+2)
	stem, err := r.instantiate("stem", 0, func() (*dnn.Block, error) {
		return dnn.BuildStemBlock(r.cfg.Model), nil
	})
	if err != nil {
		return nil, err
	}
	keys = append(keys, "stem")
	stages := make([]*dnn.Block, 0, len(blockIDs))
	for i, id := range blockIDs {
		stage := min(i+1, 4)
		inst, err := r.instantiate(id, stage, func() (*dnn.Block, error) {
			return r.stageBlock(id, stage)
		})
		if err != nil {
			return nil, err
		}
		keys = append(keys, id)
		stages = append(stages, inst.block)
	}
	featureDim := dnn.StageWidth(r.cfg.Model, len(blockIDs))
	clsKey := "classifier/" + strconv.Itoa(featureDim)
	cls, err := r.instantiate(clsKey, 5, func() (*dnn.Block, error) {
		return dnn.BuildClassifierBlock(r.cfg.Model, featureDim), nil
	})
	if err != nil {
		return nil, err
	}
	keys = append(keys, clsKey)
	model, err := dnn.AssemblePathModel("exec/"+sig, stem.block, stages, cls.block)
	if err != nil {
		return nil, err
	}
	e := &modelEntry{
		sig:   sig,
		model: model,
		keys:  keys,
		reqs:  make(chan *inferReq, 4*r.cfg.BatchSize),
		done:  make(chan struct{}),
	}
	return e, nil
}

// Install implements Backend. The swap is warm: model entries (and the
// block instances they alias) that survive from the previous plan are
// retained untouched — their batch queues keep draining across the
// epoch boundary — while entries no surviving assignment references are
// released and their blocks' refcounts decremented (freed at zero).
// On error the previous plan stays installed.
func (r *Real) Install(plan *Plan) error {
	if plan == nil {
		return fmt.Errorf("exec: nil plan")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}

	// Resolve the desired model set, building entries for new paths.
	desired := make(map[string]*modelEntry)
	routes := make(map[string]*modelEntry)
	var created []*modelEntry
	fail := func(err error) error {
		// Creation is side-effect free until commit except for library
		// inserts, which released() prunes below.
		for _, e := range created {
			close(e.done)
		}
		r.pruneUnreferenced(desired)
		return err
	}
	if plan.Deployment != nil && plan.Deployment.Solution != nil {
		for _, a := range plan.Deployment.Solution.Assignments {
			if !a.Admitted() {
				continue
			}
			sig := pathSignature(a.Path.Blocks)
			e, ok := desired[sig]
			if !ok {
				if e, ok = r.models[sig]; !ok {
					var err error
					e, err = r.buildEntry(sig, a.Path.Blocks)
					if err != nil {
						return fail(fmt.Errorf("exec: install epoch %d: %w", plan.Epoch, err))
					}
					created = append(created, e)
				}
				e.refs = 0
				desired[sig] = e
			}
			e.refs++
			routes[a.TaskID] = e
		}
	}

	// Commit: retire entries absent from the desired set, start the
	// executors of the created ones, swap the routing table.
	for sig, e := range r.models {
		if _, keep := desired[sig]; !keep {
			for _, k := range e.keys {
				if inst := r.lib[k]; inst != nil {
					inst.refs--
				}
			}
			close(e.done)
			delete(r.models, sig)
		}
	}
	for _, e := range created {
		for _, k := range e.keys {
			r.lib[k].refs++
		}
		r.models[e.sig] = e
		r.wg.Add(1)
		go r.serveModel(e)
	}
	r.pruneUnreferenced(desired)
	r.routes.Store(&routes)
	if r.cfg.Logf != nil && len(created) > 0 {
		label := ""
		if plan.Node != "" {
			label = " node=" + plan.Node
		}
		r.cfg.Logf("exec: install epoch %d%s: %d models (%d built), %d shared blocks",
			plan.Epoch, label, len(r.models), len(created), len(r.lib))
	}
	return nil
}

// pruneUnreferenced drops zero-ref library instances (including ones
// speculatively built by a failed Install). mu held.
func (r *Real) pruneUnreferenced(map[string]*modelEntry) {
	for k, inst := range r.lib {
		if inst.refs <= 0 {
			delete(r.lib, k)
		}
	}
}

// Infer implements Backend: the request joins its model's batching
// queue and blocks until the batch it lands in executes. The measured
// latency spans enqueue to result — queueing, batching wait and the
// forward pass.
func (r *Real) Infer(ctx context.Context, taskID string, input []float64) (Output, error) {
	e := (*r.routes.Load())[taskID]
	if e == nil {
		return Output{}, fmt.Errorf("%w: %q", ErrNoModel, taskID)
	}
	want := r.cfg.Input[0] * r.cfg.Input[1] * r.cfg.Input[2]
	if len(input) != want {
		return Output{}, fmt.Errorf("%w: got %d values, model wants %d (%dx%dx%d)",
			ErrBadInput, len(input), want, r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2])
	}
	req := &inferReq{input: input, resp: make(chan inferResp, 1)}
	start := time.Now()
	select {
	case e.reqs <- req:
	case <-e.done:
		return Output{}, ErrReleased
	case <-ctx.Done():
		return Output{}, ctx.Err()
	}
	select {
	case resp := <-req.resp:
		if resp.err != nil {
			return Output{}, resp.err
		}
		argmax := 0
		for i, v := range resp.logits {
			if v > resp.logits[argmax] {
				argmax = i
			}
		}
		return Output{
			Logits:    resp.logits,
			Argmax:    argmax,
			BatchSize: resp.batch,
			Latency:   time.Since(start),
		}, nil
	case <-ctx.Done():
		// The batch will still execute; its result for this request is
		// dropped (resp is buffered, the executor never blocks).
		return Output{}, ctx.Err()
	}
}

// serveModel is one entry's batching executor: it collects up to
// BatchSize requests (waiting at most BatchWindow after the first) and
// runs them through one ForwardBatch call.
func (r *Real) serveModel(e *modelEntry) {
	defer r.wg.Done()
	for {
		var first *inferReq
		select {
		case <-e.done:
			r.drain(e)
			return
		case first = <-e.reqs:
		}
		batch := []*inferReq{first}
		if r.cfg.BatchSize > 1 {
			timer := time.NewTimer(r.cfg.BatchWindow)
		fill:
			for len(batch) < r.cfg.BatchSize {
				select {
				case q := <-e.reqs:
					batch = append(batch, q)
				case <-timer.C:
					break fill
				case <-e.done:
					break fill
				}
			}
			timer.Stop()
		}
		r.runBatch(e, batch)
	}
}

// drain answers queued requests of a released entry with ErrReleased.
func (r *Real) drain(e *modelEntry) {
	for {
		select {
		case q := <-e.reqs:
			q.resp <- inferResp{err: ErrReleased}
		default:
			return
		}
	}
}

// runBatch assembles the batch tensor, executes the forward pass and
// distributes the per-request logit rows.
func (r *Real) runBatch(e *modelEntry, batch []*inferReq) {
	n := len(batch)
	c, h, w := r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2]
	per := c * h * w
	x := tensor.Rent(n, c, h, w)
	for i, q := range batch {
		copy(x.Data()[i*per:(i+1)*per], q.input)
	}
	y, err := e.model.ForwardBatch(x)
	tensor.Release(x)
	r.lastBatch.Store(int64(n))
	r.batches.Add(1)
	r.requests.Add(int64(n))
	if err != nil {
		for _, q := range batch {
			q.resp <- inferResp{err: fmt.Errorf("exec: forward: %w", err)}
		}
		return
	}
	outPer := y.Len() / n
	for i, q := range batch {
		logits := make([]float64, outPer)
		copy(logits, y.Data()[i*outPer:(i+1)*outPer])
		q.resp <- inferResp{logits: logits, batch: n}
	}
	tensor.Release(y)
}

// InputShape implements Backend.
func (r *Real) InputShape() []int {
	return []int{r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2]}
}

// Stats implements Backend.
func (r *Real) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	depth := 0
	for _, e := range r.models {
		depth += len(e.reqs)
	}
	return Stats{
		Models:        len(r.models),
		Blocks:        len(r.lib),
		QueueDepth:    depth,
		LastBatchSize: int(r.lastBatch.Load()),
		Batches:       r.batches.Load(),
		Requests:      r.requests.Load(),
	}
}

// BlockRefs snapshots the shared-block refcounts (library key → number
// of live models aliasing the instance) — the assertion surface for the
// instantiated-exactly-once property.
func (r *Real) BlockRefs() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.lib))
	for k, inst := range r.lib {
		out[k] = inst.refs
	}
	return out
}

// SharedBlock returns the live instance for a library key (nil when the
// block is not deployed) — lets tests assert pointer identity across
// tasks and epochs.
func (r *Real) SharedBlock(key string) *dnn.Block {
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst, ok := r.lib[key]; ok {
		return inst.block
	}
	return nil
}

// Close implements Backend: releases every model and waits for the
// batching executors to exit.
func (r *Real) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	for sig, e := range r.models {
		close(e.done)
		delete(r.models, sig)
	}
	r.lib = map[string]*blockInstance{}
	empty := map[string]*modelEntry{}
	r.routes.Store(&empty)
	r.mu.Unlock()
	r.wg.Wait()
}
