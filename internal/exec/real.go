package exec

import (
	"container/heap"
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"offloadnn/internal/dnn"
	"offloadnn/internal/edge"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/tensor"
)

// SchedPolicy selects how a model's batching queue orders intake.
type SchedPolicy int

const (
	// SchedEDF (the default) pops waiters earliest-deadline-first,
	// sheds requests that are already past deadline before they enter a
	// batch, and shrinks the batch window under deadline pressure.
	// Requests without deadlines sort after every deadline-carrying
	// waiter, in arrival order — with no deadlines set anywhere, EDF
	// intake is bit-identical to FIFO.
	SchedEDF SchedPolicy = iota
	// SchedFIFO is the pre-deadline baseline: strict arrival order, a
	// fixed BatchWindow, and no lateness shedding. Kept selectable so the
	// deadline-hit-rate win of EDF is measurable against it on the same
	// offered load.
	SchedFIFO
)

// String implements flag.Value-style printing.
func (p SchedPolicy) String() string {
	if p == SchedFIFO {
		return "fifo"
	}
	return "edf"
}

// ParseSched parses a scheduling policy name ("edf" or "fifo").
func ParseSched(s string) (SchedPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "edf":
		return SchedEDF, nil
	case "fifo":
		return SchedFIFO, nil
	}
	return SchedEDF, fmt.Errorf("exec: unknown sched policy %q (want edf or fifo)", s)
}

// RealConfig parameterizes the tensor-backed execution backend.
type RealConfig struct {
	// Model is the scaled architecture template every catalog block is
	// instantiated from (zero value: dnn.DefaultResNetConfig).
	Model dnn.ResNetConfig
	// Input is the per-request input shape (C, H, W); zero value:
	// (Model.InChannels, 8, 8).
	Input [3]int
	// BatchSize bounds how many admitted requests one ForwardBatch call
	// serves (default 8; 1 disables batching).
	BatchSize int
	// BatchWindow bounds how long a partially filled batch waits for
	// more requests before executing (default 2 ms).
	BatchWindow time.Duration
	// Repo optionally supplies trained weights: a block whose mangled ID
	// ('/' → '_') names a stored one-block model starts from those
	// weights instead of the seeded initialization. Binary weight
	// artifacts (.dnnw) are preferred and adopted zero-copy; the gob
	// store is the fallback.
	Repo *edge.Repository
	// QuantGate bounds the top-1 disagreement (fraction of the gate
	// batch) a reduced-precision path may show against its float64 twin
	// at install time before being demoted one precision tier (default
	// 0.02; negative disables the gate).
	QuantGate float64
	// CalibBatch is the batch size of the deterministic calibration/gate
	// input (default 8).
	CalibBatch int
	// Sched selects the batching queue's intake order: SchedEDF (the
	// zero value) for deadline-aware serving, SchedFIFO for the
	// fixed-window baseline.
	Sched SchedPolicy
	// QueueDepth bounds how many requests may wait in one model's intake
	// queue before backpressure sheds the latest-deadline waiter
	// (ErrQueueFull). Default 16×BatchSize; negative disables the bound.
	QueueDepth int
	// Faults optionally arms the exec.slow / exec.hang chaos points in
	// the batch executors. Nil (the usual case) costs a nil check.
	Faults *faultinject.Injector
	// Logf, when set, receives weight-loading diagnostics. Nil discards.
	Logf func(string, ...any)
}

// calibSeed fixes the calibration/gate batch across processes so gate
// verdicts are reproducible for a given catalog and weight set.
const calibSeed = 20240131

// blockInstance is one live shared block: the unit of the refcount that
// operationalizes constraint (1b) — however many deployed paths (and
// tasks, and epochs) reference a block ID, exactly one instance exists.
type blockInstance struct {
	block *dnn.Block
	stage int // 0 stem, 1..4 stages, 5 classifier
	refs  int // models currently aliasing the instance
	// weightBytes is the resident size of the artifact weight buffer the
	// block aliases zero-copy; 0 for seeded or gob-copied weights.
	weightBytes int64
}

// inferReq is one admitted request waiting in a model's batching queue.
type inferReq struct {
	ctx      context.Context
	input    []float64
	deadline int64 // unix nanos; 0 = no deadline (sorts last under EDF)
	seq      uint64
	resp     chan inferResp
}

type inferResp struct {
	logits []float64
	batch  int
	err    error
}

// lessReq is the intake order: under EDF, earlier deadlines first with
// zero (no deadline) after every deadline-carrying request; ties — and
// all of FIFO — break on the per-entry arrival sequence. With no
// deadlines set, EDF order therefore degenerates to exact arrival order.
func lessReq(a, b *inferReq, edf bool) bool {
	if edf && a.deadline != b.deadline {
		if a.deadline == 0 {
			return false
		}
		if b.deadline == 0 {
			return true
		}
		return a.deadline < b.deadline
	}
	return a.seq < b.seq
}

// reqQueue is a model entry's intake queue: a min-heap under lessReq.
type reqQueue struct {
	edf   bool
	items []*inferReq
}

func (q *reqQueue) Len() int           { return len(q.items) }
func (q *reqQueue) Less(i, j int) bool { return lessReq(q.items[i], q.items[j], q.edf) }
func (q *reqQueue) Swap(i, j int)      { q.items[i], q.items[j] = q.items[j], q.items[i] }
func (q *reqQueue) Push(x any)         { q.items = append(q.items, x.(*inferReq)) }
func (q *reqQueue) Pop() any {
	n := len(q.items)
	it := q.items[n-1]
	q.items[n-1] = nil
	q.items = q.items[:n-1]
	return it
}

// modelEntry is one assembled path model plus its batching executor. An
// entry is keyed by the path's block-ID signature, so tasks assigned the
// same path share one entry — and their requests batch together.
type modelEntry struct {
	sig   string
	model *dnn.Model
	keys  []string         // library keys the model aliases (stem, stages, classifier)
	prec  tensor.Precision // kernel precision the path runs at (post-gate)
	refs  int              // tasks routed to the entry by the installed plan
	done  chan struct{}    // closed when the entry is released

	// Segment geometry: whole paths are the degenerate segment [0, n).
	// inShape is the per-request input (a frame for from==0, a boundary
	// activation otherwise); outShape is the boundary activation a
	// non-tail segment emits; emitsLogits marks entries that end in the
	// classifier.
	from        int
	inShape     [3]int
	outShape    [3]int
	emitsLogits bool

	// qmu guards the intake heap; avail carries a capacity-1 wakeup
	// token — every push signals it (non-blocking), and the executor
	// re-polls the heap after every wake, so no enqueue is ever missed.
	qmu     sync.Mutex
	queue   reqQueue
	qclosed bool
	seq     uint64
	avail   chan struct{}

	// execEWMA tracks the entry's smoothed ForwardBatch duration (ns) —
	// the execution-cost estimate the adaptive batch window subtracts
	// from the tightest pending slack.
	execEWMA atomic.Int64
}

// Real is the tensor-backed execution backend. Install assembles one
// dnn.Model per distinct admitted path, aliasing refcounted shared block
// instances; Infer funnels requests into per-model batching queues that
// execute dnn.Model.ForwardBatch.
type Real struct {
	cfg RealConfig

	// mu guards lib/models/closed across Install/Close/Stats; the Infer
	// hot path reads only the atomic routes pointer.
	mu     sync.Mutex
	lib    map[string]*blockInstance
	models map[string]*modelEntry
	closed bool

	// routes maps task ID → model entry for the installed plan; swapped
	// atomically so Infer never takes mu.
	routes atomic.Pointer[map[string]*modelEntry]

	lastBatch      atomic.Int64
	batches        atomic.Int64
	requests       atomic.Int64
	quantFallbacks atomic.Int64
	shedLate       atomic.Int64
	shedQueueFull  atomic.Int64
	shedCanceled   atomic.Int64
	deadlineHits   atomic.Int64
	deadlineMisses atomic.Int64
	lastWindow     atomic.Int64
	wg             sync.WaitGroup

	// closeCtx is canceled by Close; it bounds the exec.hang chaos point
	// so a wedged executor unwedges at shutdown.
	closeCtx    context.Context
	closeCancel context.CancelFunc

	// batchHook, when set by white-box tests before Install, runs at the
	// head of every batch execution with the batch size — the hook for
	// deterministic batch-cost injection and executor gating.
	batchHook func(n int)
}

// NewReal constructs a tensor-backed backend; every Infer fails with
// ErrNoModel until the first Install.
func NewReal(cfg RealConfig) (*Real, error) {
	if cfg.Model.BaseWidth == 0 {
		cfg.Model = dnn.DefaultResNetConfig()
	}
	if cfg.Input == [3]int{} {
		cfg.Input = [3]int{cfg.Model.InChannels, 8, 8}
	}
	if cfg.Input[0] != cfg.Model.InChannels {
		return nil, fmt.Errorf("exec: input channels %d != model channels %d", cfg.Input[0], cfg.Model.InChannels)
	}
	if cfg.Input[1] <= 0 || cfg.Input[2] <= 0 {
		return nil, fmt.Errorf("exec: non-positive input shape %v", cfg.Input)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.QuantGate == 0 {
		cfg.QuantGate = 0.02
	}
	if cfg.CalibBatch <= 0 {
		cfg.CalibBatch = 8
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 16 * cfg.BatchSize
	}
	r := &Real{
		cfg:    cfg,
		lib:    make(map[string]*blockInstance),
		models: make(map[string]*modelEntry),
	}
	r.closeCtx, r.closeCancel = context.WithCancel(context.Background())
	empty := map[string]*modelEntry{}
	r.routes.Store(&empty)
	return r, nil
}

// pathSignature keys a model entry: two assignments with the same block
// sequence share one model (and one batch queue).
func pathSignature(blocks []string) string { return strings.Join(blocks, "|") }

// segmentSignature keys a segment entry. The range is part of the key —
// the same block slice at a different path offset occupies different
// stages — but a full-range segment collapses onto the whole-path
// signature, so a split plan and a whole-path assignment of the same
// path share one entry.
func segmentSignature(blocks []string, from, to int) string {
	if from == 0 && to == len(blocks) {
		return pathSignature(blocks)
	}
	return pathSignature(blocks[from:to]) + "#" + strconv.Itoa(from) + "-" + strconv.Itoa(to)
}

// routeKey addresses an installed range in the routing table: plain
// task ID for raw-frame intake (whole paths and head segments),
// suffixed with the resume stage for mid-path segments.
func routeKey(taskID string, from int) string {
	if from == 0 {
		return taskID
	}
	return taskID + "#" + strconv.Itoa(from)
}

// pruneRatioOf parses the structured-pruning convention of catalog block
// IDs: a "/pNN" suffix means NN% of internal channels removed.
func pruneRatioOf(id string) float64 {
	i := strings.LastIndex(id, "/p")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+2:])
	if err != nil || n <= 0 || n >= 100 {
		return 0
	}
	return float64(n) / 100
}

// mangleRepoName maps a catalog block ID onto a repository model name
// (the repository forbids path separators).
func mangleRepoName(id string) string { return strings.ReplaceAll(id, "/", "_") }

// seedOf decorrelates the initialization of distinct block IDs sharing a
// stage (FNV-1a over the ID).
func seedOf(id string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int64(h)
}

// instantiate returns the live instance for a library key, building it
// on first reference. build runs with mu held (instantiation is part of
// the epoch swap, not the request path). The returned instance has its
// refcount untouched — retain/release manage it.
func (r *Real) instantiate(key string, stage int, build func() (*dnn.Block, int64, error)) (*blockInstance, error) {
	if inst, ok := r.lib[key]; ok {
		if inst.stage != stage {
			return nil, fmt.Errorf("exec: block %q used at stage %d and %d", key, inst.stage, stage)
		}
		return inst, nil
	}
	b, wb, err := build()
	if err != nil {
		return nil, err
	}
	inst := &blockInstance{block: b, stage: stage, weightBytes: wb}
	r.lib[key] = inst
	return inst, nil
}

// stageBlock builds one catalog block as a template stage. The precision
// suffix ("@f32"/"@i8") is stripped before resolving seed, prune ratio
// and repository weights, so precision variants of a block share the base
// block's trained weights; the precision is then instantiated on the
// finished block. A binary weight artifact, when stored for the base ID,
// is adopted wholesale — its tensors alias one decoded buffer, so the
// install copies no weights (the returned byte count is that buffer's
// resident size); the gob store is the copying fallback.
func (r *Real) stageBlock(id string, stage int) (*dnn.Block, int64, error) {
	base, prec, err := dnn.BlockIDPrecision(id)
	if err != nil {
		return nil, 0, fmt.Errorf("exec: block %q: %w", id, err)
	}
	b, err := dnn.BuildStageBlock(r.cfg.Model, id, stage, pruneRatioOf(base), seedOf(base))
	if err != nil {
		return nil, 0, fmt.Errorf("exec: block %q: %w", id, err)
	}
	var artBytes int64
	if r.cfg.Repo != nil {
		name := mangleRepoName(base)
		if m, bytes, aerr := r.cfg.Repo.LoadArtifact(name); aerr == nil &&
			len(m.Blocks) > 0 && dnn.ParamsCompatible(b, m.Blocks[0]) {
			stored := m.Blocks[0]
			stored.ID, stored.Stage = b.ID, b.Stage
			stored.Variant, stored.PruneRatio, stored.Frozen = b.Variant, b.PruneRatio, b.Frozen
			b, artBytes = stored, bytes
		} else if m, lerr := r.cfg.Repo.Load(name); lerr == nil && len(m.Blocks) > 0 {
			if err := dnn.CopyWeights(b, m.Blocks[0]); err != nil && r.cfg.Logf != nil {
				r.cfg.Logf("exec: weights for %q ignored: %v", id, err)
			}
		}
	}
	if prec != tensor.F64 {
		if err := b.SetPrecision(prec); err != nil {
			return nil, 0, fmt.Errorf("exec: block %q: %w", id, err)
		}
	}
	return b, artBytes, nil
}

// pathPrecisionOf is the precision variant a path's block IDs select
// (catalog paths are precision-uniform, so the first suffixed block
// decides).
func pathPrecisionOf(blockIDs []string) tensor.Precision {
	for _, id := range blockIDs {
		if _, p, err := dnn.BlockIDPrecision(id); err == nil && p != tensor.F64 {
			return p
		}
	}
	return tensor.F64
}

// buildEntry assembles the model for a path, resolving (and creating on
// demand) its shared block instances. The path's precision variant also
// keys the stem and classifier instances ("stem@i8", "classifier/32@i8"),
// so the whole path runs at the chosen precision while the float64 stem
// and classifier stay shareable by f64 paths. mu held.
func (r *Real) buildEntry(sig string, blockIDs []string) (*modelEntry, error) {
	pathPrec := pathPrecisionOf(blockIDs)
	suffix := ""
	if pathPrec != tensor.F64 {
		suffix = "@" + pathPrec.String()
	}
	narrow := func(b *dnn.Block) (*dnn.Block, int64, error) {
		if pathPrec != tensor.F64 {
			if err := b.SetPrecision(pathPrec); err != nil {
				return nil, 0, err
			}
		}
		return b, 0, nil
	}
	keys := make([]string, 0, len(blockIDs)+2)
	stemKey := "stem" + suffix
	stem, err := r.instantiate(stemKey, 0, func() (*dnn.Block, int64, error) {
		return narrow(dnn.BuildStemBlock(r.cfg.Model))
	})
	if err != nil {
		return nil, err
	}
	keys = append(keys, stemKey)
	stages := make([]*dnn.Block, 0, len(blockIDs))
	for i, id := range blockIDs {
		stage := min(i+1, 4)
		inst, err := r.instantiate(id, stage, func() (*dnn.Block, int64, error) {
			return r.stageBlock(id, stage)
		})
		if err != nil {
			return nil, err
		}
		keys = append(keys, id)
		stages = append(stages, inst.block)
	}
	featureDim := dnn.StageWidth(r.cfg.Model, len(blockIDs))
	clsKey := "classifier/" + strconv.Itoa(featureDim) + suffix
	cls, err := r.instantiate(clsKey, 5, func() (*dnn.Block, int64, error) {
		return narrow(dnn.BuildClassifierBlock(r.cfg.Model, featureDim))
	})
	if err != nil {
		return nil, err
	}
	keys = append(keys, clsKey)
	model, err := dnn.AssemblePathModel("exec/"+sig, stem.block, stages, cls.block)
	if err != nil {
		return nil, err
	}
	e := &modelEntry{
		sig:         sig,
		model:       model,
		keys:        keys,
		prec:        pathPrec,
		inShape:     r.cfg.Input,
		emitsLogits: true,
		queue:       reqQueue{edf: r.cfg.Sched == SchedEDF},
		avail:       make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	return e, nil
}

// buildSegmentEntry assembles the model for one stage range of a split
// path. The stem joins only the head segment and the classifier only
// the tail; mid-path segments consume and emit boundary activations
// whose shapes follow analytically from the template geometry. A
// reduced-precision segment is gated against the FULL path: the
// remaining stages are instantiated as ordinary (initially unreferenced)
// library blocks, the complete model is calibrated and accuracy-checked
// exactly as a whole-path install would, and pruneUnreferenced drops the
// temporaries afterward — so every node of a split quantized path
// derives bit-identical activation scales and demotion verdicts from the
// same deterministic calibration batch. mu held.
func (r *Real) buildSegmentEntry(seg Segment) (*modelEntry, error) {
	n := len(seg.Blocks)
	if seg.From < 0 || seg.To > n || seg.From >= seg.To {
		return nil, fmt.Errorf("exec: segment %s range [%d,%d) outside path of %d blocks",
			seg.TaskID, seg.From, seg.To, n)
	}
	sig := segmentSignature(seg.Blocks, seg.From, seg.To)
	if seg.From == 0 && seg.To == n {
		e, err := r.buildEntry(sig, seg.Blocks)
		if err != nil {
			return nil, err
		}
		if err := r.gateEntry(e); err != nil {
			return nil, err
		}
		return e, nil
	}
	pathPrec := pathPrecisionOf(seg.Blocks)
	suffix := ""
	if pathPrec != tensor.F64 {
		suffix = "@" + pathPrec.String()
	}
	narrow := func(b *dnn.Block) (*dnn.Block, int64, error) {
		if pathPrec != tensor.F64 {
			if err := b.SetPrecision(pathPrec); err != nil {
				return nil, 0, err
			}
		}
		return b, 0, nil
	}
	// Resolve every block of the path; only [From, To) joins the segment
	// model (and its key list), but the full set lets the gate calibrate
	// the complete path below.
	var keys []string
	var stem *dnn.Block
	if seg.From == 0 {
		stemKey := "stem" + suffix
		inst, err := r.instantiate(stemKey, 0, func() (*dnn.Block, int64, error) {
			return narrow(dnn.BuildStemBlock(r.cfg.Model))
		})
		if err != nil {
			return nil, err
		}
		keys = append(keys, stemKey)
		stem = inst.block
	}
	allStages := make([]*dnn.Block, 0, n)
	for i, id := range seg.Blocks {
		stage := min(i+1, 4)
		inst, err := r.instantiate(id, stage, func() (*dnn.Block, int64, error) {
			return r.stageBlock(id, stage)
		})
		if err != nil {
			return nil, err
		}
		if i >= seg.From && i < seg.To {
			keys = append(keys, id)
		}
		allStages = append(allStages, inst.block)
	}
	var cls *dnn.Block
	featureDim := dnn.StageWidth(r.cfg.Model, n)
	clsKey := "classifier/" + strconv.Itoa(featureDim) + suffix
	if seg.To == n {
		inst, err := r.instantiate(clsKey, 5, func() (*dnn.Block, int64, error) {
			return narrow(dnn.BuildClassifierBlock(r.cfg.Model, featureDim))
		})
		if err != nil {
			return nil, err
		}
		keys = append(keys, clsKey)
		cls = inst.block
	}
	if pathPrec != tensor.F64 && r.cfg.QuantGate >= 0 {
		// Gate the full path, not the slice: calibration scales are
		// per-block state, and deriving them from the whole path on every
		// node is what keeps a split quantized path bit-identical to the
		// unsplit one. The temporary full-path entry reuses gateEntry's
		// twin-compare/demote loop; its precision outcome carries over.
		fullStem := stem
		if fullStem == nil {
			inst, err := r.instantiate("stem"+suffix, 0, func() (*dnn.Block, int64, error) {
				return narrow(dnn.BuildStemBlock(r.cfg.Model))
			})
			if err != nil {
				return nil, err
			}
			fullStem = inst.block
		}
		fullCls := cls
		if fullCls == nil {
			inst, err := r.instantiate(clsKey, 5, func() (*dnn.Block, int64, error) {
				return narrow(dnn.BuildClassifierBlock(r.cfg.Model, featureDim))
			})
			if err != nil {
				return nil, err
			}
			fullCls = inst.block
		}
		fullModel, err := dnn.AssemblePathModel("gate/"+sig, fullStem, allStages, fullCls)
		if err != nil {
			return nil, err
		}
		tmp := &modelEntry{sig: pathSignature(seg.Blocks), model: fullModel, prec: pathPrec}
		if err := r.gateEntry(tmp); err != nil {
			return nil, err
		}
		pathPrec = tmp.prec
	}
	model, err := dnn.AssembleSegmentModel("exec/"+sig, stem, allStages[seg.From:seg.To], cls)
	if err != nil {
		return nil, err
	}
	e := &modelEntry{
		sig:         sig,
		model:       model,
		keys:        keys,
		prec:        pathPrec,
		from:        seg.From,
		inShape:     dnn.SegmentBoundaryShape(r.cfg.Model, r.cfg.Input, seg.From),
		emitsLogits: seg.To == n,
		queue:       reqQueue{edf: r.cfg.Sched == SchedEDF},
		avail:       make(chan struct{}, 1),
		done:        make(chan struct{}),
	}
	if seg.From == 0 {
		e.inShape = r.cfg.Input
	}
	if !e.emitsLogits {
		e.outShape = dnn.SegmentBoundaryShape(r.cfg.Model, r.cfg.Input, seg.To)
	}
	return e, nil
}

// twinModel assembles the float64 twin of a path — the same base block
// IDs resolve to the same seeds and stored weights, so the twin is the
// accuracy reference the gate compares against. Twin instances go
// through the regular library (a base block also deployed at f64 is
// shared, not duplicated) and enter it unreferenced; pruneUnreferenced
// at the end of Install drops the ones no deployed path retains. mu held.
func (r *Real) twinModel(blockIDs []string) (*dnn.Model, error) {
	stem, err := r.instantiate("stem", 0, func() (*dnn.Block, int64, error) {
		return dnn.BuildStemBlock(r.cfg.Model), 0, nil
	})
	if err != nil {
		return nil, err
	}
	stages := make([]*dnn.Block, 0, len(blockIDs))
	for i, id := range blockIDs {
		base, _, err := dnn.BlockIDPrecision(id)
		if err != nil {
			return nil, err
		}
		stage := min(i+1, 4)
		inst, err := r.instantiate(base, stage, func() (*dnn.Block, int64, error) {
			return r.stageBlock(base, stage)
		})
		if err != nil {
			return nil, err
		}
		stages = append(stages, inst.block)
	}
	featureDim := dnn.StageWidth(r.cfg.Model, len(blockIDs))
	cls, err := r.instantiate("classifier/"+strconv.Itoa(featureDim), 5, func() (*dnn.Block, int64, error) {
		return dnn.BuildClassifierBlock(r.cfg.Model, featureDim), 0, nil
	})
	if err != nil {
		return nil, err
	}
	return dnn.AssemblePathModel("twin", stem.block, stages, cls.block)
}

// gateEntry enforces the calibration accuracy gate on a newly built
// reduced-precision entry: the model's activation scales are calibrated
// on a deterministic batch, then its top-1 agreement with the float64
// twin is measured on the same batch. Disagreement above QuantGate
// demotes every block of the path one precision tier (i8→f32→f64) and
// rechecks; float64 always passes. Demotion is per-block state, so other
// installed paths sharing a demoted block run the safer kernels too.
// mu held.
func (r *Real) gateEntry(e *modelEntry) error {
	if e.prec == tensor.F64 || r.cfg.QuantGate < 0 {
		return nil
	}
	twin, err := r.twinModel(e.sigBlocks())
	if err != nil {
		return fmt.Errorf("gate %s: %w", e.sig, err)
	}
	x := dnn.CalibrationBatch(r.cfg.CalibBatch, r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2], calibSeed)
	if err := dnn.Calibrate(e.model, x); err != nil {
		return fmt.Errorf("gate %s: calibrate: %w", e.sig, err)
	}
	for {
		delta, err := dnn.Top1Delta(e.model, twin, x)
		if err != nil {
			return fmt.Errorf("gate %s: %w", e.sig, err)
		}
		if delta <= r.cfg.QuantGate {
			if r.cfg.Logf != nil {
				r.cfg.Logf("exec: gate: path %s passes at %s (top-1 delta %.3f)", e.sig, e.prec, delta)
			}
			return nil
		}
		next := tensor.F32
		if e.prec == tensor.F32 {
			next = tensor.F64
		}
		if r.cfg.Logf != nil {
			r.cfg.Logf("exec: gate: path %s top-1 delta %.3f > %.3f at %s, falling back to %s",
				e.sig, delta, r.cfg.QuantGate, e.prec, next)
		}
		if err := e.model.SetPrecision(next); err != nil {
			return fmt.Errorf("gate %s: demote: %w", e.sig, err)
		}
		e.prec = next
		r.quantFallbacks.Add(1)
		if next == tensor.F64 {
			return nil
		}
	}
}

// sigBlocks recovers the path's block IDs from its signature.
func (e *modelEntry) sigBlocks() []string { return strings.Split(e.sig, "|") }

// Install implements Backend. The swap is warm: model entries (and the
// block instances they alias) that survive from the previous plan are
// retained untouched — their batch queues keep draining across the
// epoch boundary — while entries no surviving assignment references are
// released and their blocks' refcounts decremented (freed at zero).
// On error the previous plan stays installed.
func (r *Real) Install(plan *Plan) error {
	if plan == nil {
		return fmt.Errorf("exec: nil plan")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}

	// Resolve the desired model set, building entries for new paths.
	desired := make(map[string]*modelEntry)
	routes := make(map[string]*modelEntry)
	var created []*modelEntry
	fail := func(err error) error {
		// Creation is side-effect free until commit except for library
		// inserts, which released() prunes below.
		for _, e := range created {
			close(e.done)
		}
		r.pruneUnreferenced(desired)
		return err
	}
	if plan.Deployment != nil && plan.Deployment.Solution != nil {
		for _, a := range plan.Deployment.Solution.Assignments {
			if !a.Admitted() {
				continue
			}
			sig := pathSignature(a.Path.Blocks)
			e, ok := desired[sig]
			if !ok {
				if e, ok = r.models[sig]; !ok {
					var err error
					e, err = r.buildEntry(sig, a.Path.Blocks)
					if err != nil {
						return fail(fmt.Errorf("exec: install epoch %d: %w", plan.Epoch, err))
					}
					created = append(created, e)
					if err := r.gateEntry(e); err != nil {
						return fail(fmt.Errorf("exec: install epoch %d: %w", plan.Epoch, err))
					}
				}
				e.refs = 0
				desired[sig] = e
			}
			e.refs++
			routes[a.TaskID] = e
		}
	}
	for _, seg := range plan.Segments {
		if n := len(seg.Blocks); seg.From < 0 || seg.To > n || seg.From >= seg.To {
			return fail(fmt.Errorf("exec: install epoch %d: segment %s range [%d,%d) outside path of %d blocks",
				plan.Epoch, seg.TaskID, seg.From, seg.To, n))
		}
		sig := segmentSignature(seg.Blocks, seg.From, seg.To)
		e, ok := desired[sig]
		if !ok {
			if e, ok = r.models[sig]; !ok {
				var err error
				e, err = r.buildSegmentEntry(seg)
				if err != nil {
					return fail(fmt.Errorf("exec: install epoch %d: %w", plan.Epoch, err))
				}
				created = append(created, e)
			}
			e.refs = 0
			desired[sig] = e
		}
		e.refs++
		routes[routeKey(seg.TaskID, seg.From)] = e
	}

	// Commit: retire entries absent from the desired set, start the
	// executors of the created ones, swap the routing table.
	for sig, e := range r.models {
		if _, keep := desired[sig]; !keep {
			for _, k := range e.keys {
				if inst := r.lib[k]; inst != nil {
					inst.refs--
				}
			}
			close(e.done)
			delete(r.models, sig)
		}
	}
	for _, e := range created {
		for _, k := range e.keys {
			r.lib[k].refs++
		}
		r.models[e.sig] = e
		r.wg.Add(1)
		go r.serveModel(e)
	}
	r.pruneUnreferenced(desired)
	r.routes.Store(&routes)
	if r.cfg.Logf != nil && len(created) > 0 {
		label := ""
		if plan.Node != "" {
			label = " node=" + plan.Node
		}
		r.cfg.Logf("exec: install epoch %d%s: %d models (%d built), %d shared blocks",
			plan.Epoch, label, len(r.models), len(created), len(r.lib))
	}
	return nil
}

// pruneUnreferenced drops zero-ref library instances (including ones
// speculatively built by a failed Install). mu held.
func (r *Real) pruneUnreferenced(map[string]*modelEntry) {
	for k, inst := range r.lib {
		if inst.refs <= 0 {
			delete(r.lib, k)
		}
	}
}

// Infer implements Backend: the request joins its model's batching
// queue in EDF (or FIFO) order and blocks until the batch it lands in
// executes. Requests already past their deadline are shed before they
// touch the queue (ErrLate); a full queue sheds its latest-deadline
// waiter (ErrQueueFull). The measured latency spans enqueue to result —
// queueing, batching wait and the forward pass.
func (r *Real) Infer(ctx context.Context, req Request) (Output, error) {
	e := (*r.routes.Load())[routeKey(req.TaskID, req.FromStage)]
	if e == nil {
		return Output{}, fmt.Errorf("%w: %q (stage %d)", ErrNoModel, req.TaskID, req.FromStage)
	}
	want := e.inShape[0] * e.inShape[1] * e.inShape[2]
	if len(req.Input) != want {
		return Output{}, fmt.Errorf("%w: got %d values, model wants %d (%dx%dx%d)",
			ErrBadInput, len(req.Input), want, e.inShape[0], e.inShape[1], e.inShape[2])
	}
	var dl int64
	if !req.Deadline.IsZero() {
		dl = req.Deadline.UnixNano()
	}
	if r.cfg.Sched == SchedEDF && dl != 0 && time.Now().UnixNano() >= dl {
		r.shedLate.Add(1)
		r.deadlineMisses.Add(1)
		return Output{}, ErrLate
	}
	q := &inferReq{ctx: ctx, input: req.Input, deadline: dl, resp: make(chan inferResp, 1)}
	start := time.Now()
	if err := r.enqueue(e, q); err != nil {
		return Output{}, err
	}
	select {
	case resp := <-q.resp:
		if resp.err != nil {
			return Output{}, resp.err
		}
		if !e.emitsLogits {
			return Output{
				Activation: resp.logits,
				ActShape:   e.outShape,
				Argmax:     -1,
				BatchSize:  resp.batch,
				Latency:    time.Since(start),
			}, nil
		}
		argmax := 0
		for i, v := range resp.logits {
			if v > resp.logits[argmax] {
				argmax = i
			}
		}
		return Output{
			Logits:    resp.logits,
			Argmax:    argmax,
			BatchSize: resp.batch,
			Latency:   time.Since(start),
		}, nil
	case <-ctx.Done():
		// The request stays queued (or in flight); the executor detects
		// the cancellation, skips or drops its result, and counts it
		// under ShedCanceled (resp is buffered, nothing blocks).
		return Output{}, ctx.Err()
	}
}

// enqueue pushes a request onto its entry's intake heap, applying the
// bounded-queue backpressure policy first: when the queue is full, the
// waiter that sorts last (latest deadline — under pure FIFO, the newest
// arrival) is shed with ErrQueueFull rather than the newest arrival
// being rejected outright, so an urgent late-burst request can displace
// a leisurely one.
func (r *Real) enqueue(e *modelEntry, q *inferReq) error {
	e.qmu.Lock()
	if e.qclosed {
		e.qmu.Unlock()
		return ErrReleased
	}
	q.seq = e.seq
	e.seq++
	var evicted *inferReq
	if r.cfg.QueueDepth > 0 && len(e.queue.items) >= r.cfg.QueueDepth {
		worst := 0
		for i := 1; i < len(e.queue.items); i++ {
			if lessReq(e.queue.items[worst], e.queue.items[i], e.queue.edf) {
				worst = i
			}
		}
		if !lessReq(q, e.queue.items[worst], e.queue.edf) {
			// The incoming request is the least worth serving: shed it.
			e.qmu.Unlock()
			r.shedQueueFull.Add(1)
			if q.deadline != 0 {
				r.deadlineMisses.Add(1)
			}
			return ErrQueueFull
		}
		evicted = e.queue.items[worst]
		heap.Remove(&e.queue, worst)
	}
	heap.Push(&e.queue, q)
	e.qmu.Unlock()
	if evicted != nil {
		r.shedQueueFull.Add(1)
		if evicted.deadline != 0 {
			r.deadlineMisses.Add(1)
		}
		evicted.resp <- inferResp{err: ErrQueueFull}
	}
	select {
	case e.avail <- struct{}{}:
	default:
	}
	return nil
}

// tryPop pops the most urgent waiter, shedding canceled and (under EDF)
// already-late requests on the way: neither enters a batch.
func (r *Real) tryPop(e *modelEntry) *inferReq {
	e.qmu.Lock()
	defer e.qmu.Unlock()
	for e.queue.Len() > 0 {
		q := heap.Pop(&e.queue).(*inferReq)
		if q.ctx != nil && q.ctx.Err() != nil {
			r.shedCanceled.Add(1)
			q.resp <- inferResp{err: q.ctx.Err()}
			continue
		}
		if e.queue.edf && q.deadline != 0 && time.Now().UnixNano() >= q.deadline {
			r.shedLate.Add(1)
			r.deadlineMisses.Add(1)
			q.resp <- inferResp{err: ErrLate}
			continue
		}
		return q
	}
	return nil
}

// nextReq blocks until a serveable request arrives or the entry is
// released (nil). Release wins over a non-empty queue: the remaining
// waiters belong to drain, which answers them ErrReleased.
func (r *Real) nextReq(e *modelEntry) *inferReq {
	for {
		select {
		case <-e.done:
			return nil
		default:
		}
		if q := r.tryPop(e); q != nil {
			return q
		}
		select {
		case <-e.avail:
		case <-e.done:
			return nil
		}
	}
}

// windowFor is the adaptive batch window: the tightest pending deadline
// slack minus the entry's smoothed execution cost, clamped to
// [0, BatchWindow]. With no deadline-carrying waiters (or under FIFO)
// the full BatchWindow applies — plentiful slack grows the batch, a
// deadline about to expire collapses the wait to zero.
func (r *Real) windowFor(e *modelEntry, first *inferReq) time.Duration {
	w := r.cfg.BatchWindow
	if r.cfg.Sched == SchedEDF {
		minDL := first.deadline
		e.qmu.Lock()
		for _, q := range e.queue.items {
			if q.deadline != 0 && (minDL == 0 || q.deadline < minDL) {
				minDL = q.deadline
			}
		}
		e.qmu.Unlock()
		if minDL != 0 {
			slack := time.Duration(minDL-time.Now().UnixNano()) - time.Duration(e.execEWMA.Load())
			if slack < 0 {
				slack = 0
			}
			if slack < w {
				w = slack
			}
		}
	}
	r.lastWindow.Store(int64(w))
	return w
}

// serveModel is one entry's batching executor: it collects up to
// BatchSize requests in intake order (waiting at most the adaptive
// window after the first) and runs them through one ForwardBatch call.
func (r *Real) serveModel(e *modelEntry) {
	defer r.wg.Done()
	for {
		first := r.nextReq(e)
		if first == nil {
			r.drain(e)
			return
		}
		batch := []*inferReq{first}
		if r.cfg.BatchSize > 1 {
			var timer *time.Timer
			if w := r.windowFor(e, first); w > 0 {
				timer = time.NewTimer(w)
			}
		fill:
			for len(batch) < r.cfg.BatchSize {
				if q := r.tryPop(e); q != nil {
					batch = append(batch, q)
					continue
				}
				if timer == nil {
					break fill
				}
				select {
				case <-e.avail:
				case <-timer.C:
					break fill
				case <-e.done:
					break fill
				}
			}
			if timer != nil {
				timer.Stop()
			}
		}
		r.runBatch(e, batch)
	}
}

// drain answers queued requests of a released entry with ErrReleased and
// closes the queue against further enqueues.
func (r *Real) drain(e *modelEntry) {
	e.qmu.Lock()
	e.qclosed = true
	items := e.queue.items
	e.queue.items = nil
	e.qmu.Unlock()
	for _, q := range items {
		q.resp <- inferResp{err: ErrReleased}
	}
}

// runBatch assembles the batch tensor, executes the forward pass and
// distributes the per-request logit rows, accounting deadline outcomes
// at completion time. Requests whose caller disconnected mid-flight
// still execute (they are already in the batch) but their result copy
// is skipped and they count under ShedCanceled.
func (r *Real) runBatch(e *modelEntry, batch []*inferReq) {
	n := len(batch)
	if r.cfg.Faults != nil {
		// exec.slow stalls then proceeds; exec.hang blocks until its rule
		// or backend close unwedges it.
		_ = r.cfg.Faults.Hit(context.Background(), faultinject.PointExecSlow)
		_ = r.cfg.Faults.Hit(r.closeCtx, faultinject.PointExecHang)
	}
	if r.batchHook != nil {
		r.batchHook(n)
	}
	c, h, w := e.inShape[0], e.inShape[1], e.inShape[2]
	per := c * h * w
	x := tensor.Rent(n, c, h, w)
	for i, q := range batch {
		copy(x.Data()[i*per:(i+1)*per], q.input)
	}
	fstart := time.Now()
	y, err := e.model.ForwardBatch(x)
	dur := int64(time.Since(fstart))
	tensor.Release(x)
	if old := e.execEWMA.Load(); old == 0 {
		e.execEWMA.Store(dur)
	} else {
		e.execEWMA.Store((3*old + dur) / 4)
	}
	r.lastBatch.Store(int64(n))
	r.batches.Add(1)
	r.requests.Add(int64(n))
	if err != nil {
		for _, q := range batch {
			q.resp <- inferResp{err: fmt.Errorf("exec: forward: %w", err)}
		}
		return
	}
	now := time.Now().UnixNano()
	outPer := y.Len() / n
	for i, q := range batch {
		if q.ctx != nil && q.ctx.Err() != nil {
			r.shedCanceled.Add(1)
			q.resp <- inferResp{err: q.ctx.Err()}
			continue
		}
		if q.deadline != 0 {
			if now <= q.deadline {
				r.deadlineHits.Add(1)
			} else {
				r.deadlineMisses.Add(1)
			}
		}
		logits := make([]float64, outPer)
		copy(logits, y.Data()[i*outPer:(i+1)*outPer])
		q.resp <- inferResp{logits: logits, batch: n}
	}
	tensor.Release(y)
}

// InputShape implements Backend.
func (r *Real) InputShape() []int {
	return []int{r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2]}
}

// Stats implements Backend.
func (r *Real) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	depth := 0
	precisions := make(map[string]string, len(r.models))
	var slack map[string]time.Duration
	now := time.Now().UnixNano()
	for sig, e := range r.models {
		e.qmu.Lock()
		depth += e.queue.Len()
		var minDL int64
		for _, q := range e.queue.items {
			if q.deadline != 0 && (minDL == 0 || q.deadline < minDL) {
				minDL = q.deadline
			}
		}
		e.qmu.Unlock()
		if minDL != 0 {
			if slack == nil {
				slack = make(map[string]time.Duration)
			}
			slack[sig] = time.Duration(minDL - now)
		}
		precisions[sig] = e.prec.String()
	}
	var weightBytes int64
	for _, inst := range r.lib {
		weightBytes += inst.weightBytes
	}
	return Stats{
		Models:         len(r.models),
		Blocks:         len(r.lib),
		QueueDepth:     depth,
		LastBatchSize:  int(r.lastBatch.Load()),
		Batches:        r.batches.Load(),
		Requests:       r.requests.Load(),
		ShedLate:       r.shedLate.Load(),
		ShedQueueFull:  r.shedQueueFull.Load(),
		ShedCanceled:   r.shedCanceled.Load(),
		DeadlineHits:   r.deadlineHits.Load(),
		DeadlineMisses: r.deadlineMisses.Load(),
		QueueSlack:     slack,
		LastWindow:     time.Duration(r.lastWindow.Load()),
		QuantFallbacks: r.quantFallbacks.Load(),
		WeightBytes:    weightBytes,
		PathPrecisions: precisions,
	}
}

// BlockRefs snapshots the shared-block refcounts (library key → number
// of live models aliasing the instance) — the assertion surface for the
// instantiated-exactly-once property.
func (r *Real) BlockRefs() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.lib))
	for k, inst := range r.lib {
		out[k] = inst.refs
	}
	return out
}

// SharedBlock returns the live instance for a library key (nil when the
// block is not deployed) — lets tests assert pointer identity across
// tasks and epochs.
func (r *Real) SharedBlock(key string) *dnn.Block {
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst, ok := r.lib[key]; ok {
		return inst.block
	}
	return nil
}

// Close implements Backend: releases every model and waits for the
// batching executors to exit.
func (r *Real) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	for sig, e := range r.models {
		close(e.done)
		delete(r.models, sig)
	}
	r.lib = map[string]*blockInstance{}
	empty := map[string]*modelEntry{}
	r.routes.Store(&empty)
	r.mu.Unlock()
	r.closeCancel()
	r.wg.Wait()
}
