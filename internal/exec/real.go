package exec

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"offloadnn/internal/dnn"
	"offloadnn/internal/edge"
	"offloadnn/internal/tensor"
)

// RealConfig parameterizes the tensor-backed execution backend.
type RealConfig struct {
	// Model is the scaled architecture template every catalog block is
	// instantiated from (zero value: dnn.DefaultResNetConfig).
	Model dnn.ResNetConfig
	// Input is the per-request input shape (C, H, W); zero value:
	// (Model.InChannels, 8, 8).
	Input [3]int
	// BatchSize bounds how many admitted requests one ForwardBatch call
	// serves (default 8; 1 disables batching).
	BatchSize int
	// BatchWindow bounds how long a partially filled batch waits for
	// more requests before executing (default 2 ms).
	BatchWindow time.Duration
	// Repo optionally supplies trained weights: a block whose mangled ID
	// ('/' → '_') names a stored one-block model starts from those
	// weights instead of the seeded initialization. Binary weight
	// artifacts (.dnnw) are preferred and adopted zero-copy; the gob
	// store is the fallback.
	Repo *edge.Repository
	// QuantGate bounds the top-1 disagreement (fraction of the gate
	// batch) a reduced-precision path may show against its float64 twin
	// at install time before being demoted one precision tier (default
	// 0.02; negative disables the gate).
	QuantGate float64
	// CalibBatch is the batch size of the deterministic calibration/gate
	// input (default 8).
	CalibBatch int
	// Logf, when set, receives weight-loading diagnostics. Nil discards.
	Logf func(string, ...any)
}

// calibSeed fixes the calibration/gate batch across processes so gate
// verdicts are reproducible for a given catalog and weight set.
const calibSeed = 20240131

// blockInstance is one live shared block: the unit of the refcount that
// operationalizes constraint (1b) — however many deployed paths (and
// tasks, and epochs) reference a block ID, exactly one instance exists.
type blockInstance struct {
	block *dnn.Block
	stage int // 0 stem, 1..4 stages, 5 classifier
	refs  int // models currently aliasing the instance
	// weightBytes is the resident size of the artifact weight buffer the
	// block aliases zero-copy; 0 for seeded or gob-copied weights.
	weightBytes int64
}

// inferReq is one admitted request waiting in a model's batching queue.
type inferReq struct {
	input []float64
	resp  chan inferResp
}

type inferResp struct {
	logits []float64
	batch  int
	err    error
}

// modelEntry is one assembled path model plus its batching executor. An
// entry is keyed by the path's block-ID signature, so tasks assigned the
// same path share one entry — and their requests batch together.
type modelEntry struct {
	sig   string
	model *dnn.Model
	keys  []string         // library keys the model aliases (stem, stages, classifier)
	prec  tensor.Precision // kernel precision the path runs at (post-gate)
	refs  int              // tasks routed to the entry by the installed plan
	reqs  chan *inferReq
	done  chan struct{} // closed when the entry is released
}

// Real is the tensor-backed execution backend. Install assembles one
// dnn.Model per distinct admitted path, aliasing refcounted shared block
// instances; Infer funnels requests into per-model batching queues that
// execute dnn.Model.ForwardBatch.
type Real struct {
	cfg RealConfig

	// mu guards lib/models/closed across Install/Close/Stats; the Infer
	// hot path reads only the atomic routes pointer.
	mu     sync.Mutex
	lib    map[string]*blockInstance
	models map[string]*modelEntry
	closed bool

	// routes maps task ID → model entry for the installed plan; swapped
	// atomically so Infer never takes mu.
	routes atomic.Pointer[map[string]*modelEntry]

	lastBatch      atomic.Int64
	batches        atomic.Int64
	requests       atomic.Int64
	quantFallbacks atomic.Int64
	wg             sync.WaitGroup
}

// NewReal constructs a tensor-backed backend; every Infer fails with
// ErrNoModel until the first Install.
func NewReal(cfg RealConfig) (*Real, error) {
	if cfg.Model.BaseWidth == 0 {
		cfg.Model = dnn.DefaultResNetConfig()
	}
	if cfg.Input == [3]int{} {
		cfg.Input = [3]int{cfg.Model.InChannels, 8, 8}
	}
	if cfg.Input[0] != cfg.Model.InChannels {
		return nil, fmt.Errorf("exec: input channels %d != model channels %d", cfg.Input[0], cfg.Model.InChannels)
	}
	if cfg.Input[1] <= 0 || cfg.Input[2] <= 0 {
		return nil, fmt.Errorf("exec: non-positive input shape %v", cfg.Input)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 8
	}
	if cfg.BatchWindow <= 0 {
		cfg.BatchWindow = 2 * time.Millisecond
	}
	if cfg.QuantGate == 0 {
		cfg.QuantGate = 0.02
	}
	if cfg.CalibBatch <= 0 {
		cfg.CalibBatch = 8
	}
	r := &Real{
		cfg:    cfg,
		lib:    make(map[string]*blockInstance),
		models: make(map[string]*modelEntry),
	}
	empty := map[string]*modelEntry{}
	r.routes.Store(&empty)
	return r, nil
}

// pathSignature keys a model entry: two assignments with the same block
// sequence share one model (and one batch queue).
func pathSignature(blocks []string) string { return strings.Join(blocks, "|") }

// pruneRatioOf parses the structured-pruning convention of catalog block
// IDs: a "/pNN" suffix means NN% of internal channels removed.
func pruneRatioOf(id string) float64 {
	i := strings.LastIndex(id, "/p")
	if i < 0 {
		return 0
	}
	n, err := strconv.Atoi(id[i+2:])
	if err != nil || n <= 0 || n >= 100 {
		return 0
	}
	return float64(n) / 100
}

// mangleRepoName maps a catalog block ID onto a repository model name
// (the repository forbids path separators).
func mangleRepoName(id string) string { return strings.ReplaceAll(id, "/", "_") }

// seedOf decorrelates the initialization of distinct block IDs sharing a
// stage (FNV-1a over the ID).
func seedOf(id string) int64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(id); i++ {
		h ^= uint64(id[i])
		h *= 1099511628211
	}
	return int64(h)
}

// instantiate returns the live instance for a library key, building it
// on first reference. build runs with mu held (instantiation is part of
// the epoch swap, not the request path). The returned instance has its
// refcount untouched — retain/release manage it.
func (r *Real) instantiate(key string, stage int, build func() (*dnn.Block, int64, error)) (*blockInstance, error) {
	if inst, ok := r.lib[key]; ok {
		if inst.stage != stage {
			return nil, fmt.Errorf("exec: block %q used at stage %d and %d", key, inst.stage, stage)
		}
		return inst, nil
	}
	b, wb, err := build()
	if err != nil {
		return nil, err
	}
	inst := &blockInstance{block: b, stage: stage, weightBytes: wb}
	r.lib[key] = inst
	return inst, nil
}

// stageBlock builds one catalog block as a template stage. The precision
// suffix ("@f32"/"@i8") is stripped before resolving seed, prune ratio
// and repository weights, so precision variants of a block share the base
// block's trained weights; the precision is then instantiated on the
// finished block. A binary weight artifact, when stored for the base ID,
// is adopted wholesale — its tensors alias one decoded buffer, so the
// install copies no weights (the returned byte count is that buffer's
// resident size); the gob store is the copying fallback.
func (r *Real) stageBlock(id string, stage int) (*dnn.Block, int64, error) {
	base, prec, err := dnn.BlockIDPrecision(id)
	if err != nil {
		return nil, 0, fmt.Errorf("exec: block %q: %w", id, err)
	}
	b, err := dnn.BuildStageBlock(r.cfg.Model, id, stage, pruneRatioOf(base), seedOf(base))
	if err != nil {
		return nil, 0, fmt.Errorf("exec: block %q: %w", id, err)
	}
	var artBytes int64
	if r.cfg.Repo != nil {
		name := mangleRepoName(base)
		if m, bytes, aerr := r.cfg.Repo.LoadArtifact(name); aerr == nil &&
			len(m.Blocks) > 0 && dnn.ParamsCompatible(b, m.Blocks[0]) {
			stored := m.Blocks[0]
			stored.ID, stored.Stage = b.ID, b.Stage
			stored.Variant, stored.PruneRatio, stored.Frozen = b.Variant, b.PruneRatio, b.Frozen
			b, artBytes = stored, bytes
		} else if m, lerr := r.cfg.Repo.Load(name); lerr == nil && len(m.Blocks) > 0 {
			if err := dnn.CopyWeights(b, m.Blocks[0]); err != nil && r.cfg.Logf != nil {
				r.cfg.Logf("exec: weights for %q ignored: %v", id, err)
			}
		}
	}
	if prec != tensor.F64 {
		if err := b.SetPrecision(prec); err != nil {
			return nil, 0, fmt.Errorf("exec: block %q: %w", id, err)
		}
	}
	return b, artBytes, nil
}

// pathPrecisionOf is the precision variant a path's block IDs select
// (catalog paths are precision-uniform, so the first suffixed block
// decides).
func pathPrecisionOf(blockIDs []string) tensor.Precision {
	for _, id := range blockIDs {
		if _, p, err := dnn.BlockIDPrecision(id); err == nil && p != tensor.F64 {
			return p
		}
	}
	return tensor.F64
}

// buildEntry assembles the model for a path, resolving (and creating on
// demand) its shared block instances. The path's precision variant also
// keys the stem and classifier instances ("stem@i8", "classifier/32@i8"),
// so the whole path runs at the chosen precision while the float64 stem
// and classifier stay shareable by f64 paths. mu held.
func (r *Real) buildEntry(sig string, blockIDs []string) (*modelEntry, error) {
	pathPrec := pathPrecisionOf(blockIDs)
	suffix := ""
	if pathPrec != tensor.F64 {
		suffix = "@" + pathPrec.String()
	}
	narrow := func(b *dnn.Block) (*dnn.Block, int64, error) {
		if pathPrec != tensor.F64 {
			if err := b.SetPrecision(pathPrec); err != nil {
				return nil, 0, err
			}
		}
		return b, 0, nil
	}
	keys := make([]string, 0, len(blockIDs)+2)
	stemKey := "stem" + suffix
	stem, err := r.instantiate(stemKey, 0, func() (*dnn.Block, int64, error) {
		return narrow(dnn.BuildStemBlock(r.cfg.Model))
	})
	if err != nil {
		return nil, err
	}
	keys = append(keys, stemKey)
	stages := make([]*dnn.Block, 0, len(blockIDs))
	for i, id := range blockIDs {
		stage := min(i+1, 4)
		inst, err := r.instantiate(id, stage, func() (*dnn.Block, int64, error) {
			return r.stageBlock(id, stage)
		})
		if err != nil {
			return nil, err
		}
		keys = append(keys, id)
		stages = append(stages, inst.block)
	}
	featureDim := dnn.StageWidth(r.cfg.Model, len(blockIDs))
	clsKey := "classifier/" + strconv.Itoa(featureDim) + suffix
	cls, err := r.instantiate(clsKey, 5, func() (*dnn.Block, int64, error) {
		return narrow(dnn.BuildClassifierBlock(r.cfg.Model, featureDim))
	})
	if err != nil {
		return nil, err
	}
	keys = append(keys, clsKey)
	model, err := dnn.AssemblePathModel("exec/"+sig, stem.block, stages, cls.block)
	if err != nil {
		return nil, err
	}
	e := &modelEntry{
		sig:   sig,
		model: model,
		keys:  keys,
		prec:  pathPrec,
		reqs:  make(chan *inferReq, 4*r.cfg.BatchSize),
		done:  make(chan struct{}),
	}
	return e, nil
}

// twinModel assembles the float64 twin of a path — the same base block
// IDs resolve to the same seeds and stored weights, so the twin is the
// accuracy reference the gate compares against. Twin instances go
// through the regular library (a base block also deployed at f64 is
// shared, not duplicated) and enter it unreferenced; pruneUnreferenced
// at the end of Install drops the ones no deployed path retains. mu held.
func (r *Real) twinModel(blockIDs []string) (*dnn.Model, error) {
	stem, err := r.instantiate("stem", 0, func() (*dnn.Block, int64, error) {
		return dnn.BuildStemBlock(r.cfg.Model), 0, nil
	})
	if err != nil {
		return nil, err
	}
	stages := make([]*dnn.Block, 0, len(blockIDs))
	for i, id := range blockIDs {
		base, _, err := dnn.BlockIDPrecision(id)
		if err != nil {
			return nil, err
		}
		stage := min(i+1, 4)
		inst, err := r.instantiate(base, stage, func() (*dnn.Block, int64, error) {
			return r.stageBlock(base, stage)
		})
		if err != nil {
			return nil, err
		}
		stages = append(stages, inst.block)
	}
	featureDim := dnn.StageWidth(r.cfg.Model, len(blockIDs))
	cls, err := r.instantiate("classifier/"+strconv.Itoa(featureDim), 5, func() (*dnn.Block, int64, error) {
		return dnn.BuildClassifierBlock(r.cfg.Model, featureDim), 0, nil
	})
	if err != nil {
		return nil, err
	}
	return dnn.AssemblePathModel("twin", stem.block, stages, cls.block)
}

// gateEntry enforces the calibration accuracy gate on a newly built
// reduced-precision entry: the model's activation scales are calibrated
// on a deterministic batch, then its top-1 agreement with the float64
// twin is measured on the same batch. Disagreement above QuantGate
// demotes every block of the path one precision tier (i8→f32→f64) and
// rechecks; float64 always passes. Demotion is per-block state, so other
// installed paths sharing a demoted block run the safer kernels too.
// mu held.
func (r *Real) gateEntry(e *modelEntry) error {
	if e.prec == tensor.F64 || r.cfg.QuantGate < 0 {
		return nil
	}
	twin, err := r.twinModel(e.sigBlocks())
	if err != nil {
		return fmt.Errorf("gate %s: %w", e.sig, err)
	}
	x := dnn.CalibrationBatch(r.cfg.CalibBatch, r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2], calibSeed)
	if err := dnn.Calibrate(e.model, x); err != nil {
		return fmt.Errorf("gate %s: calibrate: %w", e.sig, err)
	}
	for {
		delta, err := dnn.Top1Delta(e.model, twin, x)
		if err != nil {
			return fmt.Errorf("gate %s: %w", e.sig, err)
		}
		if delta <= r.cfg.QuantGate {
			if r.cfg.Logf != nil {
				r.cfg.Logf("exec: gate: path %s passes at %s (top-1 delta %.3f)", e.sig, e.prec, delta)
			}
			return nil
		}
		next := tensor.F32
		if e.prec == tensor.F32 {
			next = tensor.F64
		}
		if r.cfg.Logf != nil {
			r.cfg.Logf("exec: gate: path %s top-1 delta %.3f > %.3f at %s, falling back to %s",
				e.sig, delta, r.cfg.QuantGate, e.prec, next)
		}
		if err := e.model.SetPrecision(next); err != nil {
			return fmt.Errorf("gate %s: demote: %w", e.sig, err)
		}
		e.prec = next
		r.quantFallbacks.Add(1)
		if next == tensor.F64 {
			return nil
		}
	}
}

// sigBlocks recovers the path's block IDs from its signature.
func (e *modelEntry) sigBlocks() []string { return strings.Split(e.sig, "|") }

// Install implements Backend. The swap is warm: model entries (and the
// block instances they alias) that survive from the previous plan are
// retained untouched — their batch queues keep draining across the
// epoch boundary — while entries no surviving assignment references are
// released and their blocks' refcounts decremented (freed at zero).
// On error the previous plan stays installed.
func (r *Real) Install(plan *Plan) error {
	if plan == nil {
		return fmt.Errorf("exec: nil plan")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return ErrClosed
	}

	// Resolve the desired model set, building entries for new paths.
	desired := make(map[string]*modelEntry)
	routes := make(map[string]*modelEntry)
	var created []*modelEntry
	fail := func(err error) error {
		// Creation is side-effect free until commit except for library
		// inserts, which released() prunes below.
		for _, e := range created {
			close(e.done)
		}
		r.pruneUnreferenced(desired)
		return err
	}
	if plan.Deployment != nil && plan.Deployment.Solution != nil {
		for _, a := range plan.Deployment.Solution.Assignments {
			if !a.Admitted() {
				continue
			}
			sig := pathSignature(a.Path.Blocks)
			e, ok := desired[sig]
			if !ok {
				if e, ok = r.models[sig]; !ok {
					var err error
					e, err = r.buildEntry(sig, a.Path.Blocks)
					if err != nil {
						return fail(fmt.Errorf("exec: install epoch %d: %w", plan.Epoch, err))
					}
					created = append(created, e)
					if err := r.gateEntry(e); err != nil {
						return fail(fmt.Errorf("exec: install epoch %d: %w", plan.Epoch, err))
					}
				}
				e.refs = 0
				desired[sig] = e
			}
			e.refs++
			routes[a.TaskID] = e
		}
	}

	// Commit: retire entries absent from the desired set, start the
	// executors of the created ones, swap the routing table.
	for sig, e := range r.models {
		if _, keep := desired[sig]; !keep {
			for _, k := range e.keys {
				if inst := r.lib[k]; inst != nil {
					inst.refs--
				}
			}
			close(e.done)
			delete(r.models, sig)
		}
	}
	for _, e := range created {
		for _, k := range e.keys {
			r.lib[k].refs++
		}
		r.models[e.sig] = e
		r.wg.Add(1)
		go r.serveModel(e)
	}
	r.pruneUnreferenced(desired)
	r.routes.Store(&routes)
	if r.cfg.Logf != nil && len(created) > 0 {
		label := ""
		if plan.Node != "" {
			label = " node=" + plan.Node
		}
		r.cfg.Logf("exec: install epoch %d%s: %d models (%d built), %d shared blocks",
			plan.Epoch, label, len(r.models), len(created), len(r.lib))
	}
	return nil
}

// pruneUnreferenced drops zero-ref library instances (including ones
// speculatively built by a failed Install). mu held.
func (r *Real) pruneUnreferenced(map[string]*modelEntry) {
	for k, inst := range r.lib {
		if inst.refs <= 0 {
			delete(r.lib, k)
		}
	}
}

// Infer implements Backend: the request joins its model's batching
// queue and blocks until the batch it lands in executes. The measured
// latency spans enqueue to result — queueing, batching wait and the
// forward pass.
func (r *Real) Infer(ctx context.Context, taskID string, input []float64) (Output, error) {
	e := (*r.routes.Load())[taskID]
	if e == nil {
		return Output{}, fmt.Errorf("%w: %q", ErrNoModel, taskID)
	}
	want := r.cfg.Input[0] * r.cfg.Input[1] * r.cfg.Input[2]
	if len(input) != want {
		return Output{}, fmt.Errorf("%w: got %d values, model wants %d (%dx%dx%d)",
			ErrBadInput, len(input), want, r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2])
	}
	req := &inferReq{input: input, resp: make(chan inferResp, 1)}
	start := time.Now()
	select {
	case e.reqs <- req:
	case <-e.done:
		return Output{}, ErrReleased
	case <-ctx.Done():
		return Output{}, ctx.Err()
	}
	select {
	case resp := <-req.resp:
		if resp.err != nil {
			return Output{}, resp.err
		}
		argmax := 0
		for i, v := range resp.logits {
			if v > resp.logits[argmax] {
				argmax = i
			}
		}
		return Output{
			Logits:    resp.logits,
			Argmax:    argmax,
			BatchSize: resp.batch,
			Latency:   time.Since(start),
		}, nil
	case <-ctx.Done():
		// The batch will still execute; its result for this request is
		// dropped (resp is buffered, the executor never blocks).
		return Output{}, ctx.Err()
	}
}

// serveModel is one entry's batching executor: it collects up to
// BatchSize requests (waiting at most BatchWindow after the first) and
// runs them through one ForwardBatch call.
func (r *Real) serveModel(e *modelEntry) {
	defer r.wg.Done()
	for {
		var first *inferReq
		select {
		case <-e.done:
			r.drain(e)
			return
		case first = <-e.reqs:
		}
		batch := []*inferReq{first}
		if r.cfg.BatchSize > 1 {
			timer := time.NewTimer(r.cfg.BatchWindow)
		fill:
			for len(batch) < r.cfg.BatchSize {
				select {
				case q := <-e.reqs:
					batch = append(batch, q)
				case <-timer.C:
					break fill
				case <-e.done:
					break fill
				}
			}
			timer.Stop()
		}
		r.runBatch(e, batch)
	}
}

// drain answers queued requests of a released entry with ErrReleased.
func (r *Real) drain(e *modelEntry) {
	for {
		select {
		case q := <-e.reqs:
			q.resp <- inferResp{err: ErrReleased}
		default:
			return
		}
	}
}

// runBatch assembles the batch tensor, executes the forward pass and
// distributes the per-request logit rows.
func (r *Real) runBatch(e *modelEntry, batch []*inferReq) {
	n := len(batch)
	c, h, w := r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2]
	per := c * h * w
	x := tensor.Rent(n, c, h, w)
	for i, q := range batch {
		copy(x.Data()[i*per:(i+1)*per], q.input)
	}
	y, err := e.model.ForwardBatch(x)
	tensor.Release(x)
	r.lastBatch.Store(int64(n))
	r.batches.Add(1)
	r.requests.Add(int64(n))
	if err != nil {
		for _, q := range batch {
			q.resp <- inferResp{err: fmt.Errorf("exec: forward: %w", err)}
		}
		return
	}
	outPer := y.Len() / n
	for i, q := range batch {
		logits := make([]float64, outPer)
		copy(logits, y.Data()[i*outPer:(i+1)*outPer])
		q.resp <- inferResp{logits: logits, batch: n}
	}
	tensor.Release(y)
}

// InputShape implements Backend.
func (r *Real) InputShape() []int {
	return []int{r.cfg.Input[0], r.cfg.Input[1], r.cfg.Input[2]}
}

// Stats implements Backend.
func (r *Real) Stats() Stats {
	r.mu.Lock()
	defer r.mu.Unlock()
	depth := 0
	precisions := make(map[string]string, len(r.models))
	for sig, e := range r.models {
		depth += len(e.reqs)
		precisions[sig] = e.prec.String()
	}
	var weightBytes int64
	for _, inst := range r.lib {
		weightBytes += inst.weightBytes
	}
	return Stats{
		Models:         len(r.models),
		Blocks:         len(r.lib),
		QueueDepth:     depth,
		LastBatchSize:  int(r.lastBatch.Load()),
		Batches:        r.batches.Load(),
		Requests:       r.requests.Load(),
		QuantFallbacks: r.quantFallbacks.Load(),
		WeightBytes:    weightBytes,
		PathPrecisions: precisions,
	}
}

// BlockRefs snapshots the shared-block refcounts (library key → number
// of live models aliasing the instance) — the assertion surface for the
// instantiated-exactly-once property.
func (r *Real) BlockRefs() map[string]int {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int, len(r.lib))
	for k, inst := range r.lib {
		out[k] = inst.refs
	}
	return out
}

// SharedBlock returns the live instance for a library key (nil when the
// block is not deployed) — lets tests assert pointer identity across
// tasks and epochs.
func (r *Real) SharedBlock(key string) *dnn.Block {
	r.mu.Lock()
	defer r.mu.Unlock()
	if inst, ok := r.lib[key]; ok {
		return inst.block
	}
	return nil
}

// Close implements Backend: releases every model and waits for the
// batching executors to exit.
func (r *Real) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		return
	}
	r.closed = true
	for sig, e := range r.models {
		close(e.done)
		delete(r.models, sig)
	}
	r.lib = map[string]*blockInstance{}
	empty := map[string]*modelEntry{}
	r.routes.Store(&empty)
	r.mu.Unlock()
	r.wg.Wait()
}
