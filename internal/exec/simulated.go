package exec

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"offloadnn/internal/edge"
)

// SimulatedConfig parameterizes the cost-model backend.
type SimulatedConfig struct {
	// LinkRateFactor scales the delivered per-RB rate against the
	// planning value B(σ); ≤ 0 means 1.0 (see edge.EmulatorConfig).
	LinkRateFactor float64
	// ComputeScale scales every path compute time; ≤ 0 means 1.0.
	ComputeScale float64
	// Jitter adds ±Jitter·latency uniform noise to each answer,
	// emulating per-frame variability; 0 is deterministic.
	Jitter float64
	// Seed drives the jitter.
	Seed int64
}

// Simulated is the predict-only execution backend: it answers every
// admitted request with the installed deployment's planned per-task cost
// (edge.PlanCosts — the arithmetic previously duplicated between the
// resolver's predicted latency and the Fig. 11 emulator). It runs no
// model and returns no logits.
type Simulated struct {
	cfg SimulatedConfig

	mu     sync.Mutex
	costs  map[string]edge.TaskCost
	rng    *rand.Rand
	served int64
	hits   int64
	misses int64
	closed bool
}

// NewSimulated constructs a cost-model backend; no plan is installed
// yet, so every Infer fails with ErrNoModel until the first Install.
func NewSimulated(cfg SimulatedConfig) *Simulated {
	return &Simulated{
		cfg:   cfg,
		costs: map[string]edge.TaskCost{},
		rng:   rand.New(rand.NewSource(cfg.Seed)),
	}
}

// Install implements Backend: it re-evaluates the per-task cost table
// for the new deployment.
func (s *Simulated) Install(plan *Plan) error {
	if plan == nil {
		return fmt.Errorf("exec: nil plan")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.costs = edge.PlanCosts(plan.Tasks, plan.Blocks, plan.Res, plan.Deployment,
		s.cfg.LinkRateFactor, s.cfg.ComputeScale)
	// Segment ranges answer with their slice's modeled compute; the
	// transfer legs live in the serving layer, which never forwards a
	// simulated activation (there is none).
	scale := s.cfg.ComputeScale
	if scale <= 0 {
		scale = 1
	}
	for _, seg := range plan.Segments {
		if seg.From < 0 || seg.To > len(seg.Blocks) || seg.From >= seg.To {
			return fmt.Errorf("exec: segment %s range [%d,%d) outside path of %d blocks",
				seg.TaskID, seg.From, seg.To, len(seg.Blocks))
		}
		var proc float64
		for _, id := range seg.Blocks[seg.From:seg.To] {
			proc += plan.Blocks[id].ComputeSeconds
		}
		s.costs[routeKey(seg.TaskID, seg.From)] = edge.TaskCost{
			Proc: time.Duration(proc * scale * float64(time.Second)),
		}
	}
	return nil
}

// Infer implements Backend: the answer is the planned per-frame cost of
// the task, optionally jittered. The input payload is accepted but not
// interpreted; no logits are produced. The cost model answers instantly,
// so a request deadline matters only when the *modeled* latency blows
// it: the simulated hit/miss accounting mirrors what the deadline-aware
// runtime would report for the planned costs, without shedding anything.
func (s *Simulated) Infer(_ context.Context, req Request) (Output, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return Output{}, ErrClosed
	}
	cost, ok := s.costs[routeKey(req.TaskID, req.FromStage)]
	if !ok {
		return Output{}, fmt.Errorf("%w: %q (stage %d)", ErrNoModel, req.TaskID, req.FromStage)
	}
	lat := cost.Total()
	if s.cfg.Jitter > 0 {
		lat = time.Duration(float64(lat) * (1 + s.cfg.Jitter*(2*s.rng.Float64()-1)))
	}
	s.served++
	if !req.Deadline.IsZero() {
		if time.Now().Add(lat).After(req.Deadline) {
			s.misses++
		} else {
			s.hits++
		}
	}
	return Output{Argmax: -1, BatchSize: 1, Latency: lat, Simulated: true}, nil
}

// InputShape implements Backend; the cost model accepts any input.
func (s *Simulated) InputShape() []int { return nil }

// Stats implements Backend. Every simulated answer is a batch of one.
func (s *Simulated) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Models:         len(s.costs),
		Batches:        s.served,
		Requests:       s.served,
		DeadlineHits:   s.hits,
		DeadlineMisses: s.misses,
	}
}

// Close implements Backend.
func (s *Simulated) Close() {
	s.mu.Lock()
	s.closed = true
	s.costs = nil
	s.mu.Unlock()
}
