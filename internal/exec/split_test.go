package exec

import (
	"context"
	"fmt"
	"testing"

	"offloadnn/internal/tensor"
)

// splitPathIDs is a 4-stage path at a precision tier ("", "@f32", "@i8").
func splitPathIDs(tier string) []string {
	ids := make([]string, 4)
	for i := range ids {
		ids[i] = fmt.Sprintf("prop/stage%d%s", i+1, tier)
	}
	return ids
}

func splitFrame(seed int) []float64 {
	frame := make([]float64, 3*8*8)
	for i := range frame {
		frame[i] = float64((i*7+seed*13)%29)/29 - 0.5
	}
	return frame
}

// newSplitBackend builds one Real per "node" with identical configuration
// (the cluster invariant: every member runs the same template and gate).
func newSplitBackend(t *testing.T) *Real {
	t.Helper()
	b, err := NewReal(RealConfig{BatchSize: 4, BatchWindow: 0})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(b.Close)
	return b
}

func installSegments(t *testing.T, b *Real, task string, blocks []string, bounds ...int) {
	t.Helper()
	var segs []Segment
	for i := 0; i+1 < len(bounds); i++ {
		segs = append(segs, Segment{TaskID: task, PathID: "prop/π", DNN: "prop",
			Blocks: blocks, From: bounds[i], To: bounds[i+1]})
	}
	if err := b.Install(&Plan{Epoch: 1, Segments: segs}); err != nil {
		t.Fatal(err)
	}
}

// runSplit drives one frame through a chain of per-node backends, each
// serving the range starting at the corresponding bound, handing the
// emitted activation to the next — the in-process equivalent of the
// POST /v1/stage relay.
func runSplit(t *testing.T, nodes []*Real, bounds []int, task string, frame []float64) []float64 {
	t.Helper()
	input := frame
	for i, node := range nodes {
		out, err := node.Infer(context.Background(), Request{TaskID: task, Input: input, FromStage: bounds[i]})
		if err != nil {
			t.Fatalf("segment from stage %d: %v", bounds[i], err)
		}
		if i == len(nodes)-1 {
			if out.Logits == nil {
				t.Fatalf("tail segment returned no logits")
			}
			return out.Logits
		}
		if out.Activation == nil {
			t.Fatalf("non-tail segment from stage %d returned no activation", bounds[i])
		}
		if n := out.ActShape[0] * out.ActShape[1] * out.ActShape[2]; n != len(out.Activation) {
			t.Fatalf("activation shape %v disagrees with %d elems", out.ActShape, len(out.Activation))
		}
		input = out.Activation
	}
	panic("unreachable")
}

// TestSplitEqualsWholeEveryCutPrecisionWorkers is the split-equals-whole
// property: a path split at every legal cut point produces bit-identical
// logits to the unsplit model, at every precision tier and kernel worker
// count. Quantized tiers exercise the full-path calibration rule — each
// node gates the complete path locally, so split and whole derive the
// same activation scales.
func TestSplitEqualsWholeEveryCutPrecisionWorkers(t *testing.T) {
	defer tensor.SetParallelism(tensor.SetParallelism(1))
	for _, tier := range []string{"", "@f32", "@i8"} {
		for _, workers := range []int{1, 3} {
			tensor.SetParallelism(workers)
			blocks := splitPathIDs(tier)
			whole := newSplitBackend(t)
			installSegments(t, whole, "t", blocks, 0, len(blocks))
			frame := splitFrame(workers)
			ref, err := whole.Infer(context.Background(), Request{TaskID: "t", Input: frame})
			if err != nil {
				t.Fatal(err)
			}
			for cut := 1; cut < len(blocks); cut++ {
				name := fmt.Sprintf("tier=%q workers=%d cut=%d", tier, workers, cut)
				head, tail := newSplitBackend(t), newSplitBackend(t)
				installSegments(t, head, "t", blocks, 0, cut)
				installSegments(t, tail, "t", blocks, cut, len(blocks))
				got := runSplit(t, []*Real{head, tail}, []int{0, cut}, "t", frame)
				if len(got) != len(ref.Logits) {
					t.Fatalf("%s: %d logits, want %d", name, len(got), len(ref.Logits))
				}
				for i := range got {
					if got[i] != ref.Logits[i] {
						t.Fatalf("%s: logit %d = %v, whole %v (not bit-identical)", name, i, got[i], ref.Logits[i])
					}
				}
			}
			// Three-way split: every node runs one interior boundary.
			bounds := []int{0, 1, 3, len(blocks)}
			nodes := make([]*Real, 0, 3)
			for i := 0; i+1 < len(bounds); i++ {
				n := newSplitBackend(t)
				installSegments(t, n, "t", blocks, bounds[i], bounds[i+1])
				nodes = append(nodes, n)
			}
			got := runSplit(t, nodes, bounds[:3], "t", frame)
			for i := range got {
				if got[i] != ref.Logits[i] {
					t.Fatalf("tier=%q workers=%d 3-way: logit %d = %v, whole %v", tier, workers, i, got[i], ref.Logits[i])
				}
			}
		}
	}
}

// TestSegmentInstallValidation pins the contract errors: bad ranges
// refuse the plan (previous plan stays), and a mid-path request must
// match the installed range and activation shape.
func TestSegmentInstallValidation(t *testing.T) {
	b := newSplitBackend(t)
	blocks := splitPathIDs("")
	if err := b.Install(&Plan{Epoch: 1, Segments: []Segment{
		{TaskID: "t", Blocks: blocks, From: 2, To: 1},
	}}); err == nil {
		t.Fatal("inverted range accepted")
	}
	if err := b.Install(&Plan{Epoch: 1, Segments: []Segment{
		{TaskID: "t", Blocks: blocks, From: 0, To: 9},
	}}); err == nil {
		t.Fatal("overlong range accepted")
	}
	installSegments(t, b, "t", blocks, 2, len(blocks))
	// Raw-frame intake is not installed, only the stage-2 resume.
	if _, err := b.Infer(context.Background(), Request{TaskID: "t", Input: splitFrame(1)}); err == nil {
		t.Fatal("frame intake served by a mid-path segment")
	}
	if _, err := b.Infer(context.Background(), Request{TaskID: "t", FromStage: 2, Input: []float64{1, 2, 3}}); err == nil {
		t.Fatal("wrong-size activation accepted")
	}
}

// TestSegmentSharedBlocksRefcounted pins that a segment install goes
// through the same refcounted library as whole paths: the stages outside
// the range (and gate temporaries) do not stay resident.
func TestSegmentSharedBlocksRefcounted(t *testing.T) {
	b := newSplitBackend(t)
	blocks := splitPathIDs("")
	installSegments(t, b, "t", blocks, 1, 3)
	refs := b.BlockRefs()
	for _, id := range blocks[1:3] {
		if refs[id] != 1 {
			t.Fatalf("segment block %s refs = %d, want 1", id, refs[id])
		}
	}
	for _, id := range []string{blocks[0], blocks[3], "stem", "classifier/64"} {
		if _, ok := refs[id]; ok {
			t.Fatalf("out-of-range block %s stayed resident: %v", id, refs)
		}
	}
}
