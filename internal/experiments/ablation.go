package experiments

import (
	"fmt"

	"offloadnn/internal/core"
	"offloadnn/internal/workload"
)

// runAblation quantifies each design choice of OffloaDNN (DESIGN.md §5)
// by knocking it out on the Table-IV scenarios:
//
//   - clique ordering: compute-sorted (design) vs memory-sorted,
//     accuracy-first and unsorted cliques, on the small scenario;
//   - fractional admission: z ∈ [0,1] (design) vs all-or-nothing, on the
//     high-load large scenario;
//   - block sharing: shared catalog (design) vs task-private blocks, on
//     the medium-load large scenario;
//   - input-quality adaptation: the Q_τ ladder of the full formulation vs
//     the single Table-IV level, on the low-load large scenario.
func runAblation(Options) ([]Table, error) {
	ordering, err := ablateOrdering()
	if err != nil {
		return nil, err
	}
	admission, err := ablateAdmission()
	if err != nil {
		return nil, err
	}
	sharing, err := ablateSharing()
	if err != nil {
		return nil, err
	}
	quality, err := ablateQuality()
	if err != nil {
		return nil, err
	}
	return []Table{ordering, admission, sharing, quality}, nil
}

func ablateOrdering() (Table, error) {
	in, err := workload.SmallScenario(5)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   "Ablation — clique ordering (small scenario, T=5)",
		Columns: []string{"ordering", "DOT cost", "inference usage", "training [s]", "memory [GB]"},
		Notes: []string{
			"compute-sorted cliques (the design) minimize inference usage under the first-branch rule",
		},
	}
	for _, order := range []core.CliqueOrder{core.OrderCompute, core.OrderMemory, core.OrderAccuracy, core.OrderNone} {
		sol, err := core.SolveOffloaDNNConfigured(in, core.HeuristicConfig{Order: order})
		if err != nil {
			return Table{}, fmt.Errorf("ordering %v: %w", order, err)
		}
		if err := in.Check(sol.Assignments); err != nil {
			return Table{}, fmt.Errorf("ordering %v: %w", order, err)
		}
		t.Rows = append(t.Rows, []string{
			order.String(),
			f(sol.Cost),
			f(sol.Breakdown.ComputeUsage / in.Res.ComputeSeconds),
			fmt.Sprintf("%.0f", sol.Breakdown.TrainSeconds),
			f2(sol.Breakdown.MemoryGB),
		})
	}
	return t, nil
}

func ablateAdmission() (Table, error) {
	in, err := workload.LargeScenario(workload.LoadHigh)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   "Ablation — fractional vs binary admission (large scenario, high load)",
		Columns: []string{"admission", "weighted admission", "admitted tasks", "RBs used", "DOT cost"},
		Notes: []string{
			"fractional z is what lets OffloaDNN serve the diminishing-ratio band of Fig. 9",
		},
	}
	for _, binary := range []bool{false, true} {
		sol, err := core.SolveOffloaDNNConfigured(in, core.HeuristicConfig{BinaryAdmission: binary})
		if err != nil {
			return Table{}, err
		}
		if err := in.Check(sol.Assignments); err != nil {
			return Table{}, err
		}
		name := "fractional (design)"
		if binary {
			name = "binary (all-or-nothing)"
		}
		t.Rows = append(t.Rows, []string{
			name,
			f2(sol.Breakdown.WeightedAdmission),
			fmt.Sprintf("%d", sol.Breakdown.AdmittedTasks),
			f1(sol.Breakdown.RBsAllocated),
			f(sol.Cost),
		})
	}
	return t, nil
}

func ablateSharing() (Table, error) {
	in, err := workload.LargeScenario(workload.LoadMedium)
	if err != nil {
		return Table{}, err
	}
	t := Table{
		Title:   "Ablation — block sharing (large scenario, medium load)",
		Columns: []string{"catalog", "memory [GB]", "training [s]", "admitted tasks"},
		Notes: []string{
			"privatizing every block (no sharing) is what SEM-O-RAN effectively does; sharing is",
			"the source of the ~80% memory saving",
		},
	}
	shared, err := core.SolveOffloaDNN(in)
	if err != nil {
		return Table{}, err
	}
	priv := core.PrivatizeBlocks(in)
	unshared, err := core.SolveOffloaDNN(priv)
	if err != nil {
		return Table{}, err
	}
	t.Rows = append(t.Rows,
		[]string{"shared blocks (design)", f2(shared.Breakdown.MemoryGB),
			fmt.Sprintf("%.0f", shared.Breakdown.TrainSeconds),
			fmt.Sprintf("%d", shared.Breakdown.AdmittedTasks)},
		[]string{"task-private blocks", f2(unshared.Breakdown.MemoryGB),
			fmt.Sprintf("%.0f", unshared.Breakdown.TrainSeconds),
			fmt.Sprintf("%d", unshared.Breakdown.AdmittedTasks)},
	)
	return t, nil
}

func ablateQuality() (Table, error) {
	single, err := workload.LargeScenario(workload.LoadLow)
	if err != nil {
		return Table{}, err
	}
	ladder, err := workload.LargeScenario(workload.LoadLow)
	if err != nil {
		return Table{}, err
	}
	for i := range ladder.Tasks {
		ladder.Tasks[i].Qualities = []core.QualityLevel{
			{ID: "q720", Bits: 230e3, AccuracyDelta: 0.01},
			{ID: "q480", Bits: 150e3, AccuracyDelta: 0.04},
		}
	}
	t := Table{
		Title:   "Ablation — input-quality adaptation (large scenario, low load)",
		Columns: []string{"quality levels", "RBs used", "weighted admission", "DOT cost"},
		Notes: []string{
			"the full DOT formulation's Q_τ ladder recovers the paper's extra RB savings that the",
			"single-β Table-IV setting leaves on the table",
		},
	}
	for _, tc := range []struct {
		name string
		in   *core.Instance
	}{
		{"single β (Table IV)", single},
		{"3-level ladder", ladder},
	} {
		sol, err := core.SolveOffloaDNN(tc.in)
		if err != nil {
			return Table{}, err
		}
		if err := tc.in.Check(sol.Assignments); err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{
			tc.name,
			f1(sol.Breakdown.RBsAllocated),
			f2(sol.Breakdown.WeightedAdmission),
			f(sol.Cost),
		})
	}
	return t, nil
}
