package experiments

import (
	"fmt"
	"time"

	"offloadnn/internal/edge"
	"offloadnn/internal/metrics"
	"offloadnn/internal/workload"
)

func runFig11(opt Options) ([]Table, error) {
	in, err := workload.SmallScenario(5)
	if err != nil {
		return nil, err
	}
	// The Colosseum validation uses the full 20 MHz cell: 100 RBs.
	res := in.Res
	res.RBs = 100
	controller := edge.NewController(res)
	dep, err := controller.Admit(in.Tasks, in.Blocks, in.Alpha)
	if err != nil {
		return nil, err
	}
	cfg := edge.DefaultEmulatorConfig()
	if opt.Workers > 0 {
		cfg.Workers = opt.Workers
	}
	em, err := edge.NewEmulator(in, dep, cfg)
	if err != nil {
		return nil, err
	}
	run, err := em.Run()
	if err != nil {
		return nil, err
	}

	// Time series: per-task mean of the 3-sample moving average in 2 s
	// buckets — the series Fig. 11 plots.
	series := Table{
		Title:   "Fig. 11 — end-to-end latency [s] over time (moving average, window 3)",
		Columns: []string{"t [s]"},
		Notes:   []string{"paper shape: every task's trace stays below its latency target throughout the run"},
	}
	const bucket = 2 * time.Second
	nBuckets := 10
	perBucket := make([][]string, nBuckets)
	for b := range perBucket {
		perBucket[b] = []string{fmt.Sprintf("%d", (b+1)*2)}
	}
	summary := Table{
		Title:   "Fig. 11 (summary) — per-task latency vs target",
		Columns: []string{"task", "target [s]", "mean [s]", "p95 [s]", "max [s]", "samples", "violations"},
	}
	for _, tr := range run.Traces {
		if len(tr.Samples) == 0 {
			continue
		}
		series.Columns = append(series.Columns, tr.TaskID)
		lats := make([]float64, len(tr.Samples))
		for i, s := range tr.Samples {
			lats[i] = s.Latency.Seconds()
		}
		ma := metrics.MovingAverage(lats, 3)
		for b := 0; b < nBuckets; b++ {
			lo := time.Duration(b) * bucket
			hi := lo + bucket
			sum, n := 0.0, 0
			for i, s := range tr.Samples {
				if s.At >= lo && s.At < hi {
					sum += ma[i]
					n++
				}
			}
			if n > 0 {
				perBucket[b] = append(perBucket[b], f(sum/float64(n)))
			} else {
				perBucket[b] = append(perBucket[b], "-")
			}
		}
		s, err := metrics.Summarize(lats)
		if err != nil {
			return nil, err
		}
		p95, err := metrics.Percentile(lats, 95)
		if err != nil {
			return nil, err
		}
		summary.Rows = append(summary.Rows, []string{
			tr.TaskID,
			f2(tr.Target.Seconds()),
			f(s.Mean),
			f(p95),
			f(s.Max),
			fmt.Sprintf("%d", len(tr.Samples)),
			fmt.Sprintf("%d", tr.Violations),
		})
	}
	series.Rows = perBucket
	return []Table{series, summary}, nil
}
