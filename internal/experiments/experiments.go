// Package experiments contains one driver per table and figure of the
// paper's evaluation. Each driver regenerates the corresponding artifact
// — the same rows or series the paper reports — from this repository's
// implementations, and renders it as fixed-width text tables.
//
// Index (see DESIGN.md §4): fig2 (training configs), fig3 (pruning
// effects), fig6 (solver runtime), fig7 (DOT cost and memory vs optimum),
// fig8 (cost breakdown vs optimum), fig9 (large-scale per-task admission),
// fig10 (large-scale comparison vs SEM-O-RAN), headline (§V-A aggregate
// numbers), fig11 (emulated end-to-end latency), table1 and table2 (the
// configuration and dataset catalogs).
package experiments

import (
	"encoding/csv"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Table is a rendered experiment artifact.
type Table struct {
	// Title identifies the artifact (e.g., "Fig. 6 — solver runtime").
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows are the data cells, already formatted.
	Rows [][]string
	// Notes carry paper-vs-measured commentary.
	Notes []string
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	if _, err := fmt.Fprintf(w, "== %s ==\n", t.Title); err != nil {
		return err
	}
	writeRow := func(cells []string) error {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			if i < len(widths) {
				parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
			} else {
				parts[i] = cell
			}
		}
		_, err := fmt.Fprintln(w, "  "+strings.TrimRight(strings.Join(parts, "  "), " "))
		return err
	}
	if err := writeRow(t.Columns); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if err := writeRow(sep); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := writeRow(row); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// RenderCSV writes the table as CSV (header row first). Notes are not
// included — CSV output targets plotting tools.
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// SlugTitle derives a filesystem-friendly name from the table title.
func (t *Table) SlugTitle() string {
	var sb strings.Builder
	lastDash := false
	for _, r := range strings.ToLower(t.Title) {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			sb.WriteRune(r)
			lastDash = false
		default:
			if !lastDash && sb.Len() > 0 {
				sb.WriteByte('-')
				lastDash = true
			}
		}
	}
	return strings.Trim(sb.String(), "-")
}

// Options tune experiment execution.
type Options struct {
	// Quick skips the slowest steps (the exhaustive optimum at T = 5 and
	// long training sweeps) so the whole suite runs in seconds.
	Quick bool
	// Workers sets the tensor parallelism for the compute-time
	// characterizations (fig3 profiling and the fig11 emulator). Zero keeps
	// the single-worker measurement the calibrated tables were built from.
	Workers int
}

// Experiment is one reproducible artifact generator.
type Experiment struct {
	// ID is the CLI name (e.g., "fig6").
	ID string
	// Name is the descriptive title.
	Name string
	// Run produces the artifact tables.
	Run func(Options) ([]Table, error)
}

// All returns every experiment in presentation order.
func All() []Experiment {
	return []Experiment{
		{ID: "table1", Name: "Table I — DNN block configurations", Run: runTable1},
		{ID: "table2", Name: "Table II — base dataset description", Run: runTable2},
		{ID: "fig2", Name: "Fig. 2 — training configurations: accuracy curves and GPU memory", Run: runFig2},
		{ID: "fig2-real", Name: "Fig. 2 (mechanism) — real scaled-down training comparison", Run: runFig2Real},
		{ID: "fig3", Name: "Fig. 3 — pruning: inference compute time and class accuracy", Run: runFig3},
		{ID: "fig6", Name: "Fig. 6 — solver runtime, optimum vs OffloaDNN", Run: runFig6},
		{ID: "fig7", Name: "Fig. 7 — normalized DOT cost and memory vs optimum", Run: runFig7},
		{ID: "fig8", Name: "Fig. 8 — cost breakdown vs optimum (4 panels)", Run: runFig8},
		{ID: "fig9", Name: "Fig. 9 — large-scale per-task admission ratios", Run: runFig9},
		{ID: "fig10", Name: "Fig. 10 — large-scale comparison vs SEM-O-RAN (4 panels)", Run: runFig10},
		{ID: "headline", Name: "§V-A — aggregate DOT/training costs and headline gains", Run: runHeadline},
		{ID: "fig11", Name: "Fig. 11 — emulated end-to-end latency vs targets", Run: runFig11},
		{ID: "ablation", Name: "Ablation — OffloaDNN design choices knocked out one at a time", Run: runAblation},
		{ID: "ext-hetero", Name: "Extension — heterogeneous DNN-family catalog (ResNet + lite)", Run: runHetero},
		{ID: "ext-dynamic", Name: "Extension — dynamic incremental admission (Sec. III-B)", Run: runDynamic},
	}
}

// ByID finds an experiment.
func ByID(id string) (Experiment, error) {
	for _, e := range All() {
		if e.ID == id {
			return e, nil
		}
	}
	ids := make([]string, 0, len(All()))
	for _, e := range All() {
		ids = append(ids, e.ID)
	}
	sort.Strings(ids)
	return Experiment{}, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(ids, ", "))
}

// f formats a float compactly.
func f(v float64) string { return fmt.Sprintf("%.3f", v) }

// f2 formats with two decimals.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

// f1 formats with one decimal.
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
