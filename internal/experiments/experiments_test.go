package experiments

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"offloadnn/internal/workload"
)

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, e := range All() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			tables, err := e.Run(Options{Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			if len(tables) == 0 {
				t.Fatalf("%s produced no tables", e.ID)
			}
			var buf bytes.Buffer
			for i := range tables {
				if err := tables[i].Render(&buf); err != nil {
					t.Fatal(err)
				}
				if len(tables[i].Rows) == 0 {
					t.Fatalf("%s table %q has no rows", e.ID, tables[i].Title)
				}
			}
			if buf.Len() == 0 {
				t.Fatalf("%s rendered nothing", e.ID)
			}
		})
	}
}

func TestByID(t *testing.T) {
	e, err := ByID("fig6")
	if err != nil {
		t.Fatal(err)
	}
	if e.ID != "fig6" {
		t.Fatalf("got %q", e.ID)
	}
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestRenderAlignment(t *testing.T) {
	tab := Table{
		Title:   "demo",
		Columns: []string{"a", "long-header"},
		Rows:    [][]string{{"xxxxxx", "1"}},
		Notes:   []string{"a note"},
	}
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== demo ==", "long-header", "xxxxxx", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered output missing %q:\n%s", want, out)
		}
	}
}

func TestFig6RuntimeGrowth(t *testing.T) {
	runs, err := runSmallScale(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Branch count must grow ~exponentially with T.
	for i := 1; i < len(runs); i++ {
		if runs[i].branches <= runs[i-1].branches {
			t.Fatalf("branches did not grow: T=%d has %d, T=%d has %d",
				runs[i-1].tasks, runs[i-1].branches, runs[i].tasks, runs[i].branches)
		}
	}
	// The heuristic is far faster than the optimum once the tree is
	// non-trivial.
	last := runs[len(runs)-1]
	if last.optimal.Runtime < 10*last.heuristic.Runtime {
		t.Fatalf("optimum %v not >=10x heuristic %v at T=4", last.optimal.Runtime, last.heuristic.Runtime)
	}
}

func TestFig7HeuristicNearOptimal(t *testing.T) {
	runs, err := runSmallScale(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		if r.optimal == nil {
			continue
		}
		if r.heuristic.Cost < r.optimal.Cost-1e-9 {
			t.Fatalf("T=%d: heuristic %v beat the optimum %v", r.tasks, r.heuristic.Cost, r.optimal.Cost)
		}
		gap := (r.heuristic.Cost - r.optimal.Cost) / r.optimal.Cost
		if gap > 0.15 {
			t.Fatalf("T=%d: heuristic gap %.1f%% too large", r.tasks, gap*100)
		}
	}
}

func TestFig8BreakdownShapes(t *testing.T) {
	runs, err := runSmallScale(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		h, o := r.heuristic.Breakdown, r.optimal.Breakdown
		// Paper: same weighted admission and RBs as the optimum.
		if h.WeightedAdmission < o.WeightedAdmission-1e-6 {
			t.Fatalf("T=%d: admission %v below optimum %v", r.tasks, h.WeightedAdmission, o.WeightedAdmission)
		}
		// Paper: heuristic training cost ≥ optimum; inference compute ≤.
		if h.TrainSeconds < o.TrainSeconds-1e-6 {
			t.Fatalf("T=%d: heuristic train %v below optimum %v (unexpected)", r.tasks, h.TrainSeconds, o.TrainSeconds)
		}
		if h.ComputeUsage > o.ComputeUsage+1e-9 {
			t.Fatalf("T=%d: heuristic inference compute %v above optimum %v", r.tasks, h.ComputeUsage, o.ComputeUsage)
		}
	}
}

func TestFig9AdmissionShapes(t *testing.T) {
	runs, err := runLargeScale()
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 3 {
		t.Fatalf("%d load levels, want 3", len(runs))
	}
	low, _, high := runs[0], runs[1], runs[2]
	// Low load: every task fully admitted by OffloaDNN.
	for i, a := range low.offloaDNN.Assignments {
		if a.Z < 0.999 {
			t.Fatalf("low load: task %d admitted z=%v, want 1", i+1, a.Z)
		}
	}
	// High load: admission is non-increasing in task index (priority
	// order), with a fractional band.
	prev := 2.0
	fractional := 0
	for i, a := range high.offloaDNN.Assignments {
		if a.Z > prev+1e-9 {
			t.Fatalf("high load: admission not monotone at task %d (%v after %v)", i+1, a.Z, prev)
		}
		if a.Z > 0.001 && a.Z < 0.999 {
			fractional++
		}
		prev = a.Z
	}
	if fractional == 0 {
		t.Fatal("high load: no diminishing-ratio band (paper shows one)")
	}
	// SEM-O-RAN is binary everywhere.
	for _, r := range runs {
		for _, d := range r.semORAN.Decisions {
			_ = d.Admitted // nothing fractional exists by type
		}
		if r.semORAN.AdmittedTasks >= low.offloaDNN.Breakdown.AdmittedTasks &&
			r.load == workload.LoadLow {
			t.Fatalf("SEM-O-RAN admitted %d at low load, not below OffloaDNN's %d",
				r.semORAN.AdmittedTasks, low.offloaDNN.Breakdown.AdmittedTasks)
		}
	}
}

func TestHeadlineGainsInPaperBand(t *testing.T) {
	runs, err := runLargeScale()
	if err != nil {
		t.Fatal(err)
	}
	var admO, admS, memO, memS, compO, compS float64
	for _, r := range runs {
		admO += float64(r.offloaDNN.Breakdown.AdmittedTasks)
		admS += float64(r.semORAN.AdmittedTasks)
		memO += r.offloaDNN.Breakdown.MemoryGB
		memS += r.semORAN.MemoryGB
		compO += r.offloaDNN.Breakdown.ComputeUsage
		compS += r.semORAN.ComputeUsage
	}
	admGain := (admO/admS - 1) * 100
	memSave := (1 - memO/memS) * 100
	compSave := (1 - compO/compS) * 100
	// Paper: +26.9% admissions, −82.5% memory, −77.3% compute. Accept a
	// generous band around each (the substrate differs).
	if admGain < 10 || admGain > 60 {
		t.Fatalf("admission gain %.1f%% outside [10,60] band (paper 26.9%%)", admGain)
	}
	if memSave < 70 || memSave > 95 {
		t.Fatalf("memory savings %.1f%% outside [70,95] band (paper 82.5%%)", memSave)
	}
	if compSave < 55 || compSave > 90 {
		t.Fatalf("compute savings %.1f%% outside [55,90] band (paper 77.3%%)", compSave)
	}
}

func TestHeadlineCostOrdering(t *testing.T) {
	runs, err := runLargeScale()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: DOT cost rises with the load; training usage is equal at
	// low/medium and lower at high (fewer active blocks).
	if !(runs[0].offloaDNN.Cost < runs[1].offloaDNN.Cost &&
		runs[1].offloaDNN.Cost < runs[2].offloaDNN.Cost) {
		t.Fatalf("DOT cost not increasing with load: %v %v %v",
			runs[0].offloaDNN.Cost, runs[1].offloaDNN.Cost, runs[2].offloaDNN.Cost)
	}
	if runs[2].offloaDNN.Breakdown.TrainSeconds >= runs[0].offloaDNN.Breakdown.TrainSeconds {
		t.Fatalf("training usage at high load (%v) not below low load (%v)",
			runs[2].offloaDNN.Breakdown.TrainSeconds, runs[0].offloaDNN.Breakdown.TrainSeconds)
	}
}

func TestFig11TracesUnderTargets(t *testing.T) {
	tables, err := runFig11(Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The summary table's violations column must be all zeros.
	summary := tables[1]
	for _, row := range summary.Rows {
		v, err := strconv.Atoi(row[len(row)-1])
		if err != nil {
			t.Fatal(err)
		}
		if v != 0 {
			t.Fatalf("task %s reports %d latency violations", row[0], v)
		}
		samples, err := strconv.Atoi(row[len(row)-2])
		if err != nil {
			t.Fatal(err)
		}
		if samples < 50 {
			t.Fatalf("task %s served only %d samples", row[0], samples)
		}
	}
}

func TestRenderCSV(t *testing.T) {
	tab := Table{
		Title:   "Fig. X — demo, with (punctuation)!",
		Columns: []string{"a", "b"},
		Rows:    [][]string{{"1", "two, three"}},
	}
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	if !strings.Contains(got, "a,b\n") {
		t.Fatalf("missing header: %q", got)
	}
	if !strings.Contains(got, `"two, three"`) {
		t.Fatalf("comma cell not quoted: %q", got)
	}
	if slug := tab.SlugTitle(); slug != "fig-x-demo-with-punctuation" {
		t.Fatalf("slug = %q", slug)
	}
}

func TestAblationShapes(t *testing.T) {
	tables, err := runAblation(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 4 {
		t.Fatalf("%d ablation tables, want 4", len(tables))
	}
	// Ordering ablation: the compute row (first) must have the lowest
	// inference usage column (index 2).
	ordering := tables[0]
	base, err := strconv.ParseFloat(ordering.Rows[0][2], 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range ordering.Rows[1:] {
		v, err := strconv.ParseFloat(row[2], 64)
		if err != nil {
			t.Fatal(err)
		}
		if base > v+1e-9 {
			t.Fatalf("compute ordering (%v) not minimal vs %s (%v)", base, row[0], v)
		}
	}
	// Sharing ablation: private blocks use more memory.
	sharing := tables[2]
	sharedMem, _ := strconv.ParseFloat(sharing.Rows[0][1], 64)
	privateMem, _ := strconv.ParseFloat(sharing.Rows[1][1], 64)
	if privateMem <= sharedMem {
		t.Fatalf("private memory %v not above shared %v", privateMem, sharedMem)
	}
	// Quality ablation: the ladder saves RBs.
	quality := tables[3]
	singleRB, _ := strconv.ParseFloat(quality.Rows[0][1], 64)
	ladderRB, _ := strconv.ParseFloat(quality.Rows[1][1], 64)
	if ladderRB >= singleRB {
		t.Fatalf("quality ladder RBs %v not below single-β %v", ladderRB, singleRB)
	}
}

func TestDynamicWavesReuseBlocks(t *testing.T) {
	tables, err := runDynamic(Options{})
	if err != nil {
		t.Fatal(err)
	}
	rows := tables[0].Rows
	if len(rows) != 3 {
		t.Fatalf("%d waves, want 3", len(rows))
	}
	// Later waves must reuse at least one earlier-deployed block for free.
	for _, row := range rows[1:] {
		reused, err := strconv.Atoi(row[len(row)-1])
		if err != nil {
			t.Fatal(err)
		}
		if reused == 0 {
			t.Fatalf("wave %s reused no deployed blocks", row[0])
		}
	}
}
