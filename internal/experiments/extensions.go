package experiments

import (
	"fmt"
	"strings"

	"offloadnn/internal/core"
	"offloadnn/internal/workload"
)

// runHetero is the two-family extension: the large scenario served by a
// catalog mixing ResNet-18-derived blocks with a MobileNetV2-class "lite"
// family. OffloaDNN migrates accuracy-relaxed tasks onto lite blocks,
// cutting compute and memory further than the single-family Table-IV
// catalog; accuracy-hungry tasks stay on ResNet paths.
func runHetero(Options) ([]Table, error) {
	t := Table{
		Title: "Extension — heterogeneous DNN families (large scenario): ResNet-only vs ResNet+lite catalog",
		Columns: []string{"load", "catalog", "admitted", "memory [GB]", "compute [s/s]",
			"lite paths used"},
		Notes: []string{
			"the lite family (MobileNetV2-class: ~60% less compute, ~3 points lower accuracy ceiling)",
			"clears every Table-IV accuracy floor (max 0.785), so all tasks migrate to it and memory/",
			"compute drop ~3x further; floors above ~0.85 (small-scenario task 1) pin tasks to ResNet",
		},
	}
	for _, load := range []workload.Load{workload.LoadLow, workload.LoadMedium, workload.LoadHigh} {
		single, err := workload.LargeScenario(load)
		if err != nil {
			return nil, err
		}
		hetero, err := workload.HeterogeneousScenario(load)
		if err != nil {
			return nil, err
		}
		for _, tc := range []struct {
			name string
			in   *core.Instance
		}{
			{"resnet-only", single},
			{"resnet+lite", hetero},
		} {
			sol, err := core.SolveOffloaDNN(tc.in)
			if err != nil {
				return nil, fmt.Errorf("hetero %v/%s: %w", load, tc.name, err)
			}
			if err := tc.in.Check(sol.Assignments); err != nil {
				return nil, fmt.Errorf("hetero %v/%s: %w", load, tc.name, err)
			}
			lite := 0
			for _, a := range sol.Assignments {
				if a.Admitted() && strings.HasPrefix(a.Path.DNN, "lite-") {
					lite++
				}
			}
			t.Rows = append(t.Rows, []string{
				load.String(),
				tc.name,
				fmt.Sprintf("%d", sol.Breakdown.AdmittedTasks),
				f2(sol.Breakdown.MemoryGB),
				f(sol.Breakdown.ComputeUsage),
				fmt.Sprintf("%d", lite),
			})
		}
	}
	return []Table{t}, nil
}

// runDynamic exercises the Sec. III-B incremental scenario over arrival
// waves: each round admits newly arrived tasks against the capacities
// left by earlier rounds, with already-deployed blocks free. The reported
// memory increments shrink as the shared backbone amortizes.
func runDynamic(Options) ([]Table, error) {
	full, err := workload.LargeScenario(workload.LoadLow)
	if err != nil {
		return nil, err
	}
	waves := [][]int{{0, 1, 2, 3, 4, 5}, {6, 7, 8, 9, 10, 11, 12}, {13, 14, 15, 16, 17, 18, 19}}

	t := Table{
		Title: "Extension — dynamic incremental admission (Sec. III-B), low-load large scenario",
		Columns: []string{"wave", "arriving", "admitted", "+memory [GB]", "+training [s]",
			"+RBs", "blocks reused free"},
		Notes: []string{
			"already-deployed blocks cost zero memory/training in later rounds; the controller",
			"only pays the increment — the remark at the end of Sec. III-B",
		},
	}

	res := full.Res
	deployed := make(map[string]bool)
	for wi, wave := range waves {
		in := &core.Instance{
			Blocks:      full.Blocks,
			Res:         res,
			Alpha:       full.Alpha,
			Predeployed: deployed,
		}
		for _, ti := range wave {
			in.Tasks = append(in.Tasks, full.Tasks[ti])
		}
		sol, err := core.SolveOffloaDNN(in)
		if err != nil {
			return nil, fmt.Errorf("wave %d: %w", wi+1, err)
		}
		if err := in.Check(sol.Assignments); err != nil {
			return nil, fmt.Errorf("wave %d: %w", wi+1, err)
		}
		reused := 0
		for _, id := range sol.Breakdown.ActiveBlocks {
			if deployed[id] {
				reused++
			}
		}
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d", wi+1),
			fmt.Sprintf("%d", len(wave)),
			fmt.Sprintf("%d", sol.Breakdown.AdmittedTasks),
			f2(sol.Breakdown.MemoryGB),
			fmt.Sprintf("%.0f", sol.Breakdown.TrainSeconds),
			f1(sol.Breakdown.RBsAllocated),
			fmt.Sprintf("%d", reused),
		})
		// Commit the round: discount capacities, mark blocks deployed.
		res.MemoryGB -= sol.Breakdown.MemoryGB
		res.ComputeSeconds -= sol.Breakdown.ComputeUsage
		res.RBs -= int(sol.Breakdown.RBsAllocated + 0.5)
		next := make(map[string]bool, len(deployed)+len(sol.Breakdown.ActiveBlocks))
		for id := range deployed {
			next[id] = true
		}
		for _, id := range sol.Breakdown.ActiveBlocks {
			next[id] = true
		}
		deployed = next
	}
	return []Table{t}, nil
}
