package experiments

import (
	"fmt"

	"offloadnn/internal/core"
	"offloadnn/internal/semoran"
	"offloadnn/internal/workload"
)

// largeRun is one load level's outcome for both systems.
type largeRun struct {
	load      workload.Load
	instance  *core.Instance
	offloaDNN *core.Solution
	semORAN   *semoran.Report
}

func runLargeScale() ([]largeRun, error) {
	loads := []workload.Load{workload.LoadLow, workload.LoadMedium, workload.LoadHigh}
	runs := make([]largeRun, 0, len(loads))
	for _, load := range loads {
		in, err := workload.LargeScenario(load)
		if err != nil {
			return nil, err
		}
		sol, err := core.SolveOffloaDNN(in)
		if err != nil {
			return nil, fmt.Errorf("load %v: OffloaDNN: %w", load, err)
		}
		if err := in.Check(sol.Assignments); err != nil {
			return nil, fmt.Errorf("load %v: OffloaDNN infeasible: %w", load, err)
		}
		rep, err := semoran.Solve(in, semoran.DefaultConfig())
		if err != nil {
			return nil, fmt.Errorf("load %v: SEM-O-RAN: %w", load, err)
		}
		if err := semoran.Check(in, rep); err != nil {
			return nil, fmt.Errorf("load %v: SEM-O-RAN infeasible: %w", load, err)
		}
		runs = append(runs, largeRun{load: load, instance: in, offloaDNN: sol, semORAN: rep})
	}
	return runs, nil
}

func runFig9(Options) ([]Table, error) {
	runs, err := runLargeScale()
	if err != nil {
		return nil, err
	}
	top := Table{
		Title:   "Fig. 9 (top) — OffloaDNN per-task admission ratio",
		Columns: []string{"task"},
		Notes: []string{
			"paper shape, low: all 20 tasks at ratio 1; medium: 19 at 1 plus the lowest-priority partial;",
			"high: top-priority tasks at 1, a diminishing-ratio band, lowest tasks rejected (RB saturation)",
		},
	}
	bottom := Table{
		Title:   "Fig. 9 (bottom) — SEM-O-RAN per-task admission (binary)",
		Columns: []string{"task"},
		Notes:   []string{"paper shape: 16 of 20 admitted at low/medium, 13 at high; all-or-nothing"},
	}
	for _, r := range runs {
		top.Columns = append(top.Columns, r.load.String())
		bottom.Columns = append(bottom.Columns, r.load.String())
	}
	nTasks := len(runs[0].instance.Tasks)
	for ti := 0; ti < nTasks; ti++ {
		rowT := []string{fmt.Sprintf("%d", ti+1)}
		rowB := []string{fmt.Sprintf("%d", ti+1)}
		for _, r := range runs {
			rowT = append(rowT, f2(r.offloaDNN.Assignments[ti].Z))
			z := 0.0
			if r.semORAN.Decisions[ti].Admitted {
				z = 1
			}
			rowB = append(rowB, f2(z))
		}
		top.Rows = append(top.Rows, rowT)
		bottom.Rows = append(bottom.Rows, rowB)
	}
	return []Table{top, bottom}, nil
}

func runFig10(Options) ([]Table, error) {
	runs, err := runLargeScale()
	if err != nil {
		return nil, err
	}
	panels := []struct {
		title string
		note  string
		offl  func(largeRun) float64
		sem   func(largeRun) float64
	}{
		{
			title: "Fig. 10 (left) — weighted tasks admission ratio",
			note:  "paper shape: both decrease with load; OffloaDNN always above SEM-O-RAN",
			offl:  func(r largeRun) float64 { return r.offloaDNN.Breakdown.WeightedAdmission },
			sem:   func(r largeRun) float64 { return r.semORAN.WeightedAdmission },
		},
		{
			title: "Fig. 10 (center-left) — normalized no. of RBs allocated",
			note:  "paper shape: both approach saturation as the load grows",
			offl:  func(r largeRun) float64 { return r.offloaDNN.Breakdown.RBsAllocated / 100 },
			sem:   func(r largeRun) float64 { return r.semORAN.RBsAllocated / 100 },
		},
		{
			title: "Fig. 10 (center-right) — normalized total required memory",
			note: "paper shape: OffloaDNN far below SEM-O-RAN (block sharing among 20 tasks); " +
				"constant at low/medium, lower at high (rejected tasks deactivate blocks)",
			offl: func(r largeRun) float64 { return r.offloaDNN.Breakdown.MemoryGB / 16 },
			sem:  func(r largeRun) float64 { return r.semORAN.MemoryGB / 16 },
		},
		{
			title: "Fig. 10 (right) — total inference compute usage (normalized to C)",
			note:  "paper shape: grows with load for both; OffloaDNN substantially lower",
			offl:  func(r largeRun) float64 { return r.offloaDNN.Breakdown.ComputeUsage / 10 },
			sem:   func(r largeRun) float64 { return r.semORAN.ComputeUsage / 10 },
		},
	}
	out := make([]Table, 0, len(panels))
	for _, p := range panels {
		t := Table{
			Title:   p.title,
			Columns: []string{"load", "OffloaDNN", "SEM-O-RAN"},
			Notes:   []string{p.note},
		}
		for _, r := range runs {
			t.Rows = append(t.Rows, []string{r.load.String(), f(p.offl(r)), f(p.sem(r))})
		}
		out = append(out, t)
	}
	return out, nil
}

func runHeadline(Options) ([]Table, error) {
	runs, err := runLargeScale()
	if err != nil {
		return nil, err
	}
	costs := Table{
		Title:   "§V-A — total DOT cost and training compute usage under OffloaDNN",
		Columns: []string{"load", "DOT cost", "training usage (Σct/Ct)"},
		Notes: []string{
			"paper values: DOT cost [0.35, 0.44, 0.74]; training usage [0.81, 0.81, 0.67] for low/medium/high",
		},
	}
	var admO, admS, memO, memS, compO, compS, rbO, rbS float64
	for _, r := range runs {
		costs.Rows = append(costs.Rows, []string{
			r.load.String(),
			f(r.offloaDNN.Cost),
			f(r.offloaDNN.Breakdown.TrainSeconds / 1000),
		})
		admO += float64(r.offloaDNN.Breakdown.AdmittedTasks)
		admS += float64(r.semORAN.AdmittedTasks)
		memO += r.offloaDNN.Breakdown.MemoryGB
		memS += r.semORAN.MemoryGB
		compO += r.offloaDNN.Breakdown.ComputeUsage
		compS += r.semORAN.ComputeUsage
		rbO += r.offloaDNN.Breakdown.RBsAllocated
		rbS += r.semORAN.RBsAllocated
	}
	gains := Table{
		Title:   "§V-A — headline gains of OffloaDNN over SEM-O-RAN (average across loads)",
		Columns: []string{"metric", "OffloaDNN", "SEM-O-RAN", "gain"},
		Notes: []string{
			"paper: +26.9% admitted tasks, −82.5% memory, −77.3% inference compute, −4.4% radio resources",
		},
	}
	gains.Rows = append(gains.Rows,
		[]string{"admitted tasks (sum over loads)", f1(admO), f1(admS),
			fmt.Sprintf("+%.1f%%", (admO/admS-1)*100)},
		[]string{"memory [GB] (mean)", f2(memO / 3), f2(memS / 3),
			fmt.Sprintf("-%.1f%%", (1-memO/memS)*100)},
		[]string{"inference compute [s/s] (mean)", f(compO / 3), f(compS / 3),
			fmt.Sprintf("-%.1f%%", (1-compO/compS)*100)},
		[]string{"RBs allocated (mean)", f1(rbO / 3), f1(rbS / 3),
			fmt.Sprintf("%+.1f%%", (rbO/rbS-1)*100)},
	)
	return []Table{costs, gains}, nil
}
