package experiments

import (
	"fmt"
	"time"

	"offloadnn/internal/dataset"
	"offloadnn/internal/dnn"
	"offloadnn/internal/profile"
	"offloadnn/internal/train"
)

func runTable1(Options) ([]Table, error) {
	t := Table{
		Title:   "Table I — DNN block configurations (ResNet)",
		Columns: []string{"name", "shared stages", "pruned", "description"},
	}
	for _, c := range dnn.TableI() {
		pruned := "no"
		if c.PruneRatio > 0 {
			pruned = fmt.Sprintf("%.0f%%", c.PruneRatio*100)
		}
		t.Rows = append(t.Rows, []string{
			"CONFIG " + c.Name,
			fmt.Sprintf("%d", c.SharedStages),
			pruned,
			c.Description,
		})
	}
	return []Table{t}, nil
}

func runTable2(Options) ([]Table, error) {
	t := Table{
		Title:   "Table II — base dataset description (60 categories)",
		Columns: []string{"group", "categories"},
	}
	counts := map[string]int{}
	order := []string{}
	for _, c := range dataset.BaseCategories() {
		if counts[c.Group] == 0 {
			order = append(order, c.Group)
		}
		counts[c.Group]++
	}
	total := 0
	for _, g := range order {
		t.Rows = append(t.Rows, []string{g, fmt.Sprintf("%d", counts[g])})
		total += counts[g]
	}
	t.Rows = append(t.Rows, []string{"total", fmt.Sprintf("%d", total)})
	return []Table{t}, nil
}

func runFig2(Options) ([]Table, error) {
	configs := []string{"A", "B", "C", "D", "E"}
	curves := Table{
		Title:   "Fig. 2 (left) — testing accuracy [%] vs training epoch (calibrated ResNet-18 scale)",
		Columns: []string{"epoch", "A", "B", "C", "D", "E"},
		Notes: []string{
			"paper shape: A needs >200 epochs to 80% but ends highest after 250+;",
			"B and C converge to 80% fastest, then overfit; D and E converge slower than C",
		},
	}
	epochs := []int{1, 25, 50, 100, 150, 200, 250}
	params := make(map[string]train.ConvergenceParams, len(configs))
	for _, c := range configs {
		p, err := train.PaperConvergence(c)
		if err != nil {
			return nil, err
		}
		params[c] = p
	}
	for _, e := range epochs {
		row := []string{fmt.Sprintf("%d", e)}
		for _, c := range configs {
			row = append(row, f1(params[c].Accuracy(float64(e))))
		}
		curves.Rows = append(curves.Rows, row)
	}
	reach := Table{
		Title:   "Fig. 2 (left, derived) — epochs to reach 80% testing accuracy",
		Columns: []string{"config", "epochs to 80%"},
	}
	for _, c := range configs {
		e := params[c].EpochsToReach(80, 400)
		cell := fmt.Sprintf("%d", e)
		if e < 0 {
			cell = ">400"
		}
		reach.Rows = append(reach.Rows, []string{"CONFIG " + c, cell})
	}

	mem := Table{
		Title:   "Fig. 2 (right) — peak GPU memory occupancy [MiB] during training",
		Columns: []string{"config", "peak MiB", "vs CONFIG A"},
		Notes:   []string{"paper shape: CONFIG B/C ≈ 1.8x less than baseline CONFIG A"},
	}
	stats := dnn.ResNet18Stats(64, 224, 61, [4]float64{})
	mm := train.DefaultMemoryModel()
	var baseline float64
	for _, c := range configs {
		cfg, err := dnn.ConfigByName(c)
		if err != nil {
			return nil, err
		}
		mib := mm.PeakMiB(stats, cfg)
		if c == "A" {
			baseline = mib
		}
		mem.Rows = append(mem.Rows, []string{
			"CONFIG " + c,
			fmt.Sprintf("%.0f", mib),
			fmt.Sprintf("%.2fx less", baseline/mib),
		})
	}
	return []Table{curves, reach, mem}, nil
}

// runFig2Real demonstrates the Fig. 2 mechanism with *real* training on the
// scaled-down engine: a base model is pre-trained on a subset of the
// Table-II categories, then each configuration fine-tunes toward a novel
// "mushroom" class. The measured facts carried to paper scale by the
// calibrated curves are (i) shared configs train far fewer parameters and
// (ii) they reach useful accuracy in fewer epochs than training from
// scratch.
func runFig2Real(opt Options) ([]Table, error) {
	gen := dataset.Generator{ImageSize: 8, Noise: 0.2}
	baseCats := dataset.BaseCategories()[:6]
	novel := dataset.NovelCategory(baseCats, "mushroom", "grocery")
	allCats := append(append([]dataset.Category{}, baseCats...), novel)

	pretrainEpochs, tuneEpochs, perClass := 10, 8, 12
	if opt.Quick {
		pretrainEpochs, tuneEpochs, perClass = 4, 3, 6
	}

	// Pre-train the base backbone on the base categories.
	base := dnn.BuildResNet18(dnn.ResNetConfig{
		InChannels: 3, NumClasses: len(baseCats), BaseWidth: 6,
		StageBlocks: [4]int{1, 1, 1, 1}, Seed: 11,
	})
	baseSplit := dataset.Generate(gen, baseCats, perClass, 4, 21)
	tr, err := train.NewTrainer(base, train.NewAdam(0.01, 1e-4),
		train.CosineAnnealing{Base: 0.01, Min: 1e-4, Total: pretrainEpochs}, 16, 31)
	if err != nil {
		return nil, err
	}
	for e := 0; e < pretrainEpochs; e++ {
		if _, err := tr.TrainEpoch(baseSplit); err != nil {
			return nil, err
		}
	}

	tuneSplit := dataset.Generate(gen, allCats, perClass, 4, 22)
	t := Table{
		Title: "Fig. 2 (mechanism) — real scaled-down fine-tuning toward a novel class",
		Columns: []string{"config", "trainable params", "of total %", "loss after tuning",
			"test acc %", "novel-class acc %"},
		Notes: []string{
			"measured on the real engine (8x8 images, width-6 ResNet); shows the mechanism behind",
			"the calibrated Fig. 2 curves: sharing trains far fewer parameters at comparable accuracy",
		},
	}
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		cfg, err := dnn.ConfigByName(name)
		if err != nil {
			return nil, err
		}
		m, err := dnn.BuildConfigModel(base, cfg, "mushroom", len(allCats), 41)
		if err != nil {
			return nil, err
		}
		tt, err := train.NewTrainer(m, train.NewAdam(0.01, 1e-4),
			train.CosineAnnealing{Base: 0.01, Min: 1e-4, Total: tuneEpochs}, 16, 51)
		if err != nil {
			return nil, err
		}
		loss := 0.0
		for e := 0; e < tuneEpochs; e++ {
			if loss, err = tt.TrainEpoch(tuneSplit); err != nil {
				return nil, err
			}
		}
		acc, err := train.EvaluateModel(m, tuneSplit)
		if err != nil {
			return nil, err
		}
		novelAcc, err := train.EvaluateClass(m, tuneSplit, novel.ID)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"CONFIG " + name,
			fmt.Sprintf("%d", m.TrainableParamCount()),
			f1(float64(m.TrainableParamCount()) / float64(m.ParamCount()) * 100),
			f(loss),
			f1(acc * 100),
			f1(novelAcc * 100),
		})
	}
	return []Table{t}, nil
}

func runFig3(opt Options) ([]Table, error) {
	// Build the base backbone once; each configuration derives from it.
	base := dnn.BuildResNet18(dnn.ResNetConfig{
		InChannels: 3, NumClasses: 61, BaseWidth: 16,
		StageBlocks: [4]int{2, 2, 2, 2}, Seed: 13,
	})
	prof := profile.Profiler{ImageSize: 16, Repeats: 9, Warmup: 2, Workers: opt.Workers}

	type measured struct {
		name    string
		compute time.Duration
		params  int
	}
	var rows []measured
	for _, name := range []string{"A", "B", "C", "D", "E",
		"A-pruned", "B-pruned", "C-pruned", "D-pruned", "E-pruned"} {
		cfg, err := dnn.ConfigByName(name)
		if err != nil {
			return nil, err
		}
		m, err := dnn.BuildConfigModel(base, cfg, "guitar", 62, 43)
		if err != nil {
			return nil, err
		}
		if m, err = dnn.ApplyConfigPruning(m, cfg, 44); err != nil {
			return nil, err
		}
		costs, err := prof.ProfileModel(m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, measured{
			name:    name,
			compute: profile.TotalCompute(costs),
			params:  m.ParamCount(),
		})
	}
	// Calibrate the measured times so the unpruned CONFIG A lands at the
	// paper's ~8.7 ms GPU inference time.
	var baseA time.Duration
	for _, r := range rows {
		if r.name == "A" {
			baseA = r.compute
		}
	}
	scale := 8.7 / (float64(baseA) / float64(time.Millisecond))

	left := Table{
		Title: "Fig. 3 (left) — inference compute time [ms], dummy-tensor timing " +
			"(measured on the real engine, calibrated to CONFIG A = 8.7 ms)",
		Columns: []string{"config", "w/o pruning [ms]", "pruned [ms]", "params w/o", "params pruned"},
		Notes: []string{
			"paper shape: pruned < unpruned everywhere; A-pruned fastest (everything pruned);",
			"B-pruned slowest of the pruned set (4 shared unpruned blocks), then C, D, E decreasing",
		},
	}
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		var full, pruned measured
		for _, r := range rows {
			if r.name == name {
				full = r
			}
			if r.name == name+"-pruned" {
				pruned = r
			}
		}
		left.Rows = append(left.Rows, []string{
			"CONFIG " + name,
			f2(float64(full.compute) / float64(time.Millisecond) * scale),
			f2(float64(pruned.compute) / float64(time.Millisecond) * scale),
			fmt.Sprintf("%d", full.params),
			fmt.Sprintf("%d", pruned.params),
		})
	}

	right := Table{
		Title:   "Fig. 3 (right) — average class accuracy [%] for \"electric guitar\" (calibrated)",
		Columns: []string{"config", "w/o pruning", "pruned"},
		Notes: []string{
			"paper shape: pruning costs every config a few points; CONFIG B retains the most",
			"accuracy after pruning (most blocks inherited unpruned from the base model)",
		},
	}
	for _, name := range []string{"A", "B", "C", "D", "E"} {
		full, err := train.PaperClassAccuracy(name)
		if err != nil {
			return nil, err
		}
		pruned, err := train.PaperClassAccuracy(name + "-pruned")
		if err != nil {
			return nil, err
		}
		right.Rows = append(right.Rows, []string{"CONFIG " + name, f1(full), f1(pruned)})
	}
	return []Table{left, right}, nil
}
