package experiments

import (
	"fmt"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/workload"
)

// smallRun is one (T, solver) outcome of the small-scale scenario.
type smallRun struct {
	tasks     int
	heuristic *core.Solution
	optimal   *core.Solution
	branches  int
}

// runSmallScale solves the small scenario for T = 1..maxOptimal with both
// solvers, and heuristic-only beyond.
func runSmallScale(maxT, maxOptimal int) ([]smallRun, error) {
	runs := make([]smallRun, 0, maxT)
	for tasks := 1; tasks <= maxT; tasks++ {
		in, err := workload.SmallScenario(tasks)
		if err != nil {
			return nil, err
		}
		h, err := core.SolveOffloaDNN(in)
		if err != nil {
			return nil, fmt.Errorf("T=%d heuristic: %w", tasks, err)
		}
		if err := in.Check(h.Assignments); err != nil {
			return nil, fmt.Errorf("T=%d heuristic infeasible: %w", tasks, err)
		}
		run := smallRun{tasks: tasks, heuristic: h}
		if tasks <= maxOptimal {
			o, stats, err := core.SolveOptimal(in)
			if err != nil {
				return nil, fmt.Errorf("T=%d optimal: %w", tasks, err)
			}
			if err := in.Check(o.Assignments); err != nil {
				return nil, fmt.Errorf("T=%d optimal infeasible: %w", tasks, err)
			}
			run.optimal = o
			run.branches = stats.BranchesExplored
		}
		runs = append(runs, run)
	}
	return runs, nil
}

func optimalCap(opt Options) int {
	if opt.Quick {
		return 3
	}
	return 5
}

func runFig6(opt Options) ([]Table, error) {
	runs, err := runSmallScale(5, optimalCap(opt))
	if err != nil {
		return nil, err
	}
	t := Table{
		Title:   "Fig. 6 — average runtime [s] of the optimum vs OffloaDNN, small scenario",
		Columns: []string{"T", "OffloaDNN [s]", "Optimum [s]", "speedup", "branches"},
		Notes: []string{
			"paper shape: optimum runtime grows ~exponentially (1 s → 100 s); OffloaDNN stays >10x faster from T=2",
		},
	}
	for _, r := range runs {
		row := []string{
			fmt.Sprintf("%d", r.tasks),
			fmt.Sprintf("%.6f", r.heuristic.Runtime.Seconds()),
		}
		if r.optimal != nil {
			row = append(row,
				fmt.Sprintf("%.4f", r.optimal.Runtime.Seconds()),
				f1(float64(r.optimal.Runtime)/float64(r.heuristic.Runtime)),
				fmt.Sprintf("%d", r.branches),
			)
		} else {
			row = append(row, "(skipped: -quick)", "", "")
		}
		t.Rows = append(t.Rows, row)
	}
	return []Table{t}, nil
}

func runFig7(opt Options) ([]Table, error) {
	runs, err := runSmallScale(5, optimalCap(opt))
	if err != nil {
		return nil, err
	}
	// Normalize costs and memory to the largest value observed, matching
	// the paper's normalized axes.
	maxCost, maxMem := 0.0, 0.0
	for _, r := range runs {
		for _, s := range []*core.Solution{r.heuristic, r.optimal} {
			if s == nil {
				continue
			}
			if s.Cost > maxCost {
				maxCost = s.Cost
			}
			if s.Breakdown.MemoryGB > maxMem {
				maxMem = s.Breakdown.MemoryGB
			}
		}
	}
	cost := Table{
		Title:   "Fig. 7 (left) — normalized DOT cost",
		Columns: []string{"T", "OffloaDNN", "Optimum", "gap %"},
		Notes:   []string{"paper shape: OffloaDNN matches the optimum very closely (negligible cost increase)"},
	}
	mem := Table{
		Title:   "Fig. 7 (right) — normalized total required memory",
		Columns: []string{"T", "OffloaDNN", "Optimum", "OffloaDNN GB", "budget use %"},
		Notes:   []string{"paper shape: memory stays well below the quota M (paper: at most 64% of 8 GB)"},
	}
	for _, r := range runs {
		hRow := []string{fmt.Sprintf("%d", r.tasks), f(r.heuristic.Cost / maxCost)}
		mRow := []string{fmt.Sprintf("%d", r.tasks), f(r.heuristic.Breakdown.MemoryGB / maxMem)}
		if r.optimal != nil {
			gap := 0.0
			if r.optimal.Cost > 0 {
				gap = (r.heuristic.Cost - r.optimal.Cost) / r.optimal.Cost * 100
			}
			hRow = append(hRow, f(r.optimal.Cost/maxCost), f2(gap))
			mRow = append(mRow, f(r.optimal.Breakdown.MemoryGB/maxMem))
		} else {
			hRow = append(hRow, "-", "-")
			mRow = append(mRow, "-")
		}
		mRow = append(mRow,
			f2(r.heuristic.Breakdown.MemoryGB),
			f1(r.heuristic.Breakdown.MemoryGB/8*100))
		cost.Rows = append(cost.Rows, hRow)
		mem.Rows = append(mem.Rows, mRow)
	}
	return []Table{cost, mem}, nil
}

func runFig8(opt Options) ([]Table, error) {
	runs, err := runSmallScale(5, optimalCap(opt))
	if err != nil {
		return nil, err
	}
	panels := []struct {
		title string
		note  string
		get   func(*core.Solution) float64
	}{
		{
			title: "Fig. 8 (left) — weighted tasks admission ratio",
			note:  "paper shape: OffloaDNN equals the optimum (all tasks fully admitted)",
			get:   func(s *core.Solution) float64 { return s.Breakdown.WeightedAdmission },
		},
		{
			title: "Fig. 8 (center-left) — normalized no. of RBs allocated",
			note:  "paper shape: OffloaDNN performs as well as the optimum",
			get:   func(s *core.Solution) float64 { return s.Breakdown.RBsAllocated / 50 },
		},
		{
			title: "Fig. 8 (center-right) — total training compute usage (Σct/Ct)",
			note:  "paper shape: OffloaDNN slightly above the optimum (the source of its small cost gap)",
			get:   func(s *core.Solution) float64 { return s.Breakdown.TrainSeconds / 1000 },
		},
		{
			title: "Fig. 8 (right) — total inference compute usage (normalized to C)",
			note:  "paper shape: OffloaDNN *below* the optimum, thanks to compute-sorted cliques + first branch",
			get:   func(s *core.Solution) float64 { return s.Breakdown.ComputeUsage / 2.5 },
		},
	}
	out := make([]Table, 0, len(panels))
	for _, p := range panels {
		t := Table{
			Title:   p.title,
			Columns: []string{"T", "OffloaDNN", "Optimum"},
			Notes:   []string{p.note},
		}
		for _, r := range runs {
			row := []string{fmt.Sprintf("%d", r.tasks), f(p.get(r.heuristic))}
			if r.optimal != nil {
				row = append(row, f(p.get(r.optimal)))
			} else {
				row = append(row, "-")
			}
			t.Rows = append(t.Rows, row)
		}
		out = append(out, t)
	}
	return out, nil
}

// ensure time is referenced (runtime fields).
var _ = time.Second
