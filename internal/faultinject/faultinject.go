// Package faultinject provides named failure points for chaos-testing
// the serving stack. A failure point is a string naming a site and a
// failure mode ("solver.error", "solver.panic", "solver.hang",
// "deploy.error"); production code calls Hit at each site through a
// possibly-nil *Injector, so the disarmed path costs a nil check and
// nothing else. Tests and the `edgeserve -fault` flag arm points with
// count- and probability-based triggers.
package faultinject

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Failure points wired into the serving stack. The suffix encodes the
// failure mode (see ModeOf); the prefix names the site.
const (
	// PointSolverError makes the resolver's solve step return an error
	// (a counted solve failure; the last-good epoch keeps serving).
	PointSolverError = "solver.error"
	// PointSolverPanic panics inside the resolver's solve step,
	// exercising the panic-isolation path.
	PointSolverPanic = "solver.panic"
	// PointSolverHang stalls the solve step until the rule's HangFor
	// elapses or the solve context is done (Config.SolveTimeout or
	// shutdown), exercising the deadline path.
	PointSolverHang = "solver.hang"
	// PointDeployError fails the controller's deploy step after a
	// successful solve.
	PointDeployError = "deploy.error"
	// PointExecSlow stalls the execution backend's batch executor for the
	// rule's HangFor before each fired forward pass (then proceeds),
	// modeling a slow accelerator — the deterministic way to provoke
	// deadline misses in the deadline-aware runtime.
	PointExecSlow = "exec.slow"
	// PointExecHang blocks the batch executor until the rule's HangFor
	// elapses or the backend closes, modeling a wedged forward pass.
	PointExecHang = "exec.hang"
)

// ErrInjected is the sentinel wrapped by every error-mode fire.
var ErrInjected = errors.New("faultinject: injected fault")

// Mode is what firing a point does to the caller.
type Mode int

const (
	// ModeError returns a wrapped ErrInjected.
	ModeError Mode = iota
	// ModePanic panics with the point name.
	ModePanic
	// ModeHang blocks until HangFor elapses (then returns nil, modeling
	// a slow call) or the context is done (returning ctx.Err()).
	ModeHang
	// ModeSlow sleeps HangFor unconditionally and returns nil — a slow
	// call that always completes. Unlike ModeHang it ignores the context:
	// the stall is the point, and it is bounded by the rule itself.
	ModeSlow
)

// ModeOf derives a point's failure mode from its name suffix: ".panic"
// panics, ".hang" stalls until ctx/HangFor, ".slow" sleeps HangFor,
// anything else returns an error.
func ModeOf(point string) Mode {
	switch {
	case strings.HasSuffix(point, ".panic"):
		return ModePanic
	case strings.HasSuffix(point, ".hang"):
		return ModeHang
	case strings.HasSuffix(point, ".slow"):
		return ModeSlow
	}
	return ModeError
}

// Rule says when an armed point fires. The count and probability
// triggers compose: a hit fires when either matches, until Count total
// fires have happened.
type Rule struct {
	// EveryN fires on every Nth hit of the point (1 = every hit).
	// Zero disables the count trigger.
	EveryN int
	// P fires with independent probability P on each hit.
	P float64
	// Count caps the total number of fires; zero means unlimited.
	Count int
	// HangFor bounds a hang point's stall; zero hangs until the site's
	// context is done. Ignored by error and panic points.
	HangFor time.Duration
}

type pointState struct {
	rule  Rule
	hits  uint64
	fires uint64
}

// Injector holds the armed failure points. The zero of *Injector (nil)
// is a valid, permanently disarmed injector: every Hit on it returns
// nil, which is how production code wires points without a build tag.
type Injector struct {
	mu     sync.Mutex
	rng    *rand.Rand
	points map[string]*pointState
}

// New creates an injector whose probability draws use the given seed,
// so chaos runs are reproducible.
func New(seed int64) *Injector {
	return &Injector{
		rng:    rand.New(rand.NewSource(seed)),
		points: make(map[string]*pointState),
	}
}

// Set arms (or re-arms, resetting counters) a point with a rule.
func (i *Injector) Set(point string, r Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.points[point] = &pointState{rule: r}
}

// Clear disarms a point. Its hit/fire counts are discarded.
func (i *Injector) Clear(point string) {
	i.mu.Lock()
	defer i.mu.Unlock()
	delete(i.points, point)
}

// Hits returns how many times the point was evaluated.
func (i *Injector) Hits(point string) uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if st, ok := i.points[point]; ok {
		return st.hits
	}
	return 0
}

// Fires returns how many times the point actually fired.
func (i *Injector) Fires(point string) uint64 {
	if i == nil {
		return 0
	}
	i.mu.Lock()
	defer i.mu.Unlock()
	if st, ok := i.points[point]; ok {
		return st.fires
	}
	return 0
}

// Hit evaluates a failure point and enacts its verdict. A nil injector,
// unarmed point, or non-firing hit returns nil. Error points return a
// wrapped ErrInjected; panic points panic; hang points block per their
// rule. ctx bounds hangs only — pass the context governing the site's
// work (a hang with a Background context and no HangFor blocks until
// process exit, which is exactly the failure being modeled).
func (i *Injector) Hit(ctx context.Context, point string) error {
	if i == nil {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	i.mu.Lock()
	st, ok := i.points[point]
	if !ok {
		i.mu.Unlock()
		return nil
	}
	st.hits++
	fire := false
	if st.rule.Count == 0 || st.fires < uint64(st.rule.Count) {
		if st.rule.EveryN > 0 && st.hits%uint64(st.rule.EveryN) == 0 {
			fire = true
		}
		if !fire && st.rule.P > 0 && i.rng.Float64() < st.rule.P {
			fire = true
		}
	}
	if fire {
		st.fires++
	}
	hangFor := st.rule.HangFor
	i.mu.Unlock()
	if !fire {
		return nil
	}
	switch ModeOf(point) {
	case ModePanic:
		panic(fmt.Sprintf("faultinject: %s fired", point))
	case ModeSlow:
		if hangFor > 0 {
			time.Sleep(hangFor)
		}
		return nil
	case ModeHang:
		if hangFor <= 0 {
			<-ctx.Done()
			return ctx.Err()
		}
		t := time.NewTimer(hangFor)
		defer t.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-t.C:
			return nil
		}
	default:
		return fmt.Errorf("%w: %s", ErrInjected, point)
	}
}

// ParseSpec parses one `-fault` flag value of the form
//
//	point[:key=value[,key=value...]]
//
// with keys every (int), p (float), count (int) and for (duration):
// "solver.error:p=0.3", "solver.panic:every=5,count=2",
// "solver.hang:every=3,for=2s". A bare point means every=1.
func ParseSpec(spec string) (string, Rule, error) {
	point, opts, hasOpts := strings.Cut(spec, ":")
	point = strings.TrimSpace(point)
	if point == "" {
		return "", Rule{}, fmt.Errorf("faultinject: empty point in spec %q", spec)
	}
	r := Rule{}
	if !hasOpts || strings.TrimSpace(opts) == "" {
		r.EveryN = 1
		return point, r, nil
	}
	for _, kv := range strings.Split(opts, ",") {
		key, val, ok := strings.Cut(kv, "=")
		if !ok {
			return "", Rule{}, fmt.Errorf("faultinject: option %q in spec %q is not key=value", kv, spec)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "every":
			r.EveryN, err = strconv.Atoi(val)
		case "count":
			r.Count, err = strconv.Atoi(val)
		case "p":
			r.P, err = strconv.ParseFloat(val, 64)
			if err == nil && (r.P < 0 || r.P > 1) {
				err = fmt.Errorf("probability %v outside [0,1]", r.P)
			}
		case "for":
			r.HangFor, err = time.ParseDuration(val)
		default:
			return "", Rule{}, fmt.Errorf("faultinject: unknown option %q in spec %q (want every|p|count|for)", key, spec)
		}
		if err != nil {
			return "", Rule{}, fmt.Errorf("faultinject: option %q in spec %q: %v", key, spec, err)
		}
	}
	if r.EveryN <= 0 && r.P <= 0 {
		return "", Rule{}, fmt.Errorf("faultinject: spec %q arms no trigger (set every or p)", spec)
	}
	return point, r, nil
}
