package faultinject

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilInjectorIsNoOp(t *testing.T) {
	var inj *Injector
	if err := inj.Hit(context.Background(), PointSolverError); err != nil {
		t.Fatalf("nil injector fired: %v", err)
	}
	if inj.Fires(PointSolverError) != 0 || inj.Hits(PointSolverError) != 0 {
		t.Fatal("nil injector has counters")
	}
}

func TestUnarmedPointIsNoOp(t *testing.T) {
	inj := New(1)
	for i := 0; i < 10; i++ {
		if err := inj.Hit(context.Background(), PointSolverError); err != nil {
			t.Fatalf("unarmed point fired: %v", err)
		}
	}
	if inj.Hits(PointSolverError) != 0 {
		t.Fatal("unarmed point counted hits")
	}
}

func TestEveryNAndCount(t *testing.T) {
	inj := New(1)
	inj.Set(PointSolverError, Rule{EveryN: 3, Count: 2})
	var fired []int
	for i := 1; i <= 12; i++ {
		if err := inj.Hit(context.Background(), PointSolverError); err != nil {
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: error %v does not wrap ErrInjected", i, err)
			}
			fired = append(fired, i)
		}
	}
	if len(fired) != 2 || fired[0] != 3 || fired[1] != 6 {
		t.Fatalf("fired on hits %v, want [3 6] (every 3rd, capped at 2)", fired)
	}
	if got := inj.Fires(PointSolverError); got != 2 {
		t.Fatalf("Fires = %d, want 2", got)
	}
	if got := inj.Hits(PointSolverError); got != 12 {
		t.Fatalf("Hits = %d, want 12", got)
	}
}

func TestProbabilityTriggerIsSeededAndPlausible(t *testing.T) {
	const n = 2000
	count := func(seed int64) int {
		inj := New(seed)
		inj.Set(PointSolverError, Rule{P: 0.3})
		fires := 0
		for i := 0; i < n; i++ {
			if inj.Hit(context.Background(), PointSolverError) != nil {
				fires++
			}
		}
		return fires
	}
	a, b := count(7), count(7)
	if a != b {
		t.Fatalf("same seed fired %d then %d times", a, b)
	}
	if a < n/5 || a > n/2 {
		t.Fatalf("p=0.3 fired %d of %d hits", a, n)
	}
}

func TestPanicMode(t *testing.T) {
	inj := New(1)
	inj.Set(PointSolverPanic, Rule{EveryN: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("panic point did not panic")
		}
	}()
	inj.Hit(context.Background(), PointSolverPanic)
}

func TestHangModeUnblocksOnContext(t *testing.T) {
	inj := New(1)
	inj.Set(PointSolverHang, Rule{EveryN: 1})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- inj.Hit(ctx, PointSolverHang) }()
	select {
	case err := <-done:
		t.Fatalf("hang returned %v before cancel", err)
	case <-time.After(20 * time.Millisecond):
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("hang returned %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("hang never unblocked after cancel")
	}
}

func TestHangModeBoundedStall(t *testing.T) {
	inj := New(1)
	inj.Set(PointSolverHang, Rule{EveryN: 1, HangFor: 10 * time.Millisecond})
	start := time.Now()
	if err := inj.Hit(context.Background(), PointSolverHang); err != nil {
		t.Fatalf("bounded hang returned %v, want nil", err)
	}
	if d := time.Since(start); d < 10*time.Millisecond {
		t.Fatalf("bounded hang stalled only %v", d)
	}
}

func TestSetResetsCounters(t *testing.T) {
	inj := New(1)
	inj.Set(PointSolverError, Rule{EveryN: 1, Count: 1})
	inj.Hit(context.Background(), PointSolverError)
	if inj.Hit(context.Background(), PointSolverError) != nil {
		t.Fatal("count cap not enforced")
	}
	inj.Set(PointSolverError, Rule{EveryN: 1, Count: 1})
	if inj.Hit(context.Background(), PointSolverError) == nil {
		t.Fatal("re-armed point did not fire")
	}
	inj.Clear(PointSolverError)
	if inj.Hit(context.Background(), PointSolverError) != nil {
		t.Fatal("cleared point fired")
	}
}

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec  string
		point string
		rule  Rule
		ok    bool
	}{
		{"solver.error", PointSolverError, Rule{EveryN: 1}, true},
		{"solver.error:p=0.3", PointSolverError, Rule{P: 0.3}, true},
		{"solver.panic:every=5,count=2", PointSolverPanic, Rule{EveryN: 5, Count: 2}, true},
		{"solver.hang:every=3,for=2s", PointSolverHang, Rule{EveryN: 3, HangFor: 2 * time.Second}, true},
		{"deploy.error:p=1,count=1", PointDeployError, Rule{P: 1, Count: 1}, true},
		{"", "", Rule{}, false},
		{"solver.error:p=1.5", "", Rule{}, false},
		{"solver.error:bogus=1", "", Rule{}, false},
		{"solver.error:every", "", Rule{}, false},
		{"solver.error:every=0", "", Rule{}, false},
	}
	for _, tc := range cases {
		point, rule, err := ParseSpec(tc.spec)
		if tc.ok != (err == nil) {
			t.Fatalf("ParseSpec(%q): err=%v, want ok=%v", tc.spec, err, tc.ok)
		}
		if !tc.ok {
			continue
		}
		if point != tc.point || rule != tc.rule {
			t.Fatalf("ParseSpec(%q) = %q %+v, want %q %+v", tc.spec, point, rule, tc.point, tc.rule)
		}
	}
}

func TestModeOf(t *testing.T) {
	if ModeOf(PointSolverError) != ModeError || ModeOf(PointDeployError) != ModeError {
		t.Fatal("error points misclassified")
	}
	if ModeOf(PointSolverPanic) != ModePanic {
		t.Fatal("panic point misclassified")
	}
	if ModeOf(PointSolverHang) != ModeHang {
		t.Fatal("hang point misclassified")
	}
}
