// Package lp implements a dense two-phase primal simplex solver for small
// linear programs. OffloaDNN uses it to solve the per-branch convex
// allocation problem in the admission ratios z and (relaxed) resource
// blocks r once the tree traversal has fixed the DNN paths, and the tests
// use it to cross-check the specialized allocator.
//
// Problems are stated in inequality form:
//
//	minimize cᵀx  subject to  A·x ≤ b,  x ≥ 0.
//
// Equality rows can be modeled as two opposing inequalities; variable
// upper bounds as ordinary rows. The solver uses Bland's rule, so it
// terminates on degenerate problems.
package lp

import (
	"context"
	"errors"
	"fmt"
	"math"
)

// ErrInfeasible reports that no point satisfies the constraints.
var ErrInfeasible = errors.New("lp: infeasible")

// ErrUnbounded reports that the objective decreases without bound.
var ErrUnbounded = errors.New("lp: unbounded")

// ErrBadProblem reports malformed input.
var ErrBadProblem = errors.New("lp: malformed problem")

const eps = 1e-9

// Problem is min cᵀx s.t. A·x ≤ b, x ≥ 0.
type Problem struct {
	C []float64   // length n
	A [][]float64 // m rows of length n
	B []float64   // length m
}

// Validate checks dimensional consistency.
func (p Problem) Validate() error {
	n := len(p.C)
	if n == 0 {
		return fmt.Errorf("%w: empty objective", ErrBadProblem)
	}
	if len(p.A) != len(p.B) {
		return fmt.Errorf("%w: %d constraint rows but %d bounds", ErrBadProblem, len(p.A), len(p.B))
	}
	for i, row := range p.A {
		if len(row) != n {
			return fmt.Errorf("%w: row %d has %d coefficients, want %d", ErrBadProblem, i, len(row), n)
		}
	}
	return nil
}

// Solution is an optimal vertex and its objective value.
type Solution struct {
	X   []float64
	Obj float64
}

// Solve runs the two-phase simplex method.
func Solve(p Problem) (*Solution, error) {
	return SolveCtx(context.Background(), p)
}

// ctxCheckRows is the constraint count above which the simplex checks
// the context on every pivot instead of every 64th: a pivot touches
// O(rows × cols) tableau entries, so on large problems one pivot alone
// can take a noticeable fraction of a second and the per-iteration
// check is what keeps the cancellation lag to roughly one pivot.
const ctxCheckRows = 256

// SolveCtx is Solve with cancellation checked every few pivots. Large
// problems (thousands of variables) can spend minutes inside a single
// simplex run, far longer than the gaps between the allocator's own
// context checks — this is what lets a solve deadline actually bound
// the exact tiers at scale.
func SolveCtx(ctx context.Context, p Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.C)
	m := len(p.A)

	// Columns: n structural + m slack + (artificials as needed).
	// Normalize rows to b ≥ 0; rows flipped get artificials (their slack
	// coefficient becomes -1 and cannot start basic).
	type rowT struct {
		a     []float64
		b     float64
		slack float64 // +1 or -1
	}
	rows := make([]rowT, m)
	needArt := make([]bool, m)
	for i := 0; i < m; i++ {
		a := make([]float64, n)
		copy(a, p.A[i])
		b := p.B[i]
		slack := 1.0
		if b < 0 {
			for j := range a {
				a[j] = -a[j]
			}
			b = -b
			slack = -1.0
			needArt[i] = true
		}
		rows[i] = rowT{a: a, b: b, slack: slack}
	}
	nArt := 0
	artCol := make([]int, m)
	for i := range artCol {
		artCol[i] = -1
	}
	for i := 0; i < m; i++ {
		if needArt[i] {
			artCol[i] = n + m + nArt
			nArt++
		}
	}
	ncols := n + m + nArt

	// Build tableau: t[i] = row of length ncols+1 (last = rhs).
	t := make([][]float64, m)
	basis := make([]int, m)
	for i := 0; i < m; i++ {
		t[i] = make([]float64, ncols+1)
		copy(t[i], rows[i].a)
		t[i][n+i] = rows[i].slack
		if artCol[i] >= 0 {
			t[i][artCol[i]] = 1
			basis[i] = artCol[i]
		} else {
			basis[i] = n + i
		}
		t[i][ncols] = rows[i].b
	}

	// pivot performs a standard pivot on (pr, pc).
	pivot := func(pr, pc int) {
		pv := t[pr][pc]
		for j := 0; j <= ncols; j++ {
			t[pr][j] /= pv
		}
		for i := 0; i < m; i++ {
			if i == pr {
				continue
			}
			f := t[i][pc]
			if f == 0 {
				continue
			}
			for j := 0; j <= ncols; j++ {
				t[i][j] -= f * t[pr][j]
			}
		}
		basis[pr] = pc
	}

	// runSimplex minimizes obj (length ncols cost vector) over the current
	// tableau using Bland's rule; lim restricts entering columns to < lim.
	checkEvery := 64
	if m >= ctxCheckRows {
		checkEvery = 1
	}
	runSimplex := func(obj []float64, lim int) error {
		for iter := 0; iter < 10000*(m+ncols+1); iter++ {
			if iter%checkEvery == 0 {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("lp: solve canceled: %w", err)
				}
			}
			// Reduced costs: rc_j = obj_j - Σ_i obj_{basis[i]} · t[i][j].
			entering := -1
			for j := 0; j < lim; j++ {
				rc := obj[j]
				for i := 0; i < m; i++ {
					if bj := basis[i]; bj < len(obj) && obj[bj] != 0 {
						rc -= obj[bj] * t[i][j]
					}
				}
				if rc < -eps {
					entering = j // Bland: first improving column
					break
				}
			}
			if entering < 0 {
				return nil // optimal
			}
			// Ratio test with Bland tie-breaking (smallest basis index).
			leaving := -1
			best := math.Inf(1)
			for i := 0; i < m; i++ {
				if t[i][entering] > eps {
					r := t[i][ncols] / t[i][entering]
					if r < best-eps || (r < best+eps && (leaving < 0 || basis[i] < basis[leaving])) {
						best = r
						leaving = i
					}
				}
			}
			if leaving < 0 {
				return ErrUnbounded
			}
			pivot(leaving, entering)
		}
		return fmt.Errorf("%w: simplex iteration limit", ErrBadProblem)
	}

	// Phase 1: minimize sum of artificials.
	if nArt > 0 {
		obj1 := make([]float64, ncols)
		for i := 0; i < m; i++ {
			if artCol[i] >= 0 {
				obj1[artCol[i]] = 1
			}
		}
		if err := runSimplex(obj1, ncols); err != nil {
			return nil, err
		}
		// Objective value of phase 1.
		v := 0.0
		for i := 0; i < m; i++ {
			if artCol2 := basis[i]; artCol2 >= n+m {
				v += t[i][ncols]
			}
		}
		if v > 1e-7 {
			return nil, ErrInfeasible
		}
		// Drive remaining artificials out of the basis where possible.
		for i := 0; i < m; i++ {
			if basis[i] >= n+m {
				done := false
				for j := 0; j < n+m && !done; j++ {
					if math.Abs(t[i][j]) > eps {
						pivot(i, j)
						done = true
					}
				}
				// A row with no structural pivot is redundant; its rhs is
				// ~0, leave the artificial basic at zero.
			}
		}
	}

	// Phase 2: original objective over structural + slack columns.
	obj2 := make([]float64, ncols)
	copy(obj2, p.C)
	if err := runSimplex(obj2, n+m); err != nil {
		return nil, err
	}

	x := make([]float64, n)
	for i := 0; i < m; i++ {
		if basis[i] < n {
			x[basis[i]] = t[i][ncols]
		}
	}
	obj := 0.0
	for j := 0; j < n; j++ {
		obj += p.C[j] * x[j]
	}
	return &Solution{X: x, Obj: obj}, nil
}
