package lp

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func solveOK(t *testing.T, p Problem) *Solution {
	t.Helper()
	s, err := Solve(p)
	if err != nil {
		t.Fatalf("Solve: %v", err)
	}
	return s
}

func TestSolveSimpleMax(t *testing.T) {
	// max x+y s.t. x≤2, y≤3 → min -(x+y), optimum -(5) at (2,3).
	p := Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 0}, {0, 1}},
		B: []float64{2, 3},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj+5) > 1e-9 {
		t.Fatalf("obj = %v, want -5", s.Obj)
	}
	if math.Abs(s.X[0]-2) > 1e-9 || math.Abs(s.X[1]-3) > 1e-9 {
		t.Fatalf("x = %v, want (2,3)", s.X)
	}
}

func TestSolveClassicDiet(t *testing.T) {
	// min 3x+2y s.t. x+y ≥ 4, x+3y ≥ 6 (as ≤ with negated rows), x,y ≥ 0.
	// Optimum: vertices (4,0):12, (3,1):11, (0,4):8 → check (0,4)... wait
	// x+3y≥6 at (0,4): 12 ≥ 6 ok, x+y=4 ok → obj 8. But (0,2) infeasible.
	p := Problem{
		C: []float64{3, 2},
		A: [][]float64{{-1, -1}, {-1, -3}},
		B: []float64{-4, -6},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj-8) > 1e-7 {
		t.Fatalf("obj = %v, want 8 at (0,4); x = %v", s.Obj, s.X)
	}
}

func TestSolveEqualityViaTwoRows(t *testing.T) {
	// min x+2y s.t. x+y = 1 → optimum 1 at (1,0).
	p := Problem{
		C: []float64{1, 2},
		A: [][]float64{{1, 1}, {-1, -1}},
		B: []float64{1, -1},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj-1) > 1e-7 {
		t.Fatalf("obj = %v, want 1; x = %v", s.Obj, s.X)
	}
	if math.Abs(s.X[0]+s.X[1]-1) > 1e-7 {
		t.Fatalf("equality violated: %v", s.X)
	}
}

func TestSolveInfeasible(t *testing.T) {
	// x ≤ 1 and x ≥ 2.
	p := Problem{
		C: []float64{1},
		A: [][]float64{{1}, {-1}},
		B: []float64{1, -2},
	}
	if _, err := Solve(p); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

func TestSolveUnbounded(t *testing.T) {
	// min -x with no upper bound on x.
	p := Problem{
		C: []float64{-1},
		A: [][]float64{{-1}},
		B: []float64{0},
	}
	if _, err := Solve(p); !errors.Is(err, ErrUnbounded) {
		t.Fatalf("err = %v, want ErrUnbounded", err)
	}
}

func TestSolveDegenerate(t *testing.T) {
	// Degenerate vertex at origin; Bland's rule must terminate.
	p := Problem{
		C: []float64{-1, -1},
		A: [][]float64{{1, 1}, {1, 1}, {1, 0}},
		B: []float64{1, 1, 1},
	}
	s := solveOK(t, p)
	if math.Abs(s.Obj+1) > 1e-7 {
		t.Fatalf("obj = %v, want -1", s.Obj)
	}
}

func TestValidate(t *testing.T) {
	if _, err := Solve(Problem{}); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("empty problem err = %v", err)
	}
	p := Problem{C: []float64{1}, A: [][]float64{{1, 2}}, B: []float64{1}}
	if _, err := Solve(p); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("ragged rows err = %v", err)
	}
	p2 := Problem{C: []float64{1}, A: [][]float64{{1}}, B: []float64{}}
	if _, err := Solve(p2); !errors.Is(err, ErrBadProblem) {
		t.Fatalf("missing bounds err = %v", err)
	}
}

// bruteForceBoxLP evaluates a box-constrained LP min cᵀx, 0 ≤ x_j ≤ u_j by
// checking the sign of each coefficient (separable optimum).
func bruteForceBoxLP(c, u []float64) float64 {
	obj := 0.0
	for j := range c {
		if c[j] < 0 {
			obj += c[j] * u[j]
		}
	}
	return obj
}

// Property: on separable box problems the simplex matches the analytic
// optimum.
func TestQuickBoxProblems(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		c := make([]float64, n)
		u := make([]float64, n)
		a := make([][]float64, n)
		for j := 0; j < n; j++ {
			c[j] = rng.NormFloat64()
			u[j] = rng.Float64()*5 + 0.1
			row := make([]float64, n)
			row[j] = 1
			a[j] = row
		}
		s, err := Solve(Problem{C: c, A: a, B: u})
		if err != nil {
			return false
		}
		want := bruteForceBoxLP(c, u)
		return math.Abs(s.Obj-want) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: returned solutions are always primal feasible.
func TestQuickFeasibilityOfSolutions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(4)
		m := 1 + rng.Intn(5)
		p := Problem{C: make([]float64, n), A: make([][]float64, m), B: make([]float64, m)}
		for j := 0; j < n; j++ {
			p.C[j] = rng.NormFloat64()
		}
		for i := 0; i < m; i++ {
			row := make([]float64, n)
			for j := 0; j < n; j++ {
				row[j] = rng.NormFloat64()
			}
			p.A[i] = row
			p.B[i] = rng.Float64() * 3 // non-negative keeps origin feasible
		}
		// Bound the feasible region to avoid unboundedness.
		for j := 0; j < n; j++ {
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, 10)
		}
		s, err := Solve(p)
		if err != nil {
			return false // origin is feasible and region bounded: must solve
		}
		for i, row := range p.A {
			lhs := 0.0
			for j := range row {
				lhs += row[j] * s.X[j]
			}
			if lhs > p.B[i]+1e-6 {
				return false
			}
		}
		for _, v := range s.X {
			if v < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: the simplex optimum is no worse than any random feasible point
// (local optimality spot check standing in for strong duality).
func TestQuickOptimalityAgainstRandomPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(3)
		p := Problem{C: make([]float64, n)}
		for j := 0; j < n; j++ {
			p.C[j] = rng.NormFloat64()
			row := make([]float64, n)
			row[j] = 1
			p.A = append(p.A, row)
			p.B = append(p.B, rng.Float64()*4+0.5)
		}
		// One coupling constraint.
		row := make([]float64, n)
		for j := 0; j < n; j++ {
			row[j] = rng.Float64()
		}
		p.A = append(p.A, row)
		p.B = append(p.B, rng.Float64()*4+0.5)

		s, err := Solve(p)
		if err != nil {
			return false
		}
		for trial := 0; trial < 50; trial++ {
			x := make([]float64, n)
			for j := 0; j < n; j++ {
				x[j] = rng.Float64() * p.B[j]
			}
			feasible := true
			for i, r := range p.A {
				lhs := 0.0
				for j := range r {
					lhs += r[j] * x[j]
				}
				if lhs > p.B[i] {
					feasible = false
					break
				}
			}
			if !feasible {
				continue
			}
			obj := 0.0
			for j := 0; j < n; j++ {
				obj += p.C[j] * x[j]
			}
			if obj < s.Obj-1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
