// Package metrics provides the small statistics helpers used by the
// experiment harness: summaries, percentiles and moving averages.
package metrics

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty reports a statistic requested over no data.
var ErrEmpty = errors.New("metrics: empty data")

// Summary holds basic descriptive statistics.
type Summary struct {
	Count  int
	Mean   float64
	Min    float64
	Max    float64
	StdDev float64
}

// Summarize computes a Summary over xs.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	sum := 0.0
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	if len(xs) > 1 {
		sq := 0.0
		for _, x := range xs {
			d := x - s.Mean
			sq += d * d
		}
		s.StdDev = math.Sqrt(sq / float64(len(xs)-1))
	}
	return s, nil
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) of xs using
// nearest-rank interpolation.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("metrics: percentile out of [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if p == 0 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted))
	idx := int(math.Ceil(rank)) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx], nil
}

// MovingAverage returns the k-sample trailing moving average of xs (the
// smoothing Fig. 11 applies with window 3). The output has the same
// length; the first k−1 entries average the available prefix.
func MovingAverage(xs []float64, k int) []float64 {
	if k < 1 {
		k = 1
	}
	out := make([]float64, len(xs))
	sum := 0.0
	for i, x := range xs {
		sum += x
		if i >= k {
			sum -= xs[i-k]
		}
		n := k
		if i+1 < k {
			n = i + 1
		}
		out[i] = sum / float64(n)
	}
	return out
}
