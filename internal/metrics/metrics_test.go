package metrics

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSummarizeKnownValues(t *testing.T) {
	s, err := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 8 || s.Mean != 5 || s.Min != 2 || s.Max != 9 {
		t.Fatalf("summary %+v", s)
	}
	// Sample stddev of this classic set is sqrt(32/7).
	if math.Abs(s.StdDev-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev %v", s.StdDev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{5, 1, 3, 2, 4}
	p50, err := Percentile(xs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if p50 != 3 {
		t.Fatalf("p50 = %v, want 3", p50)
	}
	p0, _ := Percentile(xs, 0)
	p100, _ := Percentile(xs, 100)
	if p0 != 1 || p100 != 5 {
		t.Fatalf("p0 = %v, p100 = %v", p0, p100)
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("percentile > 100 should error")
	}
	if _, err := Percentile(nil, 50); !errors.Is(err, ErrEmpty) {
		t.Fatalf("err = %v, want ErrEmpty", err)
	}
	// Input must not be mutated.
	if xs[0] != 5 {
		t.Fatal("Percentile sorted its input in place")
	}
}

func TestMovingAverageWindow3(t *testing.T) {
	got := MovingAverage([]float64{3, 6, 9, 12}, 3)
	want := []float64{3, 4.5, 6, 9}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("ma[%d] = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestMovingAverageDegenerateWindows(t *testing.T) {
	xs := []float64{1, 2, 3}
	got := MovingAverage(xs, 0) // clamped to 1: identity
	for i := range xs {
		if got[i] != xs[i] {
			t.Fatalf("window-1 ma changed data: %v", got)
		}
	}
	if len(MovingAverage(nil, 3)) != 0 {
		t.Fatal("empty input should give empty output")
	}
}

// Property: the moving average is bounded by the window min and max.
func TestQuickMovingAverageBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		k := 1 + rng.Intn(6)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 10
		}
		ma := MovingAverage(xs, k)
		for i := range ma {
			lo, hi := math.Inf(1), math.Inf(-1)
			start := i - k + 1
			if start < 0 {
				start = 0
			}
			for j := start; j <= i; j++ {
				lo = math.Min(lo, xs[j])
				hi = math.Max(hi, xs[j])
			}
			if ma[i] < lo-1e-9 || ma[i] > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
