package metrics

import (
	"errors"
	"math"
	"sort"
	"sync"
)

// Window is a fixed-capacity ring buffer over the most recent samples,
// supporting streaming percentile queries — the live latency quantiles
// (p50/p95/p99) the serving daemon exports while requests keep arriving.
// Older samples fall out as new ones are added. It is safe for concurrent
// use.
type Window struct {
	mu   sync.Mutex
	buf  []float64
	next int
	full bool
}

// NewWindow creates a window keeping the last `capacity` samples.
// Capacities below 1 are clamped to 1.
func NewWindow(capacity int) *Window {
	if capacity < 1 {
		capacity = 1
	}
	return &Window{buf: make([]float64, capacity)}
}

// Add records one sample, evicting the oldest when the window is full.
func (w *Window) Add(x float64) {
	w.mu.Lock()
	w.buf[w.next] = x
	w.next++
	if w.next == len(w.buf) {
		w.next = 0
		w.full = true
	}
	w.mu.Unlock()
}

// Len returns the number of samples currently held (≤ capacity).
func (w *Window) Len() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.len()
}

func (w *Window) len() int {
	if w.full {
		return len(w.buf)
	}
	return w.next
}

// Snapshot copies out the held samples, oldest first.
func (w *Window) Snapshot() []float64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	n := w.len()
	out := make([]float64, 0, n)
	if w.full {
		out = append(out, w.buf[w.next:]...)
	}
	out = append(out, w.buf[:w.next]...)
	return out
}

// Percentile returns the p-th percentile (0 ≤ p ≤ 100) over the window,
// or ErrEmpty when no sample has been recorded yet.
func (w *Window) Percentile(p float64) (float64, error) {
	return Percentile(w.Snapshot(), p)
}

// Quantiles evaluates several percentiles over one consistent snapshot
// of the window (a single sort), returning them in the order requested.
func (w *Window) Quantiles(ps ...float64) ([]float64, error) {
	xs := w.Snapshot()
	if len(xs) == 0 {
		return nil, ErrEmpty
	}
	sort.Float64s(xs)
	out := make([]float64, len(ps))
	for i, p := range ps {
		if p < 0 || p > 100 {
			return nil, errors.New("metrics: percentile out of [0,100]")
		}
		idx := 0
		if p > 0 {
			idx = int(math.Ceil(p/100*float64(len(xs)))) - 1
			if idx < 0 {
				idx = 0
			}
			if idx >= len(xs) {
				idx = len(xs) - 1
			}
		}
		out[i] = xs[idx]
	}
	return out, nil
}

// Summary computes descriptive statistics over the window, or ErrEmpty
// when no sample has been recorded yet.
func (w *Window) Summary() (Summary, error) {
	return Summarize(w.Snapshot())
}
