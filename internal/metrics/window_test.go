package metrics

import (
	"errors"
	"sync"
	"testing"
)

func TestWindowEmpty(t *testing.T) {
	w := NewWindow(8)
	if w.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", w.Len())
	}
	if _, err := w.Percentile(50); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Percentile on empty window: err = %v, want ErrEmpty", err)
	}
	if _, err := w.Quantiles(50, 95); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Quantiles on empty window: err = %v, want ErrEmpty", err)
	}
	if _, err := w.Summary(); !errors.Is(err, ErrEmpty) {
		t.Fatalf("Summary on empty window: err = %v, want ErrEmpty", err)
	}
	if got := w.Snapshot(); len(got) != 0 {
		t.Fatalf("Snapshot() = %v, want empty", got)
	}
}

func TestWindowSingleSample(t *testing.T) {
	w := NewWindow(8)
	w.Add(3.5)
	if w.Len() != 1 {
		t.Fatalf("Len() = %d, want 1", w.Len())
	}
	for _, p := range []float64{0, 50, 95, 100} {
		v, err := w.Percentile(p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", p, err)
		}
		if v != 3.5 {
			t.Fatalf("Percentile(%v) = %v, want 3.5", p, v)
		}
	}
	s, err := w.Summary()
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 1 || s.Mean != 3.5 || s.Min != 3.5 || s.Max != 3.5 {
		t.Fatalf("Summary = %+v", s)
	}
}

func TestWindowEviction(t *testing.T) {
	w := NewWindow(4)
	for i := 1; i <= 6; i++ {
		w.Add(float64(i))
	}
	if w.Len() != 4 {
		t.Fatalf("Len() = %d, want 4", w.Len())
	}
	got := w.Snapshot()
	want := []float64{3, 4, 5, 6}
	if len(got) != len(want) {
		t.Fatalf("Snapshot() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Snapshot() = %v, want %v (oldest first)", got, want)
		}
	}
	lo, err := w.Percentile(0)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := w.Percentile(100)
	if err != nil {
		t.Fatal(err)
	}
	if lo != 3 || hi != 6 {
		t.Fatalf("p0 = %v, p100 = %v, want 3, 6", lo, hi)
	}
}

func TestWindowQuantilesMatchPercentile(t *testing.T) {
	w := NewWindow(128)
	for i := 100; i >= 1; i-- {
		w.Add(float64(i))
	}
	qs, err := w.Quantiles(50, 95, 99)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range []float64{50, 95, 99} {
		single, err := w.Percentile(p)
		if err != nil {
			t.Fatal(err)
		}
		if qs[i] != single {
			t.Fatalf("Quantiles p%v = %v, Percentile = %v", p, qs[i], single)
		}
	}
	if _, err := w.Quantiles(101); err == nil {
		t.Fatal("Quantiles(101) succeeded, want error")
	}
}

func TestWindowClampsCapacity(t *testing.T) {
	w := NewWindow(0)
	w.Add(1)
	w.Add(2)
	if w.Len() != 1 {
		t.Fatalf("Len() = %d, want 1 (capacity clamped to 1)", w.Len())
	}
	v, err := w.Percentile(50)
	if err != nil {
		t.Fatal(err)
	}
	if v != 2 {
		t.Fatalf("Percentile(50) = %v, want 2 (latest sample)", v)
	}
}

func TestWindowConcurrentAdd(t *testing.T) {
	w := NewWindow(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				w.Add(float64(g*200 + i))
				w.Percentile(95)
				w.Len()
			}
		}(g)
	}
	wg.Wait()
	if w.Len() != 64 {
		t.Fatalf("Len() = %d, want 64", w.Len())
	}
}
