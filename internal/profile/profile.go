// Package profile derives the per-block cost tables the DOT problem
// consumes — inference compute time c(s^d) and memory µ(s^d) — by timing
// real forward passes over dummy input tensors, the "standard procedure to
// estimate DNN model inference compute time in a system" used by the
// paper's second motivation experiment (Fig. 3 left).
package profile

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"offloadnn/internal/dnn"
	"offloadnn/internal/tensor"
)

// ErrProfile reports a profiling failure.
var ErrProfile = errors.New("profile: profiling failed")

// BlockCost is the experimentally characterized cost of one layer-block.
type BlockCost struct {
	// ID of the block (matches dnn.Block.ID).
	ID string
	// Stage of the block within its architecture.
	Stage int
	// ComputeTime is the per-inference (batch-1) forward time.
	ComputeTime time.Duration
	// MemoryBytes is the deployed footprint of the block.
	MemoryBytes int64
	// Params is the scalar parameter count.
	Params int
	// Precision is the kernel precision the measurement ran at
	// ("f64", "f32" or "i8").
	Precision string
}

// Profiler times blocks over dummy inputs.
type Profiler struct {
	// ImageSize is the square input side fed to the model.
	ImageSize int
	// Repeats is the number of timed forward passes per block; the median
	// is reported. Must be ≥ 1.
	Repeats int
	// Warmup passes run before timing starts.
	Warmup int
	// Workers is the tensor parallelism the measurement runs at. Zero (the
	// default) and one both time the serial kernels, so existing c(s)
	// tables stay comparable; larger values characterize the compute time
	// an edge node with that many cores would observe.
	Workers int
	// Precision selects the inference kernels the measurement times (the
	// zero value F64 keeps existing c(s) tables unchanged). The profiled
	// model is instantiated at this precision in place, so per-precision
	// c(s) rows for the solver's "@f32"/"@i8" block variants come from the
	// same measurement procedure as the f64 baseline.
	Precision tensor.Precision
}

// DefaultProfiler returns a configuration suitable for tests and the
// experiment harness.
func DefaultProfiler() Profiler {
	return Profiler{ImageSize: 16, Repeats: 5, Warmup: 1}
}

// ProfileModel runs a dummy tensor through the model block by block,
// timing each block's forward pass. The dummy input is all-ones, matching
// common practice (values do not affect dense-conv timing).
func (p Profiler) ProfileModel(m *dnn.Model) ([]BlockCost, error) {
	if p.Repeats < 1 {
		return nil, fmt.Errorf("%w: repeats %d < 1", ErrProfile, p.Repeats)
	}
	workers := p.Workers
	if workers <= 0 {
		workers = 1
	}
	prev := tensor.SetParallelism(workers)
	defer tensor.SetParallelism(prev)
	if !p.Precision.Valid() {
		return nil, fmt.Errorf("%w: invalid precision %d", ErrProfile, p.Precision)
	}
	if p.Precision != tensor.F64 {
		if err := m.SetPrecision(p.Precision); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrProfile, err)
		}
	}
	x := tensor.New(1, 3, p.ImageSize, p.ImageSize)
	x.Fill(1)

	costs := make([]BlockCost, 0, len(m.Blocks))
	for _, b := range m.Blocks {
		for i := 0; i < p.Warmup; i++ {
			y, err := b.Forward(x, false)
			if err != nil {
				return nil, fmt.Errorf("%w: block %s warmup: %v", ErrProfile, b.ID, err)
			}
			if y != x {
				tensor.Release(y)
			}
		}
		samples := make([]time.Duration, p.Repeats)
		var out *tensor.Tensor
		for i := 0; i < p.Repeats; i++ {
			start := time.Now()
			y, err := b.Forward(x, false)
			if err != nil {
				return nil, fmt.Errorf("%w: block %s: %v", ErrProfile, b.ID, err)
			}
			samples[i] = time.Since(start)
			if out != nil && out != x {
				tensor.Release(out)
			}
			out = y
		}
		sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
		costs = append(costs, BlockCost{
			ID:          b.ID,
			Stage:       b.Stage,
			ComputeTime: samples[len(samples)/2],
			MemoryBytes: b.MemoryBytes(),
			Params:      b.ParamCount(),
			Precision:   p.Precision.String(),
		})
		if out != x {
			tensor.Release(x)
		}
		x = out
	}
	return costs, nil
}

// TotalCompute sums the per-block compute times.
func TotalCompute(costs []BlockCost) time.Duration {
	var t time.Duration
	for _, c := range costs {
		t += c.ComputeTime
	}
	return t
}

// TotalMemory sums the per-block memory footprints.
func TotalMemory(costs []BlockCost) int64 {
	var m int64
	for _, c := range costs {
		m += c.MemoryBytes
	}
	return m
}

// Scale multiplies all compute times by factor, used to calibrate
// test-scale measurements to paper-scale magnitudes (e.g., so the full
// unpruned path lands at the paper's ~8–9 ms GPU inference time).
func Scale(costs []BlockCost, factor float64) []BlockCost {
	out := make([]BlockCost, len(costs))
	copy(out, costs)
	for i := range out {
		out[i].ComputeTime = time.Duration(float64(out[i].ComputeTime) * factor)
	}
	return out
}

// CalibrationFactor returns the factor that maps the measured total model
// compute time onto the target (paper) total.
func CalibrationFactor(costs []BlockCost, target time.Duration) (float64, error) {
	total := TotalCompute(costs)
	if total <= 0 {
		return 0, fmt.Errorf("%w: non-positive measured total %v", ErrProfile, total)
	}
	return float64(target) / float64(total), nil
}
