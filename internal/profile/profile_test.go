package profile

import (
	"testing"
	"time"

	"offloadnn/internal/dnn"
)

func TestProfileModelCoversAllBlocks(t *testing.T) {
	m := dnn.BuildResNet18(dnn.DefaultResNetConfig())
	p := DefaultProfiler()
	costs, err := p.ProfileModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(costs) != len(m.Blocks) {
		t.Fatalf("profiled %d blocks, want %d", len(costs), len(m.Blocks))
	}
	for i, c := range costs {
		if c.ComputeTime <= 0 {
			t.Fatalf("block %s compute time %v", c.ID, c.ComputeTime)
		}
		if c.MemoryBytes <= 0 {
			t.Fatalf("block %s memory %d", c.ID, c.MemoryBytes)
		}
		if c.ID != m.Blocks[i].ID {
			t.Fatalf("cost %d for %s, want %s", i, c.ID, m.Blocks[i].ID)
		}
	}
}

func TestPrunedBlocksProfileCheaper(t *testing.T) {
	full := dnn.BuildResNet18(dnn.DefaultResNetConfig())
	pruned := dnn.BuildResNet18(dnn.ResNetConfig{
		InChannels: 3, NumClasses: 8, BaseWidth: 8,
		StageBlocks: [4]int{2, 2, 2, 2},
		PruneRatios: [4]float64{0.8, 0.8, 0.8, 0.8},
		Seed:        1,
	})
	p := Profiler{ImageSize: 16, Repeats: 7, Warmup: 2}
	fc, err := p.ProfileModel(full)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := p.ProfileModel(pruned)
	if err != nil {
		t.Fatal(err)
	}
	if TotalMemory(pc) >= TotalMemory(fc) {
		t.Fatalf("pruned model memory %d >= full %d", TotalMemory(pc), TotalMemory(fc))
	}
	// Pruned stages must be cheaper in compute; allow timing noise on the
	// total by requiring a clear margin.
	if TotalCompute(pc) >= TotalCompute(fc) {
		t.Fatalf("pruned model compute %v >= full %v", TotalCompute(pc), TotalCompute(fc))
	}
}

func TestScaleAndCalibration(t *testing.T) {
	costs := []BlockCost{
		{ID: "a", ComputeTime: 2 * time.Millisecond},
		{ID: "b", ComputeTime: 6 * time.Millisecond},
	}
	f, err := CalibrationFactor(costs, 16*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if f != 2 {
		t.Fatalf("calibration factor %v, want 2", f)
	}
	scaled := Scale(costs, f)
	if TotalCompute(scaled) != 16*time.Millisecond {
		t.Fatalf("scaled total %v, want 16ms", TotalCompute(scaled))
	}
	// Original untouched.
	if costs[0].ComputeTime != 2*time.Millisecond {
		t.Fatal("Scale mutated its input")
	}
	if _, err := CalibrationFactor(nil, time.Second); err == nil {
		t.Fatal("empty costs should error")
	}
}

func TestProfilerValidation(t *testing.T) {
	m := dnn.BuildResNet18(dnn.DefaultResNetConfig())
	p := Profiler{ImageSize: 16, Repeats: 0}
	if _, err := p.ProfileModel(m); err == nil {
		t.Fatal("repeats 0 should be rejected")
	}
}
