// Package radio models the vRAN side of OffloaDNN: resource blocks (RBs),
// the SNR-dependent per-RB capacity B(σ), transmission latency of task
// input data, and the slice accounting the controller performs when it
// allocates r_τ RBs to each admitted task.
//
// Two capacity models are provided. FixedRate reproduces the paper's
// evaluation setting (B(σ) = 0.35 Mb/s per RB regardless of σ, Table IV);
// CQITable maps SNR through the LTE 4-bit CQI table to spectral
// efficiency, for scenarios that want channel diversity.
package radio

import (
	"errors"
	"fmt"
	"math"
	"time"
)

// ErrCapacity reports an allocation that exceeds the RB pool.
var ErrCapacity = errors.New("radio: insufficient resource blocks")

// CapacityModel maps a link SNR to the number of bits one RB carries per
// second.
type CapacityModel interface {
	// BitsPerRBPerSecond returns B(σ) in bit/s for the given average SNR.
	BitsPerRBPerSecond(snrDB float64) float64
}

// FixedRate is the paper's Table-IV setting: every RB carries the same
// rate regardless of channel quality.
type FixedRate struct {
	// Rate in bit/s per RB (paper: 0.35 Mb/s).
	Rate float64
}

// BitsPerRBPerSecond implements CapacityModel.
func (f FixedRate) BitsPerRBPerSecond(float64) float64 { return f.Rate }

// PaperRate returns the Table-IV fixed-rate model (0.35 Mb/s per RB).
func PaperRate() FixedRate { return FixedRate{Rate: 0.35e6} }

// CQITable is the LTE 4-bit CQI mapping: SNR thresholds to spectral
// efficiency (bits per resource element), per 3GPP TS 36.213 Table
// 7.2.3-1 with commonly used SNR switching points.
type CQITable struct {
	// Overhead is the fraction of resource elements lost to control and
	// reference signals (defaults to 0.25 when zero-valued via NewCQITable).
	Overhead float64
}

// NewCQITable returns the standard table with 25% control overhead.
func NewCQITable() CQITable { return CQITable{Overhead: 0.25} }

var cqiSNR = []float64{-6.7, -4.7, -2.3, 0.2, 2.4, 4.3, 5.9, 8.1, 10.3, 11.7, 14.1, 16.3, 18.7, 21.0, 22.7}

var cqiEff = []float64{0.1523, 0.2344, 0.3770, 0.6016, 0.8770, 1.1758, 1.4766, 1.9141, 2.4063, 2.7305, 3.3223, 3.9023, 4.5234, 5.1152, 5.5547}

// CQI returns the channel quality indicator (0 when below the first
// threshold, else 1–15).
func (c CQITable) CQI(snrDB float64) int {
	idx := 0
	for i, th := range cqiSNR {
		if snrDB >= th {
			idx = i + 1
		}
	}
	return idx
}

// SpectralEfficiency returns bits per resource element for the SNR.
func (c CQITable) SpectralEfficiency(snrDB float64) float64 {
	q := c.CQI(snrDB)
	if q == 0 {
		return 0
	}
	return cqiEff[q-1]
}

// BitsPerRBPerSecond implements CapacityModel. One LTE RB spans 12
// subcarriers × 14 OFDM symbols per 1 ms subframe.
func (c CQITable) BitsPerRBPerSecond(snrDB float64) float64 {
	const resPerRBPerMs = 12 * 14
	eff := c.SpectralEfficiency(snrDB)
	return eff * resPerRBPerMs * 1000 * (1 - c.Overhead)
}

// TransmissionTime returns the time to move `bits` over a slice of rbs
// resource blocks at capacity model cm and SNR snrDB. It returns +Inf
// duration semantics as an error instead: zero capacity or zero RBs is an
// error because the DOT constraints forbid admitting such a task.
func TransmissionTime(bits float64, rbs int, cm CapacityModel, snrDB float64) (time.Duration, error) {
	if bits < 0 {
		return 0, fmt.Errorf("radio: negative bits %v", bits)
	}
	if rbs <= 0 {
		return 0, fmt.Errorf("radio: non-positive RB count %d", rbs)
	}
	rate := cm.BitsPerRBPerSecond(snrDB) * float64(rbs)
	if rate <= 0 {
		return 0, fmt.Errorf("radio: zero link capacity at SNR %.1f dB", snrDB)
	}
	return time.Duration(bits / rate * float64(time.Second)), nil
}

// MinRBsForThroughput returns the smallest integer r satisfying the DOT
// rate constraint (1e): z·λ·β ≤ B(σ)·r.
func MinRBsForThroughput(admittedRate, bitsPerTask float64, cm CapacityModel, snrDB float64) (int, error) {
	need := admittedRate * bitsPerTask
	if need <= 0 {
		return 0, nil
	}
	b := cm.BitsPerRBPerSecond(snrDB)
	if b <= 0 {
		return 0, fmt.Errorf("radio: zero link capacity at SNR %.1f dB", snrDB)
	}
	return int(math.Ceil(need/b - 1e-12)), nil
}

// MinRBsForLatency returns the smallest integer r such that the
// transmission component β/(B(σ)·r) fits in the latency budget.
func MinRBsForLatency(bitsPerTask float64, budget time.Duration, cm CapacityModel, snrDB float64) (int, error) {
	if budget <= 0 {
		return 0, fmt.Errorf("radio: non-positive latency budget %v", budget)
	}
	b := cm.BitsPerRBPerSecond(snrDB)
	if b <= 0 {
		return 0, fmt.Errorf("radio: zero link capacity at SNR %.1f dB", snrDB)
	}
	r := int(math.Ceil(bitsPerTask/(b*budget.Seconds()) - 1e-12))
	if r < 1 {
		r = 1
	}
	return r, nil
}

// sliceGrant is one task's slice: rbs resource blocks scheduled for a
// fraction share of the time.
type sliceGrant struct {
	rbs   int
	share float64
}

// SliceAllocator tracks RB assignments of the radio network slices the
// controller creates per task. Slices may be time-multiplexed: a slice of
// r RBs active a fraction z of the time charges z·r against the pool,
// matching the DOT constraint (1d) Σ z·r ≤ R. It is not safe for
// concurrent use; the controller serializes allocations.
type SliceAllocator struct {
	total  int
	grants map[string]sliceGrant
}

// NewSliceAllocator creates an allocator over `total` RBs.
func NewSliceAllocator(total int) *SliceAllocator {
	return &SliceAllocator{total: total, grants: make(map[string]sliceGrant)}
}

// Total returns the RB pool size.
func (s *SliceAllocator) Total() int { return s.total }

// usedExact is the time-averaged RB usage Σ r·share.
func (s *SliceAllocator) usedExact() float64 {
	u := 0.0
	for _, g := range s.grants {
		u += float64(g.rbs) * g.share
	}
	return u
}

// Used returns the time-averaged RB usage, rounded to the nearest block.
func (s *SliceAllocator) Used() int { return int(s.usedExact() + 0.5) }

// UsedFraction returns the pool utilization Σ r·share / R.
func (s *SliceAllocator) UsedFraction() float64 {
	if s.total == 0 {
		return 0
	}
	return s.usedExact() / float64(s.total)
}

// Available returns the whole RBs still unallocated (time-averaged).
func (s *SliceAllocator) Available() int {
	a := float64(s.total) - s.usedExact()
	if a < 0 {
		return 0
	}
	return int(a + 1e-9)
}

// Allocation returns the RBs held by a task slice (0 when absent).
func (s *SliceAllocator) Allocation(task string) int { return s.grants[task].rbs }

// Share returns the task slice's scheduled time fraction (0 when absent).
func (s *SliceAllocator) Share(task string) float64 { return s.grants[task].share }

// Allocate reserves a full-time slice of rbs RBs for the task, replacing
// any previous grant.
func (s *SliceAllocator) Allocate(task string, rbs int) error {
	return s.AllocateShared(task, rbs, 1)
}

// AllocateShared reserves a slice of rbs RBs scheduled a fraction share
// of the time (the z of the task's admission), charging rbs·share against
// the pool. A zero-RB or zero-share grant removes the slice.
func (s *SliceAllocator) AllocateShared(task string, rbs int, share float64) error {
	if rbs < 0 {
		return fmt.Errorf("radio: negative allocation %d for %s", rbs, task)
	}
	if share < 0 || share > 1 {
		return fmt.Errorf("radio: share %v for %s outside [0,1]", share, task)
	}
	prev := s.grants[task]
	newUsed := s.usedExact() - float64(prev.rbs)*prev.share + float64(rbs)*share
	if newUsed > float64(s.total)+1e-9 {
		return fmt.Errorf("%w: want %.2f RBs (%d×%.2f) for %s, %.2f available",
			ErrCapacity, float64(rbs)*share, rbs, share, task,
			float64(s.total)-s.usedExact()+float64(prev.rbs)*prev.share)
	}
	if rbs == 0 || share == 0 {
		delete(s.grants, task)
		return nil
	}
	s.grants[task] = sliceGrant{rbs: rbs, share: share}
	return nil
}

// Release frees the task's slice.
func (s *SliceAllocator) Release(task string) {
	delete(s.grants, task)
}
