package radio

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestPaperRateMatchesTableIV(t *testing.T) {
	b := PaperRate().BitsPerRBPerSecond(0)
	if b != 0.35e6 {
		t.Fatalf("B = %v, want 0.35 Mb/s", b)
	}
	// SNR-independent.
	if PaperRate().BitsPerRBPerSecond(30) != b {
		t.Fatal("fixed rate should ignore SNR")
	}
}

func TestPaperScenarioOneRBOneImagePerSecond(t *testing.T) {
	// β = 350 Kb, B = 0.35 Mb/s → one RB transmits one image per second.
	d, err := TransmissionTime(350e3, 1, PaperRate(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.Seconds()-1.0) > 1e-9 {
		t.Fatalf("tx time %v, want 1 s", d)
	}
	// Five RBs → 200 ms.
	d5, err := TransmissionTime(350e3, 5, PaperRate(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d5.Seconds()-0.2) > 1e-9 {
		t.Fatalf("tx time %v, want 200 ms", d5)
	}
}

func TestCQITableMonotone(t *testing.T) {
	c := NewCQITable()
	prev := -1.0
	for snr := -10.0; snr <= 30; snr += 0.5 {
		b := c.BitsPerRBPerSecond(snr)
		if b < prev {
			t.Fatalf("capacity decreased at %v dB: %v < %v", snr, b, prev)
		}
		prev = b
	}
	if c.CQI(-20) != 0 {
		t.Fatalf("CQI(-20dB) = %d, want 0", c.CQI(-20))
	}
	if c.CQI(25) != 15 {
		t.Fatalf("CQI(25dB) = %d, want 15", c.CQI(25))
	}
	if c.SpectralEfficiency(-20) != 0 {
		t.Fatal("efficiency below sensitivity should be 0")
	}
}

func TestTransmissionTimeErrors(t *testing.T) {
	if _, err := TransmissionTime(100, 0, PaperRate(), 0); err == nil {
		t.Fatal("zero RBs should error")
	}
	if _, err := TransmissionTime(-1, 1, PaperRate(), 0); err == nil {
		t.Fatal("negative bits should error")
	}
	if _, err := TransmissionTime(100, 1, NewCQITable(), -30); err == nil {
		t.Fatal("zero capacity should error")
	}
}

func TestMinRBsForThroughput(t *testing.T) {
	// 5 req/s × 350 Kb = 1.75 Mb/s over 0.35 Mb/s per RB → 5 RBs.
	r, err := MinRBsForThroughput(5, 350e3, PaperRate(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 5 {
		t.Fatalf("r = %d, want 5", r)
	}
	// Fractional admission: 2.5 req/s → 2.5 RBs → 3.
	r2, err := MinRBsForThroughput(2.5, 350e3, PaperRate(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r2 != 3 {
		t.Fatalf("r = %d, want 3", r2)
	}
	// Zero admitted rate needs zero RBs.
	r0, err := MinRBsForThroughput(0, 350e3, PaperRate(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r0 != 0 {
		t.Fatalf("r = %d, want 0", r0)
	}
}

func TestMinRBsForLatency(t *testing.T) {
	// β/(B·r) ≤ 200 ms with β=350Kb, B=0.35Mb/s → r ≥ 5.
	r, err := MinRBsForLatency(350e3, 200*time.Millisecond, PaperRate(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if r != 5 {
		t.Fatalf("r = %d, want 5", r)
	}
	if _, err := MinRBsForLatency(350e3, 0, PaperRate(), 0); err == nil {
		t.Fatal("zero budget should error")
	}
}

// Property: the minimal RB counts actually satisfy their constraints, and
// one fewer RB violates them.
func TestQuickMinRBsTight(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rate := rng.Float64()*9 + 0.5 // req/s
		bits := rng.Float64()*5e5 + 1e4
		r, err := MinRBsForThroughput(rate, bits, PaperRate(), 0)
		if err != nil {
			return false
		}
		b := PaperRate().Rate
		if rate*bits > b*float64(r)+1e-6 {
			return false // constraint violated
		}
		if r > 0 && rate*bits <= b*float64(r-1)-1e-6 {
			return false // not minimal
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSliceAllocator(t *testing.T) {
	a := NewSliceAllocator(10)
	if err := a.Allocate("t1", 4); err != nil {
		t.Fatal(err)
	}
	if err := a.Allocate("t2", 6); err != nil {
		t.Fatal(err)
	}
	if a.Available() != 0 {
		t.Fatalf("available = %d, want 0", a.Available())
	}
	if err := a.Allocate("t3", 1); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-allocation err = %v, want ErrCapacity", err)
	}
	// Replacing an existing slice only charges the delta.
	if err := a.Allocate("t1", 2); err != nil {
		t.Fatal(err)
	}
	if a.Available() != 2 {
		t.Fatalf("available = %d, want 2", a.Available())
	}
	a.Release("t2")
	if a.Available() != 8 {
		t.Fatalf("available = %d, want 8 after release", a.Available())
	}
	if a.Allocation("t2") != 0 {
		t.Fatal("released slice still present")
	}
	if err := a.Allocate("t1", -1); err == nil {
		t.Fatal("negative allocation should error")
	}
	// Zero allocation removes the slice.
	if err := a.Allocate("t1", 0); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 0 {
		t.Fatalf("used = %d, want 0", a.Used())
	}
}

func TestSliceAllocatorTimeSharing(t *testing.T) {
	// Two half-time slices of 8 RBs each charge 8 total against a 10-RB
	// pool — the (1d) Σ z·r semantics.
	a := NewSliceAllocator(10)
	if err := a.AllocateShared("t1", 8, 0.5); err != nil {
		t.Fatal(err)
	}
	if err := a.AllocateShared("t2", 8, 0.5); err != nil {
		t.Fatal(err)
	}
	if a.Used() != 8 {
		t.Fatalf("Used = %d, want 8", a.Used())
	}
	if math.Abs(a.UsedFraction()-0.8) > 1e-12 {
		t.Fatalf("UsedFraction = %v, want 0.8", a.UsedFraction())
	}
	if a.Share("t1") != 0.5 || a.Allocation("t1") != 8 {
		t.Fatalf("grant = %d×%v", a.Allocation("t1"), a.Share("t1"))
	}
	// A third 8-RB half-time slice (4 effective) would exceed the pool.
	if err := a.AllocateShared("t3", 8, 0.5); !errors.Is(err, ErrCapacity) {
		t.Fatalf("over-allocation err = %v, want ErrCapacity", err)
	}
	// But a quarter-time one (2 effective) fits.
	if err := a.AllocateShared("t3", 8, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := a.AllocateShared("t4", 1, 1.5); err == nil {
		t.Fatal("share > 1 should be rejected")
	}
	// Zero share removes the grant.
	if err := a.AllocateShared("t3", 8, 0); err != nil {
		t.Fatal(err)
	}
	if a.Allocation("t3") != 0 {
		t.Fatal("zero-share grant not removed")
	}
}
