// Package semoran reimplements the SEM-O-RAN baseline [5] from its
// description in the OffloaDNN paper (Secs. V and VI), as the comparator
// for the large-scale evaluation:
//
//   - it maximizes the total number of admitted tasks weighted by their
//     value (the priority in our scenarios);
//   - task admission is binary — all requests of a task are admitted or
//     all are rejected (no fractional z);
//   - task input images undergo semantic compression, reducing the bits
//     per image at a small accuracy cost;
//   - edge resources of different types are allocated in a balanced
//     manner to avoid starving any one dimension;
//   - it does not share DNN blocks, optimize DNN structure, fine-tune or
//     prune: every admitted task deploys its own full-accuracy DNN, and
//     memory is charged per task.
package semoran

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"time"

	"offloadnn/internal/core"
)

// ErrNoPath reports a task with no accuracy-feasible path.
var ErrNoPath = errors.New("semoran: no feasible path")

// CompressionLevel is one semantic-compression option.
type CompressionLevel struct {
	// Ratio multiplies the task's input bits (1 = uncompressed).
	Ratio float64
	// AccuracyDelta is subtracted from the path accuracy.
	AccuracyDelta float64
}

// Config parameterizes the baseline.
type Config struct {
	// Compression levels tried in order; the solver uses the first level
	// that keeps the task accuracy- and latency-feasible, preferring less
	// compression (higher fidelity) first.
	Compression []CompressionLevel
}

// DefaultConfig returns the compression ladder used in the experiments:
// none, moderate (30% fewer bits, −1% accuracy) and aggressive semantic
// compression (50% fewer bits, −3% accuracy).
func DefaultConfig() Config {
	return Config{Compression: []CompressionLevel{
		{Ratio: 1.0, AccuracyDelta: 0},
		{Ratio: 0.7, AccuracyDelta: 0.01},
		{Ratio: 0.5, AccuracyDelta: 0.03},
	}}
}

// Decision is the per-task outcome.
type Decision struct {
	TaskID string
	// Admitted is the binary admission decision.
	Admitted bool
	// Path is the full-DNN execution used when admitted.
	Path *core.PathSpec
	// RBs allocated to the task slice.
	RBs int
	// Compression selected for the task input.
	Compression CompressionLevel
	// MemoryGB deployed for this task (full DNN, unshared).
	MemoryGB float64
}

// Report is a SEM-O-RAN solution in the same vocabulary as the OffloaDNN
// breakdown, for side-by-side comparison in Figs. 9 and 10.
type Report struct {
	Decisions []Decision
	// Value is Σ priority over admitted tasks (the SEM-O-RAN objective).
	Value float64
	// WeightedAdmission equals Value (binary admission) — kept for
	// symmetry with core.Breakdown.
	WeightedAdmission float64
	// MemoryGB sums per-task full-DNN deployments (no sharing).
	MemoryGB float64
	// ComputeUsage is Σ λ·c(π) of admitted tasks in s/s.
	ComputeUsage float64
	// RBsAllocated is Σ r over admitted tasks.
	RBsAllocated float64
	// AdmittedTasks counts admitted tasks.
	AdmittedTasks int
}

// Solve runs the SEM-O-RAN admission on a DOT instance. The instance's
// path catalog is reused, but only each task's highest-accuracy path is
// considered (the full DNN — the baseline does not shape DNNs), and the
// memory of its blocks is charged privately to the task.
func Solve(in *core.Instance, cfg Config) (*Report, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if len(cfg.Compression) == 0 {
		cfg = DefaultConfig()
	}

	type candidate struct {
		taskIdx  int
		path     *core.PathSpec
		level    CompressionLevel
		rbs      int
		memoryGB float64
		compute  float64 // λ·c(π)
	}

	candidates := make([]*candidate, 0, len(in.Tasks))
	for ti := range in.Tasks {
		task := &in.Tasks[ti]
		path := fullestPath(task)
		if path == nil {
			continue // no path at all: task silently unservable
		}
		b := in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
		if b <= 0 {
			continue
		}
		cPath := in.PathCompute(path)
		slack := task.MaxLatency.Seconds() - cPath
		if slack <= 0 {
			continue
		}
		var chosen *candidate
		for _, lvl := range cfg.Compression {
			if path.Accuracy-lvl.AccuracyDelta < task.MinAccuracy {
				continue
			}
			bits := task.InputBits * lvl.Ratio
			rLat := int(math.Ceil(bits / (b * slack)))
			rRate := int(math.Ceil(bits * task.Rate / b))
			rbs := rLat
			if rRate > rbs {
				rbs = rRate
			}
			if rbs < 1 {
				rbs = 1
			}
			if rbs > in.Res.RBs {
				continue
			}
			mem := 0.0
			for _, id := range path.Blocks {
				mem += in.Blocks[id].MemoryGB // unshared: full price per task
			}
			chosen = &candidate{
				taskIdx: ti, path: path, level: lvl, rbs: rbs,
				memoryGB: mem, compute: task.Rate * cPath,
			}
			break // least compression that fits
		}
		if chosen != nil {
			candidates = append(candidates, chosen)
		}
	}

	// Greedy by task value; ties broken by balanced resource pressure
	// (smaller maximum normalized demand first), the baseline's
	// starvation-avoidance rule.
	sort.SliceStable(candidates, func(a, b int) bool {
		pa := in.Tasks[candidates[a].taskIdx].Priority
		pb := in.Tasks[candidates[b].taskIdx].Priority
		if pa != pb {
			return pa > pb
		}
		return dominantShare(in, candidates[a].memoryGB, candidates[a].compute, candidates[a].rbs) <
			dominantShare(in, candidates[b].memoryGB, candidates[b].compute, candidates[b].rbs)
	})

	rep := &Report{Decisions: make([]Decision, len(in.Tasks))}
	for ti := range in.Tasks {
		rep.Decisions[ti] = Decision{TaskID: in.Tasks[ti].ID}
	}
	var usedMem, usedCompute float64
	usedRBs := 0
	for _, c := range candidates {
		if usedMem+c.memoryGB > in.Res.MemoryGB ||
			usedCompute+c.compute > in.Res.ComputeSeconds ||
			usedRBs+c.rbs > in.Res.RBs {
			continue // binary: skip entirely
		}
		usedMem += c.memoryGB
		usedCompute += c.compute
		usedRBs += c.rbs
		task := &in.Tasks[c.taskIdx]
		rep.Decisions[c.taskIdx] = Decision{
			TaskID:      task.ID,
			Admitted:    true,
			Path:        c.path,
			RBs:         c.rbs,
			Compression: c.level,
			MemoryGB:    c.memoryGB,
		}
		rep.Value += task.Priority
		rep.AdmittedTasks++
	}
	rep.WeightedAdmission = rep.Value
	rep.MemoryGB = usedMem
	rep.ComputeUsage = usedCompute
	rep.RBsAllocated = float64(usedRBs)
	return rep, nil
}

// Check verifies the SEM-O-RAN report against the instance's constraints
// (with per-task, unshared memory accounting).
func Check(in *core.Instance, rep *Report) error {
	var mem, comp float64
	rbs := 0
	for ti, d := range rep.Decisions {
		if !d.Admitted {
			continue
		}
		task := &in.Tasks[ti]
		mem += d.MemoryGB
		comp += task.Rate * in.PathCompute(d.Path)
		rbs += d.RBs
		if d.Path.Accuracy-d.Compression.AccuracyDelta < task.MinAccuracy-1e-9 {
			return fmt.Errorf("semoran: task %s accuracy violated", task.ID)
		}
		b := in.Res.Capacity.BitsPerRBPerSecond(task.SNRdB)
		bits := task.InputBits * d.Compression.Ratio
		lat := bits/(b*float64(d.RBs)) + in.PathCompute(d.Path)
		if time.Duration(lat*float64(time.Second)) > task.MaxLatency+time.Millisecond/10 {
			return fmt.Errorf("semoran: task %s latency violated", task.ID)
		}
		if bits*task.Rate > b*float64(d.RBs)+1e-6 {
			return fmt.Errorf("semoran: task %s slice under-provisioned", task.ID)
		}
	}
	if mem > in.Res.MemoryGB+1e-9 {
		return fmt.Errorf("semoran: memory %v exceeds %v", mem, in.Res.MemoryGB)
	}
	if comp > in.Res.ComputeSeconds+1e-9 {
		return fmt.Errorf("semoran: compute %v exceeds %v", comp, in.Res.ComputeSeconds)
	}
	if rbs > in.Res.RBs {
		return fmt.Errorf("semoran: RBs %d exceed %d", rbs, in.Res.RBs)
	}
	return nil
}

// fullestPath returns the task's highest-accuracy path (the unshaped full
// DNN), or nil when the task has none.
func fullestPath(task *core.Task) *core.PathSpec {
	var best *core.PathSpec
	for i := range task.Paths {
		p := &task.Paths[i]
		if best == nil || p.Accuracy > best.Accuracy {
			best = p
		}
	}
	return best
}

// dominantShare is the maximum normalized resource demand of a candidate.
func dominantShare(in *core.Instance, mem, compute float64, rbs int) float64 {
	s := 0.0
	if in.Res.MemoryGB > 0 {
		s = math.Max(s, mem/in.Res.MemoryGB)
	}
	if in.Res.ComputeSeconds > 0 {
		s = math.Max(s, compute/in.Res.ComputeSeconds)
	}
	if in.Res.RBs > 0 {
		s = math.Max(s, float64(rbs)/float64(in.Res.RBs))
	}
	return s
}
