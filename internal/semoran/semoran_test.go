package semoran

import (
	"testing"

	"offloadnn/internal/core"
	"offloadnn/internal/workload"
)

func largeInstance(t *testing.T, load workload.Load) *core.Instance {
	t.Helper()
	in, err := workload.LargeScenario(load)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSolveProducesFeasibleBinaryAdmission(t *testing.T) {
	in := largeInstance(t, workload.LoadMedium)
	rep, err := Solve(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := Check(in, rep); err != nil {
		t.Fatalf("infeasible report: %v", err)
	}
	if rep.AdmittedTasks == 0 {
		t.Fatal("nothing admitted")
	}
	for _, d := range rep.Decisions {
		if d.Admitted && d.Path == nil {
			t.Fatalf("admitted task %s has no path", d.TaskID)
		}
		if d.Admitted && d.RBs <= 0 {
			t.Fatalf("admitted task %s has no RBs", d.TaskID)
		}
	}
}

func TestAdmissionIsValueOrdered(t *testing.T) {
	// With uniform per-task demands, a rejected task must not outrank an
	// admitted one: greedy admits by priority.
	in := largeInstance(t, workload.LoadHigh)
	rep, err := Solve(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	lowestAdmitted := 2.0
	highestRejected := -1.0
	for ti, d := range rep.Decisions {
		p := in.Tasks[ti].Priority
		if d.Admitted && p < lowestAdmitted {
			lowestAdmitted = p
		}
		if !d.Admitted && p > highestRejected {
			highestRejected = p
		}
	}
	if highestRejected > lowestAdmitted+1e-9 {
		t.Fatalf("rejected priority %v above admitted %v", highestRejected, lowestAdmitted)
	}
}

func TestNoSharingChargesMemoryPerTask(t *testing.T) {
	in := largeInstance(t, workload.LoadLow)
	rep, err := Solve(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Each admitted task carries a full private DNN (~1.06 GB); total
	// memory must scale ~linearly with admissions, far above what a
	// shared deployment would need.
	perTask := rep.MemoryGB / float64(rep.AdmittedTasks)
	if perTask < 0.8 {
		t.Fatalf("per-task memory %v GB too low for unshared full DNNs", perTask)
	}
}

func TestUsesFullAccuracyPath(t *testing.T) {
	in := largeInstance(t, workload.LoadLow)
	rep, err := Solve(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for ti, d := range rep.Decisions {
		if !d.Admitted {
			continue
		}
		for _, p := range in.Tasks[ti].Paths {
			if p.Accuracy > d.Path.Accuracy+1e-12 {
				t.Fatalf("task %s uses path acc %v but %v exists (baseline must pick the full DNN)",
					d.TaskID, d.Path.Accuracy, p.Accuracy)
			}
		}
	}
}

func TestFewerAdmissionsThanOffloaDNNAtEveryLoad(t *testing.T) {
	// The paper's headline: OffloaDNN admits more tasks at every load.
	for _, load := range []workload.Load{workload.LoadLow, workload.LoadMedium, workload.LoadHigh} {
		in := largeInstance(t, load)
		rep, err := Solve(in, DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		sol, err := core.SolveOffloaDNN(in)
		if err != nil {
			t.Fatal(err)
		}
		if sol.Breakdown.AdmittedTasks <= rep.AdmittedTasks {
			t.Fatalf("load %v: OffloaDNN admitted %d, SEM-O-RAN %d",
				load, sol.Breakdown.AdmittedTasks, rep.AdmittedTasks)
		}
		if sol.Breakdown.MemoryGB >= rep.MemoryGB {
			t.Fatalf("load %v: OffloaDNN memory %v not below SEM-O-RAN %v",
				load, sol.Breakdown.MemoryGB, rep.MemoryGB)
		}
		if sol.Breakdown.ComputeUsage >= rep.ComputeUsage {
			t.Fatalf("load %v: OffloaDNN compute %v not below SEM-O-RAN %v",
				load, sol.Breakdown.ComputeUsage, rep.ComputeUsage)
		}
	}
}

func TestCompressionEngagesWhenLatencyTight(t *testing.T) {
	in := largeInstance(t, workload.LoadLow)
	// Make the first task's latency bound very tight: without compression
	// the needed RBs explode; compression should keep it admittable.
	in.Tasks[0].MaxLatency = in.Tasks[0].MaxLatency / 10 // 22 ms
	rep, err := Solve(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Decisions[0]
	if d.Admitted && d.Compression.Ratio >= 1 {
		// With 13.5 ms of slack and 350 Kb input, the uncompressed slice
		// needs ~74 RBs; the compressed one proportionally fewer. Either
		// rejection or compressed admission is acceptable; uncompressed
		// admission with few RBs would violate latency (Check catches it).
		if d.RBs < 70 {
			t.Fatalf("task admitted uncompressed with only %d RBs", d.RBs)
		}
	}
	if err := Check(in, rep); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyConfigFallsBackToDefault(t *testing.T) {
	in := largeInstance(t, workload.LoadLow)
	rep, err := Solve(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.AdmittedTasks == 0 {
		t.Fatal("empty config should fall back to defaults and admit tasks")
	}
}

func TestInvalidInstanceRejected(t *testing.T) {
	in := &core.Instance{}
	if _, err := Solve(in, DefaultConfig()); err == nil {
		t.Fatal("invalid instance should error")
	}
}

func TestCheckDetectsViolations(t *testing.T) {
	in := largeInstance(t, workload.LoadLow)
	rep, err := Solve(in, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	// Starve an admitted task's slice: Check must flag latency or rate.
	bad := *rep
	bad.Decisions = append([]Decision(nil), rep.Decisions...)
	for i := range bad.Decisions {
		if bad.Decisions[i].Admitted {
			bad.Decisions[i].RBs = 1
			break
		}
	}
	if err := Check(in, &bad); err == nil {
		t.Fatal("starved slice not detected")
	}
	// Violate accuracy via an impossible floor.
	in2 := largeInstance(t, workload.LoadLow)
	rep2, err := Solve(in2, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range in2.Tasks {
		if rep2.Decisions[i].Admitted {
			in2.Tasks[i].MinAccuracy = 0.999
			break
		}
	}
	if err := Check(in2, rep2); err == nil {
		t.Fatal("accuracy violation not detected")
	}
}

func TestDominantShareBalancesTies(t *testing.T) {
	// Two candidates with equal priority: the one with the smaller maximum
	// normalized demand must be admitted first when only one fits.
	in := largeInstance(t, workload.LoadLow)
	share := dominantShare(in, 8.0, 0.1, 10)  // memory-dominant: 8/16 = 0.5
	share2 := dominantShare(in, 1.0, 0.1, 60) // RB-dominant: 60/100 = 0.6
	if share >= share2 {
		t.Fatalf("dominant shares %v vs %v, want first smaller", share, share2)
	}
}
