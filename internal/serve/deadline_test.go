package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestOffloadDeadline504 drives the deadline plumbing end to end over
// HTTP: an impossible per-request budget is shed with the 504 envelope,
// a generous one succeeds and echoes its effective budget, and the
// default budget is the task's plan-time latency bound.
func TestOffloadDeadline504(t *testing.T) {
	be := newRealBackend(t)
	srv := newTestServer(t, Config{Debounce: time.Millisecond, Backend: be})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/tasks", smallSpec(t, 1))
	drain(t, resp)
	waitCurrent(t, ts.URL)
	in := payloadFor(be)

	// A nanosecond budget has always expired by the time the backend
	// sees the request: shed late, 504, typed error code.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1", Input: in, DeadlineMS: 1e-6})
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("late offload: %d, want 504 (%s)", resp.StatusCode, drain(t, resp))
	}
	var envelope struct {
		Error struct {
			Code string `json:"code"`
		} `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if envelope.Error.Code != CodeDeadline {
		t.Fatalf("late offload error code %q, want %q", envelope.Error.Code, CodeDeadline)
	}

	// A generous override succeeds and reports the budget it ran under.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1", Input: in, DeadlineMS: 10_000})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("deadlined offload: %d %s", resp.StatusCode, drain(t, resp))
	}
	var out OffloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.DeadlineMS != 10_000 {
		t.Fatalf("deadlined offload echoed budget %v ms, want 10000", out.DeadlineMS)
	}

	// No override: the budget is the plan-time bound L_τ.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1", Input: in})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("default-deadline offload: %d %s", resp.StatusCode, drain(t, resp))
	}
	out = OffloadResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.DeadlineMS <= 0 {
		t.Fatalf("default budget %v ms, want the task's plan-time bound > 0", out.DeadlineMS)
	}

	// An explicit opt-out carries no deadline at all.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1", Input: in, DeadlineMS: -1})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("opt-out offload: %d %s", resp.StatusCode, drain(t, resp))
	}
	out = OffloadResponse{}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if out.DeadlineMS != 0 {
		t.Fatalf("opt-out offload still reports budget %v ms", out.DeadlineMS)
	}

	// The shed and the hits both show in the exposition.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := drain(t, mresp)
	for _, want := range []string{
		`offloadnn_shed_total{reason="late"} 1`,
		`offloadnn_shed_total{reason="queue_full"} 0`,
		"offloadnn_deadline_hit_ratio",
		"offloadnn_batch_window_seconds",
		"offloadnn_overload 0",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, body)
		}
	}
}

// TestOverloadDegradesHealthAndRecovers pins the backpressure-to-health
// coupling: enough backend sheds inside the overload window flip
// /healthz to degraded with overloaded=true, and the server returns to
// healthy once the window drains — no sticky degradation.
func TestOverloadDegradesHealthAndRecovers(t *testing.T) {
	clock := newFakeClock()
	be := newRealBackend(t)
	srv := newTestServer(t, Config{
		Debounce: time.Millisecond, Now: clock.Now, Backend: be,
		OverloadAfter: 2, OverloadWindow: 10 * time.Second,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/tasks", smallSpec(t, 1))
	drain(t, resp)
	waitCurrent(t, ts.URL)
	in := payloadFor(be)

	// The deadline is computed off the injected clock — months in the
	// past of the backend's real clock — so every budgeted offload is
	// hopelessly late and sheds. Advance between requests to refill the
	// admission gate.
	for i := 0; i < 2; i++ {
		clock.Advance(time.Second)
		resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1", Input: in, DeadlineMS: 1})
		if resp.StatusCode != http.StatusGatewayTimeout {
			t.Fatalf("shed %d: %d, want 504 (%s)", i, resp.StatusCode, drain(t, resp))
		}
		drain(t, resp)
	}

	health := func() map[string]any {
		t.Helper()
		hresp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h map[string]any
		if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		hresp.Body.Close()
		return h
	}

	h := health()
	if h["status"] != "degraded" || h["overloaded"] != true {
		t.Fatalf("after 2 sheds: status=%v overloaded=%v, want degraded/true", h["status"], h["overloaded"])
	}
	if sheds, _ := h["recent_sheds"].(float64); sheds < 2 {
		t.Fatalf("recent_sheds = %v, want >= 2", h["recent_sheds"])
	}

	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if body := drain(t, mresp); !strings.Contains(body, "offloadnn_overload 1") {
		t.Fatalf("metrics exposition missing offloadnn_overload 1:\n%s", body)
	}

	// Once the shed window drains the server is healthy again.
	clock.Advance(11 * time.Second)
	h = health()
	if h["status"] != "healthy" || h["overloaded"] != false {
		t.Fatalf("after the window drained: status=%v overloaded=%v, want healthy/false", h["status"], h["overloaded"])
	}
}
