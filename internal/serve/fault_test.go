package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/workload"
)

// registerSmall registers Table-IV small-scenario tasks 1..n.
func registerSmall(t *testing.T, srv *Server, n int) {
	t.Helper()
	for i := 1; i <= n; i++ {
		task, err := workload.SmallTask(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Register(task, nil); err != nil {
			t.Fatal(err)
		}
	}
}

// healthBody mirrors the /healthz JSON for assertions.
type healthBody struct {
	Status              string  `json:"status"`
	Epoch               uint64  `json:"epoch"`
	Current             bool    `json:"current"`
	GenerationLag       uint64  `json:"generation_lag"`
	StaleForSeconds     float64 `json:"stale_for_seconds"`
	ConsecutiveFailures uint64  `json:"consecutive_failures"`
	BreakerOpen         bool    `json:"breaker_open"`
	LastSolveError      string  `json:"last_solve_error"`
}

func getHealth(t *testing.T, srv *Server) (int, healthBody) {
	t.Helper()
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	var h healthBody
	if err := json.Unmarshal(w.Body.Bytes(), &h); err != nil {
		t.Fatalf("healthz body: %v", err)
	}
	return w.Code, h
}

func offloadRec(srv *Server, id string) *httptest.ResponseRecorder {
	body := strings.NewReader(fmt.Sprintf(`{"task":%q}`, id))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/offload", body))
	return w
}

func TestBackoffSchedule(t *testing.T) {
	const base, max = 100 * time.Millisecond, 5 * time.Second
	mid := func() float64 { return 0.5 } // jitter factor exactly 1.0
	want := []time.Duration{
		100 * time.Millisecond, // n ≤ 1 → base
		100 * time.Millisecond,
		200 * time.Millisecond,
		400 * time.Millisecond,
		800 * time.Millisecond,
		1600 * time.Millisecond,
		3200 * time.Millisecond,
		5 * time.Second, // capped
		5 * time.Second,
	}
	for i, w := range want {
		if got := backoffDelay(base, max, i, mid); got != w {
			t.Fatalf("backoffDelay(n=%d) = %v, want %v", i, got, w)
		}
	}
	// Jitter bounds: factor spans [0.8, 1.2).
	if got := backoffDelay(base, max, 1, func() float64 { return 0 }); got != 80*time.Millisecond {
		t.Fatalf("low jitter: %v, want 80ms", got)
	}
	if got := backoffDelay(base, max, 1, func() float64 { return 0.999 }); got < 100*time.Millisecond || got >= 120*time.Millisecond {
		t.Fatalf("high jitter: %v, want in [100ms, 120ms)", got)
	}
}

// TestSolveLatencyUsesInjectedClock pins the satellite fix: with a
// deterministic clock the measured solve latency must come from that
// clock (and so be zero while it stands still), not from wall time.
func TestSolveLatencyUsesInjectedClock(t *testing.T) {
	clock := newFakeClock()
	srv := newTestServer(t, Config{Debounce: time.Hour, Now: clock.Now})
	registerSmall(t, srv, 2)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	ep := srv.Current()
	if ep.SolveLatency != 0 {
		t.Fatalf("SolveLatency = %v on a static injected clock, want 0", ep.SolveLatency)
	}
	if !ep.PublishedAt.Equal(clock.Now()) {
		t.Fatalf("PublishedAt = %v, want the injected clock's %v", ep.PublishedAt, clock.Now())
	}
}

// TestSolverPanicSurvival injects panics into the solve step and checks
// they become counted solve errors: the last-good epoch keeps serving
// and the next clean solve publishes again.
func TestSolverPanicSurvival(t *testing.T) {
	inj := faultinject.New(1)
	srv := newTestServer(t, Config{Debounce: time.Hour, Faults: inj})
	registerSmall(t, srv, 3)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	good := srv.Current()

	inj.Set(faultinject.PointSolverPanic, faultinject.Rule{EveryN: 1, Count: 2})
	task, err := workload.SmallTask(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(task, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		err := srv.ResolveNow()
		if err == nil || !strings.Contains(err.Error(), "panic") {
			t.Fatalf("resolve %d under injected panic: err %v, want recovered panic", i, err)
		}
	}
	if got := srv.Stats().SolvePanics(); got != 2 {
		t.Fatalf("SolvePanics = %d, want 2", got)
	}
	if srv.Current() != good {
		t.Fatal("failed solves replaced the last-good epoch")
	}
	if w := offloadRec(srv, "task-1"); w.Code != http.StatusOK {
		t.Fatalf("offload during fault: status %d, want 200 off the last-good epoch", w.Code)
	}

	// Fault exhausted: the next solve publishes and admits the new task.
	if err := srv.ResolveNow(); err != nil {
		t.Fatalf("resolve after fault cleared: %v", err)
	}
	if ep := srv.Current(); ep.N != good.N+1 || ep.Generation != srv.Registry().Generation() {
		t.Fatalf("epoch %d gen %d after recovery, want %d and current", ep.N, ep.Generation, good.N+1)
	}
	if got := srv.resolver.ConsecutiveFailures(); got != 0 {
		t.Fatalf("consecutive failures %d after success, want 0", got)
	}
}

// TestResolverLoopSurvivesPanics is the acceptance check for the live
// loop: with solver.panic firing on every solve for a while, the
// resolver goroutine must survive, back off, and converge once the
// fault clears — epochs resume without any external intervention.
func TestResolverLoopSurvivesPanics(t *testing.T) {
	inj := faultinject.New(1)
	inj.Set(faultinject.PointSolverPanic, faultinject.Rule{EveryN: 1, Count: 4})
	srv := newTestServer(t, Config{
		Debounce:          time.Millisecond,
		FailureBackoff:    time.Millisecond,
		FailureBackoffMax: 5 * time.Millisecond,
		Faults:            inj,
	})
	registerSmall(t, srv, 3)

	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		ep := srv.Current()
		if ep != nil && ep.Generation == srv.Registry().Generation() {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}
	ep := srv.Current()
	if ep == nil || ep.Generation != srv.Registry().Generation() {
		t.Fatal("resolver loop never recovered from injected panics")
	}
	if got := inj.Fires(faultinject.PointSolverPanic); got != 4 {
		t.Fatalf("panic point fired %d times, want 4 (loop died early?)", got)
	}
	if got := srv.Stats().SolvePanics(); got != 4 {
		t.Fatalf("SolvePanics = %d, want 4", got)
	}
}

// TestSolveTimeoutCustomSolve bounds a hung non-context-aware strategy.
func TestSolveTimeoutCustomSolve(t *testing.T) {
	release := make(chan struct{})
	t.Cleanup(func() { close(release) })
	srv := newTestServer(t, Config{
		Debounce:     time.Hour,
		SolveTimeout: 20 * time.Millisecond,
		Solve: func(in *core.Instance) (*core.Solution, error) {
			<-release
			return nil, errors.New("released")
		},
	})
	registerSmall(t, srv, 2)
	start := time.Now()
	err := srv.ResolveNow()
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung solve: err %v, want context.DeadlineExceeded", err)
	}
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("timeout took %v to fire", d)
	}
	if srv.Current() != nil {
		t.Fatal("timed-out solve published an epoch")
	}
}

// TestSolveTimeoutIncrementalHang bounds a hang injected into the
// default incremental path; the next solve succeeds cleanly.
func TestSolveTimeoutIncrementalHang(t *testing.T) {
	inj := faultinject.New(1)
	inj.Set(faultinject.PointSolverHang, faultinject.Rule{EveryN: 1, Count: 1})
	srv := newTestServer(t, Config{Debounce: time.Hour, SolveTimeout: 20 * time.Millisecond, Faults: inj})
	registerSmall(t, srv, 2)
	if err := srv.ResolveNow(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("hung solve: err %v, want context.DeadlineExceeded", err)
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatalf("solve after hang: %v", err)
	}
	if ep := srv.Current(); ep == nil || ep.Generation != srv.Registry().Generation() {
		t.Fatal("no current epoch after the hang cleared")
	}
}

// TestBreakerTripAndRearm drives the incremental→full circuit breaker:
// three consecutive failures drop the SolverSession and switch to full
// admission rounds; the next success re-arms incremental solving.
func TestBreakerTripAndRearm(t *testing.T) {
	inj := faultinject.New(1)
	srv := newTestServer(t, Config{Debounce: time.Hour, BreakerThreshold: 3, Faults: inj})
	registerSmall(t, srv, 3)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if !sessionLive(srv) {
		t.Fatal("no incremental session after a clean solve")
	}

	inj.Set(faultinject.PointSolverError, faultinject.Rule{EveryN: 1, Count: 3})
	task, err := workload.SmallTask(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(task, nil); err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		if err := srv.ResolveNow(); !errors.Is(err, faultinject.ErrInjected) {
			t.Fatalf("failure %d: err %v, want injected", i, err)
		}
		wantOpen := i >= 3
		if got := srv.resolver.BreakerOpen(); got != wantOpen {
			t.Fatalf("after failure %d: breaker open=%v, want %v", i, got, wantOpen)
		}
	}
	if sessionLive(srv) {
		t.Fatal("breaker open but the incremental session survived")
	}

	// Fault exhausted: the full-path solve succeeds and re-arms the
	// breaker; the session rebuilds on the next churned solve.
	if err := srv.ResolveNow(); err != nil {
		t.Fatalf("full-path solve: %v", err)
	}
	if srv.resolver.BreakerOpen() {
		t.Fatal("breaker still open after a successful solve")
	}
	if sessionLive(srv) {
		t.Fatal("full-path solve built an incremental session")
	}
	if err := srv.Deregister("task-4"); err != nil {
		t.Fatal(err)
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if !sessionLive(srv) {
		t.Fatal("incremental path did not resume after the breaker re-armed")
	}
}

// sessionLive peeks at the resolver's incremental session under its
// solve lock.
func sessionLive(srv *Server) bool {
	srv.resolver.solveMu.Lock()
	defer srv.resolver.solveMu.Unlock()
	return srv.resolver.session != nil
}

// TestDeployErrorFault fails the controller's deploy step after a
// successful solve; the resolver counts it and recovers next round.
func TestDeployErrorFault(t *testing.T) {
	inj := faultinject.New(1)
	inj.Set(faultinject.PointDeployError, faultinject.Rule{EveryN: 1, Count: 1})
	srv := newTestServer(t, Config{Debounce: time.Hour, Faults: inj})
	registerSmall(t, srv, 2)
	err := srv.ResolveNow()
	if !errors.Is(err, edge.ErrDeploy) || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("deploy fault: err %v, want ErrDeploy wrapping ErrInjected", err)
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatalf("resolve after deploy fault: %v", err)
	}
	if ep := srv.Current(); ep == nil || ep.Deployment == nil {
		t.Fatal("no deployment after recovery")
	}
}

// TestHealthTransitions walks /healthz across the acceptance scenario:
// healthy → degraded under injected panics (still serving off the
// last-good epoch) → healthy again once solves recover.
func TestHealthTransitions(t *testing.T) {
	inj := faultinject.New(1)
	clock := newFakeClock()
	srv := newTestServer(t, Config{Debounce: time.Hour, Now: clock.Now, Faults: inj, DegradedAfter: 3})
	registerSmall(t, srv, 3)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	code, h := getHealth(t, srv)
	if code != http.StatusOK || h.Status != "healthy" || !h.Current {
		t.Fatalf("baseline health: code %d, %+v, want healthy and current", code, h)
	}

	inj.Set(faultinject.PointSolverPanic, faultinject.Rule{EveryN: 1})
	task, err := workload.SmallTask(4)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(task, nil); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := srv.ResolveNow(); err == nil {
			t.Fatal("injected panic did not fail the solve")
		}
	}
	code, h = getHealth(t, srv)
	if code != http.StatusOK || h.Status != "degraded" {
		t.Fatalf("health under failures: code %d status %q, want 200/degraded", code, h.Status)
	}
	if h.ConsecutiveFailures != 3 || h.GenerationLag == 0 {
		t.Fatalf("degraded detail: %+v, want 3 consecutive failures and generation lag", h)
	}
	if !strings.Contains(h.LastSolveError, "panic") {
		t.Fatalf("last_solve_error %q does not name the panic", h.LastSolveError)
	}
	// Degraded ≠ down: offloads keep serving off the last-good epoch.
	if w := offloadRec(srv, "task-1"); w.Code != http.StatusOK {
		t.Fatalf("offload while degraded: status %d, want 200", w.Code)
	}

	inj.Clear(faultinject.PointSolverPanic)
	if err := srv.ResolveNow(); err != nil {
		t.Fatalf("resolve after clearing fault: %v", err)
	}
	code, h = getHealth(t, srv)
	if code != http.StatusOK || h.Status != "healthy" || !h.Current || h.ConsecutiveFailures != 0 {
		t.Fatalf("health after recovery: code %d, %+v, want healthy/current/0 failures", code, h)
	}
	if h.LastSolveError != "" {
		t.Fatalf("last_solve_error %q survived recovery", h.LastSolveError)
	}
}

// TestHealthStaleDegraded degrades on plan staleness alone: churn that
// stays unsolved past StaleAfter flips /healthz without a single solve
// failure.
func TestHealthStaleDegraded(t *testing.T) {
	clock := newFakeClock()
	srv := newTestServer(t, Config{Debounce: time.Hour, Now: clock.Now, StaleAfter: 10 * time.Second})
	registerSmall(t, srv, 2)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	task, err := workload.SmallTask(3)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(task, nil); err != nil {
		t.Fatal(err)
	}
	clock.Advance(9 * time.Second)
	if _, h := getHealth(t, srv); h.Status != "healthy" {
		t.Fatalf("status %q inside the staleness budget, want healthy", h.Status)
	}
	clock.Advance(2 * time.Second)
	_, h := getHealth(t, srv)
	if h.Status != "degraded" || h.StaleForSeconds < 10 {
		t.Fatalf("status %q stale %.0fs, want degraded past StaleAfter", h.Status, h.StaleForSeconds)
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if _, h := getHealth(t, srv); h.Status != "healthy" || h.StaleForSeconds != 0 {
		t.Fatalf("after re-solve: %+v, want healthy and no staleness", h)
	}
}

// TestDrainingMode: Drain refuses new registrations (503) while
// offloads keep serving, and /healthz flips to 503/draining.
func TestDrainingMode(t *testing.T) {
	srv := newTestServer(t, Config{Debounce: time.Hour})
	registerSmall(t, srv, 2)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	srv.Drain()

	code, h := getHealth(t, srv)
	if code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining health: code %d status %q, want 503/draining", code, h.Status)
	}
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest(http.MethodPost, "/v1/tasks",
		strings.NewReader(`{"id":"late","priority":0.5,"rate":5,"min_accuracy":0.5,"max_latency_ms":200,"input_bits":1e5,"snr_db":20}`)))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("register while draining: status %d, want 503", w.Code)
	}
	var body errorBody
	if err := json.Unmarshal(w.Body.Bytes(), &body); err != nil || body.Error.Code != CodeDraining {
		t.Fatalf("register while draining: body %s, want code %q", w.Body, CodeDraining)
	}
	if w := offloadRec(srv, "task-1"); w.Code != http.StatusOK {
		t.Fatalf("offload while draining: status %d, want 200 through the drain window", w.Code)
	}
	task, err := workload.SmallTask(5)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.Register(task, nil); !errors.Is(err, ErrDraining) {
		t.Fatalf("programmatic register while draining: err %v, want ErrDraining", err)
	}
}

// TestOffloadAbortedClientNotCharged: a request whose client already
// disconnected is counted as aborted and consumes no gate tokens.
func TestOffloadAbortedClientNotCharged(t *testing.T) {
	srv := newTestServer(t, Config{Debounce: time.Hour})
	registerSmall(t, srv, 1)
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}

	req := httptest.NewRequest(http.MethodPost, "/v1/offload", strings.NewReader(`{"task":"task-1"}`))
	ctx, cancel := context.WithCancel(req.Context())
	cancel() // the client is gone before the handler runs
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req.WithContext(ctx))
	if w.Code != 499 {
		t.Fatalf("aborted offload: status %d, want 499", w.Code)
	}
	if got := srv.Stats().Aborted(); got != 1 {
		t.Fatalf("Aborted = %d, want 1", got)
	}
	if got := srv.Stats().Admitted("task-1") + srv.Stats().Rejected("task-1"); got != 0 {
		t.Fatalf("aborted request produced %d admit/reject verdicts, want 0", got)
	}
	// The burst token the aborted request did not consume is still there.
	if w := offloadRec(srv, "task-1"); w.Code != http.StatusOK {
		t.Fatalf("offload after abort: status %d, want 200", w.Code)
	}

	// The aborted counter is exported.
	mw := httptest.NewRecorder()
	srv.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	if !strings.Contains(mw.Body.String(), "offloadnn_offload_aborted_total 1") {
		t.Fatal("metrics missing offloadnn_offload_aborted_total 1")
	}
}

// TestChaosChurnSoak hammers the daemon with registry churn and
// offloads while solver.error fires with p=0.3; run under -race this is
// the chaos acceptance soak. After the fault clears the loop must
// converge onto the latest generation with a working plan.
func TestChaosChurnSoak(t *testing.T) {
	inj := faultinject.New(42)
	inj.Set(faultinject.PointSolverError, faultinject.Rule{P: 0.3})
	srv := newTestServer(t, Config{
		Debounce:          time.Millisecond,
		FailureBackoff:    time.Millisecond,
		FailureBackoffMax: 10 * time.Millisecond,
		Faults:            inj,
	})
	registerSmall(t, srv, 3)
	// Ignore the verdict: with p=0.3 this may fail; the soak only needs
	// a first attempt in flight.
	srv.ResolveNow()

	var wg sync.WaitGroup
	const rounds = 25
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base, err := workload.SmallTask(4 + g)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				task := base
				task.ID = fmt.Sprintf("%s-r%d", base.ID, i)
				if err := srv.Register(task, nil); err != nil {
					t.Errorf("churn register: %v", err)
					return
				}
				if err := srv.Deregister(task.ID); err != nil {
					t.Errorf("churn deregister: %v", err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*4; i++ {
				id := fmt.Sprintf("task-%d", i%3+1)
				switch w := offloadRec(srv, id); w.Code {
				case http.StatusOK, http.StatusTooManyRequests:
				default:
					t.Errorf("offload %s under chaos: status %d: %s", id, w.Code, w.Body)
					return
				}
				hw := httptest.NewRecorder()
				srv.ServeHTTP(hw, httptest.NewRequest(http.MethodGet, "/healthz", nil))
				mw := httptest.NewRecorder()
				srv.ServeHTTP(mw, httptest.NewRequest(http.MethodGet, "/metrics", nil))
			}
		}()
	}
	wg.Wait()

	// Force solves until the point has demonstrably fired — how many the
	// background loop produced during the churn is timing-dependent.
	for i := 0; i < 200 && inj.Fires(faultinject.PointSolverError) == 0; i++ {
		srv.ForceResolve()
	}

	// Clear the fault (dropping its counters) and converge.
	fires := inj.Fires(faultinject.PointSolverError)
	inj.Clear(faultinject.PointSolverError)
	if err := srv.ResolveNow(); err != nil {
		t.Fatalf("converging resolve after chaos: %v", err)
	}
	ep := srv.Current()
	if ep == nil || ep.Generation != srv.Registry().Generation() {
		t.Fatal("no current epoch after chaos cleared")
	}
	if srv.Registry().Len() != 3 {
		t.Fatalf("registry has %d tasks after chaos, want the 3 base tasks", srv.Registry().Len())
	}
	if fires == 0 {
		t.Fatal("chaos soak never actually injected a failure")
	}
	if w := offloadRec(srv, "task-1"); w.Code != http.StatusOK && w.Code != http.StatusTooManyRequests {
		t.Fatalf("post-chaos offload: status %d", w.Code)
	}
}
