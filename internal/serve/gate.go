package serve

import (
	"math"
	"sync"
	"time"
)

// Gate enforces one task's notified admission rate z·λ on the offload
// request path (the "rate notification" step of the Fig. 4 loop, turned
// into an active admission control): a token bucket refilled at Rate
// requests per second with one second of burst capacity. Requests beyond
// the bucket are rejected with a retry hint rather than queued, so an
// over-rate UE degrades gracefully and can never grow an unbounded
// backlog at the edge. It is safe for concurrent use.
type Gate struct {
	mu     sync.Mutex
	rate   float64 // tokens per second (z·λ)
	burst  float64 // bucket capacity
	tokens float64
	last   time.Time
	now    func() time.Time
}

// NewGate creates a gate admitting `rate` requests per second. The burst
// capacity is one second's worth of tokens, at least one, so a conforming
// periodic source is never spuriously rejected. A non-positive rate
// yields a gate that rejects everything. now is the clock (nil =
// time.Now); injectable for deterministic tests.
func NewGate(rate float64, now func() time.Time) *Gate {
	if now == nil {
		now = time.Now
	}
	g := &Gate{rate: rate, now: now}
	if rate > 0 {
		g.burst = math.Max(1, rate)
		g.tokens = g.burst
	}
	g.last = now()
	return g
}

// Rate returns the enforced rate in requests per second.
func (g *Gate) Rate() float64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.rate
}

// Allow consumes one token if available. When the request must be
// rejected it returns false and the duration after which a retry will
// find a token (zero when the gate's rate is zero and no retry can ever
// succeed).
func (g *Gate) Allow() (bool, time.Duration) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.rate <= 0 {
		return false, 0
	}
	t := g.now()
	if dt := t.Sub(g.last).Seconds(); dt > 0 {
		g.tokens = math.Min(g.burst, g.tokens+dt*g.rate)
	}
	g.last = t
	if g.tokens >= 1 {
		g.tokens--
		return true, 0
	}
	wait := (1 - g.tokens) / g.rate
	return false, time.Duration(wait * float64(time.Second))
}
