package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock is a manually advanced clock for deterministic gate tests.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock {
	return &fakeClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *fakeClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestGateBurstAndRefill(t *testing.T) {
	clock := newFakeClock()
	g := NewGate(2, clock.Now) // burst = max(1, 2) = 2 tokens

	for i := 0; i < 2; i++ {
		if ok, _ := g.Allow(); !ok {
			t.Fatalf("request %d within burst rejected", i+1)
		}
	}
	ok, wait := g.Allow()
	if ok {
		t.Fatal("third immediate request admitted beyond burst")
	}
	if wait <= 0 || wait > 500*time.Millisecond {
		t.Fatalf("retry hint %v, want in (0, 500ms] for rate 2/s", wait)
	}

	// After the hinted wait exactly one token is available.
	clock.Advance(wait)
	if ok, _ := g.Allow(); !ok {
		t.Fatal("request after hinted wait rejected")
	}
	if ok, _ := g.Allow(); ok {
		t.Fatal("second request after single-token refill admitted")
	}

	// A long idle period refills at most the burst capacity.
	clock.Advance(time.Minute)
	for i := 0; i < 2; i++ {
		if ok, _ := g.Allow(); !ok {
			t.Fatalf("request %d after refill rejected", i+1)
		}
	}
	if ok, _ := g.Allow(); ok {
		t.Fatal("burst capacity exceeded after idle refill")
	}
}

func TestGateSubUnitRateStillBurstsOne(t *testing.T) {
	clock := newFakeClock()
	g := NewGate(0.5, clock.Now) // burst clamps to 1
	if ok, _ := g.Allow(); !ok {
		t.Fatal("first request at sub-unit rate rejected")
	}
	ok, wait := g.Allow()
	if ok {
		t.Fatal("second immediate request admitted")
	}
	if want := 2 * time.Second; wait != want {
		t.Fatalf("retry hint %v, want %v for rate 0.5/s", wait, want)
	}
}

func TestGateZeroRateRejectsAll(t *testing.T) {
	g := NewGate(0, nil)
	ok, wait := g.Allow()
	if ok {
		t.Fatal("zero-rate gate admitted a request")
	}
	if wait != 0 {
		t.Fatalf("zero-rate gate hinted retry %v, want 0 (no retry can succeed)", wait)
	}
}

func TestGateExactRateConforming(t *testing.T) {
	clock := newFakeClock()
	g := NewGate(5, clock.Now)
	// A periodic source at exactly the admitted rate is never rejected.
	for i := 0; i < 100; i++ {
		clock.Advance(200 * time.Millisecond)
		if ok, _ := g.Allow(); !ok {
			t.Fatalf("conforming request %d rejected", i)
		}
	}
}
