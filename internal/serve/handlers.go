package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/dnn"
	"offloadnn/internal/exec"
)

// TaskSpec is the JSON body of POST /v1/tasks: the request-side fields
// of a core.Task. Candidate paths are built server-side from the
// configured DNN catalog.
type TaskSpec struct {
	ID           string  `json:"id"`
	Priority     float64 `json:"priority"`
	Rate         float64 `json:"rate"`
	MinAccuracy  float64 `json:"min_accuracy"`
	MaxLatencyMS float64 `json:"max_latency_ms"`
	InputBits    float64 `json:"input_bits"`
	SNRdB        float64 `json:"snr_db"`
}

// Task converts the spec into a core.Task (without paths).
func (s TaskSpec) Task() core.Task {
	return core.Task{
		ID:          s.ID,
		Priority:    s.Priority,
		Rate:        s.Rate,
		MinAccuracy: s.MinAccuracy,
		MaxLatency:  time.Duration(s.MaxLatencyMS * float64(time.Millisecond)),
		InputBits:   s.InputBits,
		SNRdB:       s.SNRdB,
	}
}

// OffloadRequest is the JSON body of POST /v1/offload. A request without
// Input is an admission probe (pre-execution-layer behavior): it spends a
// gate token and returns the planned serving parameters. A request with
// Input runs the frame through the execution backend after the gate
// admits it.
type OffloadRequest struct {
	Task string `json:"task"`
	// Input is the flattened input tensor (C·H·W values, the backend's
	// InputShape order); empty for an admission probe.
	Input []float64 `json:"input,omitempty"`
	// DeadlineMS overrides the request's deadline budget. Zero (absent)
	// uses the task's plan-time latency bound L_τ; positive replaces it;
	// negative opts the request out of any deadline. Ignored for
	// admission probes (no execution, nothing to miss).
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
}

// OffloadResponse is the success body of POST /v1/offload: the epoch
// that admitted the request, the planned serving parameters, and — for
// executed requests — the model output and measured latency.
type OffloadResponse struct {
	Task         string  `json:"task"`
	Epoch        uint64  `json:"epoch"`
	AdmittedRate float64 `json:"admitted_rate"`
	Path         string  `json:"path,omitempty"`
	DNN          string  `json:"dnn,omitempty"`
	LatencyMS    float64 `json:"latency_ms"`
	// Executed fields, present only when the request carried an input.
	MeasuredLatencyMS float64   `json:"measured_latency_ms,omitempty"`
	BatchSize         int       `json:"batch_size,omitempty"`
	Logits            []float64 `json:"logits,omitempty"`
	Argmax            *int      `json:"argmax,omitempty"`
	Simulated         bool      `json:"simulated,omitempty"`
	// DeadlineMS is the effective deadline budget the request ran under
	// (plan-time L_τ or the per-request override); absent when the
	// request carried no deadline. Clients compare it against
	// MeasuredLatencyMS for client-side hit-rate accounting.
	DeadlineMS float64 `json:"deadline_ms,omitempty"`
	// Hops is the per-hop breakdown of a split-path request (one entry
	// per pipeline segment, head first); absent for whole-path serving.
	Hops []dnn.ActivationHop `json:"hops,omitempty"`
}

// TaskStatus is one entry of GET /v1/tasks.
type TaskStatus struct {
	ID           string  `json:"id"`
	Priority     float64 `json:"priority"`
	Rate         float64 `json:"rate"`
	Admitted     bool    `json:"admitted"`
	AdmittedRate float64 `json:"admitted_rate"`
	Path         string  `json:"path,omitempty"`
	DNN          string  `json:"dnn,omitempty"`
	LatencyMS    float64 `json:"latency_ms,omitempty"`
}

func (s *Server) routes() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/tasks", s.handleRegister)
	mux.HandleFunc("GET /v1/tasks", s.handleListTasks)
	mux.HandleFunc("DELETE /v1/tasks/{id}", s.handleDeregister)
	mux.HandleFunc("POST /v1/offload", s.handleOffload)
	mux.HandleFunc("POST /v1/stage", s.handleStage)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

// Machine-readable error codes of the unified error envelope. Every
// non-2xx response across the API carries
// {"error": {"code": <code>, "message": <human text>}}.
const (
	// CodeInvalidRequest: malformed body or invalid task fields (400).
	CodeInvalidRequest = "invalid_request"
	// CodeTaskExists: registration under a live task ID (409).
	CodeTaskExists = "task_exists"
	// CodeUnknownTask: operation on an ID that is not registered (404).
	CodeUnknownTask = "unknown_task"
	// CodeNotAdmitted: the current epoch does not admit the task (429).
	CodeNotAdmitted = "not_admitted"
	// CodeOverRate: traffic beyond the task's admitted rate z·λ (429).
	CodeOverRate = "over_rate"
	// CodeDraining: registration refused while the server drains (503).
	CodeDraining = "draining"
	// CodeBackend: the execution backend failed the admitted request
	// (500; retried requests may land on the next epoch's models).
	CodeBackend = "backend_failed"
	// CodeDeadline: the request's deadline expired before (or while) it
	// waited for a batch slot, so the runtime shed it instead of serving
	// a stale result (504).
	CodeDeadline = "deadline_exceeded"
	// CodeOverload: backpressure shed the request — its model's bounded
	// intake queue was full and this request held the latest deadline
	// among the waiters (503 with Retry-After).
	CodeOverload = "overloaded"
)

// errorBody is the unified JSON error envelope.
type errorBody struct {
	Error errorDetail `json:"error"`
}

type errorDetail struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeError(w http.ResponseWriter, status int, code, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: errorDetail{Code: code, Message: fmt.Sprintf(format, args...)}})
}

// boolGauge renders a bool as a 0/1 metric value.
func boolGauge(b bool) int {
	if b {
		return 1
	}
	return 0
}

// retryAfter formats a Retry-After header value: whole seconds, at
// least 1.
func retryAfter(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}

func (s *Server) handleRegister(w http.ResponseWriter, r *http.Request) {
	var spec TaskSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid task spec: %v", err)
		return
	}
	if err := s.Register(spec.Task(), nil); err != nil {
		if errors.Is(err, ErrDraining) {
			writeError(w, http.StatusServiceUnavailable, CodeDraining, "%v", err)
			return
		}
		if errors.Is(err, ErrExists) {
			writeError(w, http.StatusConflict, CodeTaskExists, "%v", err)
			return
		}
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "%v", err)
		return
	}
	// 202: the task is registered; its admission verdict arrives with
	// the next epoch, within the debounce window.
	writeJSON(w, http.StatusAccepted, map[string]any{
		"id":         spec.ID,
		"status":     "pending",
		"generation": s.reg.Generation(),
	})
}

func (s *Server) handleDeregister(w http.ResponseWriter, r *http.Request) {
	if err := s.Deregister(r.PathValue("id")); err != nil {
		writeError(w, http.StatusNotFound, CodeUnknownTask, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleListTasks(w http.ResponseWriter, r *http.Request) {
	tasks, _, _ := s.reg.Snapshot()
	ep := s.resolver.Current()
	out := make([]TaskStatus, 0, len(tasks))
	for _, t := range tasks {
		st := TaskStatus{ID: t.ID, Priority: t.Priority, Rate: t.Rate}
		if rate := ep.AdmittedRate(t.ID); rate > 0 {
			st.Admitted = true
			st.AdmittedRate = rate
			if lat, ok := ep.PredictedLatency(t.ID); ok {
				st.LatencyMS = float64(lat) / float64(time.Millisecond)
			}
			if a, ok := ep.Assignment(t.ID); ok {
				st.Path = a.Path.ID
				st.DNN = a.Path.DNN
			}
		}
		out = append(out, st)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleOffload(w http.ResponseWriter, r *http.Request) {
	s.stats.requests.Add(1)
	var req OffloadRequest
	// 1 MiB: a full-quality input tensor serialized as JSON numbers
	// (e.g. 3x32x32 floats) comfortably fits; anything bigger is abuse.
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, CodeInvalidRequest, "invalid offload request: %v", err)
		return
	}
	if sp, gate, ok := s.segTable().head(req.Task); ok {
		// This node heads a split pipeline for the task: gate here, run
		// the head segment, relay the activation to the next hop.
		s.handleSplitOffload(w, r, req, sp, gate)
		return
	}
	if !s.reg.Has(req.Task) {
		writeError(w, http.StatusNotFound, CodeUnknownTask, "task %q not registered", req.Task)
		return
	}
	if r.Context().Err() != nil {
		// The client is gone: don't burn the task's gate tokens on a
		// response no one will read. 499 is nginx's "client closed
		// request" convention; the status is for the access log only.
		s.stats.aborted.Add(1)
		w.WriteHeader(499)
		return
	}
	ep := s.resolver.Current()
	gate := ep.Gate(req.Task)
	if gate == nil {
		// Registered but not admitted by the current epoch: either the
		// re-solve is still pending (retry after the debounce window)
		// or the solver rejected the task under current load.
		s.stats.recordReject(req.Task)
		w.Header().Set("Retry-After", retryAfter(s.cfg.Debounce))
		writeError(w, http.StatusTooManyRequests, CodeNotAdmitted, "task %q not admitted by current epoch", req.Task)
		return
	}
	ok, wait := gate.Allow()
	if !ok {
		s.stats.recordReject(req.Task)
		w.Header().Set("Retry-After", retryAfter(wait))
		writeError(w, http.StatusTooManyRequests, CodeOverRate,
			"task %q over its admitted rate %.3g req/s", req.Task, gate.Rate())
		return
	}
	lat, _ := ep.PredictedLatency(req.Task)
	s.stats.recordAdmit(req.Task, lat.Seconds())
	resp := OffloadResponse{
		Task:         req.Task,
		Epoch:        ep.N,
		AdmittedRate: ep.AdmittedRate(req.Task),
		LatencyMS:    float64(lat) / float64(time.Millisecond),
	}
	if a, ok := ep.Assignment(req.Task); ok {
		resp.Path = a.Path.ID
		resp.DNN = a.Path.DNN
	}
	if len(req.Input) > 0 {
		// Deadline budget: the task's plan-time bound L_τ by default, a
		// positive DeadlineMS overrides it, a negative one opts out.
		var budget time.Duration
		switch {
		case req.DeadlineMS > 0:
			budget = time.Duration(req.DeadlineMS * float64(time.Millisecond))
		case req.DeadlineMS < 0:
			budget = 0
		default:
			budget = ep.LatencyBound(req.Task)
		}
		var deadline time.Time
		if budget > 0 {
			deadline = s.cfg.Now().Add(budget)
			resp.DeadlineMS = float64(budget) / float64(time.Millisecond)
			// Under sustained deadline pressure, a request whose planned
			// latency already blows its budget is shed here — the verdict
			// is the same 504 the backend would reach, without burning a
			// queue slot another request could hit its deadline in.
			if lat > budget && s.Overloaded() {
				s.stats.earlySheds.Add(1)
				writeError(w, http.StatusGatewayTimeout, CodeDeadline,
					"task %q: predicted latency %.1fms exceeds deadline budget %.1fms under overload",
					req.Task, float64(lat)/float64(time.Millisecond), float64(budget)/float64(time.Millisecond))
				return
			}
		}
		out, err := s.backend.Infer(r.Context(), exec.Request{TaskID: req.Task, Input: req.Input, Deadline: deadline})
		if err != nil {
			s.writeInferError(w, err, CodeDeadline)
			return
		}
		s.stats.recordInfer(req.Task, out.Latency.Seconds())
		resp.MeasuredLatencyMS = float64(out.Latency) / float64(time.Millisecond)
		resp.BatchSize = out.BatchSize
		resp.Simulated = out.Simulated
		if out.Logits != nil {
			resp.Logits = out.Logits
			am := out.Argmax
			resp.Argmax = &am
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	h := s.Health()
	status := http.StatusOK
	if h.State == Draining {
		// Load balancers read 503 as "stop routing here"; degraded
		// stays 200 because the daemon still serves off its last plan.
		status = http.StatusServiceUnavailable
	}
	body := map[string]any{
		"status":               h.State.String(),
		"solve_tier":           h.Tier,
		"epoch":                h.Epoch,
		"generation":           h.Generation,
		"current":              h.Current,
		"generation_lag":       h.GenerationLag,
		"epoch_age_seconds":    h.EpochAge.Seconds(),
		"stale_for_seconds":    h.StaleFor.Seconds(),
		"consecutive_failures": h.ConsecutiveFailures,
		"breaker_open":         h.BreakerOpen,
		"overloaded":           h.Overloaded,
		"recent_sheds":         h.RecentSheds,
		"tasks":                s.reg.Len(),
		"uptime_seconds":       s.cfg.Now().Sub(s.stats.start).Seconds(),
	}
	if h.LastError != "" {
		body["last_solve_error"] = h.LastError
	}
	writeJSON(w, status, body)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	ep := s.resolver.Current()
	var epoch uint64
	if ep != nil {
		epoch = ep.N
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// family writes the exposition-format metadata once per metric family.
	family := func(name, typ, help string) {
		fmt.Fprintf(w, "# HELP %s %s\n", name, help)
		fmt.Fprintf(w, "# TYPE %s %s\n", name, typ)
	}
	family("offloadnn_uptime_seconds", "gauge", "Seconds since the server started.")
	fmt.Fprintf(w, "offloadnn_uptime_seconds %g\n", s.cfg.Now().Sub(s.stats.start).Seconds())
	family("offloadnn_tasks_registered", "gauge", "Tasks currently registered with the controller.")
	fmt.Fprintf(w, "offloadnn_tasks_registered %d\n", s.reg.Len())
	family("offloadnn_epoch", "counter", "Sequence number of the active deployment epoch.")
	fmt.Fprintf(w, "offloadnn_epoch %d\n", epoch)
	family("offloadnn_solves_total", "counter", "DOT solver invocations.")
	fmt.Fprintf(w, "offloadnn_solves_total %d\n", s.stats.Solves())
	family("offloadnn_solve_errors_total", "counter", "DOT solver invocations that failed.")
	fmt.Fprintf(w, "offloadnn_solve_errors_total %d\n", s.stats.SolveErrors())
	family("offloadnn_solve_panics_total", "counter", "Solver panics recovered into solve errors.")
	fmt.Fprintf(w, "offloadnn_solve_panics_total %d\n", s.stats.SolvePanics())
	family("offloadnn_solve_duration_seconds", "gauge", "Duration of the most recent solve, overall and per solver tier.")
	fmt.Fprintf(w, "offloadnn_solve_duration_seconds %g\n", s.stats.LastSolveLatency().Seconds())
	solveTiers := []core.Tier{core.TierHeuristic, core.TierOptimal, core.TierApprox}
	for _, t := range solveTiers {
		if s.stats.TierSolves(t) > 0 {
			fmt.Fprintf(w, "offloadnn_solve_duration_seconds{tier=%q} %g\n", t.String(), s.stats.TierLastSolveLatency(t).Seconds())
		}
	}
	family("offloadnn_solve_tier", "gauge", "Solver tier of the last published epoch, one-hot per tier.")
	for _, t := range solveTiers {
		fmt.Fprintf(w, "offloadnn_solve_tier{tier=%q} %d\n", t.String(), boolGauge(ep != nil && ep.Deployment != nil && ep.Tier == t))
	}
	family("offloadnn_solve_tier_total", "counter", "Published epochs per solver tier.")
	for _, t := range solveTiers {
		fmt.Fprintf(w, "offloadnn_solve_tier_total{tier=%q} %d\n", t.String(), s.stats.TierSolves(t))
	}
	h := s.Health()
	family("offloadnn_health_state", "gauge", "Serving condition: 0 healthy, 1 degraded, 2 draining.")
	fmt.Fprintf(w, "offloadnn_health_state %d\n", int(h.State))
	family("offloadnn_consecutive_solve_failures", "gauge", "Current run of failed re-solves.")
	fmt.Fprintf(w, "offloadnn_consecutive_solve_failures %d\n", h.ConsecutiveFailures)
	family("offloadnn_epoch_age_seconds", "gauge", "Age of the published plan (uptime before the first solve).")
	fmt.Fprintf(w, "offloadnn_epoch_age_seconds %g\n", h.EpochAge.Seconds())
	family("offloadnn_epoch_stale_seconds", "gauge", "How long the plan has trailed the registry; 0 while current.")
	fmt.Fprintf(w, "offloadnn_epoch_stale_seconds %g\n", h.StaleFor.Seconds())
	family("offloadnn_breaker_open", "gauge", "Incremental-to-full circuit breaker: 1 open, 0 closed.")
	fmt.Fprintf(w, "offloadnn_breaker_open %d\n", boolGauge(h.BreakerOpen))
	family("offloadnn_offload_requests_total", "counter", "Offload requests received.")
	fmt.Fprintf(w, "offloadnn_offload_requests_total %d\n", s.stats.Requests())
	family("offloadnn_offload_aborted_total", "counter", "Offload requests whose client disconnected before gate work.")
	fmt.Fprintf(w, "offloadnn_offload_aborted_total %d\n", s.stats.Aborted())
	family("offloadnn_offload_admitted_total", "counter", "Offload requests admitted, per task.")
	for _, id := range s.stats.taskIDs() {
		fmt.Fprintf(w, "offloadnn_offload_admitted_total{task=%q} %d\n", id, s.stats.Admitted(id))
	}
	family("offloadnn_offload_rejected_total", "counter", "Offload requests rejected, per task.")
	for _, id := range s.stats.taskIDs() {
		fmt.Fprintf(w, "offloadnn_offload_rejected_total{task=%q} %d\n", id, s.stats.Rejected(id))
	}
	if ep != nil && ep.Deployment != nil {
		family("offloadnn_admitted_rate", "gauge", "Admitted frame rate z*lambda per task, frames/s.")
		for i := range ep.Tasks {
			id := ep.Tasks[i].ID
			if rate := ep.AdmittedRate(id); rate > 0 {
				fmt.Fprintf(w, "offloadnn_admitted_rate{task=%q} %g\n", id, rate)
			}
		}
	}
	// Split-pipeline families: segment routing plus per-hop accounting.
	if segs := s.Segments(); len(segs) > 0 {
		splitTasks := make(map[string]bool)
		for _, sp := range segs {
			splitTasks[sp.Task] = true
		}
		family("offloadnn_split_paths", "gauge", "Split-path pipelines this node serves a segment of.")
		fmt.Fprintf(w, "offloadnn_split_paths %d\n", len(splitTasks))
		family("offloadnn_split_segments", "gauge", "Installed stage-range segments, one series per route.")
		for _, sp := range segs {
			fmt.Fprintf(w, "offloadnn_split_segments{task=%q,from=\"%d\",to=\"%d\",hop=\"%d\"} 1\n", sp.Task, sp.From, sp.To, sp.Hop)
		}
	}
	family("offloadnn_activation_bytes", "counter", "Boundary-activation envelope bytes forwarded to next hops.")
	fmt.Fprintf(w, "offloadnn_activation_bytes %d\n", s.stats.ActivationBytes())
	if s.stats.HopLatency().Len() > 0 {
		if qs, err := s.stats.HopLatency().Quantiles(50, 95, 99); err == nil {
			family("offloadnn_hop_latency_seconds", "summary", "Split-segment execution latency quantiles on this node.")
			for i, q := range []string{"0.5", "0.95", "0.99"} {
				fmt.Fprintf(w, "offloadnn_hop_latency_seconds{quantile=%q} %g\n", q, qs[i])
			}
		}
	}
	family("offloadnn_latency_samples", "gauge", "End-to-end latency samples in the quantile window.")
	fmt.Fprintf(w, "offloadnn_latency_samples %d\n", s.stats.latency.Len())
	if qs, err := s.stats.latency.Quantiles(50, 95, 99); err == nil {
		family("offloadnn_latency_seconds", "summary", "End-to-end offload latency quantiles.")
		for i, q := range []string{"0.5", "0.95", "0.99"} {
			fmt.Fprintf(w, "offloadnn_latency_seconds{quantile=%q} %g\n", q, qs[i])
		}
	}
	// Execution-layer families: per-task measured inference latency plus
	// the backend's batching state.
	family("offloadnn_infer_latency_seconds", "summary", "Measured inference latency quantiles per task (executed offloads only).")
	for _, id := range s.stats.taskIDs() {
		win := s.stats.InferWindow(id)
		if win == nil {
			continue
		}
		if qs, err := win.Quantiles(50, 95, 99); err == nil {
			for i, q := range []string{"0.5", "0.95", "0.99"} {
				fmt.Fprintf(w, "offloadnn_infer_latency_seconds{task=%q,quantile=%q} %g\n", id, q, qs[i])
			}
		}
	}
	bs := s.backend.Stats()
	family("offloadnn_batch_size", "gauge", "Size of the most recently executed inference batch.")
	fmt.Fprintf(w, "offloadnn_batch_size %d\n", bs.LastBatchSize)
	family("offloadnn_backend_queue_depth", "gauge", "Requests waiting in the backend's batching queues.")
	fmt.Fprintf(w, "offloadnn_backend_queue_depth %d\n", bs.QueueDepth)
	family("offloadnn_backend_models", "gauge", "Live assembled path models in the execution backend.")
	fmt.Fprintf(w, "offloadnn_backend_models %d\n", bs.Models)
	family("offloadnn_backend_blocks", "gauge", "Live shared block instances in the execution backend.")
	fmt.Fprintf(w, "offloadnn_backend_blocks %d\n", bs.Blocks)
	if len(bs.PathPrecisions) > 0 {
		family("offloadnn_model_precision", "gauge", "Kernel precision each deployed path runs at (post accuracy-gate), one series per path.")
		sigs := make([]string, 0, len(bs.PathPrecisions))
		for sig := range bs.PathPrecisions {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			fmt.Fprintf(w, "offloadnn_model_precision{path=%q,precision=%q} 1\n", sig, bs.PathPrecisions[sig])
		}
	}
	family("offloadnn_quant_fallback_total", "counter", "Precision-tier demotions applied by the install-time accuracy gate.")
	fmt.Fprintf(w, "offloadnn_quant_fallback_total %d\n", bs.QuantFallbacks)
	family("offloadnn_weights_mmap_bytes", "gauge", "Resident bytes of artifact weight buffers aliased zero-copy by live blocks.")
	fmt.Fprintf(w, "offloadnn_weights_mmap_bytes %d\n", bs.WeightBytes)
	// Deadline-aware runtime families.
	family("offloadnn_deadline_hit_ratio", "gauge", "Fraction of deadline-carrying requests served at or before their deadline; 1 with no samples.")
	hitRatio := 1.0
	if total := bs.DeadlineHits + bs.DeadlineMisses; total > 0 {
		hitRatio = float64(bs.DeadlineHits) / float64(total)
	}
	fmt.Fprintf(w, "offloadnn_deadline_hit_ratio %g\n", hitRatio)
	family("offloadnn_shed_total", "counter", "Requests shed by the deadline-aware runtime, by reason.")
	fmt.Fprintf(w, "offloadnn_shed_total{reason=\"late\"} %d\n", bs.ShedLate+int64(s.stats.EarlySheds()))
	fmt.Fprintf(w, "offloadnn_shed_total{reason=\"queue_full\"} %d\n", bs.ShedQueueFull)
	fmt.Fprintf(w, "offloadnn_shed_total{reason=\"canceled\"} %d\n", bs.ShedCanceled)
	family("offloadnn_batch_window_seconds", "gauge", "Batch window most recently applied by the adaptive executor.")
	fmt.Fprintf(w, "offloadnn_batch_window_seconds %g\n", bs.LastWindow.Seconds())
	family("offloadnn_overload", "gauge", "1 while backend sheds inside the overload window exceed the threshold.")
	fmt.Fprintf(w, "offloadnn_overload %d\n", boolGauge(h.Overloaded))
	if len(bs.QueueSlack) > 0 {
		family("offloadnn_queue_slack_seconds", "gauge", "Tightest remaining deadline slack per model intake queue; negative means a late waiter.")
		sigs := make([]string, 0, len(bs.QueueSlack))
		for sig := range bs.QueueSlack {
			sigs = append(sigs, sig)
		}
		sort.Strings(sigs)
		for _, sig := range sigs {
			fmt.Fprintf(w, "offloadnn_queue_slack_seconds{path=%q} %g\n", sig, bs.QueueSlack[sig].Seconds())
		}
	}
}
