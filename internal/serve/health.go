package serve

import "time"

// HealthState is the daemon's coarse serving condition, the state
// machine /healthz and /metrics report.
//
//	healthy  ──ConsecutiveFailures ≥ DegradedAfter, the plan trails
//	│   ▲      the registry longer than StaleAfter, or the execution
//	│   │      runtime sheds ≥ OverloadAfter requests inside the
//	│   │      trailing OverloadWindow──▶  degraded
//	│   └──successful, current re-solve and a drained shed window──┘
//	└──Drain/Close──▶  draining   (terminal: no un-drain)
type HealthState int

const (
	// Healthy: the published plan tracks the registry and solves
	// succeed.
	Healthy HealthState = iota
	// Degraded: the daemon is live and serving off its last-good epoch,
	// but re-solves keep failing or the plan is stale. Offloads still
	// work; operators should look at LastError.
	Degraded
	// Draining: Drain/Close was called. New registrations get 503;
	// offloads keep serving through the drain window.
	Draining
)

func (h HealthState) String() string {
	switch h {
	case Degraded:
		return "degraded"
	case Draining:
		return "draining"
	}
	return "healthy"
}

// Health is one computed snapshot of the daemon's serving condition.
type Health struct {
	// State is the aggregate verdict.
	State HealthState
	// Epoch and Generation identify the published plan (zero before the
	// first solve) and the registry state it was solved from.
	Epoch      uint64
	Generation uint64
	// Tier names the solver tier that produced the published plan
	// ("heuristic", "optimal", "approx"); empty before the first
	// non-empty epoch.
	Tier string
	// Current reports whether the plan covers the latest registry
	// generation.
	Current bool
	// GenerationLag is how many registry mutations the plan is behind.
	GenerationLag uint64
	// EpochAge is how long ago the plan was published; for a daemon
	// that has never published, how long it has been up.
	EpochAge time.Duration
	// StaleFor is how long the plan has trailed the registry, zero
	// while current.
	StaleFor time.Duration
	// ConsecutiveFailures is the current run of failed re-solves.
	ConsecutiveFailures uint64
	// BreakerOpen reports the incremental→full circuit breaker.
	BreakerOpen bool
	// Overloaded reports sustained deadline pressure in the execution
	// runtime: RecentSheds ≥ Config.OverloadAfter inside the trailing
	// OverloadWindow. Degrades the aggregate state while it lasts; the
	// server returns to healthy once the shed window drains.
	Overloaded bool
	// RecentSheds is the backend shed count inside the overload window.
	RecentSheds int
	// LastError is the most recent solve failure, empty after a
	// success.
	LastError string
}

// Health computes the current health snapshot. Degradation is driven by
// the two signals that matter to a plan consumer: the resolver keeps
// failing (ConsecutiveFailures ≥ DegradedAfter), or the published plan
// has trailed the registry for longer than StaleAfter — generation lag
// alone is normal churn inside the debounce window, so only sustained
// lag degrades.
func (s *Server) Health() Health {
	now := s.cfg.Now()
	ep := s.resolver.Current()
	gen := s.reg.Generation()
	h := Health{
		Generation:          gen,
		ConsecutiveFailures: s.resolver.ConsecutiveFailures(),
		BreakerOpen:         s.resolver.BreakerOpen(),
		LastError:           s.stats.LastSolveError(),
	}
	var epGen uint64
	published := s.stats.start
	if ep != nil {
		h.Epoch = ep.N
		epGen = ep.Generation
		published = ep.PublishedAt
		if ep.Deployment != nil {
			h.Tier = ep.Tier.String()
		}
	}
	h.Current = ep != nil && epGen == gen
	if gen > epGen {
		h.GenerationLag = gen - epGen
	}
	h.EpochAge = now.Sub(published)
	if since, ok := s.resolver.StaleSince(); ok {
		h.StaleFor = now.Sub(since)
	}
	h.RecentSheds = s.stats.RecentSheds(s.cfg.OverloadWindow, now)
	h.Overloaded = s.cfg.OverloadAfter >= 0 && h.RecentSheds >= s.cfg.OverloadAfter
	switch {
	case s.draining.Load():
		h.State = Draining
	case h.ConsecutiveFailures >= uint64(s.cfg.DegradedAfter):
		h.State = Degraded
	case h.StaleFor > s.cfg.StaleAfter:
		h.State = Degraded
	case h.Overloaded:
		h.State = Degraded
	default:
		h.State = Healthy
	}
	return h
}
