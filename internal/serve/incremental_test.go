package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/workload"
)

// decodeErrorEnvelope parses the unified error body and returns its code.
func decodeErrorEnvelope(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	var body errorBody
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("error response is not the envelope: %v", err)
	}
	if body.Error.Code == "" || body.Error.Message == "" {
		t.Fatalf("envelope missing code or message: %+v", body)
	}
	return body.Error.Code
}

// TestErrorEnvelope drives every error path of the API and checks each
// returns the unified {"error": {"code", "message"}} body with the
// documented machine-readable code.
func TestErrorEnvelope(t *testing.T) {
	srv := newTestServer(t, Config{Debounce: time.Hour})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	// Malformed register body → invalid_request.
	resp := postJSON(t, ts.URL+"/v1/tasks", map[string]any{"id": "x", "bogus": true})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad body: status %d", resp.StatusCode)
	}
	if code := decodeErrorEnvelope(t, resp); code != CodeInvalidRequest {
		t.Fatalf("bad body: code %q, want %q", code, CodeInvalidRequest)
	}

	// Invalid task fields → invalid_request.
	resp = postJSON(t, ts.URL+"/v1/tasks", TaskSpec{ID: "neg", Rate: -1})
	if code := decodeErrorEnvelope(t, resp); code != CodeInvalidRequest {
		t.Fatalf("invalid fields: code %q, want %q", code, CodeInvalidRequest)
	}

	// Duplicate registration → task_exists.
	spec := smallSpec(t, 1)
	resp = postJSON(t, ts.URL+"/v1/tasks", spec)
	resp.Body.Close()
	resp = postJSON(t, ts.URL+"/v1/tasks", spec)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate: status %d", resp.StatusCode)
	}
	if code := decodeErrorEnvelope(t, resp); code != CodeTaskExists {
		t.Fatalf("duplicate: code %q, want %q", code, CodeTaskExists)
	}

	// Deregistering an unknown ID → unknown_task.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tasks/ghost", nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown delete: status %d", dresp.StatusCode)
	}
	if code := decodeErrorEnvelope(t, dresp); code != CodeUnknownTask {
		t.Fatalf("unknown delete: code %q, want %q", code, CodeUnknownTask)
	}

	// Offload for an unregistered task → unknown_task.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "ghost"})
	if code := decodeErrorEnvelope(t, resp); code != CodeUnknownTask {
		t.Fatalf("unknown offload: code %q, want %q", code, CodeUnknownTask)
	}

	// Registered but no epoch yet (debounce is an hour) → not_admitted.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: spec.ID})
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pre-epoch offload: status %d", resp.StatusCode)
	}
	if code := decodeErrorEnvelope(t, resp); code != CodeNotAdmitted {
		t.Fatalf("pre-epoch offload: code %q, want %q", code, CodeNotAdmitted)
	}

	// Admitted but over the token bucket → over_rate.
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	sawOver := false
	for i := 0; i < 50 && !sawOver; i++ {
		resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: spec.ID})
		switch resp.StatusCode {
		case http.StatusOK:
			resp.Body.Close()
		case http.StatusTooManyRequests:
			if code := decodeErrorEnvelope(t, resp); code != CodeOverRate {
				t.Fatalf("over-rate: code %q, want %q", code, CodeOverRate)
			}
			sawOver = true
		default:
			t.Fatalf("offload: unexpected status %d", resp.StatusCode)
		}
	}
	if !sawOver {
		t.Fatal("never drove the gate over its admitted rate")
	}
}

// TestIncrementalResolverMatchesFull runs the same churn sequence through
// two daemons — the default (incremental SolverSession) and one pinned to
// from-scratch solves — and checks every epoch's admission plan matches
// to 1e-9.
func TestIncrementalResolverMatchesFull(t *testing.T) {
	inc := newTestServer(t, Config{Debounce: time.Hour})
	full := newTestServer(t, Config{Debounce: time.Hour, Solve: core.SolveOffloaDNN})

	compare := func(step string) {
		t.Helper()
		if err := inc.ResolveNow(); err != nil {
			t.Fatalf("%s: incremental resolve: %v", step, err)
		}
		if err := full.ResolveNow(); err != nil {
			t.Fatalf("%s: full resolve: %v", step, err)
		}
		ei, ef := inc.Current(), full.Current()
		if (ei.Deployment == nil) != (ef.Deployment == nil) {
			t.Fatalf("%s: deployment presence differs", step)
		}
		if ei.Deployment == nil {
			return
		}
		ci := ei.Deployment.Solution.Cost
		cf := ef.Deployment.Solution.Cost
		if math.Abs(ci-cf) > 1e-9 {
			t.Fatalf("%s: incremental cost %v != full %v", step, ci, cf)
		}
		for id, rate := range ef.Deployment.AdmittedRates {
			if got := ei.Deployment.AdmittedRates[id]; math.Abs(got-rate) > 1e-9 {
				t.Fatalf("%s: task %s admitted rate %v != %v", step, id, got, rate)
			}
		}
		if len(ei.Deployment.AdmittedRates) != len(ef.Deployment.AdmittedRates) {
			t.Fatalf("%s: admitted sets differ: %d vs %d",
				step, len(ei.Deployment.AdmittedRates), len(ef.Deployment.AdmittedRates))
		}
	}

	// Register all five tasks, then churn: withdraw two, re-register one.
	for i := 1; i <= 5; i++ {
		task, err := workload.SmallTask(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Register(task, nil); err != nil {
			t.Fatal(err)
		}
		if err := full.Register(task, nil); err != nil {
			t.Fatal(err)
		}
		compare("register")
	}
	for _, id := range []string{"task-2", "task-4"} {
		if err := inc.Deregister(id); err != nil {
			t.Fatal(err)
		}
		if err := full.Deregister(id); err != nil {
			t.Fatal(err)
		}
		compare("deregister " + id)
	}
	task, err := workload.SmallTask(2)
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Register(task, nil); err != nil {
		t.Fatal(err)
	}
	if err := full.Register(task, nil); err != nil {
		t.Fatal(err)
	}
	compare("re-register task-2")

	// Draining the registry then refilling exercises the session reset.
	for _, id := range []string{"task-1", "task-2", "task-3", "task-5"} {
		if err := inc.Deregister(id); err != nil {
			t.Fatal(err)
		}
		if err := full.Deregister(id); err != nil {
			t.Fatal(err)
		}
	}
	compare("empty registry")
	for i := 1; i <= 3; i++ {
		task, err := workload.SmallTask(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := inc.Register(task, nil); err != nil {
			t.Fatal(err)
		}
		if err := full.Register(task, nil); err != nil {
			t.Fatal(err)
		}
	}
	compare("refill after empty")
}
