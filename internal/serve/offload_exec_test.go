package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"offloadnn/internal/dnn"
	"offloadnn/internal/exec"
)

func newRealBackend(t *testing.T) *exec.Real {
	t.Helper()
	be, err := exec.NewReal(exec.RealConfig{
		Model: dnn.ResNetConfig{
			InChannels: 3, NumClasses: 4, BaseWidth: 4, StageBlocks: [4]int{1, 1, 1, 1}, Seed: 9,
		},
		BatchSize:   4,
		BatchWindow: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	return be
}

func payloadFor(be exec.Backend) []float64 {
	shape := be.InputShape()
	in := make([]float64, shape[0]*shape[1]*shape[2])
	for i := range in {
		in[i] = float64(i%11) / 11
	}
	return in
}

// TestOffloadExecutesPayload drives the full loop against the real
// backend: register → epoch → POST /v1/offload with an input tensor →
// real logits, argmax and measured latency in the response. A request
// without a payload keeps the pre-execution-layer response shape.
func TestOffloadExecutesPayload(t *testing.T) {
	be := newRealBackend(t)
	srv := newTestServer(t, Config{Debounce: time.Millisecond, Backend: be})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/tasks", smallSpec(t, 1))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("register: %d %s", resp.StatusCode, drain(t, resp))
	}
	drain(t, resp)
	waitCurrent(t, ts.URL)

	// Executed offload: payload in, logits out.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1", Input: payloadFor(be)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offload: %d %s", resp.StatusCode, drain(t, resp))
	}
	var out OffloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Logits) != 4 {
		t.Fatalf("executed offload returned %d logits, want 4: %+v", len(out.Logits), out)
	}
	if out.Argmax == nil || *out.Argmax < 0 || *out.Argmax > 3 {
		t.Fatalf("executed offload argmax %v, want 0..3", out.Argmax)
	}
	if out.MeasuredLatencyMS <= 0 || out.BatchSize < 1 {
		t.Fatalf("executed offload missing measurements: %+v", out)
	}
	if out.Simulated {
		t.Fatalf("real backend answered simulated: %+v", out)
	}

	// Admission probe: no payload, no logits — the PR-1 response shape.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe offload: %d %s", resp.StatusCode, drain(t, resp))
	}
	var probe OffloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&probe); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if probe.Logits != nil || probe.Argmax != nil || probe.MeasuredLatencyMS != 0 {
		t.Fatalf("payload-less offload grew execution fields: %+v", probe)
	}
	if probe.Path == "" || probe.AdmittedRate <= 0 {
		t.Fatalf("payload-less offload lost planning fields: %+v", probe)
	}

	// A wrong-size payload is the client's fault, not the backend's.
	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1", Input: []float64{1, 2}})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad payload: %d, want 400 (%s)", resp.StatusCode, drain(t, resp))
	}
	drain(t, resp)

	// The executed offload shows up in the metrics exposition.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metricsBody := drain(t, mresp)
	for _, want := range []string{
		`offloadnn_infer_latency_seconds{task="task-1",quantile="0.5"}`,
		"offloadnn_batch_size",
		"offloadnn_backend_queue_depth",
		"offloadnn_backend_models",
	} {
		if !strings.Contains(metricsBody, want) {
			t.Fatalf("metrics exposition missing %q:\n%s", want, metricsBody)
		}
	}
}

// TestOffloadSimulatedDefault checks the default backend: a payload
// offload through an unconfigured server answers from the cost model —
// simulated flag set, no logits, modeled latency.
func TestOffloadSimulatedDefault(t *testing.T) {
	srv := newTestServer(t, Config{Debounce: time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/tasks", smallSpec(t, 1))
	drain(t, resp)
	waitCurrent(t, ts.URL)

	resp = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1", Input: []float64{1, 2, 3}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("offload: %d %s", resp.StatusCode, drain(t, resp))
	}
	var out OffloadResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !out.Simulated {
		t.Fatalf("default backend did not mark output simulated: %+v", out)
	}
	if out.Logits != nil {
		t.Fatalf("cost model produced logits: %+v", out)
	}
	if out.MeasuredLatencyMS <= 0 {
		t.Fatalf("simulated offload lost its modeled latency: %+v", out)
	}
}

// TestBackendInstallTracksEpochs asserts the resolver drives the backend
// lifecycle: models exist while tasks are deployed and are released when
// the registry empties.
func TestBackendInstallTracksEpochs(t *testing.T) {
	be := newRealBackend(t)
	srv := newTestServer(t, Config{Debounce: time.Millisecond, Backend: be})

	spec := smallSpec(t, 1)
	if err := srv.Register(spec.Task(), nil); err != nil {
		t.Fatal(err)
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if st := be.Stats(); st.Models == 0 || st.Blocks == 0 {
		t.Fatalf("deployed epoch left the backend empty: %+v", st)
	}
	if err := srv.Deregister(spec.ID); err != nil {
		t.Fatal(err)
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if st := be.Stats(); st.Models != 0 || st.Blocks != 0 {
		t.Fatalf("empty registry left models installed: %+v", st)
	}
}
