//go:build race

package serve

// raceDetectorEnabled relaxes wall-clock acceptance bounds in tests:
// the race detector slows solves by roughly an order of magnitude, so
// deadline assertions that pin real performance get scaled headroom.
const raceDetectorEnabled = true
