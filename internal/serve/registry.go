package serve

import (
	"errors"
	"fmt"
	"sync"

	"offloadnn/internal/core"
	"offloadnn/internal/workload"
)

// ErrExists reports a registration under an ID already live.
var ErrExists = errors.New("serve: task already registered")

// ErrUnknownTask reports an operation on an ID that is not registered.
var ErrUnknownTask = errors.New("serve: unknown task")

// Registry is the daemon's concurrent-safe task table: the set of live
// offloading requests the next epoch's DOT instance is assembled from,
// plus the shared DNN-block catalog their candidate paths reference.
// Every mutation bumps a generation counter so the re-solver can tell a
// stale epoch from a current one.
type Registry struct {
	catalog workload.CatalogParams

	mu     sync.Mutex
	tasks  map[string]core.Task
	order  []string // insertion order, for deterministic instance assembly
	blocks map[string]core.BlockSpec
	gen    uint64
	seq    int // monotonic task index driving catalog accuracy jitter
}

// NewRegistry creates an empty registry whose HTTP-submitted tasks get
// candidate paths built from the given catalog parameters.
func NewRegistry(catalog workload.CatalogParams, blocks map[string]core.BlockSpec) *Registry {
	r := &Registry{
		catalog: catalog,
		tasks:   make(map[string]core.Task),
		blocks:  make(map[string]core.BlockSpec),
	}
	for id, b := range blocks {
		r.blocks[id] = b
	}
	return r
}

// validateTask checks the request-side fields of a task.
func validateTask(t *core.Task) error {
	if t.ID == "" {
		return fmt.Errorf("serve: task has empty ID")
	}
	if t.Priority < 0 || t.Priority > 1 {
		return fmt.Errorf("serve: task %s priority %v outside [0,1]", t.ID, t.Priority)
	}
	if t.Rate <= 0 {
		return fmt.Errorf("serve: task %s rate %v must be positive", t.ID, t.Rate)
	}
	if t.MinAccuracy < 0 || t.MinAccuracy > 1 {
		return fmt.Errorf("serve: task %s accuracy floor %v outside [0,1]", t.ID, t.MinAccuracy)
	}
	if t.MaxLatency <= 0 {
		return fmt.Errorf("serve: task %s latency bound %v must be positive", t.ID, t.MaxLatency)
	}
	if t.InputBits <= 0 {
		return fmt.Errorf("serve: task %s input bits %v must be positive", t.ID, t.InputBits)
	}
	return nil
}

// Register adds a pre-built task, merging any blocks its paths reference
// into the shared catalog. Tasks without paths get candidates built from
// the registry's catalog parameters (the HTTP-submission route).
func (r *Registry) Register(t core.Task, blocks map[string]core.BlockSpec) error {
	if err := validateTask(&t); err != nil {
		return err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tasks[t.ID]; ok {
		return fmt.Errorf("%w: %q", ErrExists, t.ID)
	}
	for id, b := range blocks {
		if _, ok := r.blocks[id]; !ok {
			r.blocks[id] = b
		}
	}
	if len(t.Paths) == 0 {
		t.Paths = r.catalog.BuildPaths(r.blocks, t.ID, r.seq)
	}
	for _, p := range t.Paths {
		for _, b := range p.Blocks {
			if _, ok := r.blocks[b]; !ok {
				return fmt.Errorf("serve: task %s path %s references unknown block %q", t.ID, p.ID, b)
			}
		}
	}
	r.tasks[t.ID] = t
	r.order = append(r.order, t.ID)
	r.seq++
	r.gen++
	return nil
}

// Replace swaps the registry's whole task set for the given one (the
// cluster-member plan push): tasks absent from the new set are dropped,
// new ones are added, and a task whose fields are unchanged keeps its
// stored struct — preserving the identity of its Paths/Qualities backing
// arrays, which is what lets the resolver's sessionDelta treat it as
// untouched across pushes. Tasks must arrive pre-built (with candidate
// paths); blocks they reference are merged into the catalog first. The
// registry is untouched on a validation error. It returns whether
// anything actually changed (an identical push bumps no generation, so
// the resolver's no-op check keeps holding).
func (r *Registry) Replace(tasks []core.Task, blocks map[string]core.BlockSpec) (bool, error) {
	for i := range tasks {
		if err := validateTask(&tasks[i]); err != nil {
			return false, err
		}
		if len(tasks[i].Paths) == 0 {
			return false, fmt.Errorf("serve: replace: task %s has no candidate paths (cluster pushes must pre-build them)", tasks[i].ID)
		}
	}
	seen := make(map[string]bool, len(tasks))
	for i := range tasks {
		if seen[tasks[i].ID] {
			return false, fmt.Errorf("serve: replace: duplicate task ID %q", tasks[i].ID)
		}
		seen[tasks[i].ID] = true
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	merged := make(map[string]core.BlockSpec, len(r.blocks)+len(blocks))
	for id, b := range r.blocks {
		merged[id] = b
	}
	for id, b := range blocks {
		if _, ok := merged[id]; !ok {
			merged[id] = b
		}
	}
	for i := range tasks {
		for _, p := range tasks[i].Paths {
			for _, b := range p.Blocks {
				if _, ok := merged[b]; !ok {
					return false, fmt.Errorf("serve: replace: task %s path %s references unknown block %q", tasks[i].ID, p.ID, b)
				}
			}
		}
	}
	changed := len(blocks) > 0 && len(merged) != len(r.blocks)
	next := make(map[string]core.Task, len(tasks))
	order := make([]string, 0, len(tasks))
	for i := range tasks {
		t := tasks[i]
		if prev, ok := r.tasks[t.ID]; ok {
			rate := t.Rate
			t.Rate = prev.Rate
			if taskEqual(&prev, &t) {
				// Keep the stored struct: path identity survives the push,
				// so the resolver's sessionDelta sees an unchanged task (or
				// a cheap rate-only update) instead of a remove + re-add.
				t = prev
				t.Rate = rate
				changed = changed || rate != prev.Rate
			} else {
				t.Rate = rate
				changed = true
			}
		} else {
			changed = true
		}
		next[t.ID] = t
		order = append(order, t.ID)
	}
	if len(next) != len(r.tasks) {
		changed = true
	} else {
		for i, id := range order {
			if i >= len(r.order) || r.order[i] != id {
				changed = true
				break
			}
		}
	}
	if !changed {
		return false, nil
	}
	r.tasks = next
	r.order = order
	r.blocks = merged
	r.gen++
	return true, nil
}

// taskEqual reports whether two task snapshots carry identical fields,
// comparing Paths and Qualities by value (a pushed task arrives through
// JSON, so backing-array identity never holds across pushes).
func taskEqual(a, b *core.Task) bool {
	if a.ID != b.ID || a.Priority != b.Priority || a.Rate != b.Rate ||
		a.MinAccuracy != b.MinAccuracy || a.MaxLatency != b.MaxLatency ||
		a.InputBits != b.InputBits || a.SNRdB != b.SNRdB ||
		len(a.Qualities) != len(b.Qualities) || len(a.Paths) != len(b.Paths) {
		return false
	}
	for i := range a.Qualities {
		if a.Qualities[i] != b.Qualities[i] {
			return false
		}
	}
	for i := range a.Paths {
		pa, pb := &a.Paths[i], &b.Paths[i]
		if pa.ID != pb.ID || pa.DNN != pb.DNN || pa.Accuracy != pb.Accuracy || len(pa.Blocks) != len(pb.Blocks) {
			return false
		}
		for j := range pa.Blocks {
			if pa.Blocks[j] != pb.Blocks[j] {
				return false
			}
		}
	}
	return true
}

// Deregister removes a task. Removing an absent ID is an error so the
// HTTP layer can answer 404.
func (r *Registry) Deregister(id string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tasks[id]; !ok {
		return fmt.Errorf("%w: %q", ErrUnknownTask, id)
	}
	delete(r.tasks, id)
	for i, tid := range r.order {
		if tid == id {
			r.order = append(r.order[:i], r.order[i+1:]...)
			break
		}
	}
	r.gen++
	return nil
}

// Has reports whether the ID is currently registered.
func (r *Registry) Has(id string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, ok := r.tasks[id]
	return ok
}

// Len returns the number of live tasks.
func (r *Registry) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.tasks)
}

// Generation returns the mutation counter.
func (r *Registry) Generation() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gen
}

// Snapshot copies out the live tasks (in registration order), the block
// catalog and the generation the copy corresponds to. The copies are the
// re-solver's: later registry mutations do not touch them.
func (r *Registry) Snapshot() ([]core.Task, map[string]core.BlockSpec, uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tasks := make([]core.Task, 0, len(r.order))
	for _, id := range r.order {
		tasks = append(tasks, r.tasks[id])
	}
	blocks := make(map[string]core.BlockSpec, len(r.blocks))
	for id, b := range r.blocks {
		blocks[id] = b
	}
	return tasks, blocks, r.gen
}
