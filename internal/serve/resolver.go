package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
	"offloadnn/internal/exec"
	"offloadnn/internal/faultinject"
)

// Epoch is one installed pass of the Fig. 4 loop: the deployment the
// controller produced for a snapshot of the registry, plus the admission
// gates enforcing its notified rates. Epochs are immutable once
// published; the request path reads whichever epoch is current through
// an atomic pointer (RCU-style), so offloads never block on a re-solve
// and a re-solve never waits for in-flight requests.
type Epoch struct {
	// N is the epoch sequence number, starting at 1.
	N uint64
	// Generation is the registry generation the epoch was solved from.
	Generation uint64
	// Tasks is the registry snapshot the solver saw, in registration
	// order (parallel to Deployment.Solution.Assignments).
	Tasks []core.Task
	// Deployment is the admission outcome; nil when the registry was
	// empty at solve time.
	Deployment *edge.Deployment
	// SolveLatency is how long the solve-and-deploy step took.
	SolveLatency time.Duration
	// Tier is the solver tier that produced the epoch's plan
	// (core.TierAuto for an empty registry or a custom Solve strategy
	// that does not tag its solutions).
	Tier core.Tier
	// PublishedAt is when the epoch was installed, on the resolver's
	// clock; the health state machine ages the plan against it.
	PublishedAt time.Time

	gates   map[string]*Gate
	latency map[string]time.Duration
	bound   map[string]time.Duration
	assign  map[string]core.Assignment
}

// Gate returns the admission gate for a task, or nil when the epoch does
// not admit it (not registered at solve time, or rejected by the solver).
func (e *Epoch) Gate(id string) *Gate {
	if e == nil {
		return nil
	}
	return e.gates[id]
}

// AdmittedRate returns the task's notified rate z·λ, zero when the epoch
// does not admit it.
func (e *Epoch) AdmittedRate(id string) float64 {
	if e == nil || e.Deployment == nil {
		return 0
	}
	return e.Deployment.AdmittedRates[id]
}

// PredictedLatency returns the planned end-to-end latency (slice
// transmission at B(σ)·r plus path compute) for an admitted task.
func (e *Epoch) PredictedLatency(id string) (time.Duration, bool) {
	if e == nil {
		return 0, false
	}
	d, ok := e.latency[id]
	return d, ok
}

// LatencyBound returns the admitted task's plan-time latency bound L_τ
// (edge.Deployment.LatencyBounds), zero when the epoch does not admit
// the task or the task registered without a bound. It is the default
// per-request deadline budget of the deadline-aware execution runtime.
func (e *Epoch) LatencyBound(id string) time.Duration {
	if e == nil {
		return 0
	}
	return e.bound[id]
}

// Assignment returns the task's admitted assignment, built once at epoch
// construction so the request path never scans the solution slice.
func (e *Epoch) Assignment(id string) (core.Assignment, bool) {
	if e == nil {
		return core.Assignment{}, false
	}
	a, ok := e.assign[id]
	return a, ok
}

// Resolver owns the epoch lifecycle: it watches the registry for churn,
// debounces it, re-runs the admission round and atomically publishes the
// resulting epoch. A kick during an in-flight solve is retained, so the
// loop always converges onto the latest registry generation.
//
// With the default solver the resolver runs incrementally: it keeps a
// core.SolverSession across epochs and feeds it the task delta between
// the session's state and the registry snapshot, so only the cliques the
// churn touched are rebuilt and allocations warm-start from the previous
// epoch. A custom Config.Solve opts out (the session exists to accelerate
// the default heuristic, not arbitrary strategies) and every epoch is a
// full controller admission round.
//
// The resolver is built to survive its solver. A panic inside the solve
// step is recovered into a counted solve error; a hung solve is bounded
// by Config.SolveTimeout; consecutive failures back off exponentially
// (capped, jittered) instead of retrying hot; and a circuit breaker
// drops the incremental session after breakerN consecutive failures,
// falling back to full admission rounds until a solve succeeds. In every
// failure mode the last-good epoch keeps serving.
type Resolver struct {
	reg      *Registry
	ctrl     *edge.Controller
	backend  exec.Backend
	res      core.Resources
	alpha    float64
	debounce time.Duration
	now      func() time.Time
	logf     func(string, ...any)
	stats    *Stats
	faults   *faultinject.Injector
	node     string
	// segments supplies the split-path segment set attached to every
	// installed plan; nil for standalone daemons (see resolverParams).
	segments func() []exec.Segment

	solveTimeout time.Duration
	backoffBase  time.Duration
	backoffMax   time.Duration
	breakerN     int
	// spec selects the epoch solver tier (Config.Solver); approxAfter is
	// the auto tier's size-based escalation threshold (0 = disabled).
	spec        core.SolverSpec
	approxAfter int
	// jitter draws the backoff jitter factor source in [0,1);
	// injectable for deterministic schedule tests.
	jitter func() float64

	cur  atomic.Pointer[Epoch]
	kick chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
	once sync.Once

	// ctx is canceled by Close so an in-flight incremental solve aborts
	// instead of delaying shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	// fails counts consecutive solve failures; zeroed on success. Read
	// by the health state machine and /metrics without solveMu.
	fails atomic.Uint64
	// breakerOpen reports the incremental→full circuit breaker state.
	// Only the resolve path writes it (under solveMu); handlers read it.
	breakerOpen atomic.Bool
	// staleSince is when the published plan first fell behind the
	// registry (unix nanos on the injected clock); zero while current.
	// Kick sets it, a publish clears it.
	staleSince atomic.Int64

	// solveMu serializes epoch production (numbering + publication);
	// readers never take it.
	solveMu sync.Mutex
	epochN  uint64
	// incremental selects the SolverSession path; session is the live
	// session (nil before the first non-empty solve and after any error,
	// so the next epoch rebuilds from scratch). Both are guarded by
	// solveMu.
	incremental bool
	session     *core.SolverSession
	// pressureLeft implements the auto tier's deadline-pressure
	// hysteresis: an exact-tier solve that blows the epoch deadline sets
	// it to pressureHold, each successful epoch decrements it, and while
	// it is positive the auto tier runs the approximate solver. When it
	// reaches zero the resolver probes the exact tier again — another
	// deadline miss re-arms the hold, so a registry that stays too big
	// for the exact tier costs one probe every pressureHold epochs
	// instead of thrashing. Guarded by solveMu.
	pressureLeft int
}

// pressureHold is how many successful epochs the auto tier stays on the
// approximate solver after an exact-tier deadline miss before probing
// the exact tier again.
const pressureHold = 8

// resolverParams carries the fault-tolerance knobs from Config into
// newResolver without a ten-argument signature.
type resolverParams struct {
	solveTimeout time.Duration
	backoffBase  time.Duration
	backoffMax   time.Duration
	breakerN     int
	spec         core.SolverSpec
	approxAfter  int
	faults       *faultinject.Injector
	backend      exec.Backend
	node         string
	// segments supplies the node's current split-path segment set; every
	// installed plan carries it so segment models swap atomically with
	// the epoch. Nil for standalone daemons.
	segments func() []exec.Segment
}

func newResolver(reg *Registry, ctrl *edge.Controller, res core.Resources, alpha float64,
	debounce time.Duration, now func() time.Time, logf func(string, ...any), stats *Stats,
	incremental bool, p resolverParams) *Resolver {
	ctx, cancel := context.WithCancel(context.Background())
	r := &Resolver{
		reg:          reg,
		ctrl:         ctrl,
		backend:      p.backend,
		res:          res,
		alpha:        alpha,
		debounce:     debounce,
		now:          now,
		logf:         logf,
		stats:        stats,
		faults:       p.faults,
		node:         p.node,
		segments:     p.segments,
		solveTimeout: p.solveTimeout,
		backoffBase:  p.backoffBase,
		backoffMax:   p.backoffMax,
		breakerN:     p.breakerN,
		spec:         p.spec,
		approxAfter:  p.approxAfter,
		jitter:       rand.Float64,
		kick:         make(chan struct{}, 1),
		done:         make(chan struct{}),
		ctx:          ctx,
		cancel:       cancel,
		incremental:  incremental,
	}
	r.wg.Add(1)
	go r.loop()
	return r
}

// Current returns the published epoch, nil before the first solve.
func (r *Resolver) Current() *Epoch { return r.cur.Load() }

// ConsecutiveFailures returns the current run of failed solves.
func (r *Resolver) ConsecutiveFailures() uint64 { return r.fails.Load() }

// BreakerOpen reports whether the incremental→full circuit breaker is
// open (epochs run as full admission rounds until a solve succeeds).
func (r *Resolver) BreakerOpen() bool { return r.breakerOpen.Load() }

// StaleSince returns when the published plan first fell behind the
// registry, and false while the plan is current.
func (r *Resolver) StaleSince() (time.Time, bool) {
	ns := r.staleSince.Load()
	if ns == 0 {
		return time.Time{}, false
	}
	return time.Unix(0, ns), true
}

// Kick signals that the registry changed. Coalesces: kicks arriving
// while one is pending fold into it. The first kick after a publish
// starts the staleness clock the health state machine reads.
func (r *Resolver) Kick() {
	r.staleSince.CompareAndSwap(0, r.now().UnixNano())
	select {
	case r.kick <- struct{}{}:
	default:
	}
}

// Close stops the loop, cancels any in-flight incremental solve, and
// waits for the loop to exit.
func (r *Resolver) Close() {
	r.once.Do(func() {
		close(r.done)
		r.cancel()
	})
	r.wg.Wait()
}

// loop debounces churn into epochs: the first kick opens a batching
// window of `debounce`; everything that arrives within it lands in the
// same re-solve, and churn during the solve leaves a pending kick that
// triggers the next round. A failed re-solve retries with capped
// exponential backoff instead of waiting for (or being re-triggered hot
// by) further churn, so a persistently failing solver costs a bounded
// solve rate and the loop still converges the moment it recovers.
func (r *Resolver) loop() {
	defer r.wg.Done()
	for {
		select {
		case <-r.done:
			return
		case <-r.kick:
		}
		if !r.sleep(r.debounce) {
			return
		}
		for {
			err := r.ResolveNow()
			if err == nil {
				break
			}
			if r.logf != nil {
				r.logf("serve: epoch re-solve: %v", err)
			}
			if !r.sleep(r.backoffDelay()) {
				return
			}
			// Drain any kick that arrived while backing off: the retry
			// snapshots the latest generation anyway, and consuming it
			// here keeps churn from bypassing the backoff via the outer
			// select.
			select {
			case <-r.kick:
			default:
			}
		}
	}
}

// sleep waits d, returning false when the resolver closed first.
func (r *Resolver) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-r.done:
		return false
	case <-t.C:
		return true
	}
}

// backoffDelay returns the wait before the next retry given the current
// consecutive-failure count.
func (r *Resolver) backoffDelay() time.Duration {
	return backoffDelay(r.backoffBase, r.backoffMax, int(r.fails.Load()), r.jitter)
}

// backoffDelay computes base·2^(n−1) capped at max, scaled by a jitter
// factor in [0.8, 1.2) drawn from jitter() ∈ [0,1). n is the
// consecutive-failure count (n ≤ 1 yields base).
func backoffDelay(base, max time.Duration, n int, jitter func() float64) time.Duration {
	d := base
	for i := 1; i < n && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	if jitter != nil {
		d = time.Duration(float64(d) * (0.8 + 0.4*jitter()))
	}
	return d
}

// ResolveNow synchronously produces and publishes an epoch for the
// current registry state. It is a no-op when the published epoch already
// matches the registry generation. On solver error (or recovered solver
// panic) the previous epoch stays in place — requests keep being served
// under the old plan — and the error is returned.
func (r *Resolver) ResolveNow() error { return r.resolve(false) }

// ForceResolve re-solves and republishes even when the published epoch
// is current — the serving-path cost benchmarks measure this.
func (r *Resolver) ForceResolve() error { return r.resolve(true) }

func (r *Resolver) resolve(force bool) error {
	r.solveMu.Lock()
	defer r.solveMu.Unlock()
	tasks, blocks, gen := r.reg.Snapshot()
	if cur := r.cur.Load(); !force && cur != nil && cur.Generation == gen {
		r.staleSince.Store(0) // a pending kick raced an already-current epoch
		return nil
	}
	start := r.now()
	ep := &Epoch{
		Generation: gen,
		Tasks:      tasks,
		gates:      make(map[string]*Gate),
		latency:    make(map[string]time.Duration),
		bound:      make(map[string]time.Duration),
		assign:     make(map[string]core.Assignment),
	}
	if len(tasks) == 0 {
		r.session = nil // an empty registry resets the incremental session
	} else {
		dep, solved, err := r.produce(tasks, blocks)
		if err != nil {
			if r.solveTimeout > 0 && errors.Is(err, context.DeadlineExceeded) {
				// The solve blew the epoch deadline: hold the auto tier on
				// the approximate solver for the next pressureHold epochs.
				r.pressureLeft = pressureHold
			}
			r.recordFailure(err)
			return err
		}
		// solved is the task order the assignments are parallel to (the
		// session's registration order on the incremental path).
		tasks = solved
		ep.Tasks = solved
		ep.Deployment = dep
		ep.Tier = dep.Solution.Tier
		// The predicted latencies are the unscaled planning costs — the
		// same arithmetic the emulator and the simulated backend apply
		// their factors to.
		costs := edge.PlanCosts(tasks, blocks, r.res, dep, 0, 0)
		for _, a := range dep.Solution.Assignments {
			if !a.Admitted() {
				continue
			}
			ep.gates[a.TaskID] = NewGate(dep.AdmittedRates[a.TaskID], r.now)
			ep.latency[a.TaskID] = costs[a.TaskID].Total()
			ep.bound[a.TaskID] = dep.LatencyBounds[a.TaskID]
			ep.assign[a.TaskID] = a
		}
	}
	// Install the deployment into the execution backend before the epoch
	// becomes visible: a failed install (e.g. a path naming a block the
	// model template cannot realize) keeps the previous epoch — and the
	// previous backend plan — serving.
	if r.backend != nil {
		var segs []exec.Segment
		if r.segments != nil {
			segs = r.segments()
		}
		if err := r.backend.Install(&exec.Plan{
			Epoch:      r.epochN + 1,
			Node:       r.node,
			Tasks:      ep.Tasks,
			Blocks:     blocks,
			Res:        r.res,
			Deployment: ep.Deployment,
			Segments:   segs,
		}); err != nil {
			err = fmt.Errorf("serve: backend install: %w", err)
			r.recordFailure(err)
			return err
		}
	}
	ep.SolveLatency = r.now().Sub(start)
	ep.PublishedAt = r.now()
	r.epochN++
	ep.N = r.epochN
	r.cur.Store(ep)
	r.stats.solves.Add(1)
	r.stats.lastSolveNanos.Store(int64(ep.SolveLatency))
	if ep.Deployment != nil {
		r.stats.recordSolveTier(ep.Tier, ep.SolveLatency)
	}
	if r.pressureLeft > 0 {
		r.pressureLeft--
	}
	r.recordSuccess()
	return nil
}

// pickTier resolves the configured solver spec against the registry
// size: a pinned tier wins outright; the auto tier runs the exact
// incremental heuristic while the registry is small and the solves hold
// the deadline, and the approximate admission tier at approxAfter tasks
// or under deadline pressure (see pressureLeft). Caller holds solveMu.
func (r *Resolver) pickTier(n int) core.Tier {
	if r.spec.Tier != core.TierAuto {
		return r.spec.Tier
	}
	if r.approxAfter > 0 && n >= r.approxAfter {
		return core.TierApprox
	}
	if r.pressureLeft > 0 {
		return core.TierApprox
	}
	return core.TierHeuristic
}

// produce runs the solve-and-deploy step under panic isolation and the
// configured deadline, returning the deployment and the task order its
// assignments are parallel to. Caller holds solveMu.
func (r *Resolver) produce(tasks []core.Task, blocks map[string]core.BlockSpec) (dep *edge.Deployment, solved []core.Task, err error) {
	ctx := r.ctx
	if r.solveTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, r.solveTimeout)
		defer cancel()
	}
	defer func() {
		if p := recover(); p != nil {
			// A mid-solve panic leaves the session in an unknown state;
			// drop it so the next epoch rebuilds from scratch.
			r.session = nil
			r.stats.solvePanics.Add(1)
			if r.logf != nil {
				r.logf("serve: recovered solver panic: %v\n%s", p, debug.Stack())
			}
			dep, solved, err = nil, nil, fmt.Errorf("serve: recovered solver panic: %v", p)
		}
	}()
	// Fault-injection points: no-ops unless a chaos test or the
	// edgeserve -fault flag armed them.
	for _, point := range []string{
		faultinject.PointSolverError,
		faultinject.PointSolverPanic,
		faultinject.PointSolverHang,
	} {
		if err := r.faults.Hit(ctx, point); err != nil {
			return nil, nil, err
		}
	}
	if !r.incremental {
		// A custom Config.Solve owns the strategy outright; tier
		// selection does not apply.
		dep, err = r.ctrl.AdmitCtx(ctx, tasks, blocks, r.alpha)
		if err != nil {
			return nil, nil, err
		}
		return dep, tasks, nil
	}
	tier := r.pickTier(len(tasks))
	if tier == core.TierHeuristic && r.spec.Shards <= 1 && !r.breakerOpen.Load() {
		dep, err := r.resolveIncremental(ctx, tasks, blocks)
		if err != nil {
			return nil, nil, err
		}
		// Assignments are parallel to the session's task order (which
		// tracks registration order); publish that order.
		return dep, r.session.Tasks(), nil
	}
	// Non-incremental tiers (approx, optimal, forced sharding, breaker
	// fallback): a full solve through the tier dispatcher, deployed via
	// the controller. The session, if any, stays cached for the next
	// de-escalation back to the exact heuristic.
	dep, err = r.resolveSpec(ctx, tier, tasks, blocks)
	if err != nil {
		return nil, nil, err
	}
	return dep, tasks, nil
}

// resolveSpec runs one full (non-incremental) admission round through
// the tier dispatcher: build the instance from the registry snapshot,
// solve it at the given tier with the configured spec knobs, and hand
// the solution to the controller for checking, slicing and packaging.
// Caller holds solveMu.
func (r *Resolver) resolveSpec(ctx context.Context, tier core.Tier, tasks []core.Task, blocks map[string]core.BlockSpec) (*edge.Deployment, error) {
	in := &core.Instance{Tasks: tasks, Blocks: blocks, Res: r.res, Alpha: r.alpha}
	spec := r.spec
	spec.Tier = tier
	spec.Timeout = 0 // the epoch deadline is already on ctx
	sol, err := core.SolveSpec(ctx, in, spec)
	if err != nil {
		return nil, err
	}
	return r.ctrl.Deploy(in, sol)
}

// SetNorm installs (or clears) the objective-pricing override of every
// subsequent solve and reports whether it differed from the current one.
// A pricing change drops the incremental session: its cached state was
// costed at the old prices. The caller decides whether to re-solve (a
// plan push follows SetNorm with ResolveNow when anything changed).
func (r *Resolver) SetNorm(norm *core.Resources) bool {
	r.solveMu.Lock()
	defer r.solveMu.Unlock()
	if normEqual(r.res.Norm, norm) {
		return false
	}
	r.res.Norm = norm
	r.session = nil
	return true
}

// normEqual compares two pricing overrides by the fields PriceRBs &co
// read.
func normEqual(a, b *core.Resources) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	return a.RBs == b.RBs &&
		a.ComputeSeconds == b.ComputeSeconds &&
		a.MemoryGB == b.MemoryGB &&
		a.TrainBudgetSeconds == b.TrainBudgetSeconds
}

// recordFailure counts a failed solve and trips the incremental→full
// circuit breaker once the run reaches breakerN. Caller holds solveMu.
func (r *Resolver) recordFailure(err error) {
	r.stats.solveErrors.Add(1)
	r.stats.setLastSolveError(err)
	n := r.fails.Add(1)
	if r.incremental && !r.breakerOpen.Load() && r.breakerN > 0 && n >= uint64(r.breakerN) {
		r.session = nil
		r.breakerOpen.Store(true)
		if r.logf != nil {
			r.logf("serve: circuit breaker open after %d consecutive solve failures; falling back to full admission rounds", n)
		}
	}
}

// recordSuccess resets the failure run and re-arms the breaker; the
// next epoch may use the incremental path again (rebuilding its session
// from scratch). Caller holds solveMu.
func (r *Resolver) recordSuccess() {
	r.fails.Store(0)
	r.staleSince.Store(0)
	r.stats.setLastSolveError(nil)
	if r.breakerOpen.CompareAndSwap(true, false) && r.logf != nil {
		r.logf("serve: circuit breaker re-armed after successful solve")
	}
}

// resolveIncremental produces a deployment through the solver session: it
// diffs the session's task set against the registry snapshot into a
// TaskDelta, re-solves incrementally, and hands the solution to the
// controller for checking and slice allocation. On any error the session
// is dropped so the next epoch rebuilds from scratch rather than serving
// off state of unknown consistency. Caller holds solveMu.
func (r *Resolver) resolveIncremental(ctx context.Context, tasks []core.Task, blocks map[string]core.BlockSpec) (*edge.Deployment, error) {
	var delta core.TaskDelta
	if r.session == nil {
		sess, err := core.NewSolverSession(&core.Instance{
			Tasks:  tasks,
			Blocks: blocks,
			Res:    r.res,
			Alpha:  r.alpha,
		})
		if err != nil {
			return nil, err
		}
		r.session = sess
	} else {
		delta = sessionDelta(r.session, tasks, blocks)
	}
	sol, err := r.session.Resolve(ctx, delta)
	if err != nil {
		r.session = nil
		return nil, err
	}
	dep, err := r.ctrl.Deploy(r.session.Instance(), sol)
	if err != nil {
		r.session = nil
		return nil, err
	}
	return dep, nil
}

// sessionDelta computes the churn between a session's task set and a
// registry snapshot. Tasks are matched by ID; a task whose only change is
// its request rate becomes a rate update (which invalidates no cached
// cliques), any other change becomes a remove + re-add. Path slices are
// compared by identity (length plus backing array), which holds across
// snapshots because the registry builds a task's paths once at
// registration and every Snapshot copy shares them.
func sessionDelta(sess *core.SolverSession, tasks []core.Task, blocks map[string]core.BlockSpec) core.TaskDelta {
	var delta core.TaskDelta
	inst := sess.Instance()
	for id, b := range blocks {
		if _, ok := inst.Blocks[id]; !ok {
			if delta.AddBlocks == nil {
				delta.AddBlocks = make(map[string]core.BlockSpec)
			}
			delta.AddBlocks[id] = b
		}
	}
	have := make(map[string]*core.Task, len(inst.Tasks))
	for i := range inst.Tasks {
		have[inst.Tasks[i].ID] = &inst.Tasks[i]
	}
	want := make(map[string]bool, len(tasks))
	for i := range tasks {
		t := &tasks[i]
		want[t.ID] = true
		prev, ok := have[t.ID]
		switch {
		case !ok:
			delta.Add = append(delta.Add, *t)
		case taskUnchangedExceptRate(prev, t):
			if prev.Rate != t.Rate {
				if delta.Rate == nil {
					delta.Rate = make(map[string]float64)
				}
				delta.Rate[t.ID] = t.Rate
			}
		default:
			delta.Remove = append(delta.Remove, t.ID)
			delta.Add = append(delta.Add, *t)
		}
	}
	for id := range have {
		if !want[id] {
			delta.Remove = append(delta.Remove, id)
		}
	}
	return delta
}

// taskUnchangedExceptRate reports whether two snapshots of a task differ
// at most in their request rate — the one field that does not enter tree
// construction.
func taskUnchangedExceptRate(a, b *core.Task) bool {
	return a.Priority == b.Priority &&
		a.MinAccuracy == b.MinAccuracy &&
		a.MaxLatency == b.MaxLatency &&
		a.InputBits == b.InputBits &&
		a.SNRdB == b.SNRdB &&
		sameQualities(a.Qualities, b.Qualities) &&
		samePaths(a.Paths, b.Paths)
}

func sameQualities(a, b []core.QualityLevel) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}

func samePaths(a, b []core.PathSpec) bool {
	if len(a) != len(b) {
		return false
	}
	return len(a) == 0 || &a[0] == &b[0]
}
