package serve

import (
	"fmt"
	"sort"
	"strconv"

	"offloadnn/internal/exec"
)

// SegmentSpec is one stage-range of a split path this node serves: the
// serving-layer mirror of the cluster wire form (serve cannot import
// cluster — cluster builds on serve). The coordinator's split placement
// pushes these alongside the node's whole-path task subset; the head
// segment gates intake at the admitted rate and opens the deadline
// budget, every non-tail segment forwards its boundary activation to
// Next.
type SegmentSpec struct {
	// Task, Path and DNN identify the split assignment.
	Task string
	Path string
	DNN  string
	// Blocks is the FULL path's ordered block-ID list; From/To bound this
	// node's range [From, To) into it.
	Blocks []string
	From   int
	To     int
	// Rate is the admitted request rate z·λ the head gates intake at;
	// ignored on non-head segments (their intake is the previous hop).
	Rate float64
	// BudgetMS is the end-to-end deadline budget the head opens the
	// pipeline with; zero on non-head segments, which trust the
	// envelope's remaining budget.
	BudgetMS float64
	// Hop and Hops are this segment's position and the pipeline length.
	Hop  int
	Hops int
	// Next and NextNode are the next hop's base URL and node ID; empty on
	// the tail.
	Next     string
	NextNode string
}

// HeadSeg reports whether the spec consumes raw frames.
func (s SegmentSpec) HeadSeg() bool { return s.From == 0 }

// TailSeg reports whether the spec emits logits.
func (s SegmentSpec) TailSeg() bool { return s.To == len(s.Blocks) }

// segKey routes a (task, entry-stage) pair to its installed segment,
// matching the execution backend's routing convention.
func segKey(task string, from int) string {
	if from == 0 {
		return task
	}
	return task + "#" + strconv.Itoa(from)
}

// segmentTable is the immutable installed segment set, swapped
// atomically on every cluster plan push.
type segmentTable struct {
	// specs maps segKey(task, from) to the installed spec.
	specs map[string]SegmentSpec
	// gates holds the head segments' rate limiters, keyed by task. Token
	// buckets survive pushes that keep a task's rate unchanged.
	gates map[string]*Gate
}

var emptySegments = &segmentTable{}

// head returns the head-segment spec and gate for a task, if this node
// serves one.
func (t *segmentTable) head(task string) (SegmentSpec, *Gate, bool) {
	sp, ok := t.specs[segKey(task, 0)]
	if !ok {
		return SegmentSpec{}, nil, false
	}
	return sp, t.gates[task], true
}

// at returns the spec entered at the given stage of a task's split path.
func (t *segmentTable) at(task string, from int) (SegmentSpec, bool) {
	sp, ok := t.specs[segKey(task, from)]
	return sp, ok
}

// segTable returns the current segment table (never nil).
func (s *Server) segTable() *segmentTable {
	if t := s.segments.Load(); t != nil {
		return t
	}
	return emptySegments
}

// Segments snapshots the installed segment specs, sorted by route key.
func (s *Server) Segments() []SegmentSpec {
	t := s.segTable()
	keys := make([]string, 0, len(t.specs))
	for k := range t.specs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]SegmentSpec, 0, len(keys))
	for _, k := range keys {
		out = append(out, t.specs[k])
	}
	return out
}

// execSegments converts the installed table into the execution-layer
// form the resolver attaches to every installed plan.
func (s *Server) execSegments() []exec.Segment {
	specs := s.Segments()
	if len(specs) == 0 {
		return nil
	}
	out := make([]exec.Segment, 0, len(specs))
	for _, sp := range specs {
		out = append(out, exec.Segment{
			TaskID: sp.Task,
			PathID: sp.Path,
			DNN:    sp.DNN,
			Blocks: sp.Blocks,
			From:   sp.From,
			To:     sp.To,
		})
	}
	return out
}

// ReplaceSegments swaps the node's split-path segment set, reporting
// whether anything changed. A change forces a re-resolve so the new
// segment models install into the execution backend atomically with the
// next epoch (segment pushes don't bump the task-registry generation,
// so a plain resolve would short-circuit).
func (s *Server) ReplaceSegments(specs []SegmentSpec) (bool, error) {
	next := &segmentTable{
		specs: make(map[string]SegmentSpec, len(specs)),
		gates: make(map[string]*Gate),
	}
	for _, sp := range specs {
		if sp.Task == "" || sp.Path == "" {
			return false, fmt.Errorf("serve: segment missing task or path identity")
		}
		if sp.From < 0 || sp.To <= sp.From || sp.To > len(sp.Blocks) {
			return false, fmt.Errorf("serve: segment %s/%s range [%d,%d) invalid for %d blocks",
				sp.Task, sp.Path, sp.From, sp.To, len(sp.Blocks))
		}
		if !sp.TailSeg() && sp.Next == "" {
			return false, fmt.Errorf("serve: non-tail segment %s/%s[%d,%d) has no next hop",
				sp.Task, sp.Path, sp.From, sp.To)
		}
		k := segKey(sp.Task, sp.From)
		if _, dup := next.specs[k]; dup {
			return false, fmt.Errorf("serve: duplicate segment route %s", k)
		}
		next.specs[k] = sp
	}
	prev := s.segTable()
	for k, sp := range next.specs {
		if !sp.HeadSeg() {
			continue
		}
		// Reuse the existing bucket when the rate is unchanged so a
		// steady split doesn't get a token refill on every plan push.
		if old, ok := prev.specs[k]; ok && old.Rate == sp.Rate && prev.gates[sp.Task] != nil {
			next.gates[sp.Task] = prev.gates[sp.Task]
			continue
		}
		next.gates[sp.Task] = NewGate(sp.Rate, s.cfg.Now)
	}
	if segmentsEqual(prev.specs, next.specs) {
		return false, nil
	}
	s.segments.Store(next)
	if err := s.resolver.ForceResolve(); err != nil {
		return true, err
	}
	return true, nil
}

// segmentsEqual compares two installed segment maps field-wise.
func segmentsEqual(a, b map[string]SegmentSpec) bool {
	if len(a) != len(b) {
		return false
	}
	for k, x := range a {
		y, ok := b[k]
		if !ok {
			return false
		}
		if x.Task != y.Task || x.Path != y.Path || x.DNN != y.DNN ||
			x.From != y.From || x.To != y.To || x.Rate != y.Rate ||
			x.BudgetMS != y.BudgetMS || x.Hop != y.Hop || x.Hops != y.Hops ||
			x.Next != y.Next || x.NextNode != y.NextNode || len(x.Blocks) != len(y.Blocks) {
			return false
		}
		for i := range x.Blocks {
			if x.Blocks[i] != y.Blocks[i] {
				return false
			}
		}
	}
	return true
}
