// Package serve turns the one-shot OffloaDNN reproduction into an online
// edge-serving subsystem: a long-running daemon that accepts task
// registrations over HTTP, continuously re-optimizes the DOT admission
// plan as tasks come and go, and enforces the solved admission ratios on
// the live offload path.
//
// The design maps the paper's Fig. 4 workflow onto a serving loop:
//
//	admission request  → Registry (concurrent-safe task table)
//	DOT solve          → Resolver (debounced epoch re-solve on churn)
//	slice/compute      → edge.Controller.Admit (reused unchanged)
//	deployment         → Epoch published via atomic.Pointer (RCU-style)
//	rate notification  → Gate (token bucket at z·λ, 429 beyond it)
//
// Requests read the current epoch without locking; re-solves publish a
// fresh immutable epoch and never block the request path. Over-rate
// traffic is rejected with Retry-After — graceful degradation, never an
// unbounded queue.
package serve

import (
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/edge"
	"offloadnn/internal/exec"
	"offloadnn/internal/faultinject"
	"offloadnn/internal/workload"
)

// ErrDraining reports a registration attempted while the server is
// draining (Drain/Close was called): new work is refused while existing
// tasks keep serving off the last epoch through the drain window.
var ErrDraining = errors.New("serve: server is draining")

// DefaultSolveTimeout is the per-epoch solve deadline applied when
// Config.SolveTimeout is zero. Together with the tiered resolver it is
// a completeness/latency contract: any registry the approximate tier
// can pack inside this budget keeps publishing epochs, no matter how
// far past the exact tiers' scale the task count grows.
const DefaultSolveTimeout = 2 * time.Second

// DefaultApproxAfter is the registry size at which an auto-tier
// resolver switches from the exact heuristic to the approximate
// admission tier. Below it the exact heuristic holds the default solve
// deadline comfortably; above it the sharded heuristic still works but
// the approximate tier buys an order of magnitude of headroom for the
// same epoch cadence.
const DefaultApproxAfter = 512

// Config parameterizes a serving daemon.
type Config struct {
	// Res is the edge/radio capacity pool every epoch is solved against.
	Res core.Resources
	// Alpha weights admission against resource cost (DOT objective).
	Alpha float64
	// Catalog builds candidate paths for tasks submitted without any
	// (the HTTP route). Zero value: the Table-IV small catalog.
	Catalog workload.CatalogParams
	// Blocks optionally pre-seeds the shared block catalog.
	Blocks map[string]core.BlockSpec
	// Debounce is the churn batching window before a re-solve
	// (default 100 ms).
	Debounce time.Duration
	// Window is the latency-quantile window size in samples
	// (default 1024).
	Window int
	// Now is the clock used by the admission gates and uptime
	// (default time.Now); injectable for deterministic tests.
	Now func() time.Time
	// SolveTimeout bounds one epoch's solve-and-deploy step, enforced
	// through a context composed with the resolver's shutdown context. A
	// solve that overruns fails that epoch (the last-good plan keeps
	// serving) and counts toward the failure backoff and breaker — and,
	// on the auto tier, escalates the next epochs to the approximate
	// solver. Zero applies DefaultSolveTimeout; negative disables the
	// deadline. With a custom non-context-aware Solve, a timed-out solve
	// is abandoned in a goroutine that runs to completion with its
	// result dropped.
	SolveTimeout time.Duration
	// Solver selects the epoch solver tier and its knobs
	// (core.SolverSpec). The zero value is core.TierAuto: the exact
	// incremental heuristic while the registry is small and the solves
	// hold the deadline, the approximate admission tier at ApproxAfter
	// tasks or under deadline pressure. A non-auto Tier pins every epoch
	// to that tier; Workers/Shards pass through to the sharded and
	// parallel solvers. Spec.Timeout is ignored — SolveTimeout is the
	// epoch deadline. Ignored entirely when Solve is set.
	Solver core.SolverSpec
	// ApproxAfter is the registry size at which an auto-tier resolver
	// escalates to the approximate solver (default DefaultApproxAfter;
	// negative disables size-based escalation, leaving only deadline
	// pressure). Ignored when Solver.Tier is not core.TierAuto.
	ApproxAfter int
	// FailureBackoff is the delay before retrying after one failed
	// re-solve; consecutive failures double it up to FailureBackoffMax,
	// with ±20% jitter. Defaults: the debounce window and 5 s.
	FailureBackoff    time.Duration
	FailureBackoffMax time.Duration
	// BreakerThreshold is the consecutive-failure count at which the
	// resolver drops its incremental SolverSession and falls back to
	// full admission rounds; the breaker re-arms after the next
	// successful solve (default 3; irrelevant when Solve is set).
	BreakerThreshold int
	// DegradedAfter is the consecutive-failure count at which /healthz
	// turns degraded (default 3).
	DegradedAfter int
	// StaleAfter is how long the published plan may trail the registry
	// before /healthz turns degraded (default 10 s).
	StaleAfter time.Duration
	// OverloadWindow is the sliding window over backend shed verdicts
	// (late or queue-full) that drives the overload health signal
	// (default 5 s).
	OverloadWindow time.Duration
	// OverloadAfter is how many sheds inside OverloadWindow turn
	// /healthz degraded and arm the admission gate's early deadline shed
	// (default 10; negative disables the overload signal).
	OverloadAfter int
	// Faults optionally arms the serving stack's fault-injection points
	// (see internal/faultinject). Nil — the default — leaves every
	// point a no-op; chaos tests and the edgeserve -fault flag set it.
	Faults *faultinject.Injector
	// Backend is the execution layer every published epoch is installed
	// into and admitted offloads with a payload run through. Nil — the
	// default — uses the cost-model backend (exec.NewSimulated with the
	// planning-rate factors), so offloads answer with planned latencies
	// and no logits; wire an exec.Real for tensor-backed inference. The
	// server owns the backend: Close closes it.
	Backend exec.Backend
	// Solve optionally overrides the solver strategy. When nil the daemon
	// runs the OffloaDNN heuristic *incrementally*: a core.SolverSession
	// carries the weighted tree and converged allocations across epochs,
	// so each re-solve rebuilds only the cliques the churn touched.
	// Setting Solve opts out of the session — every epoch is then a full
	// admission round through the given function (the epoch benchmarks
	// use this to measure the non-incremental baseline).
	Solve func(*core.Instance) (*core.Solution, error)
	// Logf, when set, receives re-solve failures and other background
	// diagnostics (e.g. log.Printf). Nil discards them.
	Logf func(string, ...any)
	// Node optionally names this daemon as a cluster member. It labels
	// the plans installed into the execution backend (exec.Plan.Node)
	// and is reported by the cluster membership protocol; empty for a
	// standalone daemon.
	Node string
}

// Server is the serving daemon: registry + resolver + HTTP surface.
// Create it with New, serve its Handler, and Close it to stop the
// re-solver.
type Server struct {
	cfg      Config
	reg      *Registry
	resolver *Resolver
	backend  exec.Backend
	stats    *Stats
	mux      *http.ServeMux
	draining atomic.Bool
	// segments is the node's installed split-path segment table (see
	// segments.go), swapped atomically on cluster plan pushes; nil until
	// the first ReplaceSegments.
	segments atomic.Pointer[segmentTable]
	// stageClient posts boundary activations to the next hop of a split
	// path; overridable in tests.
	stageClient *http.Client
}

// New validates the configuration and starts the epoch re-solver.
func New(cfg Config) (*Server, error) {
	if cfg.Res.Capacity == nil {
		return nil, fmt.Errorf("serve: config needs a radio capacity model")
	}
	if cfg.Res.TrainBudgetSeconds <= 0 {
		return nil, fmt.Errorf("serve: train budget must be positive, got %v", cfg.Res.TrainBudgetSeconds)
	}
	if cfg.Alpha < 0 || cfg.Alpha > 1 {
		return nil, fmt.Errorf("serve: alpha %v outside [0,1]", cfg.Alpha)
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 100 * time.Millisecond
	}
	if cfg.Window <= 0 {
		cfg.Window = 1024
	}
	if cfg.Now == nil {
		cfg.Now = time.Now
	}
	if cfg.Catalog.NumDNNs == 0 {
		cfg.Catalog = workload.SmallCatalogParams()
	}
	if cfg.SolveTimeout == 0 {
		cfg.SolveTimeout = DefaultSolveTimeout
	}
	if cfg.SolveTimeout < 0 {
		cfg.SolveTimeout = 0 // explicit opt-out: no epoch deadline
	}
	if _, err := core.ParseTier(cfg.Solver.Tier.String()); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.ApproxAfter == 0 {
		cfg.ApproxAfter = DefaultApproxAfter
	}
	if cfg.ApproxAfter < 0 {
		cfg.ApproxAfter = 0 // size-based escalation disabled
	}
	if cfg.FailureBackoff <= 0 {
		cfg.FailureBackoff = cfg.Debounce
	}
	if cfg.FailureBackoffMax <= 0 {
		cfg.FailureBackoffMax = 5 * time.Second
	}
	if cfg.FailureBackoffMax < cfg.FailureBackoff {
		cfg.FailureBackoffMax = cfg.FailureBackoff
	}
	if cfg.BreakerThreshold <= 0 {
		cfg.BreakerThreshold = 3
	}
	if cfg.DegradedAfter <= 0 {
		cfg.DegradedAfter = 3
	}
	if cfg.StaleAfter <= 0 {
		cfg.StaleAfter = 10 * time.Second
	}
	if cfg.OverloadWindow <= 0 {
		cfg.OverloadWindow = 5 * time.Second
	}
	if cfg.OverloadAfter == 0 {
		cfg.OverloadAfter = 10
	}
	if cfg.Backend == nil {
		cfg.Backend = exec.NewSimulated(exec.SimulatedConfig{})
	}
	ctrl := edge.NewController(cfg.Res)
	if cfg.Solve != nil {
		ctrl.Solve = cfg.Solve
	}
	ctrl.Faults = cfg.Faults
	s := &Server{
		cfg:         cfg,
		reg:         NewRegistry(cfg.Catalog, cfg.Blocks),
		backend:     cfg.Backend,
		stats:       newStats(cfg.Window, cfg.Now()),
		stageClient: &http.Client{Timeout: 30 * time.Second},
	}
	s.resolver = newResolver(s.reg, ctrl, cfg.Res, cfg.Alpha, cfg.Debounce, cfg.Now, cfg.Logf, s.stats,
		cfg.Solve == nil, resolverParams{
			solveTimeout: cfg.SolveTimeout,
			backoffBase:  cfg.FailureBackoff,
			backoffMax:   cfg.FailureBackoffMax,
			breakerN:     cfg.BreakerThreshold,
			spec:         cfg.Solver,
			approxAfter:  cfg.ApproxAfter,
			faults:       cfg.Faults,
			backend:      cfg.Backend,
			node:         cfg.Node,
			segments:     s.execSegments,
		})
	s.mux = s.routes()
	return s, nil
}

// Drain switches the server into draining mode: new registrations are
// refused (ErrDraining, 503 over HTTP) while offloads for already
// registered tasks keep serving off the last published epoch, so a
// rolling restart sheds load without dropping in-flight traffic.
// Idempotent; there is no un-drain.
func (s *Server) Drain() { s.draining.Store(true) }

// Draining reports whether Drain (or Close) has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close drains the server, stops the background re-solver, then closes
// the execution backend (in that order: the resolver is the only caller
// of Install, so stopping it first means no epoch can race the
// backend's teardown). In-flight HTTP requests keep serving off the
// last published epoch; ones mid-inference get ErrReleased.
func (s *Server) Close() {
	s.Drain()
	s.resolver.Close()
	s.backend.Close()
}

// Register adds a task (kicking a debounced re-solve). Tasks without
// candidate paths get them built from the configured catalog; pre-built
// tasks may bring their referenced blocks along.
func (s *Server) Register(t core.Task, blocks map[string]core.BlockSpec) error {
	if s.draining.Load() {
		return ErrDraining
	}
	if err := s.reg.Register(t, blocks); err != nil {
		return err
	}
	s.resolver.Kick()
	return nil
}

// Deregister withdraws a task (kicking a debounced re-solve).
func (s *Server) Deregister(id string) error {
	if err := s.reg.Deregister(id); err != nil {
		return err
	}
	s.resolver.Kick()
	return nil
}

// ReplaceTasks swaps the whole task set for the given pre-built one and
// synchronously brings the published epoch up to date — the
// cluster-member plan push. norm, when non-nil, overrides the objective
// pricing of every subsequent solve with the coordinator's fleet-wide
// capacity totals (core.Resources.Norm), so the member reprices exactly
// as the placement did. Unchanged tasks keep their registry structs, so
// consecutive pushes of a stable placement re-solve incrementally (or
// not at all). A push to a draining server is refused like any other
// registration.
func (s *Server) ReplaceTasks(tasks []core.Task, blocks map[string]core.BlockSpec, norm *core.Resources) (bool, error) {
	if s.draining.Load() {
		return false, ErrDraining
	}
	normChanged := s.resolver.SetNorm(norm)
	changed, err := s.reg.Replace(tasks, blocks)
	if err != nil {
		return false, err
	}
	if !changed && !normChanged {
		return false, nil
	}
	return true, s.resolver.ResolveNow()
}

// Resources returns the capacity pool every epoch is solved against —
// the budgets a cluster member advertises to its coordinator.
func (s *Server) Resources() core.Resources { return s.cfg.Res }

// Alpha returns the admission/resource trade-off the daemon solves with.
func (s *Server) Alpha() float64 { return s.cfg.Alpha }

// Node returns the configured cluster-member node ID, empty for a
// standalone daemon.
func (s *Server) Node() string { return s.cfg.Node }

// ResolveNow synchronously brings the published epoch up to date with
// the registry, bypassing the debounce (used at daemon startup and in
// tests). It is a no-op when the epoch is already current.
func (s *Server) ResolveNow() error { return s.resolver.ResolveNow() }

// ForceResolve re-solves and republishes unconditionally (the epoch
// benchmark's entry point).
func (s *Server) ForceResolve() error { return s.resolver.ForceResolve() }

// Current returns the published epoch, nil before the first solve.
func (s *Server) Current() *Epoch { return s.resolver.Current() }

// Registry exposes the task table.
func (s *Server) Registry() *Registry { return s.reg }

// Stats exposes the live counters.
func (s *Server) Stats() *Stats { return s.stats }

// Backend exposes the execution layer the server serves inference
// through.
func (s *Server) Backend() exec.Backend { return s.backend }

// Overloaded reports sustained deadline pressure in the execution
// runtime: at least OverloadAfter backend sheds (late or queue-full)
// landed inside the trailing OverloadWindow. While true, /healthz
// reports degraded and the offload path sheds deadline-carrying
// requests whose predicted latency already exceeds their budget before
// they burn a backend queue slot.
func (s *Server) Overloaded() bool {
	if s.cfg.OverloadAfter < 0 {
		return false
	}
	return s.stats.RecentSheds(s.cfg.OverloadWindow, s.cfg.Now()) >= s.cfg.OverloadAfter
}

// ServeHTTP implements http.Handler over the daemon's API surface.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }
