package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"offloadnn/internal/core"
	"offloadnn/internal/radio"
	"offloadnn/internal/workload"
)

// smallResources is the Table-IV small-scenario pool.
func smallResources() core.Resources {
	return core.Resources{
		RBs:                50,
		ComputeSeconds:     2.5,
		MemoryGB:           8,
		TrainBudgetSeconds: 1000,
		Capacity:           radio.PaperRate(),
	}
}

func newTestServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Res.Capacity == nil {
		cfg.Res = smallResources()
	}
	if cfg.Alpha == 0 {
		cfg.Alpha = 0.5
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(srv.Close)
	return srv
}

func smallSpec(t *testing.T, i int) TaskSpec {
	t.Helper()
	task, err := workload.SmallTask(i)
	if err != nil {
		t.Fatal(err)
	}
	return TaskSpec{
		ID:           task.ID,
		Priority:     task.Priority,
		Rate:         task.Rate,
		MinAccuracy:  task.MinAccuracy,
		MaxLatencyMS: float64(task.MaxLatency) / float64(time.Millisecond),
		InputBits:    task.InputBits,
		SNRdB:        task.SNRdB,
	}
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drain(t *testing.T, resp *http.Response) string {
	t.Helper()
	b, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// waitCurrent polls /healthz until the published epoch matches the
// registry generation.
func waitCurrent(t *testing.T, baseURL string) uint64 {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(baseURL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		var h struct {
			Epoch   uint64 `json:"epoch"`
			Current bool   `json:"current"`
			Tasks   int    `json:"tasks"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if h.Current && h.Epoch > 0 {
			return h.Epoch
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("epoch never caught up with registry generation")
	return 0
}

// TestHTTPEndToEnd registers the five Table-IV small-scenario tasks over
// HTTP, waits for the debounced epoch, then drives each admitted task
// above its notified rate with a deterministic clock and asserts the
// gate admits ≈ z·λ of the traffic.
func TestHTTPEndToEnd(t *testing.T) {
	clock := newFakeClock()
	srv := newTestServer(t, Config{Debounce: 2 * time.Millisecond, Now: clock.Now})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	for i := 1; i <= 5; i++ {
		resp := postJSON(t, ts.URL+"/v1/tasks", smallSpec(t, i))
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("register task-%d: status %d: %s", i, resp.StatusCode, drain(t, resp))
		}
		drain(t, resp)
	}
	waitCurrent(t, ts.URL)

	// Read the notified rates from the task listing.
	resp, err := http.Get(ts.URL + "/v1/tasks")
	if err != nil {
		t.Fatal(err)
	}
	var listing []TaskStatus
	if err := json.NewDecoder(resp.Body).Decode(&listing); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(listing) != 5 {
		t.Fatalf("listing has %d tasks, want 5", len(listing))
	}
	admittedAny := false
	for _, st := range listing {
		if !st.Admitted {
			continue
		}
		admittedAny = true
		if st.AdmittedRate <= 0 || st.AdmittedRate > st.Rate+1e-9 {
			t.Fatalf("task %s notified rate %v outside (0, λ=%v]", st.ID, st.AdmittedRate, st.Rate)
		}
		if st.Path == "" || st.LatencyMS <= 0 {
			t.Fatalf("task %s admitted without path/latency: %+v", st.ID, st)
		}
	}
	if !admittedAny {
		t.Fatal("no task admitted in the small scenario")
	}

	// Overdrive each admitted task for 10 virtual seconds at 4× its
	// notified rate; the token bucket must clamp admissions to
	// z·λ·duration plus the burst allowance.
	const virtual = 10.0 // seconds
	for _, st := range listing {
		if !st.Admitted {
			continue
		}
		burst := math.Max(1, st.AdmittedRate)
		steps := int(4 * st.AdmittedRate * virtual)
		dt := time.Duration(virtual / float64(steps) * float64(time.Second))
		admitted, rejected := 0, 0
		for i := 0; i < steps; i++ {
			clock.Advance(dt)
			r := postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: st.ID})
			switch r.StatusCode {
			case http.StatusOK:
				var or OffloadResponse
				if err := json.NewDecoder(r.Body).Decode(&or); err != nil {
					t.Fatal(err)
				}
				if or.AdmittedRate != st.AdmittedRate || or.LatencyMS <= 0 {
					t.Fatalf("offload response %+v inconsistent with listing %+v", or, st)
				}
				admitted++
			case http.StatusTooManyRequests:
				if r.Header.Get("Retry-After") == "" {
					t.Fatalf("429 for %s without Retry-After", st.ID)
				}
				rejected++
			default:
				t.Fatalf("offload %s: status %d: %s", st.ID, r.StatusCode, drain(t, r))
			}
			r.Body.Close()
		}
		want := st.AdmittedRate * virtual
		if float64(admitted) < want-1 || float64(admitted) > want+burst+1 {
			t.Fatalf("task %s admitted %d of %d over %gs, want ≈ z·λ·T = %.1f (+burst %g)",
				st.ID, admitted, steps, virtual, want, burst)
		}
		if rejected == 0 {
			t.Fatalf("task %s overdriven at 4× but nothing rejected", st.ID)
		}
	}

	// The metrics endpoint reports the live state.
	resp, err = http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := drain(t, resp)
	for _, want := range []string{
		"offloadnn_epoch ",
		"offloadnn_tasks_registered 5",
		"offloadnn_offload_requests_total",
		`offloadnn_offload_admitted_total{task="task-1"}`,
		`offloadnn_latency_seconds{quantile="0.95"}`,
		"offloadnn_solve_duration_seconds",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics output missing %q:\n%s", want, body)
		}
	}

	// Deregistration churns the epoch and drops the task from serving.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tasks/task-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if dresp.StatusCode != http.StatusNoContent {
		t.Fatalf("deregister: status %d", dresp.StatusCode)
	}
	dresp.Body.Close()
	if epoch := waitCurrent(t, ts.URL); epoch < 2 {
		t.Fatalf("epoch %d after churn, want ≥ 2", epoch)
	}
	r := postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1"})
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("offload after deregister: status %d, want 404", r.StatusCode)
	}
	drain(t, r)
}

func TestOffloadBeforeFirstEpochIs429(t *testing.T) {
	srv := newTestServer(t, Config{Debounce: time.Hour}) // solve never fires on its own
	ts := httptest.NewServer(srv)
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/tasks", smallSpec(t, 1))
	drain(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("register: status %d", resp.StatusCode)
	}

	r := postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1"})
	drain(t, r)
	if r.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("pre-epoch offload: status %d, want 429", r.StatusCode)
	}
	if r.Header.Get("Retry-After") == "" {
		t.Fatal("pre-epoch 429 without Retry-After")
	}

	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	r = postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "task-1"})
	drain(t, r)
	if r.StatusCode != http.StatusOK {
		t.Fatalf("post-resolve offload: status %d, want 200", r.StatusCode)
	}
}

func TestRegisterValidationAndConflicts(t *testing.T) {
	srv := newTestServer(t, Config{Debounce: time.Hour})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	bad := smallSpec(t, 1)
	bad.Rate = 0
	resp := postJSON(t, ts.URL+"/v1/tasks", bad)
	drain(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("zero-rate spec: status %d, want 400", resp.StatusCode)
	}

	resp, err := http.Post(ts.URL+"/v1/tasks", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	drain(t, resp)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	good := smallSpec(t, 1)
	resp = postJSON(t, ts.URL+"/v1/tasks", good)
	drain(t, resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("register: status %d", resp.StatusCode)
	}
	resp = postJSON(t, ts.URL+"/v1/tasks", good)
	drain(t, resp)
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("duplicate register: status %d, want 409", resp.StatusCode)
	}

	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/tasks/ghost", nil)
	if err != nil {
		t.Fatal(err)
	}
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	drain(t, dresp)
	if dresp.StatusCode != http.StatusNotFound {
		t.Fatalf("deregister unknown: status %d, want 404", dresp.StatusCode)
	}

	r := postJSON(t, ts.URL+"/v1/offload", OffloadRequest{Task: "ghost"})
	drain(t, r)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("offload unknown: status %d, want 404", r.StatusCode)
	}
}

// TestChurnUnderRace hammers the registry, the offload path and the
// epoch swap concurrently; run with -race this validates the registry
// locking, the RCU epoch publication and the controller serialization.
func TestChurnUnderRace(t *testing.T) {
	srv := newTestServer(t, Config{Debounce: time.Millisecond})
	rec := func(method, target string, body any) *httptest.ResponseRecorder {
		var r *http.Request
		if body != nil {
			buf, _ := json.Marshal(body)
			r = httptest.NewRequest(method, target, bytes.NewReader(buf))
		} else {
			r = httptest.NewRequest(method, target, nil)
		}
		w := httptest.NewRecorder()
		srv.ServeHTTP(w, r)
		return w
	}

	// Base tasks that stay registered throughout.
	for i := 1; i <= 3; i++ {
		task, err := workload.SmallTask(i)
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Register(task, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	const rounds = 25
	// Churners register and deregister their own task repeatedly.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base, err := workload.SmallTask(4 + g)
			if err != nil {
				t.Error(err)
				return
			}
			for i := 0; i < rounds; i++ {
				spec := TaskSpec{
					ID:           fmt.Sprintf("%s-r%d", base.ID, i),
					Priority:     base.Priority,
					Rate:         base.Rate,
					MinAccuracy:  base.MinAccuracy,
					MaxLatencyMS: float64(base.MaxLatency) / float64(time.Millisecond),
					InputBits:    base.InputBits,
					SNRdB:        base.SNRdB,
				}
				if w := rec(http.MethodPost, "/v1/tasks", spec); w.Code != http.StatusAccepted {
					t.Errorf("churn register: status %d: %s", w.Code, w.Body)
					return
				}
				if w := rec(http.MethodDelete, "/v1/tasks/"+spec.ID, nil); w.Code != http.StatusNoContent {
					t.Errorf("churn deregister: status %d: %s", w.Code, w.Body)
					return
				}
			}
		}(g)
	}
	// Offloaders fire at the base tasks across epoch swaps.
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds*4; i++ {
				id := fmt.Sprintf("task-%d", i%3+1)
				w := rec(http.MethodPost, "/v1/offload", OffloadRequest{Task: id})
				switch w.Code {
				case http.StatusOK, http.StatusTooManyRequests:
				default:
					t.Errorf("offload %s: status %d: %s", id, w.Code, w.Body)
					return
				}
				rec(http.MethodGet, "/metrics", nil)
				rec(http.MethodGet, "/healthz", nil)
			}
		}()
	}
	// An extra forced re-solver racing the debounced loop.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			srv.ResolveNow()
		}
	}()
	wg.Wait()

	// Converge and check consistency.
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	ep := srv.Current()
	if ep == nil {
		t.Fatal("no epoch after churn")
	}
	if gen := srv.Registry().Generation(); ep.Generation != gen {
		t.Fatalf("final epoch generation %d != registry generation %d", ep.Generation, gen)
	}
	if srv.Registry().Len() != 3 {
		t.Fatalf("registry has %d tasks, want the 3 base tasks", srv.Registry().Len())
	}
	for i := 1; i <= 3; i++ {
		id := fmt.Sprintf("task-%d", i)
		if srv.Stats().Admitted(id)+srv.Stats().Rejected(id) == 0 {
			t.Fatalf("task %s saw no offload verdicts", id)
		}
	}
}

// TestRegisterPrebuiltTasks exercises the programmatic route the
// benchmarks use: tasks with pre-built paths and their block catalog.
func TestRegisterPrebuiltTasks(t *testing.T) {
	in, err := workload.SmallScenario(3)
	if err != nil {
		t.Fatal(err)
	}
	srv := newTestServer(t, Config{Res: in.Res, Alpha: in.Alpha, Debounce: time.Hour})
	for _, task := range in.Tasks {
		if err := srv.Register(task, in.Blocks); err != nil {
			t.Fatal(err)
		}
	}
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	ep := srv.Current()
	if ep == nil || ep.Deployment == nil {
		t.Fatal("no deployment after resolve")
	}
	if got := len(ep.Tasks); got != 3 {
		t.Fatalf("epoch has %d tasks, want 3", got)
	}
	// A second ResolveNow without churn is a no-op.
	n := ep.N
	if err := srv.ResolveNow(); err != nil {
		t.Fatal(err)
	}
	if srv.Current().N != n {
		t.Fatalf("no-op resolve bumped epoch %d → %d", n, srv.Current().N)
	}
	// ForceResolve republishes.
	if err := srv.ForceResolve(); err != nil {
		t.Fatal(err)
	}
	if srv.Current().N != n+1 {
		t.Fatalf("forced resolve: epoch %d, want %d", srv.Current().N, n+1)
	}
}
